#include "obs/perf_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/stats.hpp"

namespace qntn::obs {

namespace {

void append_number(std::string& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.10g", value);
  out += buffer;
}

void append_string(std::string& out, std::string_view value) {
  out += '"';
  for (const char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

double number_field(const json::Value& object, std::string_view key) {
  const json::Value* value = object.find(key);
  if (value == nullptr || !value->is_number()) {
    throw Error("bench schema: missing numeric field \"" + std::string(key) +
                "\"");
  }
  return value->as_number();
}

std::string string_field(const json::Value& object, std::string_view key) {
  const json::Value* value = object.find(key);
  if (value == nullptr || !value->is_string()) {
    throw Error("bench schema: missing string field \"" + std::string(key) +
                "\"");
  }
  return value->as_string();
}

}  // namespace

BenchCase make_bench_case(std::string name, std::uint64_t items,
                          std::vector<double> repeats_ms) {
  QNTN_REQUIRE(!repeats_ms.empty(), "bench case needs at least one repeat");
  BenchCase out;
  out.name = std::move(name);
  out.items = items;
  out.median_ms = percentile(repeats_ms, 0.5);
  out.p95_ms = percentile(repeats_ms, 0.95);
  std::vector<double> deviations;
  deviations.reserve(repeats_ms.size());
  for (const double ms : repeats_ms) {
    deviations.push_back(std::abs(ms - out.median_ms));
  }
  out.mad_ms = percentile(std::move(deviations), 0.5);
  out.min_ms = *std::min_element(repeats_ms.begin(), repeats_ms.end());
  out.max_ms = *std::max_element(repeats_ms.begin(), repeats_ms.end());
  double sum = 0.0;
  for (const double ms : repeats_ms) sum += ms;
  out.mean_ms = sum / static_cast<double>(repeats_ms.size());
  out.repeats_ms = std::move(repeats_ms);
  return out;
}

std::string BenchReport::to_json() const {
  std::string out = "{\n  \"schema\": ";
  append_string(out, schema);
  out += ",\n  \"bench\": ";
  append_string(out, bench);
  out += ",\n  \"smoke\": ";
  out += smoke ? "true" : "false";
  out += ",\n  \"warmup\": " + std::to_string(warmup);
  out += ",\n  \"repeats\": " + std::to_string(repeats);
  out += ",\n  \"threads\": " + std::to_string(threads);
  out += ",\n  \"max_rss_kb\": " + std::to_string(max_rss_kb);
  out += ",\n  \"cases\": [";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const BenchCase& c = cases[i];
    out += i == 0 ? "\n    {" : ",\n    {";
    out += "\"name\": ";
    append_string(out, c.name);
    out += ", \"items\": " + std::to_string(c.items);
    out += ", \"repeats_ms\": [";
    for (std::size_t r = 0; r < c.repeats_ms.size(); ++r) {
      if (r != 0) out += ", ";
      append_number(out, c.repeats_ms[r]);
    }
    out += "], \"median_ms\": ";
    append_number(out, c.median_ms);
    out += ", \"mad_ms\": ";
    append_number(out, c.mad_ms);
    out += ", \"p95_ms\": ";
    append_number(out, c.p95_ms);
    out += ", \"min_ms\": ";
    append_number(out, c.min_ms);
    out += ", \"max_ms\": ";
    append_number(out, c.max_ms);
    out += ", \"mean_ms\": ";
    append_number(out, c.mean_ms);
    out += "}";
  }
  out += cases.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

BenchReport parse_bench_report(const std::string& json_text) {
  const json::Value root = json::Value::parse(json_text);
  if (!root.is_object()) throw Error("bench schema: top level is not an object");

  BenchReport report;
  report.schema = string_field(root, "schema");
  if (report.schema != kBenchSchemaVersion) {
    throw Error("bench schema: unsupported version \"" + report.schema +
                "\" (expected " + std::string(kBenchSchemaVersion) + ")");
  }
  report.bench = string_field(root, "bench");
  const json::Value* smoke = root.find("smoke");
  if (smoke == nullptr || !smoke->is_bool()) {
    throw Error("bench schema: missing bool field \"smoke\"");
  }
  report.smoke = smoke->as_bool();
  report.warmup = static_cast<std::size_t>(number_field(root, "warmup"));
  report.repeats = static_cast<std::size_t>(number_field(root, "repeats"));
  report.threads = static_cast<std::size_t>(number_field(root, "threads"));
  report.max_rss_kb =
      static_cast<std::uint64_t>(number_field(root, "max_rss_kb"));

  const json::Value* cases = root.find("cases");
  if (cases == nullptr || !cases->is_array()) {
    throw Error("bench schema: missing array field \"cases\"");
  }
  for (const json::Value& entry : cases->items()) {
    if (!entry.is_object()) throw Error("bench schema: case is not an object");
    BenchCase c;
    c.name = string_field(entry, "name");
    if (c.name.empty()) throw Error("bench schema: empty case name");
    c.items = static_cast<std::uint64_t>(number_field(entry, "items"));
    const json::Value* repeats_ms = entry.find("repeats_ms");
    if (repeats_ms == nullptr || !repeats_ms->is_array() ||
        repeats_ms->items().empty()) {
      throw Error("bench schema: case \"" + c.name +
                  "\" needs a non-empty repeats_ms array");
    }
    for (const json::Value& ms : repeats_ms->items()) {
      if (!ms.is_number()) {
        throw Error("bench schema: non-numeric repeat in \"" + c.name + "\"");
      }
      c.repeats_ms.push_back(ms.as_number());
    }
    c.median_ms = number_field(entry, "median_ms");
    c.mad_ms = number_field(entry, "mad_ms");
    c.p95_ms = number_field(entry, "p95_ms");
    c.min_ms = number_field(entry, "min_ms");
    c.max_ms = number_field(entry, "max_ms");
    c.mean_ms = number_field(entry, "mean_ms");
    for (const BenchCase& existing : report.cases) {
      if (existing.name == c.name) {
        throw Error("bench schema: duplicate case \"" + c.name + "\"");
      }
    }
    report.cases.push_back(std::move(c));
  }
  return report;
}

bool BenchComparison::regressed() const {
  return std::any_of(deltas.begin(), deltas.end(),
                     [](const BenchCaseDelta& d) { return d.regressed; });
}

BenchComparison compare_bench_reports(const BenchReport& baseline,
                                      const BenchReport& current,
                                      const BenchCompareOptions& options) {
  BenchComparison out;
  for (const BenchCase& base : baseline.cases) {
    const auto it =
        std::find_if(current.cases.begin(), current.cases.end(),
                     [&](const BenchCase& c) { return c.name == base.name; });
    if (it == current.cases.end()) {
      out.only_base.push_back(base.name);
      continue;
    }
    BenchCaseDelta delta;
    delta.name = base.name;
    delta.base_ms = base.median_ms;
    delta.new_ms = it->median_ms;
    delta.ratio = base.median_ms > 0.0 ? it->median_ms / base.median_ms : 1.0;
    if (base.median_ms >= options.min_ms && it->median_ms >= options.min_ms) {
      const double slack = options.mad_factor *
                           std::max(base.mad_ms, it->mad_ms);
      const double excess = it->median_ms - base.median_ms * (1.0 + options.threshold);
      delta.regressed = excess > 0.0 && (it->median_ms - base.median_ms) > slack;
      delta.improved =
          base.median_ms - it->median_ms * (1.0 + options.threshold) > 0.0;
    }
    out.deltas.push_back(std::move(delta));
  }
  for (const BenchCase& c : current.cases) {
    const auto it =
        std::find_if(baseline.cases.begin(), baseline.cases.end(),
                     [&](const BenchCase& b) { return b.name == c.name; });
    if (it == baseline.cases.end()) out.only_current.push_back(c.name);
  }
  return out;
}

}  // namespace qntn::obs
