#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace qntn::obs {

namespace {

void append_escaped(std::string& out, std::string_view value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string_view trace_level_name(TraceLevel level) {
  switch (level) {
    case TraceLevel::Off:
      return "off";
    case TraceLevel::Snapshots:
      return "snapshots";
    case TraceLevel::Requests:
      return "requests";
  }
  throw Error("unknown trace level");
}

TraceLevel trace_level_from(std::string_view name) {
  if (name == "off") return TraceLevel::Off;
  if (name == "snapshots") return TraceLevel::Snapshots;
  if (name == "requests") return TraceLevel::Requests;
  throw Error("unknown trace level: " + std::string(name) +
              " (expected off | snapshots | requests)");
}

TraceEvent::TraceEvent(std::string_view type) {
  buffer_.reserve(128);
  buffer_ += "{\"type\": ";
  append_escaped(buffer_, type);
}

void TraceEvent::key(std::string_view name) {
  buffer_ += ", ";
  append_escaped(buffer_, name);
  buffer_ += ": ";
}

TraceEvent& TraceEvent::field(std::string_view name, std::string_view value) {
  key(name);
  append_escaped(buffer_, value);
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view name, const char* value) {
  return field(name, std::string_view(value));
}

TraceEvent& TraceEvent::field(std::string_view name, double value) {
  key(name);
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.10g", value);
  buffer_ += buffer;
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view name, std::uint64_t value) {
  key(name);
  buffer_ += std::to_string(value);
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view name, bool value) {
  key(name);
  buffer_ += value ? "true" : "false";
  return *this;
}

std::string TraceEvent::json() const { return buffer_ + "}"; }

TraceSink::TraceSink(std::ostream& out, TraceLevel level)
    : level_(level), out_(&out) {}

TraceSink::TraceSink(const std::string& path, TraceLevel level)
    : level_(level) {
  auto file = std::make_unique<std::ofstream>(path);
  if (!*file) throw Error("cannot open trace output: " + path);
  out_ = file.get();
  owned_ = std::move(file);
}

void TraceSink::emit(const TraceEvent& event) {
  if (out_ == nullptr) return;
  const std::string line = event.json();
  const MutexLock lock(mutex_);
  *out_ << line << '\n';
}

void TraceSink::flush() {
  if (out_ == nullptr) return;
  const MutexLock lock(mutex_);
  out_->flush();
}

}  // namespace qntn::obs
