#include "obs/registry.hpp"

#include <array>
#include <atomic>
#include <cstdio>
#include <sstream>

namespace qntn::obs {

namespace {

/// Heterogeneous string hashing so the hot path can look up string_view
/// keys without materializing a std::string.
struct StringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  [[nodiscard]] std::size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

std::atomic<std::uint64_t> g_registry_serial{1};

/// Tiny per-thread cache mapping registry serial -> shard. Serials are
/// process-unique and never reused, so a stale entry for a destroyed
/// registry can never be mistaken for a live one.
struct TlsShardEntry {
  std::uint64_t serial = 0;
  void* shard = nullptr;
};
constexpr std::size_t kTlsCacheSize = 4;
thread_local std::array<TlsShardEntry, kTlsCacheSize> t_shard_cache{};
thread_local std::size_t t_shard_next = 0;

thread_local Registry* t_ambient = nullptr;

void append_json_number(std::string& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.10g", value);
  out += buffer;
}

void append_json_string(std::string& out, std::string_view value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

struct Registry::Shard {
  /// Guards map structure and the stats values. The owning thread is the
  /// only inserter, so writers lock solely around first-touch inserts and
  /// stat updates; established counter cells are updated lock-free.
  Mutex mutex;
  /// Deliberately NOT QNTN_GUARDED_BY(mutex): the owning thread reads the
  /// map lock-free (single-writer protocol, outside the lock-based model
  /// thread-safety analysis can express) and takes `mutex` only to insert.
  /// TSan covers this path; see Registry::count.
  std::unordered_map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>,
                     StringHash, std::equal_to<>>
      counters;
  std::unordered_map<std::string, RunningStats, StringHash, std::equal_to<>>
      stats QNTN_GUARDED_BY(mutex);
};

Registry::Registry()
    : serial_(g_registry_serial.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

Registry::Shard& Registry::local_shard() {
  for (const TlsShardEntry& entry : t_shard_cache) {
    if (entry.serial == serial_) return *static_cast<Shard*>(entry.shard);
  }
  const MutexLock lock(mutex_);
  Shard*& slot = by_thread_[std::this_thread::get_id()];
  if (slot == nullptr) {
    shards_.push_back(std::make_unique<Shard>());
    slot = shards_.back().get();
  }
  t_shard_cache[t_shard_next] = {serial_, slot};
  t_shard_next = (t_shard_next + 1) % kTlsCacheSize;
  return *slot;
}

void Registry::count(std::string_view name, std::uint64_t delta) {
  Shard& shard = local_shard();
  // Lock-free lookup: only this thread inserts into its shard, and
  // snapshot() readers never mutate the map.
  auto it = shard.counters.find(name);
  if (it == shard.counters.end()) {
    const MutexLock lock(shard.mutex);
    it = shard.counters
             .try_emplace(std::string(name),
                          std::make_unique<std::atomic<std::uint64_t>>(0))
             .first;
  }
  it->second->fetch_add(delta, std::memory_order_relaxed);
}

void Registry::observe(std::string_view name, double value) {
  Shard& shard = local_shard();
  const MutexLock lock(shard.mutex);
  auto it = shard.stats.find(name);
  if (it == shard.stats.end()) {
    it = shard.stats.try_emplace(std::string(name)).first;
  }
  it->second.add(value);
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot out;
  const MutexLock lock(mutex_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const MutexLock shard_lock(shard->mutex);
    // Shard maps are unordered, but both loops merge into the snapshot's
    // sorted std::map, so visitation order cannot reach the output bytes.
    for (const auto& [name, cell] : shard->counters) {  // lint: ordered-ok
      out.counters[name] += cell->load(std::memory_order_relaxed);
    }
    for (const auto& [name, stats] : shard->stats) {  // lint: ordered-ok
      out.stats[name].merge(stats);
    }
  }
  return out;
}

std::uint64_t Registry::counter(std::string_view name) const {
  std::uint64_t total = 0;
  const MutexLock lock(mutex_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const MutexLock shard_lock(shard->mutex);
    const auto it = shard->counters.find(name);
    if (it != shard->counters.end()) {
      total += it->second->load(std::memory_order_relaxed);
    }
  }
  return total;
}

RunningStats Registry::stat(std::string_view name) const {
  RunningStats total;
  const MutexLock lock(mutex_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const MutexLock shard_lock(shard->mutex);
    const auto it = shard->stats.find(name);
    if (it != shard->stats.end()) total.merge(it->second);
  }
  return total;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  // MetricsSnapshot::counters is std::map — already sorted by name.
  for (const auto& [name, value] : counters) {  // lint: ordered-ok
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": ";
    out += std::to_string(value);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"stats\": {";
  first = true;
  // MetricsSnapshot::stats is std::map — already sorted by name.
  for (const auto& [name, running] : stats) {  // lint: ordered-ok
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": {\"count\": ";
    out += std::to_string(running.count());
    out += ", \"mean\": ";
    append_json_number(out, running.mean());
    out += ", \"min\": ";
    append_json_number(out, running.min());
    out += ", \"max\": ";
    append_json_number(out, running.max());
    out += ", \"stddev\": ";
    append_json_number(out, running.stddev());
    out += "}";
  }
  out += stats.empty() ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

Registry* ambient() noexcept { return t_ambient; }

ScopedRegistry::ScopedRegistry(Registry* registry) noexcept
    : previous_(t_ambient) {
  t_ambient = registry;
}

ScopedRegistry::~ScopedRegistry() { t_ambient = previous_; }

}  // namespace qntn::obs
