#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"

/// \file profiler.hpp
/// Hierarchical span profiler: RAII obs::Span scopes record (name, start,
/// duration) into per-thread ring buffers, drained on demand into Chrome
/// trace-event JSON (loadable in chrome://tracing or Perfetto). The design
/// mirrors the metrics Registry: an ambient thread-local profiler is
/// installed per scope, so instrumented code pays one TLS load and a branch
/// when no profiler is installed — no clock read, no allocation — which
/// keeps the always-compiled-in instrumentation free on production paths.
///
/// Threads are named: the main thread reports as "main", pool workers as
/// "worker-N" (see common/thread_pool.hpp), and each buffer keeps a stable
/// registration index used as the Chrome tid. Buffers are rings: once a
/// thread exceeds its capacity the oldest spans are overwritten and the
/// drop is counted, bounding memory for arbitrarily long runs.

namespace qntn::obs {

/// One finished span. `name` must be a string literal (or otherwise outlive
/// the profiler); instrument sites pass literals.
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  ///< since the profiler's epoch
  std::uint64_t dur_ns = 0;
  std::uint64_t arg = kNoArg;  ///< optional numeric payload ("n" in args)

  static constexpr std::uint64_t kNoArg = ~std::uint64_t{0};
};

class Profiler {
 public:
  /// `capacity_per_thread` spans are kept per thread (ring overwrite
  /// beyond); the default holds ~64k spans (~2 MiB) per thread.
  explicit Profiler(std::size_t capacity_per_thread = 1u << 16);
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Nanoseconds since this profiler's construction (steady clock).
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Record one finished span for the calling thread. Called by ~Span.
  void record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
              std::uint64_t arg);

  /// Spans overwritten because a thread's ring filled, over all threads.
  [[nodiscard]] std::uint64_t dropped() const QNTN_EXCLUDES(mutex_);

  /// Spans currently held (post-overwrite), over all threads.
  [[nodiscard]] std::size_t span_count() const QNTN_EXCLUDES(mutex_);

  /// The whole profile as Chrome trace-event JSON: one metadata event per
  /// thread (thread_name / thread_sort_index) and one "X" (complete) event
  /// per span, one event per line, spans sorted by (tid, start). ts/dur are
  /// microseconds since the profiler epoch.
  [[nodiscard]] std::string chrome_trace_json() const QNTN_EXCLUDES(mutex_);

  /// Write chrome_trace_json() to a file; throws qntn::Error on failure.
  void write_chrome_trace(const std::string& path) const;

 private:
  struct ThreadBuffer;

  /// The calling thread's ring, created (and named after the thread's
  /// label) on first use; TLS-cached by profiler serial like Registry.
  ThreadBuffer& local_buffer() QNTN_EXCLUDES(mutex_);

  const std::uint64_t serial_;  ///< process-unique; guards the TLS cache
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ QNTN_GUARDED_BY(mutex_);
  std::unordered_map<std::thread::id, ThreadBuffer*> by_thread_
      QNTN_GUARDED_BY(mutex_);
};

/// The thread's ambient profiler (nullptr when none is installed).
[[nodiscard]] Profiler* ambient_profiler() noexcept;

/// RAII install of an ambient profiler for the current thread. Scopes
/// nest; installing nullptr is allowed and turns Span into a no-op.
class ScopedProfiler {
 public:
  explicit ScopedProfiler(Profiler* profiler) noexcept;
  ~ScopedProfiler();

  ScopedProfiler(const ScopedProfiler&) = delete;
  ScopedProfiler& operator=(const ScopedProfiler&) = delete;

 private:
  Profiler* previous_;
};

/// RAII span scope. Captures the ambient profiler at construction; a
/// complete no-op (no clock read) when none is installed. `name` must be a
/// string literal. Nesting is implicit: Chrome reconstructs the hierarchy
/// from ts/dur containment per thread.
class Span {
 public:
  explicit Span(const char* name) noexcept
      : Span(name, SpanRecord::kNoArg) {}

  /// With a numeric payload, rendered as args:{"n": arg} in the trace
  /// (constellation size, step index, ...).
  Span(const char* name, std::uint64_t arg) noexcept
      : profiler_(ambient_profiler()), name_(name), arg_(arg) {
    if (profiler_ != nullptr) start_ns_ = profiler_->now_ns();
  }

  ~Span() {
    if (profiler_ == nullptr) return;
    profiler_->record(name_, start_ns_, profiler_->now_ns() - start_ns_, arg_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Profiler* profiler_;
  const char* name_;
  std::uint64_t arg_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace qntn::obs
