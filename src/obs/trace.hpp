#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

#include "common/mutex.hpp"

/// \file trace.hpp
/// Structured per-run trace sink: one JSON object per line (JSON Lines),
/// recording per-snapshot scenario events — requests issued / served /
/// unserved with reason, handovers, chosen relay, path eta and hops. The
/// sink is gated by a TraceLevel so the disabled path costs one branch, and
/// all number formatting is deterministic (the golden-schema test relies on
/// byte-identical output for identical runs).

namespace qntn::obs {

enum class TraceLevel {
  Off = 0,        ///< no events
  Snapshots = 1,  ///< run/coverage/per-snapshot summaries
  Requests = 2,   ///< plus one event per request and per handover
};

[[nodiscard]] std::string_view trace_level_name(TraceLevel level);

/// Parse "off" | "snapshots" | "requests"; throws qntn::Error otherwise.
[[nodiscard]] TraceLevel trace_level_from(std::string_view name);

/// One trace line under construction. Keys appear in call order; values are
/// JSON-escaped strings or %.10g-formatted numbers.
class TraceEvent {
 public:
  explicit TraceEvent(std::string_view type);

  TraceEvent& field(std::string_view key, std::string_view value);
  TraceEvent& field(std::string_view key, const char* value);
  TraceEvent& field(std::string_view key, double value);
  TraceEvent& field(std::string_view key, std::uint64_t value);
  TraceEvent& field(std::string_view key, bool value);

  /// The finished single-line JSON object (no trailing newline).
  [[nodiscard]] std::string json() const;

 private:
  void key(std::string_view name);

  std::string buffer_;
};

/// Thread-safe JSONL writer. Default-constructed sinks are disabled;
/// `wants()` is the cheap gate call sites check before building an event.
class TraceSink {
 public:
  TraceSink() = default;

  /// Write to a borrowed stream (tests pass an ostringstream).
  TraceSink(std::ostream& out, TraceLevel level);

  /// Write to a file; throws qntn::Error when the file cannot be opened.
  TraceSink(const std::string& path, TraceLevel level);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  [[nodiscard]] TraceLevel level() const { return level_; }

  /// True when events at `level` should be built and emitted.
  [[nodiscard]] bool wants(TraceLevel level) const {
    return out_ != nullptr &&
           static_cast<int>(level_) >= static_cast<int>(level);
  }

  /// Append one event line. Serialized internally; safe from worker
  /// threads, though interleaved runs should use separate sinks.
  void emit(const TraceEvent& event) QNTN_EXCLUDES(mutex_);

  void flush() QNTN_EXCLUDES(mutex_);

 private:
  TraceLevel level_ = TraceLevel::Off;      // set at construction only
  std::ostream* out_ = nullptr;             // set at construction only
  std::unique_ptr<std::ostream> owned_;     // set at construction only
  Mutex mutex_;  ///< serializes writes through *out_ (the stream itself)
};

}  // namespace qntn::obs
