#include "obs/profiler.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <string_view>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace qntn::obs {

namespace {

std::atomic<std::uint64_t> g_profiler_serial{1};

/// Tiny per-thread cache mapping profiler serial -> buffer, mirroring the
/// Registry shard cache. Serials are process-unique and never reused, so a
/// stale entry for a destroyed profiler can never be mistaken for a live
/// one.
struct TlsBufferEntry {
  std::uint64_t serial = 0;
  void* buffer = nullptr;
};
constexpr std::size_t kTlsCacheSize = 4;
thread_local std::array<TlsBufferEntry, kTlsCacheSize> t_buffer_cache{};
thread_local std::size_t t_buffer_next = 0;

thread_local Profiler* t_ambient_profiler = nullptr;

void append_escaped(std::string& out, std::string_view value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Microseconds with fixed millis precision: Chrome's ts/dur unit. Fixed
/// formatting keeps the trace shape stable for the schema test's
/// timestamp-normalising regex.
void append_us(std::string& out, std::uint64_t ns) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buffer;
}

}  // namespace

struct Profiler::ThreadBuffer {
  std::string name;       ///< thread label; written once at registration
  std::uint32_t tid = 0;  ///< registration index, Chrome tid; set once
  /// The owning thread is the only writer; the profiler locks this only
  /// while draining so a snapshot never reads a half-written record.
  Mutex mutex;
  std::vector<SpanRecord> ring QNTN_GUARDED_BY(mutex);
  std::size_t next QNTN_GUARDED_BY(mutex) = 0;    ///< ring write index
  std::uint64_t total QNTN_GUARDED_BY(mutex) = 0; ///< spans ever recorded
};

Profiler::Profiler(std::size_t capacity_per_thread)
    : serial_(g_profiler_serial.fetch_add(1, std::memory_order_relaxed)),
      capacity_(std::max<std::size_t>(capacity_per_thread, 1)),
      epoch_(std::chrono::steady_clock::now()) {}

Profiler::~Profiler() = default;

std::uint64_t Profiler::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Profiler::ThreadBuffer& Profiler::local_buffer() {
  for (const TlsBufferEntry& entry : t_buffer_cache) {
    if (entry.serial == serial_) {
      return *static_cast<ThreadBuffer*>(entry.buffer);
    }
  }
  const MutexLock lock(mutex_);
  ThreadBuffer*& slot = by_thread_[std::this_thread::get_id()];
  if (slot == nullptr) {
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    slot = buffers_.back().get();
    slot->name = thread_label();
    slot->tid = static_cast<std::uint32_t>(buffers_.size() - 1);
    const MutexLock init_lock(slot->mutex);
    slot->ring.reserve(std::min<std::size_t>(capacity_, 1024));
  }
  t_buffer_cache[t_buffer_next] = {serial_, slot};
  t_buffer_next = (t_buffer_next + 1) % kTlsCacheSize;
  return *slot;
}

void Profiler::record(const char* name, std::uint64_t start_ns,
                      std::uint64_t dur_ns, std::uint64_t arg) {
  ThreadBuffer& buffer = local_buffer();
  const MutexLock lock(buffer.mutex);
  const SpanRecord span{name, start_ns, dur_ns, arg};
  if (buffer.ring.size() < capacity_) {
    buffer.ring.push_back(span);
  } else {
    buffer.ring[buffer.next] = span;  // overwrite the oldest
  }
  buffer.next = (buffer.next + 1) % capacity_;
  ++buffer.total;
}

std::uint64_t Profiler::dropped() const {
  const MutexLock lock(mutex_);
  std::uint64_t dropped = 0;
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    const MutexLock buffer_lock(buffer->mutex);
    dropped += buffer->total - buffer->ring.size();
  }
  return dropped;
}

std::size_t Profiler::span_count() const {
  const MutexLock lock(mutex_);
  std::size_t count = 0;
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    const MutexLock buffer_lock(buffer->mutex);
    count += buffer->ring.size();
  }
  return count;
}

std::string Profiler::chrome_trace_json() const {
  const MutexLock lock(mutex_);
  std::string out;
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  out +=
      "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", "
      "\"args\": {\"name\": \"qntn\"}}";
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    const MutexLock buffer_lock(buffer->mutex);
    const std::string tid = std::to_string(buffer->tid);
    out += ",\n{\"ph\": \"M\", \"pid\": 1, \"tid\": " + tid +
           ", \"name\": \"thread_name\", \"args\": {\"name\": ";
    append_escaped(out, buffer->name);
    out += "}}";
    out += ",\n{\"ph\": \"M\", \"pid\": 1, \"tid\": " + tid +
           ", \"name\": \"thread_sort_index\", \"args\": {\"sort_index\": " +
           tid + "}}";

    // Ring order is write order; sort by start so nested spans (recorded at
    // their end) render parent-first and the output is reproducible.
    std::vector<SpanRecord> spans = buffer->ring;
    std::stable_sort(spans.begin(), spans.end(),
                     [](const SpanRecord& a, const SpanRecord& b) {
                       return a.start_ns < b.start_ns;
                     });
    for (const SpanRecord& span : spans) {
      out += ",\n{\"ph\": \"X\", \"pid\": 1, \"tid\": " + tid + ", \"name\": ";
      append_escaped(out, span.name);
      out += ", \"ts\": ";
      append_us(out, span.start_ns);
      out += ", \"dur\": ";
      append_us(out, span.dur_ns);
      out += ", \"args\": {";
      if (span.arg != SpanRecord::kNoArg) {
        out += "\"n\": " + std::to_string(span.arg);
      }
      out += "}}";
    }
    const std::uint64_t dropped = buffer->total - buffer->ring.size();
    if (dropped > 0) {
      out += ",\n{\"ph\": \"M\", \"pid\": 1, \"tid\": " + tid +
             ", \"name\": \"qntn_dropped_spans\", \"args\": {\"count\": " +
             std::to_string(dropped) + "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

void Profiler::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot write profile output: " + path);
  out << chrome_trace_json();
}

Profiler* ambient_profiler() noexcept { return t_ambient_profiler; }

ScopedProfiler::ScopedProfiler(Profiler* profiler) noexcept
    : previous_(t_ambient_profiler) {
  t_ambient_profiler = profiler;
}

ScopedProfiler::~ScopedProfiler() { t_ambient_profiler = previous_; }

}  // namespace qntn::obs
