#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// \file perf_report.hpp
/// Machine-readable perf-bench results: the BENCH_<name>.json schema every
/// bench_perf_* binary emits (via bench/perf_harness.hpp), its parser, and
/// the baseline-vs-current comparison behind `qntn_report bench-compare` —
/// the perf regression gate CI pins against. The schema is versioned
/// ("qntn-bench-v1"); check_bench_schema() rejects files that drift so the
/// gate can never silently compare garbage.

namespace qntn::obs {

inline constexpr std::string_view kBenchSchemaVersion = "qntn-bench-v1";

/// One timed case: raw repeat wall times plus the derived robust stats.
struct BenchCase {
  std::string name;
  /// Work items per repeat (0 = unspecified); lets a reader derive
  /// items/sec without knowing the case body.
  std::uint64_t items = 0;
  std::vector<double> repeats_ms;  ///< one wall time per timed repeat
  double median_ms = 0.0;
  double mad_ms = 0.0;  ///< median absolute deviation, the noise yardstick
  double p95_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  double mean_ms = 0.0;
};

/// Derive the robust stats from `repeats_ms` (must be non-empty).
[[nodiscard]] BenchCase make_bench_case(std::string name, std::uint64_t items,
                                        std::vector<double> repeats_ms);

struct BenchReport {
  std::string schema{kBenchSchemaVersion};
  std::string bench;  ///< short name, e.g. "orbit" -> BENCH_orbit.json
  bool smoke = false;
  std::size_t warmup = 0;
  std::size_t repeats = 0;
  std::size_t threads = 0;     ///< process thread count at emission
  std::uint64_t max_rss_kb = 0;  ///< peak resident set size
  std::vector<BenchCase> cases;

  /// Deterministically ordered JSON rendering of the v1 schema.
  [[nodiscard]] std::string to_json() const;
};

/// Parse + validate one BENCH_*.json document; throws qntn::Error naming
/// the offending field on schema drift.
[[nodiscard]] BenchReport parse_bench_report(const std::string& json_text);

struct BenchCompareOptions {
  /// Relative slowdown on a case's median that counts as a regression.
  double threshold = 0.10;
  /// A regression must additionally exceed this many MADs of combined
  /// noise, so jittery micro-cases don't trip the gate.
  double mad_factor = 3.0;
  /// Cases faster than this are ignored entirely (clock granularity).
  double min_ms = 1e-4;
};

struct BenchCaseDelta {
  std::string name;
  double base_ms = 0.0;
  double new_ms = 0.0;
  double ratio = 1.0;  ///< new / base
  bool regressed = false;
  bool improved = false;
};

struct BenchComparison {
  std::vector<BenchCaseDelta> deltas;     ///< cases present in both reports
  std::vector<std::string> only_base;     ///< removed cases (warn)
  std::vector<std::string> only_current;  ///< added cases (warn)

  [[nodiscard]] bool regressed() const;
};

/// Compare current against baseline case-by-case on median_ms.
[[nodiscard]] BenchComparison compare_bench_reports(
    const BenchReport& baseline, const BenchReport& current,
    const BenchCompareOptions& options = {});

}  // namespace qntn::obs
