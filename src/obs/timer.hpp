#pragma once

#include <chrono>
#include <string_view>

#include "obs/registry.hpp"

/// \file timer.hpp
/// Scoped wall-clock timers for the simulator's hot phases (ephemeris
/// sampling, contact-plan compile, topology queries, serving, Kraus /
/// fidelity evaluation). Durations are recorded in seconds as samples of a
/// registry stat, so repeated phases accumulate count/mean/min/max.

namespace qntn::obs {

class ScopedTimer {
 public:
  /// Times into the ambient registry; a complete no-op (no clock read) when
  /// none is installed.
  explicit ScopedTimer(std::string_view name) : ScopedTimer(ambient(), name) {}

  /// Times into an explicit registry (nullptr disables the timer). `name`
  /// must outlive the scope — call sites pass string literals.
  ScopedTimer(Registry* registry, std::string_view name)
      : registry_(registry), name_(name) {
    if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ~ScopedTimer() {
    if (registry_ == nullptr) return;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    registry_->observe(name_, elapsed.count());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Registry* registry_;
  std::string_view name_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace qntn::obs
