#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "common/stats.hpp"

/// \file registry.hpp
/// Run-metrics registry: named counters and value distributions collected
/// while a scenario runs. Writes land in per-thread shards — the owning
/// thread is the only writer, so the counter hot path is a lock-free
/// relaxed atomic add and the distribution path takes an uncontended
/// per-shard mutex — and reads merge every shard into one snapshot. The
/// whole subsystem is pay-as-you-go: code instruments itself through the
/// ambient-registry helpers below, which collapse to one thread-local load
/// and a branch when no registry is installed.

namespace qntn::obs {

/// Point-in-time view of every metric, merged across shards. Counter and
/// stat names are sorted (std::map) so serialized snapshots are stable.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, RunningStats> stats;

  /// Deterministic JSON rendering:
  /// {"counters": {...}, "stats": {"name": {"count": ..., "mean": ...}}}.
  [[nodiscard]] std::string to_json() const;
};

class Registry {
 public:
  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Add `delta` to the named counter (creating it on first touch).
  void count(std::string_view name, std::uint64_t delta = 1);

  /// Add one sample to the named distribution (creating it on first touch).
  /// Timers record seconds here under "time.*_s" names.
  void observe(std::string_view name, double value);

  /// Merge every shard into one consistent snapshot.
  [[nodiscard]] MetricsSnapshot snapshot() const QNTN_EXCLUDES(mutex_);

  /// Convenience: the merged value of one counter (0 if never touched).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const
      QNTN_EXCLUDES(mutex_);

  /// Convenience: the merged distribution of one stat (empty if absent).
  [[nodiscard]] RunningStats stat(std::string_view name) const
      QNTN_EXCLUDES(mutex_);

 private:
  struct Shard;

  /// The calling thread's shard, created on first use. A small thread-local
  /// cache keyed by the registry serial makes the steady state allocation-
  /// and lock-free.
  Shard& local_shard() QNTN_EXCLUDES(mutex_);

  const std::uint64_t serial_;  ///< process-unique; guards the TLS cache
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<Shard>> shards_ QNTN_GUARDED_BY(mutex_);
  std::unordered_map<std::thread::id, Shard*> by_thread_
      QNTN_GUARDED_BY(mutex_);
};

/// The thread's ambient registry (nullptr when none is installed).
[[nodiscard]] Registry* ambient() noexcept;

/// RAII install of an ambient registry for the current thread. Scopes nest;
/// installing nullptr is allowed and turns the helpers below into no-ops.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry* registry) noexcept;
  ~ScopedRegistry();

  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* previous_;
};

/// Ambient-registry counter add; no-op (one TLS load + branch) without an
/// installed registry — cheap enough for per-query instrumentation on the
/// simulator's hot paths.
inline void count(std::string_view name, std::uint64_t delta = 1) {
  if (Registry* registry = ambient()) registry->count(name, delta);
}

/// Ambient-registry distribution sample; same no-op contract as count().
inline void observe(std::string_view name, double value) {
  if (Registry* registry = ambient()) registry->observe(name, value);
}

}  // namespace qntn::obs
