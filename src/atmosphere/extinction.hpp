#pragma once

/// \file extinction.hpp
/// Clear-air absorption/scattering losses along slant paths (the eta_atm
/// factor of the paper's Eq. 2). Modelled as Beer-Lambert with an
/// exponentially decaying extinction coefficient and a Kasten-Young airmass
/// that stays finite at the horizon. The HAP sits above most of the
/// atmosphere, so ground-HAP links see nearly the full column while
/// HAP-satellite links see almost none — the model handles arbitrary
/// endpoint altitudes via the altitude-band column integral.

namespace qntn::atmosphere {

struct ExtinctionModel {
  /// Transmittance of the full vertical column at zenith (clear sky).
  /// 0.98 corresponds to the paper's "ideal conditions" assumption at the
  /// calibrated wavelength; degrade towards ~0.6 for haze (see
  /// WeatherProfile in the channel module).
  double zenith_transmittance = 0.98;

  /// Scale height [m] of the extinction coefficient's exponential decay.
  double scale_height = 6600.0;

  /// Fraction of the full vertical optical depth contained between
  /// altitudes [h_lo, h_hi] (both in metres; 0 -> ground).
  [[nodiscard]] double column_fraction(double h_lo, double h_hi) const;

  /// Transmittance along a slant path between altitudes h_lo and h_hi at
  /// the given zenith angle [rad].
  [[nodiscard]] double transmittance(double zenith_angle, double h_lo,
                                     double h_hi) const;
};

/// Kasten-Young (1989) relative airmass; ~1 at zenith, ~38 at the horizon,
/// finite everywhere (unlike sec(zeta)). zenith_angle in radians.
[[nodiscard]] double kasten_young_airmass(double zenith_angle);

}  // namespace qntn::atmosphere
