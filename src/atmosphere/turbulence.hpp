#pragma once

/// \file turbulence.hpp
/// Optical turbulence along slant paths. Implements the Hufnagel-Valley 5/7
/// refractive-index structure profile Cn^2(h), its integrated moments, the
/// Fried coherence length r0, and the (weak-fluctuation) Rytov variance.
/// These feed the FSO channel's turbulence transmissivity, standing in for
/// Eq. (16) of the paper's reference [19] (Ghalaii & Pirandola 2022), which
/// is not bundled here — see DESIGN.md §1.

namespace qntn::atmosphere {

/// Parameters of the Hufnagel-Valley profile. Defaults give the canonical
/// HV5/7 model: r0 ≈ 5 cm and isoplanatic angle ≈ 7 urad at 0.5 um, zenith.
struct HufnagelValley {
  double wind_speed = 21.0;          ///< upper-atmosphere RMS wind [m/s]
  double ground_cn2 = 1.7e-14;       ///< A, ground-level Cn^2 [m^-2/3]

  /// Cn^2 at altitude h [m] above sea level.
  [[nodiscard]] double cn2(double altitude) const;

  /// Integral of Cn^2 over altitude from h_lo to h_hi [m] (vertical column).
  /// Computed by adaptive-step Simpson integration; accurate to ~1e-4
  /// relative for the smooth HV profile.
  [[nodiscard]] double integrated_cn2(double h_lo, double h_hi) const;
};

/// Fried parameter r0 [m] for a plane wave propagating along a slant path
/// with the given zenith angle, between altitudes [h_lo, h_hi].
///   r0 = (0.423 k^2 sec(zeta) * integral Cn^2)^(-3/5)
/// Larger r0 = calmer atmosphere. Paths entirely above the profile's
/// significant region return a very large r0 (no turbulence).
[[nodiscard]] double fried_parameter(const HufnagelValley& profile,
                                     double wavelength, double zenith_angle,
                                     double h_lo, double h_hi);

/// Rytov (log-amplitude) variance for a plane wave on the same geometry:
///   sigma_R^2 = 2.25 k^(7/6) sec(zeta)^(11/6) * int Cn^2(h) h^(5/6) dh.
/// Used to report the scintillation regime; the mean-transmissivity budget
/// uses r0-based beam spreading.
[[nodiscard]] double rytov_variance(const HufnagelValley& profile,
                                    double wavelength, double zenith_angle,
                                    double h_lo, double h_hi);

}  // namespace qntn::atmosphere
