#include "atmosphere/turbulence.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace qntn::atmosphere {

double HufnagelValley::cn2(double altitude) const {
  const double h = altitude < 0.0 ? 0.0 : altitude;
  const double h_km10 = h * 1e-5;  // h / 10^5 in the canonical formula
  const double w_term = 0.00594 * std::pow(wind_speed / 27.0, 2.0) *
                        std::pow(h_km10, 10.0) * std::exp(-h / 1000.0);
  const double mid_term = 2.7e-16 * std::exp(-h / 1500.0);
  const double ground_term = ground_cn2 * std::exp(-h / 100.0);
  return w_term + mid_term + ground_term;
}

namespace {

/// Simpson integration of f over [a, b] with n (even) panels.
template <typename F>
double simpson(const F& f, double a, double b, int n) {
  const double h = (b - a) / n;
  double sum = f(a) + f(b);
  for (int i = 1; i < n; ++i) {
    sum += f(a + h * i) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

}  // namespace

double HufnagelValley::integrated_cn2(double h_lo, double h_hi) const {
  QNTN_REQUIRE(h_hi >= h_lo, "integration bounds reversed");
  if (h_hi == h_lo) return 0.0;
  // The profile varies fastest near the ground (100 m scale height); split
  // the integral into a fine low band and a coarser upper band. The split
  // point is clamped into [h_lo, h_hi] so high-altitude bands (e.g. a
  // HAP-to-satellite path) integrate only their own span.
  auto f = [this](double h) { return cn2(h); };
  const double split = std::clamp(3000.0, h_lo, h_hi);
  double total = 0.0;
  if (split > h_lo) total += simpson(f, h_lo, split, 600);
  if (h_hi > split) total += simpson(f, split, h_hi, 400);
  return total;
}

double fried_parameter(const HufnagelValley& profile, double wavelength,
                       double zenith_angle, double h_lo, double h_hi) {
  QNTN_REQUIRE(wavelength > 0.0, "wavelength must be positive");
  QNTN_REQUIRE(zenith_angle >= 0.0 && zenith_angle < kPi / 2.0,
               "zenith angle must be in [0, pi/2)");
  const double k = kTwoPi / wavelength;
  const double mu0 = profile.integrated_cn2(h_lo, h_hi);
  if (mu0 <= 0.0) return 1e9;  // effectively no turbulence on this path
  const double sec_zeta = 1.0 / std::cos(zenith_angle);
  return std::pow(0.423 * k * k * sec_zeta * mu0, -3.0 / 5.0);
}

double rytov_variance(const HufnagelValley& profile, double wavelength,
                      double zenith_angle, double h_lo, double h_hi) {
  QNTN_REQUIRE(wavelength > 0.0, "wavelength must be positive");
  const double k = kTwoPi / wavelength;
  const double sec_zeta = 1.0 / std::cos(zenith_angle);
  auto f = [&](double h) {
    return profile.cn2(h) * std::pow(std::max(h - h_lo, 0.0), 5.0 / 6.0);
  };
  // Same band-split integration as integrated_cn2.
  const double split = std::clamp(3000.0, h_lo, h_hi);
  double integral = 0.0;
  auto simpson_local = [&](double a, double b, int n) {
    const double step = (b - a) / n;
    double sum = f(a) + f(b);
    for (int i = 1; i < n; ++i) sum += f(a + step * i) * (i % 2 == 1 ? 4.0 : 2.0);
    return sum * step / 3.0;
  };
  if (split > h_lo) integral += simpson_local(h_lo, split, 600);
  if (h_hi > split) integral += simpson_local(split, h_hi, 400);
  return 2.25 * std::pow(k, 7.0 / 6.0) * std::pow(sec_zeta, 11.0 / 6.0) * integral;
}

}  // namespace qntn::atmosphere
