#include "atmosphere/extinction.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace qntn::atmosphere {

double kasten_young_airmass(double zenith_angle) {
  const double z = std::clamp(zenith_angle, 0.0, kPi / 2.0);
  const double apparent_el_deg = 90.0 - rad_to_deg(z);
  return 1.0 / (std::cos(z) + 0.50572 * std::pow(apparent_el_deg + 6.07995, -1.6364));
}

double ExtinctionModel::column_fraction(double h_lo, double h_hi) const {
  QNTN_REQUIRE(h_hi >= h_lo, "altitude band reversed");
  const double lo = std::max(h_lo, 0.0);
  const double hi = std::max(h_hi, 0.0);
  // With beta(h) = beta0 exp(-h/H), the band integral over the full column
  // integral is exp(-lo/H) - exp(-hi/H).
  return std::exp(-lo / scale_height) - std::exp(-hi / scale_height);
}

double ExtinctionModel::transmittance(double zenith_angle, double h_lo,
                                      double h_hi) const {
  QNTN_REQUIRE(zenith_transmittance > 0.0 && zenith_transmittance <= 1.0,
               "zenith transmittance must be in (0, 1]");
  const double tau_zenith = -std::log(zenith_transmittance);
  const double tau = tau_zenith * column_fraction(std::min(h_lo, h_hi),
                                                  std::max(h_lo, h_hi)) *
                     kasten_young_airmass(zenith_angle);
  return std::exp(-tau);
}

}  // namespace qntn::atmosphere
