#pragma once

#include <stdexcept>
#include <string>

/// \file error.hpp
/// Error handling policy for the project: programming errors and violated
/// preconditions throw qntn::Error (derived from std::logic_error /
/// std::runtime_error as appropriate). Numerical routines that can fail for
/// data-dependent reasons document and throw NumericalError.

namespace qntn {

/// Base exception for all QNTN errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Thrown when an iterative numerical routine fails to converge.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file, int line,
                                     const std::string& message);
}  // namespace detail

}  // namespace qntn

/// Precondition check that is always on (cheap checks guarding public API).
#define QNTN_REQUIRE(expr, message)                                              \
  do {                                                                           \
    if (!(expr)) {                                                               \
      ::qntn::detail::throw_precondition(#expr, __FILE__, __LINE__, (message));  \
    }                                                                            \
  } while (false)
