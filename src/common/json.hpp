#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file json.hpp
/// Minimal JSON document model + recursive-descent parser. Exists so the
/// tools can *read back* the JSON this repo emits (metrics snapshots,
/// BENCH_*.json perf reports) — most prominently `qntn_report
/// bench-compare`, the perf regression gate. Deliberately small: no
/// streaming, no \uXXXX surrogate pairs beyond Latin-1, numbers as double.
/// Parse errors throw qntn::Error with a byte offset.

namespace qntn::json {

class Value {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Value() = default;

  /// Parse one JSON document (trailing whitespace allowed, trailing
  /// garbage rejected). Throws qntn::Error on malformed input.
  [[nodiscard]] static Value parse(std::string_view text);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::Number; }
  [[nodiscard]] bool is_string() const { return type_ == Type::String; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }

  /// Typed accessors; throw qntn::Error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Value>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const;

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Object member lookup; throws qntn::Error naming the missing key.
  [[nodiscard]] const Value& at(std::string_view key) const;

 private:
  friend class Parser;

  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

}  // namespace qntn::json
