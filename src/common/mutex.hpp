#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_safety.hpp"

/// \file mutex.hpp
/// Annotated locking primitives: a std::mutex wrapper carrying the clang
/// thread-safety `capability` attribute, the matching RAII holder, and a
/// condition variable that waits on it. std::mutex / std::lock_guard work
/// fine dynamically but are invisible to -Wthread-safety with libstdc++
/// (only libc++ annotates them), so every mutex that guards cross-thread
/// state in this codebase uses these types instead — that is what lets
/// QNTN_GUARDED_BY members be checked at compile time.
///
/// The wrappers add nothing at runtime: Mutex is layout-identical to
/// std::mutex, MutexLock compiles to the same code as std::lock_guard, and
/// CondVar is a std::condition_variable_any (needed because it waits on the
/// annotated Mutex rather than a std::unique_lock<std::mutex>; pool wakeups
/// are far off any hot path).

namespace qntn {

class CondVar;

/// Exclusive lock with thread-safety-analysis annotations.
class QNTN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QNTN_ACQUIRE() { impl_.lock(); }
  void unlock() QNTN_RELEASE() { impl_.unlock(); }
  [[nodiscard]] bool try_lock() QNTN_TRY_ACQUIRE(true) {
    return impl_.try_lock();
  }

 private:
  std::mutex impl_;
};

/// RAII holder for Mutex; the annotated equivalent of std::lock_guard.
class QNTN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) QNTN_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() QNTN_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable waiting on an annotated Mutex. Callers hold the mutex
/// (via MutexLock) and loop on their predicate around wait() — the guarded
/// reads in the loop condition are then visible to the analysis, which a
/// predicate lambda would hide:
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(mutex_);
class CondVar {
 public:
  /// Atomically releases `mutex`, sleeps, and reacquires before returning.
  /// The capability is held again on return, so the REQUIRES contract is
  /// preserved across the call as far as callers can observe.
  void wait(Mutex& mutex) QNTN_REQUIRES(mutex) { impl_.wait(mutex); }

  void notify_one() noexcept { impl_.notify_one(); }
  void notify_all() noexcept { impl_.notify_all(); }

 private:
  std::condition_variable_any impl_;
};

}  // namespace qntn
