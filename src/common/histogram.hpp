#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// \file histogram.hpp
/// Fixed-bin histogram for reporting distributions (fidelity of served
/// requests, pass durations, latency) in the bench harnesses and reports.

namespace qntn {

class Histogram {
 public:
  /// `bins` equal-width bins covering [lo, hi); out-of-range samples are
  /// counted in saturating edge bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);

  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_[bin]; }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;

  /// Fraction of samples in [bin_low, bin_high) of the given bin.
  [[nodiscard]] double fraction(std::size_t bin) const;

  /// Approximate quantile from the binned data (linear within the bin).
  /// Precondition: at least one sample; q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

  /// Compact ASCII rendering, one line per non-empty bin.
  [[nodiscard]] std::string to_string(std::size_t max_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace qntn
