#pragma once

#include <cstdint>
#include <random>

/// \file rng.hpp
/// Deterministic random number generation. Every stochastic component of the
/// simulator draws from an Rng constructed from a named seed in the scenario
/// config, so results are reproducible across runs and thread counts.

namespace qntn {

/// Thin wrapper around std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal draw scaled by sigma.
  [[nodiscard]] double normal(double mean, double sigma) {
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Derive an independent child generator; used to give each parallel task
  /// its own stream while keeping the whole run a function of one seed.
  [[nodiscard]] Rng fork() {
    return Rng(engine_());
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace qntn
