#include "common/thread_pool.hpp"

#include <algorithm>

namespace qntn {

namespace {
thread_local std::string t_thread_label = "main";
}  // namespace

const std::string& thread_label() { return t_thread_label; }

void set_thread_label(std::string label) {
  t_thread_label = std::move(label);
}

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads != 0 ? threads : std::thread::hardware_concurrency();
  n = std::max<std::size_t>(n, 1);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] {
      set_thread_label("worker-" + std::to_string(i));
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    const MutexLock lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      const MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions are captured into the task's future
  }
}

void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit([&fn, i] { fn(i); }));
  }
  for (std::future<void>& f : futures) f.get();
}

void parallel_for_chunks(
    ThreadPool& pool, std::size_t count, std::size_t max_chunks,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  // More chunks than hardware threads only adds scheduling churn: each
  // chunk is uniform work, so extra fan-out cannot rebalance anything (on a
  // single-core host it degenerates gracefully to one serial chunk). The
  // result is chunk-count independent either way — callers merge in index
  // order.
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t chunks =
      std::clamp<std::size_t>(std::min(max_chunks, hardware), 1, count);
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * count / chunks;
    const std::size_t end = (c + 1) * count / chunks;
    futures.push_back(pool.submit([&fn, begin, end] { fn(begin, end); }));
  }
  for (std::future<void>& f : futures) f.get();
}

}  // namespace qntn
