#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace qntn {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  QNTN_REQUIRE(hi > lo, "histogram range must be non-empty");
  QNTN_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double value) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>(std::floor((value - lo_) / width));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_low(std::size_t bin) const {
  QNTN_REQUIRE(bin < counts_.size(), "bin out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const {
  QNTN_REQUIRE(bin < counts_.size(), "bin out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin + 1);
}

double Histogram::fraction(std::size_t bin) const {
  QNTN_REQUIRE(bin < counts_.size(), "bin out of range");
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

double Histogram::quantile(double q) const {
  QNTN_REQUIRE(total_ > 0, "quantile of an empty histogram");
  QNTN_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    const double next = cumulative + static_cast<double>(counts_[bin]);
    // Skip empty bins so q = 0 lands on the first occupied bin instead of
    // the histogram's lower edge.
    if (counts_[bin] > 0 && next >= target) {
      const double within =
          (target - cumulative) / static_cast<double>(counts_[bin]);
      return bin_low(bin) + within * (bin_high(bin) - bin_low(bin));
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::to_string(std::size_t max_width) const {
  std::ostringstream os;
  const std::size_t peak =
      *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    if (counts_[bin] == 0) continue;
    const auto bar = peak > 0 ? counts_[bin] * max_width / peak : 0;
    os << '[' << bin_low(bin) << ", " << bin_high(bin) << ") "
       << std::string(std::max<std::size_t>(bar, 1), '#') << ' '
       << counts_[bin] << '\n';
  }
  return os.str();
}

}  // namespace qntn
