#pragma once

#include <cmath>
#include <ostream>

/// \file vec3.hpp
/// Minimal 3-vector for geometry and orbital mechanics. Value type, all
/// operations constexpr-friendly and allocation-free.

namespace qntn {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  constexpr Vec3& operator*=(double s) { x *= s; y *= s; z *= s; return *this; }

  [[nodiscard]] constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] constexpr double norm_sq() const { return dot(*this); }
  [[nodiscard]] double norm() const { return std::sqrt(norm_sq()); }

  /// Unit vector in the same direction. Precondition: norm() > 0 (returns the
  /// zero vector unchanged if it is exactly zero, so callers can branch).
  [[nodiscard]] Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? *this / n : *this;
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

[[nodiscard]] inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

/// Angle between two nonzero vectors in [0, pi], numerically stable near 0/pi.
[[nodiscard]] inline double angle_between(const Vec3& a, const Vec3& b) {
  // atan2 of |a x b| and a.b avoids acos() precision loss near the ends.
  return std::atan2(a.cross(b).norm(), a.dot(b));
}

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace qntn
