#pragma once

#include <vector>

/// \file interval_set.hpp
/// Accumulates half-open time intervals [start, end) and reports their total
/// measure and merged form. This implements the bookkeeping behind the
/// paper's coverage period, Eq. (6): T_c = sum_k (t_end,k - t_start,k).

namespace qntn {

struct Interval {
  double start = 0.0;
  double end = 0.0;

  [[nodiscard]] double length() const { return end - start; }
  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Builds a set of disjoint intervals from a monotone stream of boolean
/// samples ("connected at time t?") or from explicit interval insertions.
class IntervalSet {
 public:
  /// Feed one sample of a piecewise-constant signal observed at time t with
  /// sampling period dt: if active, the interval [t, t+dt) is covered.
  /// Samples must be fed in non-decreasing time order.
  void add_sample(double t, double dt, bool active);

  /// Insert an explicit interval [start, end); ignored if start >= end.
  void add_interval(double start, double end);

  /// Total covered measure (Eq. 6's T_c), after merging overlaps.
  [[nodiscard]] double total() const;

  /// Disjoint, sorted, merged intervals.
  [[nodiscard]] std::vector<Interval> merged() const;

  /// Number of merged disjoint intervals (connectivity episodes).
  [[nodiscard]] std::size_t episode_count() const { return merged().size(); }

  [[nodiscard]] bool empty() const { return raw_.empty(); }

 private:
  std::vector<Interval> raw_;
};

/// Pointwise intersection of two disjoint, sorted interval lists (as
/// produced by IntervalSet::merged). Used by the contact-plan scheduler to
/// find times when a relay sees both LANs of a pair at once.
[[nodiscard]] std::vector<Interval> intersect_merged(
    const std::vector<Interval>& a, const std::vector<Interval>& b);

}  // namespace qntn
