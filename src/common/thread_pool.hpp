#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hpp"

/// \file thread_pool.hpp
/// Fixed-size thread pool plus a deterministic parallel_for_index helper.
/// The simulator's sweeps (constellation sizes, time steps) are
/// embarrassingly parallel; each index writes to its own slot of a
/// preallocated results vector, so no synchronization is needed beyond the
/// pool's queue and the results are identical for any thread count.

namespace qntn {

/// Human-readable label of the calling thread: "main" unless overridden.
/// Pool workers label themselves "worker-N"; the span profiler names trace
/// threads with it. The reference stays valid for the thread's lifetime.
[[nodiscard]] const std::string& thread_label();

/// Override the calling thread's label (tests, custom worker threads).
void set_thread_label(std::string label);

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least one worker is always created).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the returned future reports completion / exceptions.
  std::future<void> submit(std::function<void()> task) QNTN_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop() QNTN_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;  ///< set in ctor, joined in dtor only
  Mutex mutex_;
  std::queue<std::packaged_task<void()>> queue_ QNTN_GUARDED_BY(mutex_);
  CondVar cv_;
  bool stopping_ QNTN_GUARDED_BY(mutex_) = false;
};

/// Run fn(i) for i in [0, count) on the pool; blocks until all complete.
/// Exceptions from tasks are rethrown (the first one encountered).
void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& fn);

/// Run fn(begin, end) over at most max_chunks contiguous ranges covering
/// [0, count); blocks until all complete. Contiguity is the point: the
/// snapshot engine hands each worker a run of consecutive time steps so
/// per-epoch caches (graph skeleton, route trees) stay hot within a chunk.
/// The fan-out is additionally capped at the hardware thread count —
/// results never depend on the chunk count (callers merge in index order),
/// so oversubscribing a small machine would only add scheduling churn.
/// Exceptions from tasks are rethrown (the first one encountered).
void parallel_for_chunks(ThreadPool& pool, std::size_t count,
                         std::size_t max_chunks,
                         const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace qntn
