#pragma once

/// \file constants.hpp
/// Physical and mathematical constants used across the QNTN libraries.
/// All values are SI unless the name says otherwise.

namespace qntn {

/// Mathematical constants (C++20 <numbers> exists, but we keep the project's
/// constants in one place together with the physical ones).
inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;
inline constexpr double kDegPerRad = 180.0 / kPi;
inline constexpr double kRadPerDeg = kPi / 180.0;

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Standard gravitational parameter of Earth, GM [m^3/s^2] (WGS84).
inline constexpr double kEarthMu = 3.986004418e14;

/// Mean Earth radius [m] (spherical model used by the paper's geometry).
inline constexpr double kEarthRadius = 6'371'000.0;

/// WGS84 ellipsoid semi-major axis [m].
inline constexpr double kWgs84A = 6'378'137.0;

/// WGS84 flattening (dimensionless).
inline constexpr double kWgs84F = 1.0 / 298.257223563;

/// WGS84 first eccentricity squared.
inline constexpr double kWgs84E2 = kWgs84F * (2.0 - kWgs84F);

/// Earth rotation rate [rad/s] (sidereal).
inline constexpr double kEarthRotationRate = 7.2921150e-5;

/// J2 zonal harmonic coefficient of Earth's gravity field.
inline constexpr double kEarthJ2 = 1.08262668e-3;

/// Seconds per day / minutes per day as used by the paper's Eq. (7).
inline constexpr double kSecondsPerDay = 86'400.0;
inline constexpr double kMinutesPerDay = 1'440.0;

/// The paper's FSO elevation mask (Section IV): pi/9 rad = 20 degrees.
inline constexpr double kPaperElevationMask = kPi / 9.0;

/// Altitude [m] above which atmospheric turbulence and extinction are
/// negligible for the link budgets in this project (HV5/7 Cn^2 has decayed
/// by many orders of magnitude by 20 km; we use 30 km to be conservative).
inline constexpr double kAtmosphereTopAltitude = 30'000.0;

}  // namespace qntn
