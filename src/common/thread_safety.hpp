#pragma once

/// \file thread_safety.hpp
/// Clang thread-safety-analysis annotation macros, compiled out on every
/// other compiler. The CI lint job builds the tree with clang and
/// -Wthread-safety (promoted to an error by QNTN_WERROR), so the lock
/// discipline written down with these macros — which data member a mutex
/// guards, which functions must (or must not) be entered with it held — is
/// machine-checked on every commit instead of living only in comments.
///
/// The macros carry a QNTN_ prefix on purpose: the conventional bare names
/// collide with real code (`REQUIRES(...)` would be eaten by C++20
/// requires-clauses written as `requires (...)`).
///
/// Usage map (see common/mutex.hpp for the annotated primitives):
///   QNTN_CAPABILITY("mutex")   on a lockable type
///   QNTN_SCOPED_CAPABILITY     on an RAII lock holder
///   QNTN_GUARDED_BY(mutex_)    on a data member
///   QNTN_REQUIRES(mutex_)      caller must hold mutex_
///   QNTN_EXCLUDES(mutex_)      caller must NOT hold mutex_ (anti-deadlock)
///   QNTN_ACQUIRE()/QNTN_RELEASE()/QNTN_TRY_ACQUIRE(bool)
///   QNTN_NO_THREAD_SAFETY_ANALYSIS  opt a function out (justify in a
///                                   comment; TSan still covers it)

#if defined(__clang__)
#define QNTN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define QNTN_THREAD_ANNOTATION(x)  // no-op on GCC / MSVC
#endif

#define QNTN_CAPABILITY(x) QNTN_THREAD_ANNOTATION(capability(x))
#define QNTN_SCOPED_CAPABILITY QNTN_THREAD_ANNOTATION(scoped_lockable)
#define QNTN_GUARDED_BY(x) QNTN_THREAD_ANNOTATION(guarded_by(x))
#define QNTN_PT_GUARDED_BY(x) QNTN_THREAD_ANNOTATION(pt_guarded_by(x))
#define QNTN_REQUIRES(...) \
  QNTN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define QNTN_EXCLUDES(...) QNTN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define QNTN_ACQUIRE(...) \
  QNTN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define QNTN_RELEASE(...) \
  QNTN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define QNTN_TRY_ACQUIRE(...) \
  QNTN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define QNTN_ASSERT_CAPABILITY(x) QNTN_THREAD_ANNOTATION(assert_capability(x))
#define QNTN_RETURN_CAPABILITY(x) QNTN_THREAD_ANNOTATION(lock_returned(x))
#define QNTN_NO_THREAD_SAFETY_ANALYSIS \
  QNTN_THREAD_ANNOTATION(no_thread_safety_analysis)
