#include "common/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace qntn {

void Table::set_header(std::vector<std::string> header) {
  QNTN_REQUIRE(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  QNTN_REQUIRE(header_.empty() || row.size() == header_.size(),
               "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&os, &widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[i]))
         << std::left << row[i];
    }
    os << " |\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 1;
    for (std::size_t w : widths) total += w + 3;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open for writing: " + path);
  out << to_csv();
  if (!out) throw Error("write failed: " + path);
}

}  // namespace qntn
