#include "common/interval_set.hpp"

#include <algorithm>

namespace qntn {

void IntervalSet::add_sample(double t, double dt, bool active) {
  if (active) add_interval(t, t + dt);
}

void IntervalSet::add_interval(double start, double end) {
  if (start >= end) return;
  // Fast path: extend the previous interval when samples arrive in order and
  // abut exactly (the common case when fed from a fixed-step simulation).
  if (!raw_.empty() && raw_.back().end == start) {
    raw_.back().end = end;
    return;
  }
  raw_.push_back({start, end});
}

std::vector<Interval> IntervalSet::merged() const {
  std::vector<Interval> sorted = raw_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Interval& a, const Interval& b) { return a.start < b.start; });
  std::vector<Interval> out;
  for (const Interval& iv : sorted) {
    if (!out.empty() && iv.start <= out.back().end) {
      out.back().end = std::max(out.back().end, iv.end);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

double IntervalSet::total() const {
  double sum = 0.0;
  for (const Interval& iv : merged()) sum += iv.length();
  return sum;
}

std::vector<Interval> intersect_merged(const std::vector<Interval>& a,
                                       const std::vector<Interval>& b) {
  std::vector<Interval> out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double start = std::max(a[i].start, b[j].start);
    const double end = std::min(a[i].end, b[j].end);
    if (start < end) out.push_back({start, end});
    // Advance whichever interval ends first.
    if (a[i].end < b[j].end) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

}  // namespace qntn
