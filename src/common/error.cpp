#include "common/error.hpp"

#include <sstream>

namespace qntn::detail {

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& message) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) os << " — " << message;
  throw PreconditionError(os.str());
}

}  // namespace qntn::detail
