#include "common/json.hpp"

#include <cctype>
#include <cstdlib>

#include "common/error.hpp"

namespace qntn::json {

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  throw Error("json parse error at byte " + std::to_string(offset) + ": " +
              what);
}

}  // namespace

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return value;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Value value;
        value.type_ = Value::Type::String;
        value.string_ = parse_string();
        return value;
      }
      case 't':
      case 'f': {
        Value value;
        value.type_ = Value::Type::Bool;
        if (consume_literal("true")) {
          value.bool_ = true;
        } else if (consume_literal("false")) {
          value.bool_ = false;
        } else {
          fail(pos_, "invalid literal");
        }
        return value;
      }
      case 'n': {
        if (!consume_literal("null")) fail(pos_, "invalid literal");
        return Value{};
      }
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value value;
    value.type_ = Value::Type::Object;
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      if (peek() != '"') fail(pos_, "expected object key");
      std::string key = parse_string();
      expect(':');
      value.members_.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return value;
      if (c != ',') fail(pos_ - 1, "expected ',' or '}'");
    }
  }

  Value parse_array() {
    expect('[');
    Value value;
    value.type_ = Value::Type::Array;
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      value.items_.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return value;
      if (c != ',') fail(pos_ - 1, "expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out += escape;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail(pos_ - 1, "invalid \\u escape");
            }
          }
          // The writers in this repo only escape control characters, so a
          // Latin-1 subset suffices; wider code points round-trip as '?'.
          out += code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          fail(pos_ - 1, "unknown escape");
      }
    }
    fail(pos_, "unterminated string");
  }

  Value parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail(pos_, "expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail(start, "invalid number");
    Value value;
    value.type_ = Value::Type::Number;
    value.number_ = number;
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value Value::parse(std::string_view text) { return Parser(text).run(); }

bool Value::as_bool() const {
  if (type_ != Type::Bool) throw Error("json: not a bool");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::Number) throw Error("json: not a number");
  return number_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::String) throw Error("json: not a string");
  return string_;
}

const std::vector<Value>& Value::items() const {
  if (type_ != Type::Array) throw Error("json: not an array");
  return items_;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  if (type_ != Type::Object) throw Error("json: not an object");
  return members_;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* value = find(key);
  if (value == nullptr) {
    throw Error("json: missing key \"" + std::string(key) + "\"");
  }
  return *value;
}

}  // namespace qntn::json
