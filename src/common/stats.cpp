#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qntn {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double q) {
  QNTN_REQUIRE(!values.empty(), "percentile of empty set");
  QNTN_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace qntn
