#pragma once

#include <cmath>

#include "common/constants.hpp"

/// \file units.hpp
/// Tiny unit-conversion helpers. The codebase stores everything in SI
/// (metres, radians, seconds); these helpers exist so call sites can speak
/// the units the paper uses (km, degrees, dB/km) without silent mistakes.

namespace qntn {

[[nodiscard]] constexpr double deg_to_rad(double deg) noexcept { return deg * kRadPerDeg; }
[[nodiscard]] constexpr double rad_to_deg(double rad) noexcept { return rad * kDegPerRad; }
[[nodiscard]] constexpr double km_to_m(double km) noexcept { return km * 1000.0; }
[[nodiscard]] constexpr double m_to_km(double m) noexcept { return m / 1000.0; }
[[nodiscard]] constexpr double minutes_to_s(double min) noexcept { return min * 60.0; }
[[nodiscard]] constexpr double s_to_minutes(double s) noexcept { return s / 60.0; }

/// Convert a fiber attenuation coefficient given in dB/km (the unit used by
/// the paper, 0.15 dB/km) into the Napierian coefficient alpha [1/m] such
/// that transmissivity eta = exp(-alpha * length_m)  (paper Eq. 1).
[[nodiscard]] inline double db_per_km_to_neper_per_m(double db_per_km) noexcept {
  // 10^(-dB/10) = e^(-alpha l)  =>  alpha = dB * ln(10) / 10 per km.
  return db_per_km * std::log(10.0) / 10.0 / 1000.0;
}

/// Power ratio -> decibels (guards against zero by returning -inf).
[[nodiscard]] inline double ratio_to_db(double ratio) noexcept {
  return 10.0 * std::log10(ratio);
}

/// Decibels -> power ratio.
[[nodiscard]] inline double db_to_ratio(double db) noexcept {
  return std::pow(10.0, db / 10.0);
}

/// Wrap an angle to [0, 2*pi).
[[nodiscard]] inline double wrap_two_pi(double angle) noexcept {
  double a = std::fmod(angle, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  return a;
}

/// Wrap an angle to (-pi, pi].
[[nodiscard]] inline double wrap_pi(double angle) noexcept {
  double a = wrap_two_pi(angle);
  if (a > kPi) a -= kTwoPi;
  return a;
}

}  // namespace qntn
