#pragma once

#include <string>
#include <vector>

/// \file table.hpp
/// ASCII table / CSV emission used by the reproduction harnesses in bench/
/// to print the paper's tables and figure series.

namespace qntn {

/// Column-aligned ASCII table with an optional title; also serializable
/// to CSV so the figure series can be plotted externally.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  [[nodiscard]] static std::string num(double v, int precision = 4);

  /// Render the table with box-drawing-free ASCII (pipes and dashes).
  [[nodiscard]] std::string to_string() const;

  /// Render as CSV (header + rows, comma separated, RFC-4180-ish quoting).
  [[nodiscard]] std::string to_csv() const;

  /// Write CSV to a file path; throws qntn::Error on I/O failure.
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qntn
