#pragma once

#include <cstddef>
#include <vector>

/// \file stats.hpp
/// Streaming and batch statistics used by the experiment harnesses
/// (average fidelity, served-request percentages, percentiles for reports).

namespace qntn {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch percentile via linear interpolation between closest ranks.
/// q in [0, 1]. Precondition: values non-empty.
[[nodiscard]] double percentile(std::vector<double> values, double q);

}  // namespace qntn
