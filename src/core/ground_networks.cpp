#include "core/ground_networks.hpp"

#include "common/error.hpp"

namespace qntn::core {

namespace {

LanDefinition make_lan(std::string name,
                       std::initializer_list<std::pair<double, double>> coords) {
  LanDefinition lan{std::move(name), {}};
  lan.nodes.reserve(coords.size());
  for (const auto& [lat, lon] : coords) {
    lan.nodes.push_back(geo::Geodetic::from_degrees(lat, lon, 0.0));
  }
  return lan;
}

}  // namespace

LanDefinition tennessee_tech() {
  // Table I, "Tennessee Tech University".
  return make_lan("TTU", {
                             {36.1757, -85.5066},
                             {36.1751, -85.5067},
                             {36.1754, -85.5074},
                             {36.1755, -85.5058},
                             {36.1756, -85.5080},
                         });
}

LanDefinition epb_chattanooga() {
  // Table I, "EBP commercial network" (EPB, Chattanooga).
  return make_lan("EPB", {
                             {35.04159, -85.2799},
                             {35.04169, -85.2801},
                             {35.04179, -85.2803},
                             {35.04189, -85.2805},
                             {35.04199, -85.2807},
                             {35.04051, -85.2806},
                             {35.04061, -85.2807},
                             {35.04071, -85.2808},
                             {35.04081, -85.2809},
                             {35.04091, -85.2810},
                             {35.03971, -85.2810},
                             {35.03981, -85.2811},
                             {35.03991, -85.2812},
                             {35.04001, -85.2813},
                             {35.04011, -85.2814},
                         });
}

LanDefinition oak_ridge() {
  // Table I, "Oak Ridge National Laboratory".
  return make_lan("ORNL", {
                              {35.91, -84.3},
                              {35.91, -84.303},
                              {35.918, -84.304},
                              {35.92, -84.321},
                              {35.927, -84.313},
                              {35.92380, -84.316},
                              {35.9285, -84.31283},
                              {35.9294, -84.3101},
                              {35.9293, -84.3106},
                              {35.9298, -84.3106},
                              {35.9309, -84.308},
                          });
}

std::vector<LanDefinition> qntn_lans() {
  return {tennessee_tech(), epb_chattanooga(), oak_ridge()};
}

geo::Geodetic qntn_centroid() {
  double lat = 0.0, lon = 0.0;
  std::size_t count = 0;
  for (const LanDefinition& lan : qntn_lans()) {
    for (const geo::Geodetic& g : lan.nodes) {
      lat += g.latitude;
      lon += g.longitude;
      ++count;
    }
  }
  QNTN_REQUIRE(count > 0, "no ground nodes");
  return {lat / static_cast<double>(count), lon / static_cast<double>(count), 0.0};
}

}  // namespace qntn::core
