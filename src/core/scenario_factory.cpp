#include "core/scenario_factory.hpp"

#include <memory>
#include <optional>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/ground_networks.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "orbit/constellation.hpp"
#include "plan/contact_topology.hpp"

namespace qntn::core {

sim::NetworkModel build_ground_model(const QntnConfig& config) {
  sim::NetworkModel model;
  for (const LanDefinition& lan : qntn_lans()) {
    model.add_lan(lan.name, lan.nodes, config.ground_terminal());
  }
  return model;
}

namespace {

void add_constellation(sim::NetworkModel& model, const QntnConfig& config,
                       std::size_t n_satellites, ThreadPool* pool) {
  const obs::ScopedTimer timer("time.ephemeris_s");
  const obs::Span span("core.add_constellation", n_satellites);
  const auto elements = orbit::qntn_constellation(n_satellites);
  orbit::PropagatorOptions options;
  options.include_j2 = config.include_j2;
  // Ephemerides are generated into per-index slots — in parallel when a
  // pool is given (workers inherit the caller's thread-safe ambient
  // registry/profiler) — and the satellites then enter the model serially
  // in index order, so node ids and everything derived from them are
  // independent of the thread count.
  std::vector<std::optional<orbit::Ephemeris>> ephemerides(elements.size());
  const auto generate = [&](std::size_t i) {
    const orbit::TwoBodyPropagator propagator(elements[i], options);
    ephemerides[i] = orbit::Ephemeris::generate(
        propagator, config.day_duration, config.ephemeris_step, config.gmst0);
  };
  if (pool != nullptr && pool->size() > 1 && elements.size() > 1) {
    obs::Registry* const registry = obs::ambient();
    obs::Profiler* const profiler = obs::ambient_profiler();
    parallel_for_index(*pool, elements.size(), [&](std::size_t i) {
      const obs::ScopedRegistry worker_registry(registry);
      const obs::ScopedProfiler worker_profiler(profiler);
      generate(i);
    });
  } else {
    for (std::size_t i = 0; i < elements.size(); ++i) generate(i);
  }
  for (std::size_t i = 0; i < elements.size(); ++i) {
    model.add_satellite("sat" + std::to_string(i), std::move(*ephemerides[i]),
                        config.satellite_terminal());
  }
}

}  // namespace

sim::NetworkModel build_space_ground_model(const QntnConfig& config,
                                           std::size_t n_satellites,
                                           ThreadPool* pool) {
  sim::NetworkModel model = build_ground_model(config);
  add_constellation(model, config, n_satellites, pool);
  return model;
}

sim::NetworkModel build_air_ground_model(const QntnConfig& config) {
  sim::NetworkModel model = build_ground_model(config);
  model.add_hap("HAP", config.hap_position, config.hap_terminal());
  return model;
}

sim::NetworkModel build_hybrid_model(const QntnConfig& config,
                                     std::size_t n_satellites,
                                     ThreadPool* pool) {
  sim::NetworkModel model = build_ground_model(config);
  model.add_hap("HAP", config.hap_position, config.hap_terminal());
  add_constellation(model, config, n_satellites, pool);
  return model;
}

Topology make_topology(const QntnConfig& config,
                       const sim::NetworkModel& model, ThreadPool* pool) {
  Topology topology;
  switch (config.topology_mode) {
    case TopologyMode::Rebuild:
      topology.owner = std::make_unique<sim::TopologyBuilder>(
          model, config.link_policy());
      break;
    case TopologyMode::ContactPlan: {
      const obs::ScopedTimer timer("time.contact_compile_s");
      const obs::Span span("core.make_topology");
      topology.plan =
          std::make_unique<plan::ContactPlan>(plan::compile_contact_plan(
              model, config.link_policy(), config.plan_options(), pool));
      topology.owner =
          std::make_unique<plan::ContactPlanTopology>(*topology.plan, model);
      break;
    }
  }
  return topology;
}

}  // namespace qntn::core
