#include "core/scenario_factory.hpp"

#include <memory>

#include "core/ground_networks.hpp"
#include "obs/profiler.hpp"
#include "obs/timer.hpp"
#include "orbit/constellation.hpp"
#include "plan/contact_topology.hpp"

namespace qntn::core {

sim::NetworkModel build_ground_model(const QntnConfig& config) {
  sim::NetworkModel model;
  for (const LanDefinition& lan : qntn_lans()) {
    model.add_lan(lan.name, lan.nodes, config.ground_terminal());
  }
  return model;
}

namespace {

void add_constellation(sim::NetworkModel& model, const QntnConfig& config,
                       std::size_t n_satellites) {
  const obs::ScopedTimer timer("time.ephemeris_s");
  const obs::Span span("core.add_constellation", n_satellites);
  const auto elements = orbit::qntn_constellation(n_satellites);
  orbit::PropagatorOptions options;
  options.include_j2 = config.include_j2;
  for (std::size_t i = 0; i < elements.size(); ++i) {
    const orbit::TwoBodyPropagator propagator(elements[i], options);
    orbit::Ephemeris ephemeris = orbit::Ephemeris::generate(
        propagator, config.day_duration, config.ephemeris_step, config.gmst0);
    model.add_satellite("sat" + std::to_string(i), std::move(ephemeris),
                        config.satellite_terminal());
  }
}

}  // namespace

sim::NetworkModel build_space_ground_model(const QntnConfig& config,
                                           std::size_t n_satellites) {
  sim::NetworkModel model = build_ground_model(config);
  add_constellation(model, config, n_satellites);
  return model;
}

sim::NetworkModel build_air_ground_model(const QntnConfig& config) {
  sim::NetworkModel model = build_ground_model(config);
  model.add_hap("HAP", config.hap_position, config.hap_terminal());
  return model;
}

sim::NetworkModel build_hybrid_model(const QntnConfig& config,
                                     std::size_t n_satellites) {
  sim::NetworkModel model = build_ground_model(config);
  model.add_hap("HAP", config.hap_position, config.hap_terminal());
  add_constellation(model, config, n_satellites);
  return model;
}

Topology make_topology(const QntnConfig& config,
                       const sim::NetworkModel& model) {
  Topology topology;
  switch (config.topology_mode) {
    case TopologyMode::Rebuild:
      topology.owner = std::make_unique<sim::TopologyBuilder>(
          model, config.link_policy());
      break;
    case TopologyMode::ContactPlan: {
      const obs::ScopedTimer timer("time.contact_compile_s");
      const obs::Span span("core.make_topology");
      topology.plan =
          std::make_unique<plan::ContactPlan>(plan::compile_contact_plan(
              model, config.link_policy(), config.plan_options()));
      topology.owner =
          std::make_unique<plan::ContactPlanTopology>(*topology.plan, model);
      break;
    }
  }
  return topology;
}

}  // namespace qntn::core
