#pragma once

#include <cstdint>

#include "geo/geodetic.hpp"
#include "plan/contact_plan.hpp"
#include "sim/scenario.hpp"
#include "sim/topology.hpp"

/// \file qntn_config.hpp
/// One struct holding every parameter of the paper's evaluation (Section
/// IV) plus the FSO physics parameters our from-scratch channel model needs
/// (the paper inherits those from its reference [19]; ours are calibrated —
/// DESIGN.md §4 and tools/calibrate_fso).

namespace qntn::core {

/// How the experiment runners obtain the time-varying topology.
enum class TopologyMode {
  /// Re-evaluate every link budget at every step (sim::TopologyBuilder,
  /// the reference path).
  Rebuild,
  /// Compile a contact plan once and replay its event timeline
  /// (plan::ContactPlanTopology, the fast path).
  ContactPlan,
};

/// How request snapshots are served (DESIGN.md §11/§12).
enum class ServingMode {
  /// The paper's model: every snapshot routes one path per request and
  /// serves it instantaneously from fresh link-generated pairs.
  SingleShot,
  /// The entanglement-management layer: buffered elementary pairs, swap
  /// trees, purification budgeting, k-disjoint multipath load balancing.
  Entanglement,
  /// The open-arrival traffic engine: per-LAN diurnal Poisson user
  /// populations served through the event-driven core with capacity
  /// claims, queueing deadlines, and backpressure.
  Traffic,
};

struct QntnConfig {
  // --- Paper parameters (Section IV). ---
  double transmissivity_threshold = 0.7;
  double elevation_mask = kPaperElevationMask;  ///< pi/9 rad = 20 deg
  double fiber_attenuation_db_per_km = 0.15;
  /// "Aperture size" 120 cm (satellite & ground) / 30 cm (HAP), read as
  /// radii (the reading consistent with the paper's operating points; see
  /// OpticalTerminal and DESIGN.md §4).
  double ground_aperture_radius = 1.20;
  double satellite_aperture_radius = 1.20;
  double hap_aperture_radius = 0.30;
  geo::Geodetic hap_position = geo::Geodetic::from_degrees(35.6692, -85.0662,
                                                           30'000.0);
  double satellite_altitude = 500'000.0;  ///< -> semi-major axis 6871 km
  double ephemeris_step = 30.0;           ///< [s], the paper's STK sampling
  double day_duration = 86'400.0;         ///< [s]

  // --- Calibrated FSO physics (see DESIGN.md §4). ---
  double wavelength = 810.0e-9;
  double receiver_efficiency = 0.995;
  double ao_gain = 5.75;
  double zenith_transmittance = 0.9875;
  double pointing_jitter = 1.0e-7;  ///< [rad] per terminal

  // --- Simulation / workload. ---
  std::size_t request_count = 100;
  std::size_t request_steps = 100;
  std::uint64_t request_seed = 20240101;
  bool include_j2 = false;          ///< ablation A1 toggles this
  double gmst0 = 0.0;               ///< Earth orientation at sim start
  sim::LanTopology lan_topology = sim::LanTopology::FullMesh;
  bool enable_inter_satellite = true;
  bool enable_hap_satellite = false;  ///< hybrid extension (A4)
  net::CostMetric metric = net::CostMetric::InverseEta;
  quantum::FidelityConvention convention =
      quantum::FidelityConvention::Uhlmann;

  /// Weather profile applied to all FSO links (clear = paper baseline).
  channel::WeatherProfile weather = channel::clear_sky();

  // --- Contact-plan control plane (plan/, DESIGN.md §2). ---
  TopologyMode topology_mode = TopologyMode::Rebuild;
  /// Let evaluations hand their RunContext pool to run_scenario's parallel
  /// snapshot engine (DESIGN.md §9). The engine additionally requires an
  /// epoch-partitioned provider (topology_mode = ContactPlan), is bitwise
  /// deterministic, and off it falls back to the serial loop; this switch
  /// exists for A/B timing and as an escape hatch.
  bool parallel_snapshots = true;
  /// Compression tolerance on cached window transmissivities (see
  /// plan::ContactPlanOptions::sample_tolerance).
  double contact_sample_tolerance = 1.0e-4;
  /// Scan-hop bounds; <= 0 disables the respective skip.
  double contact_max_elevation_rate = 0.01;   ///< [rad/s]
  double contact_max_range_rate = 16'000.0;   ///< [m/s]

  // --- Entanglement-management serving (src/em, DESIGN.md §11). ---
  ServingMode serving_mode = ServingMode::SingleShot;
  /// Pair halves per node memory. The pool fair-shares these across a
  /// node's incident links, so size to the topology's degree: TN-LAN clique
  /// nodes see ~14 fiber neighbours plus visible satellites, and fewer
  /// slots than links starves the later (satellite) links of buffers.
  std::size_t em_memory_slots = 32;
  double em_generation_period = 0.05;   ///< [s] between pair generations
  double em_max_storage = 1.0;          ///< [s] storage lifetime cap
  double em_memory_t1 = 10.0;           ///< [s] relaxation during storage
  double em_memory_t2 = 5.0;            ///< [s] dephasing; must be <= 2 T1
  double em_heralding_latency = 0.01;   ///< [s] per swap-tree level
  std::size_t em_k_paths = 3;           ///< disjoint candidate routes
  std::size_t em_node_capacity = 8;     ///< BSMs per relay per snapshot
  double em_fidelity_slo = 0.0;         ///< purification target; 0 = off
  std::size_t em_purify_max_rounds = 2; ///< BBPSSW round cap

  // --- Open-arrival traffic serving (sim/traffic, DESIGN.md §12). ---
  /// Poisson request arrivals per LAN [1/s] before the diurnal factor. The
  /// default 4/s across the paper's three LANs is ~1M requests/day.
  double traffic_arrival_rate = 4.0;
  /// Diurnal modulation amplitude in [0, 1]: daytime LANs arrive at
  /// rate*(1+a), night-time LANs at rate*(1-a).
  double traffic_diurnal_amplitude = 0.5;
  double traffic_service_overhead = 0.01;  ///< [s] per served request
  double traffic_max_queue_delay = 0.5;    ///< [s] queueing deadline
  std::size_t traffic_node_capacity = 8;   ///< concurrent pairs per node
  std::size_t traffic_max_backlog = 256;   ///< admission backpressure bound
  std::uint64_t traffic_seed = 20240707;   ///< arrival substream seed

  /// Derived: the sim::LinkPolicy for this configuration.
  [[nodiscard]] sim::LinkPolicy link_policy() const;

  /// Derived: the sim::ScenarioConfig for this configuration (including
  /// the em options when serving_mode is Entanglement).
  [[nodiscard]] sim::ScenarioConfig scenario_config() const;

  /// Derived: the em::EmOptions this configuration describes (enabled iff
  /// serving_mode is Entanglement). Throws qntn::Error on invalid em
  /// parameters — including the T2 <= 2 T1 memory-physicality check.
  [[nodiscard]] em::EmOptions em_options() const;

  /// Derived: the sim::TrafficConfig this configuration describes (enabled
  /// iff serving_mode is Traffic). Throws qntn::PreconditionError on
  /// degenerate traffic parameters.
  [[nodiscard]] sim::TrafficConfig traffic_options() const;

  /// Derived: contact-plan compile options (horizon = day, step =
  /// ephemeris step, so plan and rebuild sample the same grid).
  [[nodiscard]] plan::ContactPlanOptions plan_options() const;

  /// Terminal descriptions per node class.
  [[nodiscard]] channel::OpticalTerminal ground_terminal() const;
  [[nodiscard]] channel::OpticalTerminal satellite_terminal() const;
  [[nodiscard]] channel::OpticalTerminal hap_terminal() const;
};

}  // namespace qntn::core
