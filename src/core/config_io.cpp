#include "core/config_io.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"
#include "quantum/memory.hpp"

namespace qntn::core {

namespace {

std::string metric_name(net::CostMetric metric) {
  switch (metric) {
    case net::CostMetric::InverseEta:
      return "inverse_eta";
    case net::CostMetric::NegLogEta:
      return "neg_log_eta";
    case net::CostMetric::HopCount:
      return "hop_count";
  }
  throw Error("unknown metric");
}

net::CostMetric metric_from(const std::string& name) {
  if (name == "inverse_eta") return net::CostMetric::InverseEta;
  if (name == "neg_log_eta") return net::CostMetric::NegLogEta;
  if (name == "hop_count") return net::CostMetric::HopCount;
  throw Error("unknown metric: " + name);
}

std::string convention_name(quantum::FidelityConvention convention) {
  return convention == quantum::FidelityConvention::Uhlmann ? "uhlmann"
                                                            : "jozsa";
}

quantum::FidelityConvention convention_from(const std::string& name) {
  if (name == "uhlmann") return quantum::FidelityConvention::Uhlmann;
  if (name == "jozsa") return quantum::FidelityConvention::Jozsa;
  throw Error("unknown fidelity convention: " + name);
}

std::string topology_name(sim::LanTopology topology) {
  switch (topology) {
    case sim::LanTopology::FullMesh:
      return "mesh";
    case sim::LanTopology::Chain:
      return "chain";
    case sim::LanTopology::Star:
      return "star";
  }
  throw Error("unknown LAN topology");
}

sim::LanTopology topology_from(const std::string& name) {
  if (name == "mesh") return sim::LanTopology::FullMesh;
  if (name == "chain") return sim::LanTopology::Chain;
  if (name == "star") return sim::LanTopology::Star;
  throw Error("unknown LAN topology: " + name);
}

std::string weather_name(const channel::WeatherProfile& weather) {
  return std::string(weather.name);
}

channel::WeatherProfile weather_from(const std::string& name) {
  if (name == "clear") return channel::clear_sky();
  if (name == "haze") return channel::haze();
  if (name == "strong_turbulence") return channel::strong_turbulence();
  if (name == "light_rain") return channel::light_rain();
  throw Error("unknown weather profile: " + name);
}

std::string topology_mode_name(TopologyMode mode) {
  return mode == TopologyMode::ContactPlan ? "contact_plan" : "rebuild";
}

TopologyMode topology_mode_from(const std::string& name) {
  if (name == "rebuild") return TopologyMode::Rebuild;
  if (name == "contact_plan") return TopologyMode::ContactPlan;
  throw Error("unknown topology mode: " + name);
}

std::string serving_mode_name(ServingMode mode) {
  switch (mode) {
    case ServingMode::SingleShot:
      return "single_shot";
    case ServingMode::Entanglement:
      return "entanglement";
    case ServingMode::Traffic:
      return "traffic";
  }
  throw Error("unknown serving mode");
}

ServingMode serving_mode_from(const std::string& name) {
  if (name == "single_shot") return ServingMode::SingleShot;
  if (name == "entanglement") return ServingMode::Entanglement;
  if (name == "traffic") return ServingMode::Traffic;
  throw Error("unknown serving mode: " + name);
}

}  // namespace

std::string serialize_config(const QntnConfig& config) {
  std::ostringstream os;
  os.precision(12);
  os << "# QNTN experiment configuration\n"
     << "transmissivity_threshold = " << config.transmissivity_threshold << '\n'
     << "elevation_mask_deg = " << rad_to_deg(config.elevation_mask) << '\n'
     << "fiber_attenuation_db_per_km = " << config.fiber_attenuation_db_per_km
     << '\n'
     << "ground_aperture_radius = " << config.ground_aperture_radius << '\n'
     << "satellite_aperture_radius = " << config.satellite_aperture_radius
     << '\n'
     << "hap_aperture_radius = " << config.hap_aperture_radius << '\n'
     << "hap_latitude_deg = " << rad_to_deg(config.hap_position.latitude) << '\n'
     << "hap_longitude_deg = " << rad_to_deg(config.hap_position.longitude)
     << '\n'
     << "hap_altitude_m = " << config.hap_position.altitude << '\n'
     << "satellite_altitude_m = " << config.satellite_altitude << '\n'
     << "ephemeris_step_s = " << config.ephemeris_step << '\n'
     << "day_duration_s = " << config.day_duration << '\n'
     << "wavelength_m = " << config.wavelength << '\n'
     << "receiver_efficiency = " << config.receiver_efficiency << '\n'
     << "ao_gain = " << config.ao_gain << '\n'
     << "zenith_transmittance = " << config.zenith_transmittance << '\n'
     << "pointing_jitter_rad = " << config.pointing_jitter << '\n'
     << "request_count = " << config.request_count << '\n'
     << "request_steps = " << config.request_steps << '\n'
     << "request_seed = " << config.request_seed << '\n'
     << "include_j2 = " << (config.include_j2 ? "true" : "false") << '\n'
     << "enable_inter_satellite = "
     << (config.enable_inter_satellite ? "true" : "false") << '\n'
     << "enable_hap_satellite = "
     << (config.enable_hap_satellite ? "true" : "false") << '\n'
     << "metric = " << metric_name(config.metric) << '\n'
     << "fidelity_convention = " << convention_name(config.convention) << '\n'
     << "lan_topology = " << topology_name(config.lan_topology) << '\n'
     << "weather = " << weather_name(config.weather) << '\n'
     << "topology_mode = " << topology_mode_name(config.topology_mode) << '\n'
     << "parallel_snapshots = "
     << (config.parallel_snapshots ? "true" : "false") << '\n'
     << "contact_sample_tolerance = " << config.contact_sample_tolerance << '\n'
     << "contact_max_elevation_rate = " << config.contact_max_elevation_rate
     << '\n'
     << "contact_max_range_rate = " << config.contact_max_range_rate << '\n'
     << "serving_mode = " << serving_mode_name(config.serving_mode) << '\n'
     << "em_memory_slots = " << config.em_memory_slots << '\n'
     << "em_generation_period_s = " << config.em_generation_period << '\n'
     << "em_max_storage_s = " << config.em_max_storage << '\n'
     << "em_memory_t1_s = " << config.em_memory_t1 << '\n'
     << "em_memory_t2_s = " << config.em_memory_t2 << '\n'
     << "em_heralding_latency_s = " << config.em_heralding_latency << '\n'
     << "em_k_paths = " << config.em_k_paths << '\n'
     << "em_node_capacity = " << config.em_node_capacity << '\n'
     << "em_fidelity_slo = " << config.em_fidelity_slo << '\n'
     << "em_purify_max_rounds = " << config.em_purify_max_rounds << '\n'
     << "traffic_arrival_rate = " << config.traffic_arrival_rate << '\n'
     << "traffic_diurnal_amplitude = " << config.traffic_diurnal_amplitude
     << '\n'
     << "traffic_service_overhead_s = " << config.traffic_service_overhead
     << '\n'
     << "traffic_max_queue_delay_s = " << config.traffic_max_queue_delay
     << '\n'
     << "traffic_node_capacity = " << config.traffic_node_capacity << '\n'
     << "traffic_max_backlog = " << config.traffic_max_backlog << '\n'
     << "traffic_seed = " << config.traffic_seed << '\n';
  return os.str();
}

QntnConfig parse_config(const std::string& text) {
  QntnConfig config;

  const auto as_double = [](const std::string& v) {
    std::size_t used = 0;
    const double out = std::stod(v, &used);
    if (used != v.size()) throw Error("bad numeric value: " + v);
    return out;
  };
  const auto as_size = [&as_double](const std::string& v) {
    const double d = as_double(v);
    if (d < 0.0 || d != static_cast<double>(static_cast<std::size_t>(d))) {
      throw Error("bad integer value: " + v);
    }
    return static_cast<std::size_t>(d);
  };
  const auto as_bool = [](const std::string& v) {
    if (v == "true") return true;
    if (v == "false") return false;
    throw Error("bad boolean value: " + v);
  };

  const std::map<std::string, std::function<void(const std::string&)>>
      setters = {
          {"transmissivity_threshold",
           [&](const std::string& v) { config.transmissivity_threshold = as_double(v); }},
          {"elevation_mask_deg",
           [&](const std::string& v) { config.elevation_mask = deg_to_rad(as_double(v)); }},
          {"fiber_attenuation_db_per_km",
           [&](const std::string& v) { config.fiber_attenuation_db_per_km = as_double(v); }},
          {"ground_aperture_radius",
           [&](const std::string& v) { config.ground_aperture_radius = as_double(v); }},
          {"satellite_aperture_radius",
           [&](const std::string& v) { config.satellite_aperture_radius = as_double(v); }},
          {"hap_aperture_radius",
           [&](const std::string& v) { config.hap_aperture_radius = as_double(v); }},
          {"hap_latitude_deg",
           [&](const std::string& v) { config.hap_position.latitude = deg_to_rad(as_double(v)); }},
          {"hap_longitude_deg",
           [&](const std::string& v) { config.hap_position.longitude = deg_to_rad(as_double(v)); }},
          {"hap_altitude_m",
           [&](const std::string& v) { config.hap_position.altitude = as_double(v); }},
          {"satellite_altitude_m",
           [&](const std::string& v) { config.satellite_altitude = as_double(v); }},
          {"ephemeris_step_s",
           [&](const std::string& v) { config.ephemeris_step = as_double(v); }},
          {"day_duration_s",
           [&](const std::string& v) { config.day_duration = as_double(v); }},
          {"wavelength_m",
           [&](const std::string& v) { config.wavelength = as_double(v); }},
          {"receiver_efficiency",
           [&](const std::string& v) { config.receiver_efficiency = as_double(v); }},
          {"ao_gain", [&](const std::string& v) { config.ao_gain = as_double(v); }},
          {"zenith_transmittance",
           [&](const std::string& v) { config.zenith_transmittance = as_double(v); }},
          {"pointing_jitter_rad",
           [&](const std::string& v) { config.pointing_jitter = as_double(v); }},
          {"request_count",
           [&](const std::string& v) { config.request_count = as_size(v); }},
          {"request_steps",
           [&](const std::string& v) { config.request_steps = as_size(v); }},
          {"request_seed",
           [&](const std::string& v) { config.request_seed = as_size(v); }},
          {"include_j2",
           [&](const std::string& v) { config.include_j2 = as_bool(v); }},
          {"enable_inter_satellite",
           [&](const std::string& v) { config.enable_inter_satellite = as_bool(v); }},
          {"enable_hap_satellite",
           [&](const std::string& v) { config.enable_hap_satellite = as_bool(v); }},
          {"metric",
           [&](const std::string& v) { config.metric = metric_from(v); }},
          {"fidelity_convention",
           [&](const std::string& v) { config.convention = convention_from(v); }},
          {"lan_topology",
           [&](const std::string& v) { config.lan_topology = topology_from(v); }},
          {"weather",
           [&](const std::string& v) { config.weather = weather_from(v); }},
          {"topology_mode",
           [&](const std::string& v) { config.topology_mode = topology_mode_from(v); }},
          {"parallel_snapshots",
           [&](const std::string& v) { config.parallel_snapshots = as_bool(v); }},
          {"contact_sample_tolerance",
           [&](const std::string& v) { config.contact_sample_tolerance = as_double(v); }},
          {"contact_max_elevation_rate",
           [&](const std::string& v) { config.contact_max_elevation_rate = as_double(v); }},
          {"contact_max_range_rate",
           [&](const std::string& v) { config.contact_max_range_rate = as_double(v); }},
          {"serving_mode",
           [&](const std::string& v) { config.serving_mode = serving_mode_from(v); }},
          {"em_memory_slots",
           [&](const std::string& v) { config.em_memory_slots = as_size(v); }},
          {"em_generation_period_s",
           [&](const std::string& v) { config.em_generation_period = as_double(v); }},
          {"em_max_storage_s",
           [&](const std::string& v) { config.em_max_storage = as_double(v); }},
          {"em_memory_t1_s",
           [&](const std::string& v) { config.em_memory_t1 = as_double(v); }},
          {"em_memory_t2_s",
           [&](const std::string& v) { config.em_memory_t2 = as_double(v); }},
          {"em_heralding_latency_s",
           [&](const std::string& v) { config.em_heralding_latency = as_double(v); }},
          {"em_k_paths",
           [&](const std::string& v) { config.em_k_paths = as_size(v); }},
          {"em_node_capacity",
           [&](const std::string& v) { config.em_node_capacity = as_size(v); }},
          {"em_fidelity_slo",
           [&](const std::string& v) { config.em_fidelity_slo = as_double(v); }},
          {"em_purify_max_rounds",
           [&](const std::string& v) { config.em_purify_max_rounds = as_size(v); }},
          {"traffic_arrival_rate",
           [&](const std::string& v) { config.traffic_arrival_rate = as_double(v); }},
          {"traffic_diurnal_amplitude",
           [&](const std::string& v) { config.traffic_diurnal_amplitude = as_double(v); }},
          {"traffic_service_overhead_s",
           [&](const std::string& v) { config.traffic_service_overhead = as_double(v); }},
          {"traffic_max_queue_delay_s",
           [&](const std::string& v) { config.traffic_max_queue_delay = as_double(v); }},
          {"traffic_node_capacity",
           [&](const std::string& v) { config.traffic_node_capacity = as_size(v); }},
          {"traffic_max_backlog",
           [&](const std::string& v) { config.traffic_max_backlog = as_size(v); }},
          {"traffic_seed",
           [&](const std::string& v) { config.traffic_seed = as_size(v); }},
      };

  std::istringstream in(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    // Trim.
    const auto strip = [](std::string s) {
      const auto begin = s.find_first_not_of(" \t\r");
      if (begin == std::string::npos) return std::string{};
      const auto end = s.find_last_not_of(" \t\r");
      return s.substr(begin, end - begin + 1);
    };
    line = strip(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw Error("config line " + std::to_string(line_number) +
                  ": expected key = value");
    }
    const std::string key = strip(line.substr(0, eq));
    const std::string value = strip(line.substr(eq + 1));
    const auto it = setters.find(key);
    if (it == setters.end()) {
      throw Error("config line " + std::to_string(line_number) +
                  ": unknown key '" + key + "'");
    }
    try {
      it->second(value);
    } catch (const std::exception& e) {
      throw Error("config line " + std::to_string(line_number) + " (" + key +
                  "): " + e.what());
    }
  }
  // Cross-field checks run after the whole file is read (the keys may come
  // in any order). The memory-physicality check in particular must fail at
  // parse time with a clear message, not deep inside a scenario run.
  try {
    quantum::MemoryModel{config.em_memory_t1, config.em_memory_t2}.validate();
  } catch (const std::exception& e) {
    throw Error(std::string("config (em_memory_t1_s/em_memory_t2_s): ") +
                e.what());
  }
  if (config.traffic_max_queue_delay <= 0.0) {
    throw Error("config (traffic_max_queue_delay_s): must be > 0");
  }
  if (config.traffic_arrival_rate < 0.0) {
    throw Error("config (traffic_arrival_rate): must be >= 0");
  }
  try {
    (void)config.traffic_options();
  } catch (const std::exception& e) {
    throw Error(std::string("config (traffic_*): ") + e.what());
  }
  return config;
}

void save_config(const std::string& path, const QntnConfig& config) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open config for writing: " + path);
  out << serialize_config(config);
  if (!out) throw Error("write failed: " + path);
}

QntnConfig load_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open config: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_config(buffer.str());
}

}  // namespace qntn::core
