#pragma once

#include <string>
#include <vector>

#include "geo/geodetic.hpp"

/// \file ground_networks.hpp
/// The three QNTN local area networks with the exact node coordinates of
/// the paper's Table I: Tennessee Tech University (5 nodes, Cookeville),
/// the EPB commercial quantum network (15 nodes, Chattanooga), and Oak
/// Ridge National Laboratory (11 nodes).

namespace qntn::core {

struct LanDefinition {
  std::string name;
  std::vector<geo::Geodetic> nodes;
};

/// Tennessee Tech University — 5 nodes covering the engineering quad.
[[nodiscard]] LanDefinition tennessee_tech();

/// EPB commercial quantum network, Chattanooga — 15 nodes.
[[nodiscard]] LanDefinition epb_chattanooga();

/// Oak Ridge National Laboratory — 11 nodes.
[[nodiscard]] LanDefinition oak_ridge();

/// All three LANs in the paper's Table I order (TTU, EPB, ORNL).
[[nodiscard]] std::vector<LanDefinition> qntn_lans();

/// Geodetic centroid of all ground nodes (useful for geometry sanity
/// checks and the HAP placement analysis).
[[nodiscard]] geo::Geodetic qntn_centroid();

}  // namespace qntn::core
