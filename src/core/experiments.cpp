#include "core/experiments.hpp"

#include "common/error.hpp"
#include "quantum/channels.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/state.hpp"

namespace qntn::core {

std::vector<FidelityPoint> fig5_fidelity_sweep(
    quantum::FidelityConvention convention, double step) {
  QNTN_REQUIRE(step > 0.0 && step <= 1.0, "step must be in (0, 1]");
  std::vector<FidelityPoint> out;
  const auto count = static_cast<std::size_t>(std::round(1.0 / step));
  out.reserve(count + 1);
  const quantum::ColumnVector ideal =
      quantum::bell_state(quantum::BellState::PhiPlus);
  for (std::size_t i = 0; i <= count; ++i) {
    const double eta = std::min(1.0, static_cast<double>(i) * step);
    FidelityPoint point;
    point.transmissivity = eta;
    const quantum::Matrix rho = quantum::transmit_bell_half(eta);
    point.fidelity_simulated = quantum::fidelity_to_pure(rho, ideal, convention);
    point.fidelity_closed_form =
        quantum::bell_fidelity_after_damping(eta, convention);
    out.push_back(point);
  }
  return out;
}

double transmissivity_threshold_for(const std::vector<FidelityPoint>& sweep,
                                    double target_fidelity) {
  for (const FidelityPoint& point : sweep) {
    if (point.fidelity_simulated >= target_fidelity) {
      return point.transmissivity;
    }
  }
  return 1.0;
}

std::vector<std::size_t> paper_constellation_sizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t n = 6; n <= 108; n += 6) sizes.push_back(n);
  return sizes;
}

namespace {

SweepPoint summarize(std::size_t n_satellites, const sim::ScenarioResult& r) {
  SweepPoint point;
  point.satellites = n_satellites;
  point.coverage_percent = r.coverage.percent;
  point.served_percent = 100.0 * r.served_fraction;
  point.mean_fidelity = r.fidelity.mean();
  point.mean_transmissivity = r.transmissivity.mean();
  point.mean_hops = r.hops.mean();
  return point;
}

}  // namespace

SweepPoint evaluate_space_ground(const QntnConfig& config,
                                 std::size_t n_satellites) {
  const sim::NetworkModel model = build_space_ground_model(config, n_satellites);
  const Topology topology = make_topology(config, model);
  const sim::ScenarioResult result =
      sim::run_scenario(model, topology.provider(), config.scenario_config());
  return summarize(n_satellites, result);
}

std::vector<SweepPoint> space_ground_sweep(const QntnConfig& config,
                                           const std::vector<std::size_t>& sizes,
                                           ThreadPool& pool) {
  std::vector<SweepPoint> out(sizes.size());
  parallel_for_index(pool, sizes.size(), [&](std::size_t i) {
    out[i] = evaluate_space_ground(config, sizes[i]);
  });
  return out;
}

AirGroundResult evaluate_air_ground(const QntnConfig& config) {
  const sim::NetworkModel model = build_air_ground_model(config);
  const Topology topology = make_topology(config, model);
  const sim::ScenarioResult result =
      sim::run_scenario(model, topology.provider(), config.scenario_config());
  AirGroundResult out;
  out.coverage_percent = result.coverage.percent;
  out.served_percent = 100.0 * result.served_fraction;
  out.mean_fidelity = result.fidelity.mean();
  out.mean_transmissivity = result.transmissivity.mean();
  out.mean_hops = result.hops.mean();
  return out;
}

std::vector<ComparisonRow> table3_comparison(const QntnConfig& config,
                                             std::size_t space_ground_satellites) {
  const SweepPoint space =
      evaluate_space_ground(config, space_ground_satellites);
  const AirGroundResult air = evaluate_air_ground(config);
  return {
      {"Space-Ground", space.coverage_percent, space.served_percent,
       space.mean_fidelity},
      {"Air-Ground", air.coverage_percent, air.served_percent,
       air.mean_fidelity},
  };
}

SweepPoint evaluate_hybrid(const QntnConfig& config, std::size_t n_satellites) {
  const sim::NetworkModel model = build_hybrid_model(config, n_satellites);
  const Topology topology = make_topology(config, model);
  const sim::ScenarioResult result =
      sim::run_scenario(model, topology.provider(), config.scenario_config());
  return summarize(n_satellites, result);
}

}  // namespace qntn::core
