#include "core/experiments.hpp"

#include "common/error.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "quantum/channels.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/state.hpp"

namespace qntn::core {

std::vector<FidelityPoint> fig5_fidelity_sweep(
    quantum::FidelityConvention convention, double step) {
  QNTN_REQUIRE(step > 0.0 && step <= 1.0, "step must be in (0, 1]");
  const obs::ScopedTimer timer("time.fidelity_sweep_s");
  const obs::Span span("core.fig5_sweep");
  std::vector<FidelityPoint> out;
  const auto count = static_cast<std::size_t>(std::round(1.0 / step));
  out.reserve(count + 1);
  const quantum::ColumnVector ideal =
      quantum::bell_state(quantum::BellState::PhiPlus);
  for (std::size_t i = 0; i <= count; ++i) {
    const double eta = std::min(1.0, static_cast<double>(i) * step);
    FidelityPoint point;
    point.transmissivity = eta;
    const quantum::Matrix rho = quantum::transmit_bell_half(eta);
    point.fidelity_simulated = quantum::fidelity_to_pure(rho, ideal, convention);
    point.fidelity_closed_form =
        quantum::bell_fidelity_after_damping(eta, convention);
    out.push_back(point);
  }
  obs::count("quantum.kraus_evals", count + 1);
  return out;
}

double transmissivity_threshold_for(const std::vector<FidelityPoint>& sweep,
                                    double target_fidelity) {
  for (const FidelityPoint& point : sweep) {
    if (point.fidelity_simulated >= target_fidelity) {
      return point.transmissivity;
    }
  }
  return 1.0;
}

ArchitectureMetrics traffic_metrics(std::string architecture,
                                    std::size_t satellites,
                                    const sim::TrafficResult& r) {
  ArchitectureMetrics m;
  m.architecture = std::move(architecture);
  m.satellites = satellites;
  m.served_percent = 100.0 * r.served_fraction();
  m.mean_fidelity = r.fidelity.mean();
  m.mean_transmissivity = r.path_eta.mean();
  m.requests_issued = r.arrivals;
  m.requests_served = r.served;
  m.requests_no_path = r.dropped_no_path;
  // Queue drops are deadline expiries, matching the scenario traffic mode.
  m.requests_dropped_deadline = r.dropped_queue;
  m.traffic.enabled = true;
  m.latency_p50 = r.latency_percentile(0.50);
  m.latency_p95 = r.latency_percentile(0.95);
  m.latency_p99 = r.latency_percentile(0.99);
  m.waiting_p50 = r.waiting_percentile(0.50);
  m.waiting_p95 = r.waiting_percentile(0.95);
  m.waiting_p99 = r.waiting_percentile(0.99);
  return m;
}

std::vector<std::size_t> paper_constellation_sizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t n = 6; n <= 108; n += 6) sizes.push_back(n);
  return sizes;
}

sim::ScenarioConfig RunContext::scenario_config() const {
  sim::ScenarioConfig sc = config.scenario_config();
  sc.registry = registry;
  sc.trace = trace;
  sc.profiler = profiler;
  sc.pool = config.parallel_snapshots ? pool : nullptr;
  if (seed.has_value()) sc.request_seed = *seed;
  return sc;
}

namespace {

ArchitectureMetrics summarize(std::string architecture,
                              std::size_t n_satellites,
                              const sim::ScenarioResult& r) {
  ArchitectureMetrics m;
  m.architecture = std::move(architecture);
  m.satellites = n_satellites;
  m.coverage_percent = r.coverage.percent;
  m.served_percent = 100.0 * r.served_fraction;
  m.mean_fidelity = r.fidelity.mean();
  m.mean_transmissivity = r.transmissivity.mean();
  m.mean_hops = r.hops.mean();
  m.requests_issued = r.requests_issued;
  m.requests_served = r.requests_served;
  m.requests_no_path = r.requests_no_path;
  m.requests_isolated = r.requests_isolated;
  m.requests_congested = r.requests_congested;
  m.requests_rejected_capacity = r.requests_rejected_capacity;
  m.requests_dropped_deadline = r.requests_dropped_deadline;
  m.handovers = r.handovers;
  if (r.em.enabled) {
    m.em.enabled = true;
    m.em.swaps = r.em.swaps;
    m.em.purification_rounds = r.em.purification_rounds;
    m.em.pairs_consumed = r.em.pairs_consumed;
    m.em.slo_met = r.em.slo_met;
    m.em.multipath_spills = r.em.spilled;
    m.em.mean_memory_occupancy = r.em.memory_occupancy.mean();
    m.em.mean_swap_depth = r.em.swap_depth.mean();
    if (!r.em.latency_samples.empty()) {
      m.latency_p50 = percentile(r.em.latency_samples, 0.50);
      m.latency_p95 = percentile(r.em.latency_samples, 0.95);
      m.latency_p99 = percentile(r.em.latency_samples, 0.99);
    }
  }
  if (r.traffic.enabled) {
    m.traffic.enabled = true;
    m.traffic.mean_peak_utilisation = r.traffic.peak_utilisation.mean();
    m.traffic.peak_queue_depth = r.traffic.peak_queue_depth;
    if (!r.traffic.latency_samples.empty()) {
      m.latency_p50 = percentile(r.traffic.latency_samples, 0.50);
      m.latency_p95 = percentile(r.traffic.latency_samples, 0.95);
      m.latency_p99 = percentile(r.traffic.latency_samples, 0.99);
    }
    if (!r.traffic.waiting_samples.empty()) {
      m.waiting_p50 = percentile(r.traffic.waiting_samples, 0.50);
      m.waiting_p95 = percentile(r.traffic.waiting_samples, 0.95);
      m.waiting_p99 = percentile(r.traffic.waiting_samples, 0.99);
    }
  }
  return m;
}

/// Shared body of the three evaluate_* runners: install the context's
/// registry and profiler as ambient (so model building and topology
/// compilation report into them too, not just run_scenario), build, run,
/// summarize. `span_name` is a static string naming the evaluation's
/// top-level profiler span.
template <typename BuildModel>
ArchitectureMetrics evaluate_architecture(const RunContext& ctx,
                                          std::string architecture,
                                          const char* span_name,
                                          std::size_t n_satellites,
                                          BuildModel&& build_model) {
  const obs::ScopedRegistry ambient(ctx.registry);
  const obs::ScopedProfiler profiling(ctx.profiler);
  const obs::Span span(span_name, n_satellites);
  // The build and the contact-plan compile fan out on the same pool the
  // snapshot engine uses, under the same gate, so a "no parallelism"
  // config stays serial end to end. Both fan-outs are deterministic; the
  // built model and topology are identical for any thread count.
  ThreadPool* const build_pool =
      ctx.config.parallel_snapshots ? ctx.pool : nullptr;
  sim::NetworkModel model;
  Topology topology;
  {
    const obs::ScopedTimer timer("time.build_model_s");
    const obs::Span build_span("core.build_model", n_satellites);
    model = build_model(ctx.config, build_pool);
    topology = make_topology(ctx.config, model, build_pool);
  }
  const sim::ScenarioResult result =
      sim::run_scenario(model, topology.provider(), ctx.scenario_config());
  return summarize(std::move(architecture), n_satellites, result);
}

}  // namespace

ArchitectureMetrics evaluate_space_ground(const RunContext& ctx,
                                          std::size_t n_satellites) {
  return evaluate_architecture(
      ctx, "space-ground", "core.evaluate.space_ground", n_satellites,
      [&](const QntnConfig& config, ThreadPool* pool) {
        return build_space_ground_model(config, n_satellites, pool);
      });
}

ArchitectureMetrics evaluate_space_ground(const QntnConfig& config,
                                          std::size_t n_satellites) {
  return evaluate_space_ground(RunContext{config}, n_satellites);
}

std::vector<ArchitectureMetrics> space_ground_sweep(
    const RunContext& ctx, const std::vector<std::size_t>& sizes) {
  RunContext point_ctx = ctx;
  // Concurrent evaluations would interleave their JSONL streams; only a
  // single-size "sweep" keeps the trace.
  if (sizes.size() > 1) point_ctx.trace = nullptr;
  const obs::ScopedProfiler profiling(ctx.profiler);
  const obs::Span span("core.sweep", sizes.size());
  std::vector<ArchitectureMetrics> out(sizes.size());
  if (ctx.pool == nullptr || sizes.size() <= 1) {
    // Sizes run serially on this thread; each evaluation keeps ctx.pool so
    // run_scenario's snapshot engine can use it.
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      out[i] = evaluate_space_ground(point_ctx, sizes[i]);
    }
    return out;
  }
  // Fan out across sizes instead: the inner evaluations run on pool workers
  // and must not re-enter the pool (a nested blocking fan-out from a worker
  // can deadlock), so they get no pool of their own.
  point_ctx.pool = nullptr;
  parallel_for_index(*ctx.pool, sizes.size(), [&](std::size_t i) {
    out[i] = evaluate_space_ground(point_ctx, sizes[i]);
  });
  return out;
}

std::vector<ArchitectureMetrics> space_ground_sweep(
    const QntnConfig& config, const std::vector<std::size_t>& sizes,
    ThreadPool& pool) {
  RunContext ctx{config};
  ctx.pool = &pool;
  return space_ground_sweep(ctx, sizes);
}

ArchitectureMetrics evaluate_air_ground(const RunContext& ctx) {
  return evaluate_architecture(ctx, "air-ground", "core.evaluate.air_ground",
                               0, [](const QntnConfig& config, ThreadPool*) {
                                 return build_air_ground_model(config);
                               });
}

ArchitectureMetrics evaluate_air_ground(const QntnConfig& config) {
  return evaluate_air_ground(RunContext{config});
}

ArchitectureMetrics evaluate_hybrid(const RunContext& ctx,
                                    std::size_t n_satellites) {
  return evaluate_architecture(
      ctx, "hybrid", "core.evaluate.hybrid", n_satellites,
      [&](const QntnConfig& config, ThreadPool* pool) {
        return build_hybrid_model(config, n_satellites, pool);
      });
}

ArchitectureMetrics evaluate_hybrid(const QntnConfig& config,
                                    std::size_t n_satellites) {
  return evaluate_hybrid(RunContext{config}, n_satellites);
}

std::vector<ArchitectureMetrics> table3_comparison(
    const RunContext& ctx, std::size_t space_ground_satellites) {
  return {evaluate_space_ground(ctx, space_ground_satellites),
          evaluate_air_ground(ctx)};
}

std::vector<ArchitectureMetrics> table3_comparison(
    const QntnConfig& config, std::size_t space_ground_satellites) {
  return table3_comparison(RunContext{config}, space_ground_satellites);
}

}  // namespace qntn::core
