#pragma once

#include <string>

#include "core/qntn_config.hpp"

/// \file config_io.hpp
/// Plain-text serialization of QntnConfig (key = value lines, '#' comments)
/// so experiment configurations can be versioned, diffed, and replayed
/// exactly — the reproducibility glue for the CLI and for external sweeps.

namespace qntn::core {

/// Render the configuration as a key = value document (stable key order,
/// all keys always present).
[[nodiscard]] std::string serialize_config(const QntnConfig& config);

/// Parse a key = value document. Unknown keys, malformed lines and
/// out-of-domain values throw qntn::Error. Keys omitted from the document
/// keep their defaults.
[[nodiscard]] QntnConfig parse_config(const std::string& text);

/// File variants.
void save_config(const std::string& path, const QntnConfig& config);
[[nodiscard]] QntnConfig load_config(const std::string& path);

}  // namespace qntn::core
