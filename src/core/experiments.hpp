#pragma once

#include <cstddef>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"

/// \file experiments.hpp
/// The paper's experiments as reusable runners. Each bench binary wraps one
/// of these and prints the paper-vs-measured rows; the integration tests
/// assert their invariants on reduced workloads.

namespace qntn::core {

/// --- Fig. 5: fidelity vs transmissivity. ---
struct FidelityPoint {
  double transmissivity = 0.0;
  /// Fidelity from the full density-matrix pipeline (Kraus application +
  /// fidelity to the ideal Bell state), the paper's measurement.
  double fidelity_simulated = 0.0;
  /// Closed-form prediction (1 + sqrt(eta))/2 (or its square), cross-check.
  double fidelity_closed_form = 0.0;
};

/// Sweep eta over [0, 1] with the given step (paper: 0.01).
[[nodiscard]] std::vector<FidelityPoint> fig5_fidelity_sweep(
    quantum::FidelityConvention convention, double step = 0.01);

/// Smallest eta on the sweep whose fidelity meets `target` (the paper reads
/// 0.7 for >90% under its convention).
[[nodiscard]] double transmissivity_threshold_for(
    const std::vector<FidelityPoint>& sweep, double target_fidelity);

/// --- Figs. 6-8: the space-ground constellation sweep. ---
struct SweepPoint {
  std::size_t satellites = 0;
  double coverage_percent = 0.0;   ///< Fig. 6
  double served_percent = 0.0;     ///< Fig. 7
  double mean_fidelity = 0.0;      ///< Fig. 8 (over served requests)
  double mean_transmissivity = 0.0;
  double mean_hops = 0.0;
};

/// Constellation sizes of the paper's sweep: 6, 12, ..., 108.
[[nodiscard]] std::vector<std::size_t> paper_constellation_sizes();

/// Evaluate one constellation size end to end.
[[nodiscard]] SweepPoint evaluate_space_ground(const QntnConfig& config,
                                               std::size_t n_satellites);

/// Evaluate the full sweep, parallelised across sizes on the pool.
[[nodiscard]] std::vector<SweepPoint> space_ground_sweep(
    const QntnConfig& config, const std::vector<std::size_t>& sizes,
    ThreadPool& pool);

/// --- Section IV-C: air-ground architecture. ---
struct AirGroundResult {
  double coverage_percent = 0.0;  ///< 100 by construction (HAP hovers)
  double served_percent = 0.0;
  double mean_fidelity = 0.0;
  double mean_transmissivity = 0.0;
  double mean_hops = 0.0;
};
[[nodiscard]] AirGroundResult evaluate_air_ground(const QntnConfig& config);

/// --- Table III: the comparative summary. ---
struct ComparisonRow {
  std::string architecture;
  double coverage_percent = 0.0;
  double served_percent = 0.0;
  double mean_fidelity = 0.0;
};
[[nodiscard]] std::vector<ComparisonRow> table3_comparison(
    const QntnConfig& config, std::size_t space_ground_satellites = 108);

/// --- Extension: hybrid space+air architecture (paper future work). ---
[[nodiscard]] SweepPoint evaluate_hybrid(const QntnConfig& config,
                                         std::size_t n_satellites);

}  // namespace qntn::core
