#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "sim/traffic.hpp"

namespace qntn::obs {
class Profiler;
class Registry;
class TraceSink;
}  // namespace qntn::obs

/// \file experiments.hpp
/// The paper's experiments as reusable runners. Each bench binary wraps one
/// of these and prints the paper-vs-measured rows; the integration tests
/// assert their invariants on reduced workloads.
///
/// Every architecture evaluation returns one ArchitectureMetrics and takes a
/// RunContext bundling the configuration with the optional execution
/// machinery (thread pool, observability hooks, seed override). Plain
/// QntnConfig overloads remain for callers that need none of it.

namespace qntn::core {

/// --- Fig. 5: fidelity vs transmissivity. ---
struct FidelityPoint {
  double transmissivity = 0.0;
  /// Fidelity from the full density-matrix pipeline (Kraus application +
  /// fidelity to the ideal Bell state), the paper's measurement.
  double fidelity_simulated = 0.0;
  /// Closed-form prediction (1 + sqrt(eta))/2 (or its square), cross-check.
  double fidelity_closed_form = 0.0;
};

/// Sweep eta over [0, 1] with the given step (paper: 0.01).
[[nodiscard]] std::vector<FidelityPoint> fig5_fidelity_sweep(
    quantum::FidelityConvention convention, double step = 0.01);

/// Smallest eta on the sweep whose fidelity meets `target` (the paper reads
/// 0.7 for >90% under its convention).
[[nodiscard]] double transmissivity_threshold_for(
    const std::vector<FidelityPoint>& sweep, double target_fidelity);

/// --- Unified per-architecture result. ---
/// One evaluation of one architecture: the Fig. 6-8 observables plus the
/// request accounting run_scenario collects. Subsumes the former
/// SweepPoint / AirGroundResult / ComparisonRow trio.
struct ArchitectureMetrics {
  /// "space-ground", "air-ground" or "hybrid".
  std::string architecture;
  /// Constellation size (0 for the satellite-free air-ground architecture).
  std::size_t satellites = 0;
  double coverage_percent = 0.0;   ///< Fig. 6
  double served_percent = 0.0;     ///< Fig. 7
  double mean_fidelity = 0.0;      ///< Fig. 8 (over served requests)
  double mean_transmissivity = 0.0;
  double mean_hops = 0.0;
  /// Request accounting across all snapshots (the ServeOutcome identity:
  /// issued = served + no_path + isolated + congested + rejected_capacity +
  /// dropped_deadline; served/issued == served_percent/100).
  std::size_t requests_issued = 0;
  std::size_t requests_served = 0;
  std::size_t requests_no_path = 0;
  std::size_t requests_isolated = 0;
  /// Routes existed but relays/buffers could not pay (em serving mode only).
  std::size_t requests_congested = 0;
  /// Backpressure refusals at admission (traffic serving mode only).
  std::size_t requests_rejected_capacity = 0;
  /// Queueing-deadline drops (traffic serving mode only).
  std::size_t requests_dropped_deadline = 0;
  /// Relay changes between consecutively served snapshots of one request.
  std::size_t handovers = 0;

  /// Latency tail percentiles [s] over served requests. Filled by the em
  /// serving mode (classical heralding latency) and by the traffic serving
  /// mode (queueing + heralding); all 0 for the paper's instantaneous
  /// single-shot model, which has no latency notion.
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  /// Queue-delay percentiles [s]; only the traffic serving mode fills these.
  double waiting_p50 = 0.0;
  double waiting_p95 = 0.0;
  double waiting_p99 = 0.0;

  /// Entanglement-management accounting (serving_mode = Entanglement only).
  struct EmSummary {
    bool enabled = false;
    std::size_t swaps = 0;                ///< Bell-state measurements
    std::size_t purification_rounds = 0;  ///< BBPSSW rounds spent
    std::size_t pairs_consumed = 0;       ///< buffered elementary pairs
    std::size_t slo_met = 0;              ///< served requests meeting SLO
    std::size_t multipath_spills = 0;     ///< served on an alternate route
    double mean_memory_occupancy = 0.0;   ///< in [0, 1]
    double mean_swap_depth = 0.0;         ///< heralding rounds per served
  } em;

  /// Open-arrival traffic accounting (serving_mode = Traffic only).
  struct TrafficSummary {
    bool enabled = false;
    /// Mean over windows of the busiest node's load fraction, in [0, 1].
    double mean_peak_utilisation = 0.0;
    /// Largest backlog any serving window reached.
    std::size_t peak_queue_depth = 0;
  } traffic;
};

/// Convert an event-driven traffic run into the unified metrics row
/// (served fraction, delivered fidelity, latency/waiting tails). Coverage,
/// hop and em fields stay at their defaults — the traffic engine does not
/// measure them.
[[nodiscard]] ArchitectureMetrics traffic_metrics(std::string architecture,
                                                  std::size_t satellites,
                                                  const sim::TrafficResult& r);

/// --- Execution context threaded through every runner. ---
/// Aggregates the scenario parameters with the machinery an evaluation may
/// use. Everything but `config` is optional; pointers are borrowed and may
/// be nullptr.
struct RunContext {
  QntnConfig config{};
  /// Parallelises space_ground_sweep across constellation sizes; for single
  /// evaluations (and single-size sweeps) it is handed to run_scenario's
  /// parallel snapshot engine instead, unless config.parallel_snapshots is
  /// off. nullptr = run serially.
  ThreadPool* pool = nullptr;
  /// Metrics registry, installed as the ambient registry for the duration
  /// of each evaluation (so routing/topology layers report into it).
  obs::Registry* registry = nullptr;
  /// JSONL trace sink. Multi-size sweeps drop it (interleaved runs would
  /// garble the stream); single evaluations honour it.
  obs::TraceSink* trace = nullptr;
  /// Span profiler, installed as the thread's ambient profiler for the
  /// duration of each evaluation (worker threads included — every task
  /// carries the context). Per-thread buffers keep concurrent sweeps safe.
  obs::Profiler* profiler = nullptr;
  /// Overrides config.request_seed when set.
  std::optional<std::uint64_t> seed{};

  /// Derived: config.scenario_config() with the hooks and seed applied.
  [[nodiscard]] sim::ScenarioConfig scenario_config() const;
};

/// --- Figs. 6-8: the space-ground constellation sweep. ---

/// Constellation sizes of the paper's sweep: 6, 12, ..., 108.
[[nodiscard]] std::vector<std::size_t> paper_constellation_sizes();

/// Evaluate one constellation size end to end.
[[nodiscard]] ArchitectureMetrics evaluate_space_ground(
    const RunContext& ctx, std::size_t n_satellites);
[[nodiscard]] ArchitectureMetrics evaluate_space_ground(
    const QntnConfig& config, std::size_t n_satellites);

/// Evaluate the full sweep, parallelised across sizes on ctx.pool when set.
[[nodiscard]] std::vector<ArchitectureMetrics> space_ground_sweep(
    const RunContext& ctx, const std::vector<std::size_t>& sizes);
[[nodiscard]] std::vector<ArchitectureMetrics> space_ground_sweep(
    const QntnConfig& config, const std::vector<std::size_t>& sizes,
    ThreadPool& pool);

/// --- Section IV-C: air-ground architecture. ---
[[nodiscard]] ArchitectureMetrics evaluate_air_ground(const RunContext& ctx);
[[nodiscard]] ArchitectureMetrics evaluate_air_ground(const QntnConfig& config);

/// --- Extension: hybrid space+air architecture (paper future work). ---
[[nodiscard]] ArchitectureMetrics evaluate_hybrid(const RunContext& ctx,
                                                  std::size_t n_satellites);
[[nodiscard]] ArchitectureMetrics evaluate_hybrid(const QntnConfig& config,
                                                  std::size_t n_satellites);

/// --- Table III: the comparative summary (one row per architecture). ---
[[nodiscard]] std::vector<ArchitectureMetrics> table3_comparison(
    const RunContext& ctx, std::size_t space_ground_satellites = 108);
[[nodiscard]] std::vector<ArchitectureMetrics> table3_comparison(
    const QntnConfig& config, std::size_t space_ground_satellites = 108);

}  // namespace qntn::core
