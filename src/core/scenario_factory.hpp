#pragma once

#include <cstddef>

#include "core/qntn_config.hpp"
#include "sim/network_model.hpp"

/// \file scenario_factory.hpp
/// Builders assembling the paper's two architectures (plus the hybrid
/// future-work variant) into simulation-ready NetworkModels.

namespace qntn::core {

/// Ground-only model: the three Table I LANs with fiber links. The common
/// base of every architecture.
[[nodiscard]] sim::NetworkModel build_ground_model(const QntnConfig& config);

/// Space-ground architecture (Section II-B): ground LANs plus the Table II
/// constellation truncated to `n_satellites` (multiple of 6, <= 108), each
/// satellite carrying a precomputed one-day ephemeris at the config's step.
[[nodiscard]] sim::NetworkModel build_space_ground_model(
    const QntnConfig& config, std::size_t n_satellites);

/// Air-ground architecture (Section II-C): ground LANs plus one HAP at
/// (35.6692, -85.0662), 30 km altitude.
[[nodiscard]] sim::NetworkModel build_air_ground_model(const QntnConfig& config);

/// Hybrid architecture (the paper's future-work direction): HAP plus
/// constellation. Enable config.enable_hap_satellite to also allow
/// HAP-satellite FSO links.
[[nodiscard]] sim::NetworkModel build_hybrid_model(const QntnConfig& config,
                                                   std::size_t n_satellites);

}  // namespace qntn::core
