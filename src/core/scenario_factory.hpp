#pragma once

#include <cstddef>
#include <memory>

#include "core/qntn_config.hpp"
#include "plan/contact_plan.hpp"
#include "sim/network_model.hpp"

/// \file scenario_factory.hpp
/// Builders assembling the paper's two architectures (plus the hybrid
/// future-work variant) into simulation-ready NetworkModels. Builders that
/// accept a ThreadPool* fan the per-satellite work (ephemeris generation,
/// contact-plan compilation) out across workers; the fan-outs are
/// deterministic, so the built model and topology are identical for any
/// thread count (including no pool).

namespace qntn {
class ThreadPool;
}  // namespace qntn

namespace qntn::core {

/// Ground-only model: the three Table I LANs with fiber links. The common
/// base of every architecture.
[[nodiscard]] sim::NetworkModel build_ground_model(const QntnConfig& config);

/// Space-ground architecture (Section II-B): ground LANs plus the Table II
/// constellation truncated to `n_satellites` (multiple of 6, <= 108), each
/// satellite carrying a precomputed one-day ephemeris at the config's step.
[[nodiscard]] sim::NetworkModel build_space_ground_model(
    const QntnConfig& config, std::size_t n_satellites,
    ThreadPool* pool = nullptr);

/// Air-ground architecture (Section II-C): ground LANs plus one HAP at
/// (35.6692, -85.0662), 30 km altitude.
[[nodiscard]] sim::NetworkModel build_air_ground_model(const QntnConfig& config);

/// Hybrid architecture (the paper's future-work direction): HAP plus
/// constellation. Enable config.enable_hap_satellite to also allow
/// HAP-satellite FSO links.
[[nodiscard]] sim::NetworkModel build_hybrid_model(
    const QntnConfig& config, std::size_t n_satellites,
    ThreadPool* pool = nullptr);

/// Owning bundle produced by make_topology: the provider plus whatever
/// state backs it (the compiled contact plan in ContactPlan mode). Movable;
/// the backing state lives on the heap so moves keep references stable.
struct Topology {
  /// Engaged only in TopologyMode::ContactPlan.
  std::unique_ptr<plan::ContactPlan> plan;
  std::unique_ptr<sim::TopologyProvider> owner;

  [[nodiscard]] const sim::TopologyProvider& provider() const { return *owner; }
};

/// Instantiate the topology backend config.topology_mode selects. The model
/// must outlive the returned bundle. `pool` (optional) parallelizes the
/// contact-plan compile in ContactPlan mode; the compiled plan is
/// byte-identical for any thread count.
[[nodiscard]] Topology make_topology(const QntnConfig& config,
                                     const sim::NetworkModel& model,
                                     ThreadPool* pool = nullptr);

}  // namespace qntn::core
