#include "core/qntn_config.hpp"

namespace qntn::core {

sim::LinkPolicy QntnConfig::link_policy() const {
  sim::LinkPolicy policy;
  policy.fso.wavelength = wavelength;
  policy.fso.receiver_efficiency = receiver_efficiency;
  policy.fso.ao_gain = ao_gain;
  policy.fso.extinction.zenith_transmittance = zenith_transmittance;
  policy.fso.weather = weather;
  policy.fiber_attenuation_db_per_km = fiber_attenuation_db_per_km;
  policy.transmissivity_threshold = transmissivity_threshold;
  policy.elevation_mask = elevation_mask;
  policy.lan_topology = lan_topology;
  policy.enable_inter_satellite = enable_inter_satellite;
  policy.enable_hap_satellite = enable_hap_satellite;
  return policy;
}

sim::ScenarioConfig QntnConfig::scenario_config() const {
  sim::ScenarioConfig config;
  config.coverage.duration = day_duration;
  config.coverage.step = ephemeris_step;
  config.request_count = request_count;
  config.request_steps = request_steps;
  config.request_step_interval =
      day_duration / static_cast<double>(request_steps);
  config.metric = metric;
  config.convention = convention;
  config.request_seed = request_seed;
  config.em = em_options();
  config.traffic = traffic_options();
  return config;
}

em::EmOptions QntnConfig::em_options() const {
  em::EmOptions options;
  options.enabled = serving_mode == ServingMode::Entanglement;
  options.pool.slots_per_node = em_memory_slots;
  options.pool.generation_period = em_generation_period;
  options.pool.max_storage = em_max_storage;
  options.pool.memory = quantum::MemoryModel{em_memory_t1, em_memory_t2};
  options.swap.heralding_latency = em_heralding_latency;
  options.purify.fidelity_slo = em_fidelity_slo;
  options.purify.max_rounds = em_purify_max_rounds;
  options.k_paths = em_k_paths;
  options.node_capacity = em_node_capacity;
  options.validate();
  return options;
}

sim::TrafficConfig QntnConfig::traffic_options() const {
  sim::TrafficConfig options;
  options.enabled = serving_mode == ServingMode::Traffic;
  options.duration = day_duration;
  options.arrival_rate = traffic_arrival_rate;
  options.diurnal_amplitude = traffic_diurnal_amplitude;
  options.node_capacity = traffic_node_capacity;
  options.service_overhead = traffic_service_overhead;
  options.max_queue_delay = traffic_max_queue_delay;
  options.max_backlog = traffic_max_backlog;
  options.snapshot_interval = ephemeris_step;
  options.memory = quantum::MemoryModel{em_memory_t1, em_memory_t2};
  options.metric = metric;
  options.seed = traffic_seed;
  options.validate();
  return options;
}

plan::ContactPlanOptions QntnConfig::plan_options() const {
  plan::ContactPlanOptions options;
  options.horizon = day_duration;
  options.step = ephemeris_step;
  options.max_elevation_rate = contact_max_elevation_rate;
  options.max_range_rate = contact_max_range_rate;
  options.sample_tolerance = contact_sample_tolerance;
  return options;
}

channel::OpticalTerminal QntnConfig::ground_terminal() const {
  return {ground_aperture_radius, pointing_jitter};
}

channel::OpticalTerminal QntnConfig::satellite_terminal() const {
  return {satellite_aperture_radius, pointing_jitter};
}

channel::OpticalTerminal QntnConfig::hap_terminal() const {
  return {hap_aperture_radius, pointing_jitter};
}

}  // namespace qntn::core
