#include "lint/include_graph.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <tuple>

namespace qntn::lint {

namespace {

/// The declared architecture, lowest layer first. An edge is legal only
/// within one module or strictly downward in rank; two modules sharing a
/// rank are independent siblings. tests sit above tools/bench/examples so
/// test code may exercise the CLIs' shared headers, never the reverse.
const std::vector<LayerEntry>& layer_table() {
  static const std::vector<LayerEntry> kLayers = {
      {"common", 0},
      {"obs", 1},
      {"geo", 1},
      {"quantum", 1},
      {"atmosphere", 1},
      {"orbit", 2},
      {"channel", 2},
      {"net", 2},
      {"em", 3},
      {"sim", 4},
      {"plan", 5},
      {"core", 6},
      {"lint", 7},
      {"tools", 8},
      {"bench", 8},
      {"examples", 8},
      {"tests", 9},
  };
  return kLayers;
}

[[nodiscard]] std::map<std::string_view, int> rank_of(
    const std::vector<LayerEntry>& layers) {
  std::map<std::string_view, int> ranks;
  for (const LayerEntry& entry : layers) ranks[entry.module] = entry.rank;
  return ranks;
}

/// Normalize "a/./b" and "a/x/../b" path segments (includes are written
/// plainly in this repo, but fixture trees may exercise the dots).
[[nodiscard]] std::string normalize(std::string_view path) {
  std::vector<std::string> parts;
  std::string part;
  const auto flush = [&] {
    if (part.empty() || part == ".") {
      // no segment
    } else if (part == "..") {
      if (!parts.empty()) parts.pop_back();
    } else {
      parts.push_back(part);
    }
    part.clear();
  };
  for (const char c : path) {
    if (c == '/') {
      flush();
    } else {
      part += c;
    }
  }
  flush();
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += '/';
    out += p;
  }
  return out;
}

[[nodiscard]] std::string dirname_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? std::string{}
                                         : std::string(path.substr(0, slash));
}

/// Module-level aggregation: (from-module, to-module) → file-edge count,
/// self-edges excluded. Deterministic via std::map ordering.
[[nodiscard]] std::map<std::pair<std::string, std::string>, std::size_t>
module_edges(const IncludeGraph& graph) {
  std::map<std::pair<std::string, std::string>, std::size_t> edges;
  for (const IncludeEdge& edge : graph.edges) {
    const std::string from = module_of(edge.from);
    const std::string to = module_of(edge.to);
    if (from.empty() || to.empty() || from == to) continue;
    ++edges[{from, to}];
  }
  return edges;
}

/// Modules present in the graph with their file counts, sorted by
/// (rank, name); unknown modules sort last with rank INT_MAX.
[[nodiscard]] std::vector<std::pair<std::string, std::size_t>>
module_files(const IncludeGraph& graph,
             const std::vector<LayerEntry>& layers) {
  std::map<std::string, std::size_t> counts;
  for (const std::string& file : graph.files) {
    const std::string module = module_of(file);
    if (!module.empty()) ++counts[module];
  }
  const std::map<std::string_view, int> ranks = rank_of(layers);
  std::vector<std::pair<std::string, std::size_t>> out(counts.begin(),
                                                       counts.end());
  std::sort(out.begin(), out.end(), [&](const auto& a, const auto& b) {
    const auto rank = [&](const std::string& m) {
      const auto it = ranks.find(m);
      return it == ranks.end() ? std::numeric_limits<int>::max() : it->second;
    };
    const int ra = rank(a.first);
    const int rb = rank(b.first);
    return ra != rb ? ra < rb : a.first < b.first;
  });
  return out;
}

}  // namespace

const std::vector<LayerEntry>& default_layers() { return layer_table(); }

std::string module_of(std::string_view path) {
  constexpr std::string_view kSrc = "src/";
  std::string_view rest = path;
  if (path.substr(0, kSrc.size()) == kSrc) {
    rest = path.substr(kSrc.size());
    const std::size_t slash = rest.find('/');
    // A file directly under src/ belongs to no module: flagged unknown.
    return slash == std::string_view::npos ? std::string{}
                                           : std::string(rest.substr(0, slash));
  }
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return {};
  const std::string_view top = rest.substr(0, slash);
  for (const std::string_view known : {"tools", "bench", "tests", "examples"}) {
    if (top == known) return std::string(top);
  }
  return {};
}

IncludeGraph build_include_graph(
    const std::map<std::string, std::string>& sources) {
  IncludeGraph graph;
  graph.files.reserve(sources.size());
  for (const auto& [path, text] : sources) graph.files.push_back(path);

  static const std::regex kInclude(R"re(^\s*#\s*include\s*"([^"]+)")re");
  for (const auto& [path, text] : sources) {
    // Comments stripped, strings kept: the include target is a literal.
    const std::string stripped =
        strip_source(text, /*strip_strings=*/false);
    std::istringstream in(stripped);
    std::string line;
    std::size_t line_number = 0;
    const std::string dir = dirname_of(path);
    while (std::getline(in, line)) {
      ++line_number;
      std::smatch match;
      if (!std::regex_search(line, match, kInclude)) continue;
      const std::string target = match[1].str();
      // Same-directory first (bench/perf_harness.hpp style), then the
      // src/ include root ("obs/trace.hpp" style).
      for (const std::string& candidate :
           {normalize(dir.empty() ? target : dir + "/" + target),
            normalize("src/" + target)}) {
        if (sources.count(candidate) != 0) {
          graph.edges.push_back({path, line_number, candidate});
          break;
        }
      }
    }
  }
  return graph;
}

std::vector<Finding> check_layering(const IncludeGraph& graph,
                                    const std::vector<LayerEntry>& layers) {
  std::vector<Finding> findings;
  const std::map<std::string_view, int> ranks = rank_of(layers);

  // Every scanned file must belong to a declared module — the table has
  // to grow with the tree, or layering silently stops covering new code.
  std::set<std::string> unknown_reported;
  for (const std::string& file : graph.files) {
    const std::string module = module_of(file);
    if (!module.empty() && ranks.count(module) != 0) continue;
    const std::string dir = module.empty() ? dirname_of(file) : module;
    if (!unknown_reported.insert(dir).second) continue;
    findings.push_back(
        {file, 1, "layer-unknown-module",
         "directory '" + dir +
             "' is not in the layer table (src/lint/include_graph.cpp); "
             "add it at the right layer so the DAG check covers it"});
  }

  for (const IncludeEdge& edge : graph.edges) {
    const std::string from = module_of(edge.from);
    const std::string to = module_of(edge.to);
    if (from == to) continue;
    const auto from_rank = ranks.find(from);
    const auto to_rank = ranks.find(to);
    if (from_rank == ranks.end() || to_rank == ranks.end()) continue;
    if (to_rank->second < from_rank->second) continue;
    findings.push_back(
        {edge.from, edge.line, "layer-violation",
         "include chain " + edge.from + " -> " + edge.to + ": module '" +
             from + "' (layer " + std::to_string(from_rank->second) +
             ") may only include layers below " +
             std::to_string(from_rank->second) + ", not '" + to + "' (layer " +
             std::to_string(to_rank->second) + ")"});
  }
  return findings;
}

std::vector<Finding> check_include_cycles(const IncludeGraph& graph) {
  // Index files and build a sorted adjacency list.
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < graph.files.size(); ++i) {
    index[graph.files[i]] = i;
  }
  const std::size_t n = graph.files.size();
  std::vector<std::vector<std::size_t>> adjacency(n);
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> edge_line;
  for (const IncludeEdge& edge : graph.edges) {
    const std::size_t from = index.at(edge.from);
    const std::size_t to = index.at(edge.to);
    adjacency[from].push_back(to);
    edge_line.emplace(std::make_pair(from, to), edge.line);
  }
  for (std::vector<std::size_t>& next : adjacency) {
    std::sort(next.begin(), next.end());
  }

  // Iterative Tarjan SCC (the include graph can be deep).
  std::vector<int> order(n, -1);
  std::vector<int> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> components;
  int next_order = 0;
  struct Frame {
    std::size_t node;
    std::size_t edge = 0;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (order[root] != -1) continue;
    std::vector<Frame> frames{{root}};
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const std::size_t v = frame.node;
      if (frame.edge == 0) {
        order[v] = low[v] = next_order++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      if (frame.edge < adjacency[v].size()) {
        const std::size_t w = adjacency[v][frame.edge++];
        if (order[w] == -1) {
          frames.push_back({w});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], order[w]);
        }
      } else {
        if (low[v] == order[v]) {
          std::vector<std::size_t> component;
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component.push_back(w);
            if (w == v) break;
          }
          components.push_back(std::move(component));
        }
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().node] =
              std::min(low[frames.back().node], low[v]);
        }
      }
    }
  }

  std::vector<Finding> findings;
  for (std::vector<std::size_t>& component : components) {
    const bool self_loop =
        component.size() == 1 &&
        std::binary_search(adjacency[component[0]].begin(),
                           adjacency[component[0]].end(), component[0]);
    if (component.size() < 2 && !self_loop) continue;
    std::sort(component.begin(), component.end());
    const std::set<std::size_t> members(component.begin(), component.end());
    const std::size_t start = component[0];

    // Reconstruct one concrete chain start -> ... -> start by BFS inside
    // the component (smallest-neighbor order keeps it deterministic).
    std::map<std::size_t, std::size_t> parent;  // node -> predecessor
    std::vector<std::size_t> queue{start};
    std::size_t closing = start;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::size_t v = queue[head];
      for (const std::size_t w : adjacency[v]) {
        if (members.count(w) == 0) continue;
        if (w == start) {
          closing = v;
          head = queue.size();  // found a way back — stop the BFS
          break;
        }
        if (parent.count(w) == 0) {
          parent[w] = v;
          queue.push_back(w);
        }
      }
    }
    std::vector<std::size_t> chain{start};
    for (std::size_t v = closing; v != start; v = parent.at(v)) {
      chain.push_back(v);
    }
    std::reverse(chain.begin() + 1, chain.end());
    chain.push_back(start);

    std::string message = "include cycle: ";
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (i != 0) message += " -> ";
      message += graph.files[chain[i]];
    }
    const auto line = edge_line.find({chain[0], chain[1]});
    findings.push_back({graph.files[start],
                        line == edge_line.end() ? 1 : line->second,
                        "include-cycle", message});
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line) < std::tie(b.file, b.line);
            });
  return findings;
}

std::string graph_dot(const IncludeGraph& graph,
                      const std::vector<LayerEntry>& layers) {
  const std::map<std::string_view, int> ranks = rank_of(layers);
  std::ostringstream out;
  out << "digraph qntn_includes {\n  rankdir = BT;\n"
      << "  node [shape = box, fontname = \"Helvetica\"];\n";
  for (const auto& [module, files] : module_files(graph, layers)) {
    out << "  \"" << module << "\" [label=\"" << module;
    const auto rank = ranks.find(module);
    if (rank != ranks.end()) out << "\\nlayer " << rank->second;
    out << "\\n" << files << " files\"];\n";
  }
  for (const auto& [pair, count] : module_edges(graph)) {
    out << "  \"" << pair.first << "\" -> \"" << pair.second
        << "\" [label=\"" << count << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

std::string graph_json(const IncludeGraph& graph,
                       const std::vector<LayerEntry>& layers) {
  const std::map<std::string_view, int> ranks = rank_of(layers);
  std::ostringstream out;
  out << "{\n  \"version\": \"qntn-include-graph-v1\",\n  \"files\": "
      << graph.files.size() << ",\n  \"modules\": [";
  bool first = true;
  for (const auto& [module, files] : module_files(graph, layers)) {
    out << (first ? "" : ",") << "\n    {\"name\": \"" << module
        << "\", \"layer\": ";
    const auto rank = ranks.find(module);
    if (rank != ranks.end()) {
      out << rank->second;
    } else {
      out << "null";
    }
    out << ", \"files\": " << files << "}";
    first = false;
  }
  out << "\n  ],\n  \"edges\": [";
  first = true;
  for (const auto& [pair, count] : module_edges(graph)) {
    out << (first ? "" : ",") << "\n    {\"from\": \"" << pair.first
        << "\", \"to\": \"" << pair.second << "\", \"includes\": " << count
        << "}";
    first = false;
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace qntn::lint
