#pragma once

#include <string>
#include <vector>

#include "lint/rules.hpp"

/// \file scan.hpp
/// Repo-tree scanning for qntn_lint: enumerate the checked C++ sources
/// under a repo root and run every rule over them. Shared between the
/// qntn_lint CLI and the "repo is lint-clean" test so the two can never
/// disagree about what is covered.

namespace qntn::lint {

/// The directories checked under the repo root, in scan order.
[[nodiscard]] const std::vector<std::string>& default_scan_dirs();

/// Repo-relative paths (forward slashes, sorted) of every .hpp/.cpp under
/// the scan dirs. `tests/lint/fixtures` is excluded: those files are rule
/// test data and violate the rules on purpose.
[[nodiscard]] std::vector<std::string> list_sources(const std::string& root);

/// Run every rule over every listed source. Findings come back sorted by
/// (file, line) — the scan order — so output is deterministic.
[[nodiscard]] std::vector<Finding> check_tree(const std::string& root);

}  // namespace qntn::lint
