#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/rules.hpp"

/// \file scan.hpp
/// Repo-tree scanning for qntn_lint: enumerate the checked C++ sources
/// under a repo root and run every pass over them — the per-file lexical
/// rules (rules.hpp), the include-graph layering analyzer
/// (include_graph.hpp), the cross-artifact consistency checks
/// (consistency.hpp), and the stale-suppression audit (a `// lint:
/// <token>` whose rule no longer fires on that line is itself a finding).
/// Shared between the qntn_lint CLI and the "repo is lint-clean" test so
/// the two can never disagree about what is covered.

namespace qntn::lint {

/// The directories checked under the repo root, in scan order.
[[nodiscard]] const std::vector<std::string>& default_scan_dirs();

/// Rules added by the tree-level passes (layering, cycles, consistency,
/// stale-suppression audit), mirroring RuleSpec's name / justification
/// token / message triple for `--list-rules` and the suppression filter.
/// Rules with an empty token cannot be justified away: their findings
/// point into docs/goldens, or are themselves about suppressions.
struct PassRule {
  std::string_view name;
  std::string_view suppress;
  std::string_view message;
};
[[nodiscard]] const std::vector<PassRule>& pass_rules();

/// Repo-relative paths (forward slashes, sorted) of every .hpp/.cpp under
/// the scan dirs. `tests/lint/fixtures` is excluded: those files are rule
/// test data and violate the rules on purpose.
[[nodiscard]] std::vector<std::string> list_sources(const std::string& root);

/// Every scanned source loaded once: the tree passes (include graph,
/// consistency, suppression audit) all read from this map, and the CLI
/// reuses it for `--graph-out`.
struct TreeScan {
  std::string root;
  std::map<std::string, std::string> text;  ///< path → contents, sorted
};
[[nodiscard]] TreeScan load_tree(const std::string& root);

/// Run every pass over a loaded tree. Findings come back sorted by
/// (file, line, rule) so output is deterministic; `// lint: <token>`
/// justifications are applied centrally (and audited — an unused one is a
/// `stale-suppression` finding).
[[nodiscard]] std::vector<Finding> check_tree(const TreeScan& scan);

/// Convenience: load_tree + check_tree.
[[nodiscard]] std::vector<Finding> check_tree(const std::string& root);

/// Machine-readable findings document (schema `qntn-lint-v1`):
/// `{"version", "files", "findings": [{file, line, rule, message}]}`.
[[nodiscard]] std::string findings_json(const std::vector<Finding>& findings,
                                        std::size_t files);

}  // namespace qntn::lint
