#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

/// \file rules.hpp
/// The qntn_lint rule engine: fast lexical checks for project invariants
/// that clang-tidy cannot know. The headline claim of this reproduction is
/// determinism — ScenarioResult and every emitted trace byte are identical
/// across thread counts and topology modes — and these rules statically ban
/// the ways a future change could quietly break that (ad-hoc randomness,
/// wall-clock reads, locale/precision-dependent float formatting, iteration
/// order of unordered containers feeding run output), plus two hygiene
/// invariants (canonical unit suffixes, `#pragma once` headers).
///
/// Rules are data-driven: each is a RuleSpec row interpreted by one of a
/// small set of checker kinds, so adding a rule is adding a table entry.
/// Matching runs on comment-stripped (and, for most rules, string-stripped)
/// text, and every rule has a justification token — `// lint: <token>` on
/// the offending line or the line above acknowledges a reviewed exception.

namespace qntn::lint {

enum class RuleKind {
  /// Regex applied line by line to the stripped text.
  Pattern,
  /// Range-for over a container declared std::unordered_* in the same file.
  UnorderedIteration,
  /// Headers must open with `#pragma once` (no include guards).
  HeaderPragma,
};

/// What the matcher may see: string literals usually carry no violations
/// (and plenty of false positives), except for printf format strings.
enum class ScanText {
  StrippedCommentsAndStrings,
  StrippedComments,  ///< keep string literals (format-string rules)
};

struct RuleSpec {
  std::string_view name;     ///< diagnostic id, e.g. "rng-source"
  RuleKind kind;
  ScanText scan;
  std::string_view pattern;  ///< ECMAScript regex (Pattern rules)
  /// Regex over the repo-relative path selecting the files the rule applies
  /// to; empty = every C++ source/header.
  std::string_view file_filter;
  /// Regex over the repo-relative path of files exempt from the rule.
  std::string_view allow_files;
  /// Token after `// lint: ` that suppresses a finding on that line or the
  /// next one.
  std::string_view suppress;
  /// One-line diagnostic: what is wrong and what to use instead.
  std::string_view message;
};

/// The rule table, in reporting order.
[[nodiscard]] const std::vector<RuleSpec>& rules();

struct Finding {
  std::string file;   ///< repo-relative path, forward slashes
  std::size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

/// Run every applicable rule over one file. `path` must be repo-relative
/// with forward slashes (rule filters match against it).
[[nodiscard]] std::vector<Finding> check_source(std::string_view path,
                                                std::string_view text);

/// Same scan as check_source but with `// lint: <token>` justifications
/// ignored: every match is reported. The tree-level stale-suppression
/// audit diffs this against the justification map to find suppressions
/// whose rule no longer fires.
[[nodiscard]] std::vector<Finding> check_source_raw(std::string_view path,
                                                    std::string_view text);

/// `// lint: <token> [...]` justification tokens per 1-based line.
/// Extracted from string-stripped text, so a `// lint:` inside a string
/// literal (a diagnostic message, a fixture) is not a justification.
[[nodiscard]] std::map<std::size_t, std::vector<std::string>>
find_suppressions(std::string_view text);

/// Whether `tokens` (from find_suppressions) justifies a finding of
/// `token`'s rule at `line`: a justification covers its own line and the
/// line below it.
[[nodiscard]] bool suppression_covers(
    const std::map<std::size_t, std::vector<std::string>>& tokens,
    std::size_t line, std::string_view token);

/// Replace comments — and, when `strip_strings`, string/char literals —
/// with spaces, preserving the line structure so line numbers still match.
[[nodiscard]] std::string strip_source(std::string_view text,
                                       bool strip_strings);

/// Replace string/char literals with spaces but keep comments (the text
/// find_suppressions reads: justifications live in comments, and literals
/// must not fake them).
[[nodiscard]] std::string strip_strings_keep_comments(std::string_view text);

}  // namespace qntn::lint
