#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

/// \file rules.hpp
/// The qntn_lint rule engine: fast lexical checks for project invariants
/// that clang-tidy cannot know. The headline claim of this reproduction is
/// determinism — ScenarioResult and every emitted trace byte are identical
/// across thread counts and topology modes — and these rules statically ban
/// the ways a future change could quietly break that (ad-hoc randomness,
/// wall-clock reads, locale/precision-dependent float formatting, iteration
/// order of unordered containers feeding run output), plus two hygiene
/// invariants (canonical unit suffixes, `#pragma once` headers).
///
/// Rules are data-driven: each is a RuleSpec row interpreted by one of a
/// small set of checker kinds, so adding a rule is adding a table entry.
/// Matching runs on comment-stripped (and, for most rules, string-stripped)
/// text, and every rule has a justification token — `// lint: <token>` on
/// the offending line or the line above acknowledges a reviewed exception.

namespace qntn::lint {

enum class RuleKind {
  /// Regex applied line by line to the stripped text.
  Pattern,
  /// Range-for over a container declared std::unordered_* in the same file.
  UnorderedIteration,
  /// Headers must open with `#pragma once` (no include guards).
  HeaderPragma,
};

/// What the matcher may see: string literals usually carry no violations
/// (and plenty of false positives), except for printf format strings.
enum class ScanText {
  StrippedCommentsAndStrings,
  StrippedComments,  ///< keep string literals (format-string rules)
};

struct RuleSpec {
  std::string_view name;     ///< diagnostic id, e.g. "rng-source"
  RuleKind kind;
  ScanText scan;
  std::string_view pattern;  ///< ECMAScript regex (Pattern rules)
  /// Regex over the repo-relative path selecting the files the rule applies
  /// to; empty = every C++ source/header.
  std::string_view file_filter;
  /// Regex over the repo-relative path of files exempt from the rule.
  std::string_view allow_files;
  /// Token after `// lint: ` that suppresses a finding on that line or the
  /// next one.
  std::string_view suppress;
  /// One-line diagnostic: what is wrong and what to use instead.
  std::string_view message;
};

/// The rule table, in reporting order.
[[nodiscard]] const std::vector<RuleSpec>& rules();

struct Finding {
  std::string file;   ///< repo-relative path, forward slashes
  std::size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

/// Run every applicable rule over one file. `path` must be repo-relative
/// with forward slashes (rule filters match against it).
[[nodiscard]] std::vector<Finding> check_source(std::string_view path,
                                                std::string_view text);

/// Replace comments — and, when `strip_strings`, string/char literals —
/// with spaces, preserving the line structure so line numbers still match.
[[nodiscard]] std::string strip_source(std::string_view text,
                                       bool strip_strings);

}  // namespace qntn::lint
