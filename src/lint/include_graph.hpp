#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/rules.hpp"

/// \file include_graph.hpp
/// Whole-repo include-graph analysis for qntn_lint: parse the
/// `#include "..."` edges across src/, tools/, bench/, tests/ and
/// examples/, aggregate them into the module dependency graph, and enforce
/// the declared layer DAG. Two invariants are checked:
///
///   * **Layering** — every module sits in one layer of the table below,
///     and a file may only include headers of its own module or of a
///     strictly lower layer. An upward or sideways include is a
///     `layer-violation`; a file in a directory missing from the table is
///     a `layer-unknown-module` (the table must grow with the tree).
///   * **Acyclicity** — the file-level include graph must be a DAG even
///     inside one module; every strongly connected component is reported
///     once as an `include-cycle` with the offending include chain.
///
/// The graph itself is exportable as DOT and JSON (CI uploads both), so
/// the architecture diagram in the docs can never drift from the code.

namespace qntn::lint {

/// One module (= one directory) and its layer. Edges must go strictly
/// down the layer ranks; modules sharing a rank are siblings that may not
/// include each other.
struct LayerEntry {
  std::string_view module;  ///< "common", "geo", ..., "tools", "tests"
  int rank = 0;
};

/// The declared layer table for this repository, lowest layer first:
/// common → obs/geo/quantum/atmosphere → orbit/channel/net → em →
/// sim → plan → core → lint → tools/bench/examples → tests.
[[nodiscard]] const std::vector<LayerEntry>& default_layers();

/// Module of a repo-relative path: the directory under src/ for library
/// code ("src/geo/frames.hpp" → "geo"), the top-level directory otherwise
/// ("tools/qntn_cli.cpp" → "tools"). Empty when the path matches neither.
[[nodiscard]] std::string module_of(std::string_view path);

/// One resolved `#include "..."` edge between two scanned files.
struct IncludeEdge {
  std::string from;      ///< repo-relative including file
  std::size_t line = 0;  ///< 1-based line of the #include
  std::string to;        ///< repo-relative included file
};

struct IncludeGraph {
  std::vector<std::string> files;   ///< sorted repo-relative paths
  std::vector<IncludeEdge> edges;   ///< sorted by (from, line)
};

/// Build the include graph from pre-loaded sources (path → text, paths
/// repo-relative with forward slashes). Quoted includes are resolved
/// against the including file's directory first, then against src/ (the
/// repo's one include root); unresolved includes (system headers spelled
/// with quotes, generated files) produce no edge.
[[nodiscard]] IncludeGraph build_include_graph(
    const std::map<std::string, std::string>& sources);

/// Layer-DAG enforcement over the module-level aggregation of `graph`.
/// Findings are raw (suppressions are applied by the tree pipeline).
[[nodiscard]] std::vector<Finding> check_layering(
    const IncludeGraph& graph, const std::vector<LayerEntry>& layers);

/// File-level cycle detection (Tarjan SCC); one finding per cycle, at the
/// lexicographically smallest member, naming the full include chain.
[[nodiscard]] std::vector<Finding> check_include_cycles(
    const IncludeGraph& graph);

/// Module-level digraph in Graphviz DOT, one node per module (labelled
/// with its layer), one edge per module pair (labelled with the number of
/// file-level includes behind it). Deterministic: sorted by (rank, name).
[[nodiscard]] std::string graph_dot(const IncludeGraph& graph,
                                    const std::vector<LayerEntry>& layers);

/// The same aggregation as stable JSON (`qntn-include-graph-v1`):
/// `{"version", "files", "modules": [{name, layer, files}],
///   "edges": [{from, to, includes}]}`.
[[nodiscard]] std::string graph_json(const IncludeGraph& graph,
                                     const std::vector<LayerEntry>& layers);

}  // namespace qntn::lint
