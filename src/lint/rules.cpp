#include "lint/rules.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>

namespace qntn::lint {

namespace {

/// Emitter files: the sources that write machine-read run output (metrics
/// JSON, JSONL traces, Chrome profiles, bench reports). Determinism rules
/// bite hardest here — a golden-trace test pins these bytes.
constexpr std::string_view kEmitterFiles = R"(^(src/obs/|bench/perf_harness\.hpp))";

const std::vector<RuleSpec>& rule_table() {
  static const std::vector<RuleSpec> kRules = {
      {
          "rng-source",
          RuleKind::Pattern,
          ScanText::StrippedCommentsAndStrings,
          R"(\bsrand\b|\brand\b|\brandom_device\b|\bdrand48\b|\blrand48\b)",
          "",
          R"(^src/common/rng\.hpp$)",
          "rng-ok",
          "nondeterministic randomness source; draw from qntn::Rng "
          "(common/rng.hpp), seeded from the scenario config",
      },
      {
          "wall-clock",
          RuleKind::Pattern,
          ScanText::StrippedCommentsAndStrings,
          R"(\bsystem_clock\b|\bgettimeofday\b|\bclock_gettime\b|\blocaltime\b|\bgmtime\b|\bstrftime\b|\btime\s*\(\s*(nullptr|NULL|0)?\s*\))",
          "",
          "",
          "wall-clock-ok",
          "wall-clock read makes runs irreproducible; use scenario time for "
          "results and steady_clock for durations",
      },
      {
          "float-format",
          RuleKind::Pattern,
          ScanText::StrippedComments,
          R"(%[-+#0-9]*(\.\d+)?[feEaA]|%(?![-+#0-9]*\.\d)[-+#0-9]*[gG]|\bstd::(fixed|scientific|hexfloat|setprecision)\b)",
          kEmitterFiles,
          "",
          "float-ok",
          "non-canonical float formatting in a result/trace emitter; use the "
          "deterministic \"%.10g\" helpers so output bytes stay stable",
      },
      {
          "ordered-iteration",
          RuleKind::UnorderedIteration,
          ScanText::StrippedCommentsAndStrings,
          "",
          kEmitterFiles,
          "",
          "ordered-ok",
          "iterating an unordered container in a file that writes run "
          "output; emit in sorted order, or justify with `// lint: "
          "ordered-ok` when the loop provably cannot affect output order",
      },
      {
          "unit-suffix",
          RuleKind::Pattern,
          ScanText::StrippedCommentsAndStrings,
          R"(\b(double|float)\s+\w+(_seconds?|_secs?|_met(er|re)s?|_kilomet(er|re)s?|_kms|_degrees?|_degs|_radians?|_rads|_decibels?|_minutes?|_milliseconds?|_msecs?|_microseconds?|_usecs?|_nanoseconds?|_hertz)\b)",
          "",
          R"(^src/common/units\.hpp$)",
          "unit-ok",
          "physical quantity with a non-canonical unit suffix; use the "
          "common/units.hpp conventions (_m, _km, _s, _ms, _us, _deg, _rad, "
          "_db, _hz, _nm)",
      },
      {
          "header-pragma",
          RuleKind::HeaderPragma,
          ScanText::StrippedComments,
          "",
          R"(\.hpp$)",
          "",
          "pragma-ok",
          "headers must open with `#pragma once` (no include guards) so the "
          "self-contained-header check can compile them in isolation",
      },
  };
  return kRules;
}

/// Compiled pattern per rule, in table order (empty regex for non-Pattern
/// kinds). Compiled once; the checker is run over a few hundred files.
const std::vector<std::regex>& compiled_patterns() {
  static const std::vector<std::regex> kCompiled = [] {
    std::vector<std::regex> out;
    out.reserve(rule_table().size());
    for (const RuleSpec& rule : rule_table()) {
      out.emplace_back(rule.pattern.empty() ? "$^" : std::string(rule.pattern),
                       std::regex::ECMAScript | std::regex::optimize);
    }
    return out;
  }();
  return kCompiled;
}

[[nodiscard]] bool path_matches(std::string_view path, std::string_view filter) {
  if (filter.empty()) return true;
  return std::regex_search(path.begin(), path.end(),
                           std::regex(std::string(filter)));
}

[[nodiscard]] std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

}  // namespace

std::map<std::size_t, std::vector<std::string>> find_suppressions(
    std::string_view text) {
  static const std::regex kLintComment(R"(//\s*lint:\s*([A-Za-z0-9_, -]+))");
  std::map<std::size_t, std::vector<std::string>> out;
  // Justifications are comments; literals must not fake them (rule
  // messages and test fixtures quote `// lint: ...` in strings).
  const std::string stripped = strip_strings_keep_comments(text);
  const std::vector<std::string_view> lines = split_lines(stripped);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::cmatch match;
    if (!std::regex_search(lines[i].begin(), lines[i].end(), match,
                           kLintComment)) {
      continue;
    }
    // Tokens are comma/space separated, e.g. "ordered-ok, float-ok".
    std::string token;
    for (const char c : match[1].str()) {
      if (c == ',' || c == ' ') {
        if (!token.empty()) out[i + 1].push_back(token);
        token.clear();
      } else {
        token += c;
      }
    }
    if (!token.empty()) out[i + 1].push_back(token);
  }
  return out;
}

bool suppression_covers(
    const std::map<std::size_t, std::vector<std::string>>& tokens,
    std::size_t line, std::string_view token) {
  // A justification covers its own line and the line below it, so both
  // trailing comments and a comment line above the construct work.
  for (const std::size_t at : {line, line > 1 ? line - 1 : line}) {
    const auto it = tokens.find(at);
    if (it == tokens.end()) continue;
    if (std::find(it->second.begin(), it->second.end(), token) !=
        it->second.end()) {
      return true;
    }
  }
  return false;
}

namespace {

[[nodiscard]] bool suppressed(
    const std::map<std::size_t, std::vector<std::string>>& tokens,
    std::size_t line, std::string_view token) {
  return suppression_covers(tokens, line, token);
}

/// Names declared as std::unordered_{map,set} in this file: find each
/// occurrence, balance the template angle brackets, and take the identifier
/// that follows (the declared variable or member).
[[nodiscard]] std::vector<std::string> unordered_names(std::string_view text) {
  std::vector<std::string> names;
  static const std::regex kUnordered(R"(\bunordered_(map|set|multimap|multiset)\b)");
  auto begin = std::cregex_iterator(text.begin(), text.end(), kUnordered);
  for (auto it = begin; it != std::cregex_iterator(); ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position()) +
                      static_cast<std::size_t>(it->length());
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
    if (pos >= text.size() || text[pos] != '<') continue;
    int depth = 0;
    for (; pos < text.size(); ++pos) {
      if (text[pos] == '<') ++depth;
      if (text[pos] == '>' && --depth == 0) {
        ++pos;
        break;
      }
    }
    // Skip whitespace and reference/pointer declarators between the
    // template-id and the declared name (`unordered_map<K, V>& counters`).
    while (pos < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '&' || text[pos] == '*')) {
      ++pos;
    }
    std::string name;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '_')) {
      name += text[pos++];
    }
    if (!name.empty()) names.push_back(name);
  }
  return names;
}

/// Range-for loops whose range expression mentions one of `names`. Matches
/// the repo style `for (decl : range)`; the range expression is everything
/// after the last top-level ` : ` on the line.
void check_unordered_iteration(
    const RuleSpec& rule, std::string_view path,
    const std::vector<std::string_view>& lines,
    const std::map<std::size_t, std::vector<std::string>>& tokens,
    const std::vector<std::string>& names, std::vector<Finding>& findings) {
  if (names.empty()) return;
  static const std::regex kRangeFor(R"(\bfor\s*\(.* : (.*)\))");
  static const std::regex kIdent(R"([A-Za-z_]\w*)");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::cmatch match;
    if (!std::regex_search(lines[i].begin(), lines[i].end(), match,
                           kRangeFor)) {
      continue;
    }
    const std::string range_expr = match[1].str();
    auto ident = std::sregex_iterator(range_expr.begin(), range_expr.end(),
                                      kIdent);
    bool hit = false;
    for (auto id = ident; id != std::sregex_iterator(); ++id) {
      if (std::find(names.begin(), names.end(), id->str()) != names.end()) {
        hit = true;
        break;
      }
    }
    if (!hit || suppressed(tokens, i + 1, rule.suppress)) continue;
    findings.push_back({std::string(path), i + 1, std::string(rule.name),
                        std::string(rule.message)});
  }
}

void check_header_pragma(const RuleSpec& rule, std::string_view path,
                         const std::vector<std::string_view>& lines,
                         std::vector<Finding>& findings) {
  static const std::regex kGuard(R"(^\s*#\s*ifndef\s+\w+_(H|HPP|H_|HPP_)\b)");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    // First non-blank content must be the pragma; include guards anywhere
    // are flagged too (a guarded header defeats the isolation compile).
    const bool blank =
        std::all_of(line.begin(), line.end(), [](unsigned char c) {
          return std::isspace(c) != 0;
        });
    if (blank) continue;
    std::cmatch match;
    if (std::regex_search(line.begin(), line.end(), match, kGuard) ||
        line.find("#pragma once") == std::string_view::npos) {
      findings.push_back({std::string(path), i + 1, std::string(rule.name),
                          std::string(rule.message)});
    }
    return;  // only the first non-blank line decides
  }
}

/// Shared literal/comment scanner behind the public strip entry points:
/// comments are blanked when `strip_comments`, string/char literals when
/// `strip_strings`; everything else (and the line structure) survives.
std::string strip_impl(std::string_view text, bool strip_comments,
                       bool strip_strings) {
  std::string out;
  out.reserve(text.size());
  enum class State { Code, LineComment, BlockComment, String, Char, RawString };
  State state = State::Code;
  std::string raw_delim;  // )delim" closing a raw string literal
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          out += strip_comments ? "  " : "//";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          out += strip_comments ? "  " : "/*";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          // R"delim( ... )delim"
          std::size_t open = text.find('(', i + 2);
          if (open == std::string_view::npos) {
            out += c;
            break;
          }
          // Built with clear()+push_back rather than operator=(const char*):
          // GCC 12's -Werror=restrict range analysis trips on the inlined
          // char-traits memcpy of the latter.
          raw_delim.clear();
          raw_delim.push_back(')');
          raw_delim.append(text.substr(i + 2, open - (i + 2)));
          raw_delim.push_back('"');
          state = State::RawString;
          out += strip_strings ? std::string(open - i + 1, ' ')
                               : std::string(text.substr(i, open - i + 1));
          i = open;
        } else if (c == '"') {
          state = State::String;
          out += strip_strings ? ' ' : c;
        } else if (c == '\'') {
          state = State::Char;
          out += strip_strings ? ' ' : c;
        } else {
          out += c;
        }
        break;
      case State::LineComment:
        if (c == '\n') {
          state = State::Code;
          out += c;
        } else {
          out += strip_comments ? ' ' : c;
        }
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          state = State::Code;
          out += strip_comments ? "  " : "*/";
          ++i;
        } else {
          out += (c == '\n' || !strip_comments) ? c : ' ';
        }
        break;
      case State::String:
      case State::Char: {
        const char quote = state == State::String ? '"' : '\'';
        if (c == '\\') {
          out += strip_strings ? "  " : std::string(text.substr(i, 2));
          ++i;
        } else if (c == quote) {
          state = State::Code;
          out += strip_strings ? ' ' : c;
        } else {
          out += strip_strings ? (c == '\n' ? '\n' : ' ') : c;
        }
        break;
      }
      case State::RawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          out += strip_strings ? std::string(raw_delim.size(), ' ')
                               : raw_delim;
          i += raw_delim.size() - 1;
          state = State::Code;
        } else {
          out += strip_strings ? (c == '\n' ? '\n' : ' ') : c;
        }
        break;
    }
  }
  return out;
}

std::vector<Finding> check_source_impl(std::string_view path,
                                       std::string_view text,
                                       bool honor_suppressions) {
  std::vector<Finding> findings;
  const std::string no_comments = strip_source(text, /*strip_strings=*/false);
  const std::string code_only = strip_source(text, /*strip_strings=*/true);
  const std::vector<std::string_view> no_comment_lines =
      split_lines(no_comments);
  const std::vector<std::string_view> code_lines = split_lines(code_only);
  const std::map<std::size_t, std::vector<std::string>> tokens =
      honor_suppressions ? find_suppressions(text)
                         : std::map<std::size_t, std::vector<std::string>>{};

  const std::vector<RuleSpec>& table = rule_table();
  const std::vector<std::regex>& patterns = compiled_patterns();
  for (std::size_t r = 0; r < table.size(); ++r) {
    const RuleSpec& rule = table[r];
    if (!path_matches(path, rule.file_filter)) continue;
    if (!rule.allow_files.empty() && path_matches(path, rule.allow_files)) {
      continue;
    }
    const std::vector<std::string_view>& lines =
        rule.scan == ScanText::StrippedComments ? no_comment_lines
                                                : code_lines;
    switch (rule.kind) {
      case RuleKind::Pattern:
        for (std::size_t i = 0; i < lines.size(); ++i) {
          if (!std::regex_search(lines[i].begin(), lines[i].end(),
                                 patterns[r])) {
            continue;
          }
          if (suppressed(tokens, i + 1, rule.suppress)) continue;
          findings.push_back({std::string(path), i + 1,
                              std::string(rule.name),
                              std::string(rule.message)});
        }
        break;
      case RuleKind::UnorderedIteration:
        check_unordered_iteration(rule, path, lines, tokens,
                                  unordered_names(code_only), findings);
        break;
      case RuleKind::HeaderPragma:
        check_header_pragma(rule, path, lines, findings);
        break;
    }
  }
  return findings;
}

}  // namespace

const std::vector<RuleSpec>& rules() { return rule_table(); }

std::string strip_source(std::string_view text, bool strip_strings) {
  return strip_impl(text, /*strip_comments=*/true, strip_strings);
}

std::string strip_strings_keep_comments(std::string_view text) {
  return strip_impl(text, /*strip_comments=*/false, /*strip_strings=*/true);
}

std::vector<Finding> check_source(std::string_view path,
                                  std::string_view text) {
  return check_source_impl(path, text, /*honor_suppressions=*/true);
}

std::vector<Finding> check_source_raw(std::string_view path,
                                      std::string_view text) {
  return check_source_impl(path, text, /*honor_suppressions=*/false);
}

}  // namespace qntn::lint
