#include "lint/consistency.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <tuple>

namespace qntn::lint {

namespace {

namespace fs = std::filesystem;

/// A name extracted from an artifact, with where it was found.
struct NamedSite {
  std::string name;
  std::string file;
  std::size_t line = 0;
};

[[nodiscard]] std::size_t line_of(std::string_view text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<long>(pos),
                            '\n'));
}

/// All matches of `pattern` in `text`, taking capture group `group` as the
/// name. `text` must be the comment-stripped (strings kept) source so
/// commented-out emitters do not count.
void extract(const std::string& file, const std::string& text,
             const std::regex& pattern, std::size_t group,
             std::vector<NamedSite>& out) {
  for (auto it = std::sregex_iterator(text.begin(), text.end(), pattern);
       it != std::sregex_iterator(); ++it) {
    out.push_back({(*it)[group].str(), file,
                   line_of(text, static_cast<std::size_t>(it->position()))});
  }
}

[[nodiscard]] bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// Entries of the `<!-- qntn-lint: <kind> -->` ... `<!-- qntn-lint: end -->`
/// markdown blocks: the first backticked token of each table row.
void extract_doc_block(const std::string& file, const std::string& text,
                       std::string_view kind, std::vector<NamedSite>& out) {
  const std::string open = "<!-- qntn-lint: " + std::string(kind) + " -->";
  constexpr std::string_view kClose = "<!-- qntn-lint: end -->";
  static const std::regex kRow(R"(^\|[^`|]*`([^`]+)`)");
  std::istringstream in(text);
  std::string line;
  std::size_t line_number = 0;
  bool inside = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find(open) != std::string::npos) {
      inside = true;
      continue;
    }
    if (line.find(kClose) != std::string::npos) {
      inside = false;
      continue;
    }
    if (!inside) continue;
    std::smatch match;
    if (std::regex_search(line, match, kRow)) {
      out.push_back({match[1].str(), file, line_number});
    }
  }
}

[[nodiscard]] std::set<std::string> names_of(
    const std::vector<NamedSite>& sites) {
  std::set<std::string> names;
  for (const NamedSite& site : sites) names.insert(site.name);
  return names;
}

/// One direction of a set difference as findings: every site whose name is
/// missing from `documented` becomes a `rule` finding.
void report_missing(const std::vector<NamedSite>& sites,
                    const std::set<std::string>& documented,
                    std::string_view rule, std::string_view what,
                    std::string_view where, std::vector<Finding>& findings) {
  std::set<std::pair<std::string, std::string>> reported;  // (name, file)
  for (const NamedSite& site : sites) {
    if (documented.count(site.name) != 0) continue;
    if (!reported.insert({site.name, site.file}).second) continue;
    findings.push_back({site.file, site.line, std::string(rule),
                        std::string(what) + " '" + site.name + "' " +
                            std::string(where)});
  }
}

}  // namespace

std::vector<Finding> check_consistency(
    const std::string& root,
    const std::map<std::string, std::string>& sources) {
  // --- extract from the C++ sources (src/ only: the emitting code) ---
  static const std::regex kCounter(
      R"re(\bobs::(count|observe)\s*\(\s*"([^"]+)")re");
  static const std::regex kTimer(
      R"re(\bScopedTimer\s+\w+\s*\(\s*"([^"]+)")re");
  static const std::regex kSpan(R"re(\bSpan\s+\w+\s*\(\s*"([^"]+)")re");
  static const std::regex kLiteral(R"re("((?:[^"\\\n]|\\.)+)")re");
  static const std::regex kParseKey(R"re(\{\s*"([A-Za-z0-9_]+)"\s*,)re");
  static const std::regex kSerializeKey(R"re("([A-Za-z0-9_]+) = ")re");
  constexpr std::string_view kConfigIo = "src/core/config_io.cpp";

  std::vector<NamedSite> counters;
  std::vector<NamedSite> spans;
  std::vector<NamedSite> parse_keys;
  std::vector<NamedSite> serialize_keys;
  std::set<std::string> literals;  // every string literal in src/
  for (const auto& [path, text] : sources) {
    if (path.rfind("src/", 0) != 0) continue;
    const std::string stripped = strip_source(text, /*strip_strings=*/false);
    extract(path, stripped, kCounter, 2, counters);
    extract(path, stripped, kTimer, 1, counters);
    extract(path, stripped, kSpan, 1, spans);
    for (auto it =
             std::sregex_iterator(stripped.begin(), stripped.end(), kLiteral);
         it != std::sregex_iterator(); ++it) {
      literals.insert((*it)[1].str());
    }
    if (path == kConfigIo) {
      extract(path, stripped, kParseKey, 1, parse_keys);
      extract(path, stripped, kSerializeKey, 1, serialize_keys);
    }
  }

  // --- extract from the documentation tables and golden schema ---
  std::vector<NamedSite> doc_counters;
  std::vector<NamedSite> doc_spans;
  std::vector<NamedSite> doc_keys;
  for (const std::string_view doc : {"README.md", "DESIGN.md"}) {
    std::string text;
    if (!read_file(fs::path(root) / doc, text)) continue;
    extract_doc_block(std::string(doc), text, "counters", doc_counters);
    extract_doc_block(std::string(doc), text, "spans", doc_spans);
    extract_doc_block(std::string(doc), text, "config-keys", doc_keys);
  }

  std::vector<NamedSite> golden_spans;
  {
    constexpr std::string_view kGolden = "tests/obs/profile_schema.golden";
    std::string text;
    if (read_file(fs::path(root) / std::string(kGolden), text)) {
      std::istringstream in(text);
      std::string line;
      std::size_t line_number = 0;
      while (std::getline(in, line)) {
        ++line_number;
        if (!line.empty()) {
          golden_spans.push_back({line, std::string(kGolden), line_number});
        }
      }
    }
  }

  // --- diff the artifacts ---
  std::vector<Finding> findings;
  report_missing(counters, names_of(doc_counters), "counter-undocumented",
                 "counter",
                 "is not in a `qntn-lint: counters` doc table "
                 "(README.md/DESIGN.md)",
                 findings);
  report_missing(spans, names_of(doc_spans), "span-undocumented",
                 "profiler span",
                 "is not in a `qntn-lint: spans` doc table "
                 "(README.md/DESIGN.md)",
                 findings);
  report_missing(parse_keys, names_of(doc_keys), "config-key-undocumented",
                 "config key",
                 "is not in a `qntn-lint: config-keys` doc table "
                 "(README.md/DESIGN.md)",
                 findings);

  report_missing(doc_counters, literals, "counter-stale-doc",
                 "documented counter",
                 "matches no string literal in src/ (stale doc row?)",
                 findings);
  report_missing(doc_spans, literals, "span-stale-doc",
                 "documented profiler span",
                 "matches no string literal in src/ (stale doc row?)",
                 findings);
  report_missing(golden_spans, literals, "span-stale-golden",
                 "golden-pinned span",
                 "matches no string literal in src/ (stale golden line?)",
                 findings);
  report_missing(doc_keys, names_of(parse_keys), "config-key-stale-doc",
                 "documented config key",
                 "is not parsed by core::parse_config (stale doc row?)",
                 findings);

  report_missing(parse_keys, names_of(serialize_keys),
                 "config-key-unserialized", "config key",
                 "is parsed but never written by core::serialize_config, so "
                 "round-trips drop it",
                 findings);
  report_missing(serialize_keys, names_of(parse_keys), "config-key-unparsed",
                 "config key",
                 "is written by core::serialize_config but rejected by "
                 "core::parse_config",
                 findings);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

}  // namespace qntn::lint
