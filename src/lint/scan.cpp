#include "lint/scan.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace qntn::lint {

namespace fs = std::filesystem;

const std::vector<std::string>& default_scan_dirs() {
  static const std::vector<std::string> kDirs = {"src", "tools", "bench",
                                                 "tests", "examples"};
  return kDirs;
}

namespace {

[[nodiscard]] bool checked_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

[[nodiscard]] std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("qntn_lint: cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::vector<std::string> list_sources(const std::string& root) {
  std::vector<std::string> out;
  for (const std::string& dir : default_scan_dirs()) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const fs::directory_entry& entry :
         fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !checked_extension(entry.path())) {
        continue;
      }
      std::string rel =
          fs::relative(entry.path(), fs::path(root)).generic_string();
      // Fixture corpus violates the rules on purpose (golden test data).
      if (rel.rfind("tests/lint/fixtures", 0) == 0) continue;
      out.push_back(std::move(rel));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Finding> check_tree(const std::string& root) {
  std::vector<Finding> findings;
  for (const std::string& rel : list_sources(root)) {
    const std::string text = read_file(fs::path(root) / rel);
    std::vector<Finding> file_findings = check_source(rel, text);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

}  // namespace qntn::lint
