#include "lint/scan.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <tuple>

#include "common/error.hpp"
#include "lint/consistency.hpp"
#include "lint/include_graph.hpp"

namespace qntn::lint {

namespace fs = std::filesystem;

const std::vector<std::string>& default_scan_dirs() {
  static const std::vector<std::string> kDirs = {"src", "tools", "bench",
                                                 "tests", "examples"};
  return kDirs;
}

const std::vector<PassRule>& pass_rules() {
  static const std::vector<PassRule> kRules = {
      {
          "layer-violation",
          "layer-ok",
          "include edge goes up or sideways in the declared layer DAG "
          "(src/lint/include_graph.cpp); depend only on lower layers",
      },
      {
          "layer-unknown-module",
          "layer-ok",
          "directory missing from the layer table; add it so the DAG "
          "check covers it",
      },
      {
          "include-cycle",
          "cycle-ok",
          "files include each other in a cycle; break it with a forward "
          "declaration or an interface header",
      },
      {
          "counter-undocumented",
          "counter-ok",
          "obs::count/observe/ScopedTimer name missing from the "
          "`qntn-lint: counters` doc table (README.md/DESIGN.md)",
      },
      {
          "span-undocumented",
          "span-ok",
          "obs::Span name missing from the `qntn-lint: spans` doc table "
          "(README.md/DESIGN.md)",
      },
      {
          "config-key-undocumented",
          "key-ok",
          "parsed config key missing from the `qntn-lint: config-keys` "
          "doc table (README.md/DESIGN.md)",
      },
      {
          "config-key-unserialized",
          "key-ok",
          "config key parsed but never serialized; round-trips drop it",
      },
      {
          "config-key-unparsed",
          "key-ok",
          "config key serialized but not parseable; saved configs fail "
          "to load",
      },
      {
          "counter-stale-doc",
          "",
          "documented counter matches no string literal in src/",
      },
      {
          "span-stale-doc",
          "",
          "documented span matches no string literal in src/",
      },
      {
          "span-stale-golden",
          "",
          "profile_schema.golden span matches no string literal in src/",
      },
      {
          "config-key-stale-doc",
          "",
          "documented config key is not parsed by core::parse_config",
      },
      {
          "stale-suppression",
          "",
          "`// lint: <token>` justification whose rule no longer fires "
          "here; delete it",
      },
  };
  return kRules;
}

namespace {

[[nodiscard]] bool checked_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

[[nodiscard]] std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("qntn_lint: cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Justification token → the rules it covers, across the lexical table
/// and the tree passes.
[[nodiscard]] std::map<std::string_view, std::set<std::string_view>>
rules_by_token() {
  std::map<std::string_view, std::set<std::string_view>> out;
  for (const RuleSpec& rule : rules()) {
    if (!rule.suppress.empty()) out[rule.suppress].insert(rule.name);
  }
  for (const PassRule& rule : pass_rules()) {
    if (!rule.suppress.empty()) out[rule.suppress].insert(rule.name);
  }
  return out;
}

[[nodiscard]] std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> list_sources(const std::string& root) {
  std::vector<std::string> out;
  for (const std::string& dir : default_scan_dirs()) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const fs::directory_entry& entry :
         fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !checked_extension(entry.path())) {
        continue;
      }
      std::string rel =
          fs::relative(entry.path(), fs::path(root)).generic_string();
      // Fixture corpus violates the rules on purpose (golden test data).
      if (rel.rfind("tests/lint/fixtures", 0) == 0) continue;
      out.push_back(std::move(rel));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TreeScan load_tree(const std::string& root) {
  TreeScan scan;
  scan.root = root;
  for (const std::string& rel : list_sources(root)) {
    scan.text.emplace(rel, read_file(fs::path(root) / rel));
  }
  return scan;
}

std::vector<Finding> check_tree(const TreeScan& scan) {
  // Raw findings from every pass: justifications are applied centrally
  // below, so the audit can see which of them actually earn their keep.
  std::vector<Finding> raw;
  for (const auto& [path, text] : scan.text) {
    std::vector<Finding> file_findings = check_source_raw(path, text);
    raw.insert(raw.end(), std::make_move_iterator(file_findings.begin()),
               std::make_move_iterator(file_findings.end()));
  }
  const IncludeGraph graph = build_include_graph(scan.text);
  for (auto&& pass :
       {check_layering(graph, default_layers()), check_include_cycles(graph),
        check_consistency(scan.root, scan.text)}) {
    raw.insert(raw.end(), pass.begin(), pass.end());
  }

  // One suppression map per scanned file (doc/golden findings point at
  // markdown and golden files, which carry no lint comments).
  std::map<std::string, std::map<std::size_t, std::vector<std::string>>>
      suppressions;
  for (const auto& [path, text] : scan.text) {
    suppressions.emplace(path, find_suppressions(text));
  }

  std::map<std::string_view, std::string_view> token_of;
  for (const RuleSpec& rule : rules()) token_of[rule.name] = rule.suppress;
  for (const PassRule& rule : pass_rules()) token_of[rule.name] = rule.suppress;

  std::vector<Finding> findings;
  for (Finding& finding : raw) {
    const auto token = token_of.find(finding.rule);
    const auto file_tokens = suppressions.find(finding.file);
    const bool justified =
        token != token_of.end() && !token->second.empty() &&
        file_tokens != suppressions.end() &&
        suppression_covers(file_tokens->second, finding.line, token->second);
    if (!justified) findings.push_back(std::move(finding));
  }

  // Stale-suppression audit: a justification earns its keep only when a
  // raw finding of its rule lands on the line it covers (its own line or
  // the one below). Unknown tokens are stale by definition.
  const std::map<std::string_view, std::set<std::string_view>> by_token =
      rules_by_token();
  for (const auto& [path, file_tokens] : suppressions) {
    for (const auto& [line, tokens] : file_tokens) {
      for (const std::string& token : tokens) {
        const auto covered = by_token.find(token);
        bool used = false;
        if (covered != by_token.end()) {
          for (const Finding& finding : raw) {
            if (finding.file == path &&
                (finding.line == line || finding.line == line + 1) &&
                covered->second.count(finding.rule) != 0) {
              used = true;
              break;
            }
          }
        }
        if (used) continue;
        findings.push_back(
            {path, line, "stale-suppression",
             covered == by_token.end()
                 ? "`// lint: " + token + "` names no known rule token"
                 : "`// lint: " + token +
                       "` justifies nothing: its rule does not fire on "
                       "this line; delete the suppression"});
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

std::vector<Finding> check_tree(const std::string& root) {
  return check_tree(load_tree(root));
}

std::string findings_json(const std::vector<Finding>& findings,
                          std::size_t files) {
  std::ostringstream out;
  out << "{\n  \"version\": \"qntn-lint-v1\",\n  \"files\": " << files
      << ",\n  \"findings\": [";
  bool first = true;
  for (const Finding& finding : findings) {
    out << (first ? "" : ",") << "\n    {\"file\": \""
        << json_escape(finding.file) << "\", \"line\": " << finding.line
        << ", \"rule\": \"" << json_escape(finding.rule)
        << "\", \"message\": \"" << json_escape(finding.message) << "\"}";
    first = false;
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace qntn::lint
