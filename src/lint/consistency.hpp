#pragma once

#include <map>
#include <string>
#include <vector>

#include "lint/rules.hpp"

/// \file consistency.hpp
/// Cross-artifact consistency checks for qntn_lint: the observability and
/// configuration surface lives in four artifacts at once — the C++ sources
/// that emit it, the golden schemas that pin it, and the README/DESIGN
/// tables that document it — and nothing but a static check keeps them
/// from drifting apart. The documented inventories are markdown tables
/// bracketed by `<!-- qntn-lint: counters|spans|config-keys -->` ...
/// `<!-- qntn-lint: end -->` markers (README.md and DESIGN.md are both
/// scanned; the first backticked token of each row is the name).
///
/// Checks, in both directions:
///   * every `obs::count`/`obs::observe`/`obs::ScopedTimer` literal in
///     src/ appears in the documented counter table
///     (`counter-undocumented`), and every documented counter appears as
///     a literal somewhere in src/ (`counter-stale-doc`);
///   * every `obs::Span` literal in src/ appears in the documented span
///     table (`span-undocumented`), every documented span is a literal in
///     src/ (`span-stale-doc`), and every span name pinned by
///     tests/obs/profile_schema.golden is a literal in src/
///     (`span-stale-golden`);
///   * every config key in the parse table of src/core/config_io.cpp is
///     documented (`config-key-undocumented`) and serialized
///     (`config-key-unserialized`), every serialized key is parseable
///     (`config-key-unparsed`), and every documented key is parsed
///     (`config-key-stale-doc`).
///
/// Findings are raw — the tree pipeline applies `// lint: <token>`
/// justifications to the code-side rules (doc- and golden-side findings
/// point into markdown/golden files, which have no lint comments).

namespace qntn::lint {

/// Run every consistency check. `root` is the repository root (the docs
/// and golden schemas are read from it); `sources` is the pre-loaded
/// path → text map of scanned C++ files (repo-relative, forward slashes).
[[nodiscard]] std::vector<Finding> check_consistency(
    const std::string& root,
    const std::map<std::string, std::string>& sources);

}  // namespace qntn::lint
