#include "channel/link_budget.hpp"

#include <algorithm>

#include "common/constants.hpp"

namespace qntn::channel {

Endpoint Endpoint::from_geodetic(const geo::Geodetic& g) {
  return {g, geo::geodetic_to_ecef(g)};
}

Endpoint Endpoint::from_ecef(const Vec3& p) {
  return {geo::ecef_to_geodetic(p), p};
}

FsoGeometry make_fso_geometry(const Endpoint& a, const Endpoint& b) {
  const bool a_lower = a.geodetic.altitude <= b.geodetic.altitude;
  const Endpoint& low = a_lower ? a : b;
  const Endpoint& high = a_lower ? b : a;

  FsoGeometry g;
  g.range = distance(a.ecef, b.ecef);
  g.elevation = geo::look_angles(low.geodetic, high.ecef).elevation;
  g.altitude_low = low.geodetic.altitude;
  g.altitude_high = high.geodetic.altitude;
  return g;
}

bool fso_link_visible(const Endpoint& a, const Endpoint& b,
                      double elevation_mask) {
  const double alt_lo = std::min(a.geodetic.altitude, b.geodetic.altitude);
  if (alt_lo > kAtmosphereTopAltitude) {
    // Exoatmospheric path: require clearance above the atmosphere shell so
    // the beam never grazes dense air or the Earth itself.
    return geo::line_of_sight(a.ecef, b.ecef,
                              kEarthRadius + kAtmosphereTopAltitude);
  }
  const FsoGeometry g = make_fso_geometry(a, b);
  return g.elevation >= elevation_mask;
}

}  // namespace qntn::channel
