#include "channel/fiber.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace qntn::channel {

double FiberChannel::transmissivity() const {
  QNTN_REQUIRE(length >= 0.0, "fiber length must be non-negative");
  QNTN_REQUIRE(attenuation_db_per_km >= 0.0, "attenuation must be non-negative");
  const double alpha = db_per_km_to_neper_per_m(attenuation_db_per_km);
  return std::exp(-alpha * length);
}

double FiberChannel::length_for_transmissivity(double eta,
                                               double attenuation_db_per_km) {
  QNTN_REQUIRE(eta > 0.0 && eta <= 1.0, "eta must be in (0, 1]");
  QNTN_REQUIRE(attenuation_db_per_km > 0.0, "attenuation must be positive");
  const double alpha = db_per_km_to_neper_per_m(attenuation_db_per_km);
  return -std::log(eta) / alpha;
}

}  // namespace qntn::channel
