#pragma once

#include <string_view>

/// \file weather.hpp
/// Weather profiles for the FSO channel. The paper assumes ideal conditions
/// ("stable weather, stable flight") and flags weather sensitivity as future
/// work; these profiles implement that future-work axis so the extension
/// benches can quantify the degradation. Each profile scales three physical
/// inputs: clear-air zenith transmittance, ground-level turbulence strength,
/// and platform pointing jitter (HAP vibration sensitivity).

namespace qntn::channel {

struct WeatherProfile {
  std::string_view name = "clear";
  /// Multiplies ExtinctionModel::zenith_transmittance's optical depth
  /// (1 = clear; larger = more absorption).
  double optical_depth_factor = 1.0;
  /// Multiplies the HV profile's ground Cn^2 (daytime convection, wind).
  double turbulence_factor = 1.0;
  /// Adds RMS pointing jitter [rad] on aerial platforms (HAP vibration).
  double platform_jitter = 0.0;
};

/// Paper baseline: the "perfect setup and ideal conditions" of Section III-D.
[[nodiscard]] constexpr WeatherProfile clear_sky() { return {}; }

/// Light haze: noticeably higher extinction, mildly stronger turbulence.
[[nodiscard]] constexpr WeatherProfile haze() {
  return {"haze", 4.0, 1.5, 1.0e-6};
}

/// Convective daytime air: strong low-altitude turbulence.
[[nodiscard]] constexpr WeatherProfile strong_turbulence() {
  return {"strong_turbulence", 1.5, 5.0, 2.0e-6};
}

/// Thin cloud / light rain: heavy extinction; FSO largely unusable.
[[nodiscard]] constexpr WeatherProfile light_rain() {
  return {"light_rain", 12.0, 2.0, 4.0e-6};
}

}  // namespace qntn::channel
