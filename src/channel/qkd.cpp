#include "channel/qkd.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qntn::channel {

double binary_entropy(double p) {
  QNTN_REQUIRE(p >= 0.0 && p <= 1.0, "entropy argument must be in [0, 1]");
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double QkdSystem::qber(double eta) const {
  QNTN_REQUIRE(eta >= 0.0 && eta <= 1.0, "transmissivity must be in [0, 1]");
  const double p_signal = mean_photon_number * eta * detector_efficiency;
  const double p_noise = dark_count_probability;
  if (p_signal + p_noise <= 0.0) return 0.5;
  const double e =
      (misalignment_error * p_signal + 0.5 * p_noise) / (p_signal + p_noise);
  return std::clamp(e, 0.0, 0.5);
}

double QkdSystem::key_fraction(double eta) const {
  const double p_signal = mean_photon_number * eta * detector_efficiency;
  const double p_click = p_signal + dark_count_probability;
  const double e = qber(eta);
  // Asymptotic BB84 with identical bit/phase error: r = 1 - 2 h2(e).
  const double r = 1.0 - 2.0 * binary_entropy(e);
  return 0.5 * p_click * std::max(0.0, r);
}

double QkdSystem::key_rate(double eta) const {
  return repetition_rate * key_fraction(eta);
}

double QkdSystem::cutoff_transmissivity() const {
  if (key_fraction(1.0) <= 0.0) return 0.0;
  if (key_fraction(0.0) > 0.0) return 0.0;  // noise-free detector corner
  double lo = 0.0, hi = 1.0;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (key_fraction(mid) > 0.0 ? hi : lo) = mid;
  }
  return hi;
}

}  // namespace qntn::channel
