#pragma once

#include <cstddef>

#include "atmosphere/extinction.hpp"
#include "atmosphere/turbulence.hpp"
#include "channel/weather.hpp"

/// \file fso.hpp
/// Free-space-optical channel model implementing the paper's Eq. (2)
/// decomposition eta = eta_turb * eta_atm * eta_eff. The turbulence/
/// diffraction factor follows the Gaussian-beam treatment of the paper's
/// reference [19] (Ghalaii & Pirandola 2022): the transmitter focuses an
/// aperture-limited Gaussian beam on the receiver; diffraction, turbulence-
/// induced beam spreading/wander (via the Fried parameter along the slant
/// path, with an adaptive-optics gain factor) and pointing jitter broaden
/// the long-term spot, and the receiver aperture truncates it:
///   eta_geo = 1 - exp(-2 a_rx^2 / w_lt^2).
/// Parameter defaults are calibrated against the paper's operating points —
/// see DESIGN.md §4 and tools/calibrate_fso.

namespace qntn::channel {

/// Optical terminal: what a node contributes to an FSO link.
struct OpticalTerminal {
  /// Aperture radius [m]. The paper quotes "aperture size" 120 cm for
  /// satellites/ground stations and 30 cm for HAPs; we take size as the
  /// radius. Under the diameter reading the paper's own operating points
  /// are unreachable (the diffraction-limited spot at the HAP's 75 km
  /// range exceeds a 15 cm aperture at any practical wavelength, capping
  /// eta at ~0.69 < the 0.7 threshold), while the radius reading
  /// reproduces them — see DESIGN.md §4.
  double aperture_radius = 1.20;
  /// Residual RMS pointing jitter [rad] of the terminal's tracking loop.
  double pointing_jitter = 1.0e-7;
};

/// Static configuration of the FSO physics shared by all links.
struct FsoConfig {
  double wavelength = 810.0e-9;          ///< [m]; Micius-class downlink band
  double receiver_efficiency = 0.995;    ///< eta_eff of Eq. (2)
  /// Effective improvement of the Fried parameter from tip/tilt tracking +
  /// adaptive optics (r0_eff = ao_gain * r0). 1 = uncompensated.
  double ao_gain = 12.0;
  atmosphere::HufnagelValley turbulence{};
  atmosphere::ExtinctionModel extinction{};
  WeatherProfile weather = clear_sky();
};

/// Geometry of one link evaluation.
struct FsoGeometry {
  double range = 0.0;           ///< slant range [m]
  double elevation = 0.0;       ///< elevation at the lower endpoint [rad]
  double altitude_low = 0.0;    ///< lower endpoint altitude [m]
  double altitude_high = 0.0;   ///< higher endpoint altitude [m]
};

/// Per-component transmissivity breakdown (all factors in [0, 1]).
struct FsoBudget {
  double eta_diffraction = 0.0;  ///< aperture truncation of the vacuum beam
  double eta_turbulence = 0.0;   ///< extra loss from turbulent broadening
  double eta_atmosphere = 0.0;   ///< clear-air extinction (eta_atm)
  double eta_efficiency = 0.0;   ///< receiver efficiency (eta_eff)
  double total = 0.0;            ///< product of the four factors

  double beam_waist = 0.0;       ///< transmit waist w0 [m]
  double spot_diffraction = 0.0; ///< vacuum spot radius at receiver [m]
  double spot_longterm = 0.0;    ///< turbulent long-term spot radius [m]
  double fried_r0 = 0.0;         ///< compensated Fried parameter [m]
  double rytov_variance = 0.0;   ///< scintillation regime indicator
};

/// Evaluate the link budget for a beam from `tx` to `rx` over `geometry`.
/// Preconditions: range > 0; elevation in (0, pi/2] when the path touches
/// the atmosphere (paths entirely above FsoConfig's profile are evaluated
/// as pure vacuum and accept any elevation >= -pi/2, e.g. inter-satellite).
[[nodiscard]] FsoBudget evaluate_fso(const FsoConfig& config,
                                     const OpticalTerminal& tx,
                                     const OpticalTerminal& rx,
                                     const FsoGeometry& geometry);

/// Convenience: symmetric (undirected) transmissivity of a link between two
/// terminals — the worse of the two propagation directions, which is what
/// the topology layer uses to gate link establishment.
[[nodiscard]] double symmetric_transmissivity(const FsoConfig& config,
                                              const OpticalTerminal& a,
                                              const OpticalTerminal& b,
                                              const FsoGeometry& geometry);

/// Precomputed link evaluator for a fixed terminal pair and altitude band.
/// The Cn^2 integrals behind the Fried parameter and Rytov variance are the
/// expensive part of evaluate_fso (adaptive quadrature over the HV
/// profile); they depend only on the altitude band, so the simulator's
/// per-time-step loop builds one evaluator per link class (ground-sat,
/// ground-HAP, HAP-sat, sat-sat) and evaluates millions of geometries
/// cheaply. Results match evaluate_fso for the same inputs (pinned by
/// tests) as long as the band matches.
class FsoLinkEvaluator {
 public:
  /// Band [altitude_low, altitude_high] is the nominal altitude range of
  /// the link class (e.g. 0 to 500 km for ground-satellite).
  FsoLinkEvaluator(const FsoConfig& config, const OpticalTerminal& a,
                   const OpticalTerminal& b, double altitude_low,
                   double altitude_high);

  /// Directed budget for the a->b direction at the given geometry.
  [[nodiscard]] FsoBudget evaluate(double range, double elevation) const;

  /// Symmetric (undirected) transmissivity: worse of the two directions.
  [[nodiscard]] double symmetric(double range, double elevation) const;

  /// Batched symmetric transmissivity over contiguous geometry arrays:
  /// out[i] = symmetric(ranges[i], elevations[i]), element-wise identical.
  /// The contact compiler stages each pass's grid geometry into
  /// structure-of-arrays buffers and evaluates the budget here, keeping the
  /// exp/trig-heavy loop free of the window state machine so the compiler
  /// can pipeline it. Same preconditions per element as symmetric.
  void symmetric_batch(const double* ranges, const double* elevations,
                       std::size_t count, double* out) const;

 private:
  [[nodiscard]] FsoBudget evaluate_directed(double tx_aperture,
                                            double rx_aperture, double range,
                                            double elevation) const;

  double wavelength_;
  double receiver_efficiency_;
  double ao_gain_;
  double aperture_a_;
  double aperture_b_;
  double jitter_sq_;          ///< combined squared pointing jitter [rad^2]
  bool touches_atmosphere_;
  double mu0_;                ///< vertical integral of Cn^2 over the band
  double rytov_integral_;     ///< vertical Cn^2 h^{5/6} moment over the band
  double tau_zenith_band_;    ///< zenith optical depth of the band
};

}  // namespace qntn::channel
