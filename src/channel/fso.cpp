#include "channel/fso.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace qntn::channel {

namespace {

/// Gaussian-beam spot radius at distance L for waist w0 (waist at the
/// transmitter): w(L) = w0 sqrt(1 + (L/zR)^2), zR = pi w0^2 / lambda.
double vacuum_spot(double w0, double range, double wavelength) {
  const double rayleigh = kPi * w0 * w0 / wavelength;
  const double ratio = range / rayleigh;
  return w0 * std::sqrt(1.0 + ratio * ratio);
}

/// Transmitter waist that minimises the far-field spot at `range`, capped by
/// the physical aperture: w0_opt = sqrt(range * lambda / pi).
double optimal_waist(double range, double wavelength, double aperture_radius) {
  return std::min(std::sqrt(range * wavelength / kPi), aperture_radius);
}

/// Fraction of a centred Gaussian beam of radius w collected by a circular
/// aperture of radius a: 1 - exp(-2 a^2 / w^2).
double collection_efficiency(double aperture_radius, double spot_radius) {
  const double x = 2.0 * aperture_radius * aperture_radius /
                   (spot_radius * spot_radius);
  return 1.0 - std::exp(-x);
}

/// Simpson rule over [a, b] with n (even) panels.
template <typename F>
double simpson(const F& f, double a, double b, int n) {
  const double h = (b - a) / n;
  double sum = f(a) + f(b);
  for (int i = 1; i < n; ++i) sum += f(a + h * i) * (i % 2 == 1 ? 4.0 : 2.0);
  return sum * h / 3.0;
}

}  // namespace

FsoLinkEvaluator::FsoLinkEvaluator(const FsoConfig& config,
                                   const OpticalTerminal& a,
                                   const OpticalTerminal& b,
                                   double altitude_low, double altitude_high)
    : wavelength_(config.wavelength),
      receiver_efficiency_(config.receiver_efficiency),
      ao_gain_(config.ao_gain),
      aperture_a_(a.aperture_radius),
      aperture_b_(b.aperture_radius) {
  QNTN_REQUIRE(wavelength_ > 0.0, "wavelength must be positive");
  QNTN_REQUIRE(aperture_a_ > 0.0 && aperture_b_ > 0.0,
               "apertures must be positive");
  QNTN_REQUIRE(altitude_high >= altitude_low, "altitude band reversed");
  QNTN_REQUIRE(ao_gain_ >= 1.0, "AO gain cannot degrade the Fried parameter");

  const double wj = config.weather.platform_jitter;
  jitter_sq_ = a.pointing_jitter * a.pointing_jitter +
               b.pointing_jitter * b.pointing_jitter + wj * wj;

  touches_atmosphere_ = altitude_low < kAtmosphereTopAltitude;
  mu0_ = 0.0;
  rytov_integral_ = 0.0;
  tau_zenith_band_ = 0.0;
  if (touches_atmosphere_) {
    atmosphere::HufnagelValley profile = config.turbulence;
    profile.ground_cn2 *= config.weather.turbulence_factor;
    const double band_hi = std::min(altitude_high, kAtmosphereTopAltitude);
    mu0_ = profile.integrated_cn2(altitude_low, band_hi);

    auto moment = [&profile, altitude_low](double h) {
      return profile.cn2(h) * std::pow(std::max(h - altitude_low, 0.0), 5.0 / 6.0);
    };
    const double split = std::clamp(3000.0, altitude_low, band_hi);
    if (split > altitude_low) rytov_integral_ += simpson(moment, altitude_low, split, 600);
    if (band_hi > split) rytov_integral_ += simpson(moment, split, band_hi, 400);

    const double tau_full =
        -std::log(config.extinction.zenith_transmittance) *
        config.weather.optical_depth_factor;
    tau_zenith_band_ =
        tau_full * config.extinction.column_fraction(altitude_low, altitude_high);
  }
}

FsoBudget FsoLinkEvaluator::evaluate_directed(double tx_aperture,
                                              double rx_aperture, double range,
                                              double elevation) const {
  QNTN_REQUIRE(range > 0.0, "FSO range must be positive");

  FsoBudget budget;
  budget.beam_waist = optimal_waist(range, wavelength_, tx_aperture);
  budget.spot_diffraction = vacuum_spot(budget.beam_waist, range, wavelength_);
  budget.eta_diffraction =
      collection_efficiency(rx_aperture, budget.spot_diffraction);

  double spot_sq = budget.spot_diffraction * budget.spot_diffraction;
  if (touches_atmosphere_) {
    QNTN_REQUIRE(elevation > 0.0 && elevation <= kPi / 2.0,
                 "atmospheric FSO path needs elevation in (0, pi/2]");
    const double zenith = kPi / 2.0 - elevation;
    const double sec_zeta = 1.0 / std::cos(zenith);
    const double k = kTwoPi / wavelength_;
    const double r0 =
        mu0_ > 0.0 ? std::pow(0.423 * k * k * sec_zeta * mu0_, -3.0 / 5.0) : 1e9;
    budget.fried_r0 = r0 * ao_gain_;
    budget.rytov_variance = 2.25 * std::pow(k, 7.0 / 6.0) *
                            std::pow(sec_zeta, 11.0 / 6.0) * rytov_integral_;
    // Long-term turbulent spread of a beam whose transverse coherence is
    // limited to r0_eff: w_turb = sqrt(2) * lambda * L / (pi * r0_eff).
    const double w_turb =
        std::sqrt(2.0) * wavelength_ * range / (kPi * budget.fried_r0);
    spot_sq += w_turb * w_turb;

    budget.eta_atmosphere =
        std::exp(-tau_zenith_band_ * atmosphere::kasten_young_airmass(zenith));
  } else {
    budget.fried_r0 = 1e9;
    budget.rytov_variance = 0.0;
    budget.eta_atmosphere = 1.0;
  }

  // Pointing jitter broadens the effective long-term spot.
  const double w_jitter_sq = jitter_sq_ * range * range;
  spot_sq += 2.0 * w_jitter_sq;

  budget.spot_longterm = std::sqrt(spot_sq);
  const double eta_geo = collection_efficiency(rx_aperture, budget.spot_longterm);
  // Report turbulence as the multiplicative degradation beyond diffraction,
  // matching the paper's eta = eta_turb * eta_atm * eta_eff decomposition.
  budget.eta_turbulence =
      budget.eta_diffraction > 0.0 ? eta_geo / budget.eta_diffraction : 0.0;

  budget.eta_efficiency = receiver_efficiency_;
  budget.total = budget.eta_diffraction * budget.eta_turbulence *
                 budget.eta_atmosphere * budget.eta_efficiency;
  return budget;
}

FsoBudget FsoLinkEvaluator::evaluate(double range, double elevation) const {
  return evaluate_directed(aperture_a_, aperture_b_, range, elevation);
}

double FsoLinkEvaluator::symmetric(double range, double elevation) const {
  const double ab =
      evaluate_directed(aperture_a_, aperture_b_, range, elevation).total;
  if (aperture_a_ == aperture_b_) return ab;
  const double ba =
      evaluate_directed(aperture_b_, aperture_a_, range, elevation).total;
  return std::min(ab, ba);
}

void FsoLinkEvaluator::symmetric_batch(const double* ranges,
                                       const double* elevations,
                                       std::size_t count, double* out) const {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = symmetric(ranges[i], elevations[i]);
  }
}

FsoBudget evaluate_fso(const FsoConfig& config, const OpticalTerminal& tx,
                       const OpticalTerminal& rx, const FsoGeometry& geometry) {
  const double h_lo = std::min(geometry.altitude_low, geometry.altitude_high);
  const double h_hi = std::max(geometry.altitude_low, geometry.altitude_high);
  const FsoLinkEvaluator evaluator(config, tx, rx, h_lo, h_hi);
  return evaluator.evaluate(geometry.range, geometry.elevation);
}

double symmetric_transmissivity(const FsoConfig& config,
                                const OpticalTerminal& a,
                                const OpticalTerminal& b,
                                const FsoGeometry& geometry) {
  const double h_lo = std::min(geometry.altitude_low, geometry.altitude_high);
  const double h_hi = std::max(geometry.altitude_low, geometry.altitude_high);
  const FsoLinkEvaluator evaluator(config, a, b, h_lo, h_hi);
  return evaluator.symmetric(geometry.range, geometry.elevation);
}

}  // namespace qntn::channel
