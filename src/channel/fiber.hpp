#pragma once

/// \file fiber.hpp
/// Fiber-optic channel model, paper Eq. (1): eta = exp(-alpha * l) with the
/// attenuation coefficient quoted in dB/km (0.15 dB/km in Section IV).

namespace qntn::channel {

struct FiberChannel {
  double length = 0.0;            ///< [m]
  double attenuation_db_per_km = 0.15;

  /// Transmissivity eta in (0, 1]; eta = 1 at zero length.
  [[nodiscard]] double transmissivity() const;

  /// Length [m] at which transmissivity falls to the given value.
  [[nodiscard]] static double length_for_transmissivity(
      double eta, double attenuation_db_per_km);
};

}  // namespace qntn::channel
