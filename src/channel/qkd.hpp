#pragma once

/// \file qkd.hpp
/// Asymptotic BB84 secret-key-rate model over a lossy channel. The paper's
/// related work contrasts QKD-only regional networks ([14], Micius,
/// EuroQCI) with QNTN's entanglement distribution; this model lets the
/// benches report what the same QNTN links would deliver as a trusted-node
/// QKD service — daily secret-key volume per architecture — connecting the
/// two service models quantitatively.
///
/// Model: weak-coherent BB84 without decoy-state analysis, in the
/// asymptotic limit. Per clock cycle:
///   p_signal = mu * eta * eta_detector     (expected signal detections)
///   p_noise  = dark_count_probability      (per-gate noise detections)
///   QBER     = (e_misalignment * p_signal + 0.5 * p_noise)
///              / (p_signal + p_noise)
///   rate     = 0.5 * (p_signal + p_noise) * max(0, 1 - 2 h2(QBER))
/// where h2 is the binary entropy and the 0.5 is basis sifting.

namespace qntn::channel {

/// Binary entropy h2(p), 0 at p in {0, 1}.
[[nodiscard]] double binary_entropy(double p);

struct QkdSystem {
  double mean_photon_number = 0.5;     ///< mu, per pulse
  double detector_efficiency = 0.6;    ///< eta_detector
  double dark_count_probability = 2e-6;///< per detection gate
  double misalignment_error = 0.015;   ///< intrinsic optical QBER
  double repetition_rate = 100e6;      ///< clock [Hz]

  /// Quantum bit error rate at channel transmissivity eta, in [0, 0.5].
  [[nodiscard]] double qber(double eta) const;

  /// Secret key fraction per clock cycle (dimensionless, >= 0).
  [[nodiscard]] double key_fraction(double eta) const;

  /// Secret key rate [bit/s] at channel transmissivity eta.
  [[nodiscard]] double key_rate(double eta) const;

  /// Smallest transmissivity with a positive key rate (bisection on the
  /// QBER's 11% BB84 breakdown; 0 if even eta = 1 yields nothing).
  [[nodiscard]] double cutoff_transmissivity() const;
};

}  // namespace qntn::channel
