#pragma once

#include "channel/fso.hpp"
#include "common/vec3.hpp"
#include "geo/frames.hpp"
#include "geo/geodetic.hpp"

/// \file link_budget.hpp
/// Glue between node positions and the channel models: builds the FSO
/// geometry (slant range, elevation at the lower endpoint, altitude band)
/// from two endpoint positions and performs the visibility gates the
/// simulator applies before querying transmissivity.

namespace qntn::channel {

/// A link endpoint: geodetic position plus its ECEF equivalent (callers
/// typically already have both; keeping them together avoids recomputation
/// in the per-time-step inner loop).
struct Endpoint {
  geo::Geodetic geodetic;
  Vec3 ecef;

  [[nodiscard]] static Endpoint from_geodetic(const geo::Geodetic& g);
  [[nodiscard]] static Endpoint from_ecef(const Vec3& p);
};

/// Build the FSO geometry between two endpoints. The elevation is measured
/// at the lower-altitude endpoint (the one inside/closest to the
/// atmosphere, which dominates the slant-path turbulence and extinction).
[[nodiscard]] FsoGeometry make_fso_geometry(const Endpoint& a, const Endpoint& b);

/// Visibility gates for a candidate FSO link:
///  - both-high (inter-satellite): straight-line clearance above the
///    atmosphere grazing shell;
///  - ground/aerial involved: elevation at the lower endpoint must meet the
///    mask (the paper uses pi/9).
[[nodiscard]] bool fso_link_visible(const Endpoint& a, const Endpoint& b,
                                    double elevation_mask);

}  // namespace qntn::channel
