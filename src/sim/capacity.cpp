#include "sim/capacity.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qntn::sim {

CapacityServeResult serve_requests_with_capacity(
    const net::Graph& graph, const std::vector<Request>& requests,
    const CapacityPolicy& policy, net::CostMetric metric,
    quantum::FidelityConvention convention) {
  QNTN_REQUIRE(policy.per_node_capacity > 0, "capacity must be positive");

  CapacityServeResult result;
  result.outcome.issued = requests.size();
  std::vector<std::size_t> used(graph.node_count(), 0);

  for (const Request& req : requests) {
    // Route on the subgraph of nodes that still have capacity; the
    // endpoints themselves must have headroom too.
    const auto has_room = [&](net::NodeId id) {
      return used[id] < policy.per_node_capacity;
    };
    if (!has_room(req.source) || !has_room(req.destination)) {
      // Distinguish "saturated" from "unreachable" by checking the full
      // graph for any path at all.
      if (graph.connected(req.source, req.destination)) {
        ++result.outcome.rejected_capacity;
      } else {
        ++result.outcome.no_path;
      }
      continue;
    }
    net::Graph filtered;
    for (net::NodeId id = 0; id < graph.node_count(); ++id) {
      filtered.add_node(graph.name(id));
    }
    for (const net::Edge& edge : graph.edges()) {
      if (has_room(edge.a) && has_room(edge.b)) {
        filtered.add_edge(edge.a, edge.b, edge.transmissivity);
      }
    }
    const auto route =
        net::bellman_ford(filtered, req.source, req.destination, metric);
    if (!route.has_value()) {
      if (graph.connected(req.source, req.destination)) {
        ++result.outcome.rejected_capacity;
      } else {
        ++result.outcome.no_path;
      }
      continue;
    }
    for (const net::NodeId id : route->path) ++used[id];
    ++result.outcome.served;
    result.outcome.transmissivity.add(route->transmissivity);
    result.outcome.hops.add(static_cast<double>(route->path.size() - 1));
    result.outcome.fidelity.add(
        quantum::bell_fidelity_after_damping(route->transmissivity, convention));
  }

  const auto busiest = std::max_element(used.begin(), used.end());
  if (busiest != used.end()) {
    result.peak_utilisation = static_cast<double>(*busiest) /
                              static_cast<double>(policy.per_node_capacity);
  }
  return result;
}

}  // namespace qntn::sim
