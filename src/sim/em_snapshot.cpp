#include "sim/em_snapshot.hpp"

namespace qntn::sim {

EmSnapshotServer::EmSnapshotServer(const TopologyProvider& topology,
                                   const RequestBatch& batch,
                                   const em::EmOptions& options,
                                   quantum::FidelityConvention convention,
                                   em::EmRouteSource* shared_routes)
    : topology_(topology),
      convention_(convention),
      manager_(options, shared_routes) {
  requests_.reserve(batch.requests.size());
  for (const Request& request : batch.requests) {
    requests_.push_back(em::EmRequest{request.source, request.destination});
  }
}

em::EmServeResult EmSnapshotServer::serve_at(double t) {
  topology_.snapshot_at(t, snap_);
  const std::size_t epoch = topology_.epoch_of(t);
  return manager_.serve(snap_.graph, requests_, epoch, convention_,
                        /*record_outcomes=*/true);
}

}  // namespace qntn::sim
