#include "sim/topology.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "geo/frames.hpp"
#include "obs/registry.hpp"

namespace qntn::sim {

namespace {

/// All nodes of one class must share a terminal configuration so the
/// per-class evaluator cache is exact.
void require_uniform_terminals(const NetworkModel& model, NodeKind kind) {
  const channel::OpticalTerminal* first = nullptr;
  for (const Node& node : model.nodes()) {
    if (node.kind != kind) continue;
    if (first == nullptr) {
      first = &node.terminal;
      continue;
    }
    QNTN_REQUIRE(node.terminal.aperture_radius == first->aperture_radius &&
                     node.terminal.pointing_jitter == first->pointing_jitter,
                 "all nodes of a class must share one terminal config");
  }
}

/// Representative terminal of a node class (first node of that kind).
std::optional<channel::OpticalTerminal> class_terminal(const NetworkModel& model,
                                                       NodeKind kind) {
  for (const Node& node : model.nodes()) {
    if (node.kind == kind) return node.terminal;
  }
  return std::nullopt;
}

}  // namespace

void TopologyProvider::snapshot_at(double t, TopologySnapshot& snap) const {
  snap.graph = graph_at(t);
  snap.epoch = kNoEpoch;
  snap.owner = this;
  snap.dynamic_base = snap.graph.edge_count();
}

TopologyBuilder::TopologyBuilder(const NetworkModel& model,
                                 const LinkPolicy& policy)
    : model_(model), policy_(policy) {
  require_uniform_terminals(model_, NodeKind::Ground);
  require_uniform_terminals(model_, NodeKind::Hap);
  require_uniform_terminals(model_, NodeKind::Satellite);

  const auto ground = class_terminal(model_, NodeKind::Ground);
  const auto hap = class_terminal(model_, NodeKind::Hap);
  const auto sat = class_terminal(model_, NodeKind::Satellite);

  // Nominal altitudes for the per-class altitude bands.
  const double hap_alt = model_.hap_ids().empty()
                             ? 0.0
                             : model_.node(model_.hap_ids().front()).position.altitude;
  double sat_alt = 0.0;
  if (!model_.satellite_ids().empty()) {
    sat_alt = model_.endpoint_at(model_.satellite_ids().front(), 0.0)
                  .geodetic.altitude;
  }

  if (ground && sat) {
    ground_sat_.emplace(policy_.fso, *ground, *sat, 0.0, sat_alt);
  }
  if (ground && hap) {
    ground_hap_.emplace(policy_.fso, *ground, *hap, 0.0, hap_alt);
  }
  if (hap && sat && policy_.enable_hap_satellite) {
    hap_sat_.emplace(policy_.fso, *hap, *sat, hap_alt, sat_alt);
  }
  if (sat && policy_.enable_inter_satellite) {
    sat_sat_.emplace(policy_.fso, *sat, *sat, sat_alt, sat_alt);
  }

  build_static_links();
}

void TopologyBuilder::build_static_links() {
  // Fiber links inside each LAN.
  for (std::size_t lan = 0; lan < model_.lan_count(); ++lan) {
    const std::vector<net::NodeId>& ids = model_.lan_nodes(lan);
    auto add_fiber = [this](net::NodeId a, net::NodeId b) {
      const Vec3 pa = model_.endpoint_at(a, 0.0).ecef;
      const Vec3 pb = model_.endpoint_at(b, 0.0).ecef;
      const channel::FiberChannel fiber{distance(pa, pb),
                                        policy_.fiber_attenuation_db_per_km};
      const double eta = fiber.transmissivity();
      if (policy_.threshold_applies_to_fiber &&
          eta < policy_.transmissivity_threshold) {
        return;
      }
      static_links_.push_back({a, b, eta});
    };
    switch (policy_.lan_topology) {
      case LanTopology::FullMesh:
        for (std::size_t i = 0; i < ids.size(); ++i) {
          for (std::size_t j = i + 1; j < ids.size(); ++j) {
            add_fiber(ids[i], ids[j]);
          }
        }
        break;
      case LanTopology::Chain:
        for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
          add_fiber(ids[i], ids[i + 1]);
        }
        break;
      case LanTopology::Star:
        for (std::size_t i = 1; i < ids.size(); ++i) {
          add_fiber(ids[0], ids[i]);
        }
        break;
    }
  }

  // Ground-HAP FSO links are fixed (both endpoints hover/stand still).
  if (ground_hap_) {
    // Endpoints are loop-invariant: hoist the HAP positions out of the
    // per-LAN sweep and the ground position out of the per-HAP sweep.
    std::vector<channel::Endpoint> hap_pos;
    hap_pos.reserve(model_.hap_ids().size());
    for (const net::NodeId h : model_.hap_ids()) {
      hap_pos.push_back(model_.endpoint_at(h, 0.0));
    }
    for (std::size_t lan = 0; lan < model_.lan_count(); ++lan) {
      for (const net::NodeId g : model_.lan_nodes(lan)) {
        const channel::Endpoint eg = model_.endpoint_at(g, 0.0);
        for (std::size_t hi = 0; hi < hap_pos.size(); ++hi) {
          const net::NodeId h = model_.hap_ids()[hi];
          const channel::Endpoint& eh = hap_pos[hi];
          if (!channel::fso_link_visible(eg, eh, policy_.elevation_mask)) continue;
          const channel::FsoGeometry geom = channel::make_fso_geometry(eg, eh);
          const double eta = ground_hap_->symmetric(geom.range, geom.elevation);
          if (eta >= policy_.transmissivity_threshold) {
            static_links_.push_back({g, h, eta});
          }
        }
      }
    }
  }
}

net::Graph TopologyBuilder::graph_at(double t) const {
  net::Graph graph;
  for (const Node& node : model_.nodes()) {
    graph.add_node(node.name);
  }
  for (const LinkRecord& link : links_at(t)) {
    graph.add_edge(link.a, link.b, link.transmissivity);
  }
  return graph;
}

std::vector<LinkRecord> TopologyBuilder::links_at(double t) const {
  obs::count("sim.rebuild_queries");
  std::vector<LinkRecord> links = static_links_;

  const std::vector<net::NodeId>& sats = model_.satellite_ids();
  std::vector<channel::Endpoint> sat_pos;
  sat_pos.reserve(sats.size());
  for (const net::NodeId s : sats) {
    sat_pos.push_back(model_.endpoint_at(s, t));
  }

  // Ground-satellite and HAP-satellite links.
  for (std::size_t si = 0; si < sats.size(); ++si) {
    const channel::Endpoint& es = sat_pos[si];
    if (ground_sat_) {
      for (std::size_t lan = 0; lan < model_.lan_count(); ++lan) {
        for (const net::NodeId g : model_.lan_nodes(lan)) {
          const channel::Endpoint eg = model_.endpoint_at(g, t);
          const geo::AzElRange look = geo::look_angles(eg.geodetic, es.ecef);
          if (look.elevation < policy_.elevation_mask) continue;
          const double eta = ground_sat_->symmetric(look.range, look.elevation);
          if (eta >= policy_.transmissivity_threshold) {
            links.push_back({g, sats[si], eta});
          }
        }
      }
    }
    if (hap_sat_) {
      for (const net::NodeId h : model_.hap_ids()) {
        const channel::Endpoint eh = model_.endpoint_at(h, t);
        const geo::AzElRange look = geo::look_angles(eh.geodetic, es.ecef);
        if (look.elevation < policy_.elevation_mask) continue;
        const double eta = hap_sat_->symmetric(look.range, look.elevation);
        if (eta >= policy_.transmissivity_threshold) {
          links.push_back({h, sats[si], eta});
        }
      }
    }
  }

  // Inter-satellite links: Earth/atmosphere clearance, then threshold.
  if (sat_sat_) {
    for (std::size_t i = 0; i < sats.size(); ++i) {
      for (std::size_t j = i + 1; j < sats.size(); ++j) {
        if (!geo::line_of_sight(sat_pos[i].ecef, sat_pos[j].ecef,
                                kEarthRadius + kAtmosphereTopAltitude)) {
          continue;
        }
        const double range = distance(sat_pos[i].ecef, sat_pos[j].ecef);
        const double eta = sat_sat_->symmetric(range, kPi / 2.0);
        if (eta >= policy_.transmissivity_threshold) {
          links.push_back({sats[i], sats[j], eta});
        }
      }
    }
  }
  return links;
}

const channel::FsoLinkEvaluator* TopologyBuilder::evaluator(NodeKind a,
                                                            NodeKind b) const {
  auto kinds = [&](NodeKind x, NodeKind y) {
    return (a == x && b == y) || (a == y && b == x);
  };
  if (kinds(NodeKind::Ground, NodeKind::Satellite)) {
    return ground_sat_ ? &*ground_sat_ : nullptr;
  }
  if (kinds(NodeKind::Ground, NodeKind::Hap)) {
    return ground_hap_ ? &*ground_hap_ : nullptr;
  }
  if (kinds(NodeKind::Hap, NodeKind::Satellite)) {
    return hap_sat_ ? &*hap_sat_ : nullptr;
  }
  if (kinds(NodeKind::Satellite, NodeKind::Satellite)) {
    return sat_sat_ ? &*sat_sat_ : nullptr;
  }
  return nullptr;
}

std::optional<double> TopologyBuilder::link_transmissivity(net::NodeId a,
                                                           net::NodeId b,
                                                           double t) const {
  QNTN_REQUIRE(a < model_.node_count() && b < model_.node_count(),
               "node out of range");
  QNTN_REQUIRE(a != b, "no self links");
  const Node& na = model_.node(a);
  const Node& nb = model_.node(b);
  const channel::Endpoint ea = model_.endpoint_at(a, t);
  const channel::Endpoint eb = model_.endpoint_at(b, t);

  if (na.kind == NodeKind::Ground && nb.kind == NodeKind::Ground) {
    if (na.lan != nb.lan) return std::nullopt;  // no inter-city fiber (paper)
    const channel::FiberChannel fiber{distance(ea.ecef, eb.ecef),
                                      policy_.fiber_attenuation_db_per_km};
    return fiber.transmissivity();
  }
  // Dispatch through the evaluator() member — a previous version shadowed
  // it with a local of the same name that re-implemented this table, and
  // the two copies could drift.
  const channel::FsoLinkEvaluator* fso = evaluator(na.kind, nb.kind);
  if (fso == nullptr) return std::nullopt;

  if (na.kind == NodeKind::Satellite && nb.kind == NodeKind::Satellite) {
    if (!geo::line_of_sight(ea.ecef, eb.ecef,
                            kEarthRadius + kAtmosphereTopAltitude)) {
      return std::nullopt;
    }
    return fso->symmetric(distance(ea.ecef, eb.ecef), kPi / 2.0);
  }
  if (!channel::fso_link_visible(ea, eb, policy_.elevation_mask)) {
    return std::nullopt;
  }
  const channel::FsoGeometry geom = channel::make_fso_geometry(ea, eb);
  return fso->symmetric(geom.range, geom.elevation);
}

}  // namespace qntn::sim
