#pragma once

#include <cstdint>
#include <vector>

#include "common/interval_set.hpp"
#include "sim/topology.hpp"

/// \file coverage.hpp
/// Coverage analysis, paper Section IV-B: the coverage period T_c (Eq. 6)
/// is the total time during which every pair of LANs is interconnected, and
/// the coverage percentage P (Eq. 7) relates it to the day length. Pairwise
/// LAN connectivity is transitive over graph components, so "every pair
/// connected" is equivalent to "all LANs in one connected component".

namespace qntn {
class ThreadPool;
namespace obs {
class Profiler;
class Registry;
}  // namespace obs
}  // namespace qntn

namespace qntn::sim {

struct CoverageOptions {
  double duration = 86'400.0;  ///< [s], the paper evaluates one day
  double step = 30.0;          ///< [s], the paper's STK sampling interval
  /// Borrowed pool for the parallel engine; nullptr = serial per-step loop.
  /// The engine also needs an epoch-partitioned provider: the edge set is
  /// constant within an epoch, so LAN connectivity is computed once per
  /// *epoch* (in parallel) instead of once per step — same result bits.
  ThreadPool* pool = nullptr;
  /// Ambient metrics/profiler to install inside worker tasks (they are
  /// thread-local, so workers do not inherit the caller's); nullptr = none.
  obs::Registry* registry = nullptr;
  obs::Profiler* profiler = nullptr;
};

struct CoverageResult {
  /// Merged connectivity episodes, in seconds of simulation time.
  IntervalSet intervals;
  /// T_c of Eq. (6) [s].
  double covered_s = 0.0;
  /// P of Eq. (7) [%].
  double percent = 0.0;
  /// Per-step connectivity flags (time series for plotting).
  std::vector<std::uint8_t> step_connected;
};

/// True if all LANs of the model are in one connected component of `graph`.
[[nodiscard]] bool all_lans_connected(const NetworkModel& model,
                                      const net::Graph& graph);

/// Sweep the day and accumulate Eq. (6)/(7).
[[nodiscard]] CoverageResult analyze_coverage(const NetworkModel& model,
                                              const TopologyProvider& topology,
                                              const CoverageOptions& options);

}  // namespace qntn::sim
