#include "sim/epoch_cache.hpp"

#include <memory>
#include <utility>

#include "common/error.hpp"
#include "net/kpaths.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "sim/scenario.hpp"

namespace qntn::sim {

SharedEpochTreeCache::SharedEpochTreeCache(const TopologyProvider& topology,
                                           net::CostMetric metric,
                                           std::size_t node_count)
    : topology_(topology),
      metric_(metric),
      node_count_(node_count),
      active_(topology.epoch_count() > 0 &&
              net::metric_is_eta_independent(metric)),
      epochs_(active_ ? topology.epoch_count() : 0),
      last_built_(active_ ? node_count : 0) {
  for (auto& slot : epochs_) slot.store(nullptr, std::memory_order_relaxed);
}

SharedEpochTreeCache::~SharedEpochTreeCache() {
  for (auto& slot : epochs_) {
    EpochEntry* entry = slot.load(std::memory_order_relaxed);
    if (entry == nullptr) continue;
    for (auto& tree : entry->slots) {
      delete tree.load(std::memory_order_relaxed);
    }
    delete entry;
  }
}

const net::ShortestPathTree& SharedEpochTreeCache::tree_for(
    std::size_t epoch, net::NodeId source, const net::Graph& graph) {
  QNTN_REQUIRE(active_, "tree_for called on an inactive shared epoch cache");
  QNTN_REQUIRE(epoch < epochs_.size(),
               "tree_for epoch outside the topology's partition");
  QNTN_REQUIRE(source < node_count_,
               "tree_for source outside the cache's node table");

  // Fast path: someone already built this (epoch, source). Two acquire
  // loads, no lock.
  EpochEntry* entry = epochs_[epoch].load(std::memory_order_acquire);
  if (entry != nullptr) {
    const net::ShortestPathTree* tree =
        entry->slots[source].load(std::memory_order_acquire);
    if (tree != nullptr) {
      obs::count("sim.epoch_cache_hits");
      return *tree;
    }
  }

  MutexLock lock(build_mutex_);
  if (entry == nullptr) {
    entry = epochs_[epoch].load(std::memory_order_relaxed);
    if (entry == nullptr) {
      entry = new EpochEntry(node_count_);
      epochs_[epoch].store(entry, std::memory_order_release);
    }
  }
  {
    const net::ShortestPathTree* tree =
        entry->slots[source].load(std::memory_order_relaxed);
    if (tree != nullptr) {
      obs::count("sim.epoch_cache_hits");
      return *tree;
    }
  }

  const obs::Span span("sim.epoch_cache_build", epoch);
  obs::count("sim.epoch_cache_builds");
  net::compute_edge_costs(graph, metric_, edge_costs_);
  auto built = std::make_unique<net::ShortestPathTree>();
  LastBuilt& last = last_built_[source];
  bool repaired = false;
  if (last.tree != nullptr && last.epoch < epoch) {
    delta_pairs_.clear();
    if (topology_.epoch_delta(last.epoch, epoch, kMaxDeltaPairs,
                              delta_pairs_)) {
      *built = net::delta_update_tree(graph, source, edge_costs_, *last.tree,
                                      delta_pairs_);
      repaired = true;
    }
  }
  if (!repaired) {
    *built = net::canonical_tree(graph, source, edge_costs_);
  }
  const net::ShortestPathTree* tree = built.release();
  last.epoch = epoch;
  last.tree = tree;
  entry->slots[source].store(tree, std::memory_order_release);
  return *tree;
}

SharedEmRouteCache::SharedEmRouteCache(const TopologyProvider& topology,
                                       const RequestBatch& batch,
                                       const em::EmOptions& options)
    : topology_(topology),
      options_(options),
      active_(topology.epoch_count() > 0 &&
              net::metric_is_eta_independent(options.metric)),
      epochs_(active_ ? topology.epoch_count() : 0) {
  for (auto& slot : epochs_) slot.store(nullptr, std::memory_order_relaxed);
  if (!active_) return;
  for (const Request& request : batch.requests) {
    const std::size_t next = pair_slots_.size();
    pair_slots_.emplace(std::make_pair(request.source, request.destination),
                        next);
  }
}

SharedEmRouteCache::~SharedEmRouteCache() {
  for (auto& slot : epochs_) {
    EpochEntry* entry = slot.load(std::memory_order_relaxed);
    if (entry == nullptr) continue;
    for (auto& routes : entry->slots) {
      delete routes.load(std::memory_order_relaxed);
    }
    delete entry;
  }
}

const std::vector<net::Route>* SharedEmRouteCache::routes_for(
    const net::Graph& graph, net::NodeId source, net::NodeId destination,
    std::size_t epoch) {
  if (!active_ || epoch == TopologyProvider::kNoEpoch) return nullptr;
  QNTN_REQUIRE(epoch < epochs_.size(),
               "routes_for epoch outside the topology's partition");
  const auto it = pair_slots_.find(std::make_pair(source, destination));
  if (it == pair_slots_.end()) return nullptr;
  const std::size_t slot = it->second;

  EpochEntry* entry = epochs_[epoch].load(std::memory_order_acquire);
  if (entry != nullptr) {
    const std::vector<net::Route>* routes =
        entry->slots[slot].load(std::memory_order_acquire);
    if (routes != nullptr) return routes;
  }

  MutexLock lock(build_mutex_);
  if (entry == nullptr) {
    entry = epochs_[epoch].load(std::memory_order_relaxed);
    if (entry == nullptr) {
      entry = new EpochEntry(pair_slots_.size());
      epochs_[epoch].store(entry, std::memory_order_release);
    }
  }
  const std::vector<net::Route>* routes =
      entry->slots[slot].load(std::memory_order_relaxed);
  if (routes == nullptr) {
    const obs::Span span("sim.epoch_cache_build", epoch);
    obs::count("em.shared_route_builds");
    auto built = std::make_unique<std::vector<net::Route>>(
        net::k_disjoint_paths(graph, source, destination, options_.k_paths,
                              options_.metric));
    routes = built.release();
    entry->slots[slot].store(routes, std::memory_order_release);
  }
  return routes;
}

SharedServingCaches::SharedServingCaches(const TopologyProvider& topology,
                                         const RequestBatch& batch,
                                         const ScenarioConfig& config,
                                         std::size_t node_count) {
  // One cache per run, for whichever serving mode is active: the engines
  // below consult it only when its active() gate (epoch partition +
  // eta-independent metric) holds, so constructing it unconditionally per
  // mode is free.
  if (config.traffic.enabled) {
    trees = std::make_unique<SharedEpochTreeCache>(
        topology, config.traffic.metric, node_count);
  } else if (config.em.enabled) {
    em_routes =
        std::make_unique<SharedEmRouteCache>(topology, batch, config.em);
  } else {
    trees = std::make_unique<SharedEpochTreeCache>(topology, config.metric,
                                                   node_count);
  }
}

}  // namespace qntn::sim
