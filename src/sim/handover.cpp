#include "sim/handover.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"

namespace qntn::sim {

std::optional<net::NodeId> bridging_relay(const NetworkModel& model,
                                          const net::Graph& graph,
                                          std::size_t lan_a, std::size_t lan_b) {
  QNTN_REQUIRE(lan_a < model.lan_count() && lan_b < model.lan_count(),
               "LAN index out of range");
  QNTN_REQUIRE(lan_a != lan_b, "need two distinct LANs");

  // Best link of each relay into each of the two LANs.
  std::map<net::NodeId, std::pair<double, double>> relay_links;
  const auto scan = [&](std::size_t lan, bool first) {
    for (const net::NodeId ground : model.lan_nodes(lan)) {
      for (const net::Adjacency& adj : graph.neighbors(ground)) {
        if (model.node(adj.to).kind == NodeKind::Ground) continue;
        auto& entry = relay_links[adj.to];
        double& slot = first ? entry.first : entry.second;
        slot = std::max(slot, adj.transmissivity);
      }
    }
  };
  scan(lan_a, true);
  scan(lan_b, false);

  std::optional<net::NodeId> best;
  double best_score = 0.0;
  for (const auto& [relay, links] : relay_links) {
    const double score = std::min(links.first, links.second);
    if (score > best_score) {
      best_score = score;
      best = relay;
    }
  }
  return best_score > 0.0 ? best : std::nullopt;
}

HandoverStats analyze_handovers(const NetworkModel& model,
                                const TopologyProvider& topology,
                                std::size_t lan_a, std::size_t lan_b,
                                double duration, double step) {
  QNTN_REQUIRE(duration > 0.0 && step > 0.0, "duration/step must be positive");
  HandoverStats stats;
  bool has_current = false;
  net::NodeId current = 0;
  double session_start = 0.0;
  const auto close_session = [&](double t) {
    if (has_current) {
      stats.session_length.add(t - session_start);
    }
  };
  const auto steps = static_cast<std::size_t>(std::ceil(duration / step));
  for (std::size_t i = 0; i < steps; ++i) {
    const double t = static_cast<double>(i) * step;
    const net::Graph graph = topology.graph_at(t);
    const auto relay = bridging_relay(model, graph, lan_a, lan_b);
    ++stats.total_steps;
    if (relay.has_value()) {
      ++stats.bridged_steps;
      if (!has_current) {
        has_current = true;
        current = *relay;
        session_start = t;
      } else if (current != *relay) {
        close_session(t);
        ++stats.handovers;
        current = *relay;
        session_start = t;
      }
    } else if (has_current) {
      close_session(t);
      has_current = false;
    }
  }
  close_session(duration);
  return stats;
}

}  // namespace qntn::sim
