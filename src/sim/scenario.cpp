#include "sim/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>

#include "common/thread_pool.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "sim/epoch_cache.hpp"
#include "sim/serving_engine.hpp"

namespace qntn::sim {

namespace {

/// Snapshots must stay inside the coverage day (ephemerides only span it);
/// returns the clamped interval and warns when the configured one walks
/// off the end. The default 100 x 864 s exactly tiles one day and is
/// untouched (the last snapshot sits at 99 x 864 s).
double effective_step_interval(const ScenarioConfig& config) {
  if (config.request_steps == 0) return config.request_step_interval;
  const double span = static_cast<double>(config.request_steps) *
                      config.request_step_interval;
  if (span <= config.coverage.duration + 1e-9) {
    return config.request_step_interval;
  }
  const double clamped =
      config.coverage.duration / static_cast<double>(config.request_steps);
  std::fprintf(stderr,
               "qntn: warning: %zu request snapshots x %.3f s span %.0f s "
               "but the scenario day is %.0f s; clamping the snapshot "
               "interval to %.3f s\n",
               config.request_steps, config.request_step_interval, span,
               config.coverage.duration, clamped);
  obs::count("scenario.interval_clamped");
  return clamped;
}

}  // namespace

ScenarioResult run_scenario(const NetworkModel& model,
                            const TopologyProvider& topology,
                            const ScenarioConfig& config) {
  const obs::ScopedRegistry ambient(config.registry);
  const obs::ScopedProfiler profiling(config.profiler);
  const obs::Span run_span("sim.run_scenario", config.request_steps);
  obs::TraceSink* trace = config.trace;
  const bool trace_snapshots =
      trace != nullptr && trace->wants(obs::TraceLevel::Snapshots);
  const bool trace_requests =
      trace != nullptr && trace->wants(obs::TraceLevel::Requests);

  const double interval = effective_step_interval(config);

  if (trace_snapshots) {
    trace->emit(obs::TraceEvent("run_start")
                    .field("request_count",
                           static_cast<std::uint64_t>(config.request_count))
                    .field("request_steps",
                           static_cast<std::uint64_t>(config.request_steps))
                    .field("interval_s", interval)
                    .field("seed", config.request_seed));
  }

  ScenarioResult result;
  {
    const obs::ScopedTimer timer("time.coverage_s");
    const obs::Span span("sim.coverage");
    CoverageOptions coverage = config.coverage;
    coverage.pool = config.pool;
    coverage.registry = config.registry;
    coverage.profiler = config.profiler;
    result.coverage = analyze_coverage(model, topology, coverage);
  }
  if (trace_snapshots) {
    trace->emit(obs::TraceEvent("coverage")
                    .field("percent", result.coverage.percent)
                    .field("covered_s", result.coverage.covered_s));
  }

  Rng rng(config.request_seed);
  const RequestBatch batch = make_request_batch(
      generate_requests(model, config.request_count, rng));
  const std::vector<Request>& requests = batch.requests;

  // Last relay each request was served over, for handover accounting
  // (fixed-batch modes only; open arrivals have no cross-step identity).
  std::vector<std::optional<net::NodeId>> last_relay(requests.size());

  const obs::ScopedTimer serving_timer("time.serving_s");
  const obs::Span serving_span("sim.serving", config.request_steps);

  // Run-scoped shared per-epoch caches (sim/epoch_cache.hpp): trees and em
  // candidate routes are computed once per (epoch, key) for the whole run
  // instead of once per worker. The bundle reaches the serial path and
  // every parallel worker alike, so thread count cannot change results.
  const SharedServingCaches shared_caches(topology, batch, config,
                                          model.nodes().size());

  result.em.enabled = !config.traffic.enabled && config.em.enabled;
  result.traffic.enabled = config.traffic.enabled;

  // The per-step merge shared by the serial and parallel paths and by all
  // three serving engines: it replays the historical single-loop
  // accumulation in step order, so every path produces bit-identical stats,
  // counters, handovers, and trace bytes.
  const auto merge = [&](std::size_t step, const ServeStepResult& sr) {
    const double t = static_cast<double>(step) * interval;
    const ServeOutcome& oc = sr.outcome;
    const bool fixed_batch = !sr.traffic_enabled;
    std::size_t step_handovers = 0;
    for (std::size_t i = 0; i < sr.requests.size(); ++i) {
      const RequestRecord& rec = sr.requests[i];
      const bool served_rec = rec.disposition == ServeDisposition::Served;
      if (fixed_batch) {
        if (served_rec) {
          if (last_relay[i].has_value() && rec.relay.has_value() &&
              *last_relay[i] != *rec.relay) {
            ++step_handovers;
            if (trace_requests) {
              trace->emit(
                  obs::TraceEvent("handover")
                      .field("step", static_cast<std::uint64_t>(step))
                      .field("t", t)
                      .field("id", static_cast<std::uint64_t>(i))
                      .field("from",
                             static_cast<std::uint64_t>(*last_relay[i]))
                      .field("to", static_cast<std::uint64_t>(*rec.relay)));
            }
          }
          last_relay[i] = rec.relay;
          if (rec.has_em) result.em.latency_samples.push_back(rec.latency);
        } else {
          last_relay[i].reset();
        }
      }
      if (trace_requests) {
        const net::NodeId src = fixed_batch ? requests[i].source : rec.source;
        const net::NodeId dst =
            fixed_batch ? requests[i].destination : rec.destination;
        obs::TraceEvent event("request");
        event.field("step", static_cast<std::uint64_t>(step))
            .field("t", t)
            .field("id", static_cast<std::uint64_t>(i))
            .field("src", static_cast<std::uint64_t>(src))
            .field("dst", static_cast<std::uint64_t>(dst))
            .field("status", serve_disposition_name(rec.disposition));
        if (served_rec) {
          event.field("eta", rec.transmissivity)
              .field("fidelity", rec.fidelity)
              .field("hops", static_cast<std::uint64_t>(rec.hops))
              .field("relay",
                     static_cast<std::uint64_t>(rec.relay.value_or(dst)));
          if (rec.has_em) {
            event.field("swaps", static_cast<std::uint64_t>(rec.em.swaps))
                .field("depth", static_cast<std::uint64_t>(rec.em.swap_depth))
                .field("purify", static_cast<std::uint64_t>(
                                     rec.em.purification_rounds))
                .field("pairs",
                       static_cast<std::uint64_t>(rec.em.pairs_consumed))
                .field("route",
                       static_cast<std::uint64_t>(rec.em.route_index))
                .field("latency", rec.latency);
          }
          if (sr.traffic_enabled) {
            event.field("latency", rec.latency).field("waiting", rec.waiting);
          }
        }
        trace->emit(event);
      }
    }

    result.served_per_step.add(oc.served_fraction());
    result.fidelity.merge(oc.fidelity);
    result.transmissivity.merge(oc.transmissivity);
    result.hops.merge(oc.hops);
    result.requests_issued += oc.issued;
    result.requests_served += oc.served;
    result.requests_no_path += oc.no_path;
    result.requests_isolated += oc.isolated;
    result.requests_congested += oc.congested;
    result.requests_rejected_capacity += oc.rejected_capacity;
    result.requests_dropped_deadline += oc.dropped_deadline;
    result.handovers += step_handovers;

    if (sr.em_enabled) {
      result.em.swaps += sr.em.swaps;
      result.em.purification_rounds += sr.em.purification_rounds;
      result.em.pairs_consumed += sr.em.pairs_consumed;
      result.em.slo_met += sr.em.slo_met;
      result.em.spilled += sr.em.spilled;
      result.em.memory_occupancy.add(sr.em.memory_occupancy);
      result.em.swap_depth.merge(sr.em.swap_depth);
      result.em.latency.merge(sr.em.latency);
    }
    if (sr.traffic_enabled) {
      result.traffic.latency.merge(sr.traffic.latency);
      result.traffic.waiting.merge(sr.traffic.waiting);
      result.traffic.latency_samples.insert(
          result.traffic.latency_samples.end(),
          sr.traffic.latency_samples.begin(), sr.traffic.latency_samples.end());
      result.traffic.waiting_samples.insert(
          result.traffic.waiting_samples.end(),
          sr.traffic.waiting_samples.begin(), sr.traffic.waiting_samples.end());
      result.traffic.peak_utilisation.add(sr.traffic.peak_utilisation);
      result.traffic.peak_queue_depth = std::max(
          result.traffic.peak_queue_depth, sr.traffic.peak_queue_depth);
    }

    obs::count("scenario.snapshots");
    obs::count("scenario.requests_issued", oc.issued);
    obs::count("scenario.requests_served", oc.served);
    obs::count("scenario.requests_no_path", oc.no_path);
    obs::count("scenario.requests_isolated", oc.isolated);
    if (sr.em_enabled) {
      obs::count("scenario.requests_congested", oc.congested);
    }
    if (sr.traffic_enabled) {
      obs::count("scenario.requests_rejected_capacity", oc.rejected_capacity);
      obs::count("scenario.requests_dropped_deadline", oc.dropped_deadline);
    }
    if (fixed_batch) {
      obs::count("scenario.handovers", step_handovers);
    }

    if (trace_snapshots) {
      obs::TraceEvent event("snapshot");
      event.field("step", static_cast<std::uint64_t>(step))
          .field("t", t)
          .field("served", static_cast<std::uint64_t>(oc.served))
          .field("total", static_cast<std::uint64_t>(oc.issued))
          .field("no_path", static_cast<std::uint64_t>(oc.no_path))
          .field("isolated", static_cast<std::uint64_t>(oc.isolated));
      if (sr.em_enabled) {
        event.field("congested", static_cast<std::uint64_t>(oc.congested))
            .field("occupancy", sr.em.memory_occupancy);
      }
      if (sr.traffic_enabled) {
        event
            .field("rejected_capacity",
                   static_cast<std::uint64_t>(oc.rejected_capacity))
            .field("dropped_deadline",
                   static_cast<std::uint64_t>(oc.dropped_deadline))
            .field("queue_peak",
                   static_cast<std::uint64_t>(sr.traffic.peak_queue_depth))
            .field("utilisation", sr.traffic.peak_utilisation);
      }
      if (fixed_batch) {
        event.field("handovers", static_cast<std::uint64_t>(step_handovers));
      }
      trace->emit(event);
    }
  };

  // The traffic engine's event windows are heavy enough to chunk on any
  // provider; the fixed-batch engines only profit from chunking when the
  // provider is epoch-partitioned (PR 4's condition).
  const bool parallel_engine =
      config.pool != nullptr &&
      (topology.epoch_count() > 0 || config.traffic.enabled);
  if (parallel_engine) {
    // Parallel snapshot engine: workers produce per-step results into
    // preallocated slots (no shared mutable state), then the main thread
    // merges them in step order.
    std::vector<ServeStepResult> per_step(config.request_steps);
    parallel_for_chunks(
        *config.pool, config.request_steps, config.pool->size(),
        [&](std::size_t begin, std::size_t end) {
          const obs::ScopedRegistry worker_registry(config.registry);
          const obs::ScopedProfiler worker_profiler(config.profiler);
          const obs::Span span("sim.serve_chunk", end - begin);
          const auto engine =
              make_serving_engine(model, topology, batch, config, interval,
                                  trace_requests, &shared_caches);
          for (std::size_t step = begin; step < end; ++step) {
            per_step[step] =
                engine->serve_step(step, static_cast<double>(step) * interval);
          }
        });
    for (std::size_t step = 0; step < config.request_steps; ++step) {
      merge(step, per_step[step]);
    }
  } else {
    const auto engine = make_serving_engine(model, topology, batch, config,
                                            interval, trace_requests,
                                            &shared_caches);
    for (std::size_t step = 0; step < config.request_steps; ++step) {
      const obs::Span step_span("sim.serve_step", step);
      const ServeStepResult served =
          engine->serve_step(step, static_cast<double>(step) * interval);
      merge(step, served);
    }
  }
  result.served_fraction = result.served_per_step.mean();

  if (trace_snapshots) {
    trace->emit(
        obs::TraceEvent("run_end")
            .field("served_fraction", result.served_fraction)
            .field("fidelity_mean", result.fidelity.mean())
            .field("eta_mean", result.transmissivity.mean())
            .field("hops_mean", result.hops.mean())
            .field("requests_issued",
                   static_cast<std::uint64_t>(result.requests_issued))
            .field("requests_served",
                   static_cast<std::uint64_t>(result.requests_served))
            .field("handovers", static_cast<std::uint64_t>(result.handovers)));
    trace->flush();
  }
  return result;
}

}  // namespace qntn::sim
