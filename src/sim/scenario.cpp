#include "sim/scenario.hpp"

namespace qntn::sim {

ScenarioResult run_scenario(const NetworkModel& model,
                            const TopologyProvider& topology,
                            const ScenarioConfig& config) {
  ScenarioResult result;
  result.coverage = analyze_coverage(model, topology, config.coverage);

  Rng rng(config.request_seed);
  const std::vector<Request> requests =
      generate_requests(model, config.request_count, rng);

  for (std::size_t step = 0; step < config.request_steps; ++step) {
    const double t = static_cast<double>(step) * config.request_step_interval;
    const net::Graph graph = topology.graph_at(t);
    const ServeResult served =
        serve_requests(graph, requests, config.metric, config.convention);
    result.served_per_step.add(served.served_fraction());
    result.fidelity.merge(served.fidelity);
    result.transmissivity.merge(served.transmissivity);
    result.hops.merge(served.hops);
  }
  result.served_fraction = result.served_per_step.mean();
  return result;
}

}  // namespace qntn::sim
