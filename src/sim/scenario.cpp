#include "sim/scenario.hpp"

#include <cstdio>
#include <optional>

#include "common/thread_pool.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "sim/em_snapshot.hpp"
#include "sim/snapshot.hpp"

namespace qntn::sim {

namespace {

/// Snapshots must stay inside the coverage day (ephemerides only span it);
/// returns the clamped interval and warns when the configured one walks
/// off the end. The default 100 x 864 s exactly tiles one day and is
/// untouched (the last snapshot sits at 99 x 864 s).
double effective_step_interval(const ScenarioConfig& config) {
  if (config.request_steps == 0) return config.request_step_interval;
  const double span = static_cast<double>(config.request_steps) *
                      config.request_step_interval;
  if (span <= config.coverage.duration + 1e-9) {
    return config.request_step_interval;
  }
  const double clamped =
      config.coverage.duration / static_cast<double>(config.request_steps);
  std::fprintf(stderr,
               "qntn: warning: %zu request snapshots x %.3f s span %.0f s "
               "but the scenario day is %.0f s; clamping the snapshot "
               "interval to %.3f s\n",
               config.request_steps, config.request_step_interval, span,
               config.coverage.duration, clamped);
  obs::count("scenario.interval_clamped");
  return clamped;
}

}  // namespace

ScenarioResult run_scenario(const NetworkModel& model,
                            const TopologyProvider& topology,
                            const ScenarioConfig& config) {
  const obs::ScopedRegistry ambient(config.registry);
  const obs::ScopedProfiler profiling(config.profiler);
  const obs::Span run_span("sim.run_scenario", config.request_steps);
  obs::TraceSink* trace = config.trace;
  const bool trace_snapshots =
      trace != nullptr && trace->wants(obs::TraceLevel::Snapshots);
  const bool trace_requests =
      trace != nullptr && trace->wants(obs::TraceLevel::Requests);

  const double interval = effective_step_interval(config);

  if (trace_snapshots) {
    trace->emit(obs::TraceEvent("run_start")
                    .field("request_count",
                           static_cast<std::uint64_t>(config.request_count))
                    .field("request_steps",
                           static_cast<std::uint64_t>(config.request_steps))
                    .field("interval_s", interval)
                    .field("seed", config.request_seed));
  }

  ScenarioResult result;
  {
    const obs::ScopedTimer timer("time.coverage_s");
    const obs::Span span("sim.coverage");
    CoverageOptions coverage = config.coverage;
    coverage.pool = config.pool;
    coverage.registry = config.registry;
    coverage.profiler = config.profiler;
    result.coverage = analyze_coverage(model, topology, coverage);
  }
  if (trace_snapshots) {
    trace->emit(obs::TraceEvent("coverage")
                    .field("percent", result.coverage.percent)
                    .field("covered_s", result.coverage.covered_s));
  }

  Rng rng(config.request_seed);
  const RequestBatch batch = make_request_batch(
      generate_requests(model, config.request_count, rng));
  const std::vector<Request>& requests = batch.requests;

  // Last relay each request was served over, for handover accounting.
  std::vector<std::optional<net::NodeId>> last_relay(requests.size());

  const obs::ScopedTimer serving_timer("time.serving_s");
  const obs::Span serving_span("sim.serving", config.request_steps);

  // The per-step merge shared by the serial and parallel paths: it replays
  // the historical single-loop accumulation in step order, so both engines
  // produce bit-identical stats, counters, handovers, and trace bytes.
  const auto merge_step = [&](std::size_t step, const ServeResult& served) {
    const double t = static_cast<double>(step) * interval;
    std::size_t step_handovers = 0;
    for (std::size_t i = 0; i < served.outcomes.size(); ++i) {
      const RequestOutcome& outcome = served.outcomes[i];
      if (outcome.status == ServeStatus::Served) {
        if (last_relay[i].has_value() && outcome.relay.has_value() &&
            *last_relay[i] != *outcome.relay) {
          ++step_handovers;
          if (trace_requests) {
            trace->emit(
                obs::TraceEvent("handover")
                    .field("step", static_cast<std::uint64_t>(step))
                    .field("t", t)
                    .field("id", static_cast<std::uint64_t>(i))
                    .field("from", static_cast<std::uint64_t>(*last_relay[i]))
                    .field("to", static_cast<std::uint64_t>(*outcome.relay)));
          }
        }
        last_relay[i] = outcome.relay;
      } else {
        last_relay[i].reset();
      }
      if (trace_requests) {
        obs::TraceEvent event("request");
        event.field("step", static_cast<std::uint64_t>(step))
            .field("t", t)
            .field("id", static_cast<std::uint64_t>(i))
            .field("src", static_cast<std::uint64_t>(requests[i].source))
            .field("dst", static_cast<std::uint64_t>(requests[i].destination))
            .field("status", serve_status_name(outcome.status));
        if (outcome.status == ServeStatus::Served) {
          event.field("eta", outcome.transmissivity)
              .field("fidelity", outcome.fidelity)
              .field("hops", static_cast<std::uint64_t>(outcome.hops))
              .field("relay",
                     static_cast<std::uint64_t>(outcome.relay.value_or(
                         requests[i].destination)));
        }
        trace->emit(event);
      }
    }

    result.served_per_step.add(served.served_fraction());
    result.fidelity.merge(served.fidelity);
    result.transmissivity.merge(served.transmissivity);
    result.hops.merge(served.hops);
    result.requests_issued += served.total;
    result.requests_served += served.served;
    result.requests_no_path += served.unserved_no_path;
    result.requests_isolated += served.unserved_isolated;
    result.handovers += step_handovers;

    obs::count("scenario.snapshots");
    obs::count("scenario.requests_issued", served.total);
    obs::count("scenario.requests_served", served.served);
    obs::count("scenario.requests_no_path", served.unserved_no_path);
    obs::count("scenario.requests_isolated", served.unserved_isolated);
    obs::count("scenario.handovers", step_handovers);

    if (trace_snapshots) {
      trace->emit(obs::TraceEvent("snapshot")
                      .field("step", static_cast<std::uint64_t>(step))
                      .field("t", t)
                      .field("served", static_cast<std::uint64_t>(served.served))
                      .field("total", static_cast<std::uint64_t>(served.total))
                      .field("no_path", static_cast<std::uint64_t>(
                                            served.unserved_no_path))
                      .field("isolated", static_cast<std::uint64_t>(
                                             served.unserved_isolated))
                      .field("handovers",
                             static_cast<std::uint64_t>(step_handovers)));
    }
  };

  // merge_step's twin for the entanglement-management mode: the same
  // handover/trace discipline and step-ordered reduction, plus the em
  // accounting (swap/purification totals, occupancy, latency samples).
  const auto merge_em = [&](std::size_t step, const em::EmServeResult& served) {
    const double t = static_cast<double>(step) * interval;
    std::size_t step_handovers = 0;
    for (std::size_t i = 0; i < served.outcomes.size(); ++i) {
      const em::EmOutcome& outcome = served.outcomes[i];
      if (outcome.status == em::EmStatus::Served) {
        if (last_relay[i].has_value() && outcome.relay.has_value() &&
            *last_relay[i] != *outcome.relay) {
          ++step_handovers;
          if (trace_requests) {
            trace->emit(
                obs::TraceEvent("handover")
                    .field("step", static_cast<std::uint64_t>(step))
                    .field("t", t)
                    .field("id", static_cast<std::uint64_t>(i))
                    .field("from", static_cast<std::uint64_t>(*last_relay[i]))
                    .field("to", static_cast<std::uint64_t>(*outcome.relay)));
          }
        }
        last_relay[i] = outcome.relay;
        result.em.latency_samples.push_back(outcome.latency);
      } else {
        last_relay[i].reset();
      }
      if (trace_requests) {
        obs::TraceEvent event("request");
        event.field("step", static_cast<std::uint64_t>(step))
            .field("t", t)
            .field("id", static_cast<std::uint64_t>(i))
            .field("src", static_cast<std::uint64_t>(requests[i].source))
            .field("dst", static_cast<std::uint64_t>(requests[i].destination))
            .field("status", em::em_status_name(outcome.status));
        if (outcome.status == em::EmStatus::Served) {
          event.field("eta", outcome.transmissivity)
              .field("fidelity", outcome.fidelity)
              .field("hops", static_cast<std::uint64_t>(outcome.hops))
              .field("relay",
                     static_cast<std::uint64_t>(outcome.relay.value_or(
                         requests[i].destination)))
              .field("swaps", static_cast<std::uint64_t>(outcome.swaps))
              .field("depth", static_cast<std::uint64_t>(outcome.swap_depth))
              .field("purify", static_cast<std::uint64_t>(
                                   outcome.purification_rounds))
              .field("pairs",
                     static_cast<std::uint64_t>(outcome.pairs_consumed))
              .field("route",
                     static_cast<std::uint64_t>(outcome.route_index))
              .field("latency", outcome.latency);
        }
        trace->emit(event);
      }
    }

    result.served_per_step.add(served.served_fraction());
    result.fidelity.merge(served.fidelity);
    result.transmissivity.merge(served.transmissivity);
    result.hops.merge(served.hops);
    result.requests_issued += served.total;
    result.requests_served += served.served;
    result.requests_no_path += served.unserved_no_path;
    result.requests_isolated += served.unserved_isolated;
    result.requests_congested += served.unserved_congested;
    result.handovers += step_handovers;

    result.em.swaps += served.swaps;
    result.em.purification_rounds += served.purification_rounds;
    result.em.pairs_consumed += served.pairs_consumed;
    result.em.slo_met += served.slo_met;
    result.em.spilled += served.spilled;
    result.em.memory_occupancy.add(served.memory_occupancy);
    result.em.swap_depth.merge(served.swap_depth);
    result.em.latency.merge(served.latency);

    obs::count("scenario.snapshots");
    obs::count("scenario.requests_issued", served.total);
    obs::count("scenario.requests_served", served.served);
    obs::count("scenario.requests_no_path", served.unserved_no_path);
    obs::count("scenario.requests_isolated", served.unserved_isolated);
    obs::count("scenario.requests_congested", served.unserved_congested);
    obs::count("scenario.handovers", step_handovers);

    if (trace_snapshots) {
      trace->emit(obs::TraceEvent("snapshot")
                      .field("step", static_cast<std::uint64_t>(step))
                      .field("t", t)
                      .field("served", static_cast<std::uint64_t>(served.served))
                      .field("total", static_cast<std::uint64_t>(served.total))
                      .field("no_path", static_cast<std::uint64_t>(
                                            served.unserved_no_path))
                      .field("isolated", static_cast<std::uint64_t>(
                                             served.unserved_isolated))
                      .field("congested", static_cast<std::uint64_t>(
                                              served.unserved_congested))
                      .field("occupancy", served.memory_occupancy)
                      .field("handovers",
                             static_cast<std::uint64_t>(step_handovers)));
    }
  };

  const bool parallel_engine =
      config.pool != nullptr && topology.epoch_count() > 0;
  if (config.em.enabled) {
    result.em.enabled = true;
    if (parallel_engine) {
      std::vector<em::EmServeResult> per_step(config.request_steps);
      parallel_for_chunks(
          *config.pool, config.request_steps, config.pool->size(),
          [&](std::size_t begin, std::size_t end) {
            const obs::ScopedRegistry worker_registry(config.registry);
            const obs::ScopedProfiler worker_profiler(config.profiler);
            const obs::Span span("sim.serve_chunk", end - begin);
            EmSnapshotServer server(topology, batch, config.em,
                                    config.convention);
            for (std::size_t step = begin; step < end; ++step) {
              per_step[step] =
                  server.serve_at(static_cast<double>(step) * interval);
            }
          });
      for (std::size_t step = 0; step < config.request_steps; ++step) {
        merge_em(step, per_step[step]);
      }
    } else {
      EmSnapshotServer server(topology, batch, config.em, config.convention);
      for (std::size_t step = 0; step < config.request_steps; ++step) {
        const obs::Span step_span("sim.serve_step", step);
        const em::EmServeResult served =
            server.serve_at(static_cast<double>(step) * interval);
        merge_em(step, served);
      }
    }
  } else if (parallel_engine) {
    // Parallel snapshot engine: workers produce per-step ServeResults into
    // preallocated slots (no shared mutable state), then the main thread
    // merges them in step order.
    std::vector<ServeResult> per_step(config.request_steps);
    parallel_for_chunks(
        *config.pool, config.request_steps, config.pool->size(),
        [&](std::size_t begin, std::size_t end) {
          const obs::ScopedRegistry worker_registry(config.registry);
          const obs::ScopedProfiler worker_profiler(config.profiler);
          const obs::Span span("sim.serve_chunk", end - begin);
          SnapshotServer server(topology, batch, config.metric,
                                config.convention);
          for (std::size_t step = begin; step < end; ++step) {
            per_step[step] =
                server.serve_at(static_cast<double>(step) * interval);
          }
        });
    for (std::size_t step = 0; step < config.request_steps; ++step) {
      merge_step(step, per_step[step]);
    }
  } else {
    SnapshotServer server(topology, batch, config.metric, config.convention);
    for (std::size_t step = 0; step < config.request_steps; ++step) {
      const obs::Span step_span("sim.serve_step", step);
      const ServeResult served =
          server.serve_at(static_cast<double>(step) * interval);
      merge_step(step, served);
    }
  }
  result.served_fraction = result.served_per_step.mean();

  if (trace_snapshots) {
    trace->emit(
        obs::TraceEvent("run_end")
            .field("served_fraction", result.served_fraction)
            .field("fidelity_mean", result.fidelity.mean())
            .field("eta_mean", result.transmissivity.mean())
            .field("hops_mean", result.hops.mean())
            .field("requests_issued",
                   static_cast<std::uint64_t>(result.requests_issued))
            .field("requests_served",
                   static_cast<std::uint64_t>(result.requests_served))
            .field("handovers", static_cast<std::uint64_t>(result.handovers)));
    trace->flush();
  }
  return result;
}

}  // namespace qntn::sim
