#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "channel/fso.hpp"
#include "channel/link_budget.hpp"
#include "geo/geodetic.hpp"
#include "net/graph.hpp"
#include "orbit/ephemeris.hpp"

/// \file network_model.hpp
/// The physical network: ground LANs (fixed nodes connected by fiber),
/// hovering HAPs, and orbiting satellites with precomputed ephemerides.
/// Node ids are stable over time (grounds first, then HAPs, then
/// satellites), so request endpoints and per-step graphs can share ids.
/// This is the C++ analogue of the paper's extended QuNetSim Host /
/// Satellite / HAP classes (Section III-C).

namespace qntn::sim {

enum class NodeKind { Ground, Hap, Satellite };

struct Node {
  NodeKind kind = NodeKind::Ground;
  std::string name;
  /// LAN index for ground nodes; SIZE_MAX otherwise.
  std::size_t lan = SIZE_MAX;
  /// Fixed geodetic position (ground and HAP nodes).
  geo::Geodetic position;
  /// Ephemeris index into NetworkModel::ephemerides() for satellites.
  std::size_t ephemeris_index = SIZE_MAX;
  /// Optical terminal characteristics for FSO links.
  channel::OpticalTerminal terminal;
};

class NetworkModel {
 public:
  /// Add a LAN of fixed ground nodes; returns the LAN index.
  std::size_t add_lan(const std::string& name,
                      const std::vector<geo::Geodetic>& node_positions,
                      const channel::OpticalTerminal& terminal);

  /// Add a hovering HAP; returns its node id.
  net::NodeId add_hap(const std::string& name, const geo::Geodetic& position,
                      const channel::OpticalTerminal& terminal);

  /// Add a satellite with its ephemeris; returns its node id.
  net::NodeId add_satellite(const std::string& name, orbit::Ephemeris ephemeris,
                            const channel::OpticalTerminal& terminal);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const Node& node(net::NodeId id) const { return nodes_[id]; }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }

  [[nodiscard]] std::size_t lan_count() const { return lans_.size(); }
  [[nodiscard]] const std::string& lan_name(std::size_t lan) const {
    return lan_names_[lan];
  }
  [[nodiscard]] const std::vector<net::NodeId>& lan_nodes(std::size_t lan) const {
    return lans_[lan];
  }

  [[nodiscard]] const std::vector<net::NodeId>& hap_ids() const { return haps_; }
  [[nodiscard]] const std::vector<net::NodeId>& satellite_ids() const {
    return satellites_;
  }

  /// Endpoint (geodetic + ECEF) of any node at simulation time t [s].
  [[nodiscard]] channel::Endpoint endpoint_at(net::NodeId id, double t) const;

  /// Ephemeris of a satellite node (precondition: id is a satellite). Lets
  /// pass prediction and the contact-plan compiler reuse the trajectory
  /// tables directly instead of round-tripping through endpoint_at.
  [[nodiscard]] const orbit::Ephemeris& ephemeris(net::NodeId id) const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::vector<net::NodeId>> lans_;
  std::vector<std::string> lan_names_;
  std::vector<net::NodeId> haps_;
  std::vector<net::NodeId> satellites_;
  std::vector<orbit::Ephemeris> ephemerides_;
  /// Cached ECEF positions for fixed nodes (ground, HAP).
  std::vector<Vec3> fixed_ecef_;
};

}  // namespace qntn::sim
