#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "net/routing.hpp"
#include "quantum/fidelity.hpp"
#include "sim/network_model.hpp"

/// \file requests.hpp
/// Entanglement distribution requests and the serving loop. The paper's
/// protocol (Sections IV-B/IV-C): generate 100 random requests whose source
/// and destination lie in different LANs, route each with Bellman-Ford on
/// the cost 1/(eta + eps), count the served ones, and record the end-to-end
/// entanglement fidelity of the established pairs. Amplitude damping
/// composes multiplicatively along a path — AD(eta1) then AD(eta2) equals
/// AD(eta1*eta2) — so the end-to-end fidelity is a closed-form function of
/// the path transmissivity product (pinned against full density-matrix
/// simulation by the integration tests).

namespace qntn::sim {

struct Request {
  net::NodeId source = 0;
  net::NodeId destination = 0;
};

/// Generate `count` uniformly random requests with endpoints in distinct
/// LANs (the paper's workload). Deterministic given the Rng state.
[[nodiscard]] std::vector<Request> generate_requests(const NetworkModel& model,
                                                     std::size_t count,
                                                     Rng& rng);

/// A request batch with its source-compaction table, built once per run:
/// the scenario serves the same requests at every snapshot, so the distinct
/// sources (and each request's slot in that table) are day-invariants that
/// do not belong in the per-step loop. Shortest-path trees are stored in a
/// flat vector indexed by slot — no per-step std::map.
struct RequestBatch {
  std::vector<Request> requests;
  /// Distinct request sources in first-appearance order.
  std::vector<net::NodeId> sources;
  /// Per request: index of its source in `sources`.
  std::vector<std::size_t> source_slot;
};

[[nodiscard]] RequestBatch make_request_batch(std::vector<Request> requests);

/// Reusable per-worker serving scratch: the edge-cost buffer priced once
/// per snapshot and the per-source shortest-path trees (flat, slot-indexed).
/// With an eta-independent metric the trees survive every snapshot of one
/// topology epoch (the per-epoch route cache); otherwise they are
/// invalidated per snapshot and only the allocations are reused.
struct ServeScratch {
  std::vector<double> edge_costs;
  std::vector<net::ShortestPathTree> trees;
  std::vector<char> tree_valid;
};

/// Why a request was or wasn't served on a snapshot — the per-request
/// telemetry the obs trace records.
enum class ServeStatus : std::uint8_t {
  Served,
  NoPath,    ///< endpoints have links, but no path connects them
  Isolated,  ///< source or destination has no links at all this snapshot
};

[[nodiscard]] std::string_view serve_status_name(ServeStatus status);

/// Per-request serving detail (parallel to the request batch).
struct RequestOutcome {
  ServeStatus status = ServeStatus::NoPath;
  double transmissivity = 0.0;  ///< end-to-end eta product (served only)
  double fidelity = 0.0;        ///< closed-form pair fidelity (served only)
  std::size_t hops = 0;         ///< path edge count (served only)
  /// First intermediate node of the route — the satellite/HAP relay the
  /// request rode; nullopt for direct (single-edge) paths.
  std::optional<net::NodeId> relay;
};

/// Outcome of serving one batch of requests against one topology snapshot.
struct ServeResult {
  std::size_t total = 0;
  std::size_t served = 0;
  std::size_t unserved_no_path = 0;
  std::size_t unserved_isolated = 0;
  RunningStats fidelity;        ///< over served requests
  RunningStats transmissivity;  ///< end-to-end product, over served requests
  RunningStats hops;            ///< path edge count, over served requests
  /// Filled only when serve_requests is called with record_outcomes = true.
  std::vector<RequestOutcome> outcomes;

  [[nodiscard]] double served_fraction() const {
    return total > 0 ? static_cast<double>(served) / static_cast<double>(total)
                     : 0.0;
  }
};

/// Route and serve all requests on the given snapshot. One Bellman-Ford
/// tree per distinct source amortises the routing cost. With
/// record_outcomes, `ServeResult::outcomes` carries the per-request detail
/// (status, relay, eta/hops) the scenario trace and handover accounting
/// consume.
[[nodiscard]] ServeResult serve_requests(
    const net::Graph& graph, const std::vector<Request>& requests,
    net::CostMetric metric = net::CostMetric::InverseEta,
    quantum::FidelityConvention convention =
        quantum::FidelityConvention::Uhlmann,
    bool record_outcomes = false);

class SharedEpochTreeCache;

/// Serving core: serve a prebuilt batch against one snapshot, reusing the
/// caller's scratch. With reuse_trees the per-source trees cached in the
/// scratch are assumed valid for this graph — only correct when the metric
/// is eta-independent and the graph is the same epoch's skeleton with
/// refreshed transmissivities (route structure is then unchanged; served
/// transmissivity/fidelity still read the current etas through the graph).
/// Bitwise-identical to serve_requests on the same inputs.
///
/// A non-null `shared` (with `epoch` the snapshot's topology epoch) routes
/// every tree lookup through the run-scoped per-epoch cache instead of the
/// scratch: trees are then built once per (epoch, source) across all chunk
/// workers, and they are *canonical* (net::canonical_tree), so equal-cost
/// ties may resolve to different routes than the scratch path's
/// bellman_ford_tree. Callers pass it only when the cache is active —
/// eta-independent metric on an epoch-partitioned provider — and must pass
/// it from the serial and parallel paths alike.
[[nodiscard]] ServeResult serve_snapshot(
    const net::Graph& graph, const RequestBatch& batch, net::CostMetric metric,
    quantum::FidelityConvention convention, ServeScratch& scratch,
    bool record_outcomes, bool reuse_trees = false,
    SharedEpochTreeCache* shared = nullptr,
    std::size_t epoch = static_cast<std::size_t>(-1));

}  // namespace qntn::sim
