#pragma once

#include <cstdint>
#include <vector>

#include "em/serving.hpp"
#include "sim/coverage.hpp"
#include "sim/requests.hpp"
#include "sim/traffic.hpp"

namespace qntn::obs {
class Profiler;
class Registry;
class TraceSink;
}  // namespace qntn::obs

/// \file scenario.hpp
/// End-to-end scenario evaluation: coverage over a day plus request serving
/// over repeated topology snapshots — the measurement protocol behind the
/// paper's Figs. 6-8 and Table III.

namespace qntn::sim {

struct ScenarioConfig {
  /// Coverage timeline (Eq. 6/7).
  CoverageOptions coverage{};

  /// Request workload: `request_count` random inter-LAN requests, re-served
  /// at `request_steps` successive snapshots of satellite movement and
  /// averaged (paper Section IV-B). The paper does not state the snapshot
  /// spacing; we default to spreading the snapshots uniformly over the
  /// whole day so the average sees every orbital phase, and expose the
  /// interval for sensitivity studies.
  std::size_t request_count = 100;
  std::size_t request_steps = 100;
  /// [s]; 100 steps x 864 s = 1 day. run_scenario clamps the interval (with
  /// a warning) whenever request_steps * request_step_interval would walk
  /// the snapshots past coverage.duration — ephemerides only span the day.
  double request_step_interval = 864.0;

  net::CostMetric metric = net::CostMetric::InverseEta;
  quantum::FidelityConvention convention = quantum::FidelityConvention::Uhlmann;
  std::uint64_t request_seed = 20240101;

  /// Optional observability hooks (borrowed, may be nullptr). The registry
  /// collects counters/timers — it is also installed as the thread's
  /// ambient registry for the duration of run_scenario, so the layers below
  /// (routing, topology replay) report into it. The trace sink receives the
  /// per-snapshot / per-request JSONL events its TraceLevel admits.
  obs::Registry* registry = nullptr;
  obs::TraceSink* trace = nullptr;
  /// Span profiler, installed as the thread's ambient profiler for the
  /// duration of run_scenario so the layers below record spans into it.
  obs::Profiler* profiler = nullptr;

  /// Borrowed pool for the parallel snapshot engine (nullptr = serial). With
  /// a pool AND an epoch-partitioned topology provider (or the traffic
  /// serving mode, whose event windows are heavy enough to chunk on any
  /// provider), request serving fans out across workers and is merged with
  /// a deterministic ordered reduction — every metric, counter total, and
  /// trace byte is identical to the serial run. Never pass a pool when
  /// run_scenario itself executes on one of that pool's workers (the nested
  /// fan-out would deadlock); the architecture sweeps therefore null it for
  /// their inner evaluations.
  ThreadPool* pool = nullptr;

  /// Entanglement-management serving mode (DESIGN.md §11): when
  /// `em.enabled`, requests are served from buffered elementary pairs via
  /// swap trees, purification budgeting, and k-disjoint multipath routing
  /// instead of the paper's instantaneous single-shot links. Off by
  /// default, so seed results are untouched.
  em::EmOptions em{};

  /// Open-arrival traffic serving mode (DESIGN.md §12): when
  /// `traffic.enabled`, the fixed request batch is replaced by per-LAN
  /// Poisson user populations with a diurnal rate profile, served through
  /// the event-driven engine (capacity claims, queueing deadlines,
  /// backpressure) one window per snapshot step. Takes precedence over the
  /// em mode. Off by default, so seed results are untouched.
  TrafficConfig traffic{};
};

/// Entanglement-management serving statistics, filled only when
/// ScenarioConfig::em.enabled.
struct EmScenarioStats {
  bool enabled = false;
  std::size_t swaps = 0;                ///< BSMs across all served requests
  std::size_t purification_rounds = 0;  ///< BBPSSW rounds spent
  std::size_t pairs_consumed = 0;       ///< buffered pairs spent
  std::size_t slo_met = 0;              ///< served requests meeting the SLO
  std::size_t spilled = 0;              ///< served on an alternate route
  RunningStats memory_occupancy;        ///< per snapshot, in [0, 1]
  RunningStats swap_depth;              ///< per served request
  RunningStats latency;                 ///< heralding latency per served [s]
  /// Every served request's heralding latency, in deterministic merge
  /// order, for percentile reporting.
  std::vector<double> latency_samples;
};

/// Open-arrival traffic statistics, filled only when
/// ScenarioConfig::traffic.enabled.
struct TrafficScenarioStats {
  bool enabled = false;
  RunningStats latency;           ///< arrival -> delivered, served [s]
  RunningStats waiting;           ///< queueing component [s]
  RunningStats peak_utilisation;  ///< per window busiest-node load, [0, 1]
  std::size_t peak_queue_depth = 0;  ///< max backlog across all windows
  /// Per-served samples in deterministic merge order, for percentile
  /// reporting (p50/p95/p99 latency and queue delay).
  std::vector<double> latency_samples;
  std::vector<double> waiting_samples;
};

struct ScenarioResult {
  CoverageResult coverage;
  /// Mean served fraction across snapshots (the paper's "percentage of
  /// served requests"), in [0, 1].
  double served_fraction = 0.0;
  /// Distribution of per-snapshot served fractions.
  RunningStats served_per_step;
  /// Fidelity over every served request in every snapshot.
  RunningStats fidelity;
  /// End-to-end transmissivity over served requests.
  RunningStats transmissivity;
  /// Path length (edges) over served requests.
  RunningStats hops;

  /// Request accounting totals across all snapshots; the ServeOutcome
  /// identity holds mode-independently: issued = served + no_path +
  /// isolated + congested + rejected_capacity + dropped_deadline.
  std::size_t requests_issued = 0;
  std::size_t requests_served = 0;
  std::size_t requests_no_path = 0;
  std::size_t requests_isolated = 0;
  /// Requests with routes whose relays/buffers could not pay (em mode only;
  /// the other modes leave this 0).
  std::size_t requests_congested = 0;
  /// Traffic backpressure: arrivals refused at admission because the queue
  /// was full (traffic mode only).
  std::size_t requests_rejected_capacity = 0;
  /// Traffic deadline drops: requests queued past max_queue_delay (traffic
  /// mode only).
  std::size_t requests_dropped_deadline = 0;
  /// Relay changes between consecutively served snapshots of one request
  /// (fixed-batch modes only; open arrivals have no cross-step identity).
  std::size_t handovers = 0;

  /// Entanglement-management statistics (em.enabled scenarios only).
  EmScenarioStats em;
  /// Open-arrival traffic statistics (traffic.enabled scenarios only).
  TrafficScenarioStats traffic;
};

/// Run coverage + request serving for one architecture.
[[nodiscard]] ScenarioResult run_scenario(const NetworkModel& model,
                                          const TopologyProvider& topology,
                                          const ScenarioConfig& config);

}  // namespace qntn::sim
