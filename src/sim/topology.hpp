#pragma once

#include <optional>

#include "channel/fiber.hpp"
#include "channel/fso.hpp"
#include "common/constants.hpp"
#include "net/graph.hpp"
#include "sim/network_model.hpp"

/// \file topology.hpp
/// Builds the time-varying link graph from the physical NetworkModel.
/// Links follow the paper's rules (Section IV): ground-ground fiber links
/// and ground-HAP FSO links are fixed; satellite links (ground-satellite
/// and satellite-satellite) connect and disconnect dynamically whenever the
/// symmetric transmissivity meets the threshold and the geometry is visible
/// (elevation mask pi/9 for atmospheric paths, Earth clearance for
/// inter-satellite paths).

namespace qntn::sim {

enum class LanTopology {
  FullMesh,  ///< every intra-LAN pair gets a fiber link (default)
  Chain,     ///< consecutive nodes in declaration order
  Star,      ///< all nodes linked to the first declared node
};

struct LinkPolicy {
  channel::FsoConfig fso{};
  double fiber_attenuation_db_per_km = 0.15;  ///< paper Section IV
  double transmissivity_threshold = 0.7;      ///< paper Section IV-A
  double elevation_mask = kPaperElevationMask;  ///< pi/9, paper Section IV
  LanTopology lan_topology = LanTopology::FullMesh;
  bool enable_inter_satellite = true;   ///< FSO channels between satellites
  bool enable_hap_satellite = false;    ///< hybrid extension (off = paper)
  /// Apply the transmissivity threshold to fiber links too (the paper's
  /// LAN spans are tens of metres, so fiber is always far above threshold;
  /// kept separate so stress tests can exercise long fiber runs).
  bool threshold_applies_to_fiber = true;
};

/// A realised link with its transmissivity, for introspection/debugging.
struct LinkRecord {
  net::NodeId a = 0;
  net::NodeId b = 0;
  double transmissivity = 0.0;
};

/// Anything that can produce the link graph at a simulation time. The
/// coverage and scenario layers consume this interface so decorators (e.g.
/// the HAP endurance model in endurance.hpp) can reshape the topology
/// without the analysis code knowing.
class TopologyProvider {
 public:
  virtual ~TopologyProvider() = default;

  /// Snapshot graph at simulation time t [s]. Node ids in the graph equal
  /// NetworkModel node ids.
  [[nodiscard]] virtual net::Graph graph_at(double t) const = 0;
};

class TopologyBuilder final : public TopologyProvider {
 public:
  /// Precomputes static links (fiber LANs, ground-HAP) and the per-class
  /// FSO evaluators. The model must outlive the builder.
  TopologyBuilder(const NetworkModel& model, const LinkPolicy& policy);

  [[nodiscard]] net::Graph graph_at(double t) const override;

  /// All links realised at time t (same information as graph_at's edges).
  [[nodiscard]] std::vector<LinkRecord> links_at(double t) const;

  /// Raw symmetric transmissivity between two nodes at time t before
  /// thresholding; nullopt when the geometry is not visible (below the
  /// elevation mask / Earth-obstructed) or the pair has no channel type.
  [[nodiscard]] std::optional<double> link_transmissivity(net::NodeId a,
                                                          net::NodeId b,
                                                          double t) const;

  [[nodiscard]] const LinkPolicy& policy() const { return policy_; }

  /// Time-invariant links (intra-LAN fiber plus ground-HAP FSO), already
  /// thresholded. The contact-plan compiler copies these verbatim.
  [[nodiscard]] const std::vector<LinkRecord>& static_links() const {
    return static_links_;
  }

  /// Cached per-class evaluator for a node-kind pair, or nullptr when the
  /// class has no FSO channel (missing nodes / disabled by policy). Exposed
  /// so the contact-plan compiler evaluates the exact same link budgets the
  /// per-step rebuild does.
  [[nodiscard]] const channel::FsoLinkEvaluator* evaluator(NodeKind a,
                                                           NodeKind b) const;

 private:
  void build_static_links();

  const NetworkModel& model_;
  LinkPolicy policy_;
  std::vector<LinkRecord> static_links_;

  // One evaluator per link class (altitude bands differ).
  std::optional<channel::FsoLinkEvaluator> ground_sat_;
  std::optional<channel::FsoLinkEvaluator> ground_hap_;
  std::optional<channel::FsoLinkEvaluator> hap_sat_;
  std::optional<channel::FsoLinkEvaluator> sat_sat_;
};

}  // namespace qntn::sim
