#pragma once

#include <optional>
#include <vector>

#include "channel/fiber.hpp"
#include "channel/fso.hpp"
#include "common/constants.hpp"
#include "net/graph.hpp"
#include "sim/network_model.hpp"

/// \file topology.hpp
/// Builds the time-varying link graph from the physical NetworkModel.
/// Links follow the paper's rules (Section IV): ground-ground fiber links
/// and ground-HAP FSO links are fixed; satellite links (ground-satellite
/// and satellite-satellite) connect and disconnect dynamically whenever the
/// symmetric transmissivity meets the threshold and the geometry is visible
/// (elevation mask pi/9 for atmospheric paths, Earth clearance for
/// inter-satellite paths).

namespace qntn::sim {

enum class LanTopology {
  FullMesh,  ///< every intra-LAN pair gets a fiber link (default)
  Chain,     ///< consecutive nodes in declaration order
  Star,      ///< all nodes linked to the first declared node
};

struct LinkPolicy {
  channel::FsoConfig fso{};
  double fiber_attenuation_db_per_km = 0.15;  ///< paper Section IV
  double transmissivity_threshold = 0.7;      ///< paper Section IV-A
  double elevation_mask = kPaperElevationMask;  ///< pi/9, paper Section IV
  LanTopology lan_topology = LanTopology::FullMesh;
  bool enable_inter_satellite = true;   ///< FSO channels between satellites
  bool enable_hap_satellite = false;    ///< hybrid extension (off = paper)
  /// Apply the transmissivity threshold to fiber links too (the paper's
  /// LAN spans are tens of metres, so fiber is always far above threshold;
  /// kept separate so stress tests can exercise long fiber runs).
  bool threshold_applies_to_fiber = true;
};

/// A realised link with its transmissivity, for introspection/debugging.
struct LinkRecord {
  net::NodeId a = 0;
  net::NodeId b = 0;
  double transmissivity = 0.0;
};

class TopologyProvider;

/// Reusable snapshot slot for TopologyProvider::snapshot_at. Workers of the
/// parallel snapshot engine each own one: an epoch-aware provider that is
/// asked for a time inside the epoch the slot already holds only rewrites
/// the time-varying edge transmissivities in place (zero allocation, no
/// graph rebuild); any other request rebuilds the graph and re-tags the
/// slot. A default-constructed slot is empty and always triggers a build.
struct TopologySnapshot {
  net::Graph graph;
  /// Epoch the graph currently represents; kNoEpoch = none/unknown.
  std::size_t epoch = static_cast<std::size_t>(-1);
  /// Provider that filled the slot; refresh is only valid against the same
  /// provider instance.
  const void* owner = nullptr;
  /// Index of the first time-varying (dynamic) edge in graph.edges();
  /// edges below it are static and never rewritten.
  std::size_t dynamic_base = 0;
  /// Provider-specific tag per dynamic edge (edge dynamic_base + i carries
  /// dynamic_tags[i]); ContactPlanTopology stores the contact-window id so
  /// a same-epoch refresh can re-evaluate each edge without replaying the
  /// epoch's active set.
  std::vector<std::size_t> dynamic_tags;
};

/// Anything that can produce the link graph at a simulation time. The
/// coverage and scenario layers consume this interface so decorators (e.g.
/// the HAP endurance model in endurance.hpp) can reshape the topology
/// without the analysis code knowing.
///
/// Thread safety: all const members must be safe to call concurrently (the
/// snapshot engine fans queries out across a thread pool). Both built-in
/// providers qualify — TopologyBuilder is stateless after construction and
/// ContactPlanTopology serves from immutable precomputed epoch tables.
class TopologyProvider {
 public:
  /// Sentinel for providers without an epoch structure.
  static constexpr std::size_t kNoEpoch = static_cast<std::size_t>(-1);

  virtual ~TopologyProvider() = default;

  /// Snapshot graph at simulation time t [s]. Node ids in the graph equal
  /// NetworkModel node ids.
  [[nodiscard]] virtual net::Graph graph_at(double t) const = 0;

  /// Epoch id of time t. Within one epoch the edge *set* is constant (only
  /// transmissivities vary), so LAN connectivity and eta-independent route
  /// trees can be cached per epoch. Providers without an epoch partition
  /// return kNoEpoch for every t, which disables all epoch caching.
  [[nodiscard]] virtual std::size_t epoch_of(double t) const {
    (void)t;
    return kNoEpoch;
  }

  /// Number of epochs in the provider's partition (0 = no partition; the
  /// snapshot engine then falls back to the serial per-step path).
  [[nodiscard]] virtual std::size_t epoch_count() const { return 0; }

  /// Append to `out` the unordered node pairs whose dynamic link set
  /// changes when advancing from epoch `from` to epoch `to` (from < to;
  /// the events applied at the starts of epochs from+1 .. to, duplicates
  /// allowed). Returns true when the provider can enumerate the delta and
  /// it spans at most `max_pairs` events; false (out untouched) tells the
  /// caller to rebuild from scratch instead of delta-repairing. The default
  /// — no epoch partition — never can.
  [[nodiscard]] virtual bool epoch_delta(std::size_t from, std::size_t to,
                                         std::size_t max_pairs,
                                         std::vector<net::ChangedPair>& out)
      const {
    (void)from;
    (void)to;
    (void)max_pairs;
    (void)out;
    return false;
  }

  /// Fill `snap` with the graph at time t, reusing its structure when the
  /// slot already holds the same epoch of the same provider. The default
  /// delegates to graph_at (a full rebuild each call); epoch-aware
  /// providers override it with the in-place eta refresh.
  virtual void snapshot_at(double t, TopologySnapshot& snap) const;
};

class TopologyBuilder final : public TopologyProvider {
 public:
  /// Precomputes static links (fiber LANs, ground-HAP) and the per-class
  /// FSO evaluators. The model must outlive the builder.
  TopologyBuilder(const NetworkModel& model, const LinkPolicy& policy);

  [[nodiscard]] net::Graph graph_at(double t) const override;

  /// All links realised at time t (same information as graph_at's edges).
  [[nodiscard]] std::vector<LinkRecord> links_at(double t) const;

  /// Raw symmetric transmissivity between two nodes at time t before
  /// thresholding; nullopt when the geometry is not visible (below the
  /// elevation mask / Earth-obstructed) or the pair has no channel type.
  [[nodiscard]] std::optional<double> link_transmissivity(net::NodeId a,
                                                          net::NodeId b,
                                                          double t) const;

  [[nodiscard]] const LinkPolicy& policy() const { return policy_; }

  /// Time-invariant links (intra-LAN fiber plus ground-HAP FSO), already
  /// thresholded. The contact-plan compiler copies these verbatim.
  [[nodiscard]] const std::vector<LinkRecord>& static_links() const {
    return static_links_;
  }

  /// Cached per-class evaluator for a node-kind pair, or nullptr when the
  /// class has no FSO channel (missing nodes / disabled by policy). Exposed
  /// so the contact-plan compiler evaluates the exact same link budgets the
  /// per-step rebuild does.
  [[nodiscard]] const channel::FsoLinkEvaluator* evaluator(NodeKind a,
                                                           NodeKind b) const;

 private:
  void build_static_links();

  const NetworkModel& model_;
  LinkPolicy policy_;
  std::vector<LinkRecord> static_links_;

  // One evaluator per link class (altitude bands differ).
  std::optional<channel::FsoLinkEvaluator> ground_sat_;
  std::optional<channel::FsoLinkEvaluator> ground_hap_;
  std::optional<channel::FsoLinkEvaluator> hap_sat_;
  std::optional<channel::FsoLinkEvaluator> sat_sat_;
};

}  // namespace qntn::sim
