#pragma once

#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "sim/topology.hpp"

/// \file handover.hpp
/// Relay-handover analysis. A satellite bridge between two LANs lasts only
/// as long as its pass; every handover interrupts entanglement sessions
/// and costs re-synchronisation. The HAP never hands over. This module
/// quantifies that operational difference, which coverage percentages
/// alone hide.

namespace qntn::sim {

/// The relay serving a LAN pair at one instant: the non-ground node with
/// direct links into both LANs whose worse link is best (max-min
/// transmissivity). nullopt when no single relay bridges the pair.
[[nodiscard]] std::optional<net::NodeId> bridging_relay(
    const NetworkModel& model, const net::Graph& graph, std::size_t lan_a,
    std::size_t lan_b);

struct HandoverStats {
  /// Steps during which some relay bridged the pair.
  std::size_t bridged_steps = 0;
  std::size_t total_steps = 0;
  /// Relay changes between consecutive bridged steps (gaps also end a
  /// session but are not double-counted as handovers).
  std::size_t handovers = 0;
  /// Lengths of uninterrupted same-relay sessions [s].
  RunningStats session_length;

  [[nodiscard]] double bridged_fraction() const {
    return total_steps > 0 ? static_cast<double>(bridged_steps) /
                                 static_cast<double>(total_steps)
                           : 0.0;
  }
};

/// Scan [0, duration) at `step` and accumulate handover statistics for one
/// LAN pair.
[[nodiscard]] HandoverStats analyze_handovers(const NetworkModel& model,
                                              const TopologyProvider& topology,
                                              std::size_t lan_a,
                                              std::size_t lan_b,
                                              double duration, double step);

}  // namespace qntn::sim
