#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "geo/sun.hpp"
#include "net/routing.hpp"
#include "quantum/memory.hpp"
#include "sim/requests.hpp"
#include "sim/serving_engine.hpp"
#include "sim/topology.hpp"

/// \file traffic.hpp
/// Discrete-event traffic simulation. The paper serves a fixed request
/// batch instantaneously at topology snapshots; this engine models the
/// dynamics it abstracts away: Poisson request arrivals, per-node service
/// occupancy (a node can work on a bounded number of pairs at once),
/// queueing delay, heralding latency at the speed of light, and memory
/// decoherence while pairs wait — so throughput, latency and *effective*
/// fidelity can be traded off against offered load.
///
/// Event-driven core: a time-ordered heap of events (request arrivals,
/// service completions); arrivals claim capacity on every node of their
/// route or wait in a FIFO backlog bounded by `max_queue_delay` and
/// `max_backlog`.
///
/// Two frontends share the core:
///  - run_traffic_simulation: the standalone single-span study (one global
///    Poisson stream over a fixed duration, endpoints drawn like the
///    paper's batch workload);
///  - TrafficEngine: the scenario serving mode (ServingEngine, DESIGN.md
///    §12) — per-LAN user populations with a diurnal rate profile, one
///    bounded serving window per scenario step, unified ServeOutcome
///    accounting with backpressure counters.

namespace qntn::sim {

class SharedEpochTreeCache;

struct TrafficConfig {
  /// Scenario serving-mode switch (core::ServingMode::Traffic sets it);
  /// the standalone run_traffic_simulation ignores it.
  bool enabled = false;
  double duration = 3'600.0;        ///< simulated span [s] (standalone)
  /// Poisson request arrivals [1/s]: the global rate of the standalone
  /// span, the *per-LAN* population rate of the scenario engine.
  double arrival_rate = 1.0;
  /// Concurrent pairs a node can work on (relays bind first). Absorbs the
  /// former sim::CapacityPolicy::per_node_capacity role for open arrivals.
  std::size_t node_capacity = 4;
  /// Base service time per request [s] on top of the light-time heralding
  /// (local BSMs, classical processing).
  double service_overhead = 0.01;
  /// Requests queued longer than this are dropped (decohered / timed out).
  double max_queue_delay = 0.5;
  /// Backpressure bound (scenario engine): arrivals finding this many
  /// requests already queued are refused at admission (rejected_capacity).
  std::size_t max_backlog = 256;
  /// Diurnal modulation amplitude a in [0, 1] (scenario engine): a LAN's
  /// arrival rate is arrival_rate * (1 + a) while the sun is up at the LAN
  /// site and arrival_rate * (1 - a) at night — user populations are awake
  /// in daylight even though FSO links prefer darkness.
  double diurnal_amplitude = 0.5;
  /// Solar geometry behind the diurnal profile (sim/daylight's model).
  geo::SunModel sun{};
  /// Topology snapshot granularity [s] (standalone span; the scenario
  /// engine snapshots once per serving window instead).
  double snapshot_interval = 30.0;
  quantum::MemoryModel memory{};
  net::CostMetric metric = net::CostMetric::InverseEta;
  std::uint64_t seed = 7;

  /// Throws qntn::PreconditionError on degenerate parameters
  /// (non-positive duration/deadline/capacity, negative rate, amplitude
  /// outside [0, 1], ...).
  void validate() const;
};

struct TrafficResult {
  std::size_t arrivals = 0;
  std::size_t served = 0;
  std::size_t dropped_no_path = 0;
  std::size_t dropped_queue = 0;
  RunningStats latency;         ///< arrival -> pair delivered [s]
  RunningStats waiting;         ///< queueing component of latency [s]
  RunningStats fidelity;        ///< including memory decoherence while waiting
  RunningStats path_eta;        ///< optical transmissivity of chosen routes
  /// Per-served-request samples backing the tail percentiles (event order,
  /// deterministic for a fixed config).
  std::vector<double> latency_samples;
  std::vector<double> waiting_samples;

  /// Latency percentile over served requests, q in [0, 1]; 0 when nothing
  /// was served. p50/p95/p99 are what the reports print — the tails are
  /// where queueing bites, and means hide them.
  [[nodiscard]] double latency_percentile(double q) const;
  /// Waiting-time percentile over served requests, q in [0, 1].
  [[nodiscard]] double waiting_percentile(double q) const;

  [[nodiscard]] double served_fraction() const {
    return arrivals > 0
               ? static_cast<double>(served) / static_cast<double>(arrivals)
               : 0.0;
  }
  /// Delivered pairs per second of simulated time.
  [[nodiscard]] double throughput(double duration) const {
    return duration > 0.0 ? static_cast<double>(served) / duration : 0.0;
  }
};

/// Run the event-driven simulation of Poisson traffic over the (possibly
/// time-varying) topology. Deterministic for a fixed config.
[[nodiscard]] TrafficResult run_traffic_simulation(
    const NetworkModel& model, const TopologyProvider& topology,
    const TrafficConfig& config);

/// The open-arrival serving engine of the scenario loop (ServingEngine
/// impl). Each scenario step is one serving window [t, t + window): per-LAN
/// Poisson arrivals are drawn from a seeded (step, LAN) substream with the
/// diurnal rate factor at window start, then the event heap interleaves
/// arrivals, capacity claims, deadline drops and completions against the
/// step's topology snapshot. Capacity and backlog reset at every window
/// boundary (the same steady-state discipline as the em pool rebuilt per
/// snapshot), which makes serve_step a pure function of (step, snapshot,
/// config) — exactly what the parallel scenario loop needs for
/// byte-identical results across thread counts.
class TrafficEngine final : public ServingEngine {
 public:
  /// Borrows model and topology; both must outlive the engine. `window` is
  /// the scenario's snapshot interval [s]. Validates the config.
  /// `shared_trees` (borrowed, may be nullptr) is the run-scoped per-epoch
  /// tree cache; when it is active the per-window route trees come from it
  /// instead of the engine's own scratch, so chunk workers stop re-deriving
  /// each other's trees. Saturation reroutes (masked costs depend on this
  /// window's busy state) always stay engine-local.
  TrafficEngine(const NetworkModel& model, const TopologyProvider& topology,
                const TrafficConfig& config, double window,
                bool record_requests,
                SharedEpochTreeCache* shared_trees = nullptr);

  [[nodiscard]] ServeStepResult serve_step(std::size_t step,
                                           double t) override;

 private:
  struct Arrival {
    double time = 0.0;  ///< absolute simulation time [s]
    net::NodeId source = 0;
    net::NodeId destination = 0;
  };

  /// Draw the window's arrivals (all LANs, time-sorted) into arrivals_.
  void draw_arrivals(std::size_t step, double t0);

  const NetworkModel& model_;
  const TopologyProvider& topology_;
  TrafficConfig config_;
  double window_ = 0.0;
  bool record_requests_ = false;
  /// Run-scoped shared per-epoch trees (borrowed, may be nullptr).
  SharedEpochTreeCache* shared_trees_ = nullptr;

  /// Destination candidates per source LAN (ground nodes of other LANs)
  /// and the site used for each LAN's diurnal factor.
  std::vector<std::vector<net::NodeId>> peers_;
  std::vector<geo::Geodetic> lan_sites_;

  /// Reusable per-step scratch.
  TopologySnapshot snap_;
  std::vector<Arrival> arrivals_;
  std::vector<double> edge_costs_;
  std::vector<net::ShortestPathTree> trees_;   ///< indexed by source node
  std::vector<std::uint32_t> tree_stamp_;      ///< step stamp per tree
  std::uint32_t stamp_ = 0;
  std::vector<std::size_t> busy_;
};

}  // namespace qntn::sim
