#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "quantum/memory.hpp"
#include "sim/requests.hpp"
#include "sim/topology.hpp"

/// \file traffic.hpp
/// Discrete-event traffic simulation. The paper serves a fixed request
/// batch instantaneously at topology snapshots; this engine models the
/// dynamics it abstracts away: Poisson request arrivals, per-node service
/// occupancy (a node can work on a bounded number of pairs at once),
/// queueing delay, heralding latency at the speed of light, and memory
/// decoherence while pairs wait — so throughput, latency and *effective*
/// fidelity can be traded off against offered load.
///
/// Event-driven core: a time-ordered heap of events (request arrivals,
/// service completions); arrivals claim capacity on every node of their
/// route or wait in a FIFO backlog bounded by `max_queue_delay`.

namespace qntn::sim {

struct TrafficConfig {
  double duration = 3'600.0;        ///< simulated span [s]
  double arrival_rate = 1.0;        ///< Poisson request arrivals [1/s]
  /// Concurrent pairs a node can work on (relays bind first).
  std::size_t node_capacity = 4;
  /// Base service time per request [s] on top of the light-time heralding
  /// (local BSMs, classical processing).
  double service_overhead = 0.01;
  /// Requests queued longer than this are dropped (decohered / timed out).
  double max_queue_delay = 0.5;
  /// Topology snapshot granularity [s] (links re-evaluated on this grid).
  double snapshot_interval = 30.0;
  quantum::MemoryModel memory{};
  net::CostMetric metric = net::CostMetric::InverseEta;
  std::uint64_t seed = 7;
};

struct TrafficResult {
  std::size_t arrivals = 0;
  std::size_t served = 0;
  std::size_t dropped_no_path = 0;
  std::size_t dropped_queue = 0;
  RunningStats latency;         ///< arrival -> pair delivered [s]
  RunningStats waiting;         ///< queueing component of latency [s]
  RunningStats fidelity;        ///< including memory decoherence while waiting
  RunningStats path_eta;        ///< optical transmissivity of chosen routes
  /// Per-served-request samples backing the tail percentiles (event order,
  /// deterministic for a fixed config).
  std::vector<double> latency_samples;
  std::vector<double> waiting_samples;

  /// Latency percentile over served requests, q in [0, 1]; 0 when nothing
  /// was served. p50/p95/p99 are what the reports print — the tails are
  /// where queueing bites, and means hide them.
  [[nodiscard]] double latency_percentile(double q) const;
  /// Waiting-time percentile over served requests, q in [0, 1].
  [[nodiscard]] double waiting_percentile(double q) const;

  [[nodiscard]] double served_fraction() const {
    return arrivals > 0
               ? static_cast<double>(served) / static_cast<double>(arrivals)
               : 0.0;
  }
  /// Delivered pairs per second of simulated time.
  [[nodiscard]] double throughput(double duration) const {
    return duration > 0.0 ? static_cast<double>(served) / duration : 0.0;
  }
};

/// Run the event-driven simulation of Poisson traffic over the (possibly
/// time-varying) topology. Deterministic for a fixed config.
[[nodiscard]] TrafficResult run_traffic_simulation(
    const NetworkModel& model, const TopologyProvider& topology,
    const TrafficConfig& config);

}  // namespace qntn::sim
