#include "sim/daylight.hpp"

namespace qntn::sim {

DaylightGatedTopology::DaylightGatedTopology(const TopologyProvider& base,
                                             const NetworkModel& model,
                                             DaylightPolicy policy)
    : base_(base), model_(model), policy_(policy) {}

net::Graph DaylightGatedTopology::graph_at(double t) const {
  const net::Graph full = base_.graph_at(t);

  net::Graph gated;
  for (net::NodeId id = 0; id < full.node_count(); ++id) {
    gated.add_node(full.name(id));
  }
  const auto is_daylit_ground = [&](net::NodeId id) {
    const Node& node = model_.node(id);
    if (node.kind != NodeKind::Ground) return false;
    return !policy_.sun.is_night(node.position, t);
  };
  for (const net::Edge& edge : full.edges()) {
    const Node& a = model_.node(edge.a);
    const Node& b = model_.node(edge.b);
    const bool fiber =
        a.kind == NodeKind::Ground && b.kind == NodeKind::Ground;
    if (!fiber) {
      const bool involves_hap =
          a.kind == NodeKind::Hap || b.kind == NodeKind::Hap;
      const bool gated_kind =
          involves_hap ? policy_.gate_hap_links : policy_.gate_ground_links;
      if (gated_kind &&
          (is_daylit_ground(edge.a) || is_daylit_ground(edge.b))) {
        continue;
      }
    }
    gated.add_edge(edge.a, edge.b, edge.transmissivity);
  }
  return gated;
}

}  // namespace qntn::sim
