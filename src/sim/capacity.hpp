#pragma once

#include "sim/requests.hpp"
#include "sim/serving_engine.hpp"

/// \file capacity.hpp
/// Capacity-limited request serving. The paper assumes "each node can serve
/// all entanglement requests while in range ... infinite queue capacity"
/// (Section III-D) and defers realistic limits to future work; this module
/// implements that relaxation: every node can participate in at most
/// `capacity` concurrent end-to-end pairs per serving epoch. Relay nodes
/// (the HAP, satellites) saturate first, which is exactly the failure mode
/// the single-HAP architecture hides under the infinite-capacity
/// assumption.

namespace qntn::sim {

struct CapacityPolicy {
  /// Max concurrent pairs a node can take part in per epoch (source,
  /// destination and every relay on the path each consume one unit).
  std::size_t per_node_capacity = 8;
};

/// Capacity serving reports in the common ServeOutcome shape (DESIGN.md
/// §12): requests that had a path but were refused because a node on every
/// usable route was saturated land in `outcome.rejected_capacity`; requests
/// with no path at all land in `outcome.no_path`; the reconciliation
/// identity `outcome.reconciles()` holds.
struct CapacityServeResult {
  ServeOutcome outcome;
  /// Peak utilisation of the busiest node, in [0, 1] of its capacity.
  double peak_utilisation = 0.0;
};

/// Serve requests greedily in order. Each request is routed on the
/// subgraph of nodes with remaining capacity (re-routing around saturated
/// relays when possible), so the result depends on request order — the
/// generator's seeded order makes it deterministic.
[[nodiscard]] CapacityServeResult serve_requests_with_capacity(
    const net::Graph& graph, const std::vector<Request>& requests,
    const CapacityPolicy& policy,
    net::CostMetric metric = net::CostMetric::InverseEta,
    quantum::FidelityConvention convention =
        quantum::FidelityConvention::Uhlmann);

}  // namespace qntn::sim
