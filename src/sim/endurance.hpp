#pragma once

#include <vector>

#include "sim/topology.hpp"

/// \file endurance.hpp
/// Platform endurance / duty-cycle modelling. The paper assumes "unlimited
/// flight time" for the HAP and flags limited operational time as the
/// architecture's key weakness (Sections III-D, IV-D); this decorator
/// implements that axis: nodes on a duty cycle lose all their links during
/// downtime (landing, battery recharge, station-keeping maintenance), which
/// directly erodes the air-ground architecture's 100% coverage claim.

namespace qntn::sim {

/// Periodic availability schedule: active for `active_duration` seconds,
/// then down for `downtime` seconds, repeating; `phase` shifts the cycle
/// start (phase 0 = active at t = 0).
struct DutyCycle {
  double active_duration = 86'400.0;  ///< [s]
  double downtime = 0.0;              ///< [s]
  double phase = 0.0;                 ///< [s]

  /// Is the platform operational at simulation time t?
  [[nodiscard]] bool active_at(double t) const;

  /// Long-run availability fraction in [0, 1].
  [[nodiscard]] double availability() const;
};

/// Topology decorator removing every link incident to `affected` nodes
/// while their duty cycle is down. Node ids remain stable (the platform
/// exists, it just has no links).
class DutyCycledTopology final : public TopologyProvider {
 public:
  /// `base` must outlive this object.
  DutyCycledTopology(const TopologyProvider& base,
                     std::vector<net::NodeId> affected_nodes, DutyCycle cycle);

  [[nodiscard]] net::Graph graph_at(double t) const override;

  [[nodiscard]] const DutyCycle& cycle() const { return cycle_; }

 private:
  const TopologyProvider& base_;
  std::vector<net::NodeId> affected_;
  DutyCycle cycle_;
};

}  // namespace qntn::sim
