#include "sim/requests.hpp"

#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "sim/epoch_cache.hpp"

namespace qntn::sim {

std::vector<Request> generate_requests(const NetworkModel& model,
                                       std::size_t count, Rng& rng) {
  QNTN_REQUIRE(model.lan_count() >= 2,
               "inter-LAN requests need at least two LANs");
  std::vector<Request> out;
  out.reserve(count);
  const auto lan_count = static_cast<std::int64_t>(model.lan_count());
  for (std::size_t i = 0; i < count; ++i) {
    const auto lan_a = static_cast<std::size_t>(rng.uniform_int(0, lan_count - 1));
    auto lan_b = static_cast<std::size_t>(rng.uniform_int(0, lan_count - 2));
    if (lan_b >= lan_a) ++lan_b;  // uniform over LANs distinct from lan_a
    const std::vector<net::NodeId>& nodes_a = model.lan_nodes(lan_a);
    const std::vector<net::NodeId>& nodes_b = model.lan_nodes(lan_b);
    Request req;
    req.source = nodes_a[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes_a.size()) - 1))];
    req.destination = nodes_b[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes_b.size()) - 1))];
    out.push_back(req);
  }
  return out;
}

std::string_view serve_status_name(ServeStatus status) {
  switch (status) {
    case ServeStatus::Served:
      return "served";
    case ServeStatus::NoPath:
      return "no_path";
    case ServeStatus::Isolated:
      return "isolated";
  }
  return "unknown";
}

RequestBatch make_request_batch(std::vector<Request> requests) {
  RequestBatch batch;
  batch.requests = std::move(requests);
  batch.source_slot.reserve(batch.requests.size());
  std::unordered_map<net::NodeId, std::size_t> slot_of;
  for (const Request& req : batch.requests) {
    const auto [it, inserted] = slot_of.try_emplace(req.source,
                                                    batch.sources.size());
    if (inserted) batch.sources.push_back(req.source);
    batch.source_slot.push_back(it->second);
  }
  return batch;
}

ServeResult serve_snapshot(const net::Graph& graph, const RequestBatch& batch,
                           net::CostMetric metric,
                           quantum::FidelityConvention convention,
                           ServeScratch& scratch, bool record_outcomes,
                           bool reuse_trees, SharedEpochTreeCache* shared,
                           std::size_t epoch) {
  // With the shared cache every tree comes from the run-scoped per-epoch
  // table, so the scratch (and the per-snapshot edge pricing that only
  // feeds tree builds) stays untouched.
  const bool use_shared = shared != nullptr;
  if (!use_shared &&
      (!reuse_trees || scratch.tree_valid.size() != batch.sources.size() ||
       scratch.edge_costs.size() != graph.edge_count())) {
    scratch.trees.resize(batch.sources.size());
    scratch.tree_valid.assign(batch.sources.size(), 0);
    net::compute_edge_costs(graph, metric, scratch.edge_costs);
  }

  ServeResult result;
  result.total = batch.requests.size();
  if (record_outcomes) result.outcomes.resize(batch.requests.size());

  // One shortest-path tree per distinct source, built on demand and kept in
  // the scratch's flat slot table.
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    const Request& req = batch.requests[i];
    RequestOutcome outcome;
    // Isolated endpoints cannot be served regardless of routing; classify
    // them before paying for a shortest-path tree.
    if (graph.neighbors(req.source).empty() ||
        graph.neighbors(req.destination).empty()) {
      outcome.status = ServeStatus::Isolated;
      ++result.unserved_isolated;
      if (record_outcomes) result.outcomes[i] = outcome;
      continue;
    }
    const net::ShortestPathTree* tree = nullptr;
    if (use_shared) {
      tree = &shared->tree_for(epoch, req.source, graph);
    } else {
      const std::size_t slot = batch.source_slot[i];
      if (scratch.tree_valid[slot] == 0) {
        scratch.trees[slot] =
            net::bellman_ford_tree(graph, req.source, scratch.edge_costs);
        scratch.tree_valid[slot] = 1;
      }
      tree = &scratch.trees[slot];
    }
    const auto route =
        net::route_from_tree(graph, *tree, req.source, req.destination);
    if (!route.has_value()) {
      outcome.status = ServeStatus::NoPath;
      ++result.unserved_no_path;
      if (record_outcomes) result.outcomes[i] = outcome;
      continue;
    }
    ++result.served;
    const double fidelity =
        quantum::bell_fidelity_after_damping(route->transmissivity, convention);
    result.transmissivity.add(route->transmissivity);
    result.hops.add(static_cast<double>(route->path.size() - 1));
    result.fidelity.add(fidelity);
    if (record_outcomes) {
      outcome.status = ServeStatus::Served;
      outcome.transmissivity = route->transmissivity;
      outcome.fidelity = fidelity;
      outcome.hops = route->path.size() - 1;
      if (route->path.size() > 2) outcome.relay = route->path[1];
      result.outcomes[i] = outcome;
    }
  }
  return result;
}

ServeResult serve_requests(const net::Graph& graph,
                           const std::vector<Request>& requests,
                           net::CostMetric metric,
                           quantum::FidelityConvention convention,
                           bool record_outcomes) {
  const RequestBatch batch = make_request_batch(requests);
  ServeScratch scratch;
  return serve_snapshot(graph, batch, metric, convention, scratch,
                        record_outcomes, /*reuse_trees=*/false);
}

}  // namespace qntn::sim
