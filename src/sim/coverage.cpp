#include "sim/coverage.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qntn::sim {

bool all_lans_connected(const NetworkModel& model, const net::Graph& graph) {
  QNTN_REQUIRE(model.lan_count() >= 1, "model has no LANs");
  const std::vector<std::size_t> comp = graph.components();
  const std::size_t reference = comp[model.lan_nodes(0).front()];
  for (std::size_t lan = 1; lan < model.lan_count(); ++lan) {
    if (comp[model.lan_nodes(lan).front()] != reference) return false;
  }
  // LANs are internally connected by construction (fiber mesh/chain/star);
  // the representative node therefore stands for its whole LAN. Verified
  // in debug by the integration tests.
  return true;
}

CoverageResult analyze_coverage(const NetworkModel& model,
                                const TopologyProvider& topology,
                                const CoverageOptions& options) {
  QNTN_REQUIRE(options.duration > 0.0 && options.step > 0.0,
               "coverage options must be positive");
  CoverageResult result;
  const auto steps =
      static_cast<std::size_t>(std::ceil(options.duration / options.step));
  result.step_connected.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const double t = static_cast<double>(i) * options.step;
    const double dt = std::min(options.step, options.duration - t);
    const net::Graph graph = topology.graph_at(t);
    const bool connected = all_lans_connected(model, graph);
    result.step_connected.push_back(connected ? 1 : 0);
    result.intervals.add_sample(t, dt, connected);
  }
  result.covered_seconds = result.intervals.total();
  result.percent = 100.0 * result.covered_seconds / options.duration;
  return result;
}

}  // namespace qntn::sim
