#include "sim/coverage.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"

namespace qntn::sim {

bool all_lans_connected(const NetworkModel& model, const net::Graph& graph) {
  QNTN_REQUIRE(model.lan_count() >= 1, "model has no LANs");
  const std::vector<std::size_t> comp = graph.components();
  const std::size_t reference = comp[model.lan_nodes(0).front()];
  for (std::size_t lan = 1; lan < model.lan_count(); ++lan) {
    if (comp[model.lan_nodes(lan).front()] != reference) return false;
  }
  // LANs are internally connected by construction (fiber mesh/chain/star);
  // the representative node therefore stands for its whole LAN. Verified
  // in debug by the integration tests.
  return true;
}

CoverageResult analyze_coverage(const NetworkModel& model,
                                const TopologyProvider& topology,
                                const CoverageOptions& options) {
  QNTN_REQUIRE(options.duration > 0.0 && options.step > 0.0,
               "coverage options must be positive");
  CoverageResult result;
  const auto steps =
      static_cast<std::size_t>(std::ceil(options.duration / options.step));

  // Connectivity flag per step, from the engine or the serial loop below.
  std::vector<std::uint8_t> connected_at(steps, 0);

  if (options.pool != nullptr && topology.epoch_count() > 0) {
    // Parallel engine: connectivity only depends on the edge set, which is
    // constant within an epoch, so evaluate one representative step per
    // distinct epoch and fan those out across the pool.
    std::vector<std::size_t> distinct_index(steps, 0);
    std::vector<double> representative;  // first step time of each epoch
    std::size_t last_epoch = TopologyProvider::kNoEpoch;
    for (std::size_t i = 0; i < steps; ++i) {
      const double t = static_cast<double>(i) * options.step;
      const std::size_t epoch = topology.epoch_of(t);
      if (representative.empty() || epoch != last_epoch) {
        representative.push_back(t);
        last_epoch = epoch;
      }
      distinct_index[i] = representative.size() - 1;
    }
    std::vector<std::uint8_t> epoch_connected(representative.size(), 0);
    parallel_for_chunks(
        *options.pool, representative.size(), options.pool->size(),
        [&](std::size_t begin, std::size_t end) {
          const obs::ScopedRegistry ambient_registry(options.registry);
          const obs::ScopedProfiler ambient_profiler(options.profiler);
          const obs::Span span("sim.coverage_chunk", end - begin);
          TopologySnapshot snap;
          for (std::size_t e = begin; e < end; ++e) {
            topology.snapshot_at(representative[e], snap);
            epoch_connected[e] =
                all_lans_connected(model, snap.graph) ? 1 : 0;
          }
        });
    for (std::size_t i = 0; i < steps; ++i) {
      connected_at[i] = epoch_connected[distinct_index[i]];
    }
  } else {
    for (std::size_t i = 0; i < steps; ++i) {
      const double t = static_cast<double>(i) * options.step;
      const net::Graph graph = topology.graph_at(t);
      connected_at[i] = all_lans_connected(model, graph) ? 1 : 0;
    }
  }

  // Ordered reduction, identical for both paths (and bit-identical to the
  // historical single loop): samples are merged in step order.
  result.step_connected.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const double t = static_cast<double>(i) * options.step;
    const double dt = std::min(options.step, options.duration - t);
    const bool connected = connected_at[i] != 0;
    result.step_connected.push_back(connected ? 1 : 0);
    result.intervals.add_sample(t, dt, connected);
  }
  result.covered_s = result.intervals.total();
  result.percent = 100.0 * result.covered_s / options.duration;
  return result;
}

}  // namespace qntn::sim
