#include "sim/snapshot.hpp"

#include "sim/epoch_cache.hpp"

namespace qntn::sim {

ServeResult SnapshotServer::serve_at(double t) {
  const std::size_t prev_epoch = snap_.epoch;
  const void* prev_owner = snap_.owner;
  topology_.snapshot_at(t, snap_);
  const bool use_shared = shared_trees_ != nullptr &&
                          shared_trees_->active() &&
                          snap_.epoch != TopologyProvider::kNoEpoch;
  if (use_shared) {
    return serve_snapshot(snap_.graph, batch_, metric_, convention_, scratch_,
                          /*record_outcomes=*/true, /*reuse_trees=*/false,
                          shared_trees_, snap_.epoch);
  }
  // Trees survive a same-epoch refresh only when routes cannot depend on
  // the refreshed transmissivities.
  const bool reuse_trees = net::metric_is_eta_independent(metric_) &&
                           snap_.epoch != TopologyProvider::kNoEpoch &&
                           snap_.epoch == prev_epoch &&
                           snap_.owner == prev_owner;
  return serve_snapshot(snap_.graph, batch_, metric_, convention_, scratch_,
                        /*record_outcomes=*/true, reuse_trees);
}

}  // namespace qntn::sim
