#include "sim/traffic.hpp"

#include <cmath>
#include <deque>
#include <queue>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "quantum/fidelity.hpp"

namespace qntn::sim {

namespace {

/// Heap event: request arrival or service completion.
struct Event {
  double time = 0.0;
  std::uint64_t sequence = 0;  ///< tie-breaker for determinism
  enum class Kind { Arrival, Completion } kind = Kind::Arrival;
  std::size_t payload = 0;  ///< arrival index / in-flight record index

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return sequence > other.sequence;
  }
};

struct InFlight {
  std::vector<net::NodeId> nodes;
};

struct PendingRequest {
  Request request;
  double arrival = 0.0;
};

/// Caches topology snapshots on the configured grid.
class SnapshotCache {
 public:
  SnapshotCache(const TopologyProvider& topology, double interval)
      : topology_(topology), interval_(interval), graph_(topology.graph_at(0.0)) {}

  const net::Graph& at(double t) {
    const auto bucket = static_cast<std::size_t>(t / interval_);
    if (bucket != bucket_) {
      bucket_ = bucket;
      graph_ = topology_.graph_at(static_cast<double>(bucket) * interval_);
    }
    return graph_;
  }

 private:
  const TopologyProvider& topology_;
  double interval_;
  std::size_t bucket_ = 0;
  net::Graph graph_;
};

}  // namespace

TrafficResult run_traffic_simulation(const NetworkModel& model,
                                     const TopologyProvider& topology,
                                     const TrafficConfig& config) {
  QNTN_REQUIRE(config.duration > 0.0 && config.arrival_rate >= 0.0,
               "bad traffic config");
  QNTN_REQUIRE(config.node_capacity > 0, "node capacity must be positive");
  QNTN_REQUIRE(config.snapshot_interval > 0.0, "snapshot interval must be > 0");

  TrafficResult result;

  // Draw the Poisson arrival process and the request endpoints up front so
  // the run is a pure function of the seed.
  Rng rng(config.seed);
  std::vector<double> arrival_times;
  if (config.arrival_rate > 0.0) {
    double t = 0.0;
    for (;;) {
      const double u = rng.uniform(1e-12, 1.0);
      t += -std::log(u) / config.arrival_rate;
      if (t >= config.duration) break;
      arrival_times.push_back(t);
    }
  }
  const std::vector<Request> requests =
      generate_requests(model, arrival_times.size(), rng);
  result.arrivals = arrival_times.size();

  SnapshotCache snapshots(topology, config.snapshot_interval);
  std::vector<std::size_t> busy(model.node_count(), 0);
  std::vector<InFlight> in_flight;
  std::deque<PendingRequest> backlog;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap;
  std::uint64_t sequence = 0;
  for (std::size_t i = 0; i < arrival_times.size(); ++i) {
    heap.push({arrival_times[i], sequence++, Event::Kind::Arrival, i});
  }

  // Attempt to start service for a request at time `now`; returns true if
  // it was started (or dropped) and false if it must wait in the backlog.
  const auto try_start = [&](const Request& request, double arrival,
                             double now) -> bool {
    const net::Graph& graph = snapshots.at(now);
    const auto route = net::bellman_ford(graph, request.source,
                                         request.destination, config.metric);
    if (!route.has_value()) {
      // No path right now. Treat as no-path only on first attempt (at
      // arrival); queued requests keep waiting for topology/capacity.
      if (now == arrival) {
        ++result.dropped_no_path;
        return true;
      }
      return false;
    }
    for (const net::NodeId id : route->path) {
      if (busy[id] >= config.node_capacity) return false;  // wait
    }
    // Claim capacity and schedule completion.
    for (const net::NodeId id : route->path) ++busy[id];

    // Heralding: light makes one round trip over the physical path; the
    // route's cost metric does not know distances, so approximate the path
    // length from node positions at `now`.
    double path_length = 0.0;
    for (std::size_t i = 0; i + 1 < route->path.size(); ++i) {
      path_length += distance(model.endpoint_at(route->path[i], now).ecef,
                              model.endpoint_at(route->path[i + 1], now).ecef);
    }
    const double service =
        config.service_overhead + 2.0 * path_length / kSpeedOfLight;
    const double waiting = now - arrival;
    const double storage = waiting + service;

    in_flight.push_back({route->path});
    heap.push({now + service, sequence++, Event::Kind::Completion,
               in_flight.size() - 1});

    ++result.served;
    result.latency.add(waiting + service);
    result.waiting.add(waiting);
    result.latency_samples.push_back(waiting + service);
    result.waiting_samples.push_back(waiting);
    result.path_eta.add(route->transmissivity);
    result.fidelity.add(
        config.memory.stored_pair_fidelity(route->transmissivity, storage));
    return true;
  };

  // Drain the backlog (FIFO) as far as capacity allows at time `now`.
  const auto drain_backlog = [&](double now) {
    std::deque<PendingRequest> still_waiting;
    while (!backlog.empty()) {
      PendingRequest pending = backlog.front();
      backlog.pop_front();
      if (now - pending.arrival > config.max_queue_delay) {
        ++result.dropped_queue;
        continue;
      }
      if (!try_start(pending.request, pending.arrival, now)) {
        still_waiting.push_back(pending);
      }
    }
    backlog = std::move(still_waiting);
  };

  while (!heap.empty()) {
    const Event event = heap.top();
    heap.pop();
    if (event.kind == Event::Kind::Arrival) {
      const Request& request = requests[event.payload];
      if (!try_start(request, event.time, event.time)) {
        backlog.push_back({request, event.time});
      }
    } else {
      for (const net::NodeId id : in_flight[event.payload].nodes) {
        QNTN_REQUIRE(busy[id] > 0, "capacity accounting underflow");
        --busy[id];
      }
      drain_backlog(event.time);
    }
  }
  // Whatever is still queued at the end of the span never got served.
  result.dropped_queue += backlog.size();
  return result;
}

double TrafficResult::latency_percentile(double q) const {
  if (latency_samples.empty()) return 0.0;
  return percentile(latency_samples, q);
}

double TrafficResult::waiting_percentile(double q) const {
  if (waiting_samples.empty()) return 0.0;
  return percentile(waiting_samples, q);
}

}  // namespace qntn::sim
