#include "sim/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "quantum/fidelity.hpp"
#include "sim/epoch_cache.hpp"

namespace qntn::sim {

void TrafficConfig::validate() const {
  QNTN_REQUIRE(duration > 0.0, "traffic duration must be > 0");
  QNTN_REQUIRE(arrival_rate >= 0.0, "traffic arrival rate must be >= 0");
  QNTN_REQUIRE(node_capacity > 0, "traffic node capacity must be positive");
  QNTN_REQUIRE(service_overhead >= 0.0,
               "traffic service overhead must be >= 0");
  QNTN_REQUIRE(max_queue_delay > 0.0, "traffic max queue delay must be > 0");
  QNTN_REQUIRE(max_backlog > 0, "traffic max backlog must be positive");
  QNTN_REQUIRE(diurnal_amplitude >= 0.0 && diurnal_amplitude <= 1.0,
               "traffic diurnal amplitude must be in [0, 1]");
  QNTN_REQUIRE(snapshot_interval > 0.0,
               "traffic snapshot interval must be > 0");
}

namespace {

/// Heap event: request arrival or service completion.
struct Event {
  double time = 0.0;
  std::uint64_t sequence = 0;  ///< tie-breaker for determinism
  enum class Kind { Arrival, Completion } kind = Kind::Arrival;
  std::size_t payload = 0;  ///< arrival index / in-flight record index

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return sequence > other.sequence;
  }
};

struct InFlight {
  std::vector<net::NodeId> nodes;
};

struct PendingRequest {
  Request request;
  double arrival = 0.0;
};

/// Caches topology snapshots on the configured grid.
class SnapshotCache {
 public:
  SnapshotCache(const TopologyProvider& topology, double interval)
      : topology_(topology), interval_(interval), graph_(topology.graph_at(0.0)) {}

  const net::Graph& at(double t) {
    const auto bucket = static_cast<std::size_t>(t / interval_);
    if (bucket != bucket_) {
      bucket_ = bucket;
      graph_ = topology_.graph_at(static_cast<double>(bucket) * interval_);
    }
    return graph_;
  }

 private:
  const TopologyProvider& topology_;
  double interval_;
  std::size_t bucket_ = 0;
  net::Graph graph_;
};

/// splitmix64 finaliser: one well-mixed 64-bit seed per substream index, so
/// every (step, LAN) arrival stream is independent of processing order.
std::uint64_t substream_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * index;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

TrafficResult run_traffic_simulation(const NetworkModel& model,
                                     const TopologyProvider& topology,
                                     const TrafficConfig& config) {
  config.validate();

  TrafficResult result;

  // Draw the Poisson arrival process and the request endpoints up front so
  // the run is a pure function of the seed.
  Rng rng(config.seed);
  std::vector<double> arrival_times;
  if (config.arrival_rate > 0.0) {
    double t = 0.0;
    for (;;) {
      const double u = rng.uniform(1e-12, 1.0);
      t += -std::log(u) / config.arrival_rate;
      if (t >= config.duration) break;
      arrival_times.push_back(t);
    }
  }
  const std::vector<Request> requests =
      generate_requests(model, arrival_times.size(), rng);
  result.arrivals = arrival_times.size();

  SnapshotCache snapshots(topology, config.snapshot_interval);
  std::vector<std::size_t> busy(model.node_count(), 0);
  std::vector<InFlight> in_flight;
  std::deque<PendingRequest> backlog;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap;
  std::uint64_t sequence = 0;
  for (std::size_t i = 0; i < arrival_times.size(); ++i) {
    heap.push({arrival_times[i], sequence++, Event::Kind::Arrival, i});
  }

  // Attempt to start service for a request at time `now`; returns true if
  // it was started (or dropped) and false if it must wait in the backlog.
  const auto try_start = [&](const Request& request, double arrival,
                             double now) -> bool {
    const net::Graph& graph = snapshots.at(now);
    const auto route = net::bellman_ford(graph, request.source,
                                         request.destination, config.metric);
    if (!route.has_value()) {
      // No path right now. Treat as no-path only on first attempt (at
      // arrival); queued requests keep waiting for topology/capacity.
      if (now == arrival) {
        ++result.dropped_no_path;
        return true;
      }
      return false;
    }
    for (const net::NodeId id : route->path) {
      if (busy[id] >= config.node_capacity) return false;  // wait
    }
    // Claim capacity and schedule completion.
    for (const net::NodeId id : route->path) ++busy[id];

    // Heralding: light makes one round trip over the physical path; the
    // route's cost metric does not know distances, so approximate the path
    // length from node positions at `now`.
    double path_length = 0.0;
    for (std::size_t i = 0; i + 1 < route->path.size(); ++i) {
      path_length += distance(model.endpoint_at(route->path[i], now).ecef,
                              model.endpoint_at(route->path[i + 1], now).ecef);
    }
    const double service =
        config.service_overhead + 2.0 * path_length / kSpeedOfLight;
    const double waiting = now - arrival;
    const double storage = waiting + service;

    in_flight.push_back({route->path});
    heap.push({now + service, sequence++, Event::Kind::Completion,
               in_flight.size() - 1});

    ++result.served;
    result.latency.add(waiting + service);
    result.waiting.add(waiting);
    result.latency_samples.push_back(waiting + service);
    result.waiting_samples.push_back(waiting);
    result.path_eta.add(route->transmissivity);
    result.fidelity.add(
        config.memory.stored_pair_fidelity(route->transmissivity, storage));
    return true;
  };

  // Drain the backlog (FIFO) as far as capacity allows at time `now`.
  const auto drain_backlog = [&](double now) {
    std::deque<PendingRequest> still_waiting;
    while (!backlog.empty()) {
      PendingRequest pending = backlog.front();
      backlog.pop_front();
      if (now - pending.arrival > config.max_queue_delay) {
        ++result.dropped_queue;
        continue;
      }
      if (!try_start(pending.request, pending.arrival, now)) {
        still_waiting.push_back(pending);
      }
    }
    backlog = std::move(still_waiting);
  };

  while (!heap.empty()) {
    const Event event = heap.top();
    heap.pop();
    if (event.kind == Event::Kind::Arrival) {
      const Request& request = requests[event.payload];
      if (!try_start(request, event.time, event.time)) {
        backlog.push_back({request, event.time});
      }
    } else {
      for (const net::NodeId id : in_flight[event.payload].nodes) {
        QNTN_REQUIRE(busy[id] > 0, "capacity accounting underflow");
        --busy[id];
      }
      drain_backlog(event.time);
    }
  }
  // Whatever is still queued at the end of the span never got served.
  result.dropped_queue += backlog.size();
  return result;
}

double TrafficResult::latency_percentile(double q) const {
  if (latency_samples.empty()) return 0.0;
  return percentile(latency_samples, q);
}

double TrafficResult::waiting_percentile(double q) const {
  if (waiting_samples.empty()) return 0.0;
  return percentile(waiting_samples, q);
}

// ---------------------------------------------------------------------------
// TrafficEngine: the scenario serving mode.

TrafficEngine::TrafficEngine(const NetworkModel& model,
                             const TopologyProvider& topology,
                             const TrafficConfig& config, double window,
                             bool record_requests,
                             SharedEpochTreeCache* shared_trees)
    : model_(model),
      topology_(topology),
      config_(config),
      window_(window),
      record_requests_(record_requests),
      shared_trees_(shared_trees) {
  config_.validate();
  QNTN_REQUIRE(window_ > 0.0, "traffic serving window must be > 0");

  // Destination candidates: the ground nodes of every *other* LAN, in node-id
  // order (LANs are declared grounds-first, so iterating LANs in order gives
  // a deterministic candidate list). Mirrors generate_requests' inter-LAN
  // workload, but as a per-source-LAN population.
  peers_.resize(model_.lan_count());
  lan_sites_.resize(model_.lan_count());
  for (std::size_t lan = 0; lan < model_.lan_count(); ++lan) {
    for (std::size_t other = 0; other < model_.lan_count(); ++other) {
      if (other == lan) continue;
      const auto& nodes = model_.lan_nodes(other);
      peers_[lan].insert(peers_[lan].end(), nodes.begin(), nodes.end());
    }
    if (!model_.lan_nodes(lan).empty()) {
      lan_sites_[lan] = model_.node(model_.lan_nodes(lan).front()).position;
    }
  }
  busy_.assign(model_.node_count(), 0);
}

void TrafficEngine::draw_arrivals(std::size_t step, double t0) {
  arrivals_.clear();
  const std::size_t lan_count = model_.lan_count();
  for (std::size_t lan = 0; lan < lan_count; ++lan) {
    const auto& sources = model_.lan_nodes(lan);
    const auto& peers = peers_[lan];
    if (sources.empty() || peers.empty()) continue;

    // Diurnal profile: user populations are awake in daylight. The factor is
    // evaluated once per window at the LAN site — rate changes land on window
    // boundaries, keeping each window a homogeneous Poisson process.
    const bool day = config_.sun.solar_elevation(lan_sites_[lan], t0) > 0.0;
    const double rate = config_.arrival_rate *
                        (day ? 1.0 + config_.diurnal_amplitude
                             : 1.0 - config_.diurnal_amplitude);
    if (rate <= 0.0) continue;

    // One independent, well-mixed substream per (step, LAN): arrivals are a
    // pure function of (seed, step, lan) no matter which worker draws them.
    Rng rng(substream_seed(config_.seed,
                           static_cast<std::uint64_t>(step) * lan_count + lan +
                               1));
    double offset = 0.0;
    for (;;) {
      const double u = rng.uniform(1e-12, 1.0);
      offset += -std::log(u) / rate;
      if (offset >= window_) break;
      Arrival arrival;
      arrival.time = t0 + offset;
      arrival.source =
          sources[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(sources.size()) - 1))];
      arrival.destination =
          peers[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(peers.size()) - 1))];
      arrivals_.push_back(arrival);
    }
  }
  // Interleave the per-LAN streams into one time-ordered arrival sequence;
  // stable so equal times (possible only across LANs) keep LAN order.
  std::stable_sort(arrivals_.begin(), arrivals_.end(),
                   [](const Arrival& a, const Arrival& b) {
                     return a.time < b.time;
                   });
}

ServeStepResult TrafficEngine::serve_step(std::size_t step, double t) {
  topology_.snapshot_at(t, snap_);
  const net::Graph& graph = snap_.graph;

  // Per-window lazy route cache: one shortest-path tree per arrival source,
  // stamped by window (the snapshot is frozen for the whole window). With
  // the run-scoped shared cache active the trees come from it instead —
  // built once per (epoch, source) across all chunk workers, and canonical,
  // so serial and parallel runs see the very same trees.
  const bool use_shared = shared_trees_ != nullptr && shared_trees_->active() &&
                          snap_.epoch != TopologyProvider::kNoEpoch;
  ++stamp_;
  trees_.resize(graph.node_count());
  tree_stamp_.resize(graph.node_count(), 0);
  net::compute_edge_costs(graph, config_.metric, edge_costs_);
  const auto tree_for = [&](net::NodeId source) -> const net::ShortestPathTree& {
    if (use_shared) return shared_trees_->tree_for(snap_.epoch, source, graph);
    if (tree_stamp_[source] != stamp_) {
      trees_[source] = net::bellman_ford_tree(graph, source, edge_costs_);
      tree_stamp_[source] = stamp_;
    }
    return trees_[source];
  };

  draw_arrivals(step, t);

  ServeStepResult out;
  out.traffic_enabled = true;
  out.outcome.issued = arrivals_.size();
  if (record_requests_) out.requests.resize(arrivals_.size());

  std::fill(busy_.begin(), busy_.end(), 0);
  std::vector<InFlight> in_flight;
  struct Pending {
    std::size_t arrival_index = 0;
  };
  std::deque<Pending> backlog;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap;
  std::uint64_t sequence = 0;
  for (std::size_t i = 0; i < arrivals_.size(); ++i) {
    heap.push({arrivals_[i].time, sequence++, Event::Kind::Arrival, i});
  }

  // Scratch for the saturation reroute: edge costs with saturated interior
  // nodes priced out, rebuilt on demand.
  std::vector<double> masked_costs;

  const auto finish = [&](std::size_t index, ServeDisposition disposition,
                          const net::Route* route, double waiting,
                          double service) {
    if (record_requests_) {
      RequestRecord& rec = out.requests[index];
      rec.disposition = disposition;
      rec.source = arrivals_[index].source;
      rec.destination = arrivals_[index].destination;
      if (disposition == ServeDisposition::Served) {
        rec.transmissivity = route->transmissivity;
        rec.hops = route->path.size() - 1;
        rec.latency = waiting + service;
        rec.waiting = waiting;
        if (route->path.size() > 2) rec.relay = route->path[1];
      }
    }
    switch (disposition) {
      case ServeDisposition::Served:
        ++out.outcome.served;
        break;
      case ServeDisposition::NoPath:
        ++out.outcome.no_path;
        break;
      case ServeDisposition::Isolated:
        ++out.outcome.isolated;
        break;
      case ServeDisposition::RejectedCapacity:
        ++out.outcome.rejected_capacity;
        break;
      case ServeDisposition::DroppedDeadline:
        ++out.outcome.dropped_deadline;
        break;
      case ServeDisposition::Congested:
        ++out.outcome.congested;
        break;
    }
  };

  // Attempt to start service for arrival `index` at time `now`; returns true
  // if it reached a terminal disposition or started service, false if it
  // must (keep) wait(ing) in the backlog.
  const auto try_start = [&](std::size_t index, double now) -> bool {
    const Arrival& arrival = arrivals_[index];
    const bool first_attempt = now == arrival.time;
    if (first_attempt) {
      if (graph.neighbors(arrival.source).empty() ||
          graph.neighbors(arrival.destination).empty()) {
        finish(index, ServeDisposition::Isolated, nullptr, 0.0, 0.0);
        return true;
      }
    }
    auto route = net::route_from_tree(graph, tree_for(arrival.source),
                                      arrival.source, arrival.destination);
    if (!route.has_value()) {
      // The topology is frozen for the window, so no-path is terminal; it
      // can only trip on the first attempt (queued requests had a route).
      finish(index, ServeDisposition::NoPath, nullptr, 0.0, 0.0);
      return true;
    }
    // Endpoints must have room themselves; a saturated endpoint can only be
    // waited out.
    if (busy_[arrival.source] >= config_.node_capacity ||
        busy_[arrival.destination] >= config_.node_capacity) {
      return false;
    }
    bool saturated = false;
    for (const net::NodeId id : route->path) {
      if (busy_[id] >= config_.node_capacity) {
        saturated = true;
        break;
      }
    }
    if (saturated) {
      // Saturation reroute (the absorbed sim/capacity policy): retry with
      // every edge touching a saturated node priced out. Deterministic —
      // depends only on the busy table at `now`.
      masked_costs = edge_costs_;
      const auto& edges = graph.edges();
      for (std::size_t e = 0; e < edges.size(); ++e) {
        if (busy_[edges[e].a] >= config_.node_capacity ||
            busy_[edges[e].b] >= config_.node_capacity) {
          masked_costs[e] = std::numeric_limits<double>::infinity();
        }
      }
      const auto masked_tree =
          net::bellman_ford_tree(graph, arrival.source, masked_costs);
      route = net::route_from_tree(graph, masked_tree, arrival.source,
                                   arrival.destination);
      if (!route.has_value() ||
          !std::isfinite(route->cost)) {  // only infinite-cost detours left
        return false;                     // wait for capacity
      }
    }
    for (const net::NodeId id : route->path) ++busy_[id];
    for (const net::NodeId id : route->path) {
      const double utilisation = static_cast<double>(busy_[id]) /
                                 static_cast<double>(config_.node_capacity);
      out.traffic.peak_utilisation =
          std::max(out.traffic.peak_utilisation, utilisation);
    }

    // Heralding: light makes one round trip over the physical path. Node
    // positions are read at the window start — the same freeze the topology
    // snapshot applies — so service times are a pure function of the step.
    double path_length = 0.0;
    for (std::size_t i = 0; i + 1 < route->path.size(); ++i) {
      path_length += distance(model_.endpoint_at(route->path[i], t).ecef,
                              model_.endpoint_at(route->path[i + 1], t).ecef);
    }
    const double service =
        config_.service_overhead + 2.0 * path_length / kSpeedOfLight;
    const double waiting = now - arrival.time;

    in_flight.push_back({route->path});
    heap.push({now + service, sequence++, Event::Kind::Completion,
               in_flight.size() - 1});

    out.outcome.transmissivity.add(route->transmissivity);
    out.outcome.hops.add(static_cast<double>(route->path.size() - 1));
    out.outcome.fidelity.add(config_.memory.stored_pair_fidelity(
        route->transmissivity, waiting + service));
    out.traffic.latency.add(waiting + service);
    out.traffic.waiting.add(waiting);
    out.traffic.latency_samples.push_back(waiting + service);
    out.traffic.waiting_samples.push_back(waiting);
    finish(index, ServeDisposition::Served, &*route, waiting, service);
    return true;
  };

  // Drain the backlog (FIFO) as far as capacity allows at time `now`.
  const auto drain_backlog = [&](double now) {
    std::deque<Pending> still_waiting;
    while (!backlog.empty()) {
      const Pending pending = backlog.front();
      backlog.pop_front();
      if (now - arrivals_[pending.arrival_index].time >
          config_.max_queue_delay) {
        finish(pending.arrival_index, ServeDisposition::DroppedDeadline,
               nullptr, 0.0, 0.0);
        continue;
      }
      if (!try_start(pending.arrival_index, now)) {
        still_waiting.push_back(pending);
      }
    }
    backlog = std::move(still_waiting);
  };

  while (!heap.empty()) {
    const Event event = heap.top();
    heap.pop();
    if (event.kind == Event::Kind::Arrival) {
      if (!try_start(event.payload, event.time)) {
        // Backpressure: a full queue refuses admission outright.
        if (backlog.size() >= config_.max_backlog) {
          finish(event.payload, ServeDisposition::RejectedCapacity, nullptr,
                 0.0, 0.0);
        } else {
          backlog.push_back({event.payload});
          out.traffic.peak_queue_depth =
              std::max(out.traffic.peak_queue_depth, backlog.size());
        }
      }
    } else {
      for (const net::NodeId id : in_flight[event.payload].nodes) {
        QNTN_REQUIRE(busy_[id] > 0, "capacity accounting underflow");
        --busy_[id];
      }
      drain_backlog(event.time);
    }
  }
  // Whatever is still queued when the window's work drains never got
  // served: the window boundary is its deadline.
  while (!backlog.empty()) {
    finish(backlog.front().arrival_index, ServeDisposition::DroppedDeadline,
           nullptr, 0.0, 0.0);
    backlog.pop_front();
  }
  return out;
}

}  // namespace qntn::sim
