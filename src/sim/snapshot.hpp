#pragma once

#include "net/routing.hpp"
#include "quantum/fidelity.hpp"
#include "sim/requests.hpp"
#include "sim/topology.hpp"

/// \file snapshot.hpp
/// Per-worker serving engine of the parallel snapshot pipeline. Each worker
/// of the scenario loop owns one SnapshotServer: a reusable TopologySnapshot
/// slot plus the serving scratch (edge costs, per-source route trees). On an
/// epoch-partitioned provider, consecutive steps inside one epoch refresh
/// the snapshot graph in place (zero allocation) and — for eta-independent
/// metrics — reuse the shortest-path trees outright, so a worker pays one
/// graph build and one routing pass per *epoch* instead of per step. The
/// results are bitwise identical to serving a freshly built graph at every
/// step, which is what keeps the parallel and serial scenario paths
/// byte-for-byte equal.

namespace qntn::sim {

class SharedEpochTreeCache;

class SnapshotServer {
 public:
  /// Borrows everything; topology and batch must outlive the server.
  /// `shared_trees` (may be nullptr) is the run-scoped per-epoch tree
  /// cache: when active, trees are looked up there — built once per
  /// (epoch, source) across every worker — and the per-worker scratch
  /// trees are skipped entirely.
  SnapshotServer(const TopologyProvider& topology, const RequestBatch& batch,
                 net::CostMetric metric, quantum::FidelityConvention convention,
                 SharedEpochTreeCache* shared_trees = nullptr)
      : topology_(topology),
        batch_(batch),
        metric_(metric),
        convention_(convention),
        shared_trees_(shared_trees) {}

  /// Snapshot the topology at time t and serve the whole batch on it
  /// (outcomes recorded). Queries at nondecreasing times within one epoch
  /// hit the in-place refresh and tree-reuse fast paths automatically.
  [[nodiscard]] ServeResult serve_at(double t);

  /// The graph served by the last serve_at call (e.g. for coverage checks
  /// sharing the snapshot).
  [[nodiscard]] const net::Graph& graph() const { return snap_.graph; }

 private:
  const TopologyProvider& topology_;
  const RequestBatch& batch_;
  net::CostMetric metric_;
  quantum::FidelityConvention convention_;
  /// Run-scoped shared per-epoch trees (borrowed, may be nullptr).
  SharedEpochTreeCache* shared_trees_ = nullptr;
  TopologySnapshot snap_;
  ServeScratch scratch_;
};

}  // namespace qntn::sim
