#pragma once

#include "em/serving.hpp"
#include "quantum/fidelity.hpp"
#include "sim/requests.hpp"
#include "sim/topology.hpp"

/// \file em_snapshot.hpp
/// Per-worker serving engine for the entanglement-management scenario mode:
/// the em counterpart of sim::SnapshotServer. Each worker of the scenario
/// loop owns one EmSnapshotServer — a reusable TopologySnapshot slot plus an
/// em::EntanglementManager whose per-epoch k-disjoint route cache plays the
/// role the per-source tree cache plays in single-shot serving. Serving is a
/// pure function of the snapshot, so the parallel and serial scenario paths
/// stay byte-for-byte identical (see DESIGN.md §11).

namespace qntn::sim {

class EmSnapshotServer {
 public:
  /// Borrows topology and batch; both must outlive the server.
  /// `shared_routes` (borrowed, may be nullptr) is the run-scoped
  /// cross-worker candidate-route cache handed to the manager.
  EmSnapshotServer(const TopologyProvider& topology, const RequestBatch& batch,
                   const em::EmOptions& options,
                   quantum::FidelityConvention convention,
                   em::EmRouteSource* shared_routes = nullptr);

  /// Snapshot the topology at time t and serve the whole batch from the
  /// buffered-pair pool (outcomes recorded).
  [[nodiscard]] em::EmServeResult serve_at(double t);

 private:
  const TopologyProvider& topology_;
  std::vector<em::EmRequest> requests_;
  quantum::FidelityConvention convention_;
  TopologySnapshot snap_;
  em::EntanglementManager manager_;
};

}  // namespace qntn::sim
