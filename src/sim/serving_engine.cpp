#include "sim/serving_engine.hpp"

#include <utility>

#include "sim/em_snapshot.hpp"
#include "sim/epoch_cache.hpp"
#include "sim/scenario.hpp"
#include "sim/snapshot.hpp"
#include "sim/traffic.hpp"

namespace qntn::sim {

std::string_view serve_disposition_name(ServeDisposition disposition) {
  switch (disposition) {
    case ServeDisposition::Served:
      return "served";
    case ServeDisposition::NoPath:
      return "no_path";
    case ServeDisposition::Isolated:
      return "isolated";
    case ServeDisposition::Congested:
      return "congested";
    case ServeDisposition::RejectedCapacity:
      return "rejected_capacity";
    case ServeDisposition::DroppedDeadline:
      return "dropped_deadline";
  }
  return "unknown";
}

namespace {

ServeDisposition to_disposition(ServeStatus status) {
  switch (status) {
    case ServeStatus::Served:
      return ServeDisposition::Served;
    case ServeStatus::NoPath:
      return ServeDisposition::NoPath;
    case ServeStatus::Isolated:
      return ServeDisposition::Isolated;
  }
  return ServeDisposition::NoPath;
}

ServeDisposition to_disposition(em::EmStatus status) {
  switch (status) {
    case em::EmStatus::Served:
      return ServeDisposition::Served;
    case em::EmStatus::NoPath:
      return ServeDisposition::NoPath;
    case em::EmStatus::Isolated:
      return ServeDisposition::Isolated;
    case em::EmStatus::Congested:
      return ServeDisposition::Congested;
  }
  return ServeDisposition::NoPath;
}

/// The paper's instantaneous single-shot links behind the unified API.
class SingleShotEngine final : public ServingEngine {
 public:
  SingleShotEngine(const TopologyProvider& topology, const RequestBatch& batch,
                   net::CostMetric metric,
                   quantum::FidelityConvention convention,
                   SharedEpochTreeCache* shared_trees)
      : server_(topology, batch, metric, convention, shared_trees) {}

  [[nodiscard]] ServeStepResult serve_step(std::size_t step,
                                           double t) override {
    (void)step;
    const ServeResult sr = server_.serve_at(t);
    ServeStepResult out;
    out.outcome.issued = sr.total;
    out.outcome.served = sr.served;
    out.outcome.no_path = sr.unserved_no_path;
    out.outcome.isolated = sr.unserved_isolated;
    out.outcome.fidelity = sr.fidelity;
    out.outcome.transmissivity = sr.transmissivity;
    out.outcome.hops = sr.hops;
    out.requests.reserve(sr.outcomes.size());
    for (const RequestOutcome& o : sr.outcomes) {
      RequestRecord rec;
      rec.disposition = to_disposition(o.status);
      rec.transmissivity = o.transmissivity;
      rec.fidelity = o.fidelity;
      rec.hops = o.hops;
      rec.relay = o.relay;
      out.requests.push_back(rec);
    }
    return out;
  }

 private:
  SnapshotServer server_;
};

/// The entanglement-management layer (src/em) behind the unified API.
class EmEngine final : public ServingEngine {
 public:
  EmEngine(const TopologyProvider& topology, const RequestBatch& batch,
           const em::EmOptions& options,
           quantum::FidelityConvention convention,
           em::EmRouteSource* shared_routes)
      : server_(topology, batch, options, convention, shared_routes) {}

  [[nodiscard]] ServeStepResult serve_step(std::size_t step,
                                           double t) override {
    (void)step;
    const em::EmServeResult sr = server_.serve_at(t);
    ServeStepResult out;
    out.outcome.issued = sr.total;
    out.outcome.served = sr.served;
    out.outcome.no_path = sr.unserved_no_path;
    out.outcome.isolated = sr.unserved_isolated;
    out.outcome.congested = sr.unserved_congested;
    out.outcome.fidelity = sr.fidelity;
    out.outcome.transmissivity = sr.transmissivity;
    out.outcome.hops = sr.hops;
    out.em_enabled = true;
    out.em.swaps = sr.swaps;
    out.em.purification_rounds = sr.purification_rounds;
    out.em.pairs_consumed = sr.pairs_consumed;
    out.em.slo_met = sr.slo_met;
    out.em.spilled = sr.spilled;
    out.em.memory_occupancy = sr.memory_occupancy;
    out.em.swap_depth = sr.swap_depth;
    out.em.latency = sr.latency;
    out.requests.reserve(sr.outcomes.size());
    for (const em::EmOutcome& o : sr.outcomes) {
      RequestRecord rec;
      rec.disposition = to_disposition(o.status);
      rec.transmissivity = o.transmissivity;
      rec.fidelity = o.fidelity;
      rec.hops = o.hops;
      rec.relay = o.relay;
      rec.latency = o.latency;
      rec.has_em = true;
      rec.em.swaps = o.swaps;
      rec.em.swap_depth = o.swap_depth;
      rec.em.purification_rounds = o.purification_rounds;
      rec.em.pairs_consumed = o.pairs_consumed;
      rec.em.route_index = o.route_index;
      out.requests.push_back(rec);
    }
    return out;
  }

 private:
  EmSnapshotServer server_;
};

}  // namespace

std::unique_ptr<ServingEngine> make_serving_engine(
    const NetworkModel& model, const TopologyProvider& topology,
    const RequestBatch& batch, const ScenarioConfig& config,
    double step_interval, bool record_requests,
    const SharedServingCaches* shared) {
  SharedEpochTreeCache* shared_trees =
      shared != nullptr ? shared->tree_cache() : nullptr;
  if (config.traffic.enabled) {
    return std::make_unique<TrafficEngine>(model, topology, config.traffic,
                                           step_interval, record_requests,
                                           shared_trees);
  }
  if (config.em.enabled) {
    // Fixed-batch engines always record: the scenario's handover accounting
    // reads per-request relays regardless of tracing.
    return std::make_unique<EmEngine>(
        topology, batch, config.em, config.convention,
        shared != nullptr ? shared->em_route_cache() : nullptr);
  }
  return std::make_unique<SingleShotEngine>(topology, batch, config.metric,
                                            config.convention, shared_trees);
}

}  // namespace qntn::sim
