#include "sim/network_model.hpp"

#include "common/error.hpp"

namespace qntn::sim {

std::size_t NetworkModel::add_lan(const std::string& name,
                                  const std::vector<geo::Geodetic>& node_positions,
                                  const channel::OpticalTerminal& terminal) {
  QNTN_REQUIRE(!node_positions.empty(), "a LAN needs at least one node");
  QNTN_REQUIRE(satellites_.empty() && haps_.empty(),
               "add all LANs before HAPs and satellites (id stability)");
  const std::size_t lan = lans_.size();
  std::vector<net::NodeId> ids;
  ids.reserve(node_positions.size());
  for (std::size_t i = 0; i < node_positions.size(); ++i) {
    Node node;
    node.kind = NodeKind::Ground;
    node.name = name + "/" + std::to_string(i);
    node.lan = lan;
    node.position = node_positions[i];
    node.terminal = terminal;
    ids.push_back(nodes_.size());
    nodes_.push_back(std::move(node));
    fixed_ecef_.push_back(geo::geodetic_to_ecef(node_positions[i]));
  }
  lans_.push_back(std::move(ids));
  lan_names_.push_back(name);
  return lan;
}

net::NodeId NetworkModel::add_hap(const std::string& name,
                                  const geo::Geodetic& position,
                                  const channel::OpticalTerminal& terminal) {
  QNTN_REQUIRE(satellites_.empty(), "add HAPs before satellites (id stability)");
  Node node;
  node.kind = NodeKind::Hap;
  node.name = name;
  node.position = position;
  node.terminal = terminal;
  const net::NodeId id = nodes_.size();
  nodes_.push_back(std::move(node));
  fixed_ecef_.push_back(geo::geodetic_to_ecef(position));
  haps_.push_back(id);
  return id;
}

net::NodeId NetworkModel::add_satellite(const std::string& name,
                                        orbit::Ephemeris ephemeris,
                                        const channel::OpticalTerminal& terminal) {
  Node node;
  node.kind = NodeKind::Satellite;
  node.name = name;
  node.ephemeris_index = ephemerides_.size();
  node.terminal = terminal;
  const net::NodeId id = nodes_.size();
  nodes_.push_back(std::move(node));
  ephemerides_.push_back(std::move(ephemeris));
  satellites_.push_back(id);
  return id;
}

channel::Endpoint NetworkModel::endpoint_at(net::NodeId id, double t) const {
  QNTN_REQUIRE(id < nodes_.size(), "node id out of range");
  const Node& node = nodes_[id];
  if (node.kind == NodeKind::Satellite) {
    return channel::Endpoint::from_ecef(
        ephemerides_[node.ephemeris_index].position_ecef(t));
  }
  return {node.position, fixed_ecef_[id]};
}

const orbit::Ephemeris& NetworkModel::ephemeris(net::NodeId id) const {
  QNTN_REQUIRE(id < nodes_.size(), "node id out of range");
  const Node& node = nodes_[id];
  QNTN_REQUIRE(node.kind == NodeKind::Satellite, "node has no ephemeris");
  return ephemerides_[node.ephemeris_index];
}

}  // namespace qntn::sim
