#pragma once

#include "geo/sun.hpp"
#include "sim/topology.hpp"

/// \file daylight.hpp
/// Night-only operation of free-space links. Solar background swamps
/// single-photon detectors in daylight unless heavy spectral/spatial
/// filtering is used; Micius-class links operate at night. This decorator
/// removes FSO links whose ground endpoint is in daylight, turning the
/// paper's ideal full-day availability into the realistic night-gated one.

namespace qntn::sim {

struct DaylightPolicy {
  geo::SunModel sun{};
  /// Gate links with a ground endpoint (always the dominant background
  /// path; space-space links stay up).
  bool gate_ground_links = true;
  /// Also gate ground-HAP links (a HAP telescope looking *down* sees the
  /// bright Earth in daylight; looking up from the ground sees sky glow).
  bool gate_hap_links = true;
};

/// Topology decorator: FSO edges with a daylight ground endpoint are
/// removed; intra-LAN fiber links are never affected.
class DaylightGatedTopology final : public TopologyProvider {
 public:
  /// `base` and `model` must outlive this object.
  DaylightGatedTopology(const TopologyProvider& base, const NetworkModel& model,
                        DaylightPolicy policy);

  [[nodiscard]] net::Graph graph_at(double t) const override;

 private:
  const TopologyProvider& base_;
  const NetworkModel& model_;
  DaylightPolicy policy_;
};

}  // namespace qntn::sim
