#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "net/graph.hpp"

/// \file serving_engine.hpp
/// The unified serving API of the scenario loop (DESIGN.md §12). The three
/// serving modes — the paper's instantaneous single-shot links, the
/// entanglement-management layer (src/em), and the open-arrival traffic
/// engine — all answer the same question per snapshot ("what happened to
/// the requests issued against this topology?") but historically returned
/// three different result shapes. ServingEngine is the common interface:
/// a step index and snapshot time in, one ServeStepResult out, with a
/// single accounting identity every engine must satisfy:
///
///   issued = served + no_path + isolated + congested
///            + rejected_capacity + dropped_deadline
///
/// Engines are per-worker objects (mirroring sim::SnapshotServer): the
/// parallel scenario loop constructs one engine per chunk worker, and every
/// serve_step must be a pure function of (step, snapshot, config) so the
/// parallel and serial paths merge byte-identical results.

namespace qntn::sim {

/// Unified per-request disposition across all serving engines. The names
/// (serve_disposition_name) match the historical trace vocabulary of the
/// single-shot and em modes, so trace bytes are unchanged by the redesign.
enum class ServeDisposition : std::uint8_t {
  Served,
  NoPath,            ///< endpoints have links, but no route connects them
  Isolated,          ///< an endpoint has no links at all this snapshot
  Congested,         ///< em: routes exist, but no candidate's relays can pay
  RejectedCapacity,  ///< traffic: refused at admission (backlog full)
  DroppedDeadline,   ///< traffic: queued longer than the deadline
};

[[nodiscard]] std::string_view serve_disposition_name(
    ServeDisposition disposition);

/// The common accounting every engine returns per step. The reconciliation
/// identity (reconciles()) is part of the API contract and pinned by tests:
/// every issued request lands in exactly one terminal bucket.
struct ServeOutcome {
  std::size_t issued = 0;
  std::size_t served = 0;
  std::size_t no_path = 0;
  std::size_t isolated = 0;
  std::size_t congested = 0;          ///< em serving only
  std::size_t rejected_capacity = 0;  ///< traffic backpressure only
  std::size_t dropped_deadline = 0;   ///< traffic deadline drops only
  RunningStats fidelity;              ///< over served requests
  RunningStats transmissivity;        ///< over served requests
  RunningStats hops;                  ///< over served requests

  [[nodiscard]] bool reconciles() const {
    return issued == served + no_path + isolated + congested +
                         rejected_capacity + dropped_deadline;
  }
  [[nodiscard]] double served_fraction() const {
    return issued > 0
               ? static_cast<double>(served) / static_cast<double>(issued)
               : 0.0;
  }
};

/// Em-specific per-request detail (meaningful when RequestRecord::has_em).
struct EmRecordDetail {
  std::size_t swaps = 0;
  std::size_t swap_depth = 0;
  std::size_t purification_rounds = 0;
  std::size_t pairs_consumed = 0;
  std::size_t route_index = 0;
};

/// Per-request telemetry record. Fixed-batch engines (single-shot, em) fill
/// one record per batch request, in batch order, on every step — the
/// scenario's handover accounting needs them. The traffic engine fills one
/// record per arrival, in arrival order, only when asked to record (tracing
/// a million-request day would otherwise dominate memory).
struct RequestRecord {
  ServeDisposition disposition = ServeDisposition::NoPath;
  double transmissivity = 0.0;  ///< served only
  double fidelity = 0.0;        ///< served only
  std::size_t hops = 0;         ///< served only
  /// First intermediate node of the committed route; nullopt for direct
  /// paths. Drives the scenario's handover accounting.
  std::optional<net::NodeId> relay;
  /// Request endpoints; filled by the traffic engine (fixed-batch engines
  /// leave them 0 — the scenario reads endpoints from the batch instead).
  net::NodeId source = 0;
  net::NodeId destination = 0;
  double latency = 0.0;  ///< em heralding / traffic end-to-end [s]
  double waiting = 0.0;  ///< traffic queueing component [s]
  bool has_em = false;
  EmRecordDetail em;
};

/// Em per-step aggregates (mirrors em::EmServeResult).
struct EmStepStats {
  std::size_t swaps = 0;
  std::size_t purification_rounds = 0;
  std::size_t pairs_consumed = 0;
  std::size_t slo_met = 0;
  std::size_t spilled = 0;
  double memory_occupancy = 0.0;
  RunningStats swap_depth;
  RunningStats latency;
};

/// Traffic per-step aggregates: the latency/queue telemetry of one serving
/// window.
struct TrafficStepStats {
  RunningStats latency;  ///< arrival -> pair delivered, served requests [s]
  RunningStats waiting;  ///< queueing component [s]
  /// Per-served samples in service-start order, for percentile reporting.
  std::vector<double> latency_samples;
  std::vector<double> waiting_samples;
  std::size_t peak_queue_depth = 0;  ///< max backlog length in the window
  double peak_utilisation = 0.0;     ///< busiest node / capacity, in [0, 1]
};

/// Everything one engine step produces: the common accounting plus the
/// mode-specific extras the scenario folds into its result and trace.
struct ServeStepResult {
  ServeOutcome outcome;
  std::vector<RequestRecord> requests;
  bool em_enabled = false;
  EmStepStats em;
  bool traffic_enabled = false;
  TrafficStepStats traffic;
};

/// Per-worker serving engine: topology snapshot in, step outcome out. Not
/// thread-safe — the parallel scenario loop constructs one per worker.
class ServingEngine {
 public:
  virtual ~ServingEngine() = default;

  /// Serve scenario step `step` whose snapshot time is `t` [s]. Must be a
  /// pure function of (step, t, construction inputs): no cross-step state
  /// that changes results (caches that only speed things up are fine).
  [[nodiscard]] virtual ServeStepResult serve_step(std::size_t step,
                                                   double t) = 0;
};

class NetworkModel;
class TopologyProvider;
struct RequestBatch;
struct ScenarioConfig;
struct SharedServingCaches;

/// Build the engine the scenario config selects: traffic when
/// config.traffic.enabled, em when config.em.enabled, single-shot
/// otherwise. `step_interval` is the scenario's snapshot spacing (the
/// traffic engine's serving-window length); `record_requests` asks the
/// traffic engine for per-arrival records (fixed-batch engines always
/// record — the handover accounting needs them). Each parallel worker
/// calls this once; all referenced objects must outlive the engine.
/// `shared` (may be nullptr) is run_scenario's run-scoped cache bundle
/// (sim/epoch_cache.hpp); the same bundle must reach the serial path and
/// every parallel worker, which is what keeps them byte-identical.
[[nodiscard]] std::unique_ptr<ServingEngine> make_serving_engine(
    const NetworkModel& model, const TopologyProvider& topology,
    const RequestBatch& batch, const ScenarioConfig& config,
    double step_interval, bool record_requests,
    const SharedServingCaches* shared = nullptr);

}  // namespace qntn::sim
