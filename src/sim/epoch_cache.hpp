#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "em/serving.hpp"
#include "net/routing.hpp"
#include "sim/requests.hpp"
#include "sim/topology.hpp"

/// \file epoch_cache.hpp
/// Shared per-epoch route caches (DESIGN.md §13). The parallel scenario
/// engine used to give every chunk worker its own per-epoch caches — each
/// of 8 workers re-derived the same shortest-path trees and k-disjoint
/// candidate sets for every epoch its chunk touched, so the routing work
/// was *multiplied* by the thread count instead of divided. These caches
/// hoist that state to run scope: one instance per run_scenario call,
/// shared by the serial path and every chunk worker.
///
/// Concurrency discipline (the ContactPlanTopology pattern, plus one
/// mutex): the per-epoch tables are arrays of std::atomic pointers to
/// immutable values. Readers are lock-free (one acquire load). A miss takes
/// the build mutex, re-checks the slot (exactly one build per key ever —
/// the compute-once guarantee that keeps the obs counters deterministic),
/// computes the value, and publishes it with a release store. Values are
/// immutable after publication and owned by the cache.
///
/// Determinism: both caches are gated on eta-independent metrics, so every
/// cached value is a pure function of (epoch, key) — independent of which
/// worker computes it, from which snapshot time inside the epoch, and of
/// whether a tree was built from scratch or delta-repaired from a
/// neighbouring epoch (delta_update_tree is bit-identical to
/// canonical_tree; pinned by tests/sim/parallel_scenario_test).

namespace qntn::sim {

/// Shared per-epoch shortest-path trees for eta-independent metrics: the
/// single-shot and traffic engines' replacement for per-worker tree
/// scratch. Trees are *canonical* (net::canonical_tree) so that
/// delta-repaired and fully rebuilt trees coincide bit-for-bit.
class SharedEpochTreeCache {
 public:
  static constexpr std::size_t kNoEpoch = static_cast<std::size_t>(-1);
  /// Delta repairs are refused beyond this many open/close events between
  /// the donor and target epochs; the build then falls back to a full
  /// canonical rebuild (identical result, pinned by tests).
  static constexpr std::size_t kMaxDeltaPairs = 256;

  /// Borrows the topology; it must outlive the cache. Inactive (active() ==
  /// false, tree_for must not be called) unless the provider is
  /// epoch-partitioned and the metric is eta-independent.
  SharedEpochTreeCache(const TopologyProvider& topology,
                       net::CostMetric metric, std::size_t node_count);
  ~SharedEpochTreeCache();

  SharedEpochTreeCache(const SharedEpochTreeCache&) = delete;
  SharedEpochTreeCache& operator=(const SharedEpochTreeCache&) = delete;

  [[nodiscard]] bool active() const { return active_; }

  /// The canonical shortest-path tree of `source` on epoch `epoch`, whose
  /// snapshot graph is `graph`. Lock-free on a hit; a miss builds the tree
  /// once (delta-repairing from a previously built epoch of the same source
  /// when the event delta is small) and publishes it for every worker.
  /// Requires active() and a valid epoch; `graph` must be a snapshot of
  /// `epoch` (any snapshot time — the metric cannot see the etas).
  [[nodiscard]] const net::ShortestPathTree& tree_for(std::size_t epoch,
                                                      net::NodeId source,
                                                      const net::Graph& graph);

 private:
  struct EpochEntry {
    explicit EpochEntry(std::size_t node_count) : slots(node_count) {
      for (auto& slot : slots) slot.store(nullptr, std::memory_order_relaxed);
    }
    /// One published tree per source node; nullptr = not built yet.
    std::vector<std::atomic<const net::ShortestPathTree*>> slots;
  };

  /// Most recent tree built for a source, the delta-repair donor.
  struct LastBuilt {
    std::size_t epoch = kNoEpoch;
    const net::ShortestPathTree* tree = nullptr;
  };

  const TopologyProvider& topology_;
  net::CostMetric metric_;
  std::size_t node_count_ = 0;
  bool active_ = false;

  /// Per-epoch entries, published with release stores; readers only load.
  std::vector<std::atomic<EpochEntry*>> epochs_;

  /// Serialises builds (compute-once) and guards the build-side scratch.
  Mutex build_mutex_;
  std::vector<LastBuilt> last_built_ QNTN_GUARDED_BY(build_mutex_);
  std::vector<double> edge_costs_ QNTN_GUARDED_BY(build_mutex_);
  std::vector<net::ChangedPair> delta_pairs_ QNTN_GUARDED_BY(build_mutex_);
};

/// Shared per-epoch k-disjoint candidate routes for the entanglement
/// manager (em::EmRouteSource impl): the cross-worker replacement for
/// EntanglementManager's per-worker route cache. The candidate universe is
/// the batch's distinct (source, destination) pairs, fixed for the run.
class SharedEmRouteCache final : public em::EmRouteSource {
 public:
  /// Borrows the topology. Inactive unless the provider is
  /// epoch-partitioned and options.metric is eta-independent; routes_for
  /// then always returns nullptr and the managers fall back to their own
  /// caches.
  SharedEmRouteCache(const TopologyProvider& topology,
                     const RequestBatch& batch, const em::EmOptions& options);
  ~SharedEmRouteCache() override;

  SharedEmRouteCache(const SharedEmRouteCache&) = delete;
  SharedEmRouteCache& operator=(const SharedEmRouteCache&) = delete;

  [[nodiscard]] bool active() const { return active_; }

  [[nodiscard]] const std::vector<net::Route>* routes_for(
      const net::Graph& graph, net::NodeId source, net::NodeId destination,
      std::size_t epoch) override;

 private:
  struct EpochEntry {
    explicit EpochEntry(std::size_t pair_count) : slots(pair_count) {
      for (auto& slot : slots) slot.store(nullptr, std::memory_order_relaxed);
    }
    /// One published candidate set per batch pair; nullptr = not built yet.
    std::vector<std::atomic<const std::vector<net::Route>*>> slots;
  };

  const TopologyProvider& topology_;
  em::EmOptions options_;
  bool active_ = false;

  /// Distinct batch pairs -> slot index (immutable after construction).
  std::map<std::pair<net::NodeId, net::NodeId>, std::size_t> pair_slots_;

  std::vector<std::atomic<EpochEntry*>> epochs_;

  Mutex build_mutex_;
};

struct ScenarioConfig;

/// The run-scoped cache bundle run_scenario hands every serving engine
/// (serial and parallel paths alike — that is what keeps them
/// byte-identical). Members are null when the mode/metric cannot use them.
struct SharedServingCaches {
  /// Shared trees for the active mode's metric (single-shot: config.metric;
  /// traffic: config.traffic.metric); null in em mode.
  std::unique_ptr<SharedEpochTreeCache> trees;
  /// Shared em candidate routes; null unless em mode is active.
  std::unique_ptr<SharedEmRouteCache> em_routes;

  SharedServingCaches() = default;
  /// Instantiate whatever the config's serving mode can share.
  SharedServingCaches(const TopologyProvider& topology,
                      const RequestBatch& batch, const ScenarioConfig& config,
                      std::size_t node_count);

  /// The tree cache, or nullptr when absent/inactive.
  [[nodiscard]] SharedEpochTreeCache* tree_cache() const {
    return trees != nullptr && trees->active() ? trees.get() : nullptr;
  }
  /// The em route cache, or nullptr when absent/inactive.
  [[nodiscard]] SharedEmRouteCache* em_route_cache() const {
    return em_routes != nullptr && em_routes->active() ? em_routes.get()
                                                      : nullptr;
  }
};

}  // namespace qntn::sim
