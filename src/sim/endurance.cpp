#include "sim/endurance.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qntn::sim {

bool DutyCycle::active_at(double t) const {
  QNTN_REQUIRE(active_duration > 0.0, "active duration must be positive");
  QNTN_REQUIRE(downtime >= 0.0, "downtime must be non-negative");
  if (downtime == 0.0) return true;
  const double period = active_duration + downtime;
  double local = std::fmod(t - phase, period);
  if (local < 0.0) local += period;
  return local < active_duration;
}

double DutyCycle::availability() const {
  QNTN_REQUIRE(active_duration > 0.0, "active duration must be positive");
  return active_duration / (active_duration + downtime);
}

DutyCycledTopology::DutyCycledTopology(const TopologyProvider& base,
                                       std::vector<net::NodeId> affected_nodes,
                                       DutyCycle cycle)
    : base_(base), affected_(std::move(affected_nodes)), cycle_(cycle) {}

net::Graph DutyCycledTopology::graph_at(double t) const {
  net::Graph full = base_.graph_at(t);
  if (cycle_.active_at(t)) return full;

  net::Graph filtered;
  for (net::NodeId id = 0; id < full.node_count(); ++id) {
    filtered.add_node(full.name(id));
  }
  const auto is_down = [this](net::NodeId id) {
    return std::find(affected_.begin(), affected_.end(), id) != affected_.end();
  };
  for (const net::Edge& edge : full.edges()) {
    if (is_down(edge.a) || is_down(edge.b)) continue;
    filtered.add_edge(edge.a, edge.b, edge.transmissivity);
  }
  return filtered;
}

}  // namespace qntn::sim
