#include "net/graph.hpp"

#include <queue>

#include "common/error.hpp"

namespace qntn::net {

NodeId Graph::add_node(std::string name) {
  const NodeId id = names_.size();
  if (name.empty()) name = "node" + std::to_string(id);
  names_.push_back(std::move(name));
  adjacency_.emplace_back();
  return id;
}

void Graph::add_edge(NodeId a, NodeId b, double transmissivity) {
  QNTN_REQUIRE(a < node_count() && b < node_count(), "edge endpoint out of range");
  QNTN_REQUIRE(a != b, "self-loops are not allowed");
  QNTN_REQUIRE(transmissivity >= 0.0 && transmissivity <= 1.0,
               "transmissivity must be in [0, 1]");
  edges_.push_back({a, b, transmissivity});
  adjacency_[a].push_back({b, transmissivity});
  adjacency_[b].push_back({a, transmissivity});
}

bool Graph::connected(NodeId u, NodeId v) const {
  QNTN_REQUIRE(u < node_count() && v < node_count(), "node out of range");
  if (u == v) return true;
  std::vector<bool> seen(node_count(), false);
  std::queue<NodeId> frontier;
  frontier.push(u);
  seen[u] = true;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop();
    for (const Adjacency& adj : adjacency_[cur]) {
      if (adj.to == v) return true;
      if (!seen[adj.to]) {
        seen[adj.to] = true;
        frontier.push(adj.to);
      }
    }
  }
  return false;
}

std::vector<std::size_t> Graph::components() const {
  std::vector<std::size_t> label(node_count(), SIZE_MAX);
  std::size_t next = 0;
  for (NodeId start = 0; start < node_count(); ++start) {
    if (label[start] != SIZE_MAX) continue;
    const std::size_t comp = next++;
    std::queue<NodeId> frontier;
    frontier.push(start);
    label[start] = comp;
    while (!frontier.empty()) {
      const NodeId cur = frontier.front();
      frontier.pop();
      for (const Adjacency& adj : adjacency_[cur]) {
        if (label[adj.to] == SIZE_MAX) {
          label[adj.to] = comp;
          frontier.push(adj.to);
        }
      }
    }
  }
  return label;
}

}  // namespace qntn::net
