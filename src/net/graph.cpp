#include "net/graph.hpp"

#include <queue>

#include "common/error.hpp"

namespace qntn::net {

NodeId Graph::add_node(std::string name) {
  const NodeId id = names_.size();
  if (name.empty()) name = "node" + std::to_string(id);
  names_.push_back(std::move(name));
  adjacency_.emplace_back();
  return id;
}

void Graph::add_edge(NodeId a, NodeId b, double transmissivity) {
  QNTN_REQUIRE(a < node_count() && b < node_count(), "edge endpoint out of range");
  QNTN_REQUIRE(a != b, "self-loops are not allowed");
  QNTN_REQUIRE(transmissivity >= 0.0 && transmissivity <= 1.0,
               "transmissivity must be in [0, 1]");
  edges_.push_back({a, b, transmissivity});
  adjacency_[a].push_back({b, transmissivity});
  adjacency_[b].push_back({a, transmissivity});
  edge_slots_.emplace_back(adjacency_[a].size() - 1, adjacency_[b].size() - 1);
}

void Graph::set_edge_transmissivity(std::size_t edge_index,
                                    double transmissivity) {
  QNTN_REQUIRE(edge_index < edges_.size(), "edge index out of range");
  QNTN_REQUIRE(transmissivity >= 0.0 && transmissivity <= 1.0,
               "transmissivity must be in [0, 1]");
  Edge& edge = edges_[edge_index];
  edge.transmissivity = transmissivity;
  const auto [slot_a, slot_b] = edge_slots_[edge_index];
  adjacency_[edge.a][slot_a].transmissivity = transmissivity;
  adjacency_[edge.b][slot_b].transmissivity = transmissivity;
}

void Graph::truncate_edges(std::size_t count) {
  QNTN_REQUIRE(count <= edges_.size(), "truncate count exceeds edge count");
  // Removing in reverse add order keeps every victim's half-edges at the
  // tails of their adjacency lists, so each removal is two pop_backs.
  while (edges_.size() > count) {
    const Edge& edge = edges_.back();
    adjacency_[edge.a].pop_back();
    adjacency_[edge.b].pop_back();
    edges_.pop_back();
    edge_slots_.pop_back();
  }
}

bool Graph::connected(NodeId u, NodeId v) const {
  QNTN_REQUIRE(u < node_count() && v < node_count(), "node out of range");
  if (u == v) return true;
  std::vector<bool> seen(node_count(), false);
  std::queue<NodeId> frontier;
  frontier.push(u);
  seen[u] = true;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop();
    for (const Adjacency& adj : adjacency_[cur]) {
      if (adj.to == v) return true;
      if (!seen[adj.to]) {
        seen[adj.to] = true;
        frontier.push(adj.to);
      }
    }
  }
  return false;
}

std::vector<std::size_t> Graph::components() const {
  std::vector<std::size_t> label(node_count(), SIZE_MAX);
  std::size_t next = 0;
  for (NodeId start = 0; start < node_count(); ++start) {
    if (label[start] != SIZE_MAX) continue;
    const std::size_t comp = next++;
    std::queue<NodeId> frontier;
    frontier.push(start);
    label[start] = comp;
    while (!frontier.empty()) {
      const NodeId cur = frontier.front();
      frontier.pop();
      for (const Adjacency& adj : adjacency_[cur]) {
        if (label[adj.to] == SIZE_MAX) {
          label[adj.to] = comp;
          frontier.push(adj.to);
        }
      }
    }
  }
  return label;
}

}  // namespace qntn::net
