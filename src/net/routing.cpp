#include "net/routing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/error.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"

namespace qntn::net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Highest-transmissivity edge between u and v (parallel edges allowed);
/// 0 if not adjacent. The best edge under every supported metric is the
/// max-eta edge, since all metrics are decreasing in eta.
double best_edge_eta(const Graph& graph, NodeId u, NodeId v) {
  double best = 0.0;
  bool found = false;
  for (const Adjacency& adj : graph.neighbors(u)) {
    if (adj.to == v) {
      best = std::max(best, adj.transmissivity);
      found = true;
    }
  }
  QNTN_REQUIRE(found, "route step between non-adjacent nodes");
  return best;
}

double path_transmissivity(const Graph& graph, const std::vector<NodeId>& path) {
  double eta = 1.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    eta *= best_edge_eta(graph, path[i], path[i + 1]);
  }
  return eta;
}

}  // namespace

double edge_cost(double transmissivity, CostMetric metric) {
  QNTN_REQUIRE(transmissivity >= 0.0 && transmissivity <= 1.0,
               "transmissivity must be in [0, 1]");
  switch (metric) {
    case CostMetric::InverseEta:
      return 1.0 / (transmissivity + kRoutingEpsilon);
    case CostMetric::NegLogEta:
      return -std::log(std::clamp(transmissivity, kRoutingEpsilon, 1.0));
    case CostMetric::HopCount:
      return 1.0;
  }
  throw PreconditionError("unknown cost metric");
}

DistanceVectorRouter::DistanceVectorRouter(const Graph& graph, CostMetric metric)
    : graph_(graph), metric_(metric) {
  const std::size_t n = graph.node_count();
  QNTN_REQUIRE(n > 0, "routing over an empty graph");

  // INITIALIZE: cost 0 to self, edge cost to adjacent nodes, infinity else.
  tables_.assign(n, std::vector<RoutingEntry>(n, {kInf, std::nullopt}));
  for (NodeId node = 0; node < n; ++node) {
    tables_[node][node] = {0.0, node};
    for (const Adjacency& adj : graph.neighbors(node)) {
      const double c = edge_cost(adj.transmissivity, metric_);
      if (c < tables_[node][adj.to].cost) {
        tables_[node][adj.to] = {c, adj.to};
      }
    }
  }

  // Main loop: N-1 sweeps; UPDATE relaxes every node's table against the
  // current tables of the edge endpoints (Gauss-Seidel order, mirroring the
  // paper's note that all tables are accessible within one process).
  for (std::size_t round = 0; round + 1 < n; ++round) {
    bool changed = false;
    for (NodeId node = 0; node < n; ++node) {
      std::vector<RoutingEntry>& table = tables_[node];
      for (const Edge& e : graph_.edges()) {
        // Relax node->...->v->...->u for both orientations of the edge.
        const auto relax = [&](NodeId u, NodeId v) {
          const double via_cost = table[v].cost + tables_[v][u].cost;
          if (via_cost < table[u].cost) {
            table[u] = {via_cost, v};
            changed = true;
          }
        };
        relax(e.a, e.b);
        relax(e.b, e.a);
      }
    }
    if (!changed) break;
  }
}

const std::vector<RoutingEntry>& DistanceVectorRouter::table(NodeId node) const {
  QNTN_REQUIRE(node < tables_.size(), "node out of range");
  return tables_[node];
}

std::optional<Route> DistanceVectorRouter::route(NodeId src, NodeId dst) const {
  QNTN_REQUIRE(src < tables_.size() && dst < tables_.size(), "node out of range");
  // Expand the via-chain: R[src][dst].via = v means "reach v first, then
  // follow v's table to dst". Depth is bounded by the node count; deeper
  // recursion indicates an inconsistent table and is reported as a failure.
  const std::size_t n = tables_.size();
  std::vector<NodeId> path;
  // Iterative expansion with an explicit work stack of (from, to) segments.
  struct Segment {
    NodeId from;
    NodeId to;
  };
  std::vector<Segment> stack{{src, dst}};
  path.push_back(src);
  std::size_t guard = 0;
  while (!stack.empty()) {
    if (++guard > 4 * n * n) return std::nullopt;  // inconsistent tables
    const Segment seg = stack.back();
    stack.pop_back();
    if (seg.from == seg.to) continue;
    const RoutingEntry& entry = tables_[seg.from][seg.to];
    if (!entry.via.has_value()) return std::nullopt;  // unreachable
    const NodeId via = *entry.via;
    if (via == seg.to) {
      path.push_back(seg.to);  // direct edge
      continue;
    }
    // Process (from -> via) first, then (via -> to): push in reverse order.
    stack.push_back({via, seg.to});
    stack.push_back({seg.from, via});
  }
  Route out;
  out.path = std::move(path);
  out.cost = tables_[src][dst].cost;
  out.transmissivity = path_transmissivity(graph_, out.path);
  return out;
}

void compute_edge_costs(const Graph& graph, CostMetric metric,
                        std::vector<double>& out) {
  out.clear();
  out.reserve(graph.edge_count());
  for (const Edge& e : graph.edges()) {
    out.push_back(edge_cost(e.transmissivity, metric));
  }
}

ShortestPathTree bellman_ford_tree(const Graph& graph, NodeId src,
                                   const std::vector<double>& edge_costs) {
  QNTN_REQUIRE(src < graph.node_count(), "source out of range");
  QNTN_REQUIRE(edge_costs.size() == graph.edge_count(),
               "edge cost buffer does not match the graph");
  obs::count("net.bf_trees");
  const obs::Span span("net.bf_tree", graph.node_count());
  const std::size_t n = graph.node_count();
  ShortestPathTree tree{std::vector<double>(n, kInf),
                        std::vector<std::optional<NodeId>>(n)};
  tree.cost[src] = 0.0;
  const std::vector<Edge>& edges = graph.edges();
  std::size_t rounds = 0;
  for (std::size_t round = 0; round + 1 < n; ++round) {
    ++rounds;
    bool changed = false;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const Edge& e = edges[i];
      const double c = edge_costs[i];
      if (tree.cost[e.a] + c < tree.cost[e.b]) {
        tree.cost[e.b] = tree.cost[e.a] + c;
        tree.previous[e.b] = e.a;
        changed = true;
      }
      if (tree.cost[e.b] + c < tree.cost[e.a]) {
        tree.cost[e.a] = tree.cost[e.b] + c;
        tree.previous[e.a] = e.b;
        changed = true;
      }
    }
    if (!changed) break;
  }
  obs::count("net.bf_rounds", rounds);
  return tree;
}

ShortestPathTree bellman_ford_tree(const Graph& graph, NodeId src,
                                   CostMetric metric) {
  // Price every edge once up front: edge_cost is pure in (eta, metric), so
  // hoisting it out of the relaxation rounds (where it used to run per edge
  // per round — a std::log for NegLogEta) changes no result bit.
  std::vector<double> costs;
  compute_edge_costs(graph, metric, costs);
  return bellman_ford_tree(graph, src, costs);
}

std::optional<Route> route_from_tree(const Graph& graph,
                                     const ShortestPathTree& tree, NodeId src,
                                     NodeId dst) {
  if (tree.cost[dst] == kInf) return std::nullopt;
  Route out;
  NodeId cur = dst;
  out.path.push_back(cur);
  while (cur != src) {
    QNTN_REQUIRE(tree.previous[cur].has_value(), "broken shortest-path tree");
    cur = *tree.previous[cur];
    out.path.push_back(cur);
    QNTN_REQUIRE(out.path.size() <= graph.node_count(), "cycle in tree");
  }
  std::reverse(out.path.begin(), out.path.end());
  out.cost = tree.cost[dst];
  out.transmissivity = path_transmissivity(graph, out.path);
  return out;
}

std::optional<Route> bellman_ford(const Graph& graph, NodeId src, NodeId dst,
                                  CostMetric metric) {
  QNTN_REQUIRE(dst < graph.node_count(), "destination out of range");
  const ShortestPathTree tree = bellman_ford_tree(graph, src, metric);
  return route_from_tree(graph, tree, src, dst);
}

std::optional<Route> dijkstra(const Graph& graph, NodeId src, NodeId dst,
                              CostMetric metric) {
  QNTN_REQUIRE(src < graph.node_count() && dst < graph.node_count(),
               "node out of range");
  obs::count("net.dijkstra_calls");
  const obs::Span span("net.dijkstra", graph.node_count());
  const std::size_t n = graph.node_count();
  std::vector<double> cost(n, kInf);
  std::vector<std::optional<NodeId>> previous(n);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  cost[src] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [c, u] = heap.top();
    heap.pop();
    if (c > cost[u]) continue;  // stale entry
    if (u == dst) break;
    for (const Adjacency& adj : graph.neighbors(u)) {
      const double nc = c + edge_cost(adj.transmissivity, metric);
      if (nc < cost[adj.to]) {
        cost[adj.to] = nc;
        previous[adj.to] = u;
        heap.emplace(nc, adj.to);
      }
    }
  }
  ShortestPathTree tree{std::move(cost), std::move(previous)};
  return route_from_tree(graph, tree, src, dst);
}

}  // namespace qntn::net
