#include "net/routing.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>

#include "common/error.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"

namespace qntn::net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Highest-transmissivity edge between u and v (parallel edges allowed);
/// 0 if not adjacent. The best edge under every supported metric is the
/// max-eta edge, since all metrics are decreasing in eta.
double best_edge_eta(const Graph& graph, NodeId u, NodeId v) {
  double best = 0.0;
  bool found = false;
  for (const Adjacency& adj : graph.neighbors(u)) {
    if (adj.to == v) {
      best = std::max(best, adj.transmissivity);
      found = true;
    }
  }
  QNTN_REQUIRE(found, "route step between non-adjacent nodes");
  return best;
}

double path_transmissivity(const Graph& graph, const std::vector<NodeId>& path) {
  double eta = 1.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    eta *= best_edge_eta(graph, path[i], path[i + 1]);
  }
  return eta;
}

}  // namespace

double edge_cost(double transmissivity, CostMetric metric) {
  QNTN_REQUIRE(transmissivity >= 0.0 && transmissivity <= 1.0,
               "transmissivity must be in [0, 1]");
  switch (metric) {
    case CostMetric::InverseEta:
      return 1.0 / (transmissivity + kRoutingEpsilon);
    case CostMetric::NegLogEta:
      return -std::log(std::clamp(transmissivity, kRoutingEpsilon, 1.0));
    case CostMetric::HopCount:
      return 1.0;
  }
  throw PreconditionError("unknown cost metric");
}

DistanceVectorRouter::DistanceVectorRouter(const Graph& graph, CostMetric metric)
    : graph_(graph), metric_(metric) {
  const std::size_t n = graph.node_count();
  QNTN_REQUIRE(n > 0, "routing over an empty graph");

  // INITIALIZE: cost 0 to self, edge cost to adjacent nodes, infinity else.
  tables_.assign(n, std::vector<RoutingEntry>(n, {kInf, std::nullopt}));
  for (NodeId node = 0; node < n; ++node) {
    tables_[node][node] = {0.0, node};
    for (const Adjacency& adj : graph.neighbors(node)) {
      const double c = edge_cost(adj.transmissivity, metric_);
      if (c < tables_[node][adj.to].cost) {
        tables_[node][adj.to] = {c, adj.to};
      }
    }
  }

  // Main loop: N-1 sweeps; UPDATE relaxes every node's table against the
  // current tables of the edge endpoints (Gauss-Seidel order, mirroring the
  // paper's note that all tables are accessible within one process).
  for (std::size_t round = 0; round + 1 < n; ++round) {
    bool changed = false;
    for (NodeId node = 0; node < n; ++node) {
      std::vector<RoutingEntry>& table = tables_[node];
      for (const Edge& e : graph_.edges()) {
        // Relax node->...->v->...->u for both orientations of the edge.
        const auto relax = [&](NodeId u, NodeId v) {
          const double via_cost = table[v].cost + tables_[v][u].cost;
          if (via_cost < table[u].cost) {
            table[u] = {via_cost, v};
            changed = true;
          }
        };
        relax(e.a, e.b);
        relax(e.b, e.a);
      }
    }
    if (!changed) break;
  }
}

const std::vector<RoutingEntry>& DistanceVectorRouter::table(NodeId node) const {
  QNTN_REQUIRE(node < tables_.size(), "node out of range");
  return tables_[node];
}

std::optional<Route> DistanceVectorRouter::route(NodeId src, NodeId dst) const {
  QNTN_REQUIRE(src < tables_.size() && dst < tables_.size(), "node out of range");
  // Expand the via-chain: R[src][dst].via = v means "reach v first, then
  // follow v's table to dst". Depth is bounded by the node count; deeper
  // recursion indicates an inconsistent table and is reported as a failure.
  const std::size_t n = tables_.size();
  std::vector<NodeId> path;
  // Iterative expansion with an explicit work stack of (from, to) segments.
  struct Segment {
    NodeId from;
    NodeId to;
  };
  std::vector<Segment> stack{{src, dst}};
  path.push_back(src);
  std::size_t guard = 0;
  while (!stack.empty()) {
    if (++guard > 4 * n * n) return std::nullopt;  // inconsistent tables
    const Segment seg = stack.back();
    stack.pop_back();
    if (seg.from == seg.to) continue;
    const RoutingEntry& entry = tables_[seg.from][seg.to];
    if (!entry.via.has_value()) return std::nullopt;  // unreachable
    const NodeId via = *entry.via;
    if (via == seg.to) {
      path.push_back(seg.to);  // direct edge
      continue;
    }
    // Process (from -> via) first, then (via -> to): push in reverse order.
    stack.push_back({via, seg.to});
    stack.push_back({seg.from, via});
  }
  Route out;
  out.path = std::move(path);
  out.cost = tables_[src][dst].cost;
  out.transmissivity = path_transmissivity(graph_, out.path);
  return out;
}

void compute_edge_costs(const Graph& graph, CostMetric metric,
                        std::vector<double>& out) {
  out.clear();
  out.reserve(graph.edge_count());
  for (const Edge& e : graph.edges()) {
    out.push_back(edge_cost(e.transmissivity, metric));
  }
}

ShortestPathTree bellman_ford_tree(const Graph& graph, NodeId src,
                                   const std::vector<double>& edge_costs) {
  QNTN_REQUIRE(src < graph.node_count(), "source out of range");
  QNTN_REQUIRE(edge_costs.size() == graph.edge_count(),
               "edge cost buffer does not match the graph");
  obs::count("net.bf_trees");
  const obs::Span span("net.bf_tree", graph.node_count());
  const std::size_t n = graph.node_count();
  ShortestPathTree tree{std::vector<double>(n, kInf),
                        std::vector<std::optional<NodeId>>(n)};
  tree.cost[src] = 0.0;
  const std::vector<Edge>& edges = graph.edges();
  std::size_t rounds = 0;
  for (std::size_t round = 0; round + 1 < n; ++round) {
    ++rounds;
    bool changed = false;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const Edge& e = edges[i];
      const double c = edge_costs[i];
      if (tree.cost[e.a] + c < tree.cost[e.b]) {
        tree.cost[e.b] = tree.cost[e.a] + c;
        tree.previous[e.b] = e.a;
        changed = true;
      }
      if (tree.cost[e.b] + c < tree.cost[e.a]) {
        tree.cost[e.a] = tree.cost[e.b] + c;
        tree.previous[e.a] = e.b;
        changed = true;
      }
    }
    if (!changed) break;
  }
  obs::count("net.bf_rounds", rounds);
  return tree;
}

ShortestPathTree bellman_ford_tree(const Graph& graph, NodeId src,
                                   CostMetric metric) {
  // Price every edge once up front: edge_cost is pure in (eta, metric), so
  // hoisting it out of the relaxation rounds (where it used to run per edge
  // per round — a std::log for NegLogEta) changes no result bit.
  std::vector<double> costs;
  compute_edge_costs(graph, metric, costs);
  return bellman_ford_tree(graph, src, costs);
}

namespace {

/// Rewrite tree.previous with the canonical predecessors for tree.cost:
/// scan graph.edges() in index order and give every non-source node with a
/// finite cost the first edge that is exactly tight (cost[u] + c ==
/// cost[v]), checking a->b before b->a within each edge. Predecessor costs
/// strictly decrease along the chain (positive edge costs), so the result
/// is acyclic; every finite non-source node has a tight edge by
/// construction of the costs.
void assign_canonical_predecessors(const Graph& graph, NodeId src,
                                   const std::vector<double>& edge_costs,
                                   ShortestPathTree& tree) {
  std::fill(tree.previous.begin(), tree.previous.end(), std::nullopt);
  const std::vector<Edge>& edges = graph.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    const double c = edge_costs[i];
    if (e.b != src && !tree.previous[e.b].has_value() &&
        tree.cost[e.a] < kInf && tree.cost[e.a] + c == tree.cost[e.b]) {
      tree.previous[e.b] = e.a;
    }
    if (e.a != src && !tree.previous[e.a].has_value() &&
        tree.cost[e.b] < kInf && tree.cost[e.b] + c == tree.cost[e.a]) {
      tree.previous[e.a] = e.b;
    }
  }
}

}  // namespace

ShortestPathTree canonical_tree(const Graph& graph, NodeId src,
                                const std::vector<double>& edge_costs) {
  ShortestPathTree tree = bellman_ford_tree(graph, src, edge_costs);
  assign_canonical_predecessors(graph, src, edge_costs, tree);
  return tree;
}

ShortestPathTree delta_update_tree(const Graph& graph, NodeId src,
                                   const std::vector<double>& edge_costs,
                                   const ShortestPathTree& base,
                                   const std::vector<ChangedPair>& changed) {
  const std::size_t n = graph.node_count();
  QNTN_REQUIRE(src < n, "source out of range");
  QNTN_REQUIRE(base.cost.size() == n && base.previous.size() == n,
               "base tree does not match the graph");
  QNTN_REQUIRE(edge_costs.size() == graph.edge_count(),
               "edge cost buffer does not match the graph");
  obs::count("net.tree_delta_repairs");
  const obs::Span span("net.tree_delta", changed.size());

  ShortestPathTree tree = base;

  // Membership test for "pair {u, v} changed" (order-insensitive).
  const auto pair_key = [n](NodeId u, NodeId v) {
    return std::min(u, v) * n + std::max(u, v);
  };
  std::vector<std::size_t> changed_keys;
  changed_keys.reserve(changed.size());
  for (const ChangedPair& p : changed) {
    changed_keys.push_back(pair_key(p.a, p.b));
  }
  std::sort(changed_keys.begin(), changed_keys.end());
  const auto pair_changed = [&](NodeId u, NodeId v) {
    return std::binary_search(changed_keys.begin(), changed_keys.end(),
                              pair_key(u, v));
  };

  // 1. Invalidate the subtree hanging off every tree edge whose pair
  // changed: those nodes' base costs may be stale in either direction.
  std::vector<std::vector<NodeId>> children(n);
  for (NodeId b = 0; b < n; ++b) {
    if (tree.previous[b].has_value()) children[*tree.previous[b]].push_back(b);
  }
  std::vector<char> dirty(n, 0);
  std::vector<NodeId> stack;
  for (NodeId b = 0; b < n; ++b) {
    if (tree.previous[b].has_value() && pair_changed(*tree.previous[b], b)) {
      stack.push_back(b);
    }
  }
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (dirty[u] != 0) continue;
    dirty[u] = 1;
    tree.cost[u] = kInf;
    for (const NodeId child : children[u]) stack.push_back(child);
  }

  // Incidence index over the *new* graph (adjacency lists carry no edge
  // ids, and the worklist needs per-node edges with their costs).
  const std::vector<Edge>& edges = graph.edges();
  std::vector<std::vector<std::uint32_t>> incident(n);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    incident[edges[i].a].push_back(static_cast<std::uint32_t>(i));
    incident[edges[i].b].push_back(static_cast<std::uint32_t>(i));
  }

  // 2. Seed the worklist with every node whose outgoing relaxations could
  // change: finite-cost nodes bordering the invalidated region (they
  // re-grow it) and finite-cost endpoints of changed pairs (an opened link
  // can shorten paths without invalidating anything).
  std::vector<char> queued(n, 0);
  std::vector<NodeId> queue;
  const auto enqueue = [&](NodeId u) {
    if (queued[u] == 0 && tree.cost[u] < kInf) {
      queued[u] = 1;
      queue.push_back(u);
    }
  };
  for (NodeId u = 0; u < n; ++u) {
    if (dirty[u] == 0) continue;
    for (const std::uint32_t e : incident[u]) {
      enqueue(edges[e].a == u ? edges[e].b : edges[e].a);
    }
  }
  for (const ChangedPair& p : changed) {
    if (p.a < n) enqueue(p.a);
    if (p.b < n) enqueue(p.b);
  }

  // 3. Worklist relaxation (SPFA) until fixpoint: costs only decrease, and
  // the seed argument in DESIGN.md §13 shows the fixpoint equals the full
  // recompute's costs.
  while (!queue.empty()) {
    const NodeId u = queue.back();
    queue.pop_back();
    queued[u] = 0;
    const double cu = tree.cost[u];
    for (const std::uint32_t e : incident[u]) {
      const NodeId v = edges[e].a == u ? edges[e].b : edges[e].a;
      const double nc = cu + edge_costs[e];
      if (nc < tree.cost[v]) {
        tree.cost[v] = nc;
        if (queued[v] == 0) {
          queued[v] = 1;
          queue.push_back(v);
        }
      }
    }
  }

  // 4. Canonical predecessors over the repaired costs: bit-identical to the
  // full canonical rebuild whenever the costs are.
  assign_canonical_predecessors(graph, src, edge_costs, tree);
  return tree;
}

std::optional<Route> route_from_tree(const Graph& graph,
                                     const ShortestPathTree& tree, NodeId src,
                                     NodeId dst) {
  if (tree.cost[dst] == kInf) return std::nullopt;
  Route out;
  NodeId cur = dst;
  out.path.push_back(cur);
  while (cur != src) {
    QNTN_REQUIRE(tree.previous[cur].has_value(), "broken shortest-path tree");
    cur = *tree.previous[cur];
    out.path.push_back(cur);
    QNTN_REQUIRE(out.path.size() <= graph.node_count(), "cycle in tree");
  }
  std::reverse(out.path.begin(), out.path.end());
  out.cost = tree.cost[dst];
  out.transmissivity = path_transmissivity(graph, out.path);
  return out;
}

std::optional<Route> bellman_ford(const Graph& graph, NodeId src, NodeId dst,
                                  CostMetric metric) {
  QNTN_REQUIRE(dst < graph.node_count(), "destination out of range");
  const ShortestPathTree tree = bellman_ford_tree(graph, src, metric);
  return route_from_tree(graph, tree, src, dst);
}

std::optional<Route> dijkstra(const Graph& graph, NodeId src, NodeId dst,
                              CostMetric metric) {
  QNTN_REQUIRE(src < graph.node_count() && dst < graph.node_count(),
               "node out of range");
  obs::count("net.dijkstra_calls");
  const obs::Span span("net.dijkstra", graph.node_count());
  const std::size_t n = graph.node_count();
  std::vector<double> cost(n, kInf);
  std::vector<std::optional<NodeId>> previous(n);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  cost[src] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [c, u] = heap.top();
    heap.pop();
    if (c > cost[u]) continue;  // stale entry
    if (u == dst) break;
    for (const Adjacency& adj : graph.neighbors(u)) {
      const double nc = c + edge_cost(adj.transmissivity, metric);
      if (nc < cost[adj.to]) {
        cost[adj.to] = nc;
        previous[adj.to] = u;
        heap.emplace(nc, adj.to);
      }
    }
  }
  ShortestPathTree tree{std::move(cost), std::move(previous)};
  return route_from_tree(graph, tree, src, dst);
}

}  // namespace qntn::net
