#include "net/kpaths.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "common/error.hpp"

namespace qntn::net {

namespace {

/// Dijkstra on `graph` with some nodes and edges masked out. Edges are
/// identified by their endpoints plus transmissivity (sufficient here:
/// masking removes all parallel edges of a spur, which only prunes
/// duplicates of the same path prefix).
std::optional<Route> masked_dijkstra(const Graph& graph, NodeId src, NodeId dst,
                                     CostMetric metric,
                                     const std::set<NodeId>& banned_nodes,
                                     const std::set<std::pair<NodeId, NodeId>>&
                                         banned_edges) {
  const std::size_t n = graph.node_count();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> cost(n, kInf);
  std::vector<std::optional<NodeId>> previous(n);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  if (banned_nodes.count(src) != 0 || banned_nodes.count(dst) != 0) {
    return std::nullopt;
  }
  cost[src] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [c, u] = heap.top();
    heap.pop();
    if (c > cost[u]) continue;
    if (u == dst) break;
    for (const Adjacency& adj : graph.neighbors(u)) {
      if (banned_nodes.count(adj.to) != 0) continue;
      if (banned_edges.count(std::make_pair(std::min(u, adj.to),
                                            std::max(u, adj.to))) != 0) {
        continue;
      }
      const double nc = c + edge_cost(adj.transmissivity, metric);
      if (nc < cost[adj.to]) {
        cost[adj.to] = nc;
        previous[adj.to] = u;
        heap.emplace(nc, adj.to);
      }
    }
  }
  if (cost[dst] == kInf) return std::nullopt;
  Route out;
  NodeId cur = dst;
  out.path.push_back(cur);
  while (cur != src) {
    cur = *previous[cur];
    out.path.push_back(cur);
  }
  std::reverse(out.path.begin(), out.path.end());
  out.cost = cost[dst];
  out.transmissivity = 1.0;
  for (std::size_t i = 0; i + 1 < out.path.size(); ++i) {
    double best = 0.0;
    for (const Adjacency& adj : graph.neighbors(out.path[i])) {
      if (adj.to == out.path[i + 1]) best = std::max(best, adj.transmissivity);
    }
    out.transmissivity *= best;
  }
  return out;
}

}  // namespace

std::vector<Route> k_shortest_paths(const Graph& graph, NodeId src, NodeId dst,
                                    std::size_t k, CostMetric metric) {
  QNTN_REQUIRE(src < graph.node_count() && dst < graph.node_count(),
               "node out of range");
  QNTN_REQUIRE(k > 0, "k must be positive");
  std::vector<Route> accepted;
  const auto first = masked_dijkstra(graph, src, dst, metric, {}, {});
  if (!first) return accepted;
  accepted.push_back(*first);

  // Candidate pool ordered by cost.
  auto cmp = [](const Route& a, const Route& b) { return a.cost > b.cost; };
  std::vector<Route> candidates;

  while (accepted.size() < k) {
    const Route& last = accepted.back();
    // Spur from every node of the previous path except the terminal.
    for (std::size_t i = 0; i + 1 < last.path.size(); ++i) {
      const NodeId spur = last.path[i];
      std::vector<NodeId> root(last.path.begin(),
                               last.path.begin() +
                                   static_cast<std::ptrdiff_t>(i + 1));

      std::set<std::pair<NodeId, NodeId>> banned_edges;
      for (const Route& p : accepted) {
        if (p.path.size() > i + 1 &&
            std::equal(root.begin(), root.end(), p.path.begin())) {
          banned_edges.insert({std::min(p.path[i], p.path[i + 1]),
                               std::max(p.path[i], p.path[i + 1])});
        }
      }
      std::set<NodeId> banned_nodes(root.begin(), root.end());
      banned_nodes.erase(spur);

      const auto spur_route =
          masked_dijkstra(graph, spur, dst, metric, banned_nodes, banned_edges);
      if (!spur_route) continue;

      Route total;
      total.path = root;
      total.path.insert(total.path.end(), spur_route->path.begin() + 1,
                        spur_route->path.end());
      double cost = spur_route->cost;
      double eta = spur_route->transmissivity;
      for (std::size_t j = 0; j + 1 < root.size(); ++j) {
        double best = 0.0;
        for (const Adjacency& adj : graph.neighbors(root[j])) {
          if (adj.to == root[j + 1]) best = std::max(best, adj.transmissivity);
        }
        cost += edge_cost(best, metric);
        eta *= best;
      }
      total.cost = cost;
      total.transmissivity = eta;

      const auto same_path = [&total](const Route& r) {
        return r.path == total.path;
      };
      if (std::none_of(accepted.begin(), accepted.end(), same_path) &&
          std::none_of(candidates.begin(), candidates.end(), same_path)) {
        candidates.push_back(std::move(total));
        std::push_heap(candidates.begin(), candidates.end(), cmp);
      }
    }
    if (candidates.empty()) break;
    std::pop_heap(candidates.begin(), candidates.end(), cmp);
    accepted.push_back(std::move(candidates.back()));
    candidates.pop_back();
  }
  return accepted;
}

std::vector<Route> k_disjoint_paths(const Graph& graph, NodeId src, NodeId dst,
                                    std::size_t k, CostMetric metric) {
  QNTN_REQUIRE(src < graph.node_count() && dst < graph.node_count(),
               "node out of range");
  QNTN_REQUIRE(k > 0, "k must be positive");
  std::vector<Route> accepted;
  std::set<NodeId> banned_nodes;
  std::set<std::pair<NodeId, NodeId>> banned_edges;
  while (accepted.size() < k) {
    const auto route =
        masked_dijkstra(graph, src, dst, metric, banned_nodes, banned_edges);
    if (!route) break;
    for (std::size_t i = 1; i + 1 < route->path.size(); ++i) {
      banned_nodes.insert(route->path[i]);
    }
    if (route->path.size() == 2) {
      // A direct route has no interior to ban; ban the edge itself so at
      // most one direct src-dst route is accepted (parallel edges are
      // duplicates of the same physical link here).
      banned_edges.insert({std::min(src, dst), std::max(src, dst)});
    }
    accepted.push_back(std::move(*route));
  }
  return accepted;
}

double path_diversity(const std::vector<Route>& routes) {
  if (routes.size() < 2) return 1.0;
  std::size_t shared = 0;
  std::size_t total = 0;
  for (std::size_t a = 0; a < routes.size(); ++a) {
    for (std::size_t b = a + 1; b < routes.size(); ++b) {
      const auto interior = [](const Route& r) {
        return std::set<NodeId>(r.path.begin() + 1, r.path.end() - 1);
      };
      const std::set<NodeId> ia = interior(routes[a]);
      const std::set<NodeId> ib = interior(routes[b]);
      std::vector<NodeId> common;
      std::set_intersection(ia.begin(), ia.end(), ib.begin(), ib.end(),
                            std::back_inserter(common));
      shared += common.size();
      total += std::max(ia.size(), ib.size());
    }
  }
  if (total == 0) return 1.0;
  return 1.0 - static_cast<double>(shared) / static_cast<double>(total);
}

}  // namespace qntn::net
