#pragma once

#include <vector>

#include "net/routing.hpp"

/// \file kpaths.hpp
/// K-shortest loopless paths (Yen's algorithm) on the transmissivity
/// graph. Extends the paper's single-path Bellman-Ford routing with path
/// diversity: a network that can offer several disjoint-ish routes per
/// request degrades gracefully when links churn (satellite handover, HAP
/// downtime), which the hybrid-architecture bench quantifies.

namespace qntn::net {

/// Up to k best loopless routes from src to dst under the metric, ordered
/// by cost (ties broken arbitrarily but deterministically). Fewer than k
/// are returned when the graph has fewer distinct loopless paths.
[[nodiscard]] std::vector<Route> k_shortest_paths(
    const Graph& graph, NodeId src, NodeId dst, std::size_t k,
    CostMetric metric = CostMetric::InverseEta);

/// Up to k pairwise interior-node-disjoint routes from src to dst, ordered
/// by non-decreasing cost: successive shortest paths, each masking the
/// interior nodes of every accepted route. Endpoints may be shared; interior
/// relays never are, so the routes fail independently when a relay saturates
/// or drops out — the property the entanglement-management layer's multipath
/// load balancer relies on. Fewer than k routes are returned when the graph
/// runs out of disjoint alternatives (k larger than available is not an
/// error).
[[nodiscard]] std::vector<Route> k_disjoint_paths(
    const Graph& graph, NodeId src, NodeId dst, std::size_t k,
    CostMetric metric = CostMetric::InverseEta);

/// Diversity of a route set: 1 - (shared intermediate nodes / total
/// intermediate nodes across pairs); 1 means fully node-disjoint interiors,
/// 0 means every alternative reuses the same relays. Routes with no
/// interior nodes (direct edges) count as disjoint. Returns 1.0 for fewer
/// than two routes.
[[nodiscard]] double path_diversity(const std::vector<Route>& routes);

}  // namespace qntn::net
