#pragma once

#include <optional>
#include <vector>

#include "net/graph.hpp"

/// \file routing.hpp
/// Entanglement routing. The paper adopts Bellman-Ford with the additive
/// edge cost 1/(eta + eps) (Section III-B, Algorithm 1); we implement that
/// algorithm faithfully in its distance-vector form, plus two baselines on
/// the same graph for the routing-metric ablation:
///  - Dijkstra on the same cost (identical optimal costs, used as an oracle
///    in tests),
///  - the product-optimal metric -log(eta), which maximises end-to-end
///    transmissivity (what a fidelity-optimal router would use).

namespace qntn::net {

/// Epsilon of the paper's cost metric 1/(eta + eps); prevents division by
/// zero on dead links.
inline constexpr double kRoutingEpsilon = 1e-9;

enum class CostMetric {
  InverseEta,  ///< 1/(eta + eps) — the paper's Algorithm 1 metric
  NegLogEta,   ///< -log(eta + eps) — maximises the transmissivity product
  HopCount,    ///< 1 per edge — shortest-path baseline
};

/// Edge cost under a metric.
[[nodiscard]] double edge_cost(double transmissivity, CostMetric metric);

/// True when the metric's edge cost does not depend on the transmissivity
/// (HopCount): shortest-path trees over one edge *set* can then be cached
/// across snapshots that only re-weight edges (the per-epoch route cache).
[[nodiscard]] constexpr bool metric_is_eta_independent(CostMetric metric) {
  return metric == CostMetric::HopCount;
}

/// Cost of every edge of `graph` under `metric`, parallel to graph.edges().
/// Appends into `out` (cleared first) so serving loops reuse one scratch
/// buffer instead of re-running edge_cost — a std::log per edge for
/// NegLogEta — inside every Bellman-Ford round.
void compute_edge_costs(const Graph& graph, CostMetric metric,
                        std::vector<double>& out);

/// A resolved route.
struct Route {
  std::vector<NodeId> path;     ///< node sequence, source first
  double cost = 0.0;            ///< total additive cost under the metric
  double transmissivity = 1.0;  ///< product of edge transmissivities
};

/// One entry of a node's routing table (Algorithm 1's R[i] = {cost, via}).
struct RoutingEntry {
  double cost = 0.0;
  std::optional<NodeId> via;  ///< intermediate target; nullopt = unreachable
};

/// Faithful implementation of the paper's Algorithm 1: every node holds a
/// routing table; INITIALIZE seeds self/adjacent/infinity entries; UPDATE
/// relaxes each node's table against its neighbours' tables; the main loop
/// runs N-1 sweeps. The simulation shortcut of Section III-B (tables of
/// other nodes are directly accessible, step 2 omitted) matches the paper.
class DistanceVectorRouter {
 public:
  explicit DistanceVectorRouter(const Graph& graph,
                                CostMetric metric = CostMetric::InverseEta);

  /// Routing table of `node` after convergence.
  [[nodiscard]] const std::vector<RoutingEntry>& table(NodeId node) const;

  /// Reconstruct the route from src to dst by expanding the `via` chain;
  /// nullopt if dst is unreachable.
  [[nodiscard]] std::optional<Route> route(NodeId src, NodeId dst) const;

 private:
  const Graph& graph_;
  CostMetric metric_;
  std::vector<std::vector<RoutingEntry>> tables_;  // [node][dest]
};

/// Classic single-source Bellman-Ford with predecessor tracking; returns
/// the route or nullopt if unreachable. Used by the simulator's serving
/// loop (one run per distinct request source per time step).
[[nodiscard]] std::optional<Route> bellman_ford(const Graph& graph, NodeId src,
                                                NodeId dst,
                                                CostMetric metric =
                                                    CostMetric::InverseEta);

/// All-destination single-source Bellman-Ford: cost and predecessor arrays.
struct ShortestPathTree {
  std::vector<double> cost;                     ///< infinity if unreachable
  std::vector<std::optional<NodeId>> previous;  ///< predecessor on best path
};
[[nodiscard]] ShortestPathTree bellman_ford_tree(const Graph& graph, NodeId src,
                                                 CostMetric metric);

/// Same relaxation with caller-precomputed edge costs (parallel to
/// graph.edges(), e.g. from compute_edge_costs). Lets a serving loop price
/// the snapshot's edges once and amortise the cost across every source's
/// tree instead of re-deriving them per tree per round.
[[nodiscard]] ShortestPathTree bellman_ford_tree(
    const Graph& graph, NodeId src, const std::vector<double>& edge_costs);

/// Canonical shortest-path tree: the same optimal costs as
/// bellman_ford_tree, but with the predecessors re-derived by a single
/// deterministic pass over graph.edges() in index order (first tight edge
/// wins; within one edge the a->b orientation is checked before b->a).
/// Unlike bellman_ford_tree's relaxation-history predecessors, canonical
/// predecessors are a pure function of (edge set, edge costs) — which is
/// what lets a delta-repaired tree be bit-identical to a full rebuild. The
/// shared per-epoch tree cache (sim/epoch_cache.hpp) stores only canonical
/// trees; cost ties (ubiquitous under HopCount) may therefore resolve to
/// different equal-cost routes than bellman_ford_tree's.
[[nodiscard]] ShortestPathTree canonical_tree(
    const Graph& graph, NodeId src, const std::vector<double>& edge_costs);

/// Incrementally repair `base` — the canonical tree of a *previous* epoch's
/// graph for the same source — into the canonical tree of `graph`, given
/// the unordered node pairs whose link set changed between the two epochs
/// (duplicates allowed; direction/openness irrelevant — the repair is
/// conservative per pair). Exact, bit-identical to canonical_tree(graph,
/// src, edge_costs), whenever unchanged edges kept their cost — the
/// eta-independent-metric gate the shared epoch cache applies. The repair
/// invalidates the subtrees hanging off changed pairs, re-relaxes from the
/// surviving frontier (worklist, O(affected region) instead of O(V*E)), and
/// re-derives canonical predecessors.
[[nodiscard]] ShortestPathTree delta_update_tree(
    const Graph& graph, NodeId src, const std::vector<double>& edge_costs,
    const ShortestPathTree& base, const std::vector<ChangedPair>& changed);

/// Dijkstra with a binary heap on the same metrics (costs are non-negative
/// for every metric above, so it applies). Oracle/baseline for tests and
/// the perf benches.
[[nodiscard]] std::optional<Route> dijkstra(const Graph& graph, NodeId src,
                                            NodeId dst,
                                            CostMetric metric =
                                                CostMetric::InverseEta);

/// Extract a route from a shortest-path tree.
[[nodiscard]] std::optional<Route> route_from_tree(const Graph& graph,
                                                   const ShortestPathTree& tree,
                                                   NodeId src, NodeId dst);

}  // namespace qntn::net
