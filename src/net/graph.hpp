#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// \file graph.hpp
/// Undirected network graph with transmissivity-weighted edges. This is the
/// object the routing layer operates on; the simulator rebuilds (or
/// re-weights) it at every time step as satellites move.

namespace qntn::net {

using NodeId = std::size_t;

/// An undirected edge with optical transmissivity eta in [0, 1].
struct Edge {
  NodeId a = 0;
  NodeId b = 0;
  double transmissivity = 0.0;
};

/// Half-edge stored in adjacency lists.
struct Adjacency {
  NodeId to = 0;
  double transmissivity = 0.0;
};

/// An unordered node pair whose link set changed between two graphs (e.g. a
/// contact window opened or closed across a topology-epoch boundary). The
/// delta tree repair (routing.hpp) invalidates conservatively per pair, so
/// parallel edges need no edge identity here.
struct ChangedPair {
  NodeId a = 0;
  NodeId b = 0;
};

class Graph {
 public:
  /// Add a node with an optional display name; returns its id (dense,
  /// starting at 0).
  NodeId add_node(std::string name = {});

  /// Add an undirected edge. Preconditions: distinct existing endpoints,
  /// eta in [0, 1]. Parallel edges are allowed (the routers simply see two
  /// relaxation opportunities); self-loops are rejected.
  void add_edge(NodeId a, NodeId b, double transmissivity);

  /// Re-weight an existing edge in place (edge list and both adjacency
  /// entries), keeping the graph structure untouched. This is the epoch
  /// snapshot fast path: within one contact-plan epoch the edge *set* is
  /// fixed and only transmissivities vary, so a per-epoch skeleton graph is
  /// refreshed with zero allocation. Preconditions as add_edge.
  void set_edge_transmissivity(std::size_t edge_index, double transmissivity);

  /// Drop every edge with index >= count (the most recently added ones),
  /// keeping nodes and the first `count` edges untouched. With add_edge
  /// this makes the graph a reusable skeleton + tail: the epoch snapshot
  /// engine truncates back to the static skeleton and re-appends the new
  /// epoch's dynamic edges, reusing all adjacency storage.
  void truncate_edges(std::size_t count);

  [[nodiscard]] std::size_t node_count() const { return names_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] const std::string& name(NodeId id) const { return names_[id]; }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] const std::vector<Adjacency>& neighbors(NodeId id) const {
    return adjacency_[id];
  }

  /// True if u and v are in the same connected component (BFS).
  [[nodiscard]] bool connected(NodeId u, NodeId v) const;

  /// Component label for every node (labels are dense, smallest-id first).
  [[nodiscard]] std::vector<std::size_t> components() const;

 private:
  std::vector<std::string> names_;
  std::vector<Edge> edges_;
  std::vector<std::vector<Adjacency>> adjacency_;
  /// Per edge: its slot in adjacency_[a] and adjacency_[b], so re-weighting
  /// is O(1) instead of an adjacency scan.
  std::vector<std::pair<std::size_t, std::size_t>> edge_slots_;
};

}  // namespace qntn::net
