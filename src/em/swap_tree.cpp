#include "em/swap_tree.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qntn::em {

void SwapPlanOptions::validate() const {
  QNTN_REQUIRE(heralding_latency >= 0.0,
               "em heralding_latency must be non-negative");
}

SwapPlan plan_swap_tree(std::size_t hops, const SwapPlanOptions& options) {
  QNTN_REQUIRE(hops >= 1, "a route has at least one hop");
  options.validate();
  SwapPlan plan;
  plan.hops = hops;
  plan.swaps = hops - 1;
  if (hops > 1) {
    if (options.balanced) {
      // Levels of the balanced tree: ceil(log2 hops), computed in integers.
      std::size_t depth = 0;
      std::size_t reach = 1;
      while (reach < hops) {
        reach *= 2;
        ++depth;
      }
      plan.depth = depth;
    } else {
      plan.depth = hops - 1;
    }
  }
  plan.heralding_delay =
      static_cast<double>(plan.depth) * options.heralding_latency;
  return plan;
}

double chain_transmissivity(const std::vector<double>& hop_etas) {
  double eta = 1.0;
  for (const double hop : hop_etas) {
    QNTN_REQUIRE(hop >= 0.0 && hop <= 1.0, "transmissivity must be in [0, 1]");
    eta *= hop;
  }
  return eta;
}

double swapped_chain_fidelity(const std::vector<double>& hop_etas,
                              const std::vector<double>& storage_durations,
                              const quantum::MemoryModel& memory,
                              quantum::FidelityConvention convention) {
  QNTN_REQUIRE(!hop_etas.empty(), "a chain has at least one hop");
  QNTN_REQUIRE(hop_etas.size() == storage_durations.size(),
               "one storage duration per hop");
  double population = 1.0;
  double coherence_scale = 1.0;
  for (std::size_t i = 0; i < hop_etas.size(); ++i) {
    QNTN_REQUIRE(hop_etas[i] >= 0.0 && hop_etas[i] <= 1.0,
                 "transmissivity must be in [0, 1]");
    population *= hop_etas[i] * memory.relaxation_survival(storage_durations[i]);
    coherence_scale *=
        1.0 - 2.0 * memory.dephasing_probability(storage_durations[i]);
  }
  const double jozsa = (1.0 + population) / 4.0 +
                       std::sqrt(population) * coherence_scale / 2.0;
  const double clamped = std::clamp(jozsa, 0.0, 1.0);
  return convention == quantum::FidelityConvention::Jozsa ? clamped
                                                          : std::sqrt(clamped);
}

}  // namespace qntn::em
