#pragma once

#include <cstddef>
#include <vector>

#include "net/graph.hpp"
#include "quantum/memory.hpp"

/// \file memory_pool.hpp
/// Buffered elementary-pair memories — the storage substrate of the
/// entanglement-management layer (DESIGN.md §11). Every link of the current
/// epoch topology continuously generates elementary pairs into the quantum
/// memories at its two endpoints; a pair survives until either its memory
/// slot is recycled (bounded memory) or it decoheres past usefulness
/// (bounded storage time). The pool models the *steady state* of that
/// process at a snapshot instant: the buffer of a link holds its
/// `generation_period`-spaced ladder of pair ages, truncated by the
/// fair-share slot allocation at both endpoints and by `max_storage`.
///
/// Determinism discipline: the buffered state is a pure function of the
/// snapshot's edge set and the pool options — no history is carried between
/// snapshots — so the parallel snapshot engine can serve steps in any order
/// on any thread count and stay byte-identical to the serial run.

namespace qntn::em {

struct MemoryPoolOptions {
  /// Pair halves a node's quantum memory can hold concurrently. Shared
  /// fairly across the node's incident links (quota = slots / degree, the
  /// first slots % degree links in edge order getting one extra).
  std::size_t slots_per_node = 8;
  /// Seconds between successive elementary-pair generations on one link;
  /// the j-th youngest buffered pair has age j * generation_period.
  double generation_period = 0.05;
  /// Pairs stored longer than this are considered decohered and recycled
  /// (their memory slots return to the generator).
  double max_storage = 1.0;
  /// Decoherence during storage (applied to the stored half of each pair).
  quantum::MemoryModel memory{};

  /// Throws qntn::Error on unphysical or degenerate parameters (including
  /// MemoryModel::validate()).
  void validate() const;
};

/// Per-snapshot view of the buffered pairs. rebuild() derives the buffer
/// ladder for every edge of the snapshot graph; try_consume() then spends
/// pairs youngest-first as the scheduler commits requests. All state is
/// reset by the next rebuild().
class MemoryPool {
 public:
  explicit MemoryPool(const MemoryPoolOptions& options);

  /// Recompute the per-edge buffers for a snapshot graph. Buffer sizes
  /// depend only on the edge *set* (fair-share slot allocation and the
  /// storage-lifetime cap), so within one topology epoch every snapshot
  /// sees identical buffers.
  void rebuild(const net::Graph& graph);

  /// Pairs still available on edge `edge_index` (buffered minus consumed).
  [[nodiscard]] std::size_t available(std::size_t edge_index) const;

  /// Consume `count` pairs from the edge, youngest first. Returns false
  /// (and consumes nothing) when fewer than `count` remain.
  [[nodiscard]] bool try_consume(std::size_t edge_index, std::size_t count);

  /// Age [s] of the next pair try_consume would take from the edge (its
  /// youngest remaining pair). Precondition: available(edge_index) > 0.
  [[nodiscard]] double next_age(std::size_t edge_index) const;

  /// Total pairs buffered across all edges at rebuild time.
  [[nodiscard]] std::size_t buffered() const { return buffered_; }
  /// Pairs consumed since the last rebuild.
  [[nodiscard]] std::size_t consumed() const { return consumed_total_; }

  /// Fraction of memory slots (over nodes with at least one link) holding a
  /// pair half at rebuild time, in [0, 1]. 0 when no node has a link.
  [[nodiscard]] double occupancy() const { return occupancy_; }

  [[nodiscard]] const MemoryPoolOptions& options() const { return options_; }

 private:
  MemoryPoolOptions options_;
  /// Per edge: pairs the steady-state buffer holds at the snapshot.
  std::vector<std::size_t> capacity_;
  /// Per edge: pairs consumed so far this snapshot.
  std::vector<std::size_t> consumed_;
  std::size_t buffered_ = 0;
  std::size_t consumed_total_ = 0;
  double occupancy_ = 0.0;
};

}  // namespace qntn::em
