#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "em/memory_pool.hpp"
#include "em/purify_budget.hpp"
#include "em/swap_tree.hpp"
#include "net/kpaths.hpp"
#include "net/routing.hpp"
#include "quantum/fidelity.hpp"

/// \file serving.hpp
/// The entanglement manager: serves a request batch against one topology
/// snapshot from *buffered resources* instead of the paper's instantaneous
/// single-shot links. Per request it (1) finds up to k interior-disjoint
/// candidate routes, (2) plans a swap tree over the route's buffered
/// elementary pairs, (3) prices the delivered fidelity with the
/// storage-decoherence closed form, (4) budgets purification rounds against
/// the fidelity SLO, and (5) commits the first candidate route whose relays
/// and buffers can pay — congested relays thereby spill requests onto the
/// alternate disjoint routes (multipath load balancing).
///
/// Determinism discipline (DESIGN.md §11): serving is greedy in request
/// order over state rebuilt per snapshot, so the result is a pure function
/// of (snapshot graph, batch, options) — the parallel scenario engine can
/// serve snapshots on any thread in any order and merge byte-identical
/// results.

namespace qntn::em {

struct EmRequest {
  net::NodeId source = 0;
  net::NodeId destination = 0;
};

/// Why a request was or wasn't served from the buffered pool.
enum class EmStatus : std::uint8_t {
  Served,
  NoPath,     ///< endpoints have links, but no route connects them
  Isolated,   ///< an endpoint has no links at all this snapshot
  Congested,  ///< routes exist, but no candidate's relays/buffers can pay
};

[[nodiscard]] std::string_view em_status_name(EmStatus status);

/// Per-request serving detail.
struct EmOutcome {
  EmStatus status = EmStatus::NoPath;
  double fidelity = 0.0;        ///< delivered (post-purification) fidelity
  double transmissivity = 0.0;  ///< end-to-end eta product of the route
  std::size_t hops = 0;
  std::size_t swaps = 0;                ///< Bell-state measurements spent
  std::size_t swap_depth = 0;           ///< heralding rounds of the tree
  std::size_t purification_rounds = 0;  ///< BBPSSW rounds spent
  std::size_t pairs_consumed = 0;       ///< buffered pairs spent, all hops
  /// Which candidate route served it: 0 = cheapest; > 0 means the request
  /// spilled onto an alternate disjoint route past a congested one.
  std::size_t route_index = 0;
  bool slo_met = true;   ///< delivered fidelity met the SLO (true if off)
  double latency = 0.0;  ///< classical heralding latency paid [s]
  /// First intermediate node of the committed route; nullopt for direct
  /// paths (mirrors sim::RequestOutcome::relay).
  std::optional<net::NodeId> relay;
};

/// Outcome of serving one batch against one snapshot.
struct EmServeResult {
  std::size_t total = 0;
  std::size_t served = 0;
  std::size_t unserved_no_path = 0;
  std::size_t unserved_isolated = 0;
  std::size_t unserved_congested = 0;

  std::size_t swaps = 0;                ///< BSMs across served requests
  std::size_t purification_rounds = 0;  ///< BBPSSW rounds across served
  std::size_t pairs_consumed = 0;       ///< buffered pairs spent
  std::size_t slo_met = 0;              ///< served requests meeting the SLO
  std::size_t spilled = 0;              ///< served on route_index > 0

  RunningStats fidelity;        ///< delivered, over served requests
  RunningStats transmissivity;  ///< over served requests
  RunningStats hops;            ///< over served requests
  RunningStats latency;         ///< heralding latency, over served requests
  RunningStats swap_depth;      ///< over served requests
  /// Memory occupancy of the rebuilt pool at this snapshot, in [0, 1].
  double memory_occupancy = 0.0;

  /// Filled only when serve() is called with record_outcomes = true.
  std::vector<EmOutcome> outcomes;

  [[nodiscard]] double served_fraction() const {
    return total > 0 ? static_cast<double>(served) / static_cast<double>(total)
                     : 0.0;
  }
};

struct EmOptions {
  /// Master switch: scenarios keep the paper's single-shot serving unless
  /// this is on (seed results stay untouched by default).
  bool enabled = false;
  MemoryPoolOptions pool{};
  SwapPlanOptions swap{};
  PurifyOptions purify{};
  /// Candidate interior-disjoint routes per request (the load-balancing
  /// fan-out).
  std::size_t k_paths = 3;
  /// Bell-state measurements a relay can perform per snapshot.
  std::size_t node_capacity = 8;
  /// Routing metric for the candidate routes. HopCount (the default) is
  /// eta-independent, which lets the per-epoch route cache hold the
  /// candidate sets for a whole topology epoch.
  net::CostMetric metric = net::CostMetric::HopCount;

  /// Throws qntn::Error on degenerate parameters (delegates to the
  /// sub-option validators).
  void validate() const;
};

/// Cross-worker source of candidate routes, shared by every manager of one
/// scenario run. Implementations must be safe to call concurrently (the
/// parallel scenario engine queries from every chunk worker) and must
/// return pointers that stay valid for the run. Declared here — rather
/// than next to its implementation, sim::SharedEmRouteCache — so the em
/// layer never depends on sim. Returning nullptr (unknown pair, inactive
/// cache) sends the manager to its own per-worker cache.
class EmRouteSource {
 public:
  virtual ~EmRouteSource() = default;

  /// Candidate routes of (source, destination) on `epoch`, whose snapshot
  /// graph is `graph`; nullptr when this source cannot answer.
  [[nodiscard]] virtual const std::vector<net::Route>* routes_for(
      const net::Graph& graph, net::NodeId source, net::NodeId destination,
      std::size_t epoch) = 0;
};

/// Serves batches snapshot by snapshot. Not thread-safe: the parallel
/// scenario engine gives each worker its own manager (mirroring
/// sim::SnapshotServer). Managers of one run may share an EmRouteSource —
/// that part is thread-safe — so the k-disjoint candidate search runs once
/// per (epoch, pair) across all workers instead of once per worker.
class EntanglementManager {
 public:
  static constexpr std::size_t kNoEpoch = static_cast<std::size_t>(-1);

  /// `shared_routes` (borrowed, may be nullptr) supplies cross-worker
  /// candidate routes; the per-worker cache covers whatever it cannot.
  explicit EntanglementManager(const EmOptions& options,
                               EmRouteSource* shared_routes = nullptr);

  /// Serve the batch on a snapshot graph. `epoch` is the topology epoch id
  /// of the snapshot (kNoEpoch when the provider has no partition): with an
  /// eta-independent metric the k-disjoint candidate routes are cached per
  /// (source, destination) for the whole epoch and only re-priced per
  /// snapshot. Deterministic greedy serving in request order.
  [[nodiscard]] EmServeResult serve(const net::Graph& graph,
                                    const std::vector<EmRequest>& requests,
                                    std::size_t epoch,
                                    quantum::FidelityConvention convention,
                                    bool record_outcomes);

  [[nodiscard]] const EmOptions& options() const { return options_; }

 private:
  /// Candidate routes for (source, destination), from the epoch cache when
  /// valid, computed (and cached when cacheable) otherwise.
  const std::vector<net::Route>& candidates(const net::Graph& graph,
                                            net::NodeId source,
                                            net::NodeId destination,
                                            std::size_t epoch);

  EmOptions options_;
  EmRouteSource* shared_routes_ = nullptr;
  MemoryPool pool_;

  /// Per-epoch route cache (valid only for eta-independent metrics).
  std::size_t cache_epoch_ = kNoEpoch;
  std::map<std::pair<net::NodeId, net::NodeId>, std::vector<net::Route>>
      route_cache_;
  /// Scratch for the non-cacheable path (recomputed per request).
  std::vector<net::Route> scratch_routes_;

  /// Per-snapshot scratch, cleared in serve().
  std::vector<std::size_t> node_load_;   ///< BSMs committed per node
  std::vector<std::size_t> node_degree_;
  std::map<std::pair<net::NodeId, net::NodeId>, std::size_t> edge_index_;
  std::vector<std::size_t> hop_edges_;   ///< per-hop edge index of a route
  std::vector<double> hop_etas_;
  std::vector<double> hop_durations_;
};

}  // namespace qntn::em
