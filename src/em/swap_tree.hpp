#pragma once

#include <cstddef>
#include <vector>

#include "quantum/fidelity.hpp"
#include "quantum/memory.hpp"

/// \file swap_tree.hpp
/// Swap-tree scheduling: how a multi-hop request is realised from buffered
/// elementary pairs. Every relay of an H-hop route performs one Bell-state
/// measurement (H-1 swaps total); what the *tree shape* controls is how
/// many rounds of classical heralding the end nodes wait for, and hence how
/// long every pair sits in memory decohering:
///  - balanced tree: swaps proceed level by level, depth = ceil(log2 H);
///  - linear chain:  swaps proceed left to right, depth = H - 1.
/// The fidelity of the swapped chain is computed with the closed form
/// pinned against the density-matrix quantum::swap_chain by tests/em.

namespace qntn::em {

struct SwapPlanOptions {
  /// Classical two-way heralding latency charged per tree level [s].
  double heralding_latency = 0.01;
  /// Balanced tree (logarithmic depth) vs. left-to-right chain.
  bool balanced = true;

  /// Throws qntn::Error on negative latency.
  void validate() const;
};

/// Shape of the swap schedule for one route.
struct SwapPlan {
  std::size_t hops = 0;
  std::size_t swaps = 0;           ///< hops - 1 Bell-state measurements
  std::size_t depth = 0;           ///< heralding rounds the end nodes wait
  double heralding_delay = 0.0;    ///< depth * heralding_latency [s]
};

/// Plan the swap schedule for a route of `hops` elementary links
/// (hops >= 1; one hop needs no swap and no heralding round).
[[nodiscard]] SwapPlan plan_swap_tree(std::size_t hops,
                                      const SwapPlanOptions& options);

/// End-to-end transmissivity of a chain: product of the hop etas.
[[nodiscard]] double chain_transmissivity(const std::vector<double>& hop_etas);

/// Closed-form fidelity of swapping an H-hop chain whose hop pairs each
/// carry transmissivity hop_etas[i] and have been stored for
/// storage_durations[i] seconds in `memory` before their swap completes.
/// With s_i = e^{-d_i/T1} and dephasing parameter p_i, the swapped state
/// keeps the single-pair form with population E = prod(eta_i s_i) and
/// coherence sqrt(E) * prod(1 - 2 p_i), giving
///   F_jozsa = (1 + E)/4 + sqrt(E) * prod(1 - 2 p_i) / 2.
/// Exact against the density-matrix swap (not an approximation) — see
/// tests/em/swap_tree_test.cpp, which pins this against quantum::swap_chain
/// on MemoryModel::store-built pairs.
[[nodiscard]] double swapped_chain_fidelity(
    const std::vector<double>& hop_etas,
    const std::vector<double>& storage_durations,
    const quantum::MemoryModel& memory,
    quantum::FidelityConvention convention);

}  // namespace qntn::em
