#include "em/memory_pool.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"

namespace qntn::em {

void MemoryPoolOptions::validate() const {
  QNTN_REQUIRE(slots_per_node > 0, "em memory slots_per_node must be positive");
  QNTN_REQUIRE(generation_period > 0.0,
               "em generation_period must be positive (got " +
                   std::to_string(generation_period) + " s)");
  QNTN_REQUIRE(max_storage >= 0.0, "em max_storage must be non-negative");
  memory.validate();
}

MemoryPool::MemoryPool(const MemoryPoolOptions& options) : options_(options) {
  options_.validate();
}

void MemoryPool::rebuild(const net::Graph& graph) {
  const std::vector<net::Edge>& edges = graph.edges();
  capacity_.assign(edges.size(), 0);
  consumed_.assign(edges.size(), 0);
  buffered_ = 0;
  consumed_total_ = 0;
  occupancy_ = 0.0;

  // Degree of every node under the snapshot's edge set.
  std::vector<std::size_t> degree(graph.node_count(), 0);
  for (const net::Edge& e : edges) {
    ++degree[e.a];
    ++degree[e.b];
  }

  // Pairs the storage lifetime admits: ages {0, d, 2d, ...} <= max_storage.
  const std::size_t lifetime_cap =
      1 + static_cast<std::size_t>(
              std::floor(options_.max_storage / options_.generation_period));

  // Fair-share slot split: a node's quota for its i-th incident edge (in
  // global edge order) is slots/degree, the first slots%degree edges getting
  // one extra. An edge buffers min of its two endpoint quotas, capped by the
  // lifetime ladder. Depends only on the edge set => identical for every
  // snapshot of one epoch, and identical across thread counts.
  std::vector<std::size_t> seen(graph.node_count(), 0);
  const auto quota = [this, &degree, &seen](net::NodeId v) {
    const std::size_t d = degree[v];
    const std::size_t base = options_.slots_per_node / d;
    const std::size_t extra = options_.slots_per_node % d;
    const std::size_t rank = seen[v]++;
    return base + (rank < extra ? 1 : 0);
  };
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const std::size_t cap =
        std::min({quota(edges[i].a), quota(edges[i].b), lifetime_cap});
    capacity_[i] = cap;
    buffered_ += cap;
  }

  std::size_t linked_nodes = 0;
  for (const std::size_t d : degree) {
    if (d > 0) ++linked_nodes;
  }
  if (linked_nodes > 0) {
    occupancy_ = static_cast<double>(2 * buffered_) /
                 static_cast<double>(linked_nodes * options_.slots_per_node);
  }
}

std::size_t MemoryPool::available(std::size_t edge_index) const {
  QNTN_REQUIRE(edge_index < capacity_.size(), "edge index out of range");
  return capacity_[edge_index] - consumed_[edge_index];
}

bool MemoryPool::try_consume(std::size_t edge_index, std::size_t count) {
  if (available(edge_index) < count) return false;
  consumed_[edge_index] += count;
  consumed_total_ += count;
  return true;
}

double MemoryPool::next_age(std::size_t edge_index) const {
  QNTN_REQUIRE(available(edge_index) > 0, "edge buffer is exhausted");
  // Youngest-first: ranks 0..consumed-1 are gone, the next pair is rank
  // `consumed` with age rank * generation_period.
  return static_cast<double>(consumed_[edge_index]) *
         options_.generation_period;
}

}  // namespace qntn::em
