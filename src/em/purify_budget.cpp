#include "em/purify_budget.hpp"

#include <cmath>

#include "common/error.hpp"
#include "quantum/purification.hpp"

namespace qntn::em {

void PurifyOptions::validate() const {
  QNTN_REQUIRE(fidelity_slo < 1.0,
               "em fidelity_slo must be below 1 (a perfect-fidelity SLO is "
               "unreachable by purification)");
  QNTN_REQUIRE(max_rounds <= 16,
               "em purify max_rounds above 16 is not meaningful (pair cost "
               "is 2^rounds)");
}

PurifyPlan plan_purification(double fidelity, const PurifyOptions& options,
                             quantum::FidelityConvention convention) {
  options.validate();
  QNTN_REQUIRE(fidelity >= 0.0 && fidelity <= 1.0,
               "fidelity must be in [0, 1]");
  PurifyPlan plan;
  plan.fidelity = fidelity;
  if (options.fidelity_slo <= 0.0) return plan;

  // The BBPSSW recurrence is stated on Jozsa (squared) fidelities.
  const bool uhlmann = convention == quantum::FidelityConvention::Uhlmann;
  double jozsa = uhlmann ? fidelity * fidelity : fidelity;
  const double target = uhlmann ? options.fidelity_slo * options.fidelity_slo
                                : options.fidelity_slo;

  while (jozsa < target && plan.rounds < options.max_rounds) {
    const double next = quantum::bbpssw_fidelity(jozsa);
    if (next <= jozsa) break;  // below threshold or at the fixed point
    jozsa = next;
    ++plan.rounds;
  }
  plan.pairs_per_hop = std::size_t{1} << plan.rounds;
  plan.fidelity = uhlmann ? std::sqrt(jozsa) : jozsa;
  plan.slo_met = plan.fidelity + 1e-12 >= options.fidelity_slo;
  return plan;
}

}  // namespace qntn::em
