#pragma once

#include <cstddef>

#include "quantum/fidelity.hpp"

/// \file purify_budget.hpp
/// Purification budgeting: decide how many BBPSSW recurrence rounds to
/// spend lifting a delivered pair towards a configured fidelity SLO, and
/// what that costs in buffered elementary pairs. Each nested round consumes
/// two outputs of the previous one, so r rounds multiply the per-hop pair
/// bill by 2^r — the budgeter trades memory occupancy against delivered
/// fidelity, which the EXPERIMENTS.md sweep quantifies.
///
/// The recurrence uses the closed-form Werner-state BBPSSW map
/// (quantum::bbpssw_fidelity); the ladder works in the Jozsa (squared)
/// convention internally — that is what the recurrence is stated in — and
/// converts at the boundary.

namespace qntn::em {

struct PurifyOptions {
  /// Delivered-fidelity target in the caller's convention; <= 0 disables
  /// purification entirely (0 rounds, SLO trivially met).
  double fidelity_slo = 0.0;
  /// Hard cap on recurrence rounds (pair cost grows as 2^rounds).
  std::size_t max_rounds = 2;

  /// Throws qntn::Error when the SLO is >= 1 (unreachable) or the round cap
  /// is absurd (> 16 would mean a 65536x pair bill).
  void validate() const;
};

/// The budgeter's decision for one delivered pair.
struct PurifyPlan {
  std::size_t rounds = 0;         ///< recurrence rounds spent
  std::size_t pairs_per_hop = 1;  ///< 2^rounds elementary pairs per hop
  double fidelity = 0.0;          ///< fidelity after purification
  bool slo_met = true;            ///< fidelity >= SLO (true when disabled)
};

/// Plan purification for a pair delivered at `fidelity` (in `convention`).
/// Spends rounds while the SLO is unmet, the cap allows, and a round still
/// helps (BBPSSW only improves Werner states with F_jozsa > 1/2, and the
/// recurrence has a fixed point short of 1 — rounds that no longer move the
/// fidelity are not charged). The returned fidelity is in `convention`.
[[nodiscard]] PurifyPlan plan_purification(
    double fidelity, const PurifyOptions& options,
    quantum::FidelityConvention convention);

}  // namespace qntn::em
