#include "em/serving.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "obs/registry.hpp"
#include "obs/profiler.hpp"

namespace qntn::em {

std::string_view em_status_name(EmStatus status) {
  switch (status) {
    case EmStatus::Served:
      return "served";
    case EmStatus::NoPath:
      return "no_path";
    case EmStatus::Isolated:
      return "isolated";
    case EmStatus::Congested:
      return "congested";
  }
  return "unknown";
}

void EmOptions::validate() const {
  pool.validate();
  swap.validate();
  purify.validate();
  QNTN_REQUIRE(k_paths > 0, "em k_paths must be positive");
  QNTN_REQUIRE(node_capacity > 0, "em node_capacity must be positive");
}

EntanglementManager::EntanglementManager(const EmOptions& options,
                                         EmRouteSource* shared_routes)
    : options_(options), shared_routes_(shared_routes), pool_(options.pool) {
  options_.validate();
}

const std::vector<net::Route>& EntanglementManager::candidates(
    const net::Graph& graph, net::NodeId source, net::NodeId destination,
    std::size_t epoch) {
  const bool cacheable =
      epoch != kNoEpoch && net::metric_is_eta_independent(options_.metric);
  if (!cacheable) {
    scratch_routes_ = net::k_disjoint_paths(graph, source, destination,
                                            options_.k_paths, options_.metric);
    return scratch_routes_;
  }
  // Cross-worker cache first: one k-disjoint search per (epoch, pair) for
  // the whole run. serve() re-prices every hop from the current graph, so
  // sharing route *structure* across workers cannot change any outcome.
  if (shared_routes_ != nullptr) {
    const std::vector<net::Route>* shared =
        shared_routes_->routes_for(graph, source, destination, epoch);
    if (shared != nullptr) {
      obs::count("em.route_cache_hits");
      return *shared;
    }
  }
  if (cache_epoch_ != epoch) {
    cache_epoch_ = epoch;
    route_cache_.clear();
  }
  const auto key = std::make_pair(source, destination);
  auto it = route_cache_.find(key);
  if (it == route_cache_.end()) {
    it = route_cache_
             .emplace(key, net::k_disjoint_paths(graph, source, destination,
                                                 options_.k_paths,
                                                 options_.metric))
             .first;
  } else {
    obs::count("em.route_cache_hits");
  }
  return it->second;
}

EmServeResult EntanglementManager::serve(
    const net::Graph& graph, const std::vector<EmRequest>& requests,
    std::size_t epoch, quantum::FidelityConvention convention,
    bool record_outcomes) {
  obs::Span span("em.serve", requests.size());

  pool_.rebuild(graph);
  node_load_.assign(graph.node_count(), 0);
  node_degree_.assign(graph.node_count(), 0);
  edge_index_.clear();
  for (std::size_t i = 0; i < graph.edges().size(); ++i) {
    const net::Edge& e = graph.edges()[i];
    ++node_degree_[e.a];
    ++node_degree_[e.b];
    // Of parallel edges keep the best eta (the routers see the same link);
    // ties keep the earlier index, so the choice is deterministic.
    const auto key = std::make_pair(std::min(e.a, e.b), std::max(e.a, e.b));
    const auto [it, inserted] = edge_index_.emplace(key, i);
    if (!inserted &&
        graph.edges()[it->second].transmissivity < e.transmissivity) {
      it->second = i;
    }
  }

  EmServeResult result;
  result.total = requests.size();
  result.memory_occupancy = pool_.occupancy();
  if (record_outcomes) result.outcomes.resize(requests.size());

  for (std::size_t r = 0; r < requests.size(); ++r) {
    const EmRequest& request = requests[r];
    EmOutcome outcome;

    if (node_degree_[request.source] == 0 ||
        node_degree_[request.destination] == 0) {
      outcome.status = EmStatus::Isolated;
      ++result.unserved_isolated;
      obs::count("em.requests_isolated");
      if (record_outcomes) result.outcomes[r] = outcome;
      continue;
    }

    const std::vector<net::Route>& routes =
        candidates(graph, request.source, request.destination, epoch);
    if (routes.empty()) {
      outcome.status = EmStatus::NoPath;
      ++result.unserved_no_path;
      obs::count("em.requests_no_path");
      if (record_outcomes) result.outcomes[r] = outcome;
      continue;
    }

    bool committed = false;
    for (std::size_t route_index = 0;
         route_index < routes.size() && !committed; ++route_index) {
      const net::Route& route = routes[route_index];
      const std::size_t hops = route.path.size() - 1;

      // Relay capacity: every interior node performs one BSM.
      bool relays_free = true;
      for (std::size_t i = 1; i + 1 < route.path.size(); ++i) {
        if (node_load_[route.path[i]] >= options_.node_capacity) {
          relays_free = false;
          break;
        }
      }
      if (!relays_free) continue;

      // Re-price the route's hops from the *current* graph: cached routes
      // hold the epoch's structure, but etas vary per snapshot.
      hop_edges_.clear();
      hop_etas_.clear();
      bool edges_present = true;
      for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
        const auto key = std::make_pair(
            std::min(route.path[i], route.path[i + 1]),
            std::max(route.path[i], route.path[i + 1]));
        const auto it = edge_index_.find(key);
        if (it == edge_index_.end()) {
          edges_present = false;
          break;
        }
        hop_edges_.push_back(it->second);
        hop_etas_.push_back(graph.edges()[it->second].transmissivity);
      }
      if (!edges_present) continue;

      const SwapPlan swap_plan = plan_swap_tree(hops, options_.swap);

      // Every hop pair sits in memory from its buffered age until the last
      // heralding round of the tree completes.
      hop_durations_.clear();
      for (const std::size_t edge : hop_edges_) {
        if (pool_.available(edge) == 0) break;
        hop_durations_.push_back(pool_.next_age(edge) +
                                 swap_plan.heralding_delay);
      }
      if (hop_durations_.size() != hops) continue;  // a buffer ran dry

      const double swapped = swapped_chain_fidelity(
          hop_etas_, hop_durations_, options_.pool.memory, convention);
      const PurifyPlan purify_plan =
          plan_purification(swapped, options_.purify, convention);

      // Commit: consume pairs_per_hop buffered pairs on every hop, then
      // charge the relays. All-or-nothing: availability is checked for the
      // full bill first (the hops of a simple path are distinct edges, so
      // the checks are independent) and only then consumed.
      bool buffers_pay = true;
      for (const std::size_t edge : hop_edges_) {
        if (pool_.available(edge) < purify_plan.pairs_per_hop) {
          buffers_pay = false;
          break;
        }
      }
      if (!buffers_pay) continue;
      for (const std::size_t edge : hop_edges_) {
        const bool consumed =
            pool_.try_consume(edge, purify_plan.pairs_per_hop);
        QNTN_REQUIRE(consumed, "em buffer commit must be all-or-nothing");
      }
      for (std::size_t i = 1; i + 1 < route.path.size(); ++i) {
        ++node_load_[route.path[i]];
      }

      outcome.status = EmStatus::Served;
      outcome.fidelity = purify_plan.fidelity;
      outcome.transmissivity = chain_transmissivity(hop_etas_);
      outcome.hops = hops;
      outcome.swaps = swap_plan.swaps;
      outcome.swap_depth = swap_plan.depth;
      outcome.purification_rounds = purify_plan.rounds;
      outcome.pairs_consumed = purify_plan.pairs_per_hop * hops;
      outcome.route_index = route_index;
      outcome.slo_met = purify_plan.slo_met;
      // Classical latency: the tree's heralding rounds plus one two-way
      // exchange per purification round.
      outcome.latency =
          swap_plan.heralding_delay +
          static_cast<double>(purify_plan.rounds) *
              options_.swap.heralding_latency;
      if (route.path.size() > 2) outcome.relay = route.path[1];
      committed = true;
    }

    if (committed) {
      ++result.served;
      result.swaps += outcome.swaps;
      result.purification_rounds += outcome.purification_rounds;
      result.pairs_consumed += outcome.pairs_consumed;
      if (outcome.slo_met) ++result.slo_met;
      if (outcome.route_index > 0) {
        ++result.spilled;
        obs::count("em.requests_spilled");
      }
      result.fidelity.add(outcome.fidelity);
      result.transmissivity.add(outcome.transmissivity);
      result.hops.add(static_cast<double>(outcome.hops));
      result.latency.add(outcome.latency);
      result.swap_depth.add(static_cast<double>(outcome.swap_depth));
      obs::count("em.requests_served");
      obs::count("em.swaps", outcome.swaps);
      obs::count("em.purification_rounds", outcome.purification_rounds);
      obs::count("em.pairs_consumed", outcome.pairs_consumed);
    } else {
      outcome.status = EmStatus::Congested;
      ++result.unserved_congested;
      obs::count("em.requests_congested");
    }
    if (record_outcomes) result.outcomes[r] = outcome;
  }

  obs::observe("em.memory_occupancy", result.memory_occupancy);
  return result;
}

}  // namespace qntn::em
