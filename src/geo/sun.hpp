#pragma once

#include "geo/geodetic.hpp"

/// \file sun.hpp
/// Simplified solar geometry for day/night gating. Free-space quantum
/// links are drowned by solar background during the day (Micius operated
/// at night); the paper's ideal-conditions model ignores this, and the
/// night-only ablation quantifies the cost.
///
/// Model: the subsolar point circles the Earth westward once per 86400 s
/// at a fixed declination (configurable; 0 = equinox, +-23.44 deg =
/// solstices). This captures the diurnal geometry exactly and the seasonal
/// geometry to first order, which is all the gating needs — the absolute
/// epoch of the simulation clock is arbitrary (DESIGN.md §1).

namespace qntn::geo {

struct SunModel {
  /// Solar declination [rad]; 0 = equinox.
  double declination = 0.0;
  /// Longitude of the subsolar point at simulation time 0 [rad].
  double subsolar_longitude0 = 0.0;

  /// Sun elevation [rad] above the local horizon at `site`, time t [s].
  [[nodiscard]] double solar_elevation(const Geodetic& site, double t) const;

  /// True when the site is dark enough for FSO quantum links. The default
  /// threshold is civil twilight (sun 6 deg below the horizon).
  [[nodiscard]] bool is_night(const Geodetic& site, double t,
                              double twilight_angle = -0.10471975511965977)
      const;

  /// Fraction of a span [0, duration) during which the site is dark,
  /// sampled on the given grid.
  [[nodiscard]] double night_fraction(const Geodetic& site, double duration,
                                      double step = 60.0) const;
};

}  // namespace qntn::geo
