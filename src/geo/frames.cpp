#include "geo/frames.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/units.hpp"

namespace qntn::geo {

double gmst_at(double sim_time_s, double gmst0) {
  return wrap_two_pi(gmst0 + kEarthRotationRate * sim_time_s);
}

Vec3 eci_to_ecef(const Vec3& eci, double gmst) {
  const double c = std::cos(gmst);
  const double s = std::sin(gmst);
  // ECEF = R3(gmst) * ECI (rotation about +Z by +gmst).
  return {c * eci.x + s * eci.y, -s * eci.x + c * eci.y, eci.z};
}

Vec3 ecef_to_eci(const Vec3& ecef, double gmst) {
  const double c = std::cos(gmst);
  const double s = std::sin(gmst);
  return {c * ecef.x - s * ecef.y, s * ecef.x + c * ecef.y, ecef.z};
}

TopocentricFrame::TopocentricFrame(const Geodetic& site, EarthModel model)
    : origin(geodetic_to_ecef(site, model)),
      sin_lat(std::sin(site.latitude)),
      cos_lat(std::cos(site.latitude)),
      sin_lon(std::sin(site.longitude)),
      cos_lon(std::cos(site.longitude)) {}

AzElRange look_angles(const TopocentricFrame& frame, const Vec3& target) {
  const Vec3 d = target - frame.origin;
  const double slat = frame.sin_lat;
  const double clat = frame.cos_lat;
  const double slon = frame.sin_lon;
  const double clon = frame.cos_lon;

  // ENU basis expressed in ECEF.
  const double east = -slon * d.x + clon * d.y;
  const double north = -slat * clon * d.x - slat * slon * d.y + clat * d.z;
  const double up = clat * clon * d.x + clat * slon * d.y + slat * d.z;

  AzElRange out;
  out.range = d.norm();
  out.elevation = std::atan2(up, std::hypot(east, north));
  out.azimuth = wrap_two_pi(std::atan2(east, north));
  return out;
}

AzElRange look_angles(const Geodetic& site, const Vec3& target, EarthModel model) {
  return look_angles(TopocentricFrame(site, model), target);
}

double geocentre_clearance(const Vec3& a, const Vec3& b) {
  // Closest approach of segment ab to the geocentre.
  const Vec3 ab = b - a;
  const double len_sq = ab.norm_sq();
  double t = len_sq > 0.0 ? -a.dot(ab) / len_sq : 0.0;
  t = std::clamp(t, 0.0, 1.0);
  const Vec3 closest = a + t * ab;
  return closest.norm();
}

bool line_of_sight(const Vec3& a, const Vec3& b, double clearance_radius) {
  return geocentre_clearance(a, b) >= clearance_radius;
}

}  // namespace qntn::geo
