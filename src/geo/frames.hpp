#pragma once

#include "common/vec3.hpp"
#include "geo/geodetic.hpp"

/// \file frames.hpp
/// Reference-frame transforms used by the orbit propagator and the link
/// geometry: Earth-centred inertial (ECI, true-of-date approximation) to
/// Earth-centred Earth-fixed (ECEF) via Greenwich Mean Sidereal Time, and
/// ECEF to a topocentric East-North-Up (ENU) frame for azimuth/elevation.
///
/// This replaces the Ansys STK geometry pipeline the paper used; for
/// circular LEO over a single simulated day the simple GMST rotation agrees
/// with STK's high-fidelity frames far below the sensitivity of the FSO
/// link budget (see DESIGN.md §1).

namespace qntn::geo {

/// Greenwich Mean Sidereal Time [rad] for a simulation clock that starts at
/// gmst0 and advances at the sidereal rate. The absolute epoch is arbitrary
/// for this study (the paper reports daily totals, not wall-clock times), so
/// we parameterise on the initial angle.
[[nodiscard]] double gmst_at(double sim_time_s, double gmst0 = 0.0);

/// Rotate an ECI vector into ECEF given the Greenwich sidereal angle.
[[nodiscard]] Vec3 eci_to_ecef(const Vec3& eci, double gmst);

/// Rotate an ECEF vector into ECI given the Greenwich sidereal angle.
[[nodiscard]] Vec3 ecef_to_eci(const Vec3& ecef, double gmst);

/// Topocentric look angles from an observer to a target, both in ECEF [m].
struct AzElRange {
  double azimuth = 0.0;    ///< [rad], clockwise from north
  double elevation = 0.0;  ///< [rad], above the local horizontal plane
  double range = 0.0;      ///< [m], slant range
};

/// Compute az/el/range from an observer at geodetic position `site`
/// (defining the local ENU frame) to a target at ECEF `target`.
[[nodiscard]] AzElRange look_angles(const Geodetic& site, const Vec3& target,
                                    EarthModel model = EarthModel::Wgs84);

/// Precomputed ENU frame of a fixed observer: its ECEF position plus the
/// latitude/longitude sines and cosines that define the basis. Sweeps that
/// evaluate one site against many target positions (pass prediction, the
/// contact-plan compiler) hoist this out of the inner loop; the per-site
/// trigonometry is otherwise recomputed on every look_angles call. Results
/// are bit-identical to the Geodetic overload, which delegates here.
struct TopocentricFrame {
  explicit TopocentricFrame(const Geodetic& site,
                            EarthModel model = EarthModel::Wgs84);

  Vec3 origin;        ///< site position, ECEF [m]
  double sin_lat = 0.0;
  double cos_lat = 0.0;
  double sin_lon = 0.0;
  double cos_lon = 0.0;
};

/// Az/el/range from a precomputed observer frame to a target at ECEF
/// `target`. Bit-identical to look_angles(site, target) for the frame's
/// site.
[[nodiscard]] AzElRange look_angles(const TopocentricFrame& frame,
                                    const Vec3& target);

/// Closest-approach distance [m] of the straight segment between two ECEF
/// points to the geocentre. Because each endpoint moves no faster than its
/// platform, this distance is Lipschitz in time with the same speed bound —
/// scans use the slack above a blockage radius to hop grid points that
/// provably cannot lose line of sight.
[[nodiscard]] double geocentre_clearance(const Vec3& a, const Vec3& b);

/// True if the straight segment between two ECEF points clears a sphere of
/// radius `clearance_radius` centred at the geocentre (Earth-obstruction
/// test for inter-satellite links; pass kEarthRadius + grazing altitude).
[[nodiscard]] bool line_of_sight(const Vec3& a, const Vec3& b,
                                 double clearance_radius);

}  // namespace qntn::geo
