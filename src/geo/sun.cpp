#include "geo/sun.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace qntn::geo {

double SunModel::solar_elevation(const Geodetic& site, double t) const {
  // Subsolar longitude drifts westward one revolution per mean solar day.
  const double subsolar_lon =
      wrap_pi(subsolar_longitude0 - kTwoPi * t / kSecondsPerDay);
  const double hour_angle = wrap_pi(site.longitude - subsolar_lon);
  const double sin_el =
      std::sin(site.latitude) * std::sin(declination) +
      std::cos(site.latitude) * std::cos(declination) * std::cos(hour_angle);
  return std::asin(std::clamp(sin_el, -1.0, 1.0));
}

bool SunModel::is_night(const Geodetic& site, double t,
                        double twilight_angle) const {
  return solar_elevation(site, t) < twilight_angle;
}

double SunModel::night_fraction(const Geodetic& site, double duration,
                                double step) const {
  QNTN_REQUIRE(duration > 0.0 && step > 0.0, "duration/step must be positive");
  std::size_t dark = 0;
  std::size_t total = 0;
  for (double t = 0.0; t < duration; t += step) {
    ++total;
    if (is_night(site, t)) ++dark;
  }
  return static_cast<double>(dark) / static_cast<double>(total);
}

}  // namespace qntn::geo
