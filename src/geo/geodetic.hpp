#pragma once

#include "common/vec3.hpp"

/// \file geodetic.hpp
/// Geodetic coordinates and conversions to/from Earth-centred Earth-fixed
/// (ECEF) Cartesian coordinates. Two Earth models are supported:
///  - Spherical (mean radius) — what the paper's simple geometry implies;
///  - WGS84 ellipsoid — for higher-accuracy ground-station placement.
/// The simulator uses WGS84 by default; the difference is < 0.2% in the link
/// ranges that matter here, and tests pin both models.

namespace qntn::geo {

enum class EarthModel {
  Spherical,
  Wgs84,
};

/// Geodetic position: latitude/longitude in radians, altitude in metres
/// above the reference surface.
struct Geodetic {
  double latitude = 0.0;   ///< [rad], positive north
  double longitude = 0.0;  ///< [rad], positive east
  double altitude = 0.0;   ///< [m] above reference surface

  /// Convenience constructor from degrees (the unit in the paper's Table I).
  [[nodiscard]] static Geodetic from_degrees(double lat_deg, double lon_deg,
                                             double alt_m = 0.0);
};

/// Geodetic -> ECEF [m].
[[nodiscard]] Vec3 geodetic_to_ecef(const Geodetic& g,
                                    EarthModel model = EarthModel::Wgs84);

/// ECEF [m] -> geodetic. For WGS84 uses Bowring's iteration (converges to
/// sub-millimetre in a few rounds for any LEO-relevant altitude).
[[nodiscard]] Geodetic ecef_to_geodetic(const Vec3& ecef,
                                        EarthModel model = EarthModel::Wgs84);

/// Great-circle (haversine) surface distance [m] between two geodetic points,
/// ignoring altitude, on the spherical Earth.
[[nodiscard]] double great_circle_distance(const Geodetic& a, const Geodetic& b);

}  // namespace qntn::geo
