#include "geo/geodetic.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/units.hpp"

namespace qntn::geo {

Geodetic Geodetic::from_degrees(double lat_deg, double lon_deg, double alt_m) {
  return Geodetic{deg_to_rad(lat_deg), deg_to_rad(lon_deg), alt_m};
}

Vec3 geodetic_to_ecef(const Geodetic& g, EarthModel model) {
  const double slat = std::sin(g.latitude);
  const double clat = std::cos(g.latitude);
  const double slon = std::sin(g.longitude);
  const double clon = std::cos(g.longitude);
  if (model == EarthModel::Spherical) {
    const double r = kEarthRadius + g.altitude;
    return {r * clat * clon, r * clat * slon, r * slat};
  }
  // WGS84: prime-vertical radius of curvature N.
  const double n = kWgs84A / std::sqrt(1.0 - kWgs84E2 * slat * slat);
  return {(n + g.altitude) * clat * clon,
          (n + g.altitude) * clat * slon,
          (n * (1.0 - kWgs84E2) + g.altitude) * slat};
}

Geodetic ecef_to_geodetic(const Vec3& ecef, EarthModel model) {
  const double p = std::hypot(ecef.x, ecef.y);
  const double lon = std::atan2(ecef.y, ecef.x);
  if (model == EarthModel::Spherical) {
    const double r = ecef.norm();
    return {std::atan2(ecef.z, p), lon, r - kEarthRadius};
  }
  // Bowring iteration on geodetic latitude.
  double lat = std::atan2(ecef.z, p * (1.0 - kWgs84E2));
  double alt = 0.0;
  for (int i = 0; i < 8; ++i) {
    const double slat = std::sin(lat);
    const double n = kWgs84A / std::sqrt(1.0 - kWgs84E2 * slat * slat);
    alt = p / std::cos(lat) - n;
    lat = std::atan2(ecef.z, p * (1.0 - kWgs84E2 * n / (n + alt)));
  }
  return {lat, lon, alt};
}

double great_circle_distance(const Geodetic& a, const Geodetic& b) {
  const double dlat = b.latitude - a.latitude;
  const double dlon = b.longitude - a.longitude;
  const double s = std::sin(dlat / 2.0);
  const double t = std::sin(dlon / 2.0);
  const double h = s * s + std::cos(a.latitude) * std::cos(b.latitude) * t * t;
  return 2.0 * kEarthRadius * std::asin(std::min(1.0, std::sqrt(h)));
}

}  // namespace qntn::geo
