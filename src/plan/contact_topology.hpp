#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "plan/contact_plan.hpp"
#include "sim/network_model.hpp"
#include "sim/topology.hpp"

/// \file contact_topology.hpp
/// Event-driven TopologyProvider backed by a compiled ContactPlan.
///
/// Where TopologyBuilder::graph_at re-evaluates every link budget on every
/// call, this provider replays a precomputed open/close event timeline: a
/// forward query advances the cursor over the events in (last_t, t] and
/// toggles the affected windows; the graph is then assembled from the
/// static links plus the active windows' interpolated transmissivities.
/// Sweeping a day in time order costs O(events) total instead of
/// O(steps * N^2) budget evaluations.

namespace qntn::plan {

/// Serves sim::TopologyProvider::graph_at from a ContactPlan. Windows are
/// half-open [start, end): a link exists at its start time and is gone at
/// its end time, matching the per-step rebuild's classification at grid
/// times. The exception is windows clipped at the plan horizon — those
/// never close, so graph_at(horizon) equals the rebuild's final snapshot. Queries may jump backwards (the cursor resets and replays), and
/// the provider is safe to share across threads (the cursor is internally
/// locked). The plan and model must outlive the provider.
class ContactPlanTopology final : public sim::TopologyProvider {
 public:
  ContactPlanTopology(const ContactPlan& plan, const sim::NetworkModel& model);

  [[nodiscard]] net::Graph graph_at(double t) const override;

  /// All links realised at time t (static links first, then the active
  /// windows in plan order).
  [[nodiscard]] std::vector<sim::LinkRecord> links_at(double t) const;

  /// Number of open/close events in the timeline (two per window).
  [[nodiscard]] std::size_t event_count() const { return events_.size(); }

 private:
  struct Event {
    double time = 0.0;
    std::size_t window = 0;
    bool open = false;
  };

  /// Move the cursor to time t (caller holds mutex_).
  void seek(double t) const;

  const ContactPlan& plan_;
  const sim::NetworkModel& model_;
  std::vector<Event> events_;

  mutable std::mutex mutex_;
  mutable std::size_t next_event_ = 0;
  mutable double cursor_t_ = -1.0;
  mutable std::vector<char> active_;  ///< per-window open flag
};

}  // namespace qntn::plan
