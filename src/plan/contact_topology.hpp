#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/graph.hpp"
#include "plan/contact_plan.hpp"
#include "sim/network_model.hpp"
#include "sim/topology.hpp"

/// \file contact_topology.hpp
/// Epoch-partitioned TopologyProvider backed by a compiled ContactPlan.
///
/// Where TopologyBuilder::graph_at re-evaluates every link budget on every
/// call, this provider precomputes the *epoch partition* of the horizon from
/// the plan's sorted open/close events: between two consecutive event times
/// the active-window set — and therefore the edge set — is constant. Epochs
/// are dense (every link-state change opens one), so materialising the full
/// active set per epoch would cost O(epochs x windows) time and memory. The
/// constructor instead stores the sorted event stream plus a sorted
/// active-set *checkpoint* every kCheckpointStride epochs; a query binary-
/// searches the epoch start times, copies the nearest checkpoint at or
/// before the epoch, and merges in the few events between — O(log E +
/// active + stride), lock-free, random-access (no cursor, identical cost
/// forwards, backwards, or from many threads at once). snapshot_at
/// additionally refreshes a caller-held graph in place: same epoch rewrites
/// only the dynamic etas, and an epoch change truncates the dynamic tail
/// and re-appends it, reusing every allocation across epochs.

namespace qntn::plan {

/// Serves sim::TopologyProvider from a ContactPlan. Windows are half-open
/// [start, end): a link exists at its start time and is gone at its end
/// time, matching the per-step rebuild's classification at grid times. The
/// exception is windows clipped at the plan horizon — those never close, so
/// graph_at(horizon) equals the rebuild's final snapshot. All state is
/// immutable after construction; every query is safe from any thread with
/// no synchronisation. The plan and model must outlive the provider.
///
/// Thread-safety discipline: this class deliberately holds NO mutex, so
/// there is nothing for the clang -Wthread-safety annotations
/// (common/thread_safety.hpp) to guard — concurrent readers are safe
/// because every member is written exactly once, by the constructor.
/// Anyone adding mutable state (a memoisation cache, say) must guard it
/// with a qntn::Mutex + QNTN_GUARDED_BY so the CI lint job re-checks the
/// lock discipline; the parallel scenario/coverage engines query this
/// provider from many threads at once (tests/sim/parallel_scenario_test).
class ContactPlanTopology final : public sim::TopologyProvider {
 public:
  ContactPlanTopology(const ContactPlan& plan, const sim::NetworkModel& model);

  [[nodiscard]] net::Graph graph_at(double t) const override;

  /// All links realised at time t (static links first, then the active
  /// windows in plan order).
  [[nodiscard]] std::vector<sim::LinkRecord> links_at(double t) const;

  /// Epoch containing t: the largest epoch whose start time is <= t.
  /// Epoch 0 spans everything before the first event (no dynamic links).
  [[nodiscard]] std::size_t epoch_of(double t) const override;

  [[nodiscard]] std::size_t epoch_count() const override {
    return epoch_starts_.size();
  }

  /// Fill (or refresh in place) the snapshot for time t. Same-epoch refresh
  /// rewrites only the dynamic edges' transmissivities — zero allocation —
  /// and counts "plan.epoch_hits"; an epoch change rebuilds the dynamic
  /// tail (reusing the slot's graph storage when the slot is already owned
  /// by this provider) and counts "plan.epoch_builds". Either way
  /// "plan.graph_queries" ticks once, so hits + builds always reconcile
  /// with the query count.
  void snapshot_at(double t, sim::TopologySnapshot& snap) const override;

  /// The event stream between two epochs, as node pairs: the events applied
  /// at the starts of epochs from+1 .. to, read straight off the stored
  /// timeline (the same checkpoint+delta partition active_windows merges).
  /// O(events in the span); refuses spans longer than max_pairs so the
  /// shared epoch tree cache can bound its delta repairs.
  [[nodiscard]] bool epoch_delta(std::size_t from, std::size_t to,
                                 std::size_t max_pairs,
                                 std::vector<net::ChangedPair>& out)
      const override;

  /// Start time of epoch e; epoch 0 starts at -infinity. Epoch e covers
  /// [epoch_start(e), epoch_start(e + 1)) (the last one is unbounded).
  [[nodiscard]] double epoch_start(std::size_t epoch) const {
    return epoch_starts_[epoch];
  }

  /// Window ids (indices into plan().windows()) active throughout epoch e,
  /// ascending. Links of the epoch are the static links plus these.
  [[nodiscard]] std::vector<std::size_t> epoch_window_ids(
      std::size_t epoch) const;

  /// Number of open/close events in the timeline (two per window, one for
  /// windows clipped at the horizon).
  [[nodiscard]] std::size_t event_count() const { return event_count_; }

  [[nodiscard]] const ContactPlan& plan() const { return plan_; }

 private:
  /// One epoch boundary's effect on a single window.
  struct TimelineEvent {
    std::uint32_t window = 0;
    bool open = false;
  };

  /// Epochs between consecutive sorted active-set checkpoints. Queries pay
  /// O(stride) event merging on top of the checkpoint copy; the constructor
  /// pays one O(windows) scan per checkpoint. 64 keeps both far below the
  /// cost of the graph work a query does with the result.
  static constexpr std::size_t kCheckpointStride = 64;

  /// Ascending window ids active throughout `epoch`, reconstructed from the
  /// preceding checkpoint plus the events in between (last event wins).
  void active_windows(std::size_t epoch, std::vector<std::size_t>& out) const;

  /// Append the active windows' edges for (epoch, t) onto `graph`, which
  /// must hold exactly the static skeleton. `ids` receives the window ids.
  void append_dynamic_edges(std::size_t epoch, double t, net::Graph& graph,
                            std::vector<std::size_t>& ids) const;

  const ContactPlan& plan_;
  const sim::NetworkModel& model_;
  std::size_t event_count_ = 0;

  // Epoch partition: epoch e covers [epoch_starts_[e], epoch_starts_[e+1])
  // and applies events_[epoch_event_offsets_[e] .. epoch_event_offsets_[e+1])
  // at its start (epoch 0 applies none). Checkpoint c holds the active set
  // of epoch c * kCheckpointStride in checkpoint_ids_[checkpoint_offsets_[c]
  // .. checkpoint_offsets_[c+1]), ascending.
  std::vector<double> epoch_starts_;
  std::vector<TimelineEvent> events_;
  std::vector<std::size_t> epoch_event_offsets_;
  std::vector<std::size_t> checkpoint_offsets_;
  std::vector<std::uint32_t> checkpoint_ids_;

  // Immutable static skeleton (all nodes + time-invariant links); graph
  // builds start from a copy of it instead of re-adding every node.
  net::Graph skeleton_;
  std::size_t static_edge_count_ = 0;
};

}  // namespace qntn::plan
