#include "plan/contact_plan.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "geo/frames.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "orbit/passes.hpp"

namespace qntn::plan {

namespace {

/// Bisect a boolean linkability predicate's flip inside [lo, hi] (predicate
/// differs at the ends) to ~1 ms, mirroring orbit/passes' crossing
/// refinement. Templated on the predicate: these run hundreds of thousands
/// of times per compile, and a std::function hop per sample is measurable.
template <class Linkable>
double refine_flip(const Linkable& linkable, double lo, double hi,
                   bool rising) {
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (linkable(mid) == rising) {
      hi = mid;
    } else {
      lo = mid;
    }
    if (hi - lo < 1e-3) break;
  }
  return 0.5 * (lo + hi);
}

/// Drop interior points of a polyline while linear interpolation between
/// the retained points stays within `tol` of every dropped sample (the
/// streaming "sleeve" algorithm: track the feasible slope corridor from the
/// current anchor). Retained points keep their exact sampled values.
void compress_polyline(std::vector<double>& times, std::vector<double>& etas,
                       double tol) {
  const std::size_t n = times.size();
  if (tol <= 0.0 || n <= 2) return;
  std::vector<double> kept_t, kept_e;
  kept_t.reserve(n);
  kept_e.reserve(n);
  std::size_t anchor = 0;
  kept_t.push_back(times[0]);
  kept_e.push_back(etas[0]);
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i < n; ++i) {
    const double dt = times[i] - times[anchor];
    const double slope = (etas[i] - etas[anchor]) / dt;
    if (i + 1 < n && slope >= lo && slope <= hi) {
      // Segment anchor->i still passes within tol of every skipped point;
      // tighten the corridor so future extensions keep point i in reach.
      lo = std::max(lo, (etas[i] - tol - etas[anchor]) / dt);
      hi = std::min(hi, (etas[i] + tol - etas[anchor]) / dt);
      continue;
    }
    if (i + 1 == n) {
      // Always keep the final point; if the closing segment violates the
      // corridor, keep the previous point too.
      if ((slope < lo || slope > hi) && i - 1 > anchor) {
        kept_t.push_back(times[i - 1]);
        kept_e.push_back(etas[i - 1]);
      }
      kept_t.push_back(times[i]);
      kept_e.push_back(etas[i]);
      break;
    }
    // Corridor violated: the previous point becomes the new anchor.
    anchor = i - 1;
    kept_t.push_back(times[anchor]);
    kept_e.push_back(etas[anchor]);
    const double ndt = times[i] - times[anchor];
    lo = (etas[i] - tol - etas[anchor]) / ndt;
    hi = (etas[i] + tol - etas[anchor]) / ndt;
  }
  times = std::move(kept_t);
  etas = std::move(kept_e);
}

/// Recursively sample a smooth eta(t) over [t0, t1]: subdivide until linear
/// interpolation matches the midpoint within tol (spans longer than
/// `always_split` are split unconditionally so symmetric oscillations
/// cannot fool the midpoint test) or the span falls below `min_dt`.
template <class Eta>
void sample_adaptive(const Eta& eta, double t0, double e0, double t1,
                     double e1, double tol, double min_dt,
                     double always_split, std::vector<double>& times,
                     std::vector<double>& etas) {
  const double span = t1 - t0;
  if (span > min_dt) {
    const double tm = 0.5 * (t0 + t1);
    const double em = eta(tm);
    if (span > always_split || std::abs(em - 0.5 * (e0 + e1)) > tol) {
      sample_adaptive(eta, t0, e0, tm, em, tol, min_dt, always_split, times,
                      etas);
      sample_adaptive(eta, tm, em, t1, e1, tol, min_dt, always_split, times,
                      etas);
      return;
    }
  }
  times.push_back(t1);
  etas.push_back(e1);
}

struct Compiler {
  const sim::NetworkModel& model;
  const sim::LinkPolicy& policy;
  const ContactPlanOptions& options;
  const sim::TopologyBuilder builder;
  std::vector<ContactWindow> windows;
  /// Structure-of-arrays ECEF position tables of each satellite at the
  /// global scan grid times k*step: every site and every pairing scans the
  /// same grid, so one table per satellite replaces the redundant
  /// position_ecef calls (hundreds per grid point at paper sizes). Entries
  /// are exactly position_ecef(k*step), keeping every scan bit-identical.
  /// Filled by prefill_grids before the compile passes; the parallel
  /// fan-out shares the tables read-only.
  std::vector<std::vector<Vec3>> grid_pos;

  Compiler(const sim::NetworkModel& m, const sim::LinkPolicy& p,
           const ContactPlanOptions& o)
      : model(m), policy(p), options(o), builder(m, p),
        grid_pos(m.node_count()) {}

  void fill_grid(net::NodeId sat_id) {
    std::vector<Vec3>& cache = grid_pos[sat_id];
    const orbit::Ephemeris& eph = model.ephemeris(sat_id);
    const auto count = static_cast<std::size_t>(std::floor(
                           options.horizon / options.step + 1e-9)) +
                       1;
    cache.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      cache.push_back(eph.position_ecef(static_cast<double>(k) * options.step));
    }
  }

  /// Fill every satellite's grid table up front — in parallel when a pool
  /// is given (each index writes only its own slot). Must complete before
  /// the compile passes fan out: a lazy fill would race across workers.
  void prefill_grids(ThreadPool* pool) {
    const std::vector<net::NodeId>& sats = model.satellite_ids();
    if (pool != nullptr && pool->size() > 1 && sats.size() > 1) {
      parallel_for_index(*pool, sats.size(),
                         [&](std::size_t i) { fill_grid(sats[i]); });
    } else {
      for (const net::NodeId sat : sats) fill_grid(sat);
    }
  }

  [[nodiscard]] const std::vector<Vec3>& grid_positions(
      net::NodeId sat_id) const {
    return grid_pos[sat_id];
  }

  /// Append a window for pair (a, b) spanning [start, end) with the given
  /// sampled profile (compressed in place).
  void emit(net::NodeId a, net::NodeId b, double start, double end,
            std::vector<double> times, std::vector<double> etas,
            std::vector<ContactWindow>& out) const {
    if (end - start < 1e-6) return;  // degenerate: below refinement precision
    ContactWindow window;
    window.a = a;
    window.b = b;
    window.start = start;
    window.end = end;
    compress_polyline(times, etas, options.sample_tolerance);
    window.times = std::move(times);
    window.etas = std::move(etas);
    out.push_back(std::move(window));
  }

  /// Windows of one site (ground or HAP) against one satellite: pass
  /// prediction above the elevation mask, then above-threshold episodes
  /// within each pass on the scan grid, boundaries refined by bisection.
  void compile_site_satellite(net::NodeId site_id, net::NodeId sat_id,
                              const channel::FsoLinkEvaluator& evaluator,
                              std::vector<ContactWindow>& out) const {
    const std::vector<orbit::Pass> passes = orbit::find_passes_adaptive(
        model.ephemeris(sat_id), model.node(site_id).position,
        options.horizon, policy.elevation_mask, options.step,
        options.max_elevation_rate);
    compile_site_within(site_id, sat_id, evaluator, passes, out);
  }

  /// Windows of one site against one satellite, scanning only inside the
  /// given candidate passes. The candidates must cover every instant the
  /// site can see the satellite above the elevation mask; they may be wider
  /// (the grid classification below re-checks the mask per sample, exactly
  /// as the per-step rebuild does). This is how one widened-mask pass
  /// search is shared across a whole LAN of near-colocated sites.
  void compile_site_within(net::NodeId site_id, net::NodeId sat_id,
                           const channel::FsoLinkEvaluator& evaluator,
                           const std::vector<orbit::Pass>& passes,
                           std::vector<ContactWindow>& out) const {
    const geo::Geodetic& site = model.node(site_id).position;
    // One ENU frame per site/satellite sweep; the scan and the boundary
    // bisections evaluate it millions of times per compile.
    const geo::TopocentricFrame frame(site);
    const orbit::Ephemeris& eph = model.ephemeris(sat_id);
    const double threshold = policy.transmissivity_threshold;
    const double step = options.step;

    const auto eta_at = [&](double t) {
      const geo::AzElRange look = geo::look_angles(frame, eph.position_ecef(t));
      return evaluator.symmetric(look.range, look.elevation);
    };
    const auto linkable = [&](double t) {
      const geo::AzElRange look = geo::look_angles(frame, eph.position_ecef(t));
      return look.elevation >= policy.elevation_mask &&
             evaluator.symmetric(look.range, look.elevation) >= threshold;
    };

    const std::vector<Vec3>& sat_grid = grid_positions(sat_id);
    // Structure-of-arrays scratch reused across the sweep's passes: the
    // look angles of one pass's grid slice, the above-mask subset packed
    // into contiguous buffers for the batched budget evaluation, and the
    // per-point transmissivities scattered back (0 below the mask, exactly
    // as the scalar scan computed them).
    std::vector<double> grid_elev, grid_eta;
    std::vector<double> vis_range, vis_elev, vis_eta;
    std::vector<std::size_t> vis_idx;
    for (const orbit::Pass& pass : passes) {
      // Grid points inside the pass (nudged so a boundary exactly on the
      // grid still counts as inside).
      const auto k_lo =
          static_cast<std::size_t>(std::ceil(pass.aos / step - 1e-9));
      const auto k_hi =
          static_cast<std::size_t>(std::floor(pass.los / step + 1e-9));
      if (k_lo > k_hi) continue;  // sub-step pass: invisible to the grid

      // Mask first, budget second — the same predicate the per-step
      // rebuild applies, so a candidate grid point below the site's own
      // mask can never open a window.
      const std::size_t count = k_hi - k_lo + 1;
      grid_elev.resize(count);
      grid_eta.assign(count, 0.0);
      vis_range.clear();
      vis_elev.clear();
      vis_idx.clear();
      for (std::size_t idx = 0; idx < count; ++idx) {
        const geo::AzElRange look =
            geo::look_angles(frame, sat_grid[k_lo + idx]);
        grid_elev[idx] = look.elevation;
        if (look.elevation >= policy.elevation_mask) {
          vis_idx.push_back(idx);
          vis_range.push_back(look.range);
          vis_elev.push_back(look.elevation);
        }
      }
      vis_eta.resize(vis_idx.size());
      evaluator.symmetric_batch(vis_range.data(), vis_elev.data(),
                                vis_idx.size(), vis_eta.data());
      for (std::size_t i = 0; i < vis_idx.size(); ++i) {
        grid_eta[vis_idx[i]] = vis_eta[i];
      }

      bool in_window = false;
      double window_start = 0.0;
      std::vector<double> times, etas;
      // Skip duplicates when a refined boundary lands exactly on the grid.
      double last_pushed = -std::numeric_limits<double>::infinity();
      const auto push_sample = [&](double t, double eta) {
        if (t <= last_pushed + 1e-9) return;
        times.push_back(t);
        etas.push_back(eta);
        last_pushed = t;
      };
      const auto close_window = [&](double end) {
        push_sample(end, eta_at(end));
        emit(site_id, sat_id, window_start, last_pushed, std::move(times),
             std::move(etas), out);
      };
      double prev_t = pass.aos;
      for (std::size_t k = k_lo; k <= k_hi; ++k) {
        const double t = static_cast<double>(k) * step;
        const bool visible = grid_elev[k - k_lo] >= policy.elevation_mask;
        const double eta = grid_eta[k - k_lo];
        const bool above = visible && eta >= threshold;
        if (above && !in_window) {
          in_window = true;
          times.clear();
          etas.clear();
          last_pushed = -std::numeric_limits<double>::infinity();
          if (k == k_lo && linkable(pass.aos)) {
            // Already above threshold when the satellite clears the mask.
            window_start = pass.aos;
          } else {
            window_start = refine_flip(linkable, prev_t, t, /*rising=*/true);
          }
          push_sample(window_start, eta_at(window_start));
          push_sample(t, eta);
        } else if (above && in_window) {
          push_sample(t, eta);
        } else if (!above && in_window) {
          close_window(refine_flip(linkable, prev_t, t, /*rising=*/false));
          in_window = false;
        }
        prev_t = t;
      }
      if (in_window) {
        // Still above threshold at the last grid point of the pass: the
        // window closes where the link drops, at latest at LOS (or the
        // horizon clip).
        double end = pass.los;
        if (!linkable(pass.los) && pass.los > prev_t) {
          end = refine_flip(linkable, prev_t, pass.los, /*rising=*/false);
        }
        close_window(end);
      }
    }
  }

  /// Windows of one satellite pair: line-of-sight clearance plus the range
  /// at which the vacuum link budget crosses the threshold (transmissivity
  /// is monotone decreasing in range for the focused beam, pinned by
  /// tests), so the scan is pure geometry; transmissivities are sampled
  /// adaptively only inside windows.
  ///
  /// `min_radius` is a lower bound on both endpoints' geocentric radii over
  /// the whole horizon (min ephemeris sample radius, deflated for the
  /// interpolation sagitta). Any segment shorter than the chord of the
  /// min-radius sphere tangent to the blockage sphere stays above the
  /// blockage sphere regardless of orientation, so line of sight needs an
  /// explicit check only beyond that range — and a window can only close
  /// once the range climbs to the threshold band or that chord, which
  /// bounds how long it must persist and lets the scan hop in-window grid
  /// points too (ISL windows last hours at full grid resolution otherwise).
  void compile_satellite_pair(net::NodeId sat_a, net::NodeId sat_b,
                              const channel::FsoLinkEvaluator& evaluator,
                              double threshold_range, double min_radius,
                              std::vector<ContactWindow>& out) const {
    const orbit::Ephemeris& eph_a = model.ephemeris(sat_a);
    const orbit::Ephemeris& eph_b = model.ephemeris(sat_b);
    const double threshold = policy.transmissivity_threshold;
    const double step = options.step;
    const double clearance = kEarthRadius + kAtmosphereTopAltitude;
    // Within this band of the threshold range, decide by the actual link
    // budget instead of the precomputed crossing (guards the bisection
    // tolerance).
    const double band = 10.0;  // [m]
    // Chord of the min-radius sphere whose midpoint grazes the blockage
    // sphere: clearance(a, b) >= sqrt(min_radius^2 - (range/2)^2) for any
    // endpoints at radius >= min_radius, so ranges at or below this bound
    // have guaranteed line of sight.
    const double los_safe_range =
        2.0 * std::sqrt(std::max(
                  0.0, min_radius * min_radius - clearance * clearance));

    const auto range_at = [&](double t) {
      return distance(eph_a.position_ecef(t), eph_b.position_ecef(t));
    };
    const auto linkable = [&](double t) {
      const Vec3 pa = eph_a.position_ecef(t);
      const Vec3 pb = eph_b.position_ecef(t);
      const double range = distance(pa, pb);
      if (range > los_safe_range && !geo::line_of_sight(pa, pb, clearance)) {
        return false;
      }
      if (range <= threshold_range - band) return true;
      if (range >= threshold_range + band) return false;
      return evaluator.symmetric(range, kPi / 2.0) >= threshold;
    };
    const auto eta_at = [&](double t) {
      return evaluator.symmetric(range_at(t), kPi / 2.0);
    };

    // The range below which the link cannot drop: to close, the range must
    // first reach the threshold band or the line-of-sight chord.
    const double close_range = std::min(threshold_range - band, los_safe_range);
    const std::vector<Vec3>& grid_a = grid_positions(sat_a);
    const std::vector<Vec3>& grid_b = grid_positions(sat_b);
    bool in_window = linkable(0.0);
    double window_start = 0.0;
    double prev_t = 0.0;
    double prev_range = range_at(0.0);
    std::size_t k = 0;
    while (prev_t < options.horizon) {
      // Hop grid points the range-rate bound proves uneventful: out of
      // window the range cannot fall back to the threshold yet; in window
      // it cannot climb to the band or far enough to lose line of sight.
      std::size_t hop = 1;
      if (options.max_range_rate > 0.0) {
        const double slack = in_window ? close_range - prev_range
                                       : prev_range - threshold_range;
        if (slack > 0.0) {
          hop = std::max<std::size_t>(
              1, static_cast<std::size_t>(slack /
                                          (options.max_range_rate * step)));
        }
      }
      k += hop;
      const double t = std::min(static_cast<double>(k) * step, options.horizon);
      const bool on_grid = k < grid_a.size();
      const Vec3 pa = on_grid ? grid_a[k] : eph_a.position_ecef(t);
      const Vec3 pb = on_grid ? grid_b[k] : eph_b.position_ecef(t);
      const double range = distance(pa, pb);
      bool above = false;
      if (range <= los_safe_range || geo::line_of_sight(pa, pb, clearance)) {
        if (range <= threshold_range - band) {
          above = true;
        } else if (range < threshold_range + band) {
          above = evaluator.symmetric(range, kPi / 2.0) >= threshold;
        }
      }
      if (above && !in_window) {
        window_start = refine_flip(linkable, prev_t, t, /*rising=*/true);
        in_window = true;
      } else if (!above && in_window) {
        const double end = refine_flip(linkable, prev_t, t, /*rising=*/false);
        emit_isl(sat_a, sat_b, window_start, end, eta_at, out);
        in_window = false;
      }
      prev_t = t;
      prev_range = range;
    }
    if (in_window) {
      emit_isl(sat_a, sat_b, window_start, options.horizon, eta_at, out);
    }
  }

  template <class Eta>
  void emit_isl(net::NodeId sat_a, net::NodeId sat_b, double start, double end,
                const Eta& eta_at, std::vector<ContactWindow>& out) const {
    if (end - start < 1e-6) return;
    std::vector<double> times{start};
    std::vector<double> etas{eta_at(start)};
    // Split spans beyond 16 grid steps unconditionally: ISL ranges breathe
    // on the orbital period, and a symmetric arc could sneak past a single
    // midpoint test.
    sample_adaptive(eta_at, start, etas.front(), end, eta_at(end),
                    options.sample_tolerance, options.step,
                    16.0 * options.step, times, etas);
    emit(sat_a, sat_b, start, end, std::move(times), std::move(etas), out);
  }

  /// A set of near-colocated sites sharing one candidate pass search (a
  /// LAN spans a campus, so its members see every satellite within a
  /// fraction of a degree of each other).
  struct SiteGroup {
    std::vector<net::NodeId> sites;
    geo::Geodetic centroid;
    double max_chord = 0.0;  ///< [m], farthest member from the centroid
  };

  [[nodiscard]] SiteGroup make_group(
      const std::vector<net::NodeId>& sites) const {
    SiteGroup group;
    group.sites = sites;
    double lat = 0.0, lon = 0.0, alt = 0.0;
    for (const net::NodeId id : sites) {
      const geo::Geodetic& g = model.node(id).position;
      lat += g.latitude;
      lon += g.longitude;
      alt += g.altitude;
    }
    const double n = static_cast<double>(sites.size());
    group.centroid = {lat / n, lon / n, alt / n};
    const Vec3 centre = geo::geodetic_to_ecef(group.centroid);
    for (const net::NodeId id : sites) {
      group.max_chord = std::max(
          group.max_chord,
          distance(centre, geo::geodetic_to_ecef(model.node(id).position)));
    }
    return group;
  }

  /// Lowest sample altitude of a satellite over the horizon [m] — a sound
  /// floor on the slant range of any above-mask contact, used to bound how
  /// much the elevation to a satellite can differ across a site group.
  [[nodiscard]] double min_altitude(net::NodeId sat_id) const {
    const orbit::Ephemeris& eph = model.ephemeris(sat_id);
    double min_radius = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < eph.sample_count(); ++i) {
      min_radius = std::min(min_radius, eph.sample(i).norm());
    }
    return min_radius - kEarthRadius;
  }

  /// Compile every site of the group against one satellite. Groups of two
  /// or more share a single widened-mask pass search at the centroid: for
  /// members within max_chord of the centroid, elevations differ from the
  /// centroid's by at most asin(chord / slant_range) + chord / R_earth, so
  /// lowering the mask by that margin yields candidate passes covering
  /// every member's own passes. Each member then scans only inside the
  /// candidates, applying its own exact mask/threshold per grid sample.
  void compile_group(const SiteGroup& group, net::NodeId sat_id,
                     const channel::FsoLinkEvaluator& evaluator,
                     double slant_floor, std::vector<ContactWindow>& out) const {
    const double margin =
        group.sites.size() > 1
            ? std::asin(std::min(1.0, group.max_chord / slant_floor)) +
                  group.max_chord / kEarthRadius + 1e-4
            : 0.0;
    if (group.sites.size() == 1 || margin >= policy.elevation_mask) {
      // Solo site, or the group is too spread out for a sound shared scan
      // (e.g. a degenerate centroid across the antimeridian): per-site
      // pass searches.
      for (const net::NodeId site : group.sites) {
        compile_site_satellite(site, sat_id, evaluator, out);
      }
      return;
    }
    const std::vector<orbit::Pass> candidates = orbit::find_passes_adaptive(
        model.ephemeris(sat_id), group.centroid, options.horizon,
        policy.elevation_mask - margin, options.step,
        options.max_elevation_rate);
    for (const net::NodeId site : group.sites) {
      compile_site_within(site, sat_id, evaluator, candidates, out);
    }
  }

  /// Largest range at which the ISL budget meets the threshold (bisection
  /// on the monotone budget); 0 when even touching terminals fail, +inf
  /// when the horizon-scale range still passes.
  [[nodiscard]] double isl_threshold_range(
      const channel::FsoLinkEvaluator& evaluator) const {
    const double threshold = policy.transmissivity_threshold;
    double lo = 1.0;
    if (evaluator.symmetric(lo, kPi / 2.0) < threshold) return 0.0;
    double hi = 1.0e8;  // far beyond any LEO pair separation
    if (evaluator.symmetric(hi, kPi / 2.0) >= threshold) {
      return std::numeric_limits<double>::infinity();
    }
    for (int iter = 0; iter < 80; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (evaluator.symmetric(mid, kPi / 2.0) >= threshold) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return 0.5 * (lo + hi);
  }

  /// Run `task(i, out)` for i in [0, count), appending windows to `out`.
  /// Serial: every task appends straight to `windows`. Parallel: each task
  /// fills its own buffer (workers inherit the caller's ambient registry /
  /// profiler, which are thread-safe), and the buffers are spliced in task
  /// order — the concatenation equals the serial append order exactly, so
  /// the compiled plan is byte-identical for any thread count.
  template <class Task>
  void fan_out(ThreadPool* pool, std::size_t count, const Task& task) {
    const bool parallel = pool != nullptr && pool->size() > 1 && count > 1;
    if (!parallel) {
      for (std::size_t i = 0; i < count; ++i) task(i, windows);
      return;
    }
    std::vector<std::vector<ContactWindow>> parts(count);
    obs::Registry* const registry = obs::ambient();
    obs::Profiler* const profiler = obs::ambient_profiler();
    parallel_for_index(*pool, count, [&](std::size_t i) {
      const obs::ScopedRegistry worker_registry(registry);
      const obs::ScopedProfiler worker_profiler(profiler);
      task(i, parts[i]);
    });
    for (std::vector<ContactWindow>& part : parts) {
      windows.insert(windows.end(), std::make_move_iterator(part.begin()),
                     std::make_move_iterator(part.end()));
    }
  }

  ContactPlan run(ThreadPool* pool) {
    const obs::Span compile_span("plan.compile", model.node_count());
    const std::vector<net::NodeId>& sats = model.satellite_ids();
    prefill_grids(pool);

    if (const auto* ground_sat =
            builder.evaluator(sim::NodeKind::Ground, sim::NodeKind::Satellite)) {
      const obs::Span span("plan.compile.ground_sat", sats.size());
      std::vector<SiteGroup> groups;
      groups.reserve(model.lan_count());
      for (std::size_t lan = 0; lan < model.lan_count(); ++lan) {
        groups.push_back(make_group(model.lan_nodes(lan)));
      }
      fan_out(pool, sats.size(),
              [&](std::size_t si, std::vector<ContactWindow>& out) {
                const net::NodeId sat = sats[si];
                const double slant_floor =
                    std::max(1e3, min_altitude(sat) - 1e4);
                for (const SiteGroup& group : groups) {
                  compile_group(group, sat, *ground_sat, slant_floor, out);
                }
              });
    }
    if (const auto* hap_sat =
            builder.evaluator(sim::NodeKind::Hap, sim::NodeKind::Satellite)) {
      const obs::Span span("plan.compile.hap_sat", sats.size());
      fan_out(pool, sats.size(),
              [&](std::size_t si, std::vector<ContactWindow>& out) {
                for (const net::NodeId hap : model.hap_ids()) {
                  compile_site_satellite(hap, sats[si], *hap_sat, out);
                }
              });
    }
    if (const auto* sat_sat = builder.evaluator(sim::NodeKind::Satellite,
                                                sim::NodeKind::Satellite)) {
      const obs::Span span("plan.compile.isl", sats.size());
      const double threshold_range = isl_threshold_range(*sat_sat);
      if (threshold_range > 0.0) {
        std::vector<double> min_alt(sats.size());
        for (std::size_t i = 0; i < sats.size(); ++i) {
          min_alt[i] = min_altitude(sats[i]);
        }
        fan_out(pool, sats.size(),
                [&](std::size_t i, std::vector<ContactWindow>& out) {
                  for (std::size_t j = i + 1; j < sats.size(); ++j) {
                    // 10 km deflation covers the linear-interpolation
                    // sagitta of the sampled ephemerides, as in the
                    // ground-station slant floor.
                    const double min_radius =
                        kEarthRadius + std::min(min_alt[i], min_alt[j]) - 1e4;
                    compile_satellite_pair(sats[i], sats[j], *sat_sat,
                                           threshold_range, min_radius, out);
                  }
                });
      }
    }

    return ContactPlan(std::move(windows), builder.static_links(),
                       model.node_count(), options.horizon);
  }
};

}  // namespace

double ContactWindow::eta_at(double t) const {
  t = std::clamp(t, start, end);
  const auto it = std::upper_bound(times.begin(), times.end(), t);
  if (it == times.begin()) return etas.front();
  if (it == times.end()) return etas.back();
  const auto hi = static_cast<std::size_t>(it - times.begin());
  const std::size_t lo = hi - 1;
  const double span = times[hi] - times[lo];
  if (span <= 0.0) return etas[lo];
  const double w = (t - times[lo]) / span;
  return etas[lo] + w * (etas[hi] - etas[lo]);
}

ContactPlan::ContactPlan(std::vector<ContactWindow> windows,
                         std::vector<sim::LinkRecord> static_links,
                         std::size_t node_count, double horizon)
    : windows_(std::move(windows)),
      static_links_(std::move(static_links)),
      node_count_(node_count),
      horizon_(horizon) {
  std::sort(windows_.begin(), windows_.end(),
            [](const ContactWindow& a, const ContactWindow& b) {
              return a.start < b.start;
            });
  for (const ContactWindow& window : windows_) {
    QNTN_REQUIRE(window.times.size() >= 2 &&
                     window.times.size() == window.etas.size(),
                 "contact window needs a sampled profile");
  }
}

std::vector<const ContactWindow*> ContactPlan::pair_windows(
    net::NodeId a, net::NodeId b) const {
  std::vector<const ContactWindow*> out;
  for (const ContactWindow& window : windows_) {
    if ((window.a == a && window.b == b) || (window.a == b && window.b == a)) {
      out.push_back(&window);
    }
  }
  return out;
}

ContactPlanStats ContactPlan::stats() const {
  ContactPlanStats stats;
  stats.window_count = windows_.size();
  for (const ContactWindow& window : windows_) {
    stats.total_contact += window.duration();
    stats.sample_count += window.times.size();
  }
  if (stats.window_count > 0) {
    stats.mean_window_duration =
        stats.total_contact / static_cast<double>(stats.window_count);
  }
  return stats;
}

ContactPlan compile_contact_plan(const sim::NetworkModel& model,
                                 const sim::LinkPolicy& policy,
                                 const ContactPlanOptions& options,
                                 ThreadPool* pool) {
  QNTN_REQUIRE(options.horizon > 0.0 && options.step > 0.0,
               "contact plan horizon/step must be positive");
  Compiler compiler(model, policy, options);
  return compiler.run(pool);
}

}  // namespace qntn::plan
