#include "plan/contact_topology.hpp"

#include <algorithm>

#include "obs/profiler.hpp"
#include "obs/registry.hpp"

namespace qntn::plan {

ContactPlanTopology::ContactPlanTopology(const ContactPlan& plan,
                                         const sim::NetworkModel& model)
    : plan_(plan), model_(model) {
  const std::vector<ContactWindow>& windows = plan_.windows();
  events_.reserve(2 * windows.size());
  for (std::size_t w = 0; w < windows.size(); ++w) {
    events_.push_back({windows[w].start, w, /*open=*/true});
    // Windows clipped at the horizon never close: the link is still up at
    // t == horizon (as the per-step rebuild sees it); later queries are
    // extrapolation either way.
    if (windows[w].end < plan_.horizon()) {
      events_.push_back({windows[w].end, w, /*open=*/false});
    }
  }
  std::sort(events_.begin(), events_.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.open < b.open;  // closes first: windows are half-open [start, end)
  });
  active_.assign(windows.size(), 0);
}

void ContactPlanTopology::seek(double t) const {
  if (t < cursor_t_) {
    // Backward jump: replay from the beginning (rare in simulation sweeps).
    next_event_ = 0;
    std::fill(active_.begin(), active_.end(), 0);
    obs::count("plan.replay_resets");
  }
  const std::size_t first = next_event_;
  while (next_event_ < events_.size() && events_[next_event_].time <= t) {
    const Event& event = events_[next_event_];
    active_[event.window] = event.open ? 1 : 0;
    ++next_event_;
  }
  if (next_event_ != first) obs::count("plan.replay_events", next_event_ - first);
  cursor_t_ = t;
}

std::vector<sim::LinkRecord> ContactPlanTopology::links_at(double t) const {
  obs::count("plan.graph_queries");
  const std::lock_guard<std::mutex> lock(mutex_);
  seek(t);
  std::vector<sim::LinkRecord> links = plan_.static_links();
  const std::vector<ContactWindow>& windows = plan_.windows();
  for (std::size_t w = 0; w < windows.size(); ++w) {
    if (!active_[w]) continue;
    const ContactWindow& window = windows[w];
    links.push_back({window.a, window.b, window.eta_at(t)});
  }
  return links;
}

net::Graph ContactPlanTopology::graph_at(double t) const {
  const obs::Span span("plan.graph_at");
  net::Graph graph;
  for (const sim::Node& node : model_.nodes()) {
    graph.add_node(node.name);
  }
  for (const sim::LinkRecord& link : links_at(t)) {
    graph.add_edge(link.a, link.b, link.transmissivity);
  }
  return graph;
}

}  // namespace qntn::plan
