#include "plan/contact_topology.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"

namespace qntn::plan {

namespace {

struct Event {
  double time = 0.0;
  std::size_t window = 0;
  bool open = false;
};

}  // namespace

ContactPlanTopology::ContactPlanTopology(const ContactPlan& plan,
                                         const sim::NetworkModel& model)
    : plan_(plan), model_(model) {
  const std::vector<ContactWindow>& windows = plan_.windows();
  QNTN_REQUIRE(windows.size() < std::numeric_limits<std::uint32_t>::max(),
               "contact plan window count overflows the event encoding");
  std::vector<Event> events;
  events.reserve(2 * windows.size());
  for (std::size_t w = 0; w < windows.size(); ++w) {
    events.push_back({windows[w].start, w, /*open=*/true});
    // Windows clipped at the horizon never close: the link is still up at
    // t == horizon (as the per-step rebuild sees it); later queries are
    // extrapolation either way.
    if (windows[w].end < plan_.horizon()) {
      events.push_back({windows[w].end, w, /*open=*/false});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.open < b.open;  // closes first: windows are half-open [start, end)
  });
  event_count_ = events.size();

  // Sweep the timeline once: every distinct event time opens a new epoch
  // whose active set is the state after applying all events at that time.
  // A query at exactly an event time must see those events applied (epoch e
  // covers [starts[e], starts[e+1])), and epoch 0 — before any event — is
  // empty. Only the event stream and periodic checkpoints are stored;
  // active_windows() reconstructs any epoch from those.
  epoch_starts_.reserve(events.size() + 1);
  events_.reserve(events.size());
  epoch_event_offsets_.reserve(events.size() + 2);
  epoch_starts_.push_back(-std::numeric_limits<double>::infinity());
  epoch_event_offsets_.push_back(0);
  epoch_event_offsets_.push_back(0);  // epoch 0: no events, nothing active
  checkpoint_offsets_.push_back(0);
  checkpoint_offsets_.push_back(0);  // checkpoint for epoch 0: empty
  std::vector<char> active(windows.size(), 0);
  std::size_t i = 0;
  while (i < events.size()) {
    const double time = events[i].time;
    for (; i < events.size() && events[i].time == time; ++i) {
      active[events[i].window] = events[i].open ? 1 : 0;
      events_.push_back(
          {static_cast<std::uint32_t>(events[i].window), events[i].open});
    }
    epoch_starts_.push_back(time);
    epoch_event_offsets_.push_back(events_.size());
    const std::size_t epoch = epoch_starts_.size() - 1;
    if (epoch % kCheckpointStride == 0) {
      for (std::uint32_t w = 0; w < windows.size(); ++w) {
        if (active[w] != 0) checkpoint_ids_.push_back(w);
      }
      checkpoint_offsets_.push_back(checkpoint_ids_.size());
    }
  }

  for (const sim::Node& node : model_.nodes()) {
    skeleton_.add_node(node.name);
  }
  for (const sim::LinkRecord& link : plan_.static_links()) {
    skeleton_.add_edge(link.a, link.b, link.transmissivity);
  }
  static_edge_count_ = skeleton_.edge_count();
}

std::size_t ContactPlanTopology::epoch_of(double t) const {
  // Largest epoch with start <= t; starts[0] = -inf guarantees a hit.
  const auto it =
      std::upper_bound(epoch_starts_.begin(), epoch_starts_.end(), t);
  return static_cast<std::size_t>(it - epoch_starts_.begin()) - 1;
}

void ContactPlanTopology::active_windows(std::size_t epoch,
                                         std::vector<std::size_t>& out) const {
  out.clear();
  const std::size_t checkpoint = epoch / kCheckpointStride;
  const std::size_t ck_begin = checkpoint_offsets_[checkpoint];
  const std::size_t ck_end = checkpoint_offsets_[checkpoint + 1];
  const std::size_t ev_begin =
      epoch_event_offsets_[checkpoint * kCheckpointStride + 1];
  const std::size_t ev_end = epoch_event_offsets_[epoch + 1];
  if (ev_begin == ev_end) {
    out.assign(checkpoint_ids_.begin() + static_cast<std::ptrdiff_t>(ck_begin),
               checkpoint_ids_.begin() + static_cast<std::ptrdiff_t>(ck_end));
    return;
  }

  // Net effect of the events since the checkpoint, last event per window
  // winning (a window can close and reopen inside the span).
  std::vector<TimelineEvent> touched;
  touched.reserve(ev_end - ev_begin);
  for (std::size_t e = ev_begin; e < ev_end; ++e) {
    const TimelineEvent& event = events_[e];
    auto it = std::find_if(touched.begin(), touched.end(),
                           [&event](const TimelineEvent& seen) {
                             return seen.window == event.window;
                           });
    if (it == touched.end()) {
      touched.push_back(event);
    } else {
      it->open = event.open;
    }
  }
  std::sort(touched.begin(), touched.end(),
            [](const TimelineEvent& a, const TimelineEvent& b) {
              return a.window < b.window;
            });

  // Ascending merge of the checkpoint set with the touched windows: touched
  // state overrides checkpoint membership, everything else carries over.
  out.reserve((ck_end - ck_begin) + touched.size());
  std::size_t ck = ck_begin;
  std::size_t to = 0;
  while (ck < ck_end && to < touched.size()) {
    const std::uint32_t ck_id = checkpoint_ids_[ck];
    if (ck_id < touched[to].window) {
      out.push_back(ck_id);
      ++ck;
    } else if (touched[to].window < ck_id) {
      if (touched[to].open) out.push_back(touched[to].window);
      ++to;
    } else {
      if (touched[to].open) out.push_back(ck_id);
      ++ck;
      ++to;
    }
  }
  for (; ck < ck_end; ++ck) out.push_back(checkpoint_ids_[ck]);
  for (; to < touched.size(); ++to) {
    if (touched[to].open) out.push_back(touched[to].window);
  }
}

bool ContactPlanTopology::epoch_delta(std::size_t from, std::size_t to,
                                      std::size_t max_pairs,
                                      std::vector<net::ChangedPair>& out)
    const {
  QNTN_REQUIRE(from < to && to < epoch_starts_.size(),
               "epoch_delta needs from < to within the partition");
  const std::size_t begin = epoch_event_offsets_[from + 1];
  const std::size_t end = epoch_event_offsets_[to + 1];
  if (end - begin > max_pairs) return false;
  const std::vector<ContactWindow>& windows = plan_.windows();
  out.reserve(out.size() + (end - begin));
  for (std::size_t e = begin; e < end; ++e) {
    const ContactWindow& window = windows[events_[e].window];
    out.push_back({window.a, window.b});
  }
  return true;
}

std::vector<std::size_t> ContactPlanTopology::epoch_window_ids(
    std::size_t epoch) const {
  std::vector<std::size_t> ids;
  active_windows(epoch, ids);
  return ids;
}

std::vector<sim::LinkRecord> ContactPlanTopology::links_at(double t) const {
  obs::count("plan.graph_queries");
  std::vector<std::size_t> ids;
  active_windows(epoch_of(t), ids);
  std::vector<sim::LinkRecord> links = plan_.static_links();
  const std::vector<ContactWindow>& windows = plan_.windows();
  links.reserve(links.size() + ids.size());
  for (const std::size_t id : ids) {
    const ContactWindow& window = windows[id];
    links.push_back({window.a, window.b, window.eta_at(t)});
  }
  return links;
}

void ContactPlanTopology::append_dynamic_edges(
    std::size_t epoch, double t, net::Graph& graph,
    std::vector<std::size_t>& ids) const {
  active_windows(epoch, ids);
  const std::vector<ContactWindow>& windows = plan_.windows();
  for (const std::size_t id : ids) {
    const ContactWindow& window = windows[id];
    graph.add_edge(window.a, window.b, window.eta_at(t));
  }
}

net::Graph ContactPlanTopology::graph_at(double t) const {
  const obs::Span span("plan.graph_at");
  obs::count("plan.graph_queries");
  // A fresh materialisation can never reuse a cached epoch, so it counts
  // as a build: plan.graph_queries = plan.epoch_hits + plan.epoch_builds
  // holds across both query paths.
  obs::count("plan.epoch_builds");
  net::Graph graph = skeleton_;
  std::vector<std::size_t> ids;
  append_dynamic_edges(epoch_of(t), t, graph, ids);
  return graph;
}

void ContactPlanTopology::snapshot_at(double t,
                                      sim::TopologySnapshot& snap) const {
  const obs::Span span("plan.graph_at");
  obs::count("plan.graph_queries");
  const std::size_t epoch = epoch_of(t);
  const std::vector<ContactWindow>& windows = plan_.windows();

  if (snap.owner == this && snap.epoch == epoch) {
    // Same epoch: the edge set is unchanged, only etas moved. Rewrite the
    // dynamic tail in place — dynamic_tags records the window behind each
    // dynamic edge, in edge order.
    for (std::size_t i = 0; i < snap.dynamic_tags.size(); ++i) {
      const ContactWindow& window = windows[snap.dynamic_tags[i]];
      snap.graph.set_edge_transmissivity(snap.dynamic_base + i,
                                         window.eta_at(t));
    }
    obs::count("plan.epoch_hits");
    return;
  }

  if (snap.owner == this) {
    // Slot already holds this provider's skeleton + some dynamic tail: drop
    // the tail and re-append, reusing the graph's storage (no allocation
    // once the adjacency vectors have grown to steady state).
    snap.graph.truncate_edges(static_edge_count_);
  } else {
    snap.graph = skeleton_;
  }
  append_dynamic_edges(epoch, t, snap.graph, snap.dynamic_tags);
  snap.epoch = epoch;
  snap.owner = this;
  snap.dynamic_base = static_edge_count_;
  obs::count("plan.epoch_builds");
}

}  // namespace qntn::plan
