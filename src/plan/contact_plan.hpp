#pragma once

#include <cstddef>
#include <vector>

#include "net/graph.hpp"
#include "sim/network_model.hpp"
#include "sim/topology.hpp"

/// \file contact_plan.hpp
/// Contact-plan compilation: the control-plane half of the simulator.
///
/// The per-step TopologyBuilder re-evaluates every O(N^2) FSO link budget
/// at each of the day's 2880 samples, even though satellite links are
/// piecewise — a link exists only inside AOS/LOS-style windows that pass
/// prediction can enumerate up front. compile_contact_plan does that
/// enumeration once: for every dynamic node pair it finds the
/// visibility-and-threshold windows (coarse grid scan with a conservative
/// elevation-rate skip, boundaries refined by bisection to ~1 ms, clipped
/// to [0, horizon]) and caches a piecewise-linear transmissivity profile
/// per window. The resulting ContactPlan is immutable; ContactPlanTopology
/// (contact_topology.hpp) serves graph_at(t) from it by interval lookup,
/// and the session scheduler (session_scheduler.hpp) admits entanglement
/// requests against it. This mirrors how contact-plan-driven space
/// networks (Hu et al., QuESat) scale: topology queries cost per
/// *link-state change*, not per step times N^2.

namespace qntn {
class ThreadPool;
}  // namespace qntn

namespace qntn::plan {

/// One contact window: node pair `a`-`b` is linkable (visible and above
/// the transmissivity threshold) throughout [start, end). The cached
/// transmissivity profile is piecewise linear over `times`/`etas`
/// (times strictly increasing, spanning [start, end]; at least 2 points).
struct ContactWindow {
  net::NodeId a = 0;
  net::NodeId b = 0;
  double start = 0.0;  ///< [s], clipped to >= 0
  double end = 0.0;    ///< [s], clipped to <= horizon
  std::vector<double> times;
  std::vector<double> etas;

  [[nodiscard]] double duration() const { return end - start; }

  /// Interpolated transmissivity at t (clamped to [start, end]). Exact at
  /// every retained sample point; between samples the error is bounded by
  /// the compile-time sample tolerance.
  [[nodiscard]] double eta_at(double t) const;
};

struct ContactPlanOptions {
  double horizon = 86'400.0;  ///< [s]; the paper evaluates one day
  /// Scan/sample grid [s]. Must match the consumer's sampling step for the
  /// plan to reproduce the per-step rebuild exactly at grid times.
  double step = 30.0;
  /// Conservative bound on the elevation rate seen from a ground/HAP site
  /// [rad/s]; lets the scan hop over deep-below-horizon stretches. <= 0
  /// scans every grid point (see orbit::find_passes_adaptive).
  double max_elevation_rate = 0.01;
  /// Conservative bound on the inter-satellite range rate [m/s] (two
  /// opposing LEO velocities plus margin) for the same hop trick on ISL
  /// scans. <= 0 scans every grid point.
  double max_range_rate = 16'000.0;
  /// Piecewise-linear compression tolerance on cached transmissivities:
  /// interior samples are dropped while interpolation stays within this
  /// absolute error. 0 keeps every grid sample. Window *boundaries* are
  /// never affected — connectivity is exact regardless.
  double sample_tolerance = 1.0e-4;
};

/// Aggregate statistics of a compiled plan (for reports and the CLI).
struct ContactPlanStats {
  std::size_t window_count = 0;
  std::size_t sample_count = 0;       ///< retained eta samples
  double total_contact = 0.0;         ///< sum of window durations [s]
  double mean_window_duration = 0.0;  ///< [s]
};

/// Immutable compiled contact plan: every dynamic link window over the
/// horizon plus the time-invariant links, for one NetworkModel/LinkPolicy.
class ContactPlan {
 public:
  ContactPlan() = default;
  ContactPlan(std::vector<ContactWindow> windows,
              std::vector<sim::LinkRecord> static_links, std::size_t node_count,
              double horizon);

  /// Dynamic-link windows sorted by start time.
  [[nodiscard]] const std::vector<ContactWindow>& windows() const {
    return windows_;
  }
  /// Time-invariant links (intra-LAN fiber, ground-HAP FSO).
  [[nodiscard]] const std::vector<sim::LinkRecord>& static_links() const {
    return static_links_;
  }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] double horizon() const { return horizon_; }

  /// Windows of one node pair, sorted by start (order-insensitive lookup).
  [[nodiscard]] std::vector<const ContactWindow*> pair_windows(
      net::NodeId a, net::NodeId b) const;

  [[nodiscard]] ContactPlanStats stats() const;

 private:
  std::vector<ContactWindow> windows_;
  std::vector<sim::LinkRecord> static_links_;
  std::size_t node_count_ = 0;
  double horizon_ = 0.0;
};

/// Compile the contact plan for `model` under `policy`. Evaluates the same
/// per-class link budgets as sim::TopologyBuilder (shared evaluators), so
/// at every grid time t = k * options.step the plan's link set equals the
/// per-step rebuild's, and retained samples carry bit-identical
/// transmissivities.
///
/// `pool` (optional, borrowed) fans the per-satellite scans out across
/// workers. The fan-out is deterministic: each task appends windows to its
/// own buffer and the buffers are spliced in the serial task order, so the
/// compiled plan is byte-identical for any thread count (including none).
[[nodiscard]] ContactPlan compile_contact_plan(
    const sim::NetworkModel& model, const sim::LinkPolicy& policy,
    const ContactPlanOptions& options = {}, ThreadPool* pool = nullptr);

}  // namespace qntn::plan
