#include "plan/session_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "common/error.hpp"

namespace qntn::plan {

namespace {

constexpr double kEps = 1e-9;  ///< slack for interval containment tests
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Interval of `intervals` containing time t (within kEps), or kNone.
std::size_t covering_interval(const std::vector<Interval>& intervals,
                              double t) {
  const auto it = std::upper_bound(
      intervals.begin(), intervals.end(), t + kEps,
      [](double value, const Interval& iv) { return value < iv.start; });
  if (it == intervals.begin()) return kNone;
  const std::size_t idx = static_cast<std::size_t>(it - intervals.begin()) - 1;
  if (intervals[idx].end <= t + kEps) return kNone;
  return idx;
}

}  // namespace

SessionScheduler::SessionScheduler(const ContactPlan& plan,
                                   const sim::NetworkModel& model)
    : model_(model), lan_count_(model.lan_count()) {
  // Relay availability per LAN: union of the relay's contact windows (and
  // permanent static links, e.g. ground-HAP) against any node of the LAN.
  std::map<net::NodeId, std::vector<IntervalSet>> avail;
  const auto is_relay = [&](net::NodeId id) {
    const sim::NodeKind kind = model_.node(id).kind;
    return kind == sim::NodeKind::Satellite || kind == sim::NodeKind::Hap;
  };
  const auto record = [&](net::NodeId x, net::NodeId y, double start,
                          double end) {
    // Exactly one endpoint on the ground: relay-LAN contact.
    if (is_relay(x) == is_relay(y)) return;
    const net::NodeId relay = is_relay(x) ? x : y;
    const net::NodeId ground = is_relay(x) ? y : x;
    auto [it, inserted] = avail.try_emplace(relay);
    if (inserted) it->second.resize(lan_count_);
    it->second[model_.node(ground).lan].add_interval(start, end);
  };
  for (const ContactWindow& window : plan.windows()) {
    record(window.a, window.b, window.start, window.end);
  }
  for (const sim::LinkRecord& link : plan.static_links()) {
    record(link.a, link.b, 0.0, plan.horizon());
  }

  const std::size_t pairs = lan_count_ * (lan_count_ - 1) / 2;
  bridges_.resize(pairs);
  timelines_.resize(pairs);
  for (std::size_t a = 0; a < lan_count_; ++a) {
    for (std::size_t b = a + 1; b < lan_count_; ++b) {
      const std::size_t idx = pair_index(a, b);
      IntervalSet timeline;
      for (auto& [relay, per_lan] : avail) {
        std::vector<Interval> bridge =
            intersect_merged(per_lan[a].merged(), per_lan[b].merged());
        if (bridge.empty()) continue;
        for (const Interval& iv : bridge) {
          timeline.add_interval(iv.start, iv.end);
        }
        bridges_[idx].push_back({relay, std::move(bridge)});
      }
      timelines_[idx] = timeline.merged();
    }
  }
}

std::size_t SessionScheduler::pair_index(std::size_t lan_a,
                                         std::size_t lan_b) const {
  QNTN_REQUIRE(lan_a != lan_b && lan_a < lan_count_ && lan_b < lan_count_,
               "invalid LAN pair");
  const std::size_t a = std::min(lan_a, lan_b);
  const std::size_t b = std::max(lan_a, lan_b);
  return a * lan_count_ - a * (a + 1) / 2 + (b - a - 1);
}

const std::vector<Interval>& SessionScheduler::pair_timeline(
    std::size_t lan_a, std::size_t lan_b) const {
  return timelines_[pair_index(lan_a, lan_b)];
}

const std::vector<RelayBridge>& SessionScheduler::pair_bridges(
    std::size_t lan_a, std::size_t lan_b) const {
  return bridges_[pair_index(lan_a, lan_b)];
}

SessionSchedule SessionScheduler::schedule(
    const std::vector<SessionRequest>& requests) const {
  SessionSchedule schedule;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const SessionRequest& request = requests[r];
    QNTN_REQUIRE(request.duration > 0.0, "session duration must be positive");
    const std::size_t idx = pair_index(request.lan_a, request.lan_b);
    const std::vector<Interval>& timeline = timelines_[idx];

    // Earliest feasible start: the first merged episode long enough to hold
    // the whole session at or after the arrival.
    double start = -1.0;
    for (const Interval& episode : timeline) {
      const double candidate = std::max(request.arrival, episode.start);
      if (episode.end - candidate >= request.duration - kEps) {
        start = candidate;
        break;
      }
    }
    if (start < 0.0) {
      schedule.blocked.push_back(r);
      continue;
    }

    // Greedy relay assignment: from the current time, continue with the
    // bridge interval that reaches furthest (minimum handovers for this
    // start; classic interval-point cover argument).
    ScheduledSession session;
    session.request = r;
    session.start = start;
    session.end = start + request.duration;
    double cursor = start;
    while (cursor < session.end - kEps) {
      net::NodeId best_relay = 0;
      double best_end = -std::numeric_limits<double>::infinity();
      for (const RelayBridge& bridge : bridges_[idx]) {
        const std::size_t iv = covering_interval(bridge.intervals, cursor);
        if (iv == kNone) continue;
        if (bridge.intervals[iv].end > best_end) {
          best_end = bridge.intervals[iv].end;
          best_relay = bridge.relay;
        }
      }
      QNTN_REQUIRE(best_end > cursor + kEps,
                   "feasibility timeline not covered by relay bridges");
      if (session.relays.empty() || session.relays.back() != best_relay) {
        session.relays.push_back(best_relay);
      }
      cursor = std::min(best_end, session.end);
    }
    schedule.wait.add(session.start - request.arrival);
    schedule.handovers.add(static_cast<double>(session.handovers()));
    schedule.sessions.push_back(std::move(session));
  }
  return schedule;
}

}  // namespace qntn::plan
