#pragma once

#include <cstddef>
#include <vector>

#include "common/interval_set.hpp"
#include "common/stats.hpp"
#include "plan/contact_plan.hpp"
#include "sim/network_model.hpp"

/// \file session_scheduler.hpp
/// Session admission against a compiled contact plan. An inter-LAN
/// entanglement session needs a bridging relay — a non-ground node with
/// simultaneous links into both LANs (the same single-relay model as
/// sim/handover) — for its whole duration. Because the ContactPlan already
/// knows every relay-LAN contact window, admission reduces to interval
/// arithmetic: per relay, intersect its two per-LAN availability unions to
/// get bridge intervals; union those across relays into the pair's
/// feasibility timeline; place each request at the earliest feasible start
/// and assign relays greedily (always extend with the bridge interval that
/// reaches furthest), which minimises handovers for the chosen start.
/// Relay link capacity is not modelled: sessions do not contend, matching
/// the paper's uncongested serving loop.

namespace qntn::plan {

/// One inter-LAN session request: `duration` seconds of uninterrupted
/// bridging for LAN pair (lan_a, lan_b), no earlier than `arrival`.
struct SessionRequest {
  std::size_t lan_a = 0;
  std::size_t lan_b = 0;
  double arrival = 0.0;   ///< [s]
  double duration = 0.0;  ///< [s]
};

/// An admitted session: service span plus the relay handover sequence.
struct ScheduledSession {
  std::size_t request = 0;  ///< index into the scheduled request batch
  double start = 0.0;
  double end = 0.0;
  /// Relay per contiguous segment; handovers() is one less than its size.
  std::vector<net::NodeId> relays;

  [[nodiscard]] std::size_t handovers() const {
    return relays.empty() ? 0 : relays.size() - 1;
  }
};

struct SessionSchedule {
  std::vector<ScheduledSession> sessions;  ///< admitted, in request order
  std::vector<std::size_t> blocked;        ///< request indices never feasible
  RunningStats wait;       ///< start - arrival [s], over admitted sessions
  RunningStats handovers;  ///< relay changes, over admitted sessions

  [[nodiscard]] double blocked_fraction(std::size_t total) const {
    return total > 0
               ? static_cast<double>(blocked.size()) / static_cast<double>(total)
               : 0.0;
  }
};

/// Per-relay bridge timeline of one LAN pair.
struct RelayBridge {
  net::NodeId relay = 0;
  std::vector<Interval> intervals;  ///< disjoint, sorted
};

class SessionScheduler {
 public:
  /// Precomputes relay availability and all LAN-pair bridge timelines from
  /// the plan. Plan and model must outlive the scheduler.
  SessionScheduler(const ContactPlan& plan, const sim::NetworkModel& model);

  /// Merged times during which at least one relay bridges the pair.
  [[nodiscard]] const std::vector<Interval>& pair_timeline(
      std::size_t lan_a, std::size_t lan_b) const;

  /// Per-relay bridge intervals of the pair (relays with empty bridge sets
  /// omitted).
  [[nodiscard]] const std::vector<RelayBridge>& pair_bridges(
      std::size_t lan_a, std::size_t lan_b) const;

  /// Admit each request independently at its earliest feasible start.
  [[nodiscard]] SessionSchedule schedule(
      const std::vector<SessionRequest>& requests) const;

 private:
  [[nodiscard]] std::size_t pair_index(std::size_t lan_a,
                                       std::size_t lan_b) const;

  const sim::NetworkModel& model_;
  std::size_t lan_count_ = 0;
  /// Indexed by pair_index: bridge timelines per relay and their union.
  std::vector<std::vector<RelayBridge>> bridges_;
  std::vector<std::vector<Interval>> timelines_;
};

}  // namespace qntn::plan
