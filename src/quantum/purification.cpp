#include "quantum/purification.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/gates.hpp"
#include "quantum/state.hpp"

namespace qntn::quantum {

namespace {

/// Shared tail of BBPSSW/DEJMPS: bilateral CNOTs (sources pair 1, targets
/// pair 2), Z-measure the target pair, keep coincident outcomes, trace the
/// measured pair out.
PurificationRound cnot_measure_postselect(const Matrix& rho4) {
  const Matrix circuit = cnot(4, 1, 3) * cnot(4, 0, 2);
  const Matrix evolved = apply_unitary(circuit, rho4);

  // Measure qubit 2, then qubit 3 inside each branch.
  const MeasurementBranches first = measure_qubit(evolved, 2);
  PurificationRound round;
  Matrix kept(16, 16);
  double success = 0.0;
  for (int outcome = 0; outcome < 2; ++outcome) {
    const MeasurementOutcome& branch = outcome == 0 ? first.zero : first.one;
    if (branch.probability <= 1e-15) continue;
    const MeasurementBranches second = measure_qubit(branch.post_state, 3);
    const MeasurementOutcome& coincident =
        outcome == 0 ? second.zero : second.one;
    const double p = branch.probability * coincident.probability;
    if (p <= 1e-15) continue;
    kept += coincident.post_state * Complex(p, 0.0);
    success += p;
  }
  round.success_probability = success;
  if (success > 1e-15) {
    const Matrix normalised = kept * Complex(1.0 / success, 0.0);
    // Trace out the measured pair (qubits 2 and 3 -> trace 3 then 2).
    round.state =
        partial_trace_qubit(partial_trace_qubit(normalised, 3), 2);
    round.fidelity =
        fidelity_to_pure(round.state, bell_state(BellState::PhiPlus),
                         FidelityConvention::Uhlmann);
  } else {
    round.state = Matrix(4, 4);
  }
  return round;
}

}  // namespace

Matrix twirl_to_werner(const Matrix& rho) {
  QNTN_REQUIRE(rho.rows() == 4 && rho.cols() == 4,
               "twirl_to_werner expects a two-qubit state");
  const double f = fidelity_to_pure(rho, bell_state(BellState::PhiPlus),
                                    FidelityConvention::Jozsa);
  const Matrix target = pure_density(bell_state(BellState::PhiPlus));
  return target * Complex(f, 0.0) +
         (Matrix::identity(4) - target) * Complex((1.0 - f) / 3.0, 0.0);
}

PurificationRound bbpssw_round(const Matrix& rho) {
  QNTN_REQUIRE(rho.rows() == 4, "bbpssw_round expects a two-qubit state");
  return cnot_measure_postselect(rho.kron(rho));
}

PurificationRound dejmps_round(const Matrix& rho) {
  QNTN_REQUIRE(rho.rows() == 4, "dejmps_round expects a two-qubit state");
  Matrix rho4 = rho.kron(rho);
  // Bilateral basis rotation: Rx(pi/2) on Alice's qubits (0, 2), Rx(-pi/2)
  // on Bob's (1, 3).
  const Matrix ra = rotation_x(-kPi / 2.0);
  const Matrix rb = rotation_x(kPi / 2.0);
  Matrix rotation = lift_single(ra, 4, 0) * lift_single(rb, 4, 1) *
                    lift_single(ra, 4, 2) * lift_single(rb, 4, 3);
  rho4 = apply_unitary(rotation, rho4);
  return cnot_measure_postselect(rho4);
}

PurificationRound optimal_bell_round(const Matrix& rho) {
  const PurificationRound plain = bbpssw_round(rho);
  const PurificationRound rotated = dejmps_round(rho);
  return plain.fidelity >= rotated.fidelity ? plain : rotated;
}

double bbpssw_success(double fidelity) {
  QNTN_REQUIRE(fidelity >= 0.0 && fidelity <= 1.0, "fidelity must be in [0,1]");
  const double rest = (1.0 - fidelity) / 3.0;
  return fidelity * fidelity + 2.0 * fidelity * rest + 5.0 * rest * rest;
}

double bbpssw_fidelity(double fidelity) {
  const double rest = (1.0 - fidelity) / 3.0;
  return (fidelity * fidelity + rest * rest) / bbpssw_success(fidelity);
}

Matrix bell_diagonal(const std::vector<double>& coefficients) {
  QNTN_REQUIRE(coefficients.size() == 4, "need 4 Bell coefficients");
  double sum = 0.0;
  for (double c : coefficients) {
    QNTN_REQUIRE(c >= -1e-12, "coefficients must be non-negative");
    sum += c;
  }
  QNTN_REQUIRE(std::fabs(sum - 1.0) < 1e-9, "coefficients must sum to 1");
  const BellState order[] = {BellState::PhiPlus, BellState::PsiPlus,
                             BellState::PsiMinus, BellState::PhiMinus};
  Matrix rho(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    rho += pure_density(bell_state(order[i])) * Complex(coefficients[i], 0.0);
  }
  return rho;
}

std::vector<double> bell_diagonal_coefficients(const Matrix& rho) {
  QNTN_REQUIRE(rho.rows() == 4, "expects a two-qubit state");
  const BellState order[] = {BellState::PhiPlus, BellState::PsiPlus,
                             BellState::PsiMinus, BellState::PhiMinus};
  std::vector<double> out;
  out.reserve(4);
  for (const BellState s : order) {
    out.push_back(
        fidelity_to_pure(rho, bell_state(s), FidelityConvention::Jozsa));
  }
  return out;
}

std::vector<LadderStep> purification_ladder(const Matrix& initial,
                                            std::size_t rounds,
                                            PurificationProtocol protocol) {
  QNTN_REQUIRE(initial.rows() == 4, "expects a two-qubit state");
  std::vector<LadderStep> steps;
  Matrix current = initial;
  double cost = 1.0;
  double previous_fidelity = fidelity_to_pure(
      current, bell_state(BellState::PhiPlus), FidelityConvention::Uhlmann);
  steps.push_back({0, previous_fidelity, 1.0, cost});

  for (std::size_t round = 1; round <= rounds; ++round) {
    if (protocol == PurificationProtocol::Bbpssw) {
      current = twirl_to_werner(current);
    }
    PurificationRound result;
    switch (protocol) {
      case PurificationProtocol::Bbpssw:
        result = bbpssw_round(current);
        break;
      case PurificationProtocol::Dejmps:
        result = dejmps_round(current);
        break;
      case PurificationProtocol::Optimal:
        result = optimal_bell_round(current);
        break;
    }
    if (result.success_probability < 1e-6) break;
    cost = 2.0 * cost / result.success_probability;
    steps.push_back({round, result.fidelity, result.success_probability, cost});
    if (result.fidelity <= previous_fidelity + 1e-12) break;  // converged
    previous_fidelity = result.fidelity;
    current = result.state;
  }
  return steps;
}

}  // namespace qntn::quantum
