#pragma once

#include <cstddef>

#include "quantum/matrix.hpp"

/// \file state.hpp
/// Quantum states for the entanglement-distribution model: pure-state
/// constructors (computational basis, the four Bell states), density
/// operators, multi-qubit composition helpers (tensor, partial trace,
/// partial transpose) and validity checks.

namespace qntn::quantum {

/// Number of qubits for a 2^n-dimensional operator; throws if the dimension
/// is not a power of two.
[[nodiscard]] std::size_t qubit_count(const Matrix& state);

/// |index> in an n-qubit computational basis (index < 2^n), as a column
/// vector. Qubit 0 is the most significant bit, matching kron order.
[[nodiscard]] ColumnVector basis_state(std::size_t n_qubits, std::size_t index);

/// The four Bell states as column vectors.
/// PhiPlus  = (|00> + |11>)/sqrt(2)   — the paper's ideal |psi> in Eq. (5)
/// PhiMinus = (|00> - |11>)/sqrt(2)
/// PsiPlus  = (|01> + |10>)/sqrt(2)
/// PsiMinus = (|01> - |10>)/sqrt(2)
enum class BellState { PhiPlus, PhiMinus, PsiPlus, PsiMinus };
[[nodiscard]] ColumnVector bell_state(BellState which);

/// Density operator |psi><psi| of a pure state (normalises the input).
[[nodiscard]] Matrix pure_density(const ColumnVector& psi);

/// Werner state: w * |PhiPlus><PhiPlus| + (1 - w) * I/4, for w in [0, 1].
[[nodiscard]] Matrix werner_state(double w);

/// Maximally mixed state I/d on `n_qubits`.
[[nodiscard]] Matrix maximally_mixed(std::size_t n_qubits);

/// Trace out qubit `which` (0-based, MSB first) of an n-qubit density
/// matrix, returning the (n-1)-qubit reduced state.
[[nodiscard]] Matrix partial_trace_qubit(const Matrix& rho, std::size_t which);

/// Partial transpose over qubit `which` of an n-qubit density matrix
/// (used by the negativity entanglement measure).
[[nodiscard]] Matrix partial_transpose_qubit(const Matrix& rho, std::size_t which);

/// Validity: Hermitian, unit trace, PSD (eigenvalues > -tol).
[[nodiscard]] bool is_density_matrix(const Matrix& rho, double tol = 1e-9);

/// Purity Tr(rho^2), in (0, 1]; 1 iff pure.
[[nodiscard]] double purity(const Matrix& rho);

}  // namespace qntn::quantum
