#include "quantum/swapping.hpp"

#include "common/error.hpp"
#include "quantum/channels.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/gates.hpp"
#include "quantum/state.hpp"

namespace qntn::quantum {

SwapResult entanglement_swap(const Matrix& rho_am, const Matrix& rho_mb) {
  QNTN_REQUIRE(rho_am.rows() == 4 && rho_mb.rows() == 4,
               "entanglement_swap expects two-qubit states");
  // Register layout: A M1 M2 B (qubits 0..3).
  Matrix rho = rho_am.kron(rho_mb);

  // BSM on (M1, M2): CNOT(M1 -> M2), then H on M1, then measure both.
  rho = apply_unitary(cnot(4, 1, 2), rho);
  rho = apply_unitary(lift_single(hadamard(), 4, 1), rho);

  Matrix combined(4, 4);
  const MeasurementBranches first = measure_qubit(rho, 1);
  for (int m1 = 0; m1 < 2; ++m1) {
    const MeasurementOutcome& branch = m1 == 0 ? first.zero : first.one;
    if (branch.probability <= 1e-15) continue;
    const MeasurementBranches second = measure_qubit(branch.post_state, 2);
    for (int m2 = 0; m2 < 2; ++m2) {
      const MeasurementOutcome& outcome = m2 == 0 ? second.zero : second.one;
      const double p = branch.probability * outcome.probability;
      if (p <= 1e-15) continue;
      // Correction on B keyed on the BSM outcome: X^{m2} Z^{m1}.
      Matrix corrected = outcome.post_state;
      if (m2 == 1) {
        corrected = apply_unitary(lift_single(pauli_x(), 4, 3), corrected);
      }
      if (m1 == 1) {
        corrected = apply_unitary(lift_single(pauli_z(), 4, 3), corrected);
      }
      // Trace out the measured middle qubits (2 then 1).
      const Matrix end_pair =
          partial_trace_qubit(partial_trace_qubit(corrected, 2), 1);
      combined += end_pair * Complex(p, 0.0);
    }
  }

  SwapResult result;
  result.state = combined;
  result.fidelity =
      fidelity_to_pure(combined, bell_state(BellState::PhiPlus),
                       FidelityConvention::Uhlmann);
  return result;
}

SwapResult swap_chain(const std::vector<Matrix>& pair_states) {
  QNTN_REQUIRE(!pair_states.empty(), "swap_chain needs at least one pair");
  SwapResult result;
  result.state = pair_states.front();
  for (std::size_t i = 1; i < pair_states.size(); ++i) {
    result = entanglement_swap(result.state, pair_states[i]);
  }
  result.fidelity =
      fidelity_to_pure(result.state, bell_state(BellState::PhiPlus),
                       FidelityConvention::Uhlmann);
  return result;
}

SwapResult swap_damped_chain(const std::vector<double>& hop_etas) {
  QNTN_REQUIRE(!hop_etas.empty(), "need at least one hop");
  std::vector<Matrix> pairs;
  pairs.reserve(hop_etas.size());
  for (const double eta : hop_etas) {
    pairs.push_back(transmit_bell_half(eta));
  }
  return swap_chain(pairs);
}

}  // namespace qntn::quantum
