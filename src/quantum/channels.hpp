#pragma once

#include <string>
#include <vector>

#include "quantum/matrix.hpp"

/// \file channels.hpp
/// Quantum channels in Kraus form. The paper degrades entangled states with
/// an amplitude-damping channel whose Kraus operators are parameterised by
/// the optical transmissivity eta (Eqs. 3-4); additional standard channels
/// (depolarizing, dephasing, bit flip) are provided for the extension
/// studies and the test suite's CPTP property checks.

namespace qntn::quantum {

/// A completely positive trace-preserving map given by Kraus operators
/// {K_i}: rho' = sum_i K_i rho K_i^dagger, with sum_i K_i^dagger K_i = I.
class KrausChannel {
 public:
  KrausChannel(std::string name, std::vector<Matrix> kraus_ops);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Matrix>& kraus_operators() const { return ops_; }

  /// Dimension the channel acts on.
  [[nodiscard]] std::size_t dimension() const { return ops_.front().rows(); }

  /// rho' = sum_i K_i rho K_i^dagger. Precondition: rho matches dimension().
  [[nodiscard]] Matrix apply(const Matrix& rho) const;

  /// Apply this (single-qubit) channel to qubit `which` (0-based, MSB first)
  /// of an n-qubit state, i.e. with Kraus operators I ⊗...⊗ K_i ⊗...⊗ I.
  [[nodiscard]] Matrix apply_to_qubit(const Matrix& rho, std::size_t which) const;

  /// Verify sum_i K_i^dagger K_i = I within tol.
  [[nodiscard]] bool is_trace_preserving(double tol = 1e-10) const;

  /// Sequential composition: (other ∘ this), i.e. `other` applied after
  /// this channel. Kraus set is the pairwise products.
  [[nodiscard]] KrausChannel then(const KrausChannel& other) const;

 private:
  std::string name_;
  std::vector<Matrix> ops_;
};

/// Amplitude damping parameterised by transmissivity eta in [0, 1]
/// (paper Eq. 3): K0 = diag(1, sqrt(eta)), K1 = sqrt(1-eta) |0><1|.
/// eta = 1 is the identity channel; eta = 0 maps everything to |0>.
[[nodiscard]] KrausChannel amplitude_damping(double eta);

/// Single-qubit depolarizing channel with error probability p in [0, 1]:
/// rho -> (1-p) rho + p/3 (X rho X + Y rho Y + Z rho Z).
[[nodiscard]] KrausChannel depolarizing(double p);

/// Phase damping (dephasing) with probability p in [0, 1].
[[nodiscard]] KrausChannel dephasing(double p);

/// Bit-flip channel with probability p in [0, 1].
[[nodiscard]] KrausChannel bit_flip(double p);

/// Identity channel on one qubit.
[[nodiscard]] KrausChannel identity_channel();

/// The paper's link model: distribute one half of a Bell pair through an
/// optical channel of transmissivity eta; the travelling qubit (qubit 1,
/// the second one) passes through amplitude damping. Returns rho' of Eq. 4.
[[nodiscard]] Matrix transmit_bell_half(double eta);

}  // namespace qntn::quantum
