#pragma once

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <vector>

/// \file matrix.hpp
/// Dense complex matrix used for density operators and Kraus operators.
/// Dimensions in this project are tiny (2^n for n <= 3 qubits in practice),
/// so the implementation favours clarity and correctness over blocking;
/// the perf benches confirm the kernels are nowhere near the simulation's
/// critical path.

namespace qntn::quantum {

using Complex = std::complex<double>;

class Matrix {
 public:
  /// rows x cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols);

  /// Row-major brace construction: Matrix{{a,b},{c,d}}.
  Matrix(std::initializer_list<std::initializer_list<Complex>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);
  [[nodiscard]] static Matrix zero(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool is_square() const { return rows_ == cols_; }

  [[nodiscard]] Complex& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const Complex& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(Complex s);
  [[nodiscard]] Matrix operator+(const Matrix& o) const;
  [[nodiscard]] Matrix operator-(const Matrix& o) const;
  [[nodiscard]] Matrix operator*(const Matrix& o) const;
  [[nodiscard]] Matrix operator*(Complex s) const;

  /// Conjugate transpose.
  [[nodiscard]] Matrix dagger() const;

  /// Trace (square matrices only).
  [[nodiscard]] Complex trace() const;

  /// Kronecker (tensor) product: this ⊗ other.
  [[nodiscard]] Matrix kron(const Matrix& o) const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  /// Max |a_ij - b_ij|; matrices must have equal shape.
  [[nodiscard]] double max_abs_diff(const Matrix& o) const;

  /// True if ||A - A^dagger||_max < tol.
  [[nodiscard]] bool is_hermitian(double tol = 1e-10) const;

  /// True if ||A^dagger A - I||_max < tol.
  [[nodiscard]] bool is_unitary(double tol = 1e-10) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Complex> data_;
};

[[nodiscard]] Matrix operator*(Complex s, const Matrix& m);

std::ostream& operator<<(std::ostream& os, const Matrix& m);

/// Column vector as an n x 1 Matrix.
using ColumnVector = Matrix;

/// Build a column vector from amplitudes.
[[nodiscard]] ColumnVector column_vector(std::initializer_list<Complex> amps);

/// Outer product |a><b| of two column vectors.
[[nodiscard]] Matrix outer(const ColumnVector& a, const ColumnVector& b);

}  // namespace qntn::quantum
