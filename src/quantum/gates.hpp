#pragma once

#include <cstddef>

#include "quantum/matrix.hpp"

/// \file gates.hpp
/// Unitary gates and projective measurement on multi-qubit density
/// matrices. The purification protocols (purification.hpp) are built from
/// these; they are also generally useful for extending the simulator with
/// gate-level node behaviour.
///
/// Qubit index convention matches state.hpp: qubit 0 is the most
/// significant bit of the computational basis index (kron order).

namespace qntn::quantum {

/// Single-qubit Pauli and Clifford gates.
[[nodiscard]] Matrix pauli_x();
[[nodiscard]] Matrix pauli_y();
[[nodiscard]] Matrix pauli_z();
[[nodiscard]] Matrix hadamard();
/// Phase rotation diag(1, e^{i phi}).
[[nodiscard]] Matrix phase(double phi);
/// X-axis rotation exp(-i theta X / 2).
[[nodiscard]] Matrix rotation_x(double theta);

/// Lift a single-qubit unitary to qubit `which` of an n-qubit register.
[[nodiscard]] Matrix lift_single(const Matrix& gate, std::size_t n_qubits,
                                 std::size_t which);

/// CNOT with the given control and target qubits on an n-qubit register.
[[nodiscard]] Matrix cnot(std::size_t n_qubits, std::size_t control,
                          std::size_t target);

/// Apply a unitary: rho' = U rho U^dagger.
[[nodiscard]] Matrix apply_unitary(const Matrix& unitary, const Matrix& rho);

/// Outcome of a projective measurement of one qubit in the Z basis.
struct MeasurementOutcome {
  double probability = 0.0;  ///< Born probability of this outcome
  Matrix post_state;         ///< normalised post-measurement state (same
                             ///< register size; the measured qubit collapses)

  MeasurementOutcome() : post_state(1, 1) {}
};

/// Measure qubit `which` in the computational basis; returns the outcome
/// branches for result 0 and result 1. A zero-probability branch carries an
/// unnormalised (zero) state.
struct MeasurementBranches {
  MeasurementOutcome zero;
  MeasurementOutcome one;
};
[[nodiscard]] MeasurementBranches measure_qubit(const Matrix& rho,
                                                std::size_t which);

}  // namespace qntn::quantum
