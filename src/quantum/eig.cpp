#include "quantum/eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace qntn::quantum {

namespace {

/// Frobenius norm of the strictly off-diagonal part.
double off_diagonal_norm(const Matrix& m) {
  double sum = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (i != j) sum += std::norm(m(i, j));
    }
  }
  return std::sqrt(sum);
}

/// One Jacobi rotation zeroing the (p, q) element of Hermitian `h`,
/// accumulating the rotation into `v`. Derivation: with a = h_pp, b = h_qq
/// (real) and h_pq = |h| e^{i phi}, the plane rotation
///   J_pp = c, J_pq = -s e^{i phi}, J_qp = s e^{-i phi}, J_qq = c
/// zeroes (J^dag H J)_pq when tan(2 theta) = 2|h| / (a - b); we use the
/// standard stable tangent formula to pick the smaller rotation angle.
void jacobi_rotate(Matrix& h, Matrix& v, std::size_t p, std::size_t q) {
  const Complex hpq = h(p, q);
  const double habs = std::abs(hpq);
  if (habs == 0.0) return;
  const Complex phase = hpq / habs;  // e^{i phi}

  const double a = h(p, p).real();
  const double b = h(q, q).real();
  const double tau = (a - b) / (2.0 * habs);
  const double sign = tau >= 0.0 ? 1.0 : -1.0;
  const double t = sign / (std::abs(tau) + std::sqrt(tau * tau + 1.0));
  const double c = 1.0 / std::sqrt(t * t + 1.0);
  const double s = t * c;

  const std::size_t n = h.rows();
  // H <- J^dag H J, updating only rows/columns p and q.
  for (std::size_t k = 0; k < n; ++k) {
    const Complex hkp = h(k, p);
    const Complex hkq = h(k, q);
    h(k, p) = c * hkp + s * std::conj(phase) * hkq;
    h(k, q) = -s * phase * hkp + c * hkq;
  }
  for (std::size_t k = 0; k < n; ++k) {
    const Complex hpk = h(p, k);
    const Complex hqk = h(q, k);
    h(p, k) = c * hpk + s * phase * hqk;
    h(q, k) = -s * std::conj(phase) * hpk + c * hqk;
  }
  // Clean the pivot pair exactly; rounding noise here slows convergence.
  h(p, q) = 0.0;
  h(q, p) = 0.0;
  h(p, p) = Complex(h(p, p).real(), 0.0);
  h(q, q) = Complex(h(q, q).real(), 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    const Complex vkp = v(k, p);
    const Complex vkq = v(k, q);
    v(k, p) = c * vkp + s * std::conj(phase) * vkq;
    v(k, q) = -s * phase * vkp + c * vkq;
  }
}

}  // namespace

EigenDecomposition eigen_hermitian(const Matrix& m, double hermitian_tol) {
  QNTN_REQUIRE(m.is_square(), "eigen_hermitian requires a square matrix");
  QNTN_REQUIRE(m.is_hermitian(hermitian_tol),
               "eigen_hermitian requires a Hermitian matrix");
  const std::size_t n = m.rows();

  // Work on the Hermitian average to kill any tol-level asymmetry.
  Matrix h = (m + m.dagger()) * Complex(0.5, 0.0);
  Matrix v = Matrix::identity(n);

  const double scale = std::max(h.frobenius_norm(), 1.0);
  constexpr int kMaxSweeps = 100;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    if (off_diagonal_norm(h) < 1e-13 * scale) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        jacobi_rotate(h, v, p, q);
      }
    }
    if (sweep == kMaxSweeps - 1) {
      throw NumericalError("eigen_hermitian: Jacobi failed to converge");
    }
  }

  // Sort eigenvalues (diagonal of h) ascending, permuting eigenvectors.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&h](std::size_t i, std::size_t j) {
    return h(i, i).real() < h(j, j).real();
  });

  EigenDecomposition out{std::vector<double>(n), Matrix(n, n)};
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = h(order[j], order[j]).real();
    for (std::size_t i = 0; i < n; ++i) {
      out.eigenvectors(i, j) = v(i, order[j]);
    }
  }
  return out;
}

Matrix sqrt_psd(const Matrix& m, double clamp_tol) {
  EigenDecomposition eig = eigen_hermitian(m);
  const std::size_t n = m.rows();
  Matrix out(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    double lambda = eig.eigenvalues[k];
    QNTN_REQUIRE(lambda > -clamp_tol, "sqrt_psd: matrix is not PSD");
    lambda = std::max(lambda, 0.0);
    const double root = std::sqrt(lambda);
    if (root == 0.0) continue;
    for (std::size_t i = 0; i < n; ++i) {
      const Complex vik = eig.eigenvectors(i, k);
      if (vik == Complex{}) continue;
      for (std::size_t j = 0; j < n; ++j) {
        out(i, j) += root * vik * std::conj(eig.eigenvectors(j, k));
      }
    }
  }
  return out;
}

Matrix spectral_apply(const Matrix& m, double (*fn)(double)) {
  EigenDecomposition eig = eigen_hermitian(m);
  const std::size_t n = m.rows();
  Matrix out(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const double fv = fn(eig.eigenvalues[k]);
    if (fv == 0.0) continue;
    for (std::size_t i = 0; i < n; ++i) {
      const Complex vik = eig.eigenvectors(i, k);
      if (vik == Complex{}) continue;
      for (std::size_t j = 0; j < n; ++j) {
        out(i, j) += fv * vik * std::conj(eig.eigenvectors(j, k));
      }
    }
  }
  return out;
}

}  // namespace qntn::quantum
