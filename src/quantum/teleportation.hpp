#pragma once

#include "quantum/matrix.hpp"

/// \file teleportation.hpp
/// Quantum state teleportation through a distributed entangled pair — the
/// application the paper's fidelity threshold exists for (its Section IV-A
/// cites ">90% fidelity ... sufficient for high-fidelity teleportation",
/// refs [34]/[35]). Implements the full three-qubit protocol at the
/// density-matrix level so a QNTN-distributed pair's usefulness can be
/// quoted as teleportation fidelity rather than raw entanglement fidelity.

namespace qntn::quantum {

/// Teleport the single-qubit pure state `psi` through the two-qubit
/// resource state `pair` (Alice holds the first half, Bob the second).
/// All four BSM branches are kept with the standard corrections, so the
/// protocol is deterministic. Returns Bob's output state.
[[nodiscard]] Matrix teleport(const Matrix& pair, const ColumnVector& psi);

/// Fidelity <psi| rho_out |psi> of teleporting `psi` through `pair`
/// (Jozsa convention, as customary for teleportation benchmarks).
[[nodiscard]] double teleportation_fidelity(const Matrix& pair,
                                            const ColumnVector& psi);

/// Average teleportation fidelity over the six cardinal states of the
/// Bloch sphere (equals the Haar average for any channel).
/// For a Werner resource of (Jozsa) entanglement fidelity F this is the
/// textbook (2F + 1)/3, which the tests pin.
[[nodiscard]] double average_teleportation_fidelity(const Matrix& pair);

/// Classical limit of the average teleportation fidelity (measure and
/// resend, no entanglement): 2/3. A resource pair is "quantum useful" iff
/// average_teleportation_fidelity exceeds this.
inline constexpr double kClassicalTeleportationLimit = 2.0 / 3.0;

}  // namespace qntn::quantum
