#pragma once

#include <vector>

#include "quantum/matrix.hpp"

/// \file eig.hpp
/// Eigendecomposition of Hermitian matrices via the complex Jacobi rotation
/// method, plus the spectral functions the fidelity computation needs
/// (PSD square root). Jacobi is quadratically convergent and unconditionally
/// stable for Hermitian input; the matrices here are at most 2^n x 2^n for a
/// few qubits, where it is also fast.

namespace qntn::quantum {

struct EigenDecomposition {
  /// Real eigenvalues in ascending order.
  std::vector<double> eigenvalues;
  /// Unitary matrix whose column j is the eigenvector of eigenvalues[j].
  Matrix eigenvectors;
};

/// Eigendecomposition of a Hermitian matrix. Throws PreconditionError if the
/// input is not square or not Hermitian (within hermitian_tol), and
/// NumericalError if Jacobi fails to converge (does not happen for
/// well-formed Hermitian input).
[[nodiscard]] EigenDecomposition eigen_hermitian(const Matrix& m,
                                                 double hermitian_tol = 1e-9);

/// Principal square root of a positive semi-definite Hermitian matrix.
/// Eigenvalues in [-clamp_tol, 0) are treated as exact zeros (they arise
/// from rounding in products of Kraus operators); a more negative
/// eigenvalue throws PreconditionError.
[[nodiscard]] Matrix sqrt_psd(const Matrix& m, double clamp_tol = 1e-9);

/// Apply a real scalar function to the spectrum of a Hermitian matrix:
/// f(M) = V diag(f(lambda)) V^dagger.
[[nodiscard]] Matrix spectral_apply(const Matrix& m, double (*fn)(double));

}  // namespace qntn::quantum
