#include "quantum/state.hpp"

#include <cmath>

#include "common/error.hpp"
#include "quantum/eig.hpp"

namespace qntn::quantum {

std::size_t qubit_count(const Matrix& state) {
  const std::size_t d = state.rows();
  QNTN_REQUIRE(d > 1 && (d & (d - 1)) == 0, "dimension is not a power of two");
  std::size_t n = 0;
  for (std::size_t x = d; x > 1; x >>= 1) ++n;
  return n;
}

ColumnVector basis_state(std::size_t n_qubits, std::size_t index) {
  QNTN_REQUIRE(n_qubits > 0, "need at least one qubit");
  const std::size_t d = std::size_t{1} << n_qubits;
  QNTN_REQUIRE(index < d, "basis index out of range");
  ColumnVector v(d, 1);
  v(index, 0) = 1.0;
  return v;
}

ColumnVector bell_state(BellState which) {
  const double r = 1.0 / std::sqrt(2.0);
  switch (which) {
    case BellState::PhiPlus:
      return column_vector({r, 0.0, 0.0, r});
    case BellState::PhiMinus:
      return column_vector({r, 0.0, 0.0, -r});
    case BellState::PsiPlus:
      return column_vector({0.0, r, r, 0.0});
    case BellState::PsiMinus:
      return column_vector({0.0, r, -r, 0.0});
  }
  throw PreconditionError("unknown Bell state");
}

Matrix pure_density(const ColumnVector& psi) {
  QNTN_REQUIRE(psi.cols() == 1, "pure_density expects a column vector");
  const double norm = psi.frobenius_norm();
  QNTN_REQUIRE(norm > 0.0, "cannot normalise the zero vector");
  ColumnVector unit = psi * Complex(1.0 / norm, 0.0);
  return outer(unit, unit);
}

Matrix werner_state(double w) {
  QNTN_REQUIRE(w >= 0.0 && w <= 1.0, "Werner weight must be in [0, 1]");
  Matrix rho = pure_density(bell_state(BellState::PhiPlus)) * Complex(w, 0.0);
  rho += Matrix::identity(4) * Complex((1.0 - w) / 4.0, 0.0);
  return rho;
}

Matrix maximally_mixed(std::size_t n_qubits) {
  QNTN_REQUIRE(n_qubits > 0, "need at least one qubit");
  const std::size_t d = std::size_t{1} << n_qubits;
  return Matrix::identity(d) * Complex(1.0 / static_cast<double>(d), 0.0);
}

namespace {

/// Split a basis index of an n-qubit system into (bit of qubit w, rest).
struct IndexSplit {
  std::size_t bit;
  std::size_t rest;
};

IndexSplit split_index(std::size_t index, std::size_t n, std::size_t which) {
  const std::size_t shift = n - 1 - which;  // qubit 0 is the MSB
  const std::size_t bit = (index >> shift) & 1u;
  const std::size_t high = index >> (shift + 1);
  const std::size_t low = index & ((std::size_t{1} << shift) - 1);
  return {bit, (high << shift) | low};
}

std::size_t join_index(std::size_t bit, std::size_t rest, std::size_t n,
                       std::size_t which) {
  const std::size_t shift = n - 1 - which;
  const std::size_t high = rest >> shift;
  const std::size_t low = rest & ((std::size_t{1} << shift) - 1);
  return (high << (shift + 1)) | (bit << shift) | low;
}

}  // namespace

Matrix partial_trace_qubit(const Matrix& rho, std::size_t which) {
  const std::size_t n = qubit_count(rho);
  QNTN_REQUIRE(which < n, "qubit index out of range");
  QNTN_REQUIRE(n > 1, "cannot trace out the only qubit");
  const std::size_t d_out = std::size_t{1} << (n - 1);
  Matrix out(d_out, d_out);
  for (std::size_t i = 0; i < d_out; ++i) {
    for (std::size_t j = 0; j < d_out; ++j) {
      Complex sum{};
      for (std::size_t b = 0; b < 2; ++b) {
        sum += rho(join_index(b, i, n, which), join_index(b, j, n, which));
      }
      out(i, j) = sum;
    }
  }
  return out;
}

Matrix partial_transpose_qubit(const Matrix& rho, std::size_t which) {
  const std::size_t n = qubit_count(rho);
  QNTN_REQUIRE(which < n, "qubit index out of range");
  const std::size_t d = rho.rows();
  Matrix out(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    const IndexSplit si = split_index(i, n, which);
    for (std::size_t j = 0; j < d; ++j) {
      const IndexSplit sj = split_index(j, n, which);
      // Swap the `which` bit between row and column indices.
      const std::size_t ti = join_index(sj.bit, si.rest, n, which);
      const std::size_t tj = join_index(si.bit, sj.rest, n, which);
      out(ti, tj) = rho(i, j);
    }
  }
  return out;
}

bool is_density_matrix(const Matrix& rho, double tol) {
  if (!rho.is_square() || !rho.is_hermitian(tol)) return false;
  if (std::abs(rho.trace() - Complex(1.0, 0.0)) > tol) return false;
  const EigenDecomposition eig = eigen_hermitian(rho);
  for (double lambda : eig.eigenvalues) {
    if (lambda < -tol) return false;
  }
  return true;
}

double purity(const Matrix& rho) {
  return (rho * rho).trace().real();
}

}  // namespace qntn::quantum
