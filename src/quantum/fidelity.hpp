#pragma once

#include "quantum/matrix.hpp"

/// \file fidelity.hpp
/// State fidelity and entanglement measures.
///
/// Two fidelity conventions coexist in the literature and the distinction
/// matters for reproducing the paper (see DESIGN.md §1 "Fidelity
/// convention"):
///  - Jozsa / squared:   F = (Tr sqrt(sqrt(rho) sigma sqrt(rho)))^2
///    — this is the paper's Eq. (5) as printed;
///  - Uhlmann / sqrt:    F = Tr sqrt(sqrt(rho) sigma sqrt(rho))
///    — this is the convention the paper's *numbers* are consistent with
///    (eta = 0.7 -> F = 0.918 > 0.9, matching Fig. 5's stated reading).
/// Both are exposed; harnesses pick via FidelityConvention.

namespace qntn::quantum {

enum class FidelityConvention {
  Jozsa,    ///< squared fidelity, Eq. (5) as printed in the paper
  Uhlmann,  ///< square-root fidelity, consistent with the paper's numbers
};

/// General fidelity between two density matrices under the chosen
/// convention. Both inputs must be valid density matrices of equal
/// dimension (Hermitian PSD; trace need not be exactly 1 to tolerate
/// accumulated rounding, but should be close).
[[nodiscard]] double fidelity(const Matrix& rho, const Matrix& sigma,
                              FidelityConvention convention);

/// Fidelity of rho against a pure target |psi>. Uses the closed form
/// F_jozsa = <psi|rho|psi> (and its square root for Uhlmann), avoiding the
/// matrix square roots of the general path.
[[nodiscard]] double fidelity_to_pure(const Matrix& rho, const ColumnVector& psi,
                                      FidelityConvention convention);

/// Entanglement fidelity of the paper's link model in closed form: a
/// PhiPlus pair with its travelling half sent through amplitude damping of
/// transmissivity eta has
///   F_jozsa(eta)   = (1 + sqrt(eta))^2 / 4,
///   F_uhlmann(eta) = (1 + sqrt(eta)) / 2.
/// Used by tests to pin the simulated channel and by the routing layer to
/// turn path transmissivity into fidelity without building matrices.
[[nodiscard]] double bell_fidelity_after_damping(double eta,
                                                 FidelityConvention convention);

/// Trace distance (1/2) * Tr|rho - sigma|.
[[nodiscard]] double trace_distance(const Matrix& rho, const Matrix& sigma);

/// Wootters concurrence of a two-qubit density matrix; 0 for separable
/// states, 1 for maximally entangled ones.
[[nodiscard]] double concurrence(const Matrix& rho);

/// Negativity: sum of |negative eigenvalues| of the partial transpose over
/// the second qubit. Positive iff the two-qubit state is entangled (PPT).
[[nodiscard]] double negativity(const Matrix& rho);

}  // namespace qntn::quantum
