#include "quantum/memory.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"
#include "quantum/channels.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/state.hpp"

namespace qntn::quantum {

namespace {
void check(const MemoryModel& model) { model.validate(); }
}  // namespace

void MemoryModel::validate() const {
  QNTN_REQUIRE(t1 > 0.0 && t2 > 0.0,
               "memory T1/T2 must be positive (got T1 = " +
                   std::to_string(t1) + " s, T2 = " + std::to_string(t2) +
                   " s)");
  QNTN_REQUIRE(t2 <= 2.0 * t1 + 1e-12,
               "memory physicality requires T2 <= 2 T1 (got T1 = " +
                   std::to_string(t1) + " s, T2 = " + std::to_string(t2) +
                   " s; the implied pure-dephasing rate would be negative)");
}

MemoryModel MemoryModel::checked(double t1, double t2) {
  const MemoryModel model{t1, t2};
  model.validate();
  return model;
}

double MemoryModel::relaxation_survival(double duration) const {
  check(*this);
  QNTN_REQUIRE(duration >= 0.0, "duration must be non-negative");
  return std::exp(-duration / t1);
}

double MemoryModel::dephasing_probability(double duration) const {
  check(*this);
  QNTN_REQUIRE(duration >= 0.0, "duration must be non-negative");
  // Pure dephasing rate beyond the T1 contribution: 1/T_phi = 1/T2 - 1/(2T1).
  const double rate = 1.0 / t2 - 1.0 / (2.0 * t1);
  if (rate <= 0.0) return 0.0;
  // Off-diagonals decay by e^{-t/T_phi}; the dephasing channel with
  // parameter p scales them by (1 - 2p)... using the Kraus form in
  // channels.cpp the coherence factor is 1 - 2p, so p = (1 - e^{-rt})/2.
  return 0.5 * (1.0 - std::exp(-rate * duration));
}

Matrix MemoryModel::store(const Matrix& rho, std::size_t which,
                          double duration) const {
  const double survival = relaxation_survival(duration);
  Matrix out = amplitude_damping(survival).apply_to_qubit(rho, which);
  const double p = dephasing_probability(duration);
  if (p > 0.0) {
    out = dephasing(p).apply_to_qubit(out, which);
  }
  return out;
}

double MemoryModel::stored_pair_fidelity(double eta, double duration) const {
  QNTN_REQUIRE(eta >= 0.0 && eta <= 1.0, "transmissivity must be in [0, 1]");
  // Analytic composition: AD(eta) then AD(s) is AD(eta s); the pure
  // dephasing then scales the |00><11| coherence by (1 - 2p), giving
  //   F^2 = (1 + eta s) / 4 + sqrt(eta s) (1 - 2 p) / 2
  // for the PhiPlus overlap; F is the Uhlmann (sqrt) convention value.
  const double s = relaxation_survival(duration);
  const double p = dephasing_probability(duration);
  const double es = eta * s;
  const double jozsa =
      (1.0 + es) / 4.0 + std::sqrt(es) * (1.0 - 2.0 * p) / 2.0;
  return std::sqrt(std::max(jozsa, 0.0));
}

}  // namespace qntn::quantum
