#include "quantum/teleportation.hpp"

#include <cmath>

#include "common/error.hpp"
#include "quantum/gates.hpp"
#include "quantum/state.hpp"

namespace qntn::quantum {

Matrix teleport(const Matrix& pair, const ColumnVector& psi) {
  QNTN_REQUIRE(pair.rows() == 4 && pair.cols() == 4,
               "resource must be a two-qubit state");
  QNTN_REQUIRE(psi.rows() == 2 && psi.cols() == 1,
               "teleport expects a single-qubit pure state");

  // Register: input (qubit 0), Alice's half (1), Bob's half (2).
  const Matrix input = pure_density(psi);
  Matrix rho = input.kron(pair);

  // Alice's BSM on (0, 1).
  rho = apply_unitary(cnot(3, 0, 1), rho);
  rho = apply_unitary(lift_single(hadamard(), 3, 0), rho);

  Matrix output(2, 2);
  const MeasurementBranches first = measure_qubit(rho, 0);
  for (int m0 = 0; m0 < 2; ++m0) {
    const MeasurementOutcome& branch = m0 == 0 ? first.zero : first.one;
    if (branch.probability <= 1e-15) continue;
    const MeasurementBranches second = measure_qubit(branch.post_state, 1);
    for (int m1 = 0; m1 < 2; ++m1) {
      const MeasurementOutcome& outcome = m1 == 0 ? second.zero : second.one;
      const double p = branch.probability * outcome.probability;
      if (p <= 1e-15) continue;
      Matrix corrected = outcome.post_state;
      if (m1 == 1) {
        corrected = apply_unitary(lift_single(pauli_x(), 3, 2), corrected);
      }
      if (m0 == 1) {
        corrected = apply_unitary(lift_single(pauli_z(), 3, 2), corrected);
      }
      // Bob's qubit: trace out the measured qubits 0 and 1.
      const Matrix bob =
          partial_trace_qubit(partial_trace_qubit(corrected, 1), 0);
      output += bob * Complex(p, 0.0);
    }
  }
  return output;
}

double teleportation_fidelity(const Matrix& pair, const ColumnVector& psi) {
  const Matrix out = teleport(pair, psi);
  const Matrix expectation = psi.dagger() * out * psi;
  return std::max(expectation(0, 0).real(), 0.0);
}

double average_teleportation_fidelity(const Matrix& pair) {
  const double r = 1.0 / std::sqrt(2.0);
  const Complex i{0.0, 1.0};
  const ColumnVector cardinals[] = {
      column_vector({1.0, 0.0}),       // |0>
      column_vector({0.0, 1.0}),       // |1>
      column_vector({r, r}),           // |+>
      column_vector({r, -r}),          // |->
      column_vector({r, i * r}),       // |+i>
      column_vector({r, -i * r}),      // |-i>
  };
  double sum = 0.0;
  for (const ColumnVector& psi : cardinals) {
    sum += teleportation_fidelity(pair, psi);
  }
  return sum / 6.0;
}

}  // namespace qntn::quantum
