#include "quantum/fidelity.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "quantum/eig.hpp"
#include "quantum/state.hpp"

namespace qntn::quantum {

double fidelity(const Matrix& rho, const Matrix& sigma,
                FidelityConvention convention) {
  QNTN_REQUIRE(rho.rows() == sigma.rows() && rho.is_square() && sigma.is_square(),
               "fidelity needs square matrices of equal dimension");
  const Matrix root = sqrt_psd(rho);
  const Matrix inner = root * sigma * root;
  // Tr sqrt(inner) = sum of sqrt of eigenvalues of the PSD matrix `inner`.
  const EigenDecomposition eig = eigen_hermitian(inner);
  double sum = 0.0;
  for (double lambda : eig.eigenvalues) {
    sum += std::sqrt(std::max(lambda, 0.0));
  }
  return convention == FidelityConvention::Jozsa ? sum * sum : sum;
}

double fidelity_to_pure(const Matrix& rho, const ColumnVector& psi,
                        FidelityConvention convention) {
  QNTN_REQUIRE(psi.cols() == 1 && psi.rows() == rho.rows(),
               "pure target must be a column vector matching rho");
  const Matrix expectation = psi.dagger() * rho * psi;
  const double f2 = std::max(expectation(0, 0).real(), 0.0);
  return convention == FidelityConvention::Jozsa ? f2 : std::sqrt(f2);
}

double bell_fidelity_after_damping(double eta, FidelityConvention convention) {
  QNTN_REQUIRE(eta >= 0.0 && eta <= 1.0, "transmissivity must be in [0, 1]");
  const double uhlmann = (1.0 + std::sqrt(eta)) / 2.0;
  return convention == FidelityConvention::Jozsa ? uhlmann * uhlmann : uhlmann;
}

double trace_distance(const Matrix& rho, const Matrix& sigma) {
  const Matrix diff = rho - sigma;
  const EigenDecomposition eig = eigen_hermitian(diff);
  double sum = 0.0;
  for (double lambda : eig.eigenvalues) sum += std::fabs(lambda);
  return 0.5 * sum;
}

double concurrence(const Matrix& rho) {
  QNTN_REQUIRE(rho.rows() == 4 && rho.cols() == 4,
               "concurrence is defined for two-qubit states");
  // rho_tilde = (Y ⊗ Y) rho* (Y ⊗ Y); concurrence from the square roots of
  // the eigenvalues of rho * rho_tilde (Wootters 1998).
  const Complex i{0.0, 1.0};
  Matrix y{{0.0, -i}, {i, 0.0}};
  const Matrix yy = y.kron(y);

  Matrix rho_conj(4, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      rho_conj(r, c) = std::conj(rho(r, c));
    }
  }
  const Matrix product = rho * yy * rho_conj * yy;
  // product is similar to a PSD matrix: its eigenvalues are real and >= 0,
  // but the matrix itself is not Hermitian, so we cannot use the Hermitian
  // solver directly. Instead use R = sqrt(sqrt(rho) rho_tilde sqrt(rho)),
  // which shares the sqrt-eigenvalues and is Hermitian PSD.
  const Matrix root_rho = sqrt_psd(rho);
  const Matrix rho_tilde = yy * rho_conj * yy;
  const Matrix herm = root_rho * rho_tilde * root_rho;
  EigenDecomposition eig = eigen_hermitian(herm);
  // lambdas (descending) are the sqrt of these eigenvalues.
  std::vector<double> lams;
  lams.reserve(4);
  for (double lambda : eig.eigenvalues) {
    lams.push_back(std::sqrt(std::max(lambda, 0.0)));
  }
  std::sort(lams.begin(), lams.end(), std::greater<>());
  return std::max(0.0, lams[0] - lams[1] - lams[2] - lams[3]);
}

double negativity(const Matrix& rho) {
  QNTN_REQUIRE(qubit_count(rho) == 2, "negativity implemented for two qubits");
  const Matrix pt = partial_transpose_qubit(rho, 1);
  const EigenDecomposition eig = eigen_hermitian(pt);
  double sum = 0.0;
  for (double lambda : eig.eigenvalues) {
    if (lambda < 0.0) sum += -lambda;
  }
  return sum;
}

}  // namespace qntn::quantum
