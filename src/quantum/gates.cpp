#include "quantum/gates.hpp"

#include <cmath>

#include "common/error.hpp"
#include "quantum/state.hpp"

namespace qntn::quantum {

namespace {
const Complex kI{0.0, 1.0};
}

Matrix pauli_x() { return Matrix{{0.0, 1.0}, {1.0, 0.0}}; }

Matrix pauli_y() { return Matrix{{0.0, -kI}, {kI, 0.0}}; }

Matrix pauli_z() { return Matrix{{1.0, 0.0}, {0.0, -1.0}}; }

Matrix hadamard() {
  const double r = 1.0 / std::sqrt(2.0);
  return Matrix{{r, r}, {r, -r}};
}

Matrix phase(double phi) {
  return Matrix{{1.0, 0.0}, {0.0, std::polar(1.0, phi)}};
}

Matrix rotation_x(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return Matrix{{c, -kI * s}, {-kI * s, c}};
}

Matrix lift_single(const Matrix& gate, std::size_t n_qubits, std::size_t which) {
  QNTN_REQUIRE(gate.rows() == 2 && gate.cols() == 2,
               "lift_single expects a single-qubit gate");
  QNTN_REQUIRE(which < n_qubits, "qubit index out of range");
  Matrix lifted = which == 0 ? gate : Matrix::identity(2);
  for (std::size_t q = 1; q < n_qubits; ++q) {
    lifted = lifted.kron(q == which ? gate : Matrix::identity(2));
  }
  return lifted;
}

Matrix cnot(std::size_t n_qubits, std::size_t control, std::size_t target) {
  QNTN_REQUIRE(control < n_qubits && target < n_qubits && control != target,
               "cnot needs distinct in-range qubits");
  const std::size_t d = std::size_t{1} << n_qubits;
  Matrix gate(d, d);
  const std::size_t control_bit = std::size_t{1} << (n_qubits - 1 - control);
  const std::size_t target_bit = std::size_t{1} << (n_qubits - 1 - target);
  for (std::size_t col = 0; col < d; ++col) {
    const std::size_t row = (col & control_bit) != 0 ? col ^ target_bit : col;
    gate(row, col) = 1.0;
  }
  return gate;
}

Matrix apply_unitary(const Matrix& unitary, const Matrix& rho) {
  QNTN_REQUIRE(unitary.rows() == rho.rows() && unitary.is_square(),
               "unitary/state dimension mismatch");
  return unitary * rho * unitary.dagger();
}

MeasurementBranches measure_qubit(const Matrix& rho, std::size_t which) {
  const std::size_t n = qubit_count(rho);
  QNTN_REQUIRE(which < n, "qubit index out of range");
  const std::size_t d = rho.rows();
  const std::size_t bit = std::size_t{1} << (n - 1 - which);

  MeasurementBranches branches;
  for (int outcome = 0; outcome < 2; ++outcome) {
    // Projector P = sum over basis states whose `which` bit equals outcome.
    Matrix projected(d, d);
    for (std::size_t r = 0; r < d; ++r) {
      if (static_cast<int>((r & bit) != 0) != outcome) continue;
      for (std::size_t c = 0; c < d; ++c) {
        if (static_cast<int>((c & bit) != 0) != outcome) continue;
        projected(r, c) = rho(r, c);
      }
    }
    const double probability = projected.trace().real();
    MeasurementOutcome& out = outcome == 0 ? branches.zero : branches.one;
    out.probability = probability;
    if (probability > 1e-15) {
      out.post_state = projected * Complex(1.0 / probability, 0.0);
    } else {
      out.post_state = Matrix(d, d);  // zero state for impossible branch
    }
  }
  return branches;
}

}  // namespace qntn::quantum
