#pragma once

#include <vector>

#include "quantum/matrix.hpp"

/// \file swapping.hpp
/// Entanglement swapping — the physical primitive behind multi-hop
/// entanglement distribution. The paper's simulator treats a routed path as
/// one amplitude-damping channel with the product transmissivity; swapping
/// is how a real network realises that path: the relay performs a Bell
/// state measurement (BSM) on its two halves, collapsing the end nodes into
/// one pair, with Pauli corrections keyed on the BSM outcome.
///
/// This module implements the full density-matrix protocol so the
/// product-transmissivity shortcut can be validated against the physical
/// mechanism (see the swap tests and integration tests).

namespace qntn::quantum {

struct SwapResult {
  /// Two-qubit state of the end nodes A, B after the swap (all four BSM
  /// branches kept, with the standard Pauli corrections applied — the
  /// gate-model BSM is deterministic).
  Matrix state;
  /// Fidelity of `state` to PhiPlus (Uhlmann convention).
  double fidelity = 0.0;

  SwapResult() : state(4, 4) {}
};

/// Swap two pairs sharing the middle node M: rho_am on (A, M1) and rho_mb
/// on (M2, B). The BSM is a CNOT + Hadamard + Z-basis measurement on
/// (M1, M2); outcome (m1, m2) triggers the correction X^{m2} Z^{m1} on B.
[[nodiscard]] SwapResult entanglement_swap(const Matrix& rho_am,
                                           const Matrix& rho_mb);

/// Repeated swapping along a chain of pairs (left fold); one pair returns
/// itself.
[[nodiscard]] SwapResult swap_chain(const std::vector<Matrix>& pair_states);

/// Convenience for the QNTN link model: build each hop's pair as a PhiPlus
/// half sent through amplitude damping of the given transmissivity, then
/// swap the chain.
[[nodiscard]] SwapResult swap_damped_chain(const std::vector<double>& hop_etas);

}  // namespace qntn::quantum
