#pragma once

#include <cstddef>
#include <vector>

#include "quantum/matrix.hpp"

/// \file purification.hpp
/// Entanglement purification — the standard recurrence protocols (BBPSSW,
/// Bennett et al. 1996; DEJMPS, Deutsch et al. 1996) implemented at the
/// density-matrix level on two noisy pairs. This extends the paper's
/// pipeline along its stated future-work axis: the QNTN links distribute
/// pairs at F ~ 0.92-0.97, and purification is the standard tool for
/// pushing them towards application-grade fidelity at the cost of extra
/// pairs.
///
/// Qubit layout inside the protocols: the four-qubit register is
/// A1 B1 A2 B2 (pair 1 = qubits 0,1; pair 2 = qubits 2,3); Alice holds
/// qubits 0,2 and Bob holds 1,3 — only local operations and classical
/// post-selection are used, as required for a protocol running across a
/// quantum network.

namespace qntn::quantum {

/// Result of one purification round.
struct PurificationRound {
  /// Normalised two-qubit output state conditioned on success.
  Matrix state;
  /// Probability that the round succeeds (coincident measurement results).
  double success_probability = 0.0;
  /// Fidelity of `state` to PhiPlus (Uhlmann convention).
  double fidelity = 0.0;

  PurificationRound() : state(4, 4) {}
};

/// Twirl a two-qubit state to Werner form with the same PhiPlus fidelity
/// component: rho -> F |Phi+><Phi+| + (1-F)/3 (I - |Phi+><Phi+|).
/// BBPSSW assumes Werner inputs; twirling enforces that between rounds.
[[nodiscard]] Matrix twirl_to_werner(const Matrix& rho);

/// One BBPSSW round on two copies of `rho` (each a two-qubit state):
/// bilateral CNOTs, Z-measurement of the second pair, keep on coincidence.
/// Exact density-matrix simulation — no Werner assumption is made here,
/// but the closed forms below only apply to Werner inputs.
[[nodiscard]] PurificationRound bbpssw_round(const Matrix& rho);

/// One DEJMPS round: bilateral Rx(+pi/2)/Rx(-pi/2) rotations, then the
/// same CNOT/measure/post-select step. The rotations change which Bell
/// coefficients the recurrence pairs: the plain circuit pairs
/// (PhiPlus, PhiMinus) and (PsiPlus, PsiMinus); DEJMPS pairs
/// (PhiPlus, PsiMinus). Which pairing wins depends on the noise — for the
/// dephasing-dominated states of repeater links DEJMPS is the classic
/// choice, while for the amplitude-damped pairs QNTN links produce the
/// PhiMinus coefficient is already the smallest, so the *plain* circuit
/// purifies better (see optimal_bell_round and the purification bench).
[[nodiscard]] PurificationRound dejmps_round(const Matrix& rho);

/// Evaluate both pairings (plain and DEJMPS-rotated) and return the round
/// with the higher output fidelity — the natural protocol when the
/// Bell-diagonal structure of the input is known, as it is in a simulator.
[[nodiscard]] PurificationRound optimal_bell_round(const Matrix& rho);

/// Closed-form BBPSSW recurrence for Werner states of fidelity F:
///   F' = (F^2 + ((1-F)/3)^2) / (F^2 + 2F(1-F)/3 + 5((1-F)/3)^2).
[[nodiscard]] double bbpssw_fidelity(double fidelity);

/// Closed-form BBPSSW success probability for Werner states of fidelity F
/// (the denominator of the recurrence).
[[nodiscard]] double bbpssw_success(double fidelity);

/// Bell-diagonal state from coefficients {PhiPlus, PsiPlus, PsiMinus,
/// PhiMinus}; coefficients must be non-negative and sum to 1.
[[nodiscard]] Matrix bell_diagonal(const std::vector<double>& coefficients);

/// Project out the Bell-diagonal coefficients of a two-qubit state, in the
/// order {PhiPlus, PsiPlus, PsiMinus, PhiMinus}.
[[nodiscard]] std::vector<double> bell_diagonal_coefficients(const Matrix& rho);

/// Which protocol a ladder iterates.
enum class PurificationProtocol { Bbpssw, Dejmps, Optimal };

/// One step of a purification ladder (nested purification: each round
/// consumes two outputs of the previous round).
struct LadderStep {
  std::size_t round = 0;
  double fidelity = 0.0;
  double success_probability = 0.0;
  /// Expected number of raw input pairs consumed per surviving output pair
  /// (2^round divided by the product of success probabilities).
  double expected_cost = 1.0;
};

/// Iterate up to `rounds` purification rounds starting from `initial`
/// (BBPSSW re-twirls to Werner between rounds, as the protocol requires;
/// DEJMPS/Optimal operate on the exact state). Stops early if a round's
/// success probability collapses (< 1e-6) or fidelity stops improving.
[[nodiscard]] std::vector<LadderStep> purification_ladder(
    const Matrix& initial, std::size_t rounds,
    PurificationProtocol protocol = PurificationProtocol::Optimal);

}  // namespace qntn::quantum
