#include "quantum/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qntn::quantum {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols) {
  QNTN_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

Matrix::Matrix(std::initializer_list<std::initializer_list<Complex>> rows)
    : rows_(rows.size()), cols_(rows.begin()->size()) {
  QNTN_REQUIRE(rows_ > 0 && cols_ > 0, "matrix dimensions must be positive");
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    QNTN_REQUIRE(row.size() == cols_, "ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::zero(std::size_t rows, std::size_t cols) { return Matrix(rows, cols); }

Matrix& Matrix::operator+=(const Matrix& o) {
  QNTN_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  QNTN_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(Complex s) {
  for (Complex& v : data_) v *= s;
  return *this;
}

Matrix Matrix::operator+(const Matrix& o) const {
  Matrix out = *this;
  out += o;
  return out;
}

Matrix Matrix::operator-(const Matrix& o) const {
  Matrix out = *this;
  out -= o;
  return out;
}

Matrix Matrix::operator*(const Matrix& o) const {
  QNTN_REQUIRE(cols_ == o.rows_, "shape mismatch in matrix product");
  Matrix out(rows_, o.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const Complex aik = (*this)(i, k);
      if (aik == Complex{}) continue;
      for (std::size_t j = 0; j < o.cols_; ++j) {
        out(i, j) += aik * o(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator*(Complex s) const {
  Matrix out = *this;
  out *= s;
  return out;
}

Matrix operator*(Complex s, const Matrix& m) { return m * s; }

Matrix Matrix::dagger() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out(j, i) = std::conj((*this)(i, j));
    }
  }
  return out;
}

Complex Matrix::trace() const {
  QNTN_REQUIRE(is_square(), "trace of non-square matrix");
  Complex t{};
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

Matrix Matrix::kron(const Matrix& o) const {
  Matrix out(rows_ * o.rows_, cols_ * o.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      const Complex aij = (*this)(i, j);
      if (aij == Complex{}) continue;
      for (std::size_t k = 0; k < o.rows_; ++k) {
        for (std::size_t l = 0; l < o.cols_; ++l) {
          out(i * o.rows_ + k, j * o.cols_ + l) = aij * o(k, l);
        }
      }
    }
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double sum = 0.0;
  for (const Complex& v : data_) sum += std::norm(v);
  return std::sqrt(sum);
}

double Matrix::max_abs_diff(const Matrix& o) const {
  QNTN_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - o.data_[i]));
  }
  return m;
}

bool Matrix::is_hermitian(double tol) const {
  if (!is_square()) return false;
  return max_abs_diff(dagger()) < tol;
}

bool Matrix::is_unitary(double tol) const {
  if (!is_square()) return false;
  return (dagger() * *this).max_abs_diff(identity(rows_)) < tol;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    os << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < m.cols(); ++j) {
      const Complex v = m(i, j);
      os << '(' << v.real() << (v.imag() >= 0 ? "+" : "") << v.imag() << "i)";
      if (j + 1 != m.cols()) os << ", ";
    }
    os << (i + 1 == m.rows() ? "]" : ";\n");
  }
  return os;
}

ColumnVector column_vector(std::initializer_list<Complex> amps) {
  ColumnVector v(amps.size(), 1);
  std::size_t i = 0;
  for (const Complex& a : amps) v(i++, 0) = a;
  return v;
}

Matrix outer(const ColumnVector& a, const ColumnVector& b) {
  QNTN_REQUIRE(a.cols() == 1 && b.cols() == 1, "outer() expects column vectors");
  return a * b.dagger();
}

}  // namespace qntn::quantum
