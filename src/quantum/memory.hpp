#pragma once

#include "quantum/matrix.hpp"

/// \file memory.hpp
/// Quantum-memory decoherence during storage. Stored qubits relax
/// (amplitude damping, time constant T1) and dephase (time constant T2);
/// the event-driven traffic simulator applies this to pairs waiting for
/// classical heralding and queued service, putting a physical price on
/// latency that the paper's instantaneous-serving model ignores.

namespace qntn::quantum {

struct MemoryModel {
  double t1 = 1.0;  ///< relaxation time constant [s]
  double t2 = 0.5;  ///< dephasing time constant [s]; must satisfy T2 <= 2 T1

  /// Throws qntn::Error naming the violated constraint when the pair
  /// (T1, T2) is unphysical: both must be positive and T2 <= 2 T1 (beyond
  /// that bound the implied pure-dephasing rate 1/T2 - 1/(2 T1) is
  /// negative). Call this at construction/config-parse boundaries so bad
  /// configurations fail loudly instead of silently clamping.
  void validate() const;

  /// Validating factory: returns {t1, t2} after validate().
  [[nodiscard]] static MemoryModel checked(double t1, double t2);

  /// Survival of the excited-state population after storing for `duration`.
  [[nodiscard]] double relaxation_survival(double duration) const;

  /// Probability parameter of the extra pure-dephasing channel after
  /// `duration` (0 = no dephasing beyond what T1 implies).
  [[nodiscard]] double dephasing_probability(double duration) const;

  /// Apply storage decoherence to qubit `which` of a state for `duration`
  /// seconds: amplitude damping with e^{-t/T1} followed by pure dephasing
  /// at the rate 1/T2 - 1/(2 T1).
  [[nodiscard]] Matrix store(const Matrix& rho, std::size_t which,
                             double duration) const;

  /// Closed form used by the traffic simulator: the PhiPlus fidelity
  /// (Uhlmann) of a pair with initial end-to-end transmissivity eta whose
  /// travelling half is then stored for `duration`. Pinned against the
  /// density-matrix path by tests.
  [[nodiscard]] double stored_pair_fidelity(double eta, double duration) const;
};

}  // namespace qntn::quantum
