#include "quantum/channels.hpp"

#include <cmath>

#include "common/error.hpp"
#include "quantum/state.hpp"

namespace qntn::quantum {

KrausChannel::KrausChannel(std::string name, std::vector<Matrix> kraus_ops)
    : name_(std::move(name)), ops_(std::move(kraus_ops)) {
  QNTN_REQUIRE(!ops_.empty(), "channel needs at least one Kraus operator");
  const std::size_t d = ops_.front().rows();
  for (const Matrix& k : ops_) {
    QNTN_REQUIRE(k.rows() == d && k.cols() == d,
                 "Kraus operators must be square with equal dimensions");
  }
}

Matrix KrausChannel::apply(const Matrix& rho) const {
  QNTN_REQUIRE(rho.rows() == dimension() && rho.cols() == dimension(),
               "state dimension does not match channel");
  Matrix out(rho.rows(), rho.cols());
  for (const Matrix& k : ops_) {
    out += k * rho * k.dagger();
  }
  return out;
}

Matrix KrausChannel::apply_to_qubit(const Matrix& rho, std::size_t which) const {
  QNTN_REQUIRE(dimension() == 2, "apply_to_qubit needs a single-qubit channel");
  const std::size_t n = qubit_count(rho);
  QNTN_REQUIRE(which < n, "qubit index out of range");
  Matrix out(rho.rows(), rho.cols());
  for (const Matrix& k : ops_) {
    // Build I ⊗ ... ⊗ K ⊗ ... ⊗ I with K at position `which` (MSB first).
    Matrix lifted = which == 0 ? k : Matrix::identity(2);
    for (std::size_t q = 1; q < n; ++q) {
      lifted = lifted.kron(q == which ? k : Matrix::identity(2));
    }
    out += lifted * rho * lifted.dagger();
  }
  return out;
}

bool KrausChannel::is_trace_preserving(double tol) const {
  Matrix sum(dimension(), dimension());
  for (const Matrix& k : ops_) {
    sum += k.dagger() * k;
  }
  return sum.max_abs_diff(Matrix::identity(dimension())) < tol;
}

KrausChannel KrausChannel::then(const KrausChannel& other) const {
  QNTN_REQUIRE(dimension() == other.dimension(),
               "cannot compose channels of different dimension");
  std::vector<Matrix> ops;
  ops.reserve(ops_.size() * other.ops_.size());
  for (const Matrix& b : other.ops_) {
    for (const Matrix& a : ops_) {
      ops.push_back(b * a);
    }
  }
  return KrausChannel(other.name_ + "∘" + name_, std::move(ops));
}

KrausChannel amplitude_damping(double eta) {
  QNTN_REQUIRE(eta >= 0.0 && eta <= 1.0, "transmissivity must be in [0, 1]");
  const double root_eta = std::sqrt(eta);
  const double root_loss = std::sqrt(1.0 - eta);
  Matrix k0{{1.0, 0.0}, {0.0, root_eta}};
  Matrix k1{{0.0, root_loss}, {0.0, 0.0}};
  return KrausChannel("amplitude_damping", {std::move(k0), std::move(k1)});
}

KrausChannel depolarizing(double p) {
  QNTN_REQUIRE(p >= 0.0 && p <= 1.0, "probability must be in [0, 1]");
  const Complex i{0.0, 1.0};
  const double a = std::sqrt(1.0 - p);
  const double b = std::sqrt(p / 3.0);
  Matrix k0{{a, 0.0}, {0.0, a}};
  Matrix kx{{0.0, b}, {b, 0.0}};
  Matrix ky{{0.0, -i * b}, {i * b, 0.0}};
  Matrix kz{{b, 0.0}, {0.0, -b}};
  return KrausChannel("depolarizing",
                      {std::move(k0), std::move(kx), std::move(ky), std::move(kz)});
}

KrausChannel dephasing(double p) {
  QNTN_REQUIRE(p >= 0.0 && p <= 1.0, "probability must be in [0, 1]");
  const double a = std::sqrt(1.0 - p);
  const double b = std::sqrt(p);
  Matrix k0{{a, 0.0}, {0.0, a}};
  Matrix k1{{b, 0.0}, {0.0, -b}};
  return KrausChannel("dephasing", {std::move(k0), std::move(k1)});
}

KrausChannel bit_flip(double p) {
  QNTN_REQUIRE(p >= 0.0 && p <= 1.0, "probability must be in [0, 1]");
  const double a = std::sqrt(1.0 - p);
  const double b = std::sqrt(p);
  Matrix k0{{a, 0.0}, {0.0, a}};
  Matrix k1{{0.0, b}, {b, 0.0}};
  return KrausChannel("bit_flip", {std::move(k0), std::move(k1)});
}

KrausChannel identity_channel() {
  return KrausChannel("identity", {Matrix::identity(2)});
}

Matrix transmit_bell_half(double eta) {
  const Matrix rho = pure_density(bell_state(BellState::PhiPlus));
  return amplitude_damping(eta).apply_to_qubit(rho, 1);
}

}  // namespace qntn::quantum
