#pragma once

#include <cstddef>

#include "common/vec3.hpp"

/// \file elements.hpp
/// Classical (Keplerian) orbital elements and the conversions the propagator
/// needs: Kepler's equation (mean -> eccentric anomaly), anomaly conversions,
/// and elements -> inertial Cartesian state. Built from scratch to replace
/// the Ansys STK dependency of the paper (DESIGN.md §1).

namespace qntn::orbit {

/// Classical orbital elements. Angles in radians, semi-major axis in metres.
/// Valid for elliptical orbits (0 <= e < 1); the constellation in the paper
/// is circular (e = 0).
struct KeplerianElements {
  double semi_major_axis = 0.0;  ///< a [m]
  double eccentricity = 0.0;     ///< e, in [0, 1)
  double inclination = 0.0;      ///< i [rad]
  double raan = 0.0;             ///< right ascension of ascending node [rad]
  double arg_perigee = 0.0;      ///< argument of perigee [rad]
  double true_anomaly = 0.0;     ///< nu at epoch [rad]

  /// Orbital period [s] from Kepler's third law.
  [[nodiscard]] double period() const;

  /// Mean motion n [rad/s].
  [[nodiscard]] double mean_motion() const;
};

/// Cartesian state in the Earth-centred inertial frame.
struct StateVector {
  Vec3 position;  ///< [m]
  Vec3 velocity;  ///< [m/s]
};

/// Solve Kepler's equation M = E - e*sin(E) for the eccentric anomaly E.
/// Newton-Raphson with a third-order starter; converges to |f(E)| < 1e-13
/// for all e in [0, 0.99]. Throws NumericalError if it fails to converge.
[[nodiscard]] double solve_kepler(double mean_anomaly, double eccentricity);

/// Batched Kepler solve over a contiguous array of mean anomalies sharing
/// one eccentricity (one orbit's worth of ephemeris samples at a time).
/// Element-wise identical to solve_kepler — the batch exists so the
/// ephemeris hot loop runs over structure-of-arrays buffers instead of
/// interleaving the solve with frame conversions, and so the profiler can
/// attribute the cost (obs::Span "orbit.batch_kepler").
void solve_kepler_batch(const double* mean_anomalies, std::size_t count,
                        double eccentricity, double* eccentric_out);

/// Eccentric anomaly -> true anomaly.
[[nodiscard]] double eccentric_to_true_anomaly(double eccentric_anomaly,
                                               double eccentricity);

/// True anomaly -> eccentric anomaly.
[[nodiscard]] double true_to_eccentric_anomaly(double true_anomaly,
                                               double eccentricity);

/// True anomaly -> mean anomaly (via eccentric anomaly).
[[nodiscard]] double true_to_mean_anomaly(double true_anomaly,
                                          double eccentricity);

/// Convert elements to an ECI Cartesian state (perifocal -> inertial via the
/// standard 3-1-3 rotation by RAAN, inclination, argument of perigee).
[[nodiscard]] StateVector elements_to_state(const KeplerianElements& el);

}  // namespace qntn::orbit
