#include "orbit/elements.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "obs/profiler.hpp"

namespace qntn::orbit {

double KeplerianElements::period() const {
  const double a = semi_major_axis;
  return kTwoPi * std::sqrt(a * a * a / kEarthMu);
}

double KeplerianElements::mean_motion() const {
  const double a = semi_major_axis;
  return std::sqrt(kEarthMu / (a * a * a));
}

double solve_kepler(double mean_anomaly, double eccentricity) {
  QNTN_REQUIRE(eccentricity >= 0.0 && eccentricity < 1.0,
               "solve_kepler requires elliptical eccentricity");
  const double m = wrap_pi(mean_anomaly);
  if (eccentricity == 0.0) return m;

  // Third-order starter (Markley-style) keeps Newton in its basin for high e.
  double e0 = m + eccentricity * std::sin(m) /
                      (1.0 - std::sin(m + eccentricity) + std::sin(m));
  if (!std::isfinite(e0)) e0 = m;

  double e_anom = e0;
  for (int iter = 0; iter < 64; ++iter) {
    const double f = e_anom - eccentricity * std::sin(e_anom) - m;
    const double fp = 1.0 - eccentricity * std::cos(e_anom);
    const double step = f / fp;
    e_anom -= step;
    if (std::fabs(f) < 1e-13) return e_anom;
  }
  // Bisection fallback: f is monotone in E for e < 1.
  double lo = m - 1.0, hi = m + 1.0;
  while (lo - eccentricity * std::sin(lo) - m > 0.0) lo -= 1.0;
  while (hi - eccentricity * std::sin(hi) - m < 0.0) hi += 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double f = mid - eccentricity * std::sin(mid) - m;
    if (std::fabs(f) < 1e-13) return mid;
    (f > 0.0 ? hi : lo) = mid;
  }
  throw NumericalError("solve_kepler failed to converge");
}

void solve_kepler_batch(const double* mean_anomalies, std::size_t count,
                        double eccentricity, double* eccentric_out) {
  const obs::Span span("orbit.batch_kepler", count);
  for (std::size_t i = 0; i < count; ++i) {
    eccentric_out[i] = solve_kepler(mean_anomalies[i], eccentricity);
  }
}

double eccentric_to_true_anomaly(double eccentric_anomaly, double eccentricity) {
  const double beta = std::sqrt((1.0 + eccentricity) / (1.0 - eccentricity));
  return 2.0 * std::atan(beta * std::tan(eccentric_anomaly / 2.0));
}

double true_to_eccentric_anomaly(double true_anomaly, double eccentricity) {
  const double beta = std::sqrt((1.0 - eccentricity) / (1.0 + eccentricity));
  return 2.0 * std::atan(beta * std::tan(true_anomaly / 2.0));
}

double true_to_mean_anomaly(double true_anomaly, double eccentricity) {
  const double e_anom = true_to_eccentric_anomaly(true_anomaly, eccentricity);
  return e_anom - eccentricity * std::sin(e_anom);
}

StateVector elements_to_state(const KeplerianElements& el) {
  QNTN_REQUIRE(el.semi_major_axis > 0.0, "semi-major axis must be positive");
  const double e = el.eccentricity;
  const double nu = el.true_anomaly;
  const double p = el.semi_major_axis * (1.0 - e * e);  // semi-latus rectum
  const double r = p / (1.0 + e * std::cos(nu));

  // Perifocal frame (PQW): P towards perigee, W along angular momentum.
  const Vec3 r_pqw{r * std::cos(nu), r * std::sin(nu), 0.0};
  const double vf = std::sqrt(kEarthMu / p);
  const Vec3 v_pqw{-vf * std::sin(nu), vf * (e + std::cos(nu)), 0.0};

  const double co = std::cos(el.raan), so = std::sin(el.raan);
  const double ci = std::cos(el.inclination), si = std::sin(el.inclination);
  const double cw = std::cos(el.arg_perigee), sw = std::sin(el.arg_perigee);

  // Rotation PQW -> ECI: R3(-RAAN) R1(-i) R3(-argp).
  auto rotate = [&](const Vec3& v) -> Vec3 {
    return {
        (co * cw - so * sw * ci) * v.x + (-co * sw - so * cw * ci) * v.y,
        (so * cw + co * sw * ci) * v.x + (-so * sw + co * cw * ci) * v.y,
        (sw * si) * v.x + (cw * si) * v.y,
    };
  };
  return {rotate(r_pqw), rotate(v_pqw)};
}

}  // namespace qntn::orbit
