#include "orbit/constellation.hpp"

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace qntn::orbit {

std::vector<KeplerianElements> walker_delta(double semi_major_axis,
                                            double inclination,
                                            std::size_t total,
                                            std::size_t planes,
                                            std::size_t phasing) {
  QNTN_REQUIRE(planes > 0 && total > 0 && total % planes == 0,
               "walker_delta: total must be a positive multiple of planes");
  QNTN_REQUIRE(phasing < planes, "walker_delta: phasing factor f must be < p");
  const std::size_t per_plane = total / planes;
  std::vector<KeplerianElements> out;
  out.reserve(total);
  for (std::size_t k = 0; k < planes; ++k) {
    const double raan = kTwoPi * static_cast<double>(k) / static_cast<double>(planes);
    for (std::size_t s = 0; s < per_plane; ++s) {
      KeplerianElements el;
      el.semi_major_axis = semi_major_axis;
      el.eccentricity = 0.0;
      el.inclination = inclination;
      el.raan = raan;
      el.arg_perigee = 0.0;
      el.true_anomaly = wrap_two_pi(
          kTwoPi * static_cast<double>(s) / static_cast<double>(per_plane) +
          kTwoPi * static_cast<double>(phasing) * static_cast<double>(k) /
              static_cast<double>(total));
      out.push_back(el);
    }
  }
  return out;
}

std::vector<KeplerianElements> plane_of(double semi_major_axis,
                                        double inclination, double raan,
                                        std::size_t count) {
  QNTN_REQUIRE(count > 0, "plane_of: count must be positive");
  std::vector<KeplerianElements> out;
  out.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    KeplerianElements el;
    el.semi_major_axis = semi_major_axis;
    el.eccentricity = 0.0;
    el.inclination = inclination;
    el.raan = wrap_two_pi(raan);
    el.arg_perigee = 0.0;
    el.true_anomaly = kTwoPi * static_cast<double>(s) / static_cast<double>(count);
    out.push_back(el);
  }
  return out;
}

const std::vector<double>& qntn_plane_raans_deg() {
  // Section II-B: first the 6 Walker planes at 60-degree spacing, then 12
  // additional planes filling the gaps so that all planes are 20 deg apart.
  static const std::vector<double> raans = {
      0.0,  60.0,  120.0, 180.0, 240.0, 300.0,            // Walker planes
      20.0, 40.0,  80.0,  100.0, 140.0, 160.0,            // gap planes
      200.0, 220.0, 260.0, 280.0, 320.0, 340.0,
  };
  return raans;
}

std::vector<KeplerianElements> qntn_constellation(std::size_t n_satellites) {
  QNTN_REQUIRE(n_satellites > 0 && n_satellites % 6 == 0 && n_satellites <= 108,
               "qntn_constellation: size must be a multiple of 6 in [6, 108]");
  constexpr double kSemiMajorAxis = 6'871'000.0;  // 500 km altitude (paper)
  const double inclination = deg_to_rad(53.0);
  const std::size_t planes = n_satellites / 6;
  std::vector<KeplerianElements> out;
  out.reserve(n_satellites);
  const std::vector<double>& raans = qntn_plane_raans_deg();
  for (std::size_t k = 0; k < planes; ++k) {
    const auto plane = plane_of(kSemiMajorAxis, inclination,
                                deg_to_rad(raans[k]), 6);
    out.insert(out.end(), plane.begin(), plane.end());
  }
  return out;
}

}  // namespace qntn::orbit
