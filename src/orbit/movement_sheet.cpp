#include "orbit/movement_sheet.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"
#include "geo/geodetic.hpp"

namespace qntn::orbit {

namespace {
constexpr const char* kHeader = "time_s,latitude_deg,longitude_deg,altitude_m";
}

std::string movement_sheet_to_string(const Ephemeris& ephemeris) {
  std::ostringstream os;
  os << kHeader << '\n';
  os << std::fixed << std::setprecision(6);
  for (std::size_t i = 0; i < ephemeris.sample_count(); ++i) {
    const geo::Geodetic g = geo::ecef_to_geodetic(ephemeris.sample(i));
    os << static_cast<double>(i) * ephemeris.step() << ','
       << rad_to_deg(g.latitude) << ',' << rad_to_deg(g.longitude) << ','
       << g.altitude << '\n';
  }
  return os.str();
}

void save_movement_sheet(const std::string& path, const Ephemeris& ephemeris) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open movement sheet for writing: " + path);
  out << movement_sheet_to_string(ephemeris);
  if (!out) throw Error("write failed: " + path);
}

Ephemeris movement_sheet_from_string(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    throw Error("movement sheet: missing or unexpected header");
  }
  std::vector<Vec3> samples;
  std::vector<double> times;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::istringstream row(line);
    double t = 0.0, lat = 0.0, lon = 0.0, alt = 0.0;
    char c1 = 0, c2 = 0, c3 = 0;
    if (!(row >> t >> c1 >> lat >> c2 >> lon >> c3 >> alt) || c1 != ',' ||
        c2 != ',' || c3 != ',') {
      throw Error("movement sheet: malformed row at line " +
                  std::to_string(line_number));
    }
    times.push_back(t);
    samples.push_back(geo::geodetic_to_ecef(
        geo::Geodetic::from_degrees(lat, lon, alt)));
  }
  if (samples.size() < 2) {
    throw Error("movement sheet: needs at least two samples");
  }
  const double step = times[1] - times[0];
  if (step <= 0.0 || std::fabs(times.front()) > 1e-9) {
    throw Error("movement sheet: times must start at 0 with positive step");
  }
  for (std::size_t i = 1; i < times.size(); ++i) {
    if (std::fabs(times[i] - static_cast<double>(i) * step) > 1e-6) {
      throw Error("movement sheet: non-uniform time spacing at row " +
                  std::to_string(i));
    }
  }
  return Ephemeris(std::move(samples), step);
}

Ephemeris load_movement_sheet(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open movement sheet: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return movement_sheet_from_string(buffer.str());
}

}  // namespace qntn::orbit
