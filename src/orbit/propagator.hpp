#pragma once

#include "orbit/elements.hpp"

/// \file propagator.hpp
/// Analytic orbit propagation. TwoBodyPropagator advances the mean anomaly at
/// the Keplerian rate; with J2 enabled it additionally applies the secular
/// drift of RAAN and argument of perigee caused by Earth's oblateness — the
/// dominant perturbation for a 500 km LEO over a day (~5 deg of nodal drift
/// for the paper's 53 deg inclination), exposed so the J2 ablation bench can
/// quantify its effect on coverage.

namespace qntn::orbit {

struct PropagatorOptions {
  bool include_j2 = false;
};

class TwoBodyPropagator {
 public:
  /// Elements are taken to be osculating at sim time 0.
  explicit TwoBodyPropagator(const KeplerianElements& epoch_elements,
                             PropagatorOptions options = {});

  /// Elements at time t [s since epoch] (mean anomaly advanced; RAAN/argp
  /// drifted if J2 is enabled).
  [[nodiscard]] KeplerianElements elements_at(double t) const;

  /// ECI Cartesian state at time t [s since epoch].
  [[nodiscard]] StateVector state_at(double t) const;

  /// Batched ECI positions: out[i] = state_at(times[i]).position,
  /// element-wise identical. Stages the propagation as structure-of-arrays
  /// passes (mean anomalies, then one batched Kepler solve, then the
  /// element-to-state conversion) so ephemeris generation runs over
  /// contiguous buffers instead of one sample at a time.
  void positions_eci_at(const double* times, std::size_t count,
                        Vec3* out) const;

  /// Secular nodal regression rate dRAAN/dt [rad/s] (0 without J2).
  [[nodiscard]] double raan_rate() const { return raan_rate_; }

  /// Secular apsidal rotation rate dargp/dt [rad/s] (0 without J2).
  [[nodiscard]] double arg_perigee_rate() const { return argp_rate_; }

  [[nodiscard]] const KeplerianElements& epoch_elements() const { return epoch_; }

 private:
  KeplerianElements epoch_;
  double mean_anomaly0_ = 0.0;
  double mean_motion_ = 0.0;
  double raan_rate_ = 0.0;
  double argp_rate_ = 0.0;
};

}  // namespace qntn::orbit
