#pragma once

#include <vector>

#include "geo/geodetic.hpp"
#include "orbit/ephemeris.hpp"

/// \file passes.hpp
/// Satellite pass prediction over a ground site: acquisition-of-signal /
/// loss-of-signal times above an elevation mask, with the culmination
/// point. Explains the structure behind the paper's Fig. 6 coverage curve
/// (a 500 km pass above 25-30 degrees lasts only a few minutes, which is
/// why every added 6-satellite plane buys a nearly constant slice of
/// coverage).

namespace qntn::orbit {

struct Pass {
  double aos = 0.0;            ///< acquisition of signal [s]
  double los = 0.0;            ///< loss of signal [s]
  double culmination = 0.0;    ///< time of maximum elevation [s]
  double max_elevation = 0.0;  ///< [rad]

  [[nodiscard]] double duration() const { return los - aos; }
};

/// Find all passes of `ephemeris` over `site` with elevation above
/// `min_elevation` within [0, duration]. Crossing times are located on the
/// scan grid (`step`) and refined by bisection to ~1 ms. A pass in
/// progress at t = 0 starts at aos = 0; one still in progress at the end
/// closes at los = duration.
[[nodiscard]] std::vector<Pass> find_passes(const Ephemeris& ephemeris,
                                            const geo::Geodetic& site,
                                            double duration,
                                            double min_elevation,
                                            double step = 30.0);

/// Like find_passes, but skips ahead while the satellite is far below the
/// mask: if the elevation rate is bounded by `max_elevation_rate` [rad/s],
/// a satellite at elevation e < mask cannot reach the mask for at least
/// (mask - e) / max_elevation_rate seconds, so whole grid stretches can be
/// classified "below" without evaluating them. Skips stay on multiples of
/// `step`, so every grid point the dense scan would classify as above the
/// mask is still evaluated — the pass list is identical to find_passes'
/// (for a sound rate bound) at a fraction of the geometry evaluations.
/// A LEO below 20 deg is never seen faster than ~7 mrad/s from the ground
/// (8.1 km/s relative speed over >1100 km of range); the default keeps a
/// ~40% margin on top. max_elevation_rate <= 0 degenerates to the dense
/// scan. This is the contact-plan compiler's workhorse.
[[nodiscard]] std::vector<Pass> find_passes_adaptive(
    const Ephemeris& ephemeris, const geo::Geodetic& site, double duration,
    double min_elevation, double step = 30.0,
    double max_elevation_rate = 0.01);

/// Aggregate statistics of a pass list.
struct PassStatistics {
  std::size_t count = 0;
  double total_contact = 0.0;   ///< [s]
  double mean_duration = 0.0;   ///< [s]
  double max_elevation = 0.0;   ///< best culmination [rad]
};
[[nodiscard]] PassStatistics summarize_passes(const std::vector<Pass>& passes);

}  // namespace qntn::orbit
