#pragma once

#include <cstddef>
#include <vector>

#include "orbit/elements.hpp"

/// \file constellation.hpp
/// Constellation generators. Two layers:
///  - a generic Walker-Delta generator (i:t/p/f notation), and
///  - the exact layout of the paper's Table II: 18 planes at the RAAN values
///    {0,60,...,300} ∪ {20,40,80,100,140,160,200,220,260,280,320,340} with 6
///    satellites per plane at true anomalies {0,60,...,300}, a = 6871 km,
///    i = 53 deg, circular. Sizes from 6 to 108 in steps of 6 are obtained by
///    taking whole planes in the paper's fill order (the 60-degree Walker
///    planes first, then the gap-filling planes).

namespace qntn::orbit {

/// Walker-Delta constellation i:t/p/f — t satellites total, p equally spaced
/// planes, phasing factor f; all circular at the given semi-major axis and
/// inclination. Satellite s of plane k has RAAN = k*2*pi/p and true anomaly
/// = s*2*pi*(p/t)*... following the standard Walker phasing rule
/// nu = 2*pi*(s/(t/p)) + 2*pi*f*k/t.
[[nodiscard]] std::vector<KeplerianElements> walker_delta(
    double semi_major_axis, double inclination, std::size_t total,
    std::size_t planes, std::size_t phasing);

/// One orbital plane of the paper's layout: `count` satellites equally spaced
/// in true anomaly starting at 0 deg, at the given RAAN.
[[nodiscard]] std::vector<KeplerianElements> plane_of(
    double semi_major_axis, double inclination, double raan,
    std::size_t count);

/// RAAN fill order [deg] of the paper's constellation: the six Walker planes
/// spaced 60 deg apart, then the twelve gap planes so all 18 end up 20 deg
/// apart (Table II / Section II-B).
[[nodiscard]] const std::vector<double>& qntn_plane_raans_deg();

/// The paper's constellation truncated to `n_satellites` (must be a positive
/// multiple of 6, at most 108). Semi-major axis 6871 km, inclination 53 deg,
/// circular orbits.
[[nodiscard]] std::vector<KeplerianElements> qntn_constellation(
    std::size_t n_satellites);

}  // namespace qntn::orbit
