#pragma once

#include <string>

#include "orbit/ephemeris.hpp"

/// \file movement_sheet.hpp
/// "Movement sheet" I/O. The paper's workflow exports per-satellite
/// position tables from Ansys STK (30-second sampling over a day) and
/// imports them into the upgraded QuNetSim, mapping each sheet to a
/// satellite's movement list (Section III-C). These functions provide the
/// same interchange format as CSV so externally produced trajectories (an
/// actual STK export, a TLE propagator, flight logs for a HAP) can be
/// loaded into the simulator, and our own ephemerides can be exported for
/// inspection.
///
/// Format: a header line then one row per sample,
///   time_s,latitude_deg,longitude_deg,altitude_m
/// with strictly uniform time spacing starting at 0.

namespace qntn::orbit {

/// Write an ephemeris as a movement sheet. Throws qntn::Error on I/O
/// failure.
void save_movement_sheet(const std::string& path, const Ephemeris& ephemeris);

/// Load a movement sheet into an Ephemeris. Throws qntn::Error on missing
/// file, malformed rows, fewer than two samples, or non-uniform spacing.
[[nodiscard]] Ephemeris load_movement_sheet(const std::string& path);

/// Serialize to/from an in-memory string (same format; used by tests and
/// by callers that transport sheets without touching the filesystem).
[[nodiscard]] std::string movement_sheet_to_string(const Ephemeris& ephemeris);
[[nodiscard]] Ephemeris movement_sheet_from_string(const std::string& text);

}  // namespace qntn::orbit
