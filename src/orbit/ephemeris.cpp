#include "orbit/ephemeris.hpp"

#include <cmath>

#include "common/error.hpp"
#include "geo/frames.hpp"
#include "obs/profiler.hpp"

namespace qntn::orbit {

Ephemeris Ephemeris::generate(const TwoBodyPropagator& prop, double duration,
                              double step, double gmst0) {
  QNTN_REQUIRE(duration > 0.0 && step > 0.0, "duration and step must be positive");
  const auto n = static_cast<std::size_t>(std::ceil(duration / step)) + 1;
  const obs::Span span("orbit.ephemeris_generate", n);
  // Structure-of-arrays staging: the sample times and ECI positions live in
  // contiguous tables so the propagator's batched Kepler solve and the
  // ECEF conversion each run as a tight loop. Values are bit-identical to
  // the sample-at-a-time path (positions_eci_at mirrors state_at).
  std::vector<double> times(n);
  for (std::size_t i = 0; i < n; ++i) {
    times[i] = std::min(static_cast<double>(i) * step, duration);
  }
  std::vector<Vec3> eci(n);
  prop.positions_eci_at(times.data(), n, eci.data());
  std::vector<Vec3> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    samples.push_back(geo::eci_to_ecef(eci[i], geo::gmst_at(times[i], gmst0)));
  }
  return Ephemeris(std::move(samples), step);
}

Ephemeris::Ephemeris(std::vector<Vec3> ecef_samples, double step)
    : samples_(std::move(ecef_samples)), step_(step) {
  QNTN_REQUIRE(samples_.size() >= 2, "ephemeris needs at least two samples");
  QNTN_REQUIRE(step_ > 0.0, "ephemeris step must be positive");
}

Vec3 Ephemeris::position_ecef(double t) const {
  if (t <= 0.0) return samples_.front();
  const double idx = t / step_;
  const auto lo = static_cast<std::size_t>(idx);
  if (lo >= samples_.size() - 1) return samples_.back();
  const double frac = idx - static_cast<double>(lo);
  const Vec3& a = samples_[lo];
  const Vec3& b = samples_[lo + 1];
  return a + (b - a) * frac;
}

geo::Geodetic Ephemeris::ground_point(double t) const {
  geo::Geodetic g = geo::ecef_to_geodetic(position_ecef(t));
  g.altitude = 0.0;
  return g;
}

}  // namespace qntn::orbit
