#include "orbit/passes.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "geo/frames.hpp"

namespace qntn::orbit {

namespace {

double elevation_at(const Ephemeris& ephemeris,
                    const geo::TopocentricFrame& site, double t) {
  return geo::look_angles(site, ephemeris.position_ecef(t)).elevation;
}

/// Bisect the elevation-mask crossing within [lo, hi]; `rising` selects the
/// crossing direction. Preconditions: the crossing is bracketed.
double refine_crossing(const Ephemeris& ephemeris,
                       const geo::TopocentricFrame& site, double mask,
                       double lo, double hi, bool rising) {
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const bool above = elevation_at(ephemeris, site, mid) >= mask;
    if (above == rising) {
      hi = mid;
    } else {
      lo = mid;
    }
    if (hi - lo < 1e-3) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

std::vector<Pass> find_passes(const Ephemeris& ephemeris,
                              const geo::Geodetic& site_geodetic,
                              double duration, double min_elevation,
                              double step) {
  QNTN_REQUIRE(duration > 0.0 && step > 0.0, "duration/step must be positive");
  // Hoist the site's ENU frame out of the scan: every elevation sample
  // otherwise re-derives the site ECEF position and basis trigonometry.
  const geo::TopocentricFrame site(site_geodetic);
  std::vector<Pass> passes;
  bool in_pass = elevation_at(ephemeris, site, 0.0) >= min_elevation;
  Pass current;
  if (in_pass) {
    current.aos = 0.0;
    current.max_elevation = elevation_at(ephemeris, site, 0.0);
    current.culmination = 0.0;
  }
  double prev_t = 0.0;
  for (double t = step; t <= duration + step * 0.5; t += step) {
    const double clamped = std::min(t, duration);
    const double elevation = elevation_at(ephemeris, site, clamped);
    const bool above = elevation >= min_elevation;
    if (above && !in_pass) {
      current = Pass{};
      current.aos = refine_crossing(ephemeris, site, min_elevation, prev_t,
                                    clamped, /*rising=*/true);
      current.max_elevation = elevation;
      current.culmination = clamped;
      in_pass = true;
    } else if (above && in_pass) {
      if (elevation > current.max_elevation) {
        current.max_elevation = elevation;
        current.culmination = clamped;
      }
    } else if (!above && in_pass) {
      current.los = refine_crossing(ephemeris, site, min_elevation, prev_t,
                                    clamped, /*rising=*/false);
      passes.push_back(current);
      in_pass = false;
    }
    prev_t = clamped;
  }
  if (in_pass) {
    current.los = duration;
    passes.push_back(current);
  }
  return passes;
}

std::vector<Pass> find_passes_adaptive(const Ephemeris& ephemeris,
                                       const geo::Geodetic& site_geodetic,
                                       double duration, double min_elevation,
                                       double step, double max_elevation_rate) {
  QNTN_REQUIRE(duration > 0.0 && step > 0.0, "duration/step must be positive");
  if (max_elevation_rate <= 0.0) {
    return find_passes(ephemeris, site_geodetic, duration, min_elevation, step);
  }
  const geo::TopocentricFrame site(site_geodetic);
  std::vector<Pass> passes;
  double elevation = elevation_at(ephemeris, site, 0.0);
  bool in_pass = elevation >= min_elevation;
  Pass current;
  if (in_pass) {
    current.aos = 0.0;
    current.max_elevation = elevation;
    current.culmination = 0.0;
  }
  double prev_t = 0.0;
  std::size_t k = 0;
  while (prev_t < duration) {
    // Hop over grid points that are provably below the mask: starting from
    // elevation e at prev_t, points closer than (mask - e) / rate cannot
    // have crossed. hop - 1 skipped points lie at offsets <= (hop-1)*step,
    // strictly inside that guarantee.
    std::size_t hop = 1;
    if (!in_pass) {
      const double margin = min_elevation - elevation;
      if (margin > 0.0) {
        hop = std::max<std::size_t>(
            1, static_cast<std::size_t>(margin / (max_elevation_rate * step)));
      }
    }
    k += hop;
    const double t = std::min(static_cast<double>(k) * step, duration);
    elevation = elevation_at(ephemeris, site, t);
    const bool above = elevation >= min_elevation;
    if (above && !in_pass) {
      current = Pass{};
      current.aos = refine_crossing(ephemeris, site, min_elevation, prev_t, t,
                                    /*rising=*/true);
      current.max_elevation = elevation;
      current.culmination = t;
      in_pass = true;
    } else if (above && in_pass) {
      if (elevation > current.max_elevation) {
        current.max_elevation = elevation;
        current.culmination = t;
      }
    } else if (!above && in_pass) {
      current.los = refine_crossing(ephemeris, site, min_elevation, prev_t, t,
                                    /*rising=*/false);
      passes.push_back(current);
      in_pass = false;
    }
    prev_t = t;
  }
  if (in_pass) {
    current.los = duration;
    passes.push_back(current);
  }
  return passes;
}

PassStatistics summarize_passes(const std::vector<Pass>& passes) {
  PassStatistics stats;
  stats.count = passes.size();
  for (const Pass& pass : passes) {
    stats.total_contact += pass.duration();
    stats.max_elevation = std::max(stats.max_elevation, pass.max_elevation);
  }
  if (stats.count > 0) {
    stats.mean_duration = stats.total_contact / static_cast<double>(stats.count);
  }
  return stats;
}

}  // namespace qntn::orbit
