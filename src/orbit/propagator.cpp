#include "orbit/propagator.hpp"

#include <cmath>
#include <vector>

#include "common/constants.hpp"
#include "common/units.hpp"

namespace qntn::orbit {

TwoBodyPropagator::TwoBodyPropagator(const KeplerianElements& epoch_elements,
                                     PropagatorOptions options)
    : epoch_(epoch_elements) {
  mean_anomaly0_ = true_to_mean_anomaly(epoch_.true_anomaly, epoch_.eccentricity);
  mean_motion_ = epoch_.mean_motion();
  if (options.include_j2) {
    const double a = epoch_.semi_major_axis;
    const double e = epoch_.eccentricity;
    const double p = a * (1.0 - e * e);
    const double factor = 1.5 * kEarthJ2 * mean_motion_ *
                          (kWgs84A / p) * (kWgs84A / p);
    const double ci = std::cos(epoch_.inclination);
    const double si = std::sin(epoch_.inclination);
    raan_rate_ = -factor * ci;
    argp_rate_ = factor * (2.0 - 2.5 * si * si);
  }
}

KeplerianElements TwoBodyPropagator::elements_at(double t) const {
  KeplerianElements el = epoch_;
  el.raan = wrap_two_pi(epoch_.raan + raan_rate_ * t);
  el.arg_perigee = wrap_two_pi(epoch_.arg_perigee + argp_rate_ * t);
  const double m = mean_anomaly0_ + mean_motion_ * t;
  const double e_anom = solve_kepler(m, el.eccentricity);
  el.true_anomaly = eccentric_to_true_anomaly(e_anom, el.eccentricity);
  return el;
}

StateVector TwoBodyPropagator::state_at(double t) const {
  return elements_to_state(elements_at(t));
}

void TwoBodyPropagator::positions_eci_at(const double* times,
                                         std::size_t count, Vec3* out) const {
  std::vector<double> mean(count);
  for (std::size_t i = 0; i < count; ++i) {
    mean[i] = mean_anomaly0_ + mean_motion_ * times[i];
  }
  std::vector<double> eccentric(count);
  solve_kepler_batch(mean.data(), count, epoch_.eccentricity, eccentric.data());
  // Per-element conversion mirrors elements_at exactly (same expressions in
  // the same order), so each position is bit-identical to the scalar path.
  KeplerianElements el = epoch_;
  for (std::size_t i = 0; i < count; ++i) {
    el.raan = wrap_two_pi(epoch_.raan + raan_rate_ * times[i]);
    el.arg_perigee = wrap_two_pi(epoch_.arg_perigee + argp_rate_ * times[i]);
    el.true_anomaly = eccentric_to_true_anomaly(eccentric[i], el.eccentricity);
    out[i] = elements_to_state(el).position;
  }
}

}  // namespace qntn::orbit
