// Repeater-style pipeline on QNTN links: generate hop pairs through the
// calibrated channels, swap them end-to-end at the relays, then purify the
// result — the full quantum-network workflow the paper's architecture
// study is a substrate for.

#include <cstdio>

#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "net/routing.hpp"
#include "quantum/purification.hpp"
#include "quantum/swapping.hpp"
#include "sim/topology.hpp"

int main() {
  using namespace qntn;
  using namespace qntn::quantum;

  // Route one TTU -> ORNL request over the air-ground network.
  const core::QntnConfig config;
  const sim::NetworkModel model = core::build_air_ground_model(config);
  const sim::TopologyBuilder topology(model, config.link_policy());
  const net::Graph graph = topology.graph_at(0.0);
  const auto route = net::bellman_ford(graph, model.lan_nodes(0).front(),
                                       model.lan_nodes(2).front());
  if (!route) {
    std::printf("no route available\n");
    return 1;
  }
  std::printf("route: ");
  for (std::size_t i = 0; i < route->path.size(); ++i) {
    std::printf("%s%s", graph.name(route->path[i]).c_str(),
                i + 1 < route->path.size() ? " -> " : "\n");
  }

  // Physical layer: one damped pair per hop, swapped at the relays.
  std::vector<double> hop_etas;
  for (std::size_t i = 0; i + 1 < route->path.size(); ++i) {
    double best = 0.0;
    for (const net::Adjacency& adj : graph.neighbors(route->path[i])) {
      if (adj.to == route->path[i + 1]) best = std::max(best, adj.transmissivity);
    }
    hop_etas.push_back(best);
    std::printf("  hop %zu: eta = %.4f\n", i + 1, best);
  }
  const SwapResult swapped = swap_damped_chain(hop_etas);
  std::printf("after entanglement swapping: F = %.4f\n", swapped.fidelity);

  // Application layer: purify until F >= 0.995.
  const auto ladder =
      purification_ladder(swapped.state, 5, PurificationProtocol::Optimal);
  for (const LadderStep& step : ladder) {
    std::printf("  purification round %zu: F = %.4f (p = %.3f, %.1f raw "
                "pairs/output)\n",
                step.round, step.fidelity, step.success_probability,
                step.expected_cost);
    if (step.fidelity >= 0.995) break;
  }
  std::printf(
      "a QNTN air-ground link can deliver application-grade pairs at a few "
      "raw pairs each;\nthe same pipeline over a threshold-limit satellite "
      "path costs roughly twice as many.\n");
  return 0;
}
