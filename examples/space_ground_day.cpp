// Space-ground architecture over one day (paper Section IV-B).
//
// Builds the three Table I LANs plus the Table II constellation (size given
// on the command line, default 108), sweeps a full day at 30 s resolution,
// and prints the connectivity episodes, the Eq. (6)/(7) coverage figures and
// the request-serving statistics.
//
// Usage: space_ground_day [n_satellites]

#include <cstdio>
#include <cstdlib>

#include "common/units.hpp"
#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace qntn;

  std::size_t n_satellites = 108;
  if (argc > 1) n_satellites = static_cast<std::size_t>(std::atoi(argv[1]));

  const core::QntnConfig config;
  std::printf("QNTN space-ground architecture, %zu satellites @ %.0f km\n",
              n_satellites, m_to_km(config.satellite_altitude));

  const sim::NetworkModel model =
      core::build_space_ground_model(config, n_satellites);
  const sim::TopologyBuilder topology(model, config.link_policy());
  const sim::ScenarioResult result =
      sim::run_scenario(model, topology, config.scenario_config());

  std::printf("\nconnectivity episodes (all three LANs interconnected):\n");
  std::size_t shown = 0;
  for (const Interval& episode : result.coverage.intervals.merged()) {
    std::printf("  %7.1f min -> %7.1f min  (%5.1f min)\n",
                s_to_minutes(episode.start), s_to_minutes(episode.end),
                s_to_minutes(episode.length()));
    if (++shown == 12 && result.coverage.intervals.episode_count() > 12) {
      std::printf("  ... and %zu more\n",
                  result.coverage.intervals.episode_count() - shown);
      break;
    }
  }

  std::printf("\ncoverage period T_c = %.1f min of %.0f (Eq. 6)\n",
              s_to_minutes(result.coverage.covered_s), 1440.0);
  std::printf("coverage percentage P = %.2f%% (Eq. 7; paper: 55.17%% @108)\n",
              result.coverage.percent);
  std::printf("served requests       = %.2f%% (paper: 57.75%% @108)\n",
              100.0 * result.served_fraction);
  if (result.fidelity.count() > 0) {
    std::printf("entanglement fidelity = %.4f mean (min %.4f / max %.4f; "
                "paper: 0.96)\n",
                result.fidelity.mean(), result.fidelity.min(),
                result.fidelity.max());
    std::printf("path length           = %.2f hops mean\n", result.hops.mean());
  }
  return 0;
}
