// Hybrid space+air architecture — the paper's future-work direction
// (Section V): combine the HAP's always-on regional relay with the
// constellation's reach, allowing HAP-satellite FSO links. Compares all
// three architectures at a given constellation size.
//
// Usage: hybrid_architecture [n_satellites]

#include <cstdio>
#include <cstdlib>

#include "core/experiments.hpp"

int main(int argc, char** argv) {
  using namespace qntn;

  std::size_t n_satellites = 36;
  if (argc > 1) n_satellites = static_cast<std::size_t>(std::atoi(argv[1]));

  core::QntnConfig config;
  config.enable_hap_satellite = true;

  std::printf("architecture comparison at %zu satellites\n\n", n_satellites);
  std::printf("%-14s %-10s %-10s %-10s\n", "architecture", "cover%", "served%",
              "fidelity");

  const core::ArchitectureMetrics space =
      core::evaluate_space_ground(config, n_satellites);
  std::printf("%-14s %-10.2f %-10.2f %-10.4f\n", "space-ground",
              space.coverage_percent, space.served_percent,
              space.mean_fidelity);

  const core::ArchitectureMetrics air = core::evaluate_air_ground(config);
  std::printf("%-14s %-10.2f %-10.2f %-10.4f\n", "air-ground",
              air.coverage_percent, air.served_percent, air.mean_fidelity);

  const core::ArchitectureMetrics hybrid = core::evaluate_hybrid(config, n_satellites);
  std::printf("%-14s %-10.2f %-10.2f %-10.4f\n", "hybrid",
              hybrid.coverage_percent, hybrid.served_percent,
              hybrid.mean_fidelity);

  std::printf(
      "\nthe hybrid keeps the HAP's full coverage while satellites add\n"
      "alternative high-elevation paths that lift fidelity when available.\n");
  return 0;
}
