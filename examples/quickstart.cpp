// Quickstart: the smallest end-to-end use of the QNTN library.
//
// Builds a two-node link (fiber and FSO), distributes one half of a Bell
// pair through it, and reports the channel budget and the entanglement
// fidelity — the paper's Eq. (1)-(5) pipeline in ~60 lines.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "channel/fiber.hpp"
#include "channel/fso.hpp"
#include "channel/link_budget.hpp"
#include "common/units.hpp"
#include "quantum/channels.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/state.hpp"

int main() {
  using namespace qntn;

  // --- 1. A 5 km metropolitan fiber link (paper Eq. 1). ---
  const channel::FiberChannel fiber{5'000.0, /*attenuation_db_per_km=*/0.15};
  const double eta_fiber = fiber.transmissivity();
  std::printf("fiber  5 km @ 0.15 dB/km     -> eta = %.4f\n", eta_fiber);

  // --- 2. A ground-to-HAP FSO link (paper Eq. 2). ---
  const channel::Endpoint ground = channel::Endpoint::from_geodetic(
      geo::Geodetic::from_degrees(36.1757, -85.5066, 0.0));
  const channel::Endpoint hap = channel::Endpoint::from_geodetic(
      geo::Geodetic::from_degrees(35.6692, -85.0662, 30'000.0));
  const channel::FsoConfig fso;  // calibrated defaults
  const channel::OpticalTerminal ground_terminal{1.20, 1e-7};
  const channel::OpticalTerminal hap_terminal{0.30, 1e-7};
  const channel::FsoGeometry geometry = channel::make_fso_geometry(ground, hap);
  const channel::FsoBudget budget =
      channel::evaluate_fso(fso, ground_terminal, hap_terminal, geometry);
  std::printf(
      "FSO  %.1f km @ %.1f deg elev -> eta = %.4f  "
      "(diff %.3f x turb %.3f x atm %.3f x eff %.3f)\n",
      m_to_km(geometry.range), rad_to_deg(geometry.elevation), budget.total,
      budget.eta_diffraction, budget.eta_turbulence, budget.eta_atmosphere,
      budget.eta_efficiency);

  // --- 3. Distribute entanglement across fiber + FSO (Eq. 3-5). ---
  // One half of a PhiPlus pair traverses both channels; amplitude damping
  // composes multiplicatively, so the path transmissivity is the product.
  quantum::Matrix rho =
      quantum::pure_density(quantum::bell_state(quantum::BellState::PhiPlus));
  rho = quantum::amplitude_damping(eta_fiber).apply_to_qubit(rho, 1);
  rho = quantum::amplitude_damping(budget.total).apply_to_qubit(rho, 1);

  const double fidelity = quantum::fidelity_to_pure(
      rho, quantum::bell_state(quantum::BellState::PhiPlus),
      quantum::FidelityConvention::Uhlmann);
  std::printf("end-to-end eta = %.4f -> entanglement fidelity F = %.4f\n",
              eta_fiber * budget.total, fidelity);
  std::printf("entanglement survives: concurrence = %.4f, negativity = %.4f\n",
              quantum::concurrence(rho), quantum::negativity(rho));
  return 0;
}
