// Movement-sheet workflow (paper Section III-C): generate a constellation
// ephemeris, export it as STK-style movement sheets, then rebuild a
// simulation-ready satellite from the sheet alone — the interchange path
// for externally produced trajectories.

#include <cstdio>

#include "common/units.hpp"
#include "core/qntn_config.hpp"
#include "orbit/constellation.hpp"
#include "orbit/movement_sheet.hpp"

int main() {
  using namespace qntn;

  const core::QntnConfig config;
  const auto elements = orbit::qntn_constellation(6);
  const orbit::TwoBodyPropagator propagator(elements.front());
  const orbit::Ephemeris ephemeris = orbit::Ephemeris::generate(
      propagator, config.day_duration, config.ephemeris_step);

  const std::string path = "sat0_movement_sheet.csv";
  orbit::save_movement_sheet(path, ephemeris);
  std::printf("exported %zu samples (30 s cadence, one day) to %s\n",
              ephemeris.sample_count(), path.c_str());

  const orbit::Ephemeris loaded = orbit::load_movement_sheet(path);
  std::printf("re-imported: %zu samples, step %.0f s\n", loaded.sample_count(),
              loaded.step());

  double worst = 0.0;
  for (double t = 0.0; t <= config.day_duration; t += 600.0) {
    worst = std::max(worst, distance(loaded.position_ecef(t),
                                     ephemeris.position_ecef(t)));
  }
  std::printf("worst round-trip position error over the day: %.2f m\n", worst);

  const geo::Geodetic track = loaded.ground_point(1800.0);
  std::printf("sub-satellite point after 30 min: (%.2f, %.2f)\n",
              rad_to_deg(track.latitude), rad_to_deg(track.longitude));
  std::printf(
      "a sheet like this (from STK, a TLE propagator, or a flight log) can "
      "be attached to\nany satellite via NetworkModel::add_satellite.\n");
  return 0;
}
