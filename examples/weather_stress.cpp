// Weather stress test — the paper's stated future work (Section V):
// "study the impact of environmental factors on HAP stability and signal
// transmission". Replays the air-ground scenario under the bundled
// weather profiles (clear / haze / strong turbulence / light rain) to show
// when the architecture's 100%-service guarantee breaks.

#include <cstdio>

#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace qntn;

  std::printf("%-18s %-9s %-9s %-9s %-9s\n", "weather", "cover%", "served%",
              "fidelity", "min-eta");
  for (const channel::WeatherProfile& weather :
       {channel::clear_sky(), channel::haze(), channel::strong_turbulence(),
        channel::light_rain()}) {
    core::QntnConfig config;
    config.weather = weather;
    const sim::NetworkModel model = core::build_air_ground_model(config);
    const sim::TopologyBuilder topology(model, config.link_policy());
    sim::ScenarioConfig sc = config.scenario_config();
    sc.coverage.duration = 7'200.0;  // static topology: short window suffices
    sc.request_steps = 4;
    const sim::ScenarioResult result = sim::run_scenario(model, topology, sc);
    std::printf("%-18s %-9.2f %-9.2f %-9.4f %-9.4f\n",
                std::string(weather.name).c_str(), result.coverage.percent,
                100.0 * result.served_fraction,
                result.fidelity.count() > 0 ? result.fidelity.mean() : 0.0,
                result.transmissivity.count() > 0
                    ? result.transmissivity.min()
                    : 0.0);
  }
  std::printf(
      "\nideal conditions are load-bearing for the air-ground result: haze\n"
      "already costs fidelity, and rain severs the HAP links entirely.\n");
  return 0;
}
