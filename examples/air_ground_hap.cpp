// Air-ground architecture (paper Section IV-C): one HAP hovering at 30 km
// interconnects the three LANs permanently. Prints the per-LAN link budgets
// to the HAP and the request-serving statistics.

#include <cstdio>

#include "common/units.hpp"
#include "core/ground_networks.hpp"
#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace qntn;

  const core::QntnConfig config;
  std::printf("QNTN air-ground architecture: HAP at (%.4f, %.4f), %.0f km\n",
              rad_to_deg(config.hap_position.latitude),
              rad_to_deg(config.hap_position.longitude),
              m_to_km(config.hap_position.altitude));

  // Per-LAN geometry and link budget to the HAP.
  const channel::Endpoint hap =
      channel::Endpoint::from_geodetic(config.hap_position);
  const channel::FsoConfig fso = config.link_policy().fso;
  std::printf("\n%-6s %-10s %-10s %-8s\n", "LAN", "range", "elev", "eta");
  for (const core::LanDefinition& lan : core::qntn_lans()) {
    const channel::Endpoint site =
        channel::Endpoint::from_geodetic(lan.nodes.front());
    const channel::FsoGeometry geometry = channel::make_fso_geometry(site, hap);
    const double eta = channel::symmetric_transmissivity(
        fso, config.ground_terminal(), config.hap_terminal(), geometry);
    std::printf("%-6s %7.1f km %7.1f deg %.4f %s\n", lan.name.c_str(),
                m_to_km(geometry.range), rad_to_deg(geometry.elevation), eta,
                eta >= config.transmissivity_threshold ? "(linked)"
                                                       : "(below threshold)");
  }

  const sim::NetworkModel model = core::build_air_ground_model(config);
  const sim::TopologyBuilder topology(model, config.link_policy());
  const sim::ScenarioResult result =
      sim::run_scenario(model, topology, config.scenario_config());

  std::printf("\ncoverage   = %.2f%%   (paper: 100%%)\n",
              result.coverage.percent);
  std::printf("served     = %.2f%%   (paper: 100%%)\n",
              100.0 * result.served_fraction);
  std::printf("fidelity   = %.4f mean, %.4f min, %.4f max (paper: 0.98)\n",
              result.fidelity.mean(), result.fidelity.min(),
              result.fidelity.max());
  std::printf("every request relays ground -> HAP -> ground: %.1f hops mean\n",
              result.hops.mean());
  return 0;
}
