// Extension E11: relay handover and session continuity. Coverage
// percentages hide how fragmented the service is — a satellite bridge
// lives only for one pass, while the HAP never hands over. Long
// entanglement sessions (distillation runs, key blocks) care about
// session length, not just availability.

#include <cstdio>

#include "common/units.hpp"
#include "repro_common.hpp"
#include "sim/handover.hpp"

int main() {
  using namespace qntn;

  const core::QntnConfig config;
  Table table("Extension — TTU<->ORNL relay sessions over one day");
  table.set_header({"architecture", "bridged [%]", "handovers/day",
                    "sessions", "mean session [min]", "longest [min]"});

  const auto row = [&table](const char* name, const sim::HandoverStats& stats) {
    table.add_row({name, Table::num(100.0 * stats.bridged_fraction(), 2),
                   std::to_string(stats.handovers),
                   std::to_string(stats.session_length.count()),
                   stats.session_length.count() > 0
                       ? Table::num(s_to_minutes(stats.session_length.mean()), 2)
                       : "-",
                   stats.session_length.count() > 0
                       ? Table::num(s_to_minutes(stats.session_length.max()), 2)
                       : "-"});
  };

  {
    const sim::NetworkModel model = core::build_air_ground_model(config);
    const sim::TopologyBuilder topology(model, config.link_policy());
    row("air-ground",
        sim::analyze_handovers(model, topology, 0, 2, 86'400.0, 60.0));
  }
  for (const std::size_t n : {36u, 108u}) {
    const sim::NetworkModel model = core::build_space_ground_model(config, n);
    const sim::TopologyBuilder topology(model, config.link_policy());
    const std::string name = "space-ground @" + std::to_string(n);
    row(name.c_str(),
        sim::analyze_handovers(model, topology, 0, 2, 86'400.0, 60.0));
  }
  {
    const sim::NetworkModel model = core::build_hybrid_model(config, 108);
    const sim::TopologyBuilder topology(model, config.link_policy());
    row("hybrid @108",
        sim::analyze_handovers(model, topology, 0, 2, 86'400.0, 60.0));
  }
  bench::emit(table, "ext_handover.csv");

  std::printf(
      "\nthe constellation's service is sliced into ~3-minute pass "
      "sessions; the HAP delivers one\nuninterrupted day-long session. The "
      "greedy max-min relay choice makes the hybrid churn\neven harder "
      "(every strong satellite pass briefly beats the HAP's ~0.93 links), "
      "so a\nproduction hybrid needs a sticky handover policy — continuity "
      "is a real design axis\nthat the paper's coverage metric cannot "
      "see.\n");
  return 0;
}
