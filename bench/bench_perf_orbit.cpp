// Performance of the orbit stack: Kepler solves, state evaluation, and
// full-day ephemeris generation (the STK-replacement pipeline).

#include <benchmark/benchmark.h>

#include "orbit/constellation.hpp"
#include "orbit/ephemeris.hpp"

namespace {

using namespace qntn::orbit;

void BM_SolveKepler(benchmark::State& state) {
  const double e = static_cast<double>(state.range(0)) / 100.0;
  double m = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_kepler(m, e));
    m += 0.37;
  }
}
BENCHMARK(BM_SolveKepler)->Arg(0)->Arg(10)->Arg(50)->Arg(90);

void BM_ElementsToState(benchmark::State& state) {
  KeplerianElements el = qntn_constellation(6).front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(elements_to_state(el));
    el.true_anomaly += 0.01;
  }
}
BENCHMARK(BM_ElementsToState);

void BM_PropagatorStateAt(benchmark::State& state) {
  const TwoBodyPropagator prop(qntn_constellation(6).front());
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prop.state_at(t));
    t += 30.0;
  }
}
BENCHMARK(BM_PropagatorStateAt);

void BM_EphemerisGenerateFullDay(benchmark::State& state) {
  const TwoBodyPropagator prop(qntn_constellation(6).front());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ephemeris::generate(prop, 86'400.0, 30.0));
  }
  state.SetItemsProcessed(state.iterations() * 2881);
}
BENCHMARK(BM_EphemerisGenerateFullDay);

void BM_EphemerisLookup(benchmark::State& state) {
  const TwoBodyPropagator prop(qntn_constellation(6).front());
  const Ephemeris eph = Ephemeris::generate(prop, 86'400.0, 30.0);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eph.position_ecef(t));
    t = t < 86'000.0 ? t + 17.3 : 0.0;
  }
}
BENCHMARK(BM_EphemerisLookup);

void BM_ConstellationBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(qntn_constellation(n));
  }
}
BENCHMARK(BM_ConstellationBuild)->Arg(6)->Arg(36)->Arg(108);

}  // namespace
