// Performance of the orbit stack: Kepler solves, state evaluation, and
// full-day ephemeris generation (the STK-replacement pipeline).

#include <cstdio>

#include "orbit/constellation.hpp"
#include "orbit/ephemeris.hpp"
#include "perf_harness.hpp"

int main(int argc, char** argv) {
  using namespace qntn;
  using namespace qntn::orbit;
  try {
    bench::PerfHarness harness("orbit", argc, argv);
    const std::uint64_t iters = harness.smoke() ? 20'000 : 200'000;

    for (const int ecc_percent : {0, 10, 50, 90}) {
      const double e = static_cast<double>(ecc_percent) / 100.0;
      harness.run_case("solve_kepler_e" + std::to_string(ecc_percent), iters,
                       [&] {
                         double m = 0.0;
                         for (std::uint64_t i = 0; i < iters; ++i) {
                           bench::do_not_optimize(solve_kepler(m, e));
                           m += 0.37;
                         }
                       });
    }

    harness.run_case("elements_to_state", iters, [&] {
      KeplerianElements el = qntn_constellation(6).front();
      for (std::uint64_t i = 0; i < iters; ++i) {
        bench::do_not_optimize(elements_to_state(el));
        el.true_anomaly += 0.01;
      }
    });

    {
      const TwoBodyPropagator prop(qntn_constellation(6).front());
      harness.run_case("propagator_state_at", iters, [&] {
        double t = 0.0;
        for (std::uint64_t i = 0; i < iters; ++i) {
          bench::do_not_optimize(prop.state_at(t));
          t += 30.0;
        }
      });
    }

    {
      const TwoBodyPropagator prop(qntn_constellation(6).front());
      const std::uint64_t reps = harness.smoke() ? 2 : 10;
      harness.run_case("ephemeris_generate_full_day", reps * 2881, [&] {
        for (std::uint64_t i = 0; i < reps; ++i) {
          bench::do_not_optimize(Ephemeris::generate(prop, 86'400.0, 30.0));
        }
      });

      const Ephemeris eph = Ephemeris::generate(prop, 86'400.0, 30.0);
      harness.run_case("ephemeris_lookup", iters, [&] {
        double t = 0.0;
        for (std::uint64_t i = 0; i < iters; ++i) {
          bench::do_not_optimize(eph.position_ecef(t));
          t = t < 86'000.0 ? t + 17.3 : 0.0;
        }
      });
    }

    for (const std::size_t n : {std::size_t{6}, std::size_t{36},
                                std::size_t{108}}) {
      const std::uint64_t builds = (harness.smoke() ? 200 : 2'000) /
                                   (n / 6);
      harness.run_case("constellation_build_n" + std::to_string(n), builds,
                       [&] {
                         for (std::uint64_t i = 0; i < builds; ++i) {
                           bench::do_not_optimize(qntn_constellation(n));
                         }
                       });
    }

    return harness.finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
