// Table I reproduction: the coordinates of all 31 QNTN ground nodes, plus
// derived geometry (intra-LAN spans, inter-city distances) that the paper's
// architecture discussion relies on.

#include <cstdio>

#include "common/units.hpp"
#include "core/ground_networks.hpp"
#include "repro_common.hpp"

int main() {
  using namespace qntn;

  Table table("Table I — coordinates of ground nodes");
  table.set_header({"LAN", "node", "latitude [deg]", "longitude [deg]"});
  for (const core::LanDefinition& lan : core::qntn_lans()) {
    for (std::size_t i = 0; i < lan.nodes.size(); ++i) {
      table.add_row({lan.name, std::to_string(i),
                     Table::num(rad_to_deg(lan.nodes[i].latitude), 5),
                     Table::num(rad_to_deg(lan.nodes[i].longitude), 5)});
    }
  }
  bench::emit(table, "table1_ground_networks.csv");

  std::printf("\nderived geometry:\n");
  const auto lans = core::qntn_lans();
  for (std::size_t i = 0; i < lans.size(); ++i) {
    double max_span = 0.0;
    for (const geo::Geodetic& node : lans[i].nodes) {
      max_span = std::max(
          max_span, geo::great_circle_distance(lans[i].nodes.front(), node));
    }
    std::printf("  %-5s %2zu nodes, max intra-LAN span %6.2f km\n",
                lans[i].name.c_str(), lans[i].nodes.size(),
                m_to_km(max_span));
  }
  for (std::size_t i = 0; i < lans.size(); ++i) {
    for (std::size_t j = i + 1; j < lans.size(); ++j) {
      std::printf("  %-5s <-> %-5s %7.1f km\n", lans[i].name.c_str(),
                  lans[j].name.c_str(),
                  m_to_km(geo::great_circle_distance(lans[i].nodes.front(),
                                                     lans[j].nodes.front())));
    }
  }
  return 0;
}
