// Extension: night-only operation. Solar background limits free-space
// quantum links to darkness (Micius operated at night); the paper's
// full-day availability numbers assume daylight operation works. This
// bench re-runs Table III's headline metrics with FSO links gated to local
// night, across the seasons.

#include <cstdio>

#include "common/units.hpp"
#include "repro_common.hpp"
#include "sim/daylight.hpp"

namespace {

using namespace qntn;

struct Season {
  const char* name;
  double declination_deg;
};

double gated_coverage(const sim::NetworkModel& model,
                      const sim::TopologyBuilder& base,
                      const core::QntnConfig& config, double declination_deg) {
  sim::DaylightPolicy policy;
  policy.sun.declination = deg_to_rad(declination_deg);
  policy.sun.subsolar_longitude0 = deg_to_rad(-85.0);  // local noon at t = 0
  const sim::DaylightGatedTopology gated(base, model, policy);
  sim::CoverageOptions options;
  options.duration = config.day_duration;
  options.step = 120.0;
  return sim::analyze_coverage(model, gated, options).percent;
}

}  // namespace

int main() {
  const core::QntnConfig config;
  const Season seasons[] = {
      {"summer solstice", 23.44}, {"equinox", 0.0}, {"winter solstice", -23.44}};

  const sim::NetworkModel air = core::build_air_ground_model(config);
  const sim::TopologyBuilder air_base(air, config.link_policy());
  const sim::NetworkModel space = core::build_space_ground_model(config, 108);
  const sim::TopologyBuilder space_base(space, config.link_policy());

  Table table("Extension — night-only FSO operation (coverage %)");
  table.set_header({"season", "air-ground", "space-ground @108",
                    "ideal air", "ideal space"});
  sim::CoverageOptions options;
  options.duration = config.day_duration;
  options.step = 120.0;
  const double ideal_air =
      sim::analyze_coverage(air, air_base, options).percent;
  const double ideal_space =
      sim::analyze_coverage(space, space_base, options).percent;
  for (const Season& season : seasons) {
    table.add_row({season.name,
                   Table::num(gated_coverage(air, air_base, config,
                                             season.declination_deg), 2),
                   Table::num(gated_coverage(space, space_base, config,
                                             season.declination_deg), 2),
                   Table::num(ideal_air, 2), Table::num(ideal_space, 2)});
  }
  bench::emit(table, "ext_daylight.csv");

  std::printf(
      "\nnight gating costs both architectures a bit more than half their "
      "availability at\nTennessee's latitude; crucially the air-ground "
      "architecture loses its headline 100%%\nand lands *below* the ideal "
      "space-ground constellation — the paper's comparison\ninverts unless "
      "daytime-capable filtering is assumed for both.\n");
  return 0;
}
