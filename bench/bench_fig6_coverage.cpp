// Fig. 6 reproduction: coverage percentage of the space-ground network as a
// function of the number of satellites (6..108 in steps of 6), full day at
// 30-second resolution, Eq. (6)/(7).
//
// Paper anchor: 108 satellites cover 55.17% of the day.

#include <cstdio>

#include "repro_common.hpp"

int main() {
  using namespace qntn;

  const auto sweep = bench::run_paper_sweep();

  Table table("Fig. 6 — coverage %% vs number of satellites");
  table.set_header({"satellites", "coverage [%]"});
  for (const core::ArchitectureMetrics& point : sweep) {
    table.add_row({std::to_string(point.satellites),
                   Table::num(point.coverage_percent, 2)});
  }
  bench::emit(table, "fig6_coverage.csv");

  const core::ArchitectureMetrics& full = sweep.back();
  std::printf("\npaper @108: %.2f%%   measured @108: %.2f%%   (delta %.2f)\n",
              bench::kPaperCoverage108, full.coverage_percent,
              full.coverage_percent - bench::kPaperCoverage108);
  // Shape check: coverage must grow monotonically with constellation size.
  bool monotone = true;
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    if (sweep[i].coverage_percent + 1e-9 < sweep[i - 1].coverage_percent) {
      monotone = false;
    }
  }
  std::printf("monotone growth with constellation size: %s\n",
              monotone ? "yes" : "NO");
  return 0;
}
