// Extension: entanglement-management serving (DESIGN.md §11). Sweeps the
// two hardware knobs the subsystem exposes — memory slots per node and the
// coherence time of the buffered pairs — on the paper's headline
// space-ground @108 protocol (100 requests x 100 snapshots over a day) and
// reports served fraction and delivered fidelity: the hardware price the
// paper's instantaneous single-shot model (58.65 % served on this
// reproduction) does not pay. Feeds the EXPERIMENTS.md sweep table.

#include <cstdio>
#include <string>

#include "common/thread_pool.hpp"
#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "repro_common.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace qntn;

sim::ScenarioResult run_em_scenario(std::size_t slots, double t2,
                                    ThreadPool& pool) {
  core::QntnConfig config;
  config.serving_mode = core::ServingMode::Entanglement;
  config.em_memory_slots = slots;
  config.em_memory_t1 = t2;  // T2-limited memory: T2 = T1 (<= 2 T1)
  config.em_memory_t2 = t2;
  config.em_fidelity_slo = 0.9;
  const sim::NetworkModel model = core::build_space_ground_model(config, 108);
  const core::Topology topology = core::make_topology(config, model);
  sim::ScenarioConfig sc = config.scenario_config();
  sc.pool = &pool;
  return sim::run_scenario(model, topology.provider(), sc);
}

}  // namespace

int main() {
  ThreadPool pool;
  Table table(
      "Extension — em serving vs memory size and coherence time "
      "(space-ground @108, 100 requests x 100 snapshots, SLO 0.9)");
  table.set_header({"slots/node", "T2 [s]", "served %", "congested %",
                    "mean fidelity", "SLO met %", "occupancy"});

  for (const std::size_t slots : {std::size_t{8}, std::size_t{16},
                                  std::size_t{32}, std::size_t{64}}) {
    for (const double t2 : {0.1, 0.5, 5.0}) {
      const sim::ScenarioResult r = run_em_scenario(slots, t2, pool);
      const auto issued = static_cast<double>(r.requests_issued);
      const double served_pct = 100.0 * r.served_fraction;
      const double congested_pct =
          issued > 0.0
              ? 100.0 * static_cast<double>(r.requests_congested) / issued
              : 0.0;
      const double slo_pct =
          r.requests_served > 0
              ? 100.0 * static_cast<double>(r.em.slo_met) /
                    static_cast<double>(r.requests_served)
              : 0.0;
      table.add_row({std::to_string(slots), Table::num(t2, 1),
                     Table::num(served_pct, 2), Table::num(congested_pct, 2),
                     r.fidelity.count() > 0 ? Table::num(r.fidelity.mean(), 4)
                                            : "-",
                     Table::num(slo_pct, 1),
                     Table::num(r.em.memory_occupancy.mean(), 3)});
    }
  }
  bench::emit(table, "ext_em.csv");

  std::printf(
      "\nthe pool fair-shares each node's slots across its incident links, "
      "so below\n~1 slot per link the satellite uplinks hold no buffered "
      "pairs and nearly\neverything congests; more slots lift the served "
      "fraction until relay BSM\ncapacity binds. Longer T2 keeps the older "
      "buffer rungs usable: purification\nrescues the SLO at short "
      "coherence, at the price of extra pairs per hop.\n");
  return 0;
}
