// Extension: entanglement purification on QNTN link states. The
// architectures deliver F ~ 0.94 (space) / 0.97 (air); nested purification
// trades extra raw pairs for application-grade fidelity. Also demonstrates
// the pairing effect documented in purification.hpp: published DEJMPS
// rotations are ~neutral on amplitude-damped pairs, while the plain
// bilateral-CNOT pairing purifies them.

#include <cstdio>

#include "quantum/channels.hpp"
#include "quantum/purification.hpp"
#include "repro_common.hpp"

int main() {
  using namespace qntn;
  using namespace qntn::quantum;

  // Representative end-to-end transmissivities from the Table III runs:
  // space-ground mean path eta ~ 0.79, air-ground ~ 0.87, threshold-floor
  // relay 0.49.
  struct Case {
    const char* name;
    double eta;
  };
  const Case cases[] = {
      {"threshold-floor relay (eta 0.49)", 0.49},
      {"space-ground mean path (eta 0.79)", 0.79},
      {"air-ground mean path (eta 0.87)", 0.87},
  };

  Table table("Extension — purification ladders (Optimal pairing)");
  table.set_header({"link", "round", "fidelity", "success p",
                    "raw pairs per output"});
  for (const Case& c : cases) {
    const Matrix rho = transmit_bell_half(c.eta);
    const auto steps =
        purification_ladder(rho, 6, PurificationProtocol::Optimal);
    for (const LadderStep& step : steps) {
      table.add_row({c.name, std::to_string(step.round),
                     Table::num(step.fidelity, 4),
                     Table::num(step.success_probability, 4),
                     Table::num(step.expected_cost, 1)});
    }
  }
  bench::emit(table, "ext_purification.csv");

  // Pairing comparison at the space-ground operating point.
  const Matrix rho = transmit_bell_half(0.79);
  const PurificationRound plain = bbpssw_round(rho);
  const PurificationRound rotated = dejmps_round(rho);
  std::printf(
      "\npairing effect at eta = 0.79: plain circuit F = %.4f vs published "
      "DEJMPS rotations F = %.4f\n(amplitude damping concentrates error in "
      "Psi+/Psi-, so the plain (Phi+,Phi-) pairing wins).\n",
      plain.fidelity, rotated.fidelity);
  std::printf(
      "two optimal rounds lift a threshold-floor pair from F = 0.85 to "
      ">= 0.99 at ~4-5 raw pairs per output —\nthe cost of running QNTN at "
      "application-grade fidelity.\n");
  return 0;
}
