// Performance of the entanglement-management serving path on QNTN-shaped
// graphs: pool rebuild, k-disjoint candidate search, and full batch serving
// with a warm vs cold per-epoch route cache. Gated against
// bench/baselines/BENCH_em_serving.json by `qntn_report bench-compare`.

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "em/serving.hpp"
#include "net/kpaths.hpp"
#include "perf_harness.hpp"
#include "quantum/fidelity.hpp"

namespace {

using namespace qntn;
using net::Graph;
using net::NodeId;

/// QNTN-like topology: three fiber cliques (31 ground nodes) plus
/// satellites linked to random ground nodes.
Graph qntn_like_graph(std::size_t satellites, std::uint64_t seed) {
  Rng rng(seed);
  Graph g;
  const std::size_t lan_sizes[] = {5, 15, 11};
  std::size_t base = 0;
  for (const std::size_t size : lan_sizes) {
    for (std::size_t i = 0; i < size; ++i) g.add_node();
    for (std::size_t i = 0; i < size; ++i) {
      for (std::size_t j = i + 1; j < size; ++j) {
        g.add_edge(base + i, base + j, 0.999);
      }
    }
    base += size;
  }
  for (std::size_t s = 0; s < satellites; ++s) {
    const NodeId sat = g.add_node();
    const auto links = static_cast<std::size_t>(rng.uniform_int(2, 8));
    for (std::size_t l = 0; l < links; ++l) {
      const auto ground = static_cast<NodeId>(rng.uniform_int(0, 30));
      g.add_edge(sat, ground, rng.uniform(0.7, 0.98));
    }
  }
  return g;
}

std::vector<em::EmRequest> inter_lan_requests(std::size_t count,
                                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<em::EmRequest> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Across the first two cliques, the congested inter-LAN pattern.
    const auto src = static_cast<NodeId>(rng.uniform_int(0, 4));
    const auto dst = static_cast<NodeId>(rng.uniform_int(5, 19));
    requests.push_back({src, dst});
  }
  return requests;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bench::PerfHarness harness("em_serving", argc, argv);
    const auto convention = quantum::FidelityConvention::Uhlmann;

    em::EmOptions options;
    options.enabled = true;
    options.purify.fidelity_slo = 0.9;

    for (const std::size_t sats : {std::size_t{12}, std::size_t{108}}) {
      const Graph g = qntn_like_graph(sats, 1);
      const auto requests = inter_lan_requests(100, 2);
      const std::uint64_t iters = harness.smoke() ? 5 : 50;

      // Warm cache: one epoch, candidate routes computed once per pair.
      harness.run_case("serve_warm_cache_n" + std::to_string(sats), iters,
                       [&] {
                         em::EntanglementManager manager(options);
                         for (std::uint64_t i = 0; i < iters; ++i) {
                           bench::do_not_optimize(manager.serve(
                               g, requests, 0, convention, false));
                         }
                       });

      // Cold cache: a new epoch every serve, full k-disjoint search per
      // distinct pair each time (the epoch-churn worst case).
      harness.run_case("serve_cold_cache_n" + std::to_string(sats), iters,
                       [&] {
                         em::EntanglementManager manager(options);
                         for (std::uint64_t i = 0; i < iters; ++i) {
                           bench::do_not_optimize(manager.serve(
                               g, requests, i, convention, false));
                         }
                       });
    }

    {
      const Graph g = qntn_like_graph(108, 1);
      const std::uint64_t iters = harness.smoke() ? 50 : 500;
      harness.run_case("pool_rebuild_n108", iters, [&] {
        em::MemoryPool pool(options.pool);
        for (std::uint64_t i = 0; i < iters; ++i) {
          pool.rebuild(g);
          bench::do_not_optimize(pool.occupancy());
        }
      });
      harness.run_case("k_disjoint_paths_n108", iters, [&] {
        for (std::uint64_t i = 0; i < iters; ++i) {
          bench::do_not_optimize(
              net::k_disjoint_paths(g, 0, 20, 3, net::CostMetric::HopCount));
        }
      });
    }

    return harness.finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
