// Ablation A1: does the J2 secular perturbation (which the paper's STK
// propagation includes but our two-body default omits) change the daily
// coverage picture? J2 drifts the RAAN of the 53-degree planes by about
// -5 deg/day — comparable to moving each plane a quarter-slot — so the
// expectation is pass-timing shifts with little change to daily totals.

#include <cstdio>

#include "repro_common.hpp"

int main() {
  using namespace qntn;

  Table table("Ablation A1 — two-body vs J2 secular propagation");
  table.set_header({"satellites", "coverage% (2-body)", "coverage% (J2)",
                    "served% (2-body)", "served% (J2)", "fidelity (2-body)",
                    "fidelity (J2)"});
  for (const std::size_t n : {36u, 72u, 108u}) {
    core::QntnConfig two_body;
    core::QntnConfig with_j2;
    with_j2.include_j2 = true;
    const core::ArchitectureMetrics a = core::evaluate_space_ground(two_body, n);
    const core::ArchitectureMetrics b = core::evaluate_space_ground(with_j2, n);
    table.add_row({std::to_string(n), Table::num(a.coverage_percent, 2),
                   Table::num(b.coverage_percent, 2),
                   Table::num(a.served_percent, 2),
                   Table::num(b.served_percent, 2),
                   Table::num(a.mean_fidelity, 4),
                   Table::num(b.mean_fidelity, 4)});
  }
  bench::emit(table, "ablation_j2.csv");
  std::printf("\nconclusion: J2 shifts individual pass timing but daily "
              "coverage totals move by\nat most a few points — the two-body "
              "substitution for STK is sound (DESIGN.md §1).\n");
  return 0;
}
