// Extension: validating the product-transmissivity shortcut. The simulator
// (like the paper) treats a routed k-hop path as one amplitude-damping
// channel with the product transmissivity; the physical mechanism is k-1
// entanglement swaps at the relays. This bench compares the two across hop
// counts and link qualities.

#include <cstdio>

#include "quantum/fidelity.hpp"
#include "quantum/swapping.hpp"
#include "repro_common.hpp"

int main() {
  using namespace qntn;
  using namespace qntn::quantum;

  Table table("Extension — physical swap chain vs product shortcut");
  table.set_header({"hops", "per-hop eta", "shortcut F", "swapped F",
                    "difference"});
  for (const double eta : {0.95, 0.9, 0.8, 0.7}) {
    for (const std::size_t hops : {1u, 2u, 3u, 4u}) {
      const std::vector<double> chain(hops, eta);
      const SwapResult swapped = swap_damped_chain(chain);
      double product = 1.0;
      for (const double e : chain) product *= e;
      const double shortcut =
          bell_fidelity_after_damping(product, FidelityConvention::Uhlmann);
      table.add_row({std::to_string(hops), Table::num(eta, 2),
                     Table::num(shortcut, 4), Table::num(swapped.fidelity, 4),
                     Table::num(swapped.fidelity - shortcut, 4)});
    }
  }
  bench::emit(table, "ext_swapping.csv");

  std::printf(
      "\nthe shortcut is *fidelity-exact*: swapping amplitude-damped pairs "
      "yields a different\ndensity matrix (loss spreads over |01> and |10>) "
      "but its PhiPlus fidelity equals the\nproduct-transmissivity formula "
      "to machine precision at every hop count — so the\npaper's modelling "
      "choice introduces no fidelity error at all.\n");
  return 0;
}
