// Extension A4 (the paper's future work, Section V): hybrid space+air
// architecture — HAP plus constellation, with HAP-satellite FSO links
// enabled. Compares all three architectures across constellation sizes.

#include <cstdio>

#include "repro_common.hpp"

int main() {
  using namespace qntn;

  core::QntnConfig config;
  config.enable_hap_satellite = true;
  const core::ArchitectureMetrics air = core::evaluate_air_ground(config);

  Table table("Extension A4 — hybrid space+air architecture");
  table.set_header({"satellites", "space cover [%]", "hybrid cover [%]",
                    "space served [%]", "hybrid served [%]",
                    "space fidelity", "hybrid fidelity"});
  for (const std::size_t n : {12u, 36u, 72u, 108u}) {
    const core::ArchitectureMetrics space = core::evaluate_space_ground(config, n);
    const core::ArchitectureMetrics hybrid = core::evaluate_hybrid(config, n);
    table.add_row({std::to_string(n), Table::num(space.coverage_percent, 2),
                   Table::num(hybrid.coverage_percent, 2),
                   Table::num(space.served_percent, 2),
                   Table::num(hybrid.served_percent, 2),
                   Table::num(space.mean_fidelity, 4),
                   Table::num(hybrid.mean_fidelity, 4)});
  }
  bench::emit(table, "hybrid_architecture.csv");

  std::printf("\nair-ground alone: served %.2f%%, fidelity %.4f\n",
              air.served_percent, air.mean_fidelity);
  std::printf(
      "the hybrid pins coverage and service at 100%% (the HAP floor) while "
      "satellite\npasses add alternative routes; with the paper's "
      "single-relay topology the\nfidelity gain over air-ground alone is "
      "marginal — the real win is redundancy\nagainst the HAP's weather and "
      "endurance limits that the paper flags.\n");
  return 0;
}
