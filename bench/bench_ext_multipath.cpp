// Extension: multipath redundancy. The paper routes every request on one
// Bellman-Ford path; this bench uses Yen's k-shortest paths to measure how
// many alternative routes each architecture offers and how disjoint they
// are — the redundancy that protects against satellite handover and HAP
// downtime.

#include <cstdio>

#include "net/kpaths.hpp"
#include "repro_common.hpp"
#include "sim/requests.hpp"

namespace {

using namespace qntn;

struct MultipathStats {
  RunningStats route_count;
  RunningStats diversity;
  RunningStats second_best_eta;
};

MultipathStats analyze(const sim::NetworkModel& model,
                       const sim::TopologyBuilder& topology,
                       const core::QntnConfig& config, double t) {
  Rng rng(config.request_seed);
  const auto requests = sim::generate_requests(model, 30, rng);
  MultipathStats stats;
  const net::Graph graph = topology.graph_at(t);
  for (const sim::Request& req : requests) {
    const auto routes =
        net::k_shortest_paths(graph, req.source, req.destination, 3);
    stats.route_count.add(static_cast<double>(routes.size()));
    if (routes.size() >= 2) {
      stats.diversity.add(net::path_diversity(routes));
      stats.second_best_eta.add(routes[1].transmissivity);
    }
  }
  return stats;
}

}  // namespace

int main() {
  core::QntnConfig config;
  config.enable_hap_satellite = true;

  Table table("Extension — multipath redundancy (k = 3, 30 requests)");
  table.set_header({"architecture", "mean routes", "mean diversity",
                    "mean 2nd-route eta"});

  const auto row = [&table](const char* name, const MultipathStats& stats) {
    table.add_row({name, Table::num(stats.route_count.mean(), 2),
                   stats.diversity.count() > 0
                       ? Table::num(stats.diversity.mean(), 3)
                       : "-",
                   stats.second_best_eta.count() > 0
                       ? Table::num(stats.second_best_eta.mean(), 4)
                       : "-"});
  };

  {
    const sim::NetworkModel model = core::build_air_ground_model(config);
    const sim::TopologyBuilder topology(model, config.link_policy());
    row("air-ground", analyze(model, topology, config, 0.0));
  }
  {
    const sim::NetworkModel model = core::build_space_ground_model(config, 108);
    const sim::TopologyBuilder topology(model, config.link_policy());
    // Pick a covered instant (early passes exist at t = 90 s in this run).
    row("space-ground @108", analyze(model, topology, config, 90.0));
  }
  {
    const sim::NetworkModel model = core::build_hybrid_model(config, 108);
    const sim::TopologyBuilder topology(model, config.link_policy());
    row("hybrid @108", analyze(model, topology, config, 90.0));
  }
  bench::emit(table, "ext_multipath.csv");

  std::printf(
      "\nthe air-ground network has exactly one relay, so its alternatives "
      "reuse the HAP\n(diversity ~0 beyond intra-LAN detours); the hybrid "
      "combines the HAP route with\nsatellite routes into genuinely "
      "node-disjoint alternatives.\n");
  return 0;
}
