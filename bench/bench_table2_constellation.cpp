// Table II / Fig. 2 reproduction: the 108-satellite orbital layout —
// 18 planes x 6 satellites, a = 6871 km, i = 53 deg — in the paper's fill
// order, verified against the Table II RAAN/true-anomaly grid.

#include <cstdio>
#include <set>

#include "common/units.hpp"
#include "orbit/constellation.hpp"
#include "repro_common.hpp"

int main() {
  using namespace qntn;

  const auto sats = orbit::qntn_constellation(108);

  Table table("Table II — satellite orbital configurations");
  table.set_header({"satellite", "RAAN [deg]", "true anomaly [deg]",
                    "a [km]", "inclination [deg]"});
  for (std::size_t i = 0; i < sats.size(); ++i) {
    table.add_row({std::to_string(i),
                   Table::num(rad_to_deg(sats[i].raan), 0),
                   Table::num(rad_to_deg(sats[i].true_anomaly), 0),
                   Table::num(m_to_km(sats[i].semi_major_axis), 0),
                   Table::num(rad_to_deg(sats[i].inclination), 0)});
  }
  bench::emit(table, "table2_constellation.csv");

  // Cross-check against the printed Table II grid.
  std::set<std::pair<long, long>> got;
  for (const orbit::KeplerianElements& el : sats) {
    got.emplace(std::lround(rad_to_deg(el.raan)),
                std::lround(rad_to_deg(el.true_anomaly)));
  }
  std::size_t expected = 0, matched = 0;
  for (long raan = 0; raan < 360; raan += 20) {
    for (long nu = 0; nu < 360; nu += 60) {
      ++expected;
      if (got.count({raan, nu}) != 0) ++matched;
    }
  }
  std::printf("\nTable II grid check: %zu/%zu (RAAN, anomaly) cells matched, "
              "%zu satellites total\n",
              matched, expected, sats.size());
  std::printf("fill order (first 6 planes = the paper's Walker Delta): ");
  for (std::size_t k = 0; k < 6; ++k) {
    std::printf("%ld%s", std::lround(orbit::qntn_plane_raans_deg()[k]),
                k + 1 < 6 ? ", " : " deg RAAN\n");
  }
  return matched == expected ? 0 : 1;
}
