// Extension: HAP endurance (the paper's headline caveat — "limited
// operational time due to power constraints"). Sweeps the HAP duty cycle
// and reports how the air-ground architecture's 100% coverage claim erodes
// with availability, including the fragmentation into episodes.

#include <cstdio>

#include "repro_common.hpp"
#include "sim/endurance.hpp"

int main() {
  using namespace qntn;

  const core::QntnConfig config;
  const sim::NetworkModel model = core::build_air_ground_model(config);
  const sim::TopologyBuilder base(model, config.link_policy());

  struct Case {
    const char* name;
    double active_h;
    double down_h;
  };
  const Case cases[] = {
      {"ideal (paper)", 24.0, 0.0},
      {"22h on / 2h service", 22.0, 2.0},
      {"16h on / 8h recharge", 16.0, 8.0},
      {"12h on / 12h (solar-limited)", 12.0, 12.0},
      {"8h on / 16h", 8.0, 16.0},
  };

  Table table("Extension — air-ground coverage vs HAP endurance");
  table.set_header({"schedule", "availability [%]", "coverage [%]",
                    "episodes", "served [%]"});
  for (const Case& c : cases) {
    const sim::DutyCycle cycle{c.active_h * 3600.0, c.down_h * 3600.0, 0.0};
    const sim::DutyCycledTopology topology(base, {model.hap_ids().front()},
                                           cycle);
    const sim::ScenarioResult result =
        sim::run_scenario(model, topology, config.scenario_config());
    table.add_row({c.name, Table::num(100.0 * cycle.availability(), 1),
                   Table::num(result.coverage.percent, 2),
                   std::to_string(result.coverage.intervals.episode_count()),
                   Table::num(100.0 * result.served_fraction, 2)});
  }
  bench::emit(table, "ext_endurance.csv");

  std::printf(
      "\ncoverage degrades linearly with availability — an 8h-endurance HAP "
      "covers only a third\nof the day, *below* the 108-satellite "
      "constellation's 55%%. The paper's Table III ordering\ninverts once "
      "endurance drops under ~13h/day, quantifying its Section V caveat.\n");
  return 0;
}
