// Performance of the FSO channel: the one-shot evaluate_fso (recomputes the
// Cn^2 integrals) vs the cached FsoLinkEvaluator the simulator's inner loop
// uses — the cache is what makes million-link days cheap.

#include <benchmark/benchmark.h>

#include <cmath>

#include "channel/fso.hpp"
#include "common/constants.hpp"

namespace {

using namespace qntn;
using namespace qntn::channel;

FsoGeometry sat_geometry(double elevation) {
  const double s = kEarthRadius * std::sin(elevation);
  FsoGeometry g;
  g.range = -s + std::sqrt(s * s + 500e3 * 500e3 + 2.0 * kEarthRadius * 500e3);
  g.elevation = elevation;
  g.altitude_low = 0.0;
  g.altitude_high = 500e3;
  return g;
}

void BM_EvaluateFsoOneShot(benchmark::State& state) {
  const FsoConfig config;
  const OpticalTerminal t{1.2, 1e-7};
  double el = 0.4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_fso(config, t, t, sat_geometry(el)));
    el = el < 1.5 ? el + 0.001 : 0.4;
  }
}
BENCHMARK(BM_EvaluateFsoOneShot);

void BM_EvaluatorCached(benchmark::State& state) {
  const FsoConfig config;
  const OpticalTerminal t{1.2, 1e-7};
  const FsoLinkEvaluator evaluator(config, t, t, 0.0, 500e3);
  double el = 0.4;
  for (auto _ : state) {
    const FsoGeometry g = sat_geometry(el);
    benchmark::DoNotOptimize(evaluator.symmetric(g.range, g.elevation));
    el = el < 1.5 ? el + 0.001 : 0.4;
  }
}
BENCHMARK(BM_EvaluatorCached);

void BM_EvaluatorVacuumIsl(benchmark::State& state) {
  const FsoConfig config;
  const OpticalTerminal t{1.2, 1e-7};
  const FsoLinkEvaluator evaluator(config, t, t, 500e3, 500e3);
  double range = 400e3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.symmetric(range, kPi / 2.0));
    range = range < 4000e3 ? range + 1000.0 : 400e3;
  }
}
BENCHMARK(BM_EvaluatorVacuumIsl);

void BM_Cn2Integration(benchmark::State& state) {
  const atmosphere::HufnagelValley profile;
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.integrated_cn2(0.0, 30'000.0));
  }
}
BENCHMARK(BM_Cn2Integration);

}  // namespace
