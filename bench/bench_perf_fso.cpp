// Performance of the FSO channel: the one-shot evaluate_fso (recomputes the
// Cn^2 integrals) vs the cached FsoLinkEvaluator the simulator's inner loop
// uses — the cache is what makes million-link days cheap.

#include <cmath>
#include <cstdio>

#include "channel/fso.hpp"
#include "common/constants.hpp"
#include "perf_harness.hpp"

namespace {

using namespace qntn;
using namespace qntn::channel;

FsoGeometry sat_geometry(double elevation) {
  const double s = kEarthRadius * std::sin(elevation);
  FsoGeometry g;
  g.range = -s + std::sqrt(s * s + 500e3 * 500e3 + 2.0 * kEarthRadius * 500e3);
  g.elevation = elevation;
  g.altitude_low = 0.0;
  g.altitude_high = 500e3;
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bench::PerfHarness harness("fso", argc, argv);
    const FsoConfig config;
    const OpticalTerminal t{1.2, 1e-7};

    {
      const std::uint64_t iters = harness.smoke() ? 100 : 1'000;
      harness.run_case("evaluate_fso_one_shot", iters, [&] {
        double el = 0.4;
        for (std::uint64_t i = 0; i < iters; ++i) {
          bench::do_not_optimize(evaluate_fso(config, t, t, sat_geometry(el)));
          el = el < 1.5 ? el + 0.001 : 0.4;
        }
      });
    }

    const std::uint64_t iters = harness.smoke() ? 20'000 : 200'000;
    {
      const FsoLinkEvaluator evaluator(config, t, t, 0.0, 500e3);
      harness.run_case("evaluator_cached", iters, [&] {
        double el = 0.4;
        for (std::uint64_t i = 0; i < iters; ++i) {
          const FsoGeometry g = sat_geometry(el);
          bench::do_not_optimize(evaluator.symmetric(g.range, g.elevation));
          el = el < 1.5 ? el + 0.001 : 0.4;
        }
      });
    }

    {
      const FsoLinkEvaluator evaluator(config, t, t, 500e3, 500e3);
      harness.run_case("evaluator_vacuum_isl", iters, [&] {
        double range = 400e3;
        for (std::uint64_t i = 0; i < iters; ++i) {
          bench::do_not_optimize(evaluator.symmetric(range, kPi / 2.0));
          range = range < 4000e3 ? range + 1000.0 : 400e3;
        }
      });
    }

    {
      const atmosphere::HufnagelValley profile;
      const std::uint64_t integrations = harness.smoke() ? 1'000 : 10'000;
      harness.run_case("cn2_integration", integrations, [&] {
        for (std::uint64_t i = 0; i < integrations; ++i) {
          bench::do_not_optimize(profile.integrated_cn2(0.0, 30'000.0));
        }
      });
    }

    return harness.finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
