// Fig. 8 reproduction: average entanglement fidelity of the resolved
// requests vs number of satellites (same workload as Fig. 7, fidelity
// recorded per served request via the paper's Bellman-Ford route).
//
// Paper anchor: the space-ground architecture averages F = 0.96.

#include <cstdio>

#include "repro_common.hpp"

int main() {
  using namespace qntn;

  const auto sweep = bench::run_paper_sweep();

  Table table("Fig. 8 — average entanglement fidelity vs number of satellites");
  table.set_header({"satellites", "mean fidelity", "mean path eta", "mean hops"});
  for (const core::ArchitectureMetrics& point : sweep) {
    table.add_row({std::to_string(point.satellites),
                   Table::num(point.mean_fidelity, 4),
                   Table::num(point.mean_transmissivity, 4),
                   Table::num(point.mean_hops, 2)});
  }
  bench::emit(table, "fig8_avg_fidelity.csv");

  const core::ArchitectureMetrics& full = sweep.back();
  std::printf("\npaper @108: %.2f   measured @108: %.4f   (delta %.3f)\n",
              bench::kPaperFidelitySpace, full.mean_fidelity,
              full.mean_fidelity - bench::kPaperFidelitySpace);
  std::printf("flat-with-size shape: fidelity is set by the per-link "
              "threshold, not the constellation size\n(min %.4f / max %.4f "
              "across the sweep).\n",
              [&] {
                double lo = 1.0;
                for (const auto& p : sweep) lo = std::min(lo, p.mean_fidelity);
                return lo;
              }(),
              [&] {
                double hi = 0.0;
                for (const auto& p : sweep) hi = std::max(hi, p.mean_fidelity);
                return hi;
              }());
  return 0;
}
