// Ablation A5: HAP design sensitivity — altitude and aperture. The paper
// fixes 30 km altitude and a 30 cm aperture; this sweep shows how much
// margin those choices have before the air-ground architecture's 100%
// service guarantee collapses.

#include <cstdio>

#include "repro_common.hpp"

int main() {
  using namespace qntn;

  Table altitude("Ablation A5a — HAP altitude sweep (aperture fixed)");
  altitude.set_header({"altitude [km]", "served [%]", "mean fidelity",
                       "min path eta"});
  for (const double alt_km : {15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 50.0}) {
    core::QntnConfig config;
    config.hap_position.altitude = alt_km * 1000.0;
    const core::ArchitectureMetrics air = core::evaluate_air_ground(config);
    altitude.add_row({Table::num(alt_km, 0), Table::num(air.served_percent, 2),
                      Table::num(air.mean_fidelity, 4),
                      Table::num(air.mean_transmissivity, 4)});
  }
  bench::emit(altitude, "ablation_hap_altitude.csv");

  Table aperture("\nAblation A5b — HAP aperture sweep (altitude fixed 30 km)");
  aperture.set_header({"aperture radius [cm]", "served [%]", "mean fidelity"});
  for (const double radius_cm : {10.0, 15.0, 20.0, 25.0, 30.0, 40.0, 60.0}) {
    core::QntnConfig config;
    config.hap_aperture_radius = radius_cm / 100.0;
    const core::ArchitectureMetrics air = core::evaluate_air_ground(config);
    aperture.add_row({Table::num(radius_cm, 0),
                      Table::num(air.served_percent, 2),
                      Table::num(air.mean_fidelity, 4)});
  }
  bench::emit(aperture, "ablation_hap_aperture.csv");

  std::printf(
      "\nhigher platforms raise the elevation angle (less air mass) but "
      "lengthen the slant\npath; the paper's 30 km / 30 cm point sits "
      "comfortably inside the serving region,\nwhile small apertures are "
      "the first thing to break the link budget.\n");
  return 0;
}
