// Contact-plan control plane vs per-step rebuild on the Fig. 6 workload:
// one simulated day of coverage analysis (graph_at + LAN connectivity every
// 30 s) at representative paper constellation sizes. The contact-plan case
// includes its one-off compile, so the speedup is end to end, not amortised
// away. Exits non-zero when the two providers disagree on connected steps.

#include <cstdio>
#include <vector>

#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "perf_harness.hpp"
#include "plan/contact_topology.hpp"
#include "sim/coverage.hpp"

namespace {

using namespace qntn;

/// One Fig. 6 day: count connected steps on the provider's snapshots.
std::size_t coverage_day(const sim::NetworkModel& model,
                         const sim::TopologyProvider& topology, double duration,
                         double step) {
  std::size_t connected = 0;
  for (double t = 0.0; t < duration; t += step) {
    if (sim::all_lans_connected(model, topology.graph_at(t))) ++connected;
  }
  return connected;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bench::PerfHarness harness("contact_plan", argc, argv);
    const core::QntnConfig config;
    const double duration = config.day_duration;
    const double step = config.ephemeris_step;
    const std::size_t day_steps = static_cast<std::size_t>(duration / step);

    const std::vector<std::size_t> sizes =
        harness.smoke() ? std::vector<std::size_t>{6, 36}
                        : std::vector<std::size_t>{6, 54, 108};

    bool match = true;
    for (const std::size_t n : sizes) {
      const sim::NetworkModel model = core::build_space_ground_model(config, n);
      const sim::LinkPolicy policy = config.link_policy();

      std::size_t rebuild_connected = 0;
      const double rebuild_ms = harness.run_case(
          "rebuild_day_n" + std::to_string(n), day_steps, [&] {
            const sim::TopologyBuilder rebuild(model, policy);
            rebuild_connected = coverage_day(model, rebuild, duration, step);
          });

      std::size_t plan_connected = 0;
      const double plan_ms = harness.run_case(
          "plan_day_n" + std::to_string(n), day_steps, [&] {
            const plan::ContactPlan contact_plan =
                plan::compile_contact_plan(model, policy,
                                           config.plan_options());
            const plan::ContactPlanTopology topology(contact_plan, model);
            plan_connected = coverage_day(model, topology, duration, step);
          });

      std::printf("n=%zu: speedup %.2fx, connected steps %zu vs %zu (%s)\n", n,
                  plan_ms > 0.0 ? rebuild_ms / plan_ms : 0.0,
                  rebuild_connected, plan_connected,
                  rebuild_connected == plan_connected ? "match" : "MISMATCH");
      if (rebuild_connected != plan_connected) match = false;
    }

    const int rc = harness.finish();
    if (!match) {
      std::fprintf(stderr,
                   "error: contact-plan day disagrees with per-step rebuild\n");
      return 1;
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
