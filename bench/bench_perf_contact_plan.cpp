// Contact-plan control plane vs per-step rebuild on the Fig. 6 workload:
// one simulated day of coverage analysis (graph_at + LAN connectivity every
// 30 s) at each paper constellation size. The contact-plan column includes
// its one-off compile, so the speedup is end to end, not amortised away.

#include <chrono>
#include <cstdio>

#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "plan/contact_topology.hpp"
#include "repro_common.hpp"
#include "sim/coverage.hpp"

namespace {

using namespace qntn;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// One Fig. 6 day: count connected steps on the provider's snapshots.
std::size_t coverage_day(const sim::NetworkModel& model,
                         const sim::TopologyProvider& topology, double duration,
                         double step) {
  std::size_t connected = 0;
  for (double t = 0.0; t < duration; t += step) {
    if (sim::all_lans_connected(model, topology.graph_at(t))) ++connected;
  }
  return connected;
}

}  // namespace

int main() {
  const core::QntnConfig config;
  const double duration = config.day_duration;
  const double step = config.ephemeris_step;

  Table table("Contact plan vs per-step rebuild (one Fig. 6 day)");
  table.set_header({"satellites", "rebuild_ms", "plan_compile_ms",
                    "plan_query_ms", "plan_total_ms", "speedup",
                    "connected_steps_match"});

  for (const std::size_t n : core::paper_constellation_sizes()) {
    const sim::NetworkModel model = core::build_space_ground_model(config, n);
    const sim::LinkPolicy policy = config.link_policy();

    auto mark = Clock::now();
    const sim::TopologyBuilder rebuild(model, policy);
    const std::size_t rebuild_connected =
        coverage_day(model, rebuild, duration, step);
    const double rebuild_ms = ms_since(mark);

    mark = Clock::now();
    const plan::ContactPlan contact_plan =
        plan::compile_contact_plan(model, policy, config.plan_options());
    const double compile_ms = ms_since(mark);

    mark = Clock::now();
    const plan::ContactPlanTopology topology(contact_plan, model);
    const std::size_t plan_connected =
        coverage_day(model, topology, duration, step);
    const double query_ms = ms_since(mark);

    const double total_ms = compile_ms + query_ms;
    table.add_row({std::to_string(n), Table::num(rebuild_ms, 1),
                   Table::num(compile_ms, 1), Table::num(query_ms, 1),
                   Table::num(total_ms, 1),
                   Table::num(rebuild_ms / total_ms, 2),
                   rebuild_connected == plan_connected ? "yes" : "NO"});
  }

  bench::emit(table, "perf_contact_plan.csv");
  return 0;
}
