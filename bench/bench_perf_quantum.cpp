// Performance of the quantum kernels: Kraus application, fidelity paths,
// and the Hermitian eigensolver — the per-request cost of the full
// density-matrix pipeline vs the closed form the simulator uses.

#include <cstdio>

#include "perf_harness.hpp"
#include "quantum/channels.hpp"
#include "quantum/eig.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/state.hpp"

int main(int argc, char** argv) {
  using namespace qntn;
  using namespace qntn::quantum;
  try {
    bench::PerfHarness harness("quantum", argc, argv);
    const std::uint64_t iters = harness.smoke() ? 2'000 : 20'000;

    {
      const Matrix rho = pure_density(bell_state(BellState::PhiPlus));
      const KrausChannel channel = amplitude_damping(0.8);
      harness.run_case("amplitude_damping_apply", iters, [&] {
        for (std::uint64_t i = 0; i < iters; ++i) {
          bench::do_not_optimize(channel.apply_to_qubit(rho, 1));
        }
      });
    }

    harness.run_case("transmit_bell_half", iters, [&] {
      double eta = 0.5;
      for (std::uint64_t i = 0; i < iters; ++i) {
        bench::do_not_optimize(transmit_bell_half(eta));
        eta = eta < 0.99 ? eta + 0.001 : 0.5;
      }
    });

    {
      const Matrix rho = transmit_bell_half(0.8);
      const ColumnVector psi = bell_state(BellState::PhiPlus);
      harness.run_case("fidelity_to_pure", iters, [&] {
        for (std::uint64_t i = 0; i < iters; ++i) {
          bench::do_not_optimize(
              fidelity_to_pure(rho, psi, FidelityConvention::Uhlmann));
        }
      });
    }

    {
      const Matrix a = transmit_bell_half(0.8);
      const Matrix b = werner_state(0.9);
      harness.run_case("fidelity_general_uhlmann", iters, [&] {
        for (std::uint64_t i = 0; i < iters; ++i) {
          bench::do_not_optimize(fidelity(a, b, FidelityConvention::Uhlmann));
        }
      });
    }

    harness.run_case("closed_form_fidelity", iters, [&] {
      double eta = 0.5;
      for (std::uint64_t i = 0; i < iters; ++i) {
        bench::do_not_optimize(
            bell_fidelity_after_damping(eta, FidelityConvention::Uhlmann));
        eta = eta < 0.99 ? eta + 1e-6 : 0.5;
      }
    });

    for (const std::size_t n : {std::size_t{2}, std::size_t{4}, std::size_t{8},
                                std::size_t{16}}) {
      Matrix m(n, n);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          const double re = 1.0 / static_cast<double>(i + j + 1);
          const double im = i < j ? 0.1 : (i > j ? -0.1 : 0.0);
          m(i, j) = Complex(re, im * re);
        }
      }
      const std::uint64_t eig_iters = iters / (n * n / 4);
      harness.run_case("eigen_hermitian_n" + std::to_string(n), eig_iters, [&] {
        for (std::uint64_t i = 0; i < eig_iters; ++i) {
          bench::do_not_optimize(eigen_hermitian(m));
        }
      });
    }

    {
      const Matrix rho = transmit_bell_half(0.7);
      harness.run_case("concurrence", iters, [&] {
        for (std::uint64_t i = 0; i < iters; ++i) {
          bench::do_not_optimize(concurrence(rho));
        }
      });
    }

    return harness.finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
