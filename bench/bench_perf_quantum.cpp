// Performance of the quantum kernels: Kraus application, fidelity paths,
// and the Hermitian eigensolver — the per-request cost of the full
// density-matrix pipeline vs the closed form the simulator uses.

#include <benchmark/benchmark.h>

#include "quantum/channels.hpp"
#include "quantum/eig.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/state.hpp"

namespace {

using namespace qntn::quantum;

void BM_AmplitudeDampingApply(benchmark::State& state) {
  const Matrix rho = pure_density(bell_state(BellState::PhiPlus));
  const KrausChannel channel = amplitude_damping(0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(channel.apply_to_qubit(rho, 1));
  }
}
BENCHMARK(BM_AmplitudeDampingApply);

void BM_TransmitBellHalf(benchmark::State& state) {
  double eta = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(transmit_bell_half(eta));
    eta = eta < 0.99 ? eta + 0.001 : 0.5;
  }
}
BENCHMARK(BM_TransmitBellHalf);

void BM_FidelityToPure(benchmark::State& state) {
  const Matrix rho = transmit_bell_half(0.8);
  const ColumnVector psi = bell_state(BellState::PhiPlus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fidelity_to_pure(rho, psi, FidelityConvention::Uhlmann));
  }
}
BENCHMARK(BM_FidelityToPure);

void BM_FidelityGeneralUhlmann(benchmark::State& state) {
  const Matrix a = transmit_bell_half(0.8);
  const Matrix b = werner_state(0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fidelity(a, b, FidelityConvention::Uhlmann));
  }
}
BENCHMARK(BM_FidelityGeneralUhlmann);

void BM_ClosedFormFidelity(benchmark::State& state) {
  double eta = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bell_fidelity_after_damping(eta, FidelityConvention::Uhlmann));
    eta = eta < 0.99 ? eta + 1e-6 : 0.5;
  }
}
BENCHMARK(BM_ClosedFormFidelity);

void BM_EigenHermitian(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double re = 1.0 / static_cast<double>(i + j + 1);
      const double im = i < j ? 0.1 : (i > j ? -0.1 : 0.0);
      m(i, j) = Complex(re, im * re);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eigen_hermitian(m));
  }
}
BENCHMARK(BM_EigenHermitian)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_Concurrence(benchmark::State& state) {
  const Matrix rho = transmit_bell_half(0.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(concurrence(rho));
  }
}
BENCHMARK(BM_Concurrence);

}  // namespace
