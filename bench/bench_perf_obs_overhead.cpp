// Observability overhead on the paper workload: one space-ground evaluation
// at 54 satellites (contact-plan topology), run with obs fully disabled,
// with the metrics registry collecting, with metrics + a Requests-level
// JSONL trace to disk, and with the span profiler recording. The disabled
// case is the contract: the ambient no-op path must stay within ~2% of a
// build without instrumentation, and the registry within a few percent of
// disabled. Exits non-zero when any instrumented run changes the physics.

#include <cstdio>
#include <memory>
#include <string>

#include "core/experiments.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "perf_harness.hpp"

namespace {

using namespace qntn;

core::QntnConfig workload(bool smoke) {
  core::QntnConfig config;
  config.topology_mode = core::TopologyMode::ContactPlan;
  if (smoke) {
    config.request_count = 20;
    config.request_steps = 10;
  }
  return config;
}

struct ContextBundle {
  core::RunContext ctx;
  std::unique_ptr<obs::Registry> registry;
  std::unique_ptr<obs::TraceSink> trace;
  std::unique_ptr<obs::Profiler> profiler;
};

}  // namespace

int main(int argc, char** argv) {
  try {
    bench::PerfHarness harness("obs_overhead", argc, argv);
    const core::QntnConfig config = workload(harness.smoke());
    const std::size_t satellites = harness.smoke() ? 12 : 54;

    // Each mode evaluates the same workload under a freshly built context
    // (file sinks restart cleanly between repeats); the served percentage
    // must be bit-identical across modes.
    double served_disabled = 0.0;
    const auto run_mode = [&](const std::string& name,
                              const std::function<void(ContextBundle&)>& arm,
                              double* served) {
      harness.run_case(name, satellites, [&] {
        ContextBundle bundle;
        bundle.ctx.config = config;
        arm(bundle);
        const core::ArchitectureMetrics m =
            core::evaluate_space_ground(bundle.ctx, satellites);
        *served = m.served_percent;
      });
    };

    run_mode("disabled", [](ContextBundle&) {}, &served_disabled);

    double served_metrics = 0.0;
    run_mode(
        "metrics",
        [](ContextBundle& bundle) {
          bundle.registry = std::make_unique<obs::Registry>();
          bundle.ctx.registry = bundle.registry.get();
        },
        &served_metrics);

    double served_traced = 0.0;
    run_mode(
        "metrics_trace",
        [](ContextBundle& bundle) {
          bundle.registry = std::make_unique<obs::Registry>();
          bundle.ctx.registry = bundle.registry.get();
          bundle.trace = std::make_unique<obs::TraceSink>(
              std::string("obs_overhead_trace.jsonl"),
              obs::TraceLevel::Requests);
          bundle.ctx.trace = bundle.trace.get();
        },
        &served_traced);

    double served_profiled = 0.0;
    run_mode(
        "profile",
        [](ContextBundle& bundle) {
          bundle.profiler = std::make_unique<obs::Profiler>();
          bundle.ctx.profiler = bundle.profiler.get();
        },
        &served_profiled);

    const int rc = harness.finish();

    // The instrumentation must never change the physics.
    if (served_metrics != served_disabled || served_traced != served_disabled ||
        served_profiled != served_disabled) {
      std::fprintf(stderr, "FAILED: instrumented runs diverged\n");
      return 1;
    }
    std::printf("physics identical across modes (served %.4f %%)\n",
                served_disabled);
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
