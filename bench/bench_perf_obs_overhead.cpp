// Observability overhead on the paper workload: one space-ground evaluation
// at 54 satellites (contact-plan topology), run with obs fully disabled,
// with the metrics registry collecting, and with metrics + a Requests-level
// JSONL trace to disk. The disabled column is the contract: the ambient
// no-op path must stay within ~2% of a build without instrumentation, and
// the registry within a few percent of disabled.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "core/experiments.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "repro_common.hpp"

namespace {

using namespace qntn;
using Clock = std::chrono::steady_clock;

core::QntnConfig workload() {
  core::QntnConfig config;
  config.topology_mode = core::TopologyMode::ContactPlan;
  return config;
}

constexpr std::size_t kSatellites = 54;
constexpr int kReps = 3;

/// Best-of-kReps wall time of one evaluation under the given context
/// factory (rebuilt per rep so file sinks restart cleanly).
template <typename MakeContext>
double best_ms(MakeContext&& make_context, double* served_percent) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto bundle = make_context();
    const auto start = Clock::now();
    const core::ArchitectureMetrics m =
        core::evaluate_space_ground(bundle->ctx, kSatellites);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (ms < best) best = ms;
    *served_percent = m.served_percent;
  }
  return best;
}

struct ContextBundle {
  core::RunContext ctx;
  std::unique_ptr<obs::Registry> registry;
  std::unique_ptr<obs::TraceSink> trace;
};

}  // namespace

int main() {
  const core::QntnConfig config = workload();

  // Untimed warm-up so the first timed mode doesn't absorb allocator and
  // page-cache cold-start costs.
  {
    core::RunContext warmup;
    warmup.config = config;
    (void)core::evaluate_space_ground(warmup, kSatellites);
  }

  Table table("Observability overhead (space-ground @54, contact plan)");
  table.set_header(
      {"mode", "best_ms", "overhead_%", "served_%_agrees"});

  double served_disabled = 0.0;
  const double disabled_ms = best_ms(
      [&] {
        auto bundle = std::make_unique<ContextBundle>();
        bundle->ctx.config = config;
        return bundle;
      },
      &served_disabled);

  double served_metrics = 0.0;
  const double metrics_ms = best_ms(
      [&] {
        auto bundle = std::make_unique<ContextBundle>();
        bundle->ctx.config = config;
        bundle->registry = std::make_unique<obs::Registry>();
        bundle->ctx.registry = bundle->registry.get();
        return bundle;
      },
      &served_metrics);

  double served_traced = 0.0;
  const double traced_ms = best_ms(
      [&] {
        auto bundle = std::make_unique<ContextBundle>();
        bundle->ctx.config = config;
        bundle->registry = std::make_unique<obs::Registry>();
        bundle->ctx.registry = bundle->registry.get();
        bundle->trace = std::make_unique<obs::TraceSink>(
            std::string("obs_overhead_trace.jsonl"), obs::TraceLevel::Requests);
        bundle->ctx.trace = bundle->trace.get();
        return bundle;
      },
      &served_traced);

  const auto overhead = [&](double ms) {
    return Table::num(100.0 * (ms - disabled_ms) / disabled_ms, 2);
  };
  table.add_row({"disabled", Table::num(disabled_ms, 1), "0.00", "yes"});
  table.add_row({"metrics", Table::num(metrics_ms, 1), overhead(metrics_ms),
                 served_metrics == served_disabled ? "yes" : "NO"});
  table.add_row({"metrics+trace", Table::num(traced_ms, 1),
                 overhead(traced_ms),
                 served_traced == served_disabled ? "yes" : "NO"});

  bench::emit(table, "perf_obs_overhead.csv");

  // The instrumentation must never change the physics.
  if (served_metrics != served_disabled || served_traced != served_disabled) {
    std::fprintf(stderr, "FAILED: instrumented runs diverged\n");
    return 1;
  }
  return 0;
}
