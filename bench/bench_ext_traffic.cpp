// Extension: dynamic traffic. The paper's instantaneous-serving model is
// replaced by the event-driven simulator — Poisson arrivals, bounded
// per-node concurrency, queueing, light-time heralding and memory
// decoherence — sweeping the offered load on the air-ground network.

#include <cstdio>

#include "repro_common.hpp"
#include "sim/traffic.hpp"

int main() {
  using namespace qntn;

  const core::QntnConfig config;
  const sim::NetworkModel model = core::build_air_ground_model(config);
  const sim::TopologyBuilder topology(model, config.link_policy());

  Table table("Extension — air-ground under Poisson load (capacity 4/node)");
  table.set_header({"arrivals [1/s]", "served [%]", "throughput [1/s]",
                    "mean latency [ms]", "mean wait [ms]", "mean fidelity"});
  for (const double rate : {1.0, 10.0, 50.0, 100.0, 200.0, 400.0}) {
    sim::TrafficConfig tc;
    tc.duration = 300.0;
    tc.arrival_rate = rate;
    tc.node_capacity = 4;
    tc.service_overhead = 0.01;
    tc.max_queue_delay = 0.25;
    tc.memory.t1 = 1.0;
    tc.memory.t2 = 0.3;
    const sim::TrafficResult result =
        sim::run_traffic_simulation(model, topology, tc);
    table.add_row({Table::num(rate, 0),
                   Table::num(100.0 * result.served_fraction(), 2),
                   Table::num(result.throughput(tc.duration), 1),
                   Table::num(result.latency.mean() * 1e3, 2),
                   Table::num(result.waiting.mean() * 1e3, 2),
                   result.fidelity.count() > 0
                       ? Table::num(result.fidelity.mean(), 4)
                       : "-"});
  }
  bench::emit(table, "ext_traffic.csv");

  std::printf(
      "\nthe single HAP relay saturates near capacity/service_time "
      "(~4/0.011 ~ 360 1/s);\nbeyond that, waiting time grows into the "
      "memory's T2 and the *delivered* fidelity\nfalls even though every "
      "optical link is unchanged — the cost of the paper's\ninfinite-"
      "capacity assumption expressed in fidelity, not just in served "
      "percent.\n");
  return 0;
}
