// Ablation A2: the paper routes on the additive cost 1/(eta + eps)
// (Algorithm 1). That metric is not product-optimal: maximising end-to-end
// transmissivity corresponds to minimising -sum log eta. This harness
// quantifies how much fidelity Algorithm 1 leaves on the table versus the
// product-optimal metric and a plain hop-count baseline, on the hybrid
// network where alternative paths actually exist.

#include <cstdio>

#include "repro_common.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace qntn;

  struct MetricCase {
    const char* name;
    net::CostMetric metric;
  };
  const MetricCase cases[] = {
      {"1/(eta+eps)  [paper]", net::CostMetric::InverseEta},
      {"-log eta  [optimal]", net::CostMetric::NegLogEta},
      {"hop count", net::CostMetric::HopCount},
  };

  Table table("Ablation A2 — routing metric (hybrid network, 36 satellites)");
  table.set_header({"metric", "served [%]", "mean fidelity", "mean eta",
                    "mean hops"});
  for (const MetricCase& c : cases) {
    core::QntnConfig config;
    config.enable_hap_satellite = true;
    config.metric = c.metric;
    const core::ArchitectureMetrics point = core::evaluate_hybrid(config, 36);
    table.add_row({c.name, Table::num(point.served_percent, 2),
                   Table::num(point.mean_fidelity, 4),
                   Table::num(point.mean_transmissivity, 4),
                   Table::num(point.mean_hops, 2)});
  }
  bench::emit(table, "ablation_routing_metric.csv");
  std::printf(
      "\nserved%% is metric-independent (reachability is), and with the "
      "QNTN topology's\nstar-like relays all metrics usually find the same "
      "2-hop routes; the product-optimal\nmetric only wins when longer "
      "alternative paths exist. Algorithm 1 is adequate here.\n");
  return 0;
}
