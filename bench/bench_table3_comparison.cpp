// Table III reproduction: the comparative summary of the two architectures
// — coverage percentage P, served requests, and entanglement fidelity —
// space-ground at 108 satellites vs the single-HAP air-ground network.

#include <cstdio>

#include "repro_common.hpp"

int main() {
  using namespace qntn;

  const core::QntnConfig config;
  const auto rows = core::table3_comparison(config, 108);

  Table table("Table III — architecture comparison (paper vs measured)");
  table.set_header({"architecture", "P [%] paper", "P [%] measured",
                    "served [%] paper", "served [%] measured",
                    "fidelity paper", "fidelity measured"});
  table.add_row({rows[0].architecture, Table::num(bench::kPaperCoverage108, 2),
                 Table::num(rows[0].coverage_percent, 2),
                 Table::num(bench::kPaperServed108, 2),
                 Table::num(rows[0].served_percent, 2),
                 Table::num(bench::kPaperFidelitySpace, 2),
                 Table::num(rows[0].mean_fidelity, 4)});
  table.add_row({rows[1].architecture, "100.00",
                 Table::num(rows[1].coverage_percent, 2), "100.00",
                 Table::num(rows[1].served_percent, 2),
                 Table::num(bench::kPaperFidelityAir, 2),
                 Table::num(rows[1].mean_fidelity, 4)});
  bench::emit(table, "table3_comparison.csv");

  const bool ordering = rows[1].coverage_percent > rows[0].coverage_percent &&
                        rows[1].served_percent > rows[0].served_percent &&
                        rows[1].mean_fidelity > rows[0].mean_fidelity;
  std::printf("\npaper's qualitative ordering (air-ground dominates on all "
              "three metrics): %s\n",
              ordering ? "REPRODUCED" : "FAILED");
  std::printf("fidelity edge: %.4f (paper: 0.02)\n",
              rows[1].mean_fidelity - rows[0].mean_fidelity);
  return ordering ? 0 : 1;
}
