// Fig. 5 reproduction: entanglement fidelity vs channel transmissivity,
// eta swept over [0, 1] in steps of 0.01 through the full density-matrix
// pipeline (Bell pair + amplitude damping + fidelity, paper Eqs. 3-5).
//
// The paper reads this figure as "eta = 0.7 yields F > 90%", which holds
// under the square-root (Uhlmann) fidelity convention; the squared (Jozsa)
// convention — Eq. (5) as printed — gives 0.843 there. Both are emitted.

#include <cstdio>

#include "repro_common.hpp"

int main() {
  using namespace qntn;

  const auto uhlmann =
      core::fig5_fidelity_sweep(quantum::FidelityConvention::Uhlmann, 0.01);
  const auto jozsa =
      core::fig5_fidelity_sweep(quantum::FidelityConvention::Jozsa, 0.01);

  Table table("Fig. 5 — fidelity vs transmissivity (every 5th point)");
  table.set_header({"eta", "F (Uhlmann, paper's reading)", "F (Jozsa, Eq. 5)"});
  for (std::size_t i = 0; i < uhlmann.size(); i += 5) {
    table.add_row({Table::num(uhlmann[i].transmissivity, 2),
                   Table::num(uhlmann[i].fidelity_simulated, 4),
                   Table::num(jozsa[i].fidelity_simulated, 4)});
  }
  bench::emit(table, "fig5_fidelity_vs_transmissivity.csv");

  const double eta90 = core::transmissivity_threshold_for(uhlmann, 0.90);
  std::printf("\nsmallest eta with F >= 0.90 (Uhlmann): %.2f\n", eta90);
  std::printf("F at the paper's threshold eta = 0.70:  %.4f (Uhlmann), "
              "%.4f (Jozsa)\n",
              uhlmann[70].fidelity_simulated, jozsa[70].fidelity_simulated);
  std::printf("paper reading: eta = 0.7 -> F > 0.9  [%s under Uhlmann]\n",
              uhlmann[70].fidelity_simulated > 0.9 ? "REPRODUCED" : "FAILED");
  return 0;
}
