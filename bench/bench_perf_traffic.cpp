// Open-arrival traffic serving (serving_mode = traffic) end to end: the
// paper's day on the space-ground constellation with per-LAN diurnal
// Poisson arrivals, event-driven capacity claims, queueing deadlines and
// backpressure. Full mode runs the ~1M-requests/day acceptance scenario
// (n=108, 2880 windows of 30 s, 4 req/s per LAN) serially and on 2/8
// worker threads; smoke mode shrinks the constellation and rate for the
// CI gate against bench/baselines/BENCH_traffic.json. The engine is
// required to be bitwise deterministic: the run exits non-zero if any
// threaded case disagrees with the serial case on any metric.

#include <cstdio>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/experiments.hpp"
#include "perf_harness.hpp"

namespace {

using namespace qntn;

bool same_metrics(const core::ArchitectureMetrics& a,
                  const core::ArchitectureMetrics& b) {
  return a.coverage_percent == b.coverage_percent &&
         a.served_percent == b.served_percent &&
         a.mean_fidelity == b.mean_fidelity &&
         a.mean_transmissivity == b.mean_transmissivity &&
         a.mean_hops == b.mean_hops && a.requests_issued == b.requests_issued &&
         a.requests_served == b.requests_served &&
         a.requests_no_path == b.requests_no_path &&
         a.requests_isolated == b.requests_isolated &&
         a.requests_rejected_capacity == b.requests_rejected_capacity &&
         a.requests_dropped_deadline == b.requests_dropped_deadline &&
         a.latency_p50 == b.latency_p50 && a.latency_p99 == b.latency_p99 &&
         a.waiting_p50 == b.waiting_p50 && a.waiting_p99 == b.waiting_p99 &&
         a.traffic.mean_peak_utilisation == b.traffic.mean_peak_utilisation &&
         a.traffic.peak_queue_depth == b.traffic.peak_queue_depth;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bench::PerfHarness harness("traffic", argc, argv);

    core::QntnConfig config;
    config.serving_mode = core::ServingMode::Traffic;
    config.topology_mode = core::TopologyMode::ContactPlan;
    const std::size_t n = harness.smoke() ? 36 : 108;
    if (harness.smoke()) {
      // ~50k arrivals over the day in 288 five-minute windows.
      config.request_steps = 288;
      config.traffic_arrival_rate = 0.2;
    } else {
      // The acceptance scenario: 2880 thirty-second windows, 4 req/s per
      // LAN with the diurnal profile — ~1M arrivals over the day.
      config.request_steps = 2880;
    }
    const auto windows = static_cast<std::uint64_t>(config.request_steps);

    core::ArchitectureMetrics serial;
    harness.run_case("serve_serial_n" + std::to_string(n), windows,
                     [&] { serial = core::evaluate_space_ground(config, n); });
    std::printf(
        "n=%zu: issued %zu, served %.2f %%, rejected %zu, deadline-dropped "
        "%zu, latency p99 %.2f ms, waiting p99 %.2f ms\n",
        n, serial.requests_issued, serial.served_percent,
        serial.requests_rejected_capacity, serial.requests_dropped_deadline,
        serial.latency_p99 * 1e3, serial.waiting_p99 * 1e3);

    bool deterministic = true;
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      ThreadPool pool(threads);
      core::RunContext ctx{config};
      ctx.pool = &pool;
      core::ArchitectureMetrics threaded;
      harness.run_case(
          "serve_t" + std::to_string(threads) + "_n" + std::to_string(n),
          windows, [&] { threaded = core::evaluate_space_ground(ctx, n); });
      const bool match = same_metrics(serial, threaded);
      std::printf("t=%zu vs serial: metrics %s\n", threads,
                  match ? "identical" : "MISMATCH");
      if (!match) deterministic = false;
    }

    const int rc = harness.finish();
    if (!deterministic) {
      std::fprintf(stderr,
                   "error: threaded traffic metrics differ from serial\n");
      return 1;
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
