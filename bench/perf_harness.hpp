#pragma once

/// Shared runner for the bench_perf_* binaries: every case is timed with
/// one untimed warmup pass plus N timed repeats, summarised as
/// median/MAD/p95 (robust to scheduler noise), and the whole run is written
/// as BENCH_<name>.json in the stable "qntn-bench-v1" schema that
/// `qntn_report bench-compare` gates against. A human table still goes to
/// stdout.
///
/// Flags (every adopting binary accepts them):
///   --smoke          reduced workload for CI schema checks; also enabled
///                    by QNTN_BENCH_SMOKE=1 in the environment
///   --repeats N      timed repeats per case (default 5, smoke 2)
///   --warmup N       untimed warmup passes per case (default 1)
///   --out FILE       JSON path (default BENCH_<name>.json in the cwd)

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/table.hpp"
#include "obs/perf_report.hpp"

namespace qntn::bench {

/// Defeat dead-code elimination of a benchmark result without a library
/// dependency (gcc/clang asm sink, same trick as google-benchmark's
/// DoNotOptimize).
template <typename T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

/// Peak resident set size of this process in KiB (0 when unavailable).
inline std::uint64_t peak_rss_kb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::uint64_t>(usage.ru_maxrss);
}

/// Live thread count of this process (1 when /proc is unavailable).
inline std::size_t process_thread_count() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return static_cast<std::size_t>(
          std::strtoul(line.c_str() + 8, nullptr, 10));
    }
  }
  return 1;
}

class PerfHarness {
 public:
  /// Parses harness flags from argv; throws qntn::Error on unknown flags
  /// (adopting binaries have no flags of their own).
  PerfHarness(std::string bench_name, int argc, char** argv)
      : report_(), out_path_("BENCH_" + bench_name + ".json") {
    report_.bench = std::move(bench_name);
    if (const char* env = std::getenv("QNTN_BENCH_SMOKE")) {
      report_.smoke = env[0] != '\0' && env[0] != '0';
    }
    std::size_t repeats = 0;  // 0 = default, resolved after flag parsing
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto take_value = [&]() -> std::string {
        QNTN_REQUIRE(i + 1 < argc, "missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--smoke") {
        report_.smoke = true;
      } else if (arg == "--repeats") {
        repeats = static_cast<std::size_t>(
            std::strtoul(take_value().c_str(), nullptr, 10));
        QNTN_REQUIRE(repeats > 0, "--repeats must be positive");
      } else if (arg == "--warmup") {
        report_.warmup = static_cast<std::size_t>(
            std::strtoul(take_value().c_str(), nullptr, 10));
        explicit_warmup_ = true;
      } else if (arg == "--out") {
        out_path_ = take_value();
      } else {
        throw Error("unknown flag: " + arg +
                    " (harness flags: --smoke --repeats N --warmup N "
                    "--out FILE)");
      }
    }
    report_.repeats = repeats != 0 ? repeats : (report_.smoke ? 2 : 5);
    if (!explicit_warmup_) report_.warmup = 1;
    table_.set_header({"case", "items", "median_ms", "mad_ms", "p95_ms",
                       "min_ms", "mean_ms"});
  }

  [[nodiscard]] bool smoke() const { return report_.smoke; }
  [[nodiscard]] std::size_t repeats() const { return report_.repeats; }

  /// Warm up, then time `body` repeats() times. `items` is the amount of
  /// work one call performs (iterations of an inner loop), recorded so
  /// readers can derive throughput. Returns the median wall time [ms].
  double run_case(const std::string& name, std::uint64_t items,
                  const std::function<void()>& body) {
    using Clock = std::chrono::steady_clock;
    for (std::size_t i = 0; i < report_.warmup; ++i) body();
    std::vector<double> repeats_ms;
    repeats_ms.reserve(report_.repeats);
    for (std::size_t i = 0; i < report_.repeats; ++i) {
      const Clock::time_point start = Clock::now();
      body();
      repeats_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count());
    }
    obs::BenchCase result =
        obs::make_bench_case(name, items, std::move(repeats_ms));
    table_.add_row({result.name, std::to_string(result.items),
                    Table::num(result.median_ms, 4),
                    Table::num(result.mad_ms, 4), Table::num(result.p95_ms, 4),
                    Table::num(result.min_ms, 4),
                    Table::num(result.mean_ms, 4)});
    const double median = result.median_ms;
    report_.cases.push_back(std::move(result));
    return median;
  }

  /// Convenience for cases without a meaningful item count.
  double run_case(const std::string& name, const std::function<void()>& body) {
    return run_case(name, 0, body);
  }

  /// Print the table, stamp RSS / thread count, write the JSON. Returns the
  /// process exit code (0; write failures print a warning and still return
  /// 0 — emitting results is best-effort like the CSV tables, the gate
  /// reruns with --out somewhere writable).
  int finish() {
    report_.threads = process_thread_count();
    report_.max_rss_kb = peak_rss_kb();
    std::string title = "perf: " + report_.bench;
    if (report_.smoke) title += " (smoke)";
    std::printf("%s\n", title.c_str());
    std::fputs(table_.to_string().c_str(), stdout);
    std::ofstream out(out_path_);
    if (out) {
      out << report_.to_json();
      std::printf("(bench report written to %s)\n", out_path_.c_str());
    } else {
      std::fprintf(stderr, "qntn: warning: cannot write bench report %s\n",
                   out_path_.c_str());
    }
    return 0;
  }

 private:
  obs::BenchReport report_;
  std::string out_path_;
  bool explicit_warmup_ = false;
  Table table_;
};

}  // namespace qntn::bench
