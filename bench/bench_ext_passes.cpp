// Extension: pass structure behind Fig. 6. Per-satellite pass statistics
// over the QNTN centroid explain the coverage curve: each satellite
// contributes a handful of short passes per day, their total is nearly
// constant per satellite, and the Walker planes keep overlaps small —
// hence the near-linear Fig. 6.

#include <cstdio>

#include "common/histogram.hpp"
#include "common/units.hpp"
#include "core/ground_networks.hpp"
#include "orbit/constellation.hpp"
#include "orbit/passes.hpp"
#include "repro_common.hpp"

int main() {
  using namespace qntn;

  const geo::Geodetic site = core::qntn_centroid();
  // The serving mask is the ~27 deg elevation where the calibrated FSO
  // budget crosses the 0.7 threshold (tools/calibrate_fso).
  const double serving_mask = deg_to_rad(27.0);

  const auto elements = orbit::qntn_constellation(108);
  Table table("Extension — per-plane pass statistics over the QNTN centroid");
  table.set_header({"plane (RAAN deg)", "passes/day", "contact [min/day]",
                    "mean pass [min]", "best elevation [deg]"});
  Histogram durations(0.0, 10.0, 20);
  double total_contact = 0.0;
  for (std::size_t plane = 0; plane < 18; ++plane) {
    orbit::PassStatistics plane_stats;
    for (std::size_t s = 0; s < 6; ++s) {
      const orbit::TwoBodyPropagator prop(elements[plane * 6 + s]);
      const orbit::Ephemeris eph =
          orbit::Ephemeris::generate(prop, 86'400.0, 30.0);
      const auto passes = find_passes(eph, site, 86'400.0, serving_mask);
      const orbit::PassStatistics stats = orbit::summarize_passes(passes);
      plane_stats.count += stats.count;
      plane_stats.total_contact += stats.total_contact;
      plane_stats.max_elevation =
          std::max(plane_stats.max_elevation, stats.max_elevation);
      for (const orbit::Pass& pass : passes) {
        durations.add(pass.duration() / 60.0);
      }
    }
    total_contact += plane_stats.total_contact;
    table.add_row({Table::num(orbit::qntn_plane_raans_deg()[plane], 0),
                   std::to_string(plane_stats.count),
                   Table::num(s_to_minutes(plane_stats.total_contact), 1),
                   Table::num(plane_stats.count > 0
                                  ? s_to_minutes(plane_stats.total_contact /
                                                 static_cast<double>(
                                                     plane_stats.count))
                                  : 0.0,
                              2),
                   Table::num(rad_to_deg(plane_stats.max_elevation), 1)});
  }
  bench::emit(table, "ext_passes.csv");

  std::printf("\npass duration distribution [min]:\n%s",
              durations.to_string(32).c_str());
  std::printf(
      "raw single-satellite contact totals %.0f min/day; the measured "
      "Fig. 6 coverage at 108\nsatellites is %.0f min — the difference is "
      "pass overlap between satellites plus the\nstricter all-three-LANs "
      "requirement.\n",
      s_to_minutes(total_contact), 0.5497 * 1440.0);
  return 0;
}
