#pragma once

/// Shared plumbing for the reproduction harnesses in bench/: the paper's
/// reference series (digitised headline numbers) and a helper that runs the
/// full constellation sweep on a thread pool.

#include <cstdio>
#include <vector>

#include "common/error.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/experiments.hpp"

namespace qntn::bench {

/// Paper headline operating points (Section IV / Table III). Only the
/// 108-satellite and air-ground rows are given numerically in the text;
/// the figures are compared by shape.
inline constexpr double kPaperCoverage108 = 55.17;   // %
inline constexpr double kPaperServed108 = 57.75;     // %
inline constexpr double kPaperFidelitySpace = 0.96;
inline constexpr double kPaperFidelityAir = 0.98;

/// Run the full 6..108 sweep with the library defaults.
inline std::vector<core::ArchitectureMetrics> run_paper_sweep() {
  const core::QntnConfig config;
  ThreadPool pool;
  return core::space_ground_sweep(config, core::paper_constellation_sizes(),
                                  pool);
}

/// Emit a table to stdout and a CSV next to the working directory.
inline void emit(const Table& table, const std::string& csv_name) {
  std::fputs(table.to_string().c_str(), stdout);
  try {
    table.write_csv(csv_name);
    std::printf("(series written to %s)\n", csv_name.c_str());
  } catch (const Error& e) {
    // CSV output is best-effort (read-only working directories), but say so
    // instead of silently dropping the series.
    std::fprintf(stderr, "qntn: warning: could not write %s: %s\n",
                 csv_name.c_str(), e.what());
  }
}

}  // namespace qntn::bench
