// Parallel snapshot engine vs the serial seed path on the paper's daily
// scenario (coverage every 30 s plus 100 request snapshots): end-to-end
// evaluate_space_ground timings — model build and contact-plan compile
// included — for the per-step rebuild without a pool (the historical seed
// configuration), the epoch-partitioned contact plan without a pool, and
// the contact plan driving the full pipeline (ephemeris generation,
// contact-plan compile, snapshot engine) at 1, 2 and 8 threads. Both
// sizes (n=36 and the paper's full n=108) run even in smoke mode so the
// CI gate sees the t8-vs-t1 scaling at the size where it matters. The
// engine is required to be bitwise deterministic: the run exits non-zero
// if any threaded case disagrees with the serial contact-plan case on any
// metric.

#include <cstdio>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/experiments.hpp"
#include "perf_harness.hpp"

namespace {

using namespace qntn;

bool same_metrics(const core::ArchitectureMetrics& a,
                  const core::ArchitectureMetrics& b) {
  return a.coverage_percent == b.coverage_percent &&
         a.served_percent == b.served_percent &&
         a.mean_fidelity == b.mean_fidelity &&
         a.mean_transmissivity == b.mean_transmissivity &&
         a.mean_hops == b.mean_hops && a.requests_issued == b.requests_issued &&
         a.requests_served == b.requests_served &&
         a.requests_no_path == b.requests_no_path &&
         a.requests_isolated == b.requests_isolated &&
         a.handovers == b.handovers;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bench::PerfHarness harness("parallel_sim", argc, argv);
    const std::vector<std::size_t> sizes{36, 108};

    bool deterministic = true;
    for (const std::size_t n : sizes) {
      const std::string suffix = "_n" + std::to_string(n);

      core::QntnConfig config;
      const auto day_steps = static_cast<std::uint64_t>(config.day_duration /
                                                        config.ephemeris_step);

      core::ArchitectureMetrics seed_metrics;
      config.topology_mode = core::TopologyMode::Rebuild;
      const double seed_ms =
          harness.run_case("serial_seed" + suffix, day_steps, [&] {
            seed_metrics = core::evaluate_space_ground(config, n);
          });

      config.topology_mode = core::TopologyMode::ContactPlan;
      core::ArchitectureMetrics plan_metrics;
      const double plan_ms =
          harness.run_case("plan_serial" + suffix, day_steps, [&] {
            plan_metrics = core::evaluate_space_ground(config, n);
          });

      std::vector<double> parallel_ms;
      for (const std::size_t threads :
           {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        ThreadPool pool(threads);
        core::RunContext ctx{config};
        ctx.pool = &pool;
        core::ArchitectureMetrics threaded;
        parallel_ms.push_back(harness.run_case(
            "plan_parallel_t" + std::to_string(threads) + suffix, day_steps,
            [&] { threaded = core::evaluate_space_ground(ctx, n); }));
        const bool match = same_metrics(plan_metrics, threaded);
        std::printf("n=%zu t=%zu vs serial plan: metrics %s\n", n, threads,
                    match ? "identical" : "MISMATCH");
        if (!match) deterministic = false;
      }

      std::printf(
          "n=%zu: plan-serial %.2fx, 1 thread %.2fx, 2 threads %.2fx, "
          "8 threads %.2fx vs serial seed path; t8 vs t1 %.2fx\n",
          n, plan_ms > 0.0 ? seed_ms / plan_ms : 0.0,
          parallel_ms[0] > 0.0 ? seed_ms / parallel_ms[0] : 0.0,
          parallel_ms[1] > 0.0 ? seed_ms / parallel_ms[1] : 0.0,
          parallel_ms[2] > 0.0 ? seed_ms / parallel_ms[2] : 0.0,
          parallel_ms[2] > 0.0 ? parallel_ms[0] / parallel_ms[2] : 0.0);
      (void)seed_metrics;
    }

    const int rc = harness.finish();
    if (!deterministic) {
      std::fprintf(stderr,
                   "error: parallel engine metrics differ from serial\n");
      return 1;
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
