// Fig. 7 reproduction: percentage of served entanglement distribution
// requests vs number of satellites — 100 random inter-LAN requests,
// re-served at 100 snapshots of satellite movement and averaged.
//
// Paper anchor: 108 satellites serve 57.75% of requests.

#include <cstdio>

#include "repro_common.hpp"

int main() {
  using namespace qntn;

  const auto sweep = bench::run_paper_sweep();

  Table table("Fig. 7 — served requests %% vs number of satellites");
  table.set_header({"satellites", "served [%]"});
  for (const core::ArchitectureMetrics& point : sweep) {
    table.add_row({std::to_string(point.satellites),
                   Table::num(point.served_percent, 2)});
  }
  bench::emit(table, "fig7_served_requests.csv");

  const core::ArchitectureMetrics& full = sweep.back();
  std::printf("\npaper @108: %.2f%%   measured @108: %.2f%%   (delta %.2f)\n",
              bench::kPaperServed108, full.served_percent,
              full.served_percent - bench::kPaperServed108);
  std::printf("served%% tracks coverage%% (same @108 run: %.2f%% coverage), "
              "running slightly above it\nbecause partial constellations can "
              "serve individual LAN pairs without full triangle coverage.\n",
              full.coverage_percent);
  return 0;
}
