// Extension: application-level benchmark. The paper motivates its 0.7
// threshold with "high-fidelity teleportation" (Section IV-A, refs
// [34]/[35]); this bench converts the architectures' delivered pairs into
// average teleportation fidelity — the number an application actually
// sees — including the classical 2/3 limit line.

#include <cstdio>

#include "quantum/channels.hpp"
#include "quantum/teleportation.hpp"
#include "repro_common.hpp"

int main() {
  using namespace qntn;
  using namespace qntn::quantum;

  Table table("Extension — teleportation through QNTN-delivered pairs");
  table.set_header({"resource pair", "path eta", "entanglement F (Uhlmann)",
                    "avg teleportation F", "beats classical 2/3"});
  struct Case {
    const char* name;
    double eta;
  };
  const Case cases[] = {
      {"threshold floor (2 hops @0.70)", 0.49},
      {"space-ground mean path", 0.79},
      {"air-ground mean path", 0.87},
      {"best zenith pass (2 hops @0.98)", 0.9604},
      {"single HAP hop", 0.93},
  };
  for (const Case& c : cases) {
    const Matrix pair = transmit_bell_half(c.eta);
    const double ent = quantum::bell_fidelity_after_damping(
        c.eta, FidelityConvention::Uhlmann);
    const double tel = average_teleportation_fidelity(pair);
    table.add_row({c.name, Table::num(c.eta, 3), Table::num(ent, 4),
                   Table::num(tel, 4),
                   tel > kClassicalTeleportationLimit ? "yes" : "NO"});
  }
  bench::emit(table, "ext_teleportation.csv");

  std::printf(
      "\nevery pair either architecture serves clears the classical limit "
      "with margin; the\npaper's 44 km / 90%% teleportation benchmark "
      "(ref. [34]) corresponds to the upper\nrows, and the 2%% fidelity "
      "edge of the air-ground architecture becomes a ~1.5%%\nedge at the "
      "application level.\n");
  return 0;
}
