// Performance of the simulator's per-time-step work: topology snapshot
// construction and one coverage-analysis step, at the paper's constellation
// sizes. A full Fig. 6 day is 2880 such steps.

#include <cstdio>

#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "perf_harness.hpp"
#include "sim/coverage.hpp"

int main(int argc, char** argv) {
  using namespace qntn;
  try {
    bench::PerfHarness harness("topology", argc, argv);
    const core::QntnConfig config;
    const std::uint64_t steps = harness.smoke() ? 30 : 300;

    for (const std::size_t sats : {std::size_t{6}, std::size_t{36},
                                   std::size_t{108}}) {
      const sim::NetworkModel model =
          core::build_space_ground_model(config, sats);
      const sim::TopologyBuilder topology(model, config.link_policy());
      harness.run_case("topology_snapshot_n" + std::to_string(sats), steps,
                       [&] {
                         double t = 0.0;
                         for (std::uint64_t i = 0; i < steps; ++i) {
                           bench::do_not_optimize(topology.graph_at(t));
                           t += 30.0;
                         }
                       });
      if (sats >= 36) {
        harness.run_case("coverage_step_n" + std::to_string(sats), steps, [&] {
          double t = 0.0;
          for (std::uint64_t i = 0; i < steps; ++i) {
            const net::Graph graph = topology.graph_at(t);
            bench::do_not_optimize(sim::all_lans_connected(model, graph));
            t += 30.0;
          }
        });
      }
    }

    {
      const sim::NetworkModel model = core::build_air_ground_model(config);
      const sim::TopologyBuilder topology(model, config.link_policy());
      const std::uint64_t iters = harness.smoke() ? 2'000 : 20'000;
      harness.run_case("air_ground_snapshot", iters, [&] {
        for (std::uint64_t i = 0; i < iters; ++i) {
          bench::do_not_optimize(topology.graph_at(0.0));
        }
      });
    }

    for (const std::size_t sats : {std::size_t{6}, std::size_t{36}}) {
      // Includes generating a full-day 30 s ephemeris per satellite.
      const std::uint64_t builds = harness.smoke() ? 1 : 3;
      harness.run_case("model_construction_n" + std::to_string(sats), builds,
                       [&] {
                         for (std::uint64_t i = 0; i < builds; ++i) {
                           bench::do_not_optimize(
                               core::build_space_ground_model(config, sats));
                         }
                       });
    }

    return harness.finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
