// Performance of the simulator's per-time-step work: topology snapshot
// construction and one coverage-analysis step, at the paper's constellation
// sizes. A full Fig. 6 day is 2880 such steps.

#include <benchmark/benchmark.h>

#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "sim/coverage.hpp"

namespace {

using namespace qntn;

void BM_TopologySnapshot(benchmark::State& state) {
  const core::QntnConfig config;
  const sim::NetworkModel model = core::build_space_ground_model(
      config, static_cast<std::size_t>(state.range(0)));
  const sim::TopologyBuilder topology(model, config.link_policy());
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology.graph_at(t));
    t += 30.0;
  }
}
BENCHMARK(BM_TopologySnapshot)->Arg(6)->Arg(36)->Arg(108);

void BM_CoverageStep(benchmark::State& state) {
  const core::QntnConfig config;
  const sim::NetworkModel model = core::build_space_ground_model(
      config, static_cast<std::size_t>(state.range(0)));
  const sim::TopologyBuilder topology(model, config.link_policy());
  double t = 0.0;
  for (auto _ : state) {
    const net::Graph graph = topology.graph_at(t);
    benchmark::DoNotOptimize(sim::all_lans_connected(model, graph));
    t += 30.0;
  }
}
BENCHMARK(BM_CoverageStep)->Arg(36)->Arg(108);

void BM_AirGroundSnapshot(benchmark::State& state) {
  const core::QntnConfig config;
  const sim::NetworkModel model = core::build_air_ground_model(config);
  const sim::TopologyBuilder topology(model, config.link_policy());
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology.graph_at(0.0));
  }
}
BENCHMARK(BM_AirGroundSnapshot);

void BM_ModelConstruction(benchmark::State& state) {
  const core::QntnConfig config;
  for (auto _ : state) {
    // Includes generating a full-day 30 s ephemeris per satellite.
    benchmark::DoNotOptimize(core::build_space_ground_model(
        config, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_ModelConstruction)->Arg(6)->Arg(36)->Unit(benchmark::kMillisecond);

}  // namespace
