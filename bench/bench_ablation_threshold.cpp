// Ablation A3: sensitivity of the headline numbers to the transmissivity
// threshold (the paper fixes 0.7 from its Fig. 5 reading and notes it "may
// be adjusted to meet the fidelity requirements of specific applications").
// Sweeps the threshold and reports the coverage / service / fidelity
// trade-off at 108 satellites plus the air-ground architecture.

#include <cstdio>

#include "repro_common.hpp"

int main() {
  using namespace qntn;

  Table table("Ablation A3 — transmissivity threshold sweep (108 satellites)");
  table.set_header({"threshold", "space cover [%]", "space served [%]",
                    "space fidelity", "air served [%]", "air fidelity"});
  for (const double threshold : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    core::QntnConfig config;
    config.transmissivity_threshold = threshold;
    const core::ArchitectureMetrics space = core::evaluate_space_ground(config, 108);
    const core::ArchitectureMetrics air = core::evaluate_air_ground(config);
    table.add_row({Table::num(threshold, 2),
                   Table::num(space.coverage_percent, 2),
                   Table::num(space.served_percent, 2),
                   Table::num(space.mean_fidelity, 4),
                   Table::num(air.served_percent, 2),
                   Table::num(air.mean_fidelity, 4)});
  }
  bench::emit(table, "ablation_threshold.csv");
  std::printf(
      "\nthe trade-off the paper's Section IV-A gestures at: lowering the "
      "threshold buys\ncoverage and service at the cost of fidelity; above "
      "~0.9 the HAP links themselves\ndrop out and the air-ground "
      "architecture loses its 100%% guarantee.\n");
  return 0;
}
