// Extension: capacity-limited serving (relaxing the paper's "infinite
// queue capacity / every node serves all requests" assumption, Section
// III-D). Sweeps the per-node capacity and reports served requests for
// both architectures. The single HAP is a serving bottleneck the
// infinite-capacity model hides; the constellation degrades more
// gracefully because load spreads across whichever satellites are up.

#include <cstdio>

#include "repro_common.hpp"
#include "sim/capacity.hpp"

namespace {

using namespace qntn;

/// Average capacity-limited served fraction over the scenario's snapshots.
double served_with_capacity(const sim::NetworkModel& model,
                            const sim::TopologyBuilder& topology,
                            const core::QntnConfig& config,
                            std::size_t capacity) {
  Rng rng(config.request_seed);
  const auto requests =
      sim::generate_requests(model, config.request_count, rng);
  const sim::ScenarioConfig sc = config.scenario_config();
  RunningStats served;
  for (std::size_t step = 0; step < sc.request_steps; ++step) {
    const double t = static_cast<double>(step) * sc.request_step_interval;
    sim::CapacityPolicy policy;
    policy.per_node_capacity = capacity;
    const sim::CapacityServeResult result = sim::serve_requests_with_capacity(
        topology.graph_at(t), requests, policy);
    served.add(result.outcome.served_fraction());
  }
  return 100.0 * served.mean();
}

}  // namespace

int main() {
  core::QntnConfig config;
  config.request_steps = 25;  // capacity serving is costlier per snapshot

  const sim::NetworkModel air = core::build_air_ground_model(config);
  const sim::TopologyBuilder air_topology(air, config.link_policy());
  const sim::NetworkModel space = core::build_space_ground_model(config, 108);
  const sim::TopologyBuilder space_topology(space, config.link_policy());

  Table table("Extension — served % vs per-node capacity (100 requests)");
  table.set_header({"capacity", "air-ground served [%]",
                    "space-ground served [%]"});
  for (const std::size_t capacity : {5u, 10u, 20u, 40u, 60u, 80u, 100u}) {
    table.add_row(
        {std::to_string(capacity),
         Table::num(served_with_capacity(air, air_topology, config, capacity), 2),
         Table::num(
             served_with_capacity(space, space_topology, config, capacity),
             2)});
  }
  bench::emit(table, "ext_capacity.csv");

  std::printf(
      "\nboth architectures funnel through a tiny relay set — the HAP, or "
      "the one-or-two\nsatellites currently above threshold — so both "
      "scale linearly with capacity and the\nspace-ground curve is just "
      "the air-ground curve scaled by its ~56%% availability.\nThe paper's "
      "infinite-capacity assumption therefore inflates absolute service "
      "for both\narchitectures but does not change their ordering.\n");
  return 0;
}
