// Performance of the routing layer on QNTN-shaped graphs (31 ground nodes
// + n satellites): the paper's distance-vector Algorithm 1 vs single-source
// Bellman-Ford vs Dijkstra.

#include <cstdio>

#include "common/rng.hpp"
#include "net/routing.hpp"
#include "perf_harness.hpp"

namespace {

using namespace qntn;
using namespace qntn::net;

/// QNTN-like topology: three fiber cliques plus satellites linked to random
/// ground nodes (threshold-passing links only).
Graph qntn_like_graph(std::size_t satellites, std::uint64_t seed) {
  Rng rng(seed);
  Graph g;
  const std::size_t lan_sizes[] = {5, 15, 11};
  std::size_t base = 0;
  for (const std::size_t size : lan_sizes) {
    for (std::size_t i = 0; i < size; ++i) g.add_node();
    for (std::size_t i = 0; i < size; ++i) {
      for (std::size_t j = i + 1; j < size; ++j) {
        g.add_edge(base + i, base + j, 0.999);
      }
    }
    base += size;
  }
  for (std::size_t s = 0; s < satellites; ++s) {
    const NodeId sat = g.add_node();
    // Each visible satellite sees a handful of ground nodes.
    const auto links = static_cast<std::size_t>(rng.uniform_int(2, 8));
    for (std::size_t l = 0; l < links; ++l) {
      const auto ground = static_cast<NodeId>(rng.uniform_int(0, 30));
      g.add_edge(sat, ground, rng.uniform(0.7, 0.98));
    }
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bench::PerfHarness harness("routing", argc, argv);
    const std::uint64_t iters = harness.smoke() ? 50 : 500;

    for (const std::size_t sats : {std::size_t{6}, std::size_t{36},
                                   std::size_t{108}}) {
      const Graph g = qntn_like_graph(sats, 1);
      harness.run_case("bellman_ford_tree_n" + std::to_string(sats), iters,
                       [&] {
                         for (std::uint64_t i = 0; i < iters; ++i) {
                           bench::do_not_optimize(
                               bellman_ford_tree(g, 0, CostMetric::InverseEta));
                         }
                       });
      harness.run_case("dijkstra_n" + std::to_string(sats), iters, [&] {
        for (std::uint64_t i = 0; i < iters; ++i) {
          bench::do_not_optimize(
              dijkstra(g, 0, g.node_count() - 1, CostMetric::InverseEta));
        }
      });
    }

    for (const std::size_t sats : {std::size_t{6}, std::size_t{36}}) {
      const Graph g = qntn_like_graph(sats, 1);
      const std::uint64_t builds = harness.smoke() ? 2 : 10;
      harness.run_case("distance_vector_n" + std::to_string(sats), builds,
                       [&] {
                         for (std::uint64_t i = 0; i < builds; ++i) {
                           bench::do_not_optimize(DistanceVectorRouter(g));
                         }
                       });
    }

    {
      const Graph g = qntn_like_graph(108, 1);
      const std::uint64_t rounds = harness.smoke() ? 5 : 50;
      harness.run_case("serve_hundred_requests", rounds * 15, [&] {
        Rng rng(2);
        for (std::uint64_t r = 0; r < rounds; ++r) {
          // 100 requests from ~15 distinct sources, the Fig. 7 inner loop.
          for (int i = 0; i < 15; ++i) {
            const auto src = static_cast<NodeId>(rng.uniform_int(0, 30));
            bench::do_not_optimize(
                bellman_ford_tree(g, src, CostMetric::InverseEta));
          }
        }
      });
    }

    return harness.finish();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
