// Performance of the routing layer on QNTN-shaped graphs (31 ground nodes
// + n satellites): the paper's distance-vector Algorithm 1 vs single-source
// Bellman-Ford vs Dijkstra.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "net/routing.hpp"

namespace {

using namespace qntn;
using namespace qntn::net;

/// QNTN-like topology: three fiber cliques plus satellites linked to random
/// ground nodes (threshold-passing links only).
Graph qntn_like_graph(std::size_t satellites, std::uint64_t seed) {
  Rng rng(seed);
  Graph g;
  const std::size_t lan_sizes[] = {5, 15, 11};
  std::size_t base = 0;
  for (const std::size_t size : lan_sizes) {
    for (std::size_t i = 0; i < size; ++i) g.add_node();
    for (std::size_t i = 0; i < size; ++i) {
      for (std::size_t j = i + 1; j < size; ++j) {
        g.add_edge(base + i, base + j, 0.999);
      }
    }
    base += size;
  }
  for (std::size_t s = 0; s < satellites; ++s) {
    const NodeId sat = g.add_node();
    // Each visible satellite sees a handful of ground nodes.
    const auto links = static_cast<std::size_t>(rng.uniform_int(2, 8));
    for (std::size_t l = 0; l < links; ++l) {
      const auto ground = static_cast<NodeId>(rng.uniform_int(0, 30));
      g.add_edge(sat, ground, rng.uniform(0.7, 0.98));
    }
  }
  return g;
}

void BM_BellmanFordTree(benchmark::State& state) {
  const Graph g = qntn_like_graph(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bellman_ford_tree(g, 0, CostMetric::InverseEta));
  }
}
BENCHMARK(BM_BellmanFordTree)->Arg(6)->Arg(36)->Arg(108);

void BM_Dijkstra(benchmark::State& state) {
  const Graph g = qntn_like_graph(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dijkstra(g, 0, g.node_count() - 1, CostMetric::InverseEta));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(6)->Arg(36)->Arg(108);

void BM_DistanceVectorConvergence(benchmark::State& state) {
  const Graph g = qntn_like_graph(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DistanceVectorRouter(g));
  }
}
BENCHMARK(BM_DistanceVectorConvergence)->Arg(6)->Arg(36);

void BM_ServeHundredRequests(benchmark::State& state) {
  const Graph g = qntn_like_graph(108, 1);
  Rng rng(2);
  for (auto _ : state) {
    // 100 requests from ~15 distinct sources, the Fig. 7 inner loop.
    for (int i = 0; i < 15; ++i) {
      const auto src = static_cast<NodeId>(rng.uniform_int(0, 30));
      benchmark::DoNotOptimize(bellman_ford_tree(g, src, CostMetric::InverseEta));
    }
  }
}
BENCHMARK(BM_ServeHundredRequests);

}  // namespace
