// Extension: trusted-node QKD service over the same QNTN links. The
// paper's related work contrasts entanglement distribution with QKD-only
// regional networks (ref. [14], Micius); this bench reports what each QNTN
// architecture would deliver as daily BB84 secret key between the LAN
// gateways, using the per-time-step link transmissivities.

#include <cstdio>

#include "channel/qkd.hpp"
#include "repro_common.hpp"

int main() {
  using namespace qntn;

  const core::QntnConfig config;
  const channel::QkdSystem system;

  // Air-ground: constant link to each LAN; key rate of the worst hop gates
  // a trusted-node relay through the HAP.
  const sim::NetworkModel air = core::build_air_ground_model(config);
  const sim::TopologyBuilder air_topology(air, config.link_policy());
  double air_worst_eta = 1.0;
  for (const sim::LinkRecord& link : air_topology.links_at(0.0)) {
    const bool hap_link = air.node(link.a).kind == sim::NodeKind::Hap ||
                          air.node(link.b).kind == sim::NodeKind::Hap;
    if (hap_link) air_worst_eta = std::min(air_worst_eta, link.transmissivity);
  }
  const double air_rate = system.key_rate(air_worst_eta);
  const double air_daily = air_rate * 86'400.0;

  // Space-ground: per 30 s step, the best ground-satellite link (if any)
  // produces key; integrate over the day.
  const sim::NetworkModel space = core::build_space_ground_model(config, 108);
  const sim::TopologyBuilder space_topology(space, config.link_policy());
  double space_daily = 0.0;
  std::size_t steps_with_link = 0;
  const std::size_t steps = 2880;
  for (std::size_t i = 0; i < steps; ++i) {
    const double t = static_cast<double>(i) * 30.0;
    double best = 0.0;
    for (const sim::LinkRecord& link : space_topology.links_at(t)) {
      const bool sat_link =
          space.node(link.a).kind == sim::NodeKind::Satellite ||
          space.node(link.b).kind == sim::NodeKind::Satellite;
      if (sat_link) best = std::max(best, link.transmissivity);
    }
    if (best > 0.0) {
      ++steps_with_link;
      space_daily += system.key_rate(best) * 30.0;
    }
  }

  Table table("Extension — daily BB84 secret key over QNTN links");
  table.set_header({"architecture", "link availability [%]",
                    "key rate when up [Mb/s]", "daily key [Gb]"});
  table.add_row({"air-ground (worst HAP hop)", "100.00",
                 Table::num(air_rate / 1e6, 2),
                 Table::num(air_daily / 1e9, 2)});
  table.add_row(
      {"space-ground @108 (best pass)",
       Table::num(100.0 * static_cast<double>(steps_with_link) /
                      static_cast<double>(steps), 2),
       Table::num(space_daily /
                      (static_cast<double>(steps_with_link) * 30.0) / 1e6,
                  2),
       Table::num(space_daily / 1e9, 2)});
  bench::emit(table, "ext_qkd.csv");

  std::printf("\nQKD cutoff transmissivity of this system: %.4f (far below "
              "every serving QNTN link),\nso unlike entanglement "
              "distribution the QKD service is availability-limited, not\n"
              "threshold-limited — the same ordering as Table III but for a "
              "different physical reason.\n",
              system.cutoff_transmissivity());
  return 0;
}
