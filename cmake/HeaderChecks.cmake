# Self-contained-header check: compile every public header in isolation so a
# header can never silently depend on what its includers happened to include
# first. For each header a one-line TU `#include "<header>"` is generated
# under the build tree and compiled (never linked) in an OBJECT library with
# the same warnings/-Werror set as the production code.
#
# Enabled with -DQNTN_HEADER_CHECKS=ON (the lint preset and CI lint job turn
# it on); the target is `header_checks`, built as part of `all`.

function(qntn_add_header_checks)
  set(gen_dir ${CMAKE_BINARY_DIR}/header_checks)
  file(MAKE_DIRECTORY ${gen_dir})

  file(GLOB_RECURSE src_headers CONFIGURE_DEPENDS
    ${CMAKE_SOURCE_DIR}/src/*.hpp)
  file(GLOB bench_headers CONFIGURE_DEPENDS ${CMAKE_SOURCE_DIR}/bench/*.hpp)
  set(tool_headers ${CMAKE_SOURCE_DIR}/tools/cli_common.hpp)

  set(tus "")
  foreach(header IN LISTS src_headers bench_headers tool_headers)
    file(RELATIVE_PATH rel ${CMAKE_SOURCE_DIR} ${header})
    # src/obs/trace.hpp is included as "obs/trace.hpp"; bench/ and tools/
    # headers are included by their repo-relative path.
    string(REGEX REPLACE "^src/" "" include_path ${rel})
    string(REPLACE "/" "_" tu_name ${rel})
    string(REGEX REPLACE "\\.hpp$" "_check.cpp" tu_name ${tu_name})
    set(tu ${gen_dir}/${tu_name})
    set(tu_content "#include \"${include_path}\"\n")
    # Only rewrite on change so reconfigures don't force a recompile.
    set(existing "")
    if(EXISTS ${tu})
      file(READ ${tu} existing)
    endif()
    if(NOT existing STREQUAL tu_content)
      file(WRITE ${tu} ${tu_content})
    endif()
    list(APPEND tus ${tu})
  endforeach()

  add_library(header_checks OBJECT ${tus})
  target_include_directories(header_checks PRIVATE
    ${CMAKE_SOURCE_DIR}/src ${CMAKE_SOURCE_DIR})
  target_link_libraries(header_checks PRIVATE qntn_warnings Threads::Threads)
endfunction()
