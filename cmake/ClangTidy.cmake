# `tidy` target: run clang-tidy over the whole tree using the repo-root
# .clang-tidy config and the exported compile database. Gated on the tools
# being installed — the default dev container only ships GCC, so the target
# simply does not exist there and the CI lint job (which installs clang)
# provides the enforcement.

find_program(QNTN_CLANG_TIDY NAMES clang-tidy)
find_program(QNTN_RUN_CLANG_TIDY NAMES run-clang-tidy run-clang-tidy.py)

if(QNTN_CLANG_TIDY AND QNTN_RUN_CLANG_TIDY)
  set(CMAKE_EXPORT_COMPILE_COMMANDS ON CACHE BOOL "" FORCE)
  add_custom_target(tidy
    COMMAND ${QNTN_RUN_CLANG_TIDY}
      -clang-tidy-binary ${QNTN_CLANG_TIDY}
      -p ${CMAKE_BINARY_DIR}
      -quiet
      "${CMAKE_SOURCE_DIR}/(src|tools|bench|tests|examples)/.*"
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "clang-tidy over src/ tools/ bench/ tests/ examples/"
    VERBATIM)
else()
  message(STATUS "clang-tidy/run-clang-tidy not found; `tidy` target disabled")
endif()
