#include "plan/contact_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "plan/contact_topology.hpp"

namespace qntn::plan {
namespace {

struct Edge {
  net::NodeId a = 0;
  net::NodeId b = 0;
  double eta = 0.0;
};

std::vector<Edge> normalized(const std::vector<sim::LinkRecord>& links) {
  std::vector<Edge> out;
  out.reserve(links.size());
  for (const sim::LinkRecord& link : links) {
    out.push_back({std::min(link.a, link.b), std::max(link.a, link.b),
                   link.transmissivity});
  }
  std::sort(out.begin(), out.end(), [](const Edge& x, const Edge& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  return out;
}

TEST(ContactPlan, WindowsAreSortedClippedAndSampled) {
  const core::QntnConfig config;
  const sim::NetworkModel model = core::build_space_ground_model(config, 12);
  const ContactPlan plan = compile_contact_plan(model, config.link_policy(),
                                                config.plan_options());
  ASSERT_GT(plan.windows().size(), 0u);
  double prev_start = 0.0;
  for (const ContactWindow& window : plan.windows()) {
    EXPECT_GE(window.start, 0.0);
    EXPECT_LE(window.end, plan.horizon());
    EXPECT_LT(window.start, window.end);
    EXPECT_GE(window.start, prev_start);
    prev_start = window.start;
    // Profile spans the window with strictly increasing times.
    ASSERT_GE(window.times.size(), 2u);
    ASSERT_EQ(window.times.size(), window.etas.size());
    EXPECT_DOUBLE_EQ(window.times.front(), window.start);
    EXPECT_DOUBLE_EQ(window.times.back(), window.end);
    for (std::size_t i = 1; i < window.times.size(); ++i) {
      EXPECT_GT(window.times[i], window.times[i - 1]);
    }
  }
  const ContactPlanStats stats = plan.stats();
  EXPECT_EQ(stats.window_count, plan.windows().size());
  EXPECT_GT(stats.total_contact, 0.0);
}

// The core equivalence claim: at every grid time the plan realises exactly
// the links the per-step rebuild does (pair sets identical, transmissivities
// within the sample-compression tolerance).
TEST(ContactPlan, MatchesRebuildAtEveryGridTime) {
  const core::QntnConfig config;
  const sim::NetworkModel model = core::build_space_ground_model(config, 6);
  const sim::LinkPolicy policy = config.link_policy();
  const sim::TopologyBuilder rebuild(model, policy);
  const ContactPlan plan =
      compile_contact_plan(model, policy, config.plan_options());
  const ContactPlanTopology topology(plan, model);

  std::size_t dynamic_checked = 0;
  for (double t = 0.0; t <= 86'400.0; t += 30.0) {
    const std::vector<Edge> expected = normalized(rebuild.links_at(t));
    const std::vector<Edge> actual = normalized(topology.links_at(t));
    ASSERT_EQ(actual.size(), expected.size()) << "t = " << t;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].a, expected[i].a) << "t = " << t;
      EXPECT_EQ(actual[i].b, expected[i].b) << "t = " << t;
      EXPECT_NEAR(actual[i].eta, expected[i].eta, 1e-3) << "t = " << t;
    }
    dynamic_checked += expected.size();
  }
  EXPECT_GT(dynamic_checked, 0u);
}

TEST(ContactPlan, PairWindowsAreSymmetricInArguments) {
  const core::QntnConfig config;
  const sim::NetworkModel model = core::build_space_ground_model(config, 6);
  const ContactPlan plan = compile_contact_plan(model, config.link_policy(),
                                                config.plan_options());
  ASSERT_GT(plan.windows().size(), 0u);
  const ContactWindow& window = plan.windows().front();
  EXPECT_EQ(plan.pair_windows(window.a, window.b).size(),
            plan.pair_windows(window.b, window.a).size());
  EXPECT_GT(plan.pair_windows(window.a, window.b).size(), 0u);
}

TEST(ContactPlan, EtaInterpolationClampsAndHitsSamples) {
  ContactWindow window;
  window.a = 0;
  window.b = 1;
  window.start = 10.0;
  window.end = 40.0;
  window.times = {10.0, 20.0, 40.0};
  window.etas = {0.8, 0.9, 0.7};
  EXPECT_DOUBLE_EQ(window.eta_at(10.0), 0.8);
  EXPECT_DOUBLE_EQ(window.eta_at(20.0), 0.9);
  EXPECT_DOUBLE_EQ(window.eta_at(40.0), 0.7);
  EXPECT_DOUBLE_EQ(window.eta_at(15.0), 0.85);
  EXPECT_DOUBLE_EQ(window.eta_at(30.0), 0.8);
  // Clamped outside [start, end].
  EXPECT_DOUBLE_EQ(window.eta_at(0.0), 0.8);
  EXPECT_DOUBLE_EQ(window.eta_at(100.0), 0.7);
}

TEST(ContactPlan, TighterToleranceKeepsMoreSamples) {
  const core::QntnConfig config;
  const sim::NetworkModel model = core::build_space_ground_model(config, 6);
  ContactPlanOptions loose = config.plan_options();
  loose.sample_tolerance = 1e-2;
  ContactPlanOptions tight = config.plan_options();
  tight.sample_tolerance = 0.0;  // keep every grid sample
  const ContactPlan coarse =
      compile_contact_plan(model, config.link_policy(), loose);
  const ContactPlan fine =
      compile_contact_plan(model, config.link_policy(), tight);
  EXPECT_EQ(coarse.windows().size(), fine.windows().size());
  EXPECT_LT(coarse.stats().sample_count, fine.stats().sample_count);
}

}  // namespace
}  // namespace qntn::plan
