#include "plan/session_scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "orbit/ephemeris.hpp"

namespace qntn::plan {
namespace {

// Two single-node LANs plus two satellites with trivial (stationary)
// ephemerides; contact windows are hand-crafted so every schedule decision
// is checkable on paper.
sim::NetworkModel two_lan_model(std::size_t n_satellites) {
  sim::NetworkModel model;
  const channel::OpticalTerminal terminal{1.2, 1e-7};
  model.add_lan("A", {geo::Geodetic::from_degrees(35.0, -90.0, 0.0)}, terminal);
  model.add_lan("B", {geo::Geodetic::from_degrees(36.0, -84.0, 0.0)}, terminal);
  for (std::size_t i = 0; i < n_satellites; ++i) {
    const Vec3 position{7'000'000.0, 0.0, static_cast<double>(i) * 1'000.0};
    model.add_satellite("sat" + std::to_string(i),
                        orbit::Ephemeris({position, position}, 30.0), terminal);
  }
  return model;
}

ContactWindow window(net::NodeId a, net::NodeId b, double start, double end) {
  ContactWindow w;
  w.a = a;
  w.b = b;
  w.start = start;
  w.end = end;
  w.times = {start, end};
  w.etas = {0.8, 0.8};
  return w;
}

// Node ids: LAN A node = 0, LAN B node = 1, satellites = 2 and 3.
ContactPlan crafted_plan() {
  std::vector<ContactWindow> windows;
  // Relay 2 sees A over [0, 100) and B over [40, 120): bridge [40, 100).
  windows.push_back(window(0, 2, 0.0, 100.0));
  windows.push_back(window(1, 2, 40.0, 120.0));
  // Relay 3 sees A over [90, 200) and B over [80, 210): bridge [90, 200).
  windows.push_back(window(0, 3, 90.0, 200.0));
  windows.push_back(window(1, 3, 80.0, 210.0));
  return ContactPlan(std::move(windows), {}, 4, 86'400.0);
}

TEST(SessionScheduler, BridgeIntervalsAndTimeline) {
  const sim::NetworkModel model = two_lan_model(2);
  const ContactPlan plan = crafted_plan();
  const SessionScheduler scheduler(plan, model);

  const auto& bridges = scheduler.pair_bridges(0, 1);
  ASSERT_EQ(bridges.size(), 2u);
  ASSERT_EQ(bridges[0].intervals.size(), 1u);
  EXPECT_EQ(bridges[0].intervals[0], (Interval{40.0, 100.0}));
  ASSERT_EQ(bridges[1].intervals.size(), 1u);
  EXPECT_EQ(bridges[1].intervals[0], (Interval{90.0, 200.0}));

  const auto& timeline = scheduler.pair_timeline(0, 1);
  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_EQ(timeline[0], (Interval{40.0, 200.0}));
  // Argument order must not matter.
  EXPECT_EQ(scheduler.pair_timeline(1, 0), timeline);
}

TEST(SessionScheduler, EarliestFeasiblePlacementWithHandover) {
  const sim::NetworkModel model = two_lan_model(2);
  const ContactPlan plan = crafted_plan();
  const SessionScheduler scheduler(plan, model);

  // 100 s of bridging, available from t = 0: must start at 40 (the first
  // feasible instant), ride relay 2 until its bridge ends at 100, then hand
  // over to relay 3 — exactly one handover.
  const SessionSchedule schedule =
      scheduler.schedule({{0, 1, /*arrival=*/0.0, /*duration=*/100.0}});
  EXPECT_TRUE(schedule.blocked.empty());
  ASSERT_EQ(schedule.sessions.size(), 1u);
  const ScheduledSession& session = schedule.sessions[0];
  EXPECT_DOUBLE_EQ(session.start, 40.0);
  EXPECT_DOUBLE_EQ(session.end, 140.0);
  ASSERT_EQ(session.relays.size(), 2u);
  EXPECT_EQ(session.relays[0], 2u);
  EXPECT_EQ(session.relays[1], 3u);
  EXPECT_EQ(session.handovers(), 1u);
  EXPECT_DOUBLE_EQ(schedule.wait.mean(), 40.0);
}

TEST(SessionScheduler, SingleRelayWhenOneSuffices) {
  const sim::NetworkModel model = two_lan_model(2);
  const ContactPlan plan = crafted_plan();
  const SessionScheduler scheduler(plan, model);
  // Arriving at 150 with a short session: relay 3 alone covers it.
  const SessionSchedule schedule = scheduler.schedule({{0, 1, 150.0, 30.0}});
  ASSERT_EQ(schedule.sessions.size(), 1u);
  EXPECT_DOUBLE_EQ(schedule.sessions[0].start, 150.0);
  EXPECT_EQ(schedule.sessions[0].relays, std::vector<net::NodeId>{3});
  EXPECT_EQ(schedule.sessions[0].handovers(), 0u);
  EXPECT_DOUBLE_EQ(schedule.wait.mean(), 0.0);
}

TEST(SessionScheduler, BlocksWhatNeverFits) {
  const sim::NetworkModel model = two_lan_model(2);
  const ContactPlan plan = crafted_plan();
  const SessionScheduler scheduler(plan, model);
  // The whole feasibility timeline is 160 s; 300 s can never fit, and an
  // arrival after the last window finds nothing either.
  const SessionSchedule schedule =
      scheduler.schedule({{0, 1, 0.0, 300.0}, {0, 1, 250.0, 10.0}});
  EXPECT_TRUE(schedule.sessions.empty());
  EXPECT_EQ(schedule.blocked, (std::vector<std::size_t>{0, 1}));
  EXPECT_DOUBLE_EQ(schedule.blocked_fraction(2), 1.0);
}

TEST(SessionScheduler, StaticLinksBridgePermanently) {
  // A HAP wired to both LANs by static links bridges at any hour with no
  // handovers (the air-ground architecture's defining property).
  sim::NetworkModel model;
  const channel::OpticalTerminal terminal{1.2, 1e-7};
  model.add_lan("A", {geo::Geodetic::from_degrees(35.0, -90.0, 0.0)}, terminal);
  model.add_lan("B", {geo::Geodetic::from_degrees(36.0, -84.0, 0.0)}, terminal);
  const net::NodeId hap = model.add_hap(
      "HAP", geo::Geodetic::from_degrees(35.5, -87.0, 30'000.0), terminal);
  std::vector<sim::LinkRecord> static_links = {{0, hap, 0.9}, {1, hap, 0.9}};
  const ContactPlan plan({}, std::move(static_links), 3, 86'400.0);
  const SessionScheduler scheduler(plan, model);
  const SessionSchedule schedule = scheduler.schedule({{0, 1, 50'000.0, 3'600.0}});
  ASSERT_EQ(schedule.sessions.size(), 1u);
  EXPECT_DOUBLE_EQ(schedule.sessions[0].start, 50'000.0);
  EXPECT_EQ(schedule.sessions[0].relays, std::vector<net::NodeId>{hap});
  EXPECT_EQ(schedule.sessions[0].handovers(), 0u);
}

TEST(SessionScheduler, RejectsInvalidRequests) {
  const sim::NetworkModel model = two_lan_model(1);
  const ContactPlan plan({}, {}, 3, 86'400.0);
  const SessionScheduler scheduler(plan, model);
  EXPECT_THROW((void)scheduler.schedule({{0, 0, 0.0, 10.0}}),
               PreconditionError);
  EXPECT_THROW((void)scheduler.schedule({{0, 1, 0.0, 0.0}}), PreconditionError);
}

TEST(SessionScheduler, CompiledPlanEndToEnd) {
  // Smoke the scheduler on a real compiled plan: a dense constellation must
  // admit short sessions between the paper's LANs.
  const core::QntnConfig config;
  const sim::NetworkModel model = core::build_space_ground_model(config, 54);
  const ContactPlan plan = compile_contact_plan(model, config.link_policy(),
                                                config.plan_options());
  const SessionScheduler scheduler(plan, model);
  std::vector<SessionRequest> requests;
  for (std::size_t a = 0; a < model.lan_count(); ++a) {
    for (std::size_t b = a + 1; b < model.lan_count(); ++b) {
      requests.push_back({a, b, 0.0, 60.0});
    }
  }
  const SessionSchedule schedule = scheduler.schedule(requests);
  EXPECT_GT(schedule.sessions.size(), 0u);
  for (const ScheduledSession& session : schedule.sessions) {
    EXPECT_GE(session.start, 0.0);
    EXPECT_GT(session.relays.size(), 0u);
  }
}

}  // namespace
}  // namespace qntn::plan
