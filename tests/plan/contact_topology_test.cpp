#include "plan/contact_topology.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"

namespace qntn::plan {
namespace {

TEST(ContactPlanTopology, GraphMatchesRebuildSnapshot) {
  const core::QntnConfig config;
  const sim::NetworkModel model = core::build_space_ground_model(config, 12);
  const sim::LinkPolicy policy = config.link_policy();
  const sim::TopologyBuilder rebuild(model, policy);
  const ContactPlan plan =
      compile_contact_plan(model, policy, config.plan_options());
  const ContactPlanTopology topology(plan, model);

  for (const double t : {0.0, 864.0, 7'777.0, 43'200.0, 86'400.0}) {
    const net::Graph expected = rebuild.graph_at(t);
    const net::Graph actual = topology.graph_at(t);
    EXPECT_EQ(actual.node_count(), expected.node_count()) << "t = " << t;
    EXPECT_EQ(actual.edge_count(), expected.edge_count()) << "t = " << t;
    EXPECT_EQ(actual.components(), expected.components()) << "t = " << t;
  }
}

TEST(ContactPlanTopology, BackwardQueriesReplayCorrectly) {
  const core::QntnConfig config;
  const sim::NetworkModel model = core::build_space_ground_model(config, 6);
  const ContactPlan plan = compile_contact_plan(model, config.link_policy(),
                                                config.plan_options());
  const ContactPlanTopology warm(plan, model);
  // Query far ahead, then jump back: random access must match a fresh
  // provider (the partition is immutable — there is no cursor to rewind).
  (void)warm.links_at(80'000.0);
  for (const double t : {120.0, 5'000.0, 60.0}) {
    const ContactPlanTopology cold(plan, model);
    const auto expected = cold.links_at(t);
    const auto actual = warm.links_at(t);
    ASSERT_EQ(actual.size(), expected.size()) << "t = " << t;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].a, expected[i].a);
      EXPECT_EQ(actual[i].b, expected[i].b);
      EXPECT_DOUBLE_EQ(actual[i].transmissivity, expected[i].transmissivity);
    }
  }
}

TEST(ContactPlanTopology, EventTimelineHasTwoEventsPerWindow) {
  const core::QntnConfig config;
  const sim::NetworkModel model = core::build_space_ground_model(config, 6);
  const ContactPlan plan = compile_contact_plan(model, config.link_policy(),
                                                config.plan_options());
  const ContactPlanTopology topology(plan, model);
  // Two events per window, except windows clipped at the horizon never
  // close.
  std::size_t clipped = 0;
  for (const ContactWindow& window : plan.windows()) {
    if (window.end >= plan.horizon()) ++clipped;
  }
  EXPECT_EQ(topology.event_count(), 2 * plan.windows().size() - clipped);
}

// The epoch partition pinned against the raw event list: epoch boundaries
// are exactly the distinct event times (opens at window starts, closes at
// non-clipped window ends) preceded by the -inf epoch 0, and each epoch's
// active-window row matches a brute-force "start <= t < end" scan at the
// epoch's start time.
TEST(ContactPlanTopology, EpochPartitionMatchesEventList) {
  for (const std::size_t n :
       {std::size_t{6}, std::size_t{54}, std::size_t{108}}) {
    SCOPED_TRACE(std::to_string(n) + " satellites");
    const core::QntnConfig config;
    const sim::NetworkModel model = core::build_space_ground_model(config, n);
    const ContactPlan plan = compile_contact_plan(model, config.link_policy(),
                                                  config.plan_options());
    const ContactPlanTopology topology(plan, model);

    std::set<double> boundaries;
    for (const ContactWindow& window : plan.windows()) {
      boundaries.insert(window.start);
      if (window.end < plan.horizon()) boundaries.insert(window.end);
    }
    ASSERT_EQ(topology.epoch_count(), boundaries.size() + 1);
    EXPECT_EQ(topology.epoch_start(0),
              -std::numeric_limits<double>::infinity());
    std::size_t epoch = 1;
    for (const double boundary : boundaries) {
      EXPECT_EQ(topology.epoch_start(epoch), boundary);
      ++epoch;
    }

    for (std::size_t e = 0; e < topology.epoch_count(); ++e) {
      const double t = e == 0 ? 0.0 : topology.epoch_start(e);
      EXPECT_EQ(topology.epoch_of(t), e == 0 ? topology.epoch_of(0.0) : e);
      std::vector<std::size_t> expected;
      for (std::size_t w = 0; w < plan.windows().size(); ++w) {
        const ContactWindow& window = plan.windows()[w];
        const bool open_ended = window.end >= plan.horizon();
        if (window.start <= t && (t < window.end || open_ended)) {
          expected.push_back(w);
        }
      }
      if (e == 0) expected.clear();  // epoch 0 precedes every event
      EXPECT_EQ(topology.epoch_window_ids(e), expected) << "epoch " << e;
    }
  }
}

TEST(ContactPlanTopology, EpochOfBracketsBoundaries) {
  const core::QntnConfig config;
  const sim::NetworkModel model = core::build_space_ground_model(config, 6);
  const ContactPlan plan = compile_contact_plan(model, config.link_policy(),
                                                config.plan_options());
  const ContactPlanTopology topology(plan, model);
  ASSERT_GE(topology.epoch_count(), 3u);
  for (std::size_t e = 1; e < topology.epoch_count(); ++e) {
    const double start = topology.epoch_start(e);
    // A query exactly at the boundary lands in the new epoch (events with
    // time <= t are applied); an instant earlier still sees the old one.
    EXPECT_EQ(topology.epoch_of(start), e);
    EXPECT_EQ(topology.epoch_of(std::nextafter(start, -1.0)), e - 1);
  }
  // Before the first event and beyond the horizon.
  EXPECT_EQ(topology.epoch_of(-1.0e9), 0u);
  EXPECT_EQ(topology.epoch_of(1.0e12), topology.epoch_count() - 1);
}

TEST(ContactPlanTopology, SnapshotRefreshMatchesRebuiltGraph) {
  // Riding one snapshot slot across epochs and times must give exactly the
  // graph a cold graph_at builds: same edges, same transmissivities.
  const core::QntnConfig config;
  const sim::NetworkModel model = core::build_space_ground_model(config, 12);
  const ContactPlan plan = compile_contact_plan(model, config.link_policy(),
                                                config.plan_options());
  const ContactPlanTopology topology(plan, model);
  sim::TopologySnapshot snap;
  for (const double t : {0.0, 30.0, 60.0, 7'777.0, 7'807.0, 43'200.0, 60.0}) {
    topology.snapshot_at(t, snap);
    const net::Graph expected = topology.graph_at(t);
    ASSERT_EQ(snap.graph.edge_count(), expected.edge_count()) << "t = " << t;
    for (std::size_t i = 0; i < expected.edge_count(); ++i) {
      EXPECT_EQ(snap.graph.edges()[i].a, expected.edges()[i].a);
      EXPECT_EQ(snap.graph.edges()[i].b, expected.edges()[i].b);
      EXPECT_EQ(snap.graph.edges()[i].transmissivity,
                expected.edges()[i].transmissivity)
          << "t = " << t << " edge " << i;
    }
  }
}

// Acceptance check for the whole control plane: the scenario pipeline
// produces the same Eq. 6 coverage (to < 0.1 pp) and the identical served
// count through either topology backend, at the paper's sweep extremes.
TEST(ContactPlanTopology, ScenarioEquivalenceAcrossModes) {
  for (const std::size_t n : {std::size_t{6}, std::size_t{54}, std::size_t{108}}) {
    core::QntnConfig config;
    config.topology_mode = core::TopologyMode::Rebuild;
    const core::ArchitectureMetrics rebuild = core::evaluate_space_ground(config, n);
    config.topology_mode = core::TopologyMode::ContactPlan;
    const core::ArchitectureMetrics contact = core::evaluate_space_ground(config, n);
    EXPECT_NEAR(contact.coverage_percent, rebuild.coverage_percent, 0.1)
        << n << " satellites";
    EXPECT_DOUBLE_EQ(contact.served_percent, rebuild.served_percent)
        << n << " satellites";
    EXPECT_NEAR(contact.mean_fidelity, rebuild.mean_fidelity, 5e-3)
        << n << " satellites";
  }
}

}  // namespace
}  // namespace qntn::plan
