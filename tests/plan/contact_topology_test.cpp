#include "plan/contact_topology.hpp"

#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"

namespace qntn::plan {
namespace {

TEST(ContactPlanTopology, GraphMatchesRebuildSnapshot) {
  const core::QntnConfig config;
  const sim::NetworkModel model = core::build_space_ground_model(config, 12);
  const sim::LinkPolicy policy = config.link_policy();
  const sim::TopologyBuilder rebuild(model, policy);
  const ContactPlan plan =
      compile_contact_plan(model, policy, config.plan_options());
  const ContactPlanTopology topology(plan, model);

  for (const double t : {0.0, 864.0, 7'777.0, 43'200.0, 86'400.0}) {
    const net::Graph expected = rebuild.graph_at(t);
    const net::Graph actual = topology.graph_at(t);
    EXPECT_EQ(actual.node_count(), expected.node_count()) << "t = " << t;
    EXPECT_EQ(actual.edge_count(), expected.edge_count()) << "t = " << t;
    EXPECT_EQ(actual.components(), expected.components()) << "t = " << t;
  }
}

TEST(ContactPlanTopology, BackwardQueriesReplayCorrectly) {
  const core::QntnConfig config;
  const sim::NetworkModel model = core::build_space_ground_model(config, 6);
  const ContactPlan plan = compile_contact_plan(model, config.link_policy(),
                                                config.plan_options());
  const ContactPlanTopology warm(plan, model);
  // Drag the cursor forward, then jump back: the answer must match a fresh
  // provider that has never advanced.
  (void)warm.links_at(80'000.0);
  for (const double t : {120.0, 5'000.0, 60.0}) {
    const ContactPlanTopology cold(plan, model);
    const auto expected = cold.links_at(t);
    const auto actual = warm.links_at(t);
    ASSERT_EQ(actual.size(), expected.size()) << "t = " << t;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].a, expected[i].a);
      EXPECT_EQ(actual[i].b, expected[i].b);
      EXPECT_DOUBLE_EQ(actual[i].transmissivity, expected[i].transmissivity);
    }
  }
}

TEST(ContactPlanTopology, EventTimelineHasTwoEventsPerWindow) {
  const core::QntnConfig config;
  const sim::NetworkModel model = core::build_space_ground_model(config, 6);
  const ContactPlan plan = compile_contact_plan(model, config.link_policy(),
                                                config.plan_options());
  const ContactPlanTopology topology(plan, model);
  // Two events per window, except windows clipped at the horizon never
  // close.
  std::size_t clipped = 0;
  for (const ContactWindow& window : plan.windows()) {
    if (window.end >= plan.horizon()) ++clipped;
  }
  EXPECT_EQ(topology.event_count(), 2 * plan.windows().size() - clipped);
}

// Acceptance check for the whole control plane: the scenario pipeline
// produces the same Eq. 6 coverage (to < 0.1 pp) and the identical served
// count through either topology backend, at the paper's sweep extremes.
TEST(ContactPlanTopology, ScenarioEquivalenceAcrossModes) {
  for (const std::size_t n : {std::size_t{6}, std::size_t{54}, std::size_t{108}}) {
    core::QntnConfig config;
    config.topology_mode = core::TopologyMode::Rebuild;
    const core::ArchitectureMetrics rebuild = core::evaluate_space_ground(config, n);
    config.topology_mode = core::TopologyMode::ContactPlan;
    const core::ArchitectureMetrics contact = core::evaluate_space_ground(config, n);
    EXPECT_NEAR(contact.coverage_percent, rebuild.coverage_percent, 0.1)
        << n << " satellites";
    EXPECT_DOUBLE_EQ(contact.served_percent, rebuild.served_percent)
        << n << " satellites";
    EXPECT_NEAR(contact.mean_fidelity, rebuild.mean_fidelity, 5e-3)
        << n << " satellites";
  }
}

}  // namespace
}  // namespace qntn::plan
