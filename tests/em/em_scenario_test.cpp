#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/scenario.hpp"

/// Determinism contract of the entanglement-management serving mode
/// (DESIGN.md §11): run_scenario with em enabled must produce a
/// ScenarioResult — including every em statistic and the trace stream —
/// bitwise identical across thread counts. EXPECT_EQ on doubles below is
/// deliberate, exactly as in parallel_scenario_test.cpp.

namespace qntn::sim {
namespace {

using core::QntnConfig;
using core::TopologyMode;

struct RunOutput {
  ScenarioResult result;
  std::string trace;
};

RunOutput run_em(TopologyMode mode, ThreadPool* pool,
                 obs::Registry* registry = nullptr) {
  QntnConfig config;
  config.topology_mode = mode;
  config.serving_mode = core::ServingMode::Entanglement;
  const NetworkModel model = core::build_space_ground_model(config, 12);
  const core::Topology topology = core::make_topology(config, model);
  RunOutput out;
  std::ostringstream trace_stream;
  obs::TraceSink trace(trace_stream, obs::TraceLevel::Requests);
  ScenarioConfig sc = config.scenario_config();
  sc.coverage.duration = 14'400.0;  // 4 hours
  sc.coverage.step = 120.0;
  sc.request_count = 30;
  sc.request_steps = 10;
  sc.request_step_interval = 1440.0;
  sc.pool = pool;
  sc.trace = &trace;
  sc.registry = registry;
  out.result = run_scenario(model, topology.provider(), sc);
  out.trace = trace_stream.str();
  return out;
}

void expect_same_stats(const RunningStats& a, const RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  if (a.count() == 0 || b.count() == 0) return;
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.stddev(), b.stddev());
}

void expect_identical(const RunOutput& a, const RunOutput& b) {
  EXPECT_EQ(a.result.served_fraction, b.result.served_fraction);
  expect_same_stats(a.result.served_per_step, b.result.served_per_step);
  expect_same_stats(a.result.fidelity, b.result.fidelity);
  expect_same_stats(a.result.transmissivity, b.result.transmissivity);
  expect_same_stats(a.result.hops, b.result.hops);
  EXPECT_EQ(a.result.requests_issued, b.result.requests_issued);
  EXPECT_EQ(a.result.requests_served, b.result.requests_served);
  EXPECT_EQ(a.result.requests_no_path, b.result.requests_no_path);
  EXPECT_EQ(a.result.requests_isolated, b.result.requests_isolated);
  EXPECT_EQ(a.result.requests_congested, b.result.requests_congested);
  EXPECT_EQ(a.result.handovers, b.result.handovers);

  EXPECT_EQ(a.result.em.enabled, b.result.em.enabled);
  EXPECT_EQ(a.result.em.swaps, b.result.em.swaps);
  EXPECT_EQ(a.result.em.purification_rounds, b.result.em.purification_rounds);
  EXPECT_EQ(a.result.em.pairs_consumed, b.result.em.pairs_consumed);
  EXPECT_EQ(a.result.em.slo_met, b.result.em.slo_met);
  EXPECT_EQ(a.result.em.spilled, b.result.em.spilled);
  expect_same_stats(a.result.em.memory_occupancy, b.result.em.memory_occupancy);
  expect_same_stats(a.result.em.swap_depth, b.result.em.swap_depth);
  expect_same_stats(a.result.em.latency, b.result.em.latency);
  EXPECT_EQ(a.result.em.latency_samples, b.result.em.latency_samples);

  EXPECT_EQ(a.trace, b.trace);
}

TEST(EmScenario, BitIdenticalAcrossThreadCountsContactPlan) {
  const RunOutput serial = run_em(TopologyMode::ContactPlan, nullptr);
  EXPECT_TRUE(serial.result.em.enabled);
  EXPECT_FALSE(serial.trace.empty());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    const RunOutput parallel = run_em(TopologyMode::ContactPlan, &pool);
    expect_identical(serial, parallel);
  }
}

TEST(EmScenario, BitIdenticalAcrossThreadCountsRebuild) {
  // The rebuild provider has no epoch partition (serve sees kNoEpoch and
  // cannot cache routes); a pool must leave the serial path untouched.
  const RunOutput serial = run_em(TopologyMode::Rebuild, nullptr);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    const RunOutput parallel = run_em(TopologyMode::Rebuild, &pool);
    expect_identical(serial, parallel);
  }
}

TEST(EmScenario, RequestAccountingIsComplete) {
  ThreadPool pool(4);
  obs::Registry registry;
  const RunOutput out = run_em(TopologyMode::ContactPlan, &pool, &registry);
  const ScenarioResult& r = out.result;
  EXPECT_TRUE(r.em.enabled);
  EXPECT_EQ(r.requests_issued, 300u);  // 30 requests x 10 snapshots
  EXPECT_EQ(r.requests_issued, r.requests_served + r.requests_no_path +
                                   r.requests_isolated + r.requests_congested);
  // Latency percentiles see exactly one sample per served request.
  EXPECT_EQ(r.em.latency_samples.size(), r.requests_served);
  EXPECT_EQ(r.em.latency.count(), r.requests_served);
  // One occupancy observation per snapshot.
  EXPECT_EQ(r.em.memory_occupancy.count(), 10u);
  EXPECT_EQ(registry.counter("em.requests_served"), r.requests_served);
  EXPECT_EQ(registry.counter("scenario.requests_congested"),
            r.requests_congested);
}

TEST(EmScenario, SingleShotLeavesEmStatsUntouched) {
  QntnConfig config;
  config.topology_mode = TopologyMode::ContactPlan;
  const NetworkModel model = core::build_space_ground_model(config, 12);
  const core::Topology topology = core::make_topology(config, model);
  ScenarioConfig sc = config.scenario_config();
  sc.coverage.duration = 14'400.0;
  sc.coverage.step = 120.0;
  sc.request_count = 30;
  sc.request_steps = 10;
  sc.request_step_interval = 1440.0;
  const ScenarioResult r = run_scenario(model, topology.provider(), sc);
  EXPECT_FALSE(r.em.enabled);
  EXPECT_EQ(r.requests_congested, 0u);
  EXPECT_EQ(r.em.pairs_consumed, 0u);
  EXPECT_TRUE(r.em.latency_samples.empty());
}

}  // namespace
}  // namespace qntn::sim
