#include "em/swap_tree.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "quantum/channels.hpp"
#include "quantum/memory.hpp"
#include "quantum/swapping.hpp"

namespace qntn::em {
namespace {

using quantum::FidelityConvention;
using quantum::MemoryModel;

TEST(SwapPlan, BalancedTreeHasLogarithmicDepth) {
  SwapPlanOptions options;
  options.heralding_latency = 0.01;
  const struct {
    std::size_t hops;
    std::size_t depth;
  } expected[] = {{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}};
  for (const auto& e : expected) {
    const SwapPlan plan = plan_swap_tree(e.hops, options);
    EXPECT_EQ(plan.hops, e.hops);
    EXPECT_EQ(plan.swaps, e.hops - 1);
    EXPECT_EQ(plan.depth, e.depth) << e.hops << " hops";
    EXPECT_DOUBLE_EQ(plan.heralding_delay,
                     static_cast<double>(e.depth) * 0.01);
  }
}

TEST(SwapPlan, LinearChainHasLinearDepth) {
  SwapPlanOptions options;
  options.balanced = false;
  for (const std::size_t hops : {std::size_t{1}, std::size_t{4}, std::size_t{7}}) {
    EXPECT_EQ(plan_swap_tree(hops, options).depth, hops - 1);
  }
}

TEST(SwapPlan, RejectsZeroHops) {
  EXPECT_THROW((void)plan_swap_tree(0, SwapPlanOptions{}), Error);
}

TEST(SwapTree, ChainTransmissivityIsTheProduct) {
  EXPECT_DOUBLE_EQ(chain_transmissivity({0.9, 0.8, 0.5}), 0.9 * 0.8 * 0.5);
  EXPECT_DOUBLE_EQ(chain_transmissivity({}), 1.0);
}

TEST(SwapTree, SingleHopMatchesStoredPairFidelity) {
  const MemoryModel memory{10.0, 5.0};
  for (const double eta : {1.0, 0.9, 0.7, 0.4}) {
    for (const double d : {0.0, 0.05, 0.3}) {
      EXPECT_DOUBLE_EQ(
          swapped_chain_fidelity({eta}, {d}, memory,
                                 FidelityConvention::Uhlmann),
          memory.stored_pair_fidelity(eta, d))
          << "eta=" << eta << " d=" << d;
    }
  }
}

/// The load-bearing physics pin: the closed form the serving loop prices
/// routes with must agree with the full density-matrix protocol — build
/// each hop pair (PhiPlus half through AD(eta), then stored in the memory
/// for its duration), swap the chain, compare fidelities.
TEST(SwapTree, ClosedFormMatchesDensityMatrixSwapChain) {
  const MemoryModel memory{2.0, 1.0};
  const struct {
    std::vector<double> etas;
    std::vector<double> durations;
  } cases[] = {
      {{0.9, 0.8}, {0.0, 0.0}},
      {{0.9, 0.8}, {0.1, 0.05}},
      {{0.95, 0.7, 0.85}, {0.02, 0.2, 0.08}},
      {{0.7, 0.7, 0.7, 0.7}, {0.05, 0.05, 0.05, 0.05}},
      {{1.0, 1.0}, {0.5, 0.25}},
  };
  for (const auto& c : cases) {
    std::vector<quantum::Matrix> pairs;
    for (std::size_t i = 0; i < c.etas.size(); ++i) {
      const quantum::Matrix damped = quantum::transmit_bell_half(c.etas[i]);
      pairs.push_back(memory.store(damped, 1, c.durations[i]));
    }
    const quantum::SwapResult swapped = quantum::swap_chain(pairs);
    const double closed = swapped_chain_fidelity(
        c.etas, c.durations, memory, FidelityConvention::Uhlmann);
    EXPECT_NEAR(closed, swapped.fidelity, 1e-9)
        << c.etas.size() << "-hop chain";
  }
}

TEST(SwapTree, JozsaConventionIsTheSquare) {
  const MemoryModel memory{10.0, 5.0};
  const std::vector<double> etas{0.9, 0.8};
  const std::vector<double> durations{0.1, 0.2};
  const double uhlmann =
      swapped_chain_fidelity(etas, durations, memory,
                             FidelityConvention::Uhlmann);
  const double jozsa = swapped_chain_fidelity(etas, durations, memory,
                                              FidelityConvention::Jozsa);
  EXPECT_NEAR(uhlmann * uhlmann, jozsa, 1e-12);
}

TEST(SwapTree, StorageOnlyDegradesFidelity) {
  const MemoryModel memory{1.0, 0.5};
  const std::vector<double> etas{0.9, 0.9};
  const double fresh = swapped_chain_fidelity(etas, {0.0, 0.0}, memory,
                                              FidelityConvention::Uhlmann);
  const double stale = swapped_chain_fidelity(etas, {0.3, 0.3}, memory,
                                              FidelityConvention::Uhlmann);
  EXPECT_LT(stale, fresh);
}

TEST(SwapTree, RejectsMismatchedDurations) {
  const MemoryModel memory{10.0, 5.0};
  EXPECT_THROW((void)swapped_chain_fidelity({0.9, 0.8}, {0.0}, memory,
                                            FidelityConvention::Uhlmann),
               Error);
  EXPECT_THROW(
      (void)swapped_chain_fidelity({}, {}, memory, FidelityConvention::Uhlmann),
      Error);
}

}  // namespace
}  // namespace qntn::em
