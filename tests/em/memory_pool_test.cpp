#include "em/memory_pool.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "net/graph.hpp"

namespace qntn::em {
namespace {

net::Graph triangle() {
  net::Graph g;
  const auto a = g.add_node("a");
  const auto b = g.add_node("b");
  const auto c = g.add_node("c");
  g.add_edge(a, b, 0.9);
  g.add_edge(b, c, 0.8);
  g.add_edge(a, c, 0.7);
  return g;
}

TEST(MemoryPool, FairShareSplitsSlotsEvenly) {
  MemoryPoolOptions options;
  options.slots_per_node = 8;  // degree 2 everywhere -> quota 4 per edge
  MemoryPool pool(options);
  const net::Graph g = triangle();
  pool.rebuild(g);
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(pool.available(e), 4u) << "edge " << e;
  }
  EXPECT_EQ(pool.buffered(), 12u);
  // Every slot of every node holds a pair half: 2 * 12 / (3 * 8).
  EXPECT_DOUBLE_EQ(pool.occupancy(), 1.0);
}

TEST(MemoryPool, RemainderSlotsGoToEarlierEdges) {
  // Star: the hub's 8 slots split 3-3-2 across its three edges in edge
  // order; leaves could buffer 8 but the hub quota binds.
  net::Graph g;
  const auto hub = g.add_node("hub");
  const auto l1 = g.add_node("l1");
  const auto l2 = g.add_node("l2");
  const auto l3 = g.add_node("l3");
  g.add_edge(hub, l1, 0.9);
  g.add_edge(hub, l2, 0.9);
  g.add_edge(hub, l3, 0.9);
  MemoryPoolOptions options;
  options.slots_per_node = 8;
  MemoryPool pool(options);
  pool.rebuild(g);
  EXPECT_EQ(pool.available(0), 3u);
  EXPECT_EQ(pool.available(1), 3u);
  EXPECT_EQ(pool.available(2), 2u);
}

TEST(MemoryPool, StorageLifetimeCapsTheBufferLadder) {
  MemoryPoolOptions options;
  options.slots_per_node = 100;
  options.generation_period = 0.05;
  options.max_storage = 0.1;  // ages {0, 0.05, 0.1} survive -> 3 pairs
  MemoryPool pool(options);
  net::Graph g;
  const auto a = g.add_node();
  const auto b = g.add_node();
  g.add_edge(a, b, 0.9);
  pool.rebuild(g);
  EXPECT_EQ(pool.available(0), 3u);
}

TEST(MemoryPool, ConsumesYoungestFirstWithArithmeticAges) {
  MemoryPoolOptions options;
  options.slots_per_node = 8;
  options.generation_period = 0.05;
  MemoryPool pool(options);
  const net::Graph g = triangle();
  pool.rebuild(g);
  EXPECT_DOUBLE_EQ(pool.next_age(0), 0.0);
  EXPECT_TRUE(pool.try_consume(0, 1));
  EXPECT_DOUBLE_EQ(pool.next_age(0), 0.05);
  EXPECT_TRUE(pool.try_consume(0, 2));
  EXPECT_DOUBLE_EQ(pool.next_age(0), 0.15);
  EXPECT_EQ(pool.available(0), 1u);
  EXPECT_FALSE(pool.try_consume(0, 2));  // only one left: all-or-nothing
  EXPECT_EQ(pool.available(0), 1u);
  EXPECT_EQ(pool.consumed(), 3u);
}

TEST(MemoryPool, RebuildResetsConsumption) {
  MemoryPoolOptions options;
  MemoryPool pool(options);
  const net::Graph g = triangle();
  pool.rebuild(g);
  EXPECT_TRUE(pool.try_consume(0, 2));
  pool.rebuild(g);
  EXPECT_EQ(pool.consumed(), 0u);
  EXPECT_EQ(pool.available(0), 4u);
  EXPECT_DOUBLE_EQ(pool.next_age(0), 0.0);
}

TEST(MemoryPool, OccupancyIgnoresIsolatedNodes) {
  net::Graph g;
  const auto a = g.add_node();
  const auto b = g.add_node();
  g.add_node();  // isolated: no memory in use, not in the denominator
  g.add_edge(a, b, 0.9);
  MemoryPoolOptions options;
  options.slots_per_node = 4;
  MemoryPool pool(options);
  pool.rebuild(g);
  // One edge buffering min(4, 4) = 4 pairs = 8 halves over 2 linked nodes.
  EXPECT_DOUBLE_EQ(pool.occupancy(), 1.0);
}

TEST(MemoryPool, EmptyGraphHasZeroOccupancy) {
  MemoryPool pool(MemoryPoolOptions{});
  net::Graph g;
  g.add_node();
  pool.rebuild(g);
  EXPECT_EQ(pool.buffered(), 0u);
  EXPECT_DOUBLE_EQ(pool.occupancy(), 0.0);
}

TEST(MemoryPoolOptions, ValidateRejectsDegenerateParameters) {
  MemoryPoolOptions options;
  options.slots_per_node = 0;
  EXPECT_THROW(options.validate(), Error);
  options = MemoryPoolOptions{};
  options.generation_period = 0.0;
  EXPECT_THROW(options.validate(), Error);
  options = MemoryPoolOptions{};
  options.max_storage = -1.0;
  EXPECT_THROW(options.validate(), Error);
  options = MemoryPoolOptions{};
  options.memory.t2 = 3.0 * options.memory.t1;  // unphysical
  EXPECT_THROW(options.validate(), Error);
}

}  // namespace
}  // namespace qntn::em
