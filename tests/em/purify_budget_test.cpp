#include "em/purify_budget.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "quantum/purification.hpp"

namespace qntn::em {
namespace {

using quantum::FidelityConvention;

TEST(PurifyBudget, DisabledSloSpendsNothing) {
  PurifyOptions options;  // fidelity_slo = 0 -> off
  const PurifyPlan plan =
      plan_purification(0.8, options, FidelityConvention::Jozsa);
  EXPECT_EQ(plan.rounds, 0u);
  EXPECT_EQ(plan.pairs_per_hop, 1u);
  EXPECT_DOUBLE_EQ(plan.fidelity, 0.8);
  EXPECT_TRUE(plan.slo_met);
}

TEST(PurifyBudget, AlreadyMetSloSpendsNothing) {
  PurifyOptions options;
  options.fidelity_slo = 0.85;
  const PurifyPlan plan =
      plan_purification(0.9, options, FidelityConvention::Jozsa);
  EXPECT_EQ(plan.rounds, 0u);
  EXPECT_TRUE(plan.slo_met);
}

TEST(PurifyBudget, RoundsFollowTheBbpsswRecurrence) {
  PurifyOptions options;
  options.fidelity_slo = 0.90;
  options.max_rounds = 4;
  const double input = 0.85;
  const PurifyPlan plan =
      plan_purification(input, options, FidelityConvention::Jozsa);
  ASSERT_GE(plan.rounds, 1u);
  double expected = input;
  for (std::size_t r = 0; r < plan.rounds; ++r) {
    expected = quantum::bbpssw_fidelity(expected);
  }
  EXPECT_DOUBLE_EQ(plan.fidelity, expected);
  EXPECT_GE(plan.fidelity, options.fidelity_slo);
  EXPECT_TRUE(plan.slo_met);
  EXPECT_EQ(plan.pairs_per_hop, std::size_t{1} << plan.rounds);
}

TEST(PurifyBudget, RoundCapLimitsSpendAndReportsMiss) {
  PurifyOptions options;
  options.fidelity_slo = 0.999;  // unreachable in one round from 0.75
  options.max_rounds = 1;
  const PurifyPlan plan =
      plan_purification(0.75, options, FidelityConvention::Jozsa);
  EXPECT_EQ(plan.rounds, 1u);
  EXPECT_EQ(plan.pairs_per_hop, 2u);
  EXPECT_FALSE(plan.slo_met);
  EXPECT_LT(plan.fidelity, options.fidelity_slo);
}

TEST(PurifyBudget, BelowThresholdPairsAreNotThrownGoodMoneyAfter) {
  // BBPSSW cannot improve Werner states at or below F = 1/2: the budgeter
  // must not burn pairs on a lost cause.
  PurifyOptions options;
  options.fidelity_slo = 0.9;
  options.max_rounds = 4;
  const PurifyPlan plan =
      plan_purification(0.45, options, FidelityConvention::Jozsa);
  EXPECT_EQ(plan.rounds, 0u);
  EXPECT_EQ(plan.pairs_per_hop, 1u);
  EXPECT_FALSE(plan.slo_met);
  EXPECT_DOUBLE_EQ(plan.fidelity, 0.45);
}

TEST(PurifyBudget, UhlmannConventionConvertsAtTheBoundary) {
  // The same physical state and SLO must produce the same plan whether the
  // caller speaks Jozsa or Uhlmann.
  PurifyOptions jozsa_options;
  jozsa_options.fidelity_slo = 0.90;
  PurifyOptions uhlmann_options;
  uhlmann_options.fidelity_slo = std::sqrt(0.90);
  const double f_jozsa = 0.85;
  const PurifyPlan a =
      plan_purification(f_jozsa, jozsa_options, FidelityConvention::Jozsa);
  const PurifyPlan b = plan_purification(
      std::sqrt(f_jozsa), uhlmann_options, FidelityConvention::Uhlmann);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.slo_met, b.slo_met);
  EXPECT_NEAR(b.fidelity * b.fidelity, a.fidelity, 1e-12);
}

TEST(PurifyOptions, ValidateRejectsBadParameters) {
  PurifyOptions options;
  options.fidelity_slo = 1.0;
  EXPECT_THROW(options.validate(), Error);
  options = PurifyOptions{};
  options.max_rounds = 17;
  EXPECT_THROW(options.validate(), Error);
  EXPECT_THROW(
      (void)plan_purification(1.5, PurifyOptions{}, FidelityConvention::Jozsa),
      Error);
}

}  // namespace
}  // namespace qntn::em
