#include "em/serving.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "net/graph.hpp"
#include "quantum/fidelity.hpp"

namespace qntn::em {
namespace {

using quantum::FidelityConvention;

/// Two interior-disjoint routes between s and d: s-a-d and s-b-d.
struct Diamond {
  net::Graph graph;
  net::NodeId s, a, b, d;

  Diamond() {
    s = graph.add_node("s");
    a = graph.add_node("a");
    b = graph.add_node("b");
    d = graph.add_node("d");
    graph.add_edge(s, a, 0.9);
    graph.add_edge(a, d, 0.9);
    graph.add_edge(s, b, 0.8);
    graph.add_edge(b, d, 0.8);
  }
};

EmServeResult serve_diamond(std::size_t k_paths, std::size_t requests) {
  Diamond fixture;
  EmOptions options;
  options.enabled = true;
  options.k_paths = k_paths;
  options.node_capacity = 1;  // each relay can swap once per snapshot
  EntanglementManager manager(options);
  const std::vector<EmRequest> batch(requests,
                                     EmRequest{fixture.s, fixture.d});
  return manager.serve(fixture.graph, batch, 0,
                       FidelityConvention::Uhlmann, true);
}

TEST(EmServing, DirectLinkDeliversStoredPairFidelity) {
  net::Graph g;
  const auto s = g.add_node();
  const auto d = g.add_node();
  g.add_edge(s, d, 0.9);
  EmOptions options;
  options.enabled = true;
  EntanglementManager manager(options);
  const EmServeResult result = manager.serve(
      g, {EmRequest{s, d}}, 0, FidelityConvention::Uhlmann, true);
  ASSERT_EQ(result.served, 1u);
  ASSERT_EQ(result.outcomes.size(), 1u);
  const EmOutcome& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.status, EmStatus::Served);
  EXPECT_EQ(outcome.hops, 1u);
  EXPECT_EQ(outcome.swaps, 0u);
  EXPECT_EQ(outcome.swap_depth, 0u);
  // One hop, youngest pair (age 0), no heralding: the delivered fidelity is
  // exactly the memory model's freshly-stored pair.
  EXPECT_DOUBLE_EQ(outcome.fidelity,
                   options.pool.memory.stored_pair_fidelity(0.9, 0.0));
  EXPECT_DOUBLE_EQ(outcome.latency, 0.0);
  EXPECT_FALSE(outcome.relay.has_value());
}

TEST(EmServing, IsolatedEndpointIsReported) {
  net::Graph g;
  const auto s = g.add_node();
  const auto d = g.add_node();
  g.add_node();  // rest of the graph still has links
  g.add_edge(s, d, 0.9);
  EmOptions options;
  options.enabled = true;
  EntanglementManager manager(options);
  const EmServeResult result =
      manager.serve(g, {EmRequest{s, net::NodeId{2}}}, 0,
                    FidelityConvention::Uhlmann, true);
  EXPECT_EQ(result.served, 0u);
  EXPECT_EQ(result.unserved_isolated, 1u);
  EXPECT_EQ(result.outcomes[0].status, EmStatus::Isolated);
}

TEST(EmServing, DisconnectedComponentsAreNoPath) {
  net::Graph g;
  const auto a = g.add_node();
  const auto b = g.add_node();
  const auto c = g.add_node();
  const auto d = g.add_node();
  g.add_edge(a, b, 0.9);
  g.add_edge(c, d, 0.9);
  EmOptions options;
  options.enabled = true;
  EntanglementManager manager(options);
  const EmServeResult result = manager.serve(
      g, {EmRequest{a, c}}, 0, FidelityConvention::Uhlmann, true);
  EXPECT_EQ(result.unserved_no_path, 1u);
  EXPECT_EQ(result.outcomes[0].status, EmStatus::NoPath);
}

/// The acceptance pin: on a relay-congested snapshot, k-path load balancing
/// strictly improves the served fraction over single-path routing. With
/// node_capacity = 1 the first request saturates the cheapest route's relay;
/// k = 1 drops the second request, k = 2 spills it onto the disjoint
/// alternate.
TEST(EmServing, MultipathStrictlyImprovesServedFractionUnderCongestion) {
  const EmServeResult single = serve_diamond(/*k_paths=*/1, /*requests=*/2);
  EXPECT_EQ(single.served, 1u);
  EXPECT_EQ(single.unserved_congested, 1u);
  EXPECT_EQ(single.outcomes[1].status, EmStatus::Congested);
  EXPECT_EQ(single.spilled, 0u);

  const EmServeResult multi = serve_diamond(/*k_paths=*/2, /*requests=*/2);
  EXPECT_EQ(multi.served, 2u);
  EXPECT_EQ(multi.unserved_congested, 0u);
  EXPECT_EQ(multi.spilled, 1u);
  EXPECT_EQ(multi.outcomes[0].route_index, 0u);
  EXPECT_EQ(multi.outcomes[1].route_index, 1u);
  EXPECT_NE(multi.outcomes[0].relay, multi.outcomes[1].relay);

  EXPECT_GT(multi.served_fraction(), single.served_fraction());
}

TEST(EmServing, BufferExhaustionCongests) {
  net::Graph g;
  const auto s = g.add_node();
  const auto d = g.add_node();
  g.add_edge(s, d, 0.9);
  EmOptions options;
  options.enabled = true;
  options.pool.slots_per_node = 2;  // the edge buffers exactly two pairs
  options.node_capacity = 100;      // relays are not the bottleneck here
  EntanglementManager manager(options);
  const std::vector<EmRequest> batch(3, EmRequest{s, d});
  const EmServeResult result =
      manager.serve(g, batch, 0, FidelityConvention::Uhlmann, true);
  EXPECT_EQ(result.served, 2u);
  EXPECT_EQ(result.unserved_congested, 1u);
  EXPECT_EQ(result.outcomes[2].status, EmStatus::Congested);
  EXPECT_EQ(result.pairs_consumed, 2u);
  // The second request consumed the older pair: strictly lower fidelity.
  EXPECT_LT(result.outcomes[1].fidelity, result.outcomes[0].fidelity);
}

TEST(EmServing, RepeatedServeIsByteIdentical) {
  Diamond fixture;
  EmOptions options;
  options.enabled = true;
  options.k_paths = 2;
  options.node_capacity = 1;
  options.purify.fidelity_slo = 0.8;
  EntanglementManager manager(options);
  const std::vector<EmRequest> batch{
      EmRequest{fixture.s, fixture.d}, EmRequest{fixture.s, fixture.d},
      EmRequest{fixture.a, fixture.b}};
  const EmServeResult first = manager.serve(
      fixture.graph, batch, 0, FidelityConvention::Uhlmann, true);
  const EmServeResult second = manager.serve(
      fixture.graph, batch, 0, FidelityConvention::Uhlmann, true);
  EXPECT_EQ(first.served, second.served);
  EXPECT_EQ(first.spilled, second.spilled);
  EXPECT_EQ(first.pairs_consumed, second.pairs_consumed);
  EXPECT_EQ(first.purification_rounds, second.purification_rounds);
  // Exact double equality is the point: serving must be a pure function of
  // (graph, batch, options) with no cross-call state.
  EXPECT_EQ(first.fidelity.mean(), second.fidelity.mean());
  EXPECT_EQ(first.latency.mean(), second.latency.mean());
  EXPECT_EQ(first.memory_occupancy, second.memory_occupancy);
  ASSERT_EQ(first.outcomes.size(), second.outcomes.size());
  for (std::size_t i = 0; i < first.outcomes.size(); ++i) {
    EXPECT_EQ(first.outcomes[i].status, second.outcomes[i].status);
    EXPECT_EQ(first.outcomes[i].fidelity, second.outcomes[i].fidelity);
    EXPECT_EQ(first.outcomes[i].route_index, second.outcomes[i].route_index);
  }
}

TEST(EmServing, RelayRoutePaysHeraldingLatency) {
  Diamond fixture;
  EmOptions options;
  options.enabled = true;
  options.k_paths = 2;
  EntanglementManager manager(options);
  const EmServeResult result =
      manager.serve(fixture.graph, {EmRequest{fixture.s, fixture.d}}, 0,
                    FidelityConvention::Uhlmann, true);
  ASSERT_EQ(result.served, 1u);
  const EmOutcome& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.hops, 2u);
  EXPECT_EQ(outcome.swaps, 1u);
  EXPECT_EQ(outcome.swap_depth, 1u);
  EXPECT_DOUBLE_EQ(outcome.latency, options.swap.heralding_latency);
  EXPECT_TRUE(outcome.relay.has_value());
}

TEST(EmOptions, ValidateRejectsDegenerateParameters) {
  EmOptions options;
  options.k_paths = 0;
  EXPECT_THROW(options.validate(), Error);
  options = EmOptions{};
  options.node_capacity = 0;
  EXPECT_THROW(options.validate(), Error);
}

}  // namespace
}  // namespace qntn::em
