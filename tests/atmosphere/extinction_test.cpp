#include "atmosphere/extinction.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace qntn::atmosphere {
namespace {

TEST(Airmass, UnityAtZenith) {
  EXPECT_NEAR(kasten_young_airmass(0.0), 1.0, 0.002);
}

TEST(Airmass, MatchesSecantAtModerateAngles) {
  for (double z_deg : {10.0, 30.0, 50.0, 60.0}) {
    const double z = deg_to_rad(z_deg);
    EXPECT_NEAR(kasten_young_airmass(z), 1.0 / std::cos(z),
                0.01 / std::cos(z));
  }
}

TEST(Airmass, FiniteAtHorizon) {
  const double am = kasten_young_airmass(kPi / 2.0);
  EXPECT_GT(am, 30.0);
  EXPECT_LT(am, 45.0);  // Kasten-Young gives ~38 at the horizon
}

TEST(Airmass, MonotoneInZenithAngle) {
  double prev = 0.0;
  for (double z = 0.0; z <= kPi / 2.0; z += 0.05) {
    const double am = kasten_young_airmass(z);
    EXPECT_GT(am, prev);
    prev = am;
  }
}

TEST(Extinction, FullColumnAtZenithMatchesConfiguredTransmittance) {
  ExtinctionModel model;
  model.zenith_transmittance = 0.9;
  EXPECT_NEAR(model.transmittance(0.0, 0.0, 1e6), 0.9, 0.002);
}

TEST(Extinction, ColumnFractionProperties) {
  const ExtinctionModel model;
  EXPECT_NEAR(model.column_fraction(0.0, 1e9), 1.0, 1e-12);
  EXPECT_NEAR(model.column_fraction(5'000.0, 5'000.0), 0.0, 1e-15);
  EXPECT_THROW((void)model.column_fraction(2.0, 1.0), PreconditionError);
  // Splitting is additive.
  const double whole = model.column_fraction(0.0, 30'000.0);
  const double split =
      model.column_fraction(0.0, 10'000.0) + model.column_fraction(10'000.0, 30'000.0);
  EXPECT_NEAR(whole, split, 1e-12);
  // A 30 km HAP already sits above ~99% of the column.
  EXPECT_GT(model.column_fraction(0.0, 30'000.0), 0.98);
}

TEST(Extinction, PathsAboveAtmosphereAreLossless) {
  const ExtinctionModel model;
  EXPECT_NEAR(model.transmittance(0.3, 100'000.0, 500'000.0), 1.0, 1e-6);
}

TEST(Extinction, MonotoneDegradationWithZenithAngle) {
  const ExtinctionModel model;
  double prev = 1.1;
  for (double z = 0.0; z <= 1.5; z += 0.1) {
    const double t = model.transmittance(z, 0.0, 500'000.0);
    EXPECT_LT(t, prev);
    EXPECT_GT(t, 0.0);
    prev = t;
  }
}

TEST(Extinction, SwappedAltitudesHandled) {
  const ExtinctionModel model;
  EXPECT_DOUBLE_EQ(model.transmittance(0.2, 0.0, 30'000.0),
                   model.transmittance(0.2, 30'000.0, 0.0));
}

TEST(Extinction, RejectsInvalidTransmittance) {
  ExtinctionModel model;
  model.zenith_transmittance = 0.0;
  EXPECT_THROW((void)model.transmittance(0.0, 0.0, 1e5), PreconditionError);
  model.zenith_transmittance = 1.5;
  EXPECT_THROW((void)model.transmittance(0.0, 0.0, 1e5), PreconditionError);
}

}  // namespace
}  // namespace qntn::atmosphere
