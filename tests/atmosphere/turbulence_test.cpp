#include "atmosphere/turbulence.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace qntn::atmosphere {
namespace {

TEST(HufnagelValley, GroundValueDominatedByGroundTerm) {
  const HufnagelValley hv;
  EXPECT_NEAR(hv.cn2(0.0), 1.7e-14 + 2.7e-16, 1e-17);
}

TEST(HufnagelValley, DecaysWithAltitude) {
  const HufnagelValley hv;
  EXPECT_GT(hv.cn2(0.0), hv.cn2(1000.0));
  EXPECT_GT(hv.cn2(1000.0), hv.cn2(20'000.0));
  // By 30 km the profile is negligible relative to ground level.
  EXPECT_LT(hv.cn2(30'000.0), hv.cn2(0.0) * 1e-4);
}

TEST(HufnagelValley, TropopauseBumpFromWindTerm) {
  // The wind (h^10 e^{-h/1000}) term peaks at 10 km; Cn^2 there must exceed
  // the pure-exponential continuation of the mid term.
  const HufnagelValley hv;
  const double mid_only = 2.7e-16 * std::exp(-10'000.0 / 1500.0);
  EXPECT_GT(hv.cn2(10'000.0), 2.0 * mid_only);
}

TEST(HufnagelValley, NegativeAltitudeClampedToGround) {
  const HufnagelValley hv;
  EXPECT_DOUBLE_EQ(hv.cn2(-100.0), hv.cn2(0.0));
}

TEST(HufnagelValley, IntegralBasics) {
  const HufnagelValley hv;
  EXPECT_DOUBLE_EQ(hv.integrated_cn2(5.0, 5.0), 0.0);
  EXPECT_THROW((void)hv.integrated_cn2(10.0, 5.0), PreconditionError);
  // Additivity over subintervals.
  const double whole = hv.integrated_cn2(0.0, 30'000.0);
  const double split = hv.integrated_cn2(0.0, 3'000.0) +
                       hv.integrated_cn2(3'000.0, 30'000.0);
  EXPECT_NEAR(whole, split, whole * 1e-6);
  // Canonical HV5/7 column: ~2e-12 m^{1/3} within a factor of a few.
  EXPECT_GT(whole, 5e-13);
  EXPECT_LT(whole, 1e-11);
}

TEST(Fried, CanonicalMagnitudeAtHalfMicronZenith) {
  // HV5/7 is named for giving r0 ~ 5 cm at 0.5 um, zenith.
  const HufnagelValley hv;
  const double r0 = fried_parameter(hv, 0.5e-6, 0.0, 0.0, 30'000.0);
  EXPECT_GT(r0, 0.02);
  EXPECT_LT(r0, 0.12);
}

TEST(Fried, WavelengthScalingSixFifths) {
  const HufnagelValley hv;
  const double r0_a = fried_parameter(hv, 0.5e-6, 0.0, 0.0, 30'000.0);
  const double r0_b = fried_parameter(hv, 1.0e-6, 0.0, 0.0, 30'000.0);
  EXPECT_NEAR(r0_b / r0_a, std::pow(2.0, 6.0 / 5.0), 1e-6);
}

TEST(Fried, DegradesWithZenithAngle) {
  const HufnagelValley hv;
  double prev = 1e18;
  for (double z = 0.0; z < 1.4; z += 0.2) {
    const double r0 = fried_parameter(hv, 810e-9, z, 0.0, 30'000.0);
    EXPECT_LT(r0, prev);
    prev = r0;
  }
  // Slant scaling: r0(zeta) = r0(0) cos(zeta)^{3/5}.
  const double r0_0 = fried_parameter(hv, 810e-9, 0.0, 0.0, 30'000.0);
  const double r0_60 = fried_parameter(hv, 810e-9, deg_to_rad(60.0), 0.0, 30'000.0);
  EXPECT_NEAR(r0_60 / r0_0, std::pow(0.5, 3.0 / 5.0), 1e-9);
}

TEST(Fried, PathAboveAtmosphereIsTurbulenceFree) {
  const HufnagelValley hv;
  EXPECT_GT(fried_parameter(hv, 810e-9, 0.0, 60'000.0, 70'000.0), 1e3);
}

TEST(Fried, RejectsBadInputs) {
  const HufnagelValley hv;
  EXPECT_THROW((void)fried_parameter(hv, -1.0, 0.0, 0.0, 1e4), PreconditionError);
  EXPECT_THROW((void)fried_parameter(hv, 810e-9, kPi / 2.0, 0.0, 1e4),
               PreconditionError);
}

TEST(Rytov, GrowsWithZenithAngle) {
  const HufnagelValley hv;
  const double v0 = rytov_variance(hv, 810e-9, 0.0, 0.0, 30'000.0);
  const double v60 = rytov_variance(hv, 810e-9, deg_to_rad(60.0), 0.0, 30'000.0);
  EXPECT_GT(v60, v0);
  EXPECT_NEAR(v60 / v0, std::pow(2.0, 11.0 / 6.0), 1e-6);
}

TEST(Rytov, WeakFluctuationRegimeNearZenithDownlink) {
  // A downlink at zenith in clear HV5/7 air sits in the weak-scintillation
  // regime (sigma_R^2 < 1).
  const HufnagelValley hv;
  EXPECT_LT(rytov_variance(hv, 810e-9, 0.0, 0.0, 30'000.0), 1.0);
  EXPECT_GT(rytov_variance(hv, 810e-9, 0.0, 0.0, 30'000.0), 0.0);
}

TEST(Turbulence, StrongerGroundCn2IncreasesEverything) {
  HufnagelValley calm;
  HufnagelValley stormy;
  stormy.ground_cn2 *= 10.0;
  EXPECT_GT(stormy.integrated_cn2(0.0, 30'000.0),
            calm.integrated_cn2(0.0, 30'000.0));
  EXPECT_LT(fried_parameter(stormy, 810e-9, 0.0, 0.0, 30'000.0),
            fried_parameter(calm, 810e-9, 0.0, 0.0, 30'000.0));
}

}  // namespace
}  // namespace qntn::atmosphere
