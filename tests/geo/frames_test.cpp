#include "geo/frames.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/units.hpp"

namespace qntn::geo {
namespace {

TEST(Gmst, AdvancesAtSiderealRate) {
  EXPECT_DOUBLE_EQ(gmst_at(0.0), 0.0);
  EXPECT_NEAR(gmst_at(3600.0), kEarthRotationRate * 3600.0, 1e-12);
  // One sidereal day (~86164 s) wraps back to the start.
  const double sidereal_day = kTwoPi / kEarthRotationRate;
  EXPECT_NEAR(gmst_at(sidereal_day), 0.0, 1e-9);
}

TEST(Gmst, RespectsInitialAngle) {
  EXPECT_NEAR(gmst_at(0.0, 1.25), 1.25, 1e-15);
}

TEST(Frames, EciEcefRoundTrip) {
  const Vec3 eci{7000e3, -1234e3, 3456e3};
  for (double gmst : {0.0, 0.5, 2.0, 5.5}) {
    const Vec3 ecef = eci_to_ecef(eci, gmst);
    const Vec3 back = ecef_to_eci(ecef, gmst);
    EXPECT_NEAR(back.x, eci.x, 1e-6);
    EXPECT_NEAR(back.y, eci.y, 1e-6);
    EXPECT_NEAR(back.z, eci.z, 1e-6);
    // Rotation preserves length and z.
    EXPECT_NEAR(ecef.norm(), eci.norm(), 1e-6);
    EXPECT_DOUBLE_EQ(ecef.z, eci.z);
  }
}

TEST(Frames, EciToEcefRotationDirection) {
  // A point fixed in ECI appears to move westwards in ECEF as gmst grows:
  // at gmst = 90 deg, the ECI +X axis lies above ECEF longitude -90 deg.
  const Vec3 eci{kEarthRadius, 0.0, 0.0};
  const Vec3 ecef = eci_to_ecef(eci, kPi / 2.0);
  const Geodetic g = ecef_to_geodetic(ecef, EarthModel::Spherical);
  EXPECT_NEAR(rad_to_deg(g.longitude), -90.0, 1e-9);
}

TEST(Frames, LookAnglesZenith) {
  const Geodetic site = Geodetic::from_degrees(36.0, -85.0, 0.0);
  // Target straight up: same geodetic position, higher altitude.
  const Vec3 target = geodetic_to_ecef(
      Geodetic::from_degrees(36.0, -85.0, 500'000.0));
  const AzElRange look = look_angles(site, target);
  EXPECT_NEAR(rad_to_deg(look.elevation), 90.0, 0.2);
  EXPECT_NEAR(look.range, 500'000.0, 200.0);
}

TEST(Frames, LookAnglesDueNorthTarget) {
  const Geodetic site = Geodetic::from_degrees(36.0, -85.0, 0.0);
  const Vec3 target =
      geodetic_to_ecef(Geodetic::from_degrees(37.0, -85.0, 100'000.0));
  const AzElRange look = look_angles(site, target);
  EXPECT_NEAR(rad_to_deg(wrap_pi(look.azimuth)), 0.0, 1.0);
  EXPECT_GT(look.elevation, 0.0);
}

TEST(Frames, LookAnglesDueEastTarget) {
  const Geodetic site = Geodetic::from_degrees(0.0, 0.0, 0.0);
  const Vec3 target =
      geodetic_to_ecef(Geodetic::from_degrees(0.0, 1.0, 100'000.0));
  const AzElRange look = look_angles(site, target);
  EXPECT_NEAR(rad_to_deg(look.azimuth), 90.0, 1.0);
}

TEST(Frames, BelowHorizonHasNegativeElevation) {
  const Geodetic site = Geodetic::from_degrees(0.0, 0.0, 0.0);
  // Target on the opposite side of the Earth.
  const Vec3 target =
      geodetic_to_ecef(Geodetic::from_degrees(0.0, 170.0, 500'000.0));
  EXPECT_LT(look_angles(site, target).elevation, 0.0);
}

TEST(Frames, LineOfSightClearAboveLimb) {
  const double r = kEarthRadius + 500e3;
  const Vec3 a{r, 0.0, 0.0};
  // Nearby satellite in the same orbital shell: segment clears the Earth.
  const Vec3 b{r * std::cos(0.3), r * std::sin(0.3), 0.0};
  EXPECT_TRUE(line_of_sight(a, b, kEarthRadius));
}

TEST(Frames, LineOfSightBlockedThroughEarth) {
  const double r = kEarthRadius + 500e3;
  const Vec3 a{r, 0.0, 0.0};
  const Vec3 b{-r, 0.0, 0.0};  // antipodal: segment passes through the centre
  EXPECT_FALSE(line_of_sight(a, b, kEarthRadius));
}

TEST(Frames, LineOfSightRespectsClearanceShell) {
  const double r = kEarthRadius + 500e3;
  // Chord grazing at ~100 km altitude: clear for the solid Earth, blocked
  // when a 200 km atmosphere shell must be cleared.
  const double graze = kEarthRadius + 100e3;
  const double half_angle = std::acos(graze / r);
  const Vec3 a{r * std::cos(-half_angle), r * std::sin(-half_angle), 0.0};
  const Vec3 b{r * std::cos(half_angle), r * std::sin(half_angle), 0.0};
  EXPECT_TRUE(line_of_sight(a, b, kEarthRadius));
  EXPECT_FALSE(line_of_sight(a, b, kEarthRadius + 200e3));
}

TEST(Frames, LineOfSightDegenerateSegment) {
  const Vec3 a{kEarthRadius + 1000.0, 0.0, 0.0};
  EXPECT_TRUE(line_of_sight(a, a, kEarthRadius));
}

}  // namespace
}  // namespace qntn::geo
