#include "geo/geodetic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/constants.hpp"
#include "common/units.hpp"

namespace qntn::geo {
namespace {

TEST(Geodetic, FromDegrees) {
  const Geodetic g = Geodetic::from_degrees(36.0, -85.5, 1200.0);
  EXPECT_NEAR(g.latitude, deg_to_rad(36.0), 1e-15);
  EXPECT_NEAR(g.longitude, deg_to_rad(-85.5), 1e-15);
  EXPECT_DOUBLE_EQ(g.altitude, 1200.0);
}

TEST(Geodetic, EquatorPrimeMeridianEcef) {
  const Geodetic g = Geodetic::from_degrees(0.0, 0.0, 0.0);
  const Vec3 sph = geodetic_to_ecef(g, EarthModel::Spherical);
  EXPECT_NEAR(sph.x, kEarthRadius, 1e-6);
  EXPECT_NEAR(sph.y, 0.0, 1e-6);
  EXPECT_NEAR(sph.z, 0.0, 1e-6);
  const Vec3 wgs = geodetic_to_ecef(g, EarthModel::Wgs84);
  EXPECT_NEAR(wgs.x, kWgs84A, 1e-6);
}

TEST(Geodetic, NorthPoleWgs84UsesPolarRadius) {
  const Geodetic g = Geodetic::from_degrees(90.0, 0.0, 0.0);
  const Vec3 p = geodetic_to_ecef(g, EarthModel::Wgs84);
  const double polar_radius = kWgs84A * (1.0 - kWgs84F);
  EXPECT_NEAR(p.z, polar_radius, 1e-6);
  EXPECT_NEAR(std::hypot(p.x, p.y), 0.0, 1e-6);
}

TEST(Geodetic, AltitudeMovesAlongNormal) {
  const Geodetic lo = Geodetic::from_degrees(35.0, -85.0, 0.0);
  const Geodetic hi = Geodetic::from_degrees(35.0, -85.0, 10'000.0);
  const double d = distance(geodetic_to_ecef(lo), geodetic_to_ecef(hi));
  EXPECT_NEAR(d, 10'000.0, 1.0);
}

/// Round-trip property over a lat/lon/alt grid, both Earth models.
class GeodeticRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(GeodeticRoundTrip, EcefAndBack) {
  const auto [lat_deg, lon_deg, alt] = GetParam();
  const Geodetic g = Geodetic::from_degrees(lat_deg, lon_deg, alt);
  for (const EarthModel model : {EarthModel::Spherical, EarthModel::Wgs84}) {
    const Vec3 ecef = geodetic_to_ecef(g, model);
    const Geodetic back = ecef_to_geodetic(ecef, model);
    EXPECT_NEAR(back.latitude, g.latitude, 1e-9) << "model " << static_cast<int>(model);
    EXPECT_NEAR(wrap_pi(back.longitude - g.longitude), 0.0, 1e-9);
    EXPECT_NEAR(back.altitude, g.altitude, 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeodeticRoundTrip,
    ::testing::Combine(::testing::Values(-80.0, -45.0, -10.0, 0.0, 10.0, 36.0,
                                         60.0, 85.0),
                       ::testing::Values(-170.0, -85.5, 0.0, 45.0, 179.0),
                       ::testing::Values(0.0, 30'000.0, 500'000.0)));

TEST(Geodetic, GreatCircleKnownDistances) {
  // Quarter circumference: equator to pole.
  const Geodetic equator = Geodetic::from_degrees(0.0, 0.0, 0.0);
  const Geodetic pole = Geodetic::from_degrees(90.0, 0.0, 0.0);
  EXPECT_NEAR(great_circle_distance(equator, pole), kPi / 2.0 * kEarthRadius, 1.0);
  // Same point = 0.
  EXPECT_DOUBLE_EQ(great_circle_distance(pole, pole), 0.0);
  // Symmetry.
  const Geodetic a = Geodetic::from_degrees(36.17, -85.5, 0.0);
  const Geodetic b = Geodetic::from_degrees(35.04, -85.28, 0.0);
  EXPECT_DOUBLE_EQ(great_circle_distance(a, b), great_circle_distance(b, a));
}

TEST(Geodetic, QntnCityDistancesAreRegionalScale) {
  // Cookeville-Chattanooga is ~128 km; sanity-pins the Table I geometry.
  const Geodetic ttu = Geodetic::from_degrees(36.1757, -85.5066, 0.0);
  const Geodetic epb = Geodetic::from_degrees(35.04159, -85.2799, 0.0);
  const Geodetic ornl = Geodetic::from_degrees(35.91, -84.3, 0.0);
  const double ttu_epb = great_circle_distance(ttu, epb);
  const double ttu_ornl = great_circle_distance(ttu, ornl);
  const double epb_ornl = great_circle_distance(epb, ornl);
  EXPECT_GT(ttu_epb, 100'000.0);
  EXPECT_LT(ttu_epb, 160'000.0);
  EXPECT_GT(ttu_ornl, 80'000.0);
  EXPECT_LT(ttu_ornl, 140'000.0);
  EXPECT_GT(epb_ornl, 80'000.0);
  EXPECT_LT(epb_ornl, 150'000.0);
}

}  // namespace
}  // namespace qntn::geo
