#include "geo/sun.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace qntn::geo {
namespace {

const Geodetic kTennessee = Geodetic::from_degrees(35.9, -85.0, 0.0);

TEST(Sun, NoonAtTheSubsolarPoint) {
  SunModel sun;  // equinox, subsolar longitude 0 at t = 0
  const Geodetic equator_origin = Geodetic::from_degrees(0.0, 0.0, 0.0);
  EXPECT_NEAR(rad_to_deg(sun.solar_elevation(equator_origin, 0.0)), 90.0, 1e-9);
  // Half a day later it is local midnight: sun at -90 deg.
  EXPECT_NEAR(rad_to_deg(sun.solar_elevation(equator_origin, 43'200.0)), -90.0,
              1e-9);
}

TEST(Sun, EquinoxNoonElevationEqualsColatitude) {
  SunModel sun;
  // At equinox local noon, elevation = 90 deg - |latitude|.
  EXPECT_NEAR(rad_to_deg(sun.solar_elevation(
                  Geodetic::from_degrees(35.9, 0.0, 0.0), 0.0)),
              90.0 - 35.9, 1e-9);
}

TEST(Sun, DiurnalPeriodicity) {
  SunModel sun;
  sun.declination = deg_to_rad(23.44);
  for (double t : {0.0, 10'000.0, 40'000.0}) {
    EXPECT_NEAR(sun.solar_elevation(kTennessee, t),
                sun.solar_elevation(kTennessee, t + kSecondsPerDay), 1e-12);
  }
}

TEST(Sun, NightFollowsDay) {
  SunModel sun;
  const double night = sun.night_fraction(kTennessee, kSecondsPerDay, 30.0);
  // Equinox: day and night are close to equal (twilight tips it slightly
  // towards day).
  EXPECT_GT(night, 0.40);
  EXPECT_LT(night, 0.52);
}

TEST(Sun, SeasonalAsymmetryAtTennesseeLatitude) {
  SunModel summer;
  summer.declination = deg_to_rad(23.44);
  SunModel winter;
  winter.declination = deg_to_rad(-23.44);
  const double summer_night =
      summer.night_fraction(kTennessee, kSecondsPerDay, 30.0);
  const double winter_night =
      winter.night_fraction(kTennessee, kSecondsPerDay, 30.0);
  EXPECT_LT(summer_night, winter_night);
  EXPECT_GT(winter_night, 0.5);
}

TEST(Sun, PolarDayAndNight) {
  SunModel solstice;
  solstice.declination = deg_to_rad(23.44);
  const Geodetic north_pole = Geodetic::from_degrees(89.9, 0.0, 0.0);
  EXPECT_NEAR(solstice.night_fraction(north_pole, kSecondsPerDay, 60.0), 0.0,
              1e-12);
  const Geodetic south_pole = Geodetic::from_degrees(-89.9, 0.0, 0.0);
  EXPECT_NEAR(solstice.night_fraction(south_pole, kSecondsPerDay, 60.0), 1.0,
              1e-12);
}

TEST(Sun, TwilightThresholdShiftsTheGate) {
  SunModel sun;
  // A stricter (astronomical) twilight leaves less usable darkness.
  std::size_t civil = 0, astronomical = 0;
  for (double t = 0.0; t < kSecondsPerDay; t += 60.0) {
    if (sun.is_night(kTennessee, t, deg_to_rad(-6.0))) ++civil;
    if (sun.is_night(kTennessee, t, deg_to_rad(-18.0))) ++astronomical;
  }
  EXPECT_GT(civil, astronomical);
}

TEST(Sun, RejectsBadSampling) {
  const SunModel sun;
  EXPECT_THROW((void)sun.night_fraction(kTennessee, 0.0, 60.0),
               PreconditionError);
  EXPECT_THROW((void)sun.night_fraction(kTennessee, 100.0, 0.0),
               PreconditionError);
}

}  // namespace
}  // namespace qntn::geo
