// End-to-end cross-checks tying the layers together: the routing layer's
// closed-form fidelity must equal a full density-matrix simulation of the
// same multi-hop path, and the topology/coverage layers must be mutually
// consistent with the raw link queries.

#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "core/qntn_config.hpp"
#include "core/scenario_factory.hpp"
#include "net/routing.hpp"
#include "quantum/channels.hpp"
#include "quantum/fidelity.hpp"
#include "quantum/state.hpp"
#include "sim/requests.hpp"

namespace qntn::core {
namespace {

TEST(Integration, MultiHopFidelityMatchesDensityMatrixSimulation) {
  // Serve one request over the air-ground network, then replay the exact
  // route hop by hop through the Kraus machinery.
  const QntnConfig config;
  const sim::NetworkModel model = build_air_ground_model(config);
  const sim::TopologyBuilder topology(model, config.link_policy());
  const net::Graph graph = topology.graph_at(0.0);

  const net::NodeId src = model.lan_nodes(0).front();
  const net::NodeId dst = model.lan_nodes(2).front();
  const auto route = net::bellman_ford(graph, src, dst);
  ASSERT_TRUE(route.has_value());
  ASSERT_GE(route->path.size(), 3u);  // relays through the HAP

  // Density-matrix replay: one amplitude-damping application per hop on the
  // travelling half of a PhiPlus pair.
  quantum::Matrix rho =
      quantum::pure_density(quantum::bell_state(quantum::BellState::PhiPlus));
  for (std::size_t i = 0; i + 1 < route->path.size(); ++i) {
    double best_eta = 0.0;
    for (const net::Adjacency& adj : graph.neighbors(route->path[i])) {
      if (adj.to == route->path[i + 1]) {
        best_eta = std::max(best_eta, adj.transmissivity);
      }
    }
    ASSERT_GT(best_eta, 0.0);
    rho = quantum::amplitude_damping(best_eta).apply_to_qubit(rho, 1);
  }
  const double simulated = quantum::fidelity_to_pure(
      rho, quantum::bell_state(quantum::BellState::PhiPlus),
      quantum::FidelityConvention::Uhlmann);
  const double closed_form = quantum::bell_fidelity_after_damping(
      route->transmissivity, quantum::FidelityConvention::Uhlmann);
  EXPECT_NEAR(simulated, closed_form, 1e-9);
}

TEST(Integration, CoverageAgreesWithRawLinkQueries) {
  // At a covered instant there exists a satellite whose raw transmissivity
  // to some node of each LAN clears the threshold (or a relay chain does);
  // at minimum, verify the graph edges equal thresholded link queries.
  const QntnConfig config;
  const sim::NetworkModel model = build_space_ground_model(config, 12);
  const sim::TopologyBuilder topology(model, config.link_policy());
  const double t = 5'400.0;
  const net::Graph graph = topology.graph_at(t);
  for (const net::Edge& edge : graph.edges()) {
    const auto raw = topology.link_transmissivity(edge.a, edge.b, t);
    ASSERT_TRUE(raw.has_value());
    EXPECT_NEAR(*raw, edge.transmissivity, 1e-12);
    EXPECT_GE(edge.transmissivity, config.transmissivity_threshold);
  }
}

TEST(Integration, ServedRequestsNeverExceedCoverageConnectivity) {
  // When all three LANs are interconnected, every inter-LAN request is
  // servable; when no satellite links exist at all, none are.
  const QntnConfig config;
  const sim::NetworkModel model = build_space_ground_model(config, 18);
  const sim::TopologyBuilder topology(model, config.link_policy());
  Rng rng(17);
  const auto requests = sim::generate_requests(model, 50, rng);
  for (double t = 0.0; t <= 21'600.0; t += 1'800.0) {
    const net::Graph graph = topology.graph_at(t);
    const sim::ServeResult served = sim::serve_requests(graph, requests);
    if (sim::all_lans_connected(model, graph)) {
      EXPECT_EQ(served.served, served.total) << "t=" << t;
    }
    if (graph.edge_count() == 170u) {  // fiber only, no space links
      EXPECT_EQ(served.served, 0u) << "t=" << t;
    }
  }
}

TEST(Integration, ThresholdAblationMonotonicity) {
  // Lowering the link threshold can only add links -> coverage and service
  // are monotone non-increasing in the threshold.
  QntnConfig strict;
  strict.day_duration = 10'800.0;
  strict.ephemeris_step = 60.0;
  strict.request_count = 20;
  strict.request_steps = 5;
  QntnConfig lax = strict;
  strict.transmissivity_threshold = 0.8;
  lax.transmissivity_threshold = 0.6;
  const ArchitectureMetrics tight = evaluate_space_ground(strict, 24);
  const ArchitectureMetrics loose = evaluate_space_ground(lax, 24);
  EXPECT_GE(loose.coverage_percent + 1e-9, tight.coverage_percent);
  EXPECT_GE(loose.served_percent + 1e-9, tight.served_percent);
  // But looser links admit lower-fidelity pairs.
  if (tight.mean_fidelity > 0.0 && loose.mean_fidelity > 0.0) {
    EXPECT_LE(loose.mean_fidelity, tight.mean_fidelity + 1e-9);
  }
}

TEST(Integration, WeatherDegradationReducesAirGroundFidelity) {
  QntnConfig clear;
  clear.request_count = 20;
  clear.request_steps = 2;
  clear.day_duration = 3600.0;
  QntnConfig hazy = clear;
  hazy.weather = channel::haze();
  const ArchitectureMetrics a = evaluate_air_ground(clear);
  const ArchitectureMetrics b = evaluate_air_ground(hazy);
  // Haze keeps the HAP links alive but costs fidelity.
  EXPECT_LT(b.mean_fidelity, a.mean_fidelity);
}

TEST(Integration, J2AblationChangesCoverageOnlySlightly) {
  QntnConfig no_j2;
  no_j2.day_duration = 10'800.0;
  no_j2.ephemeris_step = 60.0;
  no_j2.request_count = 10;
  no_j2.request_steps = 3;
  QntnConfig with_j2 = no_j2;
  with_j2.include_j2 = true;
  const ArchitectureMetrics a = evaluate_space_ground(no_j2, 24);
  const ArchitectureMetrics b = evaluate_space_ground(with_j2, 24);
  // J2 shifts pass timing but not the statistical picture: within a few
  // percentage points over this window.
  EXPECT_NEAR(a.coverage_percent, b.coverage_percent, 10.0);
}

}  // namespace
}  // namespace qntn::core
