#include "core/config_io.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

namespace qntn::core {
namespace {

TEST(ConfigIo, DefaultsRoundTrip) {
  const QntnConfig original;
  const QntnConfig parsed = parse_config(serialize_config(original));
  EXPECT_DOUBLE_EQ(parsed.transmissivity_threshold,
                   original.transmissivity_threshold);
  EXPECT_NEAR(parsed.elevation_mask, original.elevation_mask, 1e-12);
  EXPECT_DOUBLE_EQ(parsed.ao_gain, original.ao_gain);
  EXPECT_DOUBLE_EQ(parsed.wavelength, original.wavelength);
  EXPECT_EQ(parsed.request_seed, original.request_seed);
  EXPECT_EQ(parsed.metric, original.metric);
  EXPECT_EQ(parsed.convention, original.convention);
  EXPECT_EQ(parsed.lan_topology, original.lan_topology);
  EXPECT_EQ(std::string(parsed.weather.name), std::string(original.weather.name));
}

TEST(ConfigIo, ModifiedValuesRoundTrip) {
  QntnConfig config;
  config.transmissivity_threshold = 0.55;
  config.include_j2 = true;
  config.enable_hap_satellite = true;
  config.metric = net::CostMetric::NegLogEta;
  config.convention = quantum::FidelityConvention::Jozsa;
  config.lan_topology = sim::LanTopology::Chain;
  config.weather = channel::haze();
  config.request_seed = 424242;
  const QntnConfig parsed = parse_config(serialize_config(config));
  EXPECT_DOUBLE_EQ(parsed.transmissivity_threshold, 0.55);
  EXPECT_TRUE(parsed.include_j2);
  EXPECT_TRUE(parsed.enable_hap_satellite);
  EXPECT_EQ(parsed.metric, net::CostMetric::NegLogEta);
  EXPECT_EQ(parsed.convention, quantum::FidelityConvention::Jozsa);
  EXPECT_EQ(parsed.lan_topology, sim::LanTopology::Chain);
  EXPECT_EQ(std::string(parsed.weather.name), "haze");
  EXPECT_EQ(parsed.request_seed, 424242u);
}

TEST(ConfigIo, PartialDocumentKeepsDefaults) {
  const QntnConfig parsed = parse_config(
      "# only override two things\n"
      "transmissivity_threshold = 0.8\n"
      "request_count = 42\n");
  EXPECT_DOUBLE_EQ(parsed.transmissivity_threshold, 0.8);
  EXPECT_EQ(parsed.request_count, 42u);
  const QntnConfig defaults;
  EXPECT_DOUBLE_EQ(parsed.ao_gain, defaults.ao_gain);
  EXPECT_EQ(parsed.request_steps, defaults.request_steps);
}

TEST(ConfigIo, CommentsAndBlankLinesIgnored) {
  EXPECT_NO_THROW((void)parse_config("\n# comment\n   \nao_gain = 3.0 # ok\n"));
  EXPECT_DOUBLE_EQ(parse_config("ao_gain = 3.0 # inline\n").ao_gain, 3.0);
}

TEST(ConfigIo, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_config("no_equals_sign\n"), Error);
  EXPECT_THROW((void)parse_config("unknown_key = 1\n"), Error);
  EXPECT_THROW((void)parse_config("ao_gain = banana\n"), Error);
  EXPECT_THROW((void)parse_config("include_j2 = maybe\n"), Error);
  EXPECT_THROW((void)parse_config("metric = fastest\n"), Error);
  EXPECT_THROW((void)parse_config("request_count = -3\n"), Error);
  EXPECT_THROW((void)parse_config("weather = tornado\n"), Error);
}

TEST(ConfigIo, FileRoundTrip) {
  QntnConfig config;
  config.ao_gain = 7.25;
  const std::string path = ::testing::TempDir() + "/qntn_config_test.cfg";
  save_config(path, config);
  const QntnConfig loaded = load_config(path);
  EXPECT_DOUBLE_EQ(loaded.ao_gain, 7.25);
  EXPECT_THROW((void)load_config("/nonexistent/qntn.cfg"), Error);
}

TEST(ConfigIo, EmKeysRoundTrip) {
  QntnConfig config;
  config.serving_mode = ServingMode::Entanglement;
  config.em_memory_slots = 16;
  config.em_generation_period = 0.02;
  config.em_max_storage = 0.5;
  config.em_memory_t1 = 4.0;
  config.em_memory_t2 = 2.5;
  config.em_heralding_latency = 0.003;
  config.em_k_paths = 5;
  config.em_node_capacity = 3;
  config.em_fidelity_slo = 0.9;
  config.em_purify_max_rounds = 3;
  const QntnConfig parsed = parse_config(serialize_config(config));
  EXPECT_EQ(parsed.serving_mode, ServingMode::Entanglement);
  EXPECT_EQ(parsed.em_memory_slots, 16u);
  EXPECT_DOUBLE_EQ(parsed.em_generation_period, 0.02);
  EXPECT_DOUBLE_EQ(parsed.em_max_storage, 0.5);
  EXPECT_DOUBLE_EQ(parsed.em_memory_t1, 4.0);
  EXPECT_DOUBLE_EQ(parsed.em_memory_t2, 2.5);
  EXPECT_DOUBLE_EQ(parsed.em_heralding_latency, 0.003);
  EXPECT_EQ(parsed.em_k_paths, 5u);
  EXPECT_EQ(parsed.em_node_capacity, 3u);
  EXPECT_DOUBLE_EQ(parsed.em_fidelity_slo, 0.9);
  EXPECT_EQ(parsed.em_purify_max_rounds, 3u);
  // The scenario config the parsed document builds really runs em serving.
  EXPECT_TRUE(parsed.scenario_config().em.enabled);
  EXPECT_EQ(parsed.scenario_config().em.k_paths, 5u);
  // Defaults keep the paper's single-shot serving.
  EXPECT_EQ(QntnConfig{}.serving_mode, ServingMode::SingleShot);
  EXPECT_FALSE(QntnConfig{}.scenario_config().em.enabled);
}

TEST(ConfigIo, RejectsUnphysicalEmMemoryPair) {
  // Cross-field validation at the parse boundary: T2 > 2 T1 must fail
  // loudly, naming the em keys, not deep inside a scenario run.
  try {
    (void)parse_config("em_memory_t1_s = 1.0\nem_memory_t2_s = 3.0\n");
    FAIL() << "unphysical (T1, T2) must throw at parse";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("em_memory"), std::string::npos)
        << e.what();
  }
  // The boundary T2 = 2 T1 parses fine.
  const QntnConfig limit =
      parse_config("em_memory_t1_s = 1.0\nem_memory_t2_s = 2.0\n");
  EXPECT_DOUBLE_EQ(limit.em_memory_t2, 2.0);
  EXPECT_THROW((void)parse_config("serving_mode = telepathy\n"), Error);
}

TEST(ConfigIo, TrafficKeysRoundTrip) {
  QntnConfig config;
  config.serving_mode = ServingMode::Traffic;
  config.traffic_arrival_rate = 2.5;
  config.traffic_diurnal_amplitude = 0.25;
  config.traffic_service_overhead = 0.02;
  config.traffic_max_queue_delay = 1.5;
  config.traffic_node_capacity = 3;
  config.traffic_max_backlog = 64;
  config.traffic_seed = 777;
  const QntnConfig parsed = parse_config(serialize_config(config));
  EXPECT_EQ(parsed.serving_mode, ServingMode::Traffic);
  EXPECT_DOUBLE_EQ(parsed.traffic_arrival_rate, 2.5);
  EXPECT_DOUBLE_EQ(parsed.traffic_diurnal_amplitude, 0.25);
  EXPECT_DOUBLE_EQ(parsed.traffic_service_overhead, 0.02);
  EXPECT_DOUBLE_EQ(parsed.traffic_max_queue_delay, 1.5);
  EXPECT_EQ(parsed.traffic_node_capacity, 3u);
  EXPECT_EQ(parsed.traffic_max_backlog, 64u);
  EXPECT_EQ(parsed.traffic_seed, 777u);
  // The scenario config the parsed document builds really runs traffic
  // serving, with the em mode off.
  EXPECT_TRUE(parsed.scenario_config().traffic.enabled);
  EXPECT_FALSE(parsed.scenario_config().em.enabled);
  EXPECT_DOUBLE_EQ(parsed.scenario_config().traffic.arrival_rate, 2.5);
  // Defaults keep the paper's single-shot serving.
  EXPECT_FALSE(QntnConfig{}.scenario_config().traffic.enabled);
}

TEST(ConfigIo, RejectsDegenerateTrafficParameters) {
  // Cross-field validation at the parse boundary, naming the traffic keys.
  try {
    (void)parse_config("traffic_max_queue_delay_s = 0.0\n");
    FAIL() << "zero queue deadline must throw at parse";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("traffic_max_queue_delay"),
              std::string::npos)
        << e.what();
  }
  try {
    (void)parse_config("traffic_arrival_rate = -1.0\n");
    FAIL() << "negative arrival rate must throw at parse";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("traffic_arrival_rate"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)parse_config("traffic_diurnal_amplitude = 2.0\n"), Error);
  // Zero arrivals are a valid (quiet) workload.
  EXPECT_NO_THROW((void)parse_config("traffic_arrival_rate = 0.0\n"));
}

TEST(ConfigIo, HapPositionSerializedInDegrees) {
  const QntnConfig config;
  const std::string text = serialize_config(config);
  EXPECT_NE(text.find("hap_latitude_deg = 35.6692"), std::string::npos);
  EXPECT_NE(text.find("hap_longitude_deg = -85.0662"), std::string::npos);
}

}  // namespace
}  // namespace qntn::core
