#include "core/experiments.hpp"

#include <gtest/gtest.h>

namespace qntn::core {
namespace {

/// Shrink the paper workload so the suite stays fast; invariants are
/// workload-size independent.
QntnConfig quick() {
  QntnConfig config;
  config.day_duration = 21'600.0;  // 6 hours
  config.ephemeris_step = 60.0;
  config.request_count = 25;
  config.request_steps = 8;
  return config;
}

TEST(Fig5, SweepShapeAndEndpoints) {
  const auto sweep =
      fig5_fidelity_sweep(quantum::FidelityConvention::Uhlmann, 0.01);
  ASSERT_EQ(sweep.size(), 101u);
  EXPECT_DOUBLE_EQ(sweep.front().transmissivity, 0.0);
  EXPECT_DOUBLE_EQ(sweep.back().transmissivity, 1.0);
  EXPECT_NEAR(sweep.front().fidelity_simulated, 0.5, 1e-9);
  EXPECT_NEAR(sweep.back().fidelity_simulated, 1.0, 1e-9);
  // Monotone, and the density-matrix pipeline matches the closed form.
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_NEAR(sweep[i].fidelity_simulated, sweep[i].fidelity_closed_form,
                1e-9);
    if (i > 0) {
      EXPECT_GT(sweep[i].fidelity_simulated, sweep[i - 1].fidelity_simulated);
    }
  }
}

TEST(Fig5, PaperThresholdReading) {
  // Under the paper's (sqrt) convention, 90% fidelity is reached just below
  // eta = 0.7 — consistent with the paper picking 0.7 as the threshold.
  const auto sweep =
      fig5_fidelity_sweep(quantum::FidelityConvention::Uhlmann, 0.01);
  const double eta_90 = transmissivity_threshold_for(sweep, 0.90);
  EXPECT_NEAR(eta_90, 0.64, 0.02);
  EXPECT_GT(sweep[70].fidelity_simulated, 0.9);  // eta = 0.70 clears 90%
}

TEST(Fig5, JozsaConventionDoesNotReproduceThePaperReading) {
  const auto sweep =
      fig5_fidelity_sweep(quantum::FidelityConvention::Jozsa, 0.01);
  EXPECT_LT(sweep[70].fidelity_simulated, 0.9);  // the documented mismatch
}

TEST(Sizes, PaperSweepGrid) {
  const auto sizes = paper_constellation_sizes();
  ASSERT_EQ(sizes.size(), 18u);
  EXPECT_EQ(sizes.front(), 6u);
  EXPECT_EQ(sizes.back(), 108u);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i] - sizes[i - 1], 6u);
  }
}

TEST(SpaceGround, SmallVsLargeConstellation) {
  const QntnConfig config = quick();
  const ArchitectureMetrics small = evaluate_space_ground(config, 6);
  const ArchitectureMetrics large = evaluate_space_ground(config, 48);
  EXPECT_EQ(small.satellites, 6u);
  // More satellites -> more coverage and more served requests.
  EXPECT_GT(large.coverage_percent, small.coverage_percent);
  EXPECT_GE(large.served_percent, small.served_percent);
  EXPECT_LE(large.coverage_percent, 100.0);
  // Fidelity of served requests obeys the threshold floor (2 FSO hops).
  if (small.mean_fidelity > 0.0) {
    EXPECT_GT(small.mean_fidelity,
              quantum::bell_fidelity_after_damping(
                  0.49, quantum::FidelityConvention::Uhlmann));
  }
}

TEST(SpaceGround, SweepRunsInParallelDeterministically) {
  const QntnConfig config = quick();
  ThreadPool pool(4);
  const std::vector<std::size_t> sizes{6, 12};
  const auto parallel = space_ground_sweep(config, sizes, pool);
  ASSERT_EQ(parallel.size(), 2u);
  const ArchitectureMetrics serial0 = evaluate_space_ground(config, 6);
  EXPECT_DOUBLE_EQ(parallel[0].coverage_percent, serial0.coverage_percent);
  EXPECT_DOUBLE_EQ(parallel[0].served_percent, serial0.served_percent);
}

TEST(AirGround, PaperHeadlineInvariants) {
  const QntnConfig config = quick();
  const ArchitectureMetrics air = evaluate_air_ground(config);
  EXPECT_DOUBLE_EQ(air.coverage_percent, 100.0);
  EXPECT_DOUBLE_EQ(air.served_percent, 100.0);
  EXPECT_GT(air.mean_fidelity, 0.9);
}

TEST(Table3, AirGroundDominatesSpaceGround) {
  // Needs the full 108-satellite constellation: with only a handful of
  // satellites the rare served requests all ride near-zenith passes whose
  // fidelity beats the HAP's fixed ~22-degree geometry, and the paper's
  // fidelity ordering only emerges once marginal passes are also served.
  const QntnConfig config = quick();
  const auto rows = table3_comparison(config, 108);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].architecture, "space-ground");
  EXPECT_EQ(rows[1].architecture, "air-ground");
  // The paper's qualitative Table III ordering under ideal conditions.
  EXPECT_GT(rows[1].coverage_percent, rows[0].coverage_percent);
  EXPECT_GT(rows[1].served_percent, rows[0].served_percent);
  EXPECT_GT(rows[1].mean_fidelity, rows[0].mean_fidelity);
}

TEST(Hybrid, AtLeastAsGoodAsEitherPureArchitecture) {
  QntnConfig config = quick();
  config.enable_hap_satellite = true;
  const ArchitectureMetrics hybrid = evaluate_hybrid(config, 12);
  const ArchitectureMetrics space = evaluate_space_ground(config, 12);
  const ArchitectureMetrics air = evaluate_air_ground(config);
  EXPECT_GE(hybrid.coverage_percent + 1e-9, space.coverage_percent);
  EXPECT_GE(hybrid.coverage_percent + 1e-9, air.coverage_percent);
  EXPECT_GE(hybrid.served_percent + 1e-9, space.served_percent);
}

}  // namespace
}  // namespace qntn::core
