#include "core/scenario_factory.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace qntn::core {
namespace {

TEST(Factory, GroundModelMatchesTableI) {
  const QntnConfig config;
  const sim::NetworkModel model = build_ground_model(config);
  EXPECT_EQ(model.lan_count(), 3u);
  EXPECT_EQ(model.node_count(), 31u);
  EXPECT_EQ(model.lan_name(0), "TTU");
  EXPECT_EQ(model.lan_name(1), "EPB");
  EXPECT_EQ(model.lan_name(2), "ORNL");
  EXPECT_EQ(model.lan_nodes(0).size(), 5u);
  EXPECT_EQ(model.lan_nodes(1).size(), 15u);
  EXPECT_EQ(model.lan_nodes(2).size(), 11u);
  EXPECT_TRUE(model.hap_ids().empty());
  EXPECT_TRUE(model.satellite_ids().empty());
}

TEST(Factory, SpaceGroundModelAddsConstellation) {
  QntnConfig config;
  config.day_duration = 3'600.0;  // keep ephemeris generation fast
  const sim::NetworkModel model = build_space_ground_model(config, 12);
  EXPECT_EQ(model.node_count(), 43u);
  EXPECT_EQ(model.satellite_ids().size(), 12u);
  // Ground ids stay 0..30; satellites follow.
  EXPECT_EQ(model.satellite_ids().front(), 31u);
  // Satellites carry full ephemerides at the paper altitude.
  const channel::Endpoint e = model.endpoint_at(31, 1'800.0);
  EXPECT_NEAR(e.geodetic.altitude, config.satellite_altitude, 25'000.0);
}

TEST(Factory, AirGroundModelAddsTheOneHap) {
  const QntnConfig config;
  const sim::NetworkModel model = build_air_ground_model(config);
  EXPECT_EQ(model.node_count(), 32u);
  ASSERT_EQ(model.hap_ids().size(), 1u);
  const sim::Node& hap = model.node(model.hap_ids().front());
  EXPECT_EQ(hap.kind, sim::NodeKind::Hap);
  EXPECT_NEAR(rad_to_deg(hap.position.latitude), 35.6692, 1e-9);
  EXPECT_DOUBLE_EQ(hap.position.altitude, 30'000.0);
  EXPECT_DOUBLE_EQ(hap.terminal.aperture_radius, config.hap_aperture_radius);
}

TEST(Factory, HybridModelHasBoth) {
  QntnConfig config;
  config.day_duration = 3'600.0;
  const sim::NetworkModel model = build_hybrid_model(config, 6);
  EXPECT_EQ(model.hap_ids().size(), 1u);
  EXPECT_EQ(model.satellite_ids().size(), 6u);
  EXPECT_EQ(model.node_count(), 38u);
  // Id stability ordering: grounds, then HAP, then satellites.
  EXPECT_EQ(model.hap_ids().front(), 31u);
  EXPECT_EQ(model.satellite_ids().front(), 32u);
}

TEST(Factory, ConfigurationFlowsIntoTerminals) {
  QntnConfig config;
  config.ground_aperture_radius = 0.99;
  config.pointing_jitter = 5e-7;
  const sim::NetworkModel model = build_ground_model(config);
  EXPECT_DOUBLE_EQ(model.node(0).terminal.aperture_radius, 0.99);
  EXPECT_DOUBLE_EQ(model.node(0).terminal.pointing_jitter, 5e-7);
}

TEST(Factory, J2FlagChangesTheTrajectories) {
  QntnConfig two_body;
  two_body.day_duration = 21'600.0;
  QntnConfig with_j2 = two_body;
  with_j2.include_j2 = true;
  const sim::NetworkModel a = build_space_ground_model(two_body, 6);
  const sim::NetworkModel b = build_space_ground_model(with_j2, 6);
  // After six hours the J2 nodal drift separates the ephemerides by km.
  const double separation = distance(a.endpoint_at(31, 21'000.0).ecef,
                                     b.endpoint_at(31, 21'000.0).ecef);
  EXPECT_GT(separation, 1'000.0);
}

}  // namespace
}  // namespace qntn::core
