#include "core/qntn_config.hpp"

#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "common/units.hpp"

namespace qntn::core {
namespace {

TEST(Config, PaperDefaults) {
  const QntnConfig config;
  EXPECT_DOUBLE_EQ(config.transmissivity_threshold, 0.7);
  EXPECT_NEAR(config.elevation_mask, kPi / 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(config.fiber_attenuation_db_per_km, 0.15);
  EXPECT_DOUBLE_EQ(config.satellite_altitude, 500'000.0);
  EXPECT_DOUBLE_EQ(config.ephemeris_step, 30.0);
  EXPECT_DOUBLE_EQ(config.day_duration, 86'400.0);
  EXPECT_EQ(config.request_count, 100u);
  EXPECT_EQ(config.request_steps, 100u);
  EXPECT_NEAR(rad_to_deg(config.hap_position.latitude), 35.6692, 1e-9);
  EXPECT_NEAR(rad_to_deg(config.hap_position.longitude), -85.0662, 1e-9);
  EXPECT_DOUBLE_EQ(config.hap_position.altitude, 30'000.0);
}

TEST(Config, LinkPolicyDerivation) {
  QntnConfig config;
  config.transmissivity_threshold = 0.55;
  config.wavelength = 1550e-9;
  config.enable_hap_satellite = true;
  const sim::LinkPolicy policy = config.link_policy();
  EXPECT_DOUBLE_EQ(policy.transmissivity_threshold, 0.55);
  EXPECT_DOUBLE_EQ(policy.fso.wavelength, 1550e-9);
  EXPECT_TRUE(policy.enable_hap_satellite);
  EXPECT_DOUBLE_EQ(policy.fiber_attenuation_db_per_km, 0.15);
}

TEST(Config, ScenarioConfigSpreadsRequestStepsOverTheDay) {
  const QntnConfig config;
  const sim::ScenarioConfig sc = config.scenario_config();
  EXPECT_EQ(sc.request_steps, 100u);
  EXPECT_DOUBLE_EQ(sc.request_step_interval, 864.0);
  EXPECT_DOUBLE_EQ(
      sc.request_step_interval * static_cast<double>(sc.request_steps),
      config.day_duration);
}

TEST(Config, TerminalsCarryApertures) {
  const QntnConfig config;
  EXPECT_DOUBLE_EQ(config.ground_terminal().aperture_radius, 1.20);
  EXPECT_DOUBLE_EQ(config.satellite_terminal().aperture_radius, 1.20);
  EXPECT_DOUBLE_EQ(config.hap_terminal().aperture_radius, 0.30);
}

TEST(Config, WeatherPropagatesIntoPolicy) {
  QntnConfig config;
  config.weather = channel::haze();
  const sim::LinkPolicy policy = config.link_policy();
  EXPECT_EQ(policy.fso.weather.name, "haze");
  EXPECT_GT(policy.fso.weather.optical_depth_factor, 1.0);
}

}  // namespace
}  // namespace qntn::core
