#include "core/ground_networks.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace qntn::core {
namespace {

TEST(GroundNetworks, TableINodeCounts) {
  EXPECT_EQ(tennessee_tech().nodes.size(), 5u);
  EXPECT_EQ(epb_chattanooga().nodes.size(), 15u);
  EXPECT_EQ(oak_ridge().nodes.size(), 11u);
  const auto lans = qntn_lans();
  ASSERT_EQ(lans.size(), 3u);
  std::size_t total = 0;
  for (const LanDefinition& lan : lans) total += lan.nodes.size();
  EXPECT_EQ(total, 31u);
}

TEST(GroundNetworks, FirstCoordinatesMatchTableI) {
  EXPECT_NEAR(rad_to_deg(tennessee_tech().nodes[0].latitude), 36.1757, 1e-9);
  EXPECT_NEAR(rad_to_deg(tennessee_tech().nodes[0].longitude), -85.5066, 1e-9);
  EXPECT_NEAR(rad_to_deg(epb_chattanooga().nodes[0].latitude), 35.04159, 1e-9);
  EXPECT_NEAR(rad_to_deg(oak_ridge().nodes[10].latitude), 35.9309, 1e-9);
  EXPECT_NEAR(rad_to_deg(oak_ridge().nodes[10].longitude), -84.308, 1e-9);
}

TEST(GroundNetworks, AllNodesAtGroundLevelInTennessee) {
  for (const LanDefinition& lan : qntn_lans()) {
    for (const geo::Geodetic& node : lan.nodes) {
      EXPECT_DOUBLE_EQ(node.altitude, 0.0);
      EXPECT_GT(rad_to_deg(node.latitude), 34.9);
      EXPECT_LT(rad_to_deg(node.latitude), 36.3);
      EXPECT_GT(rad_to_deg(node.longitude), -85.6);
      EXPECT_LT(rad_to_deg(node.longitude), -84.2);
    }
  }
}

TEST(GroundNetworks, LansAreGeographicallyCompact) {
  // Each LAN spans at most a few km; the three LANs are tens of km apart.
  for (const LanDefinition& lan : qntn_lans()) {
    for (const geo::Geodetic& node : lan.nodes) {
      EXPECT_LT(geo::great_circle_distance(lan.nodes.front(), node), 3'000.0)
          << lan.name;
    }
  }
  EXPECT_GT(geo::great_circle_distance(tennessee_tech().nodes[0],
                                       epb_chattanooga().nodes[0]),
            80'000.0);
}

TEST(GroundNetworks, CentroidSitsBetweenTheCities) {
  const geo::Geodetic centroid = qntn_centroid();
  EXPECT_GT(rad_to_deg(centroid.latitude), 35.0);
  EXPECT_LT(rad_to_deg(centroid.latitude), 36.2);
  EXPECT_GT(rad_to_deg(centroid.longitude), -85.6);
  EXPECT_LT(rad_to_deg(centroid.longitude), -84.2);
  // The paper's HAP placement is within ~60 km of the node centroid.
  const geo::Geodetic hap = geo::Geodetic::from_degrees(35.6692, -85.0662, 0.0);
  EXPECT_LT(geo::great_circle_distance(centroid, hap), 60'000.0);
}

}  // namespace
}  // namespace qntn::core
