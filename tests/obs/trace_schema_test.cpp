// Golden-file schema test for the JSONL run trace: a small fixed-seed
// space-ground run must (a) be byte-deterministic, (b) emit exactly the
// event shapes recorded in trace_schema.golden, and (c) produce counters
// that reconcile with the ArchitectureMetrics totals. The golden file holds
// one line per observed event shape:
//
//   <type>[ status=<status>]: <comma-separated keys in emission order>
//
// To regenerate after an intentional schema change, run this test and copy
// the "computed schema" block from the failure message.

#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace qntn {
namespace {

/// Workload: small enough for the suite, big enough that every event shape
/// occurs (served + unserved requests, handovers).
core::QntnConfig golden_config() {
  core::QntnConfig config;
  config.day_duration = 21'600.0;  // 6 hours
  config.ephemeris_step = 60.0;
  config.request_count = 25;
  config.request_steps = 36;
  return config;
}

constexpr std::size_t kSatellites = 36;

struct TracedRun {
  std::string trace;
  core::ArchitectureMetrics metrics;
  obs::MetricsSnapshot snapshot;
};

TracedRun run_traced() {
  TracedRun run;
  obs::Registry registry;
  std::ostringstream out;
  obs::TraceSink sink(out, obs::TraceLevel::Requests);
  core::RunContext ctx;
  ctx.config = golden_config();
  ctx.registry = &registry;
  ctx.trace = &sink;
  run.metrics = core::evaluate_space_ground(ctx, kSatellites);
  run.trace = out.str();
  run.snapshot = registry.snapshot();
  return run;
}

struct ParsedLine {
  std::string type;
  std::optional<std::string> status;
  std::vector<std::string> keys;
};

/// Minimal scan of one flat JSONL line: every quoted token followed by ':'
/// is a key; other quoted tokens are string values.
ParsedLine parse_line(const std::string& line) {
  ParsedLine parsed;
  std::string last_key;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] != '"') continue;
    std::string text;
    std::size_t j = i + 1;
    for (; j < line.size() && line[j] != '"'; ++j) {
      if (line[j] == '\\' && j + 1 < line.size()) {
        text += line[++j];
      } else {
        text += line[j];
      }
    }
    std::size_t k = j + 1;
    while (k < line.size() && line[k] == ' ') ++k;
    if (k < line.size() && line[k] == ':') {
      parsed.keys.push_back(text);
      last_key = text;
    } else {
      if (last_key == "type") parsed.type = text;
      if (last_key == "status") parsed.status = text;
    }
    i = j;
  }
  return parsed;
}

std::set<std::string> schema_of(const std::string& trace) {
  std::set<std::string> schema;
  std::istringstream in(trace);
  std::string line;
  while (std::getline(in, line)) {
    const ParsedLine parsed = parse_line(line);
    std::string signature = parsed.type;
    if (parsed.status.has_value()) signature += " status=" + *parsed.status;
    signature += ":";
    for (std::size_t i = 0; i < parsed.keys.size(); ++i) {
      signature += i == 0 ? " " : ",";
      signature += parsed.keys[i];
    }
    schema.insert(std::move(signature));
  }
  return schema;
}

std::size_t count_type(const std::string& trace, const std::string& type) {
  std::size_t count = 0;
  std::istringstream in(trace);
  std::string line;
  while (std::getline(in, line)) {
    if (parse_line(line).type == type) ++count;
  }
  return count;
}

TEST(TraceSchema, MatchesGoldenFile) {
  const TracedRun run = run_traced();
  // Guard: the workload must exercise every event shape, or the golden
  // comparison silently weakens.
  ASSERT_GT(run.metrics.requests_served, 0u);
  ASSERT_GT(run.metrics.requests_no_path, 0u);
  ASSERT_GT(run.metrics.handovers, 0u);

  const std::set<std::string> schema = schema_of(run.trace);

  const std::string golden_path =
      std::string(QNTN_OBS_TEST_DATA_DIR) + "/trace_schema.golden";
  std::ifstream golden_file(golden_path);
  ASSERT_TRUE(golden_file.is_open()) << "missing " << golden_path;
  std::set<std::string> golden;
  std::string line;
  while (std::getline(golden_file, line)) {
    if (!line.empty()) golden.insert(line);
  }

  std::string computed;
  for (const std::string& signature : schema) computed += signature + "\n";
  EXPECT_EQ(schema, golden) << "computed schema:\n" << computed;
}

TEST(TraceSchema, ByteDeterministicAcrossRuns) {
  const TracedRun a = run_traced();
  const TracedRun b = run_traced();
  EXPECT_EQ(a.trace, b.trace);
}

TEST(TraceSchema, CountersReconcileWithMetrics) {
  const TracedRun run = run_traced();
  const core::ArchitectureMetrics& m = run.metrics;
  const auto counter = [&](const char* name) {
    const auto it = run.snapshot.counters.find(name);
    return it == run.snapshot.counters.end() ? std::uint64_t{0} : it->second;
  };

  // Counters mirror the result struct exactly.
  EXPECT_EQ(counter("scenario.snapshots"), 36u);
  EXPECT_EQ(counter("scenario.requests_issued"), m.requests_issued);
  EXPECT_EQ(counter("scenario.requests_served"), m.requests_served);
  EXPECT_EQ(counter("scenario.requests_no_path"), m.requests_no_path);
  EXPECT_EQ(counter("scenario.requests_isolated"), m.requests_isolated);
  EXPECT_EQ(counter("scenario.handovers"), m.handovers);

  // Accounting identities.
  EXPECT_EQ(m.requests_issued, 25u * 36u);
  EXPECT_EQ(m.requests_served + m.requests_no_path + m.requests_isolated,
            m.requests_issued);
  // served/issued equals the served fraction exactly (same batch each step).
  EXPECT_NEAR(static_cast<double>(m.requests_served) /
                  static_cast<double>(m.requests_issued),
              m.served_percent / 100.0, 1e-12);

  // The trace agrees with the counters line for line.
  EXPECT_EQ(count_type(run.trace, "request"), m.requests_issued);
  EXPECT_EQ(count_type(run.trace, "snapshot"), 36u);
  EXPECT_EQ(count_type(run.trace, "handover"), m.handovers);
  EXPECT_EQ(count_type(run.trace, "run_start"), 1u);
  EXPECT_EQ(count_type(run.trace, "run_end"), 1u);

  // Phase timers ran under the ambient registry.
  EXPECT_EQ(run.snapshot.stats.at("time.ephemeris_s").count(), 1u);
  EXPECT_EQ(run.snapshot.stats.at("time.coverage_s").count(), 1u);
  EXPECT_EQ(run.snapshot.stats.at("time.serving_s").count(), 1u);
  EXPECT_GT(counter("net.bf_trees"), 0u);
}

}  // namespace
}  // namespace qntn
