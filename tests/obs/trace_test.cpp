#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace qntn::obs {
namespace {

TEST(TraceEvent, FormatsTypedFieldsInOrder) {
  TraceEvent event("snapshot");
  event.field("step", std::uint64_t{3})
      .field("t", 2592.0)
      .field("status", "served")
      .field("ok", true)
      .field("frac", 0.125);
  EXPECT_EQ(event.json(),
            "{\"type\": \"snapshot\", \"step\": 3, \"t\": 2592, "
            "\"status\": \"served\", \"ok\": true, \"frac\": 0.125}");
}

TEST(TraceEvent, EscapesStrings) {
  TraceEvent event("x");
  event.field("s", "a\"b\\c\nd");
  EXPECT_EQ(event.json(), "{\"type\": \"x\", \"s\": \"a\\\"b\\\\c\\u000ad\"}");
}

TEST(TraceEvent, DeterministicNumberFormatting) {
  TraceEvent event("n");
  event.field("third", 1.0 / 3.0).field("big", 1.0e17);
  EXPECT_EQ(event.json(),
            "{\"type\": \"n\", \"third\": 0.3333333333, \"big\": 1e+17}");
}

TEST(TraceLevel, NamesRoundTrip) {
  for (const TraceLevel level :
       {TraceLevel::Off, TraceLevel::Snapshots, TraceLevel::Requests}) {
    EXPECT_EQ(trace_level_from(trace_level_name(level)), level);
  }
  EXPECT_THROW((void)trace_level_from("verbose"), qntn::Error);
}

TEST(TraceSink, DefaultConstructedIsDisabled) {
  TraceSink sink;
  EXPECT_FALSE(sink.wants(TraceLevel::Snapshots));
  EXPECT_FALSE(sink.wants(TraceLevel::Requests));
  sink.emit(TraceEvent("dropped"));  // must be a safe no-op
  sink.flush();
}

TEST(TraceSink, GatesByLevel) {
  std::ostringstream out;
  TraceSink sink(out, TraceLevel::Snapshots);
  EXPECT_TRUE(sink.wants(TraceLevel::Snapshots));
  EXPECT_FALSE(sink.wants(TraceLevel::Requests));

  sink.emit(TraceEvent("a"));
  sink.emit(TraceEvent("b").field("k", std::uint64_t{1}));
  sink.flush();
  EXPECT_EQ(out.str(), "{\"type\": \"a\"}\n{\"type\": \"b\", \"k\": 1}\n");
}

TEST(TraceSink, FileSinkWritesAndBadPathThrows) {
  const std::string path = testing::TempDir() + "/qntn_trace_test.jsonl";
  {
    TraceSink sink(path, TraceLevel::Requests);
    sink.emit(TraceEvent("line"));
    sink.flush();
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"type\": \"line\"}");

  EXPECT_THROW(TraceSink("/nonexistent-dir/x/y.jsonl", TraceLevel::Requests),
               qntn::Error);
}

}  // namespace
}  // namespace qntn::obs
