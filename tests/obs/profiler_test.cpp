#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <future>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/thread_pool.hpp"

namespace qntn::obs {
namespace {

/// Span names present in a parsed chrome trace document.
std::set<std::string> span_names(const json::Value& doc) {
  std::set<std::string> names;
  for (const json::Value& event : doc.at("traceEvents").items()) {
    if (event.at("ph").as_string() == "X") {
      names.insert(event.at("name").as_string());
    }
  }
  return names;
}

TEST(Profiler, SpanIsNoOpWithoutAmbientProfiler) {
  ASSERT_EQ(ambient_profiler(), nullptr);
  { const Span span("ignored"); }
  Profiler profiler;
  { const Span span("also_ignored"); }  // constructed before install
  EXPECT_EQ(profiler.span_count(), 0u);
  EXPECT_EQ(profiler.dropped(), 0u);
}

TEST(Profiler, RecordsNestedSpans) {
  Profiler profiler;
  {
    const ScopedProfiler install(&profiler);
    const Span outer("outer", 7);
    { const Span inner("inner"); }
    { const Span inner("inner"); }
  }
  EXPECT_EQ(profiler.span_count(), 3u);
  const json::Value doc = json::Value::parse(profiler.chrome_trace_json());
  EXPECT_EQ(span_names(doc), (std::set<std::string>{"inner", "outer"}));

  // The outer span must contain both inner spans (ts/dur nesting is how
  // Chrome reconstructs the hierarchy).
  double outer_ts = -1.0, outer_end = -1.0;
  for (const json::Value& event : doc.at("traceEvents").items()) {
    if (event.at("ph").as_string() != "X") continue;
    if (event.at("name").as_string() == "outer") {
      outer_ts = event.at("ts").as_number();
      outer_end = outer_ts + event.at("dur").as_number();
      EXPECT_DOUBLE_EQ(event.at("args").at("n").as_number(), 7.0);
    }
  }
  ASSERT_GE(outer_ts, 0.0);
  for (const json::Value& event : doc.at("traceEvents").items()) {
    if (event.at("ph").as_string() != "X") continue;
    if (event.at("name").as_string() == "inner") {
      EXPECT_GE(event.at("ts").as_number(), outer_ts);
      EXPECT_LE(event.at("ts").as_number() + event.at("dur").as_number(),
                outer_end);
      EXPECT_EQ(event.at("args").find("n"), nullptr);  // no payload requested
    }
  }
}

TEST(Profiler, ScopedInstallRestoresPrevious) {
  Profiler a;
  Profiler b;
  const ScopedProfiler install_a(&a);
  EXPECT_EQ(ambient_profiler(), &a);
  {
    const ScopedProfiler install_b(&b);
    EXPECT_EQ(ambient_profiler(), &b);
    {
      const ScopedProfiler uninstall(nullptr);
      EXPECT_EQ(ambient_profiler(), nullptr);
      const Span span("dropped_on_floor");
    }
    EXPECT_EQ(ambient_profiler(), &b);
  }
  EXPECT_EQ(ambient_profiler(), &a);
  EXPECT_EQ(a.span_count(), 0u);
  EXPECT_EQ(b.span_count(), 0u);
}

TEST(Profiler, RingOverwritesOldestAndCountsDrops) {
  Profiler profiler(/*capacity_per_thread=*/4);
  const ScopedProfiler install(&profiler);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const Span span("tick", i);
  }
  EXPECT_EQ(profiler.span_count(), 4u);
  EXPECT_EQ(profiler.dropped(), 6u);

  const json::Value doc = json::Value::parse(profiler.chrome_trace_json());
  std::vector<double> kept_args;
  bool saw_drop_marker = false;
  for (const json::Value& event : doc.at("traceEvents").items()) {
    if (event.at("ph").as_string() == "X") {
      kept_args.push_back(event.at("args").at("n").as_number());
    } else if (event.at("name").as_string() == "qntn_dropped_spans") {
      saw_drop_marker = true;
      EXPECT_DOUBLE_EQ(event.at("args").at("count").as_number(), 6.0);
    }
  }
  // The survivors are the newest four, in start order.
  EXPECT_EQ(kept_args, (std::vector<double>{6.0, 7.0, 8.0, 9.0}));
  EXPECT_TRUE(saw_drop_marker);
}

TEST(Profiler, NamesThreadsFromThreadLabels) {
  Profiler profiler;
  {
    const ScopedProfiler install(&profiler);
    const Span span("on_main");
  }
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([&profiler] {
      const ScopedProfiler install(&profiler);
      const Span span("on_worker");
    }));
  }
  for (auto& f : futures) f.get();

  const json::Value doc = json::Value::parse(profiler.chrome_trace_json());
  std::set<std::string> thread_names;
  bool saw_process_name = false;
  for (const json::Value& event : doc.at("traceEvents").items()) {
    if (event.at("ph").as_string() != "M") continue;
    const std::string name = event.at("name").as_string();
    if (name == "thread_name") {
      thread_names.insert(event.at("args").at("name").as_string());
    } else if (name == "process_name") {
      saw_process_name = true;
      EXPECT_EQ(event.at("args").at("name").as_string(), "qntn");
    }
  }
  EXPECT_TRUE(saw_process_name);
  ASSERT_TRUE(thread_names.count("main")) << "main thread unnamed";
  // Both workers ran at least one of the eight tasks with high probability,
  // but only the label format is guaranteed.
  bool saw_worker = false;
  for (const std::string& name : thread_names) {
    if (name.rfind("worker-", 0) == 0) saw_worker = true;
  }
  EXPECT_TRUE(saw_worker);
  EXPECT_EQ(profiler.span_count(), 9u);
}

TEST(Profiler, TraceDocumentShape) {
  Profiler profiler;
  {
    const ScopedProfiler install(&profiler);
    const Span span("one");
  }
  const std::string text = profiler.chrome_trace_json();
  const json::Value doc = json::Value::parse(text);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  ASSERT_TRUE(doc.at("traceEvents").is_array());
  for (const json::Value& event : doc.at("traceEvents").items()) {
    EXPECT_DOUBLE_EQ(event.at("pid").as_number(), 1.0);
    EXPECT_TRUE(event.at("tid").is_number());
  }
}

TEST(Profiler, WriteChromeTraceThrowsOnUnwritablePath) {
  Profiler profiler;
  EXPECT_THROW(profiler.write_chrome_trace("/nonexistent-dir/trace.json"),
               Error);
}

}  // namespace
}  // namespace qntn::obs
