// Golden-file schema test for the span profiler's Chrome trace output: a
// small fixed-seed contact-plan run must (a) produce exactly the span names
// recorded in profile_schema.golden, (b) be byte-deterministic once the
// wall-clock ts/dur values are normalised, and (c) emit a document Perfetto
// can load (metadata-named threads, parent spans containing their children).
//
// To regenerate after intentionally adding/removing instrumentation, run
// this test and copy the "computed span names" block from the failure
// message into profile_schema.golden.

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <set>
#include <string>

#include "common/json.hpp"
#include "core/experiments.hpp"
#include "obs/profiler.hpp"

namespace qntn {
namespace {

/// Same workload as trace_schema_test, but on the contact-plan topology so
/// the plan.* compile/query spans are exercised too.
core::QntnConfig golden_config() {
  core::QntnConfig config;
  config.day_duration = 21'600.0;  // 6 hours
  config.ephemeris_step = 60.0;
  config.request_count = 25;
  config.request_steps = 36;
  config.topology_mode = core::TopologyMode::ContactPlan;
  return config;
}

constexpr std::size_t kSatellites = 36;

std::string run_profiled(obs::Profiler& profiler) {
  core::RunContext ctx;
  ctx.config = golden_config();
  ctx.profiler = &profiler;
  (void)core::evaluate_space_ground(ctx, kSatellites);
  return profiler.chrome_trace_json();
}

/// Zero out the `"ts": <us>` / `"dur": <us>` values: the only
/// run-dependent bytes in the trace. append_us always renders
/// digits '.' three digits, so a simple scan suffices.
std::string normalize_times(const std::string& trace) {
  std::string out;
  out.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size();) {
    const bool at_ts = trace.compare(i, 6, "\"ts\": ") == 0 ||
                       trace.compare(i, 7, "\"dur\": ") == 0;
    if (!at_ts) {
      out += trace[i++];
      continue;
    }
    const std::size_t colon = trace.find(':', i);
    out.append(trace, i, colon + 2 - i);
    out += "0.000";
    i = colon + 2;
    while (i < trace.size() &&
           (std::isdigit(static_cast<unsigned char>(trace[i])) != 0 ||
            trace[i] == '.')) {
      ++i;
    }
  }
  return out;
}

std::set<std::string> span_names_of(const std::string& trace) {
  std::set<std::string> names;
  const json::Value doc = json::Value::parse(trace);
  for (const json::Value& event : doc.at("traceEvents").items()) {
    if (event.at("ph").as_string() == "X") {
      names.insert(event.at("name").as_string());
    }
  }
  return names;
}

TEST(ProfileSchema, SpanNamesMatchGoldenFile) {
  obs::Profiler profiler;
  const std::string trace = run_profiled(profiler);
  ASSERT_GT(profiler.span_count(), 0u);
  EXPECT_EQ(profiler.dropped(), 0u) << "workload overflowed the span ring";

  const std::set<std::string> names = span_names_of(trace);

  const std::string golden_path =
      std::string(QNTN_OBS_TEST_DATA_DIR) + "/profile_schema.golden";
  std::ifstream golden_file(golden_path);
  ASSERT_TRUE(golden_file.is_open()) << "missing " << golden_path;
  std::set<std::string> golden;
  std::string line;
  while (std::getline(golden_file, line)) {
    if (!line.empty()) golden.insert(line);
  }

  std::string computed;
  for (const std::string& name : names) computed += name + "\n";
  EXPECT_EQ(names, golden) << "computed span names:\n" << computed;
}

TEST(ProfileSchema, ByteDeterministicAcrossRunsModuloTimestamps) {
  obs::Profiler a;
  obs::Profiler b;
  const std::string trace_a = normalize_times(run_profiled(a));
  const std::string trace_b = normalize_times(run_profiled(b));
  EXPECT_EQ(trace_a, trace_b);
  // The normalisation really did strip the clock: no residual digits differ.
  EXPECT_NE(trace_a.find("\"ts\": 0.000"), std::string::npos);
}

TEST(ProfileSchema, DocumentLoadsWithNamedThreadsAndNestedSpans) {
  obs::Profiler profiler;
  const json::Value doc = json::Value::parse(run_profiled(profiler));
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");

  bool main_thread_named = false;
  double run_ts = -1.0, run_end = -1.0;
  for (const json::Value& event : doc.at("traceEvents").items()) {
    const std::string ph = event.at("ph").as_string();
    if (ph == "M" && event.at("name").as_string() == "thread_name" &&
        event.at("args").at("name").as_string() == "main") {
      main_thread_named = true;
    }
    if (ph == "X" && event.at("name").as_string() == "sim.run_scenario") {
      run_ts = event.at("ts").as_number();
      run_end = run_ts + event.at("dur").as_number();
      EXPECT_DOUBLE_EQ(event.at("args").at("n").as_number(), 36.0);
    }
  }
  EXPECT_TRUE(main_thread_named);
  ASSERT_GE(run_ts, 0.0) << "sim.run_scenario span missing";

  // Every serving-phase span nests inside the run span (containment is how
  // Perfetto reconstructs the hierarchy).
  for (const json::Value& event : doc.at("traceEvents").items()) {
    if (event.at("ph").as_string() != "X") continue;
    const std::string name = event.at("name").as_string();
    if (name == "sim.coverage" || name == "sim.serving" ||
        name == "sim.serve_step" || name == "plan.graph_at") {
      EXPECT_GE(event.at("ts").as_number(), run_ts) << name;
      EXPECT_LE(event.at("ts").as_number() + event.at("dur").as_number(),
                run_end + 1e-9)
          << name;
    }
  }
}

}  // namespace
}  // namespace qntn
