#include "obs/perf_report.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"

namespace qntn::obs {
namespace {

BenchReport small_report() {
  BenchReport report;
  report.bench = "unit";
  report.smoke = true;
  report.warmup = 1;
  report.repeats = 5;
  report.threads = 4;
  report.max_rss_kb = 2048;
  report.cases.push_back(make_bench_case("alpha", 100, {1.0, 2.0, 3.0, 4.0, 5.0}));
  report.cases.push_back(make_bench_case("beta", 0, {10.0, 10.5, 9.5}));
  return report;
}

TEST(PerfReport, MakeBenchCaseDerivesRobustStats) {
  const BenchCase c = make_bench_case("stats", 7, {1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(c.name, "stats");
  EXPECT_EQ(c.items, 7u);
  EXPECT_DOUBLE_EQ(c.median_ms, 3.0);
  EXPECT_DOUBLE_EQ(c.mad_ms, 1.0);  // deviations {2,1,0,1,2}
  EXPECT_DOUBLE_EQ(c.p95_ms, 4.8);  // linear interpolation
  EXPECT_DOUBLE_EQ(c.min_ms, 1.0);
  EXPECT_DOUBLE_EQ(c.max_ms, 5.0);
  EXPECT_DOUBLE_EQ(c.mean_ms, 3.0);
  EXPECT_EQ(c.repeats_ms.size(), 5u);
  EXPECT_THROW((void)make_bench_case("empty", 0, {}), Error);
}

TEST(PerfReport, MedianIsRobustToOneOutlier) {
  const BenchCase c = make_bench_case("outlier", 0, {1.0, 1.1, 0.9, 1.0, 50.0});
  EXPECT_DOUBLE_EQ(c.median_ms, 1.0);
  EXPECT_LE(c.mad_ms, 0.1 + 1e-12);
}

TEST(PerfReport, JsonRoundTrip) {
  const BenchReport report = small_report();
  const BenchReport parsed = parse_bench_report(report.to_json());
  EXPECT_EQ(parsed.schema, kBenchSchemaVersion);
  EXPECT_EQ(parsed.bench, "unit");
  EXPECT_TRUE(parsed.smoke);
  EXPECT_EQ(parsed.warmup, 1u);
  EXPECT_EQ(parsed.repeats, 5u);
  EXPECT_EQ(parsed.threads, 4u);
  EXPECT_EQ(parsed.max_rss_kb, 2048u);
  ASSERT_EQ(parsed.cases.size(), 2u);
  EXPECT_EQ(parsed.cases[0].name, "alpha");
  EXPECT_EQ(parsed.cases[0].items, 100u);
  EXPECT_EQ(parsed.cases[0].repeats_ms, report.cases[0].repeats_ms);
  EXPECT_DOUBLE_EQ(parsed.cases[0].median_ms, 3.0);
  EXPECT_DOUBLE_EQ(parsed.cases[1].median_ms, report.cases[1].median_ms);
  // Round-tripping the parse is byte-stable.
  EXPECT_EQ(parsed.to_json(), report.to_json());
}

TEST(PerfReport, EmptyCasesRoundTrip) {
  BenchReport report = small_report();
  report.cases.clear();
  EXPECT_TRUE(parse_bench_report(report.to_json()).cases.empty());
}

TEST(PerfReport, SchemaRejectionsNameTheField) {
  auto expect_rejected = [](std::string json, std::string_view needle) {
    try {
      (void)parse_bench_report(json);
      FAIL() << "expected schema error for: " << json;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  expect_rejected("[1, 2]", "not an object");
  expect_rejected(R"({"schema": "qntn-bench-v999"})", "unsupported version");

  const BenchReport good = small_report();
  std::string wrong_version = good.to_json();
  const auto at = wrong_version.find("qntn-bench-v1");
  ASSERT_NE(at, std::string::npos);
  wrong_version.replace(at, 13, "qntn-bench-v2");
  expect_rejected(wrong_version, "unsupported version");

  expect_rejected(R"({"schema": "qntn-bench-v1"})", "\"bench\"");
  expect_rejected(R"({"schema": "qntn-bench-v1", "bench": "x"})", "\"smoke\"");
  expect_rejected(
      R"({"schema": "qntn-bench-v1", "bench": "x", "smoke": false,
          "warmup": 1, "repeats": 3, "threads": 1, "max_rss_kb": 0})",
      "\"cases\"");
  expect_rejected(
      R"({"schema": "qntn-bench-v1", "bench": "x", "smoke": false,
          "warmup": 1, "repeats": 3, "threads": 1, "max_rss_kb": 0,
          "cases": [{"name": "a", "items": 0, "repeats_ms": []}]})",
      "non-empty repeats_ms");
  expect_rejected(
      R"({"schema": "qntn-bench-v1", "bench": "x", "smoke": false,
          "warmup": 1, "repeats": 3, "threads": 1, "max_rss_kb": 0,
          "cases": [{"name": "a", "items": 0, "repeats_ms": [1, "fast"]}]})",
      "non-numeric repeat");

  // Duplicate case names would make bench-compare ambiguous.
  BenchReport duplicated = small_report();
  duplicated.cases.push_back(duplicated.cases.front());
  expect_rejected(duplicated.to_json(), "duplicate case");
}

TEST(PerfReport, IdenticalReportsDoNotRegress) {
  const BenchReport report = small_report();
  const BenchComparison comparison = compare_bench_reports(report, report);
  EXPECT_FALSE(comparison.regressed());
  ASSERT_EQ(comparison.deltas.size(), 2u);
  for (const BenchCaseDelta& delta : comparison.deltas) {
    EXPECT_FALSE(delta.regressed);
    EXPECT_FALSE(delta.improved);
    EXPECT_DOUBLE_EQ(delta.ratio, 1.0);
  }
  EXPECT_TRUE(comparison.only_base.empty());
  EXPECT_TRUE(comparison.only_current.empty());
}

TEST(PerfReport, TwentyPercentSlowdownOnStableCaseRegresses) {
  BenchReport base;
  base.bench = "gate";
  base.cases.push_back(make_bench_case("hot", 0, {10.0, 10.0, 10.0, 10.1, 9.9}));
  BenchReport current = base;
  current.cases[0] =
      make_bench_case("hot", 0, {12.0, 12.0, 12.0, 12.1, 11.9});
  const BenchComparison comparison = compare_bench_reports(base, current);
  ASSERT_EQ(comparison.deltas.size(), 1u);
  EXPECT_TRUE(comparison.deltas[0].regressed);
  EXPECT_TRUE(comparison.regressed());
  EXPECT_NEAR(comparison.deltas[0].ratio, 1.2, 1e-9);

  // The same delta in the other direction reads as an improvement.
  const BenchComparison reversed = compare_bench_reports(current, base);
  EXPECT_FALSE(reversed.regressed());
  EXPECT_TRUE(reversed.deltas[0].improved);
}

TEST(PerfReport, NoisyCaseDoesNotTripTheGate) {
  // Median shifts by 20% but the MAD is comparable to the shift: the
  // mad_factor guard keeps jitter from counting as a regression.
  BenchReport base;
  base.bench = "noise";
  base.cases.push_back(make_bench_case("jittery", 0, {8.0, 10.0, 12.0, 9.0, 11.0}));
  BenchReport current = base;
  current.cases[0] =
      make_bench_case("jittery", 0, {9.6, 12.0, 14.4, 10.8, 13.2});
  const BenchComparison comparison = compare_bench_reports(base, current);
  ASSERT_EQ(comparison.deltas.size(), 1u);
  EXPECT_FALSE(comparison.deltas[0].regressed);
}

TEST(PerfReport, SubMinimumCasesAreIgnored) {
  BenchReport base;
  base.bench = "tiny";
  base.cases.push_back(make_bench_case("nanofast", 0, {1e-5, 1e-5, 1e-5}));
  BenchReport current = base;
  current.cases[0] = make_bench_case("nanofast", 0, {5e-5, 5e-5, 5e-5});
  // A 5x slowdown under min_ms stays invisible: clock granularity.
  EXPECT_FALSE(compare_bench_reports(base, current).regressed());
  // Lowering min_ms exposes it.
  BenchCompareOptions strict;
  strict.min_ms = 0.0;
  EXPECT_TRUE(compare_bench_reports(base, current, strict).regressed());
}

TEST(PerfReport, ReportsAddedAndRemovedCases) {
  BenchReport base = small_report();
  BenchReport current = small_report();
  current.cases.erase(current.cases.begin());  // drop "alpha"
  current.cases.push_back(make_bench_case("gamma", 0, {1.0}));
  const BenchComparison comparison = compare_bench_reports(base, current);
  ASSERT_EQ(comparison.only_base.size(), 1u);
  EXPECT_EQ(comparison.only_base[0], "alpha");
  ASSERT_EQ(comparison.only_current.size(), 1u);
  EXPECT_EQ(comparison.only_current[0], "gamma");
  ASSERT_EQ(comparison.deltas.size(), 1u);
  EXPECT_EQ(comparison.deltas[0].name, "beta");
}

}  // namespace
}  // namespace qntn::obs
