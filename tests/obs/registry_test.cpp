#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace qntn::obs {
namespace {

TEST(Registry, CountersAccumulate) {
  Registry registry;
  registry.count("a");
  registry.count("a", 4);
  registry.count("b", 2);
  EXPECT_EQ(registry.counter("a"), 5u);
  EXPECT_EQ(registry.counter("b"), 2u);
  EXPECT_EQ(registry.counter("never-touched"), 0u);

  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters.at("a"), 5u);
  EXPECT_EQ(snapshot.counters.at("b"), 2u);
}

TEST(Registry, ObserveFeedsRunningStats) {
  Registry registry;
  registry.observe("lat", 1.0);
  registry.observe("lat", 3.0);
  registry.observe("lat", 2.0);
  const RunningStats stats = registry.stat("lat");
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.0);
  EXPECT_EQ(registry.stat("absent").count(), 0u);
}

TEST(Registry, MergesAcrossThreads) {
  Registry registry;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&registry] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        registry.count("hits");
        registry.observe("value", 1.0);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(registry.counter("hits"), kThreads * kPerThread);
  EXPECT_EQ(registry.stat("value").count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(registry.stat("value").mean(), 1.0);
}

TEST(Registry, AmbientHelpersNoOpWithoutInstall) {
  ASSERT_EQ(ambient(), nullptr);
  count("ignored");     // must not crash
  observe("ignored", 1.0);

  Registry registry;
  {
    const ScopedRegistry scope(&registry);
    EXPECT_EQ(ambient(), &registry);
    count("seen", 3);
    observe("seen_value", 2.5);
    {
      const ScopedRegistry inner(nullptr);  // nested disable
      EXPECT_EQ(ambient(), nullptr);
      count("ignored-too");
    }
    EXPECT_EQ(ambient(), &registry);
  }
  EXPECT_EQ(ambient(), nullptr);
  EXPECT_EQ(registry.counter("seen"), 3u);
  EXPECT_EQ(registry.counter("ignored-too"), 0u);
  EXPECT_DOUBLE_EQ(registry.stat("seen_value").mean(), 2.5);
}

TEST(Registry, TlsCacheSurvivesRegistryTurnover) {
  // The thread-local shard cache is keyed by a process-unique serial, so a
  // new registry at the same address must not inherit the old shard.
  auto first = std::make_unique<Registry>();
  first->count("x");
  EXPECT_EQ(first->counter("x"), 1u);
  first.reset();
  Registry second;
  second.count("x", 7);
  EXPECT_EQ(second.counter("x"), 7u);
}

TEST(Registry, SnapshotJsonIsSortedAndParsesShape) {
  Registry registry;
  registry.count("zeta");
  registry.count("alpha", 2);
  registry.observe("time.phase_s", 0.25);
  const std::string json = registry.snapshot().to_json();
  // Sorted keys: "alpha" before "zeta".
  EXPECT_LT(json.find("\"alpha\": 2"), json.find("\"zeta\": 1"));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"stats\""), std::string::npos);
  EXPECT_NE(json.find("\"time.phase_s\": {\"count\": 1, \"mean\": 0.25"),
            std::string::npos);
}

}  // namespace
}  // namespace qntn::obs
