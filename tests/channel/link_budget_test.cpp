#include "channel/link_budget.hpp"

#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "common/units.hpp"

namespace qntn::channel {
namespace {

Endpoint ground(double lat, double lon) {
  return Endpoint::from_geodetic(geo::Geodetic::from_degrees(lat, lon, 0.0));
}

Endpoint above(double lat, double lon, double alt) {
  return Endpoint::from_geodetic(geo::Geodetic::from_degrees(lat, lon, alt));
}

TEST(LinkBudget, EndpointConstructionRoundTrips) {
  const Endpoint e = ground(36.0, -85.0);
  const Endpoint back = Endpoint::from_ecef(e.ecef);
  EXPECT_NEAR(back.geodetic.latitude, e.geodetic.latitude, 1e-9);
  EXPECT_NEAR(back.geodetic.altitude, 0.0, 1e-3);
}

TEST(LinkBudget, GeometryElevationMeasuredAtLowerEndpoint) {
  const Endpoint site = ground(36.0, -85.0);
  const Endpoint zenith_target = above(36.0, -85.0, 500e3);
  const FsoGeometry g = make_fso_geometry(site, zenith_target);
  EXPECT_NEAR(rad_to_deg(g.elevation), 90.0, 0.2);
  EXPECT_NEAR(g.range, 500e3, 300.0);
  EXPECT_DOUBLE_EQ(g.altitude_low, 0.0);
  EXPECT_NEAR(g.altitude_high, 500e3, 1.0);
  // Argument order must not matter.
  const FsoGeometry swapped = make_fso_geometry(zenith_target, site);
  EXPECT_DOUBLE_EQ(swapped.elevation, g.elevation);
  EXPECT_DOUBLE_EQ(swapped.range, g.range);
}

TEST(LinkBudget, VisibilityRespectsElevationMask) {
  const Endpoint site = ground(36.0, -85.0);
  const Endpoint high = above(36.0, -85.0, 500e3);      // zenith
  const Endpoint low = above(30.0, -85.0, 500e3);       // ~30 deg elevation
  const Endpoint horizon = above(16.0, -85.0, 500e3);   // below mask
  const double mask = deg_to_rad(20.0);
  EXPECT_TRUE(fso_link_visible(site, high, mask));
  EXPECT_TRUE(fso_link_visible(site, low, mask));
  EXPECT_FALSE(fso_link_visible(site, horizon, mask));
}

TEST(LinkBudget, ExoatmosphericVisibilityIsEarthClearance) {
  const Endpoint sat_a = above(0.0, 0.0, 500e3);
  const Endpoint sat_b = above(0.0, 30.0, 500e3);    // clears the shell
  const Endpoint sat_far = above(0.0, 179.0, 500e3); // through the Earth
  EXPECT_TRUE(fso_link_visible(sat_a, sat_b, deg_to_rad(20.0)));
  EXPECT_FALSE(fso_link_visible(sat_a, sat_far, deg_to_rad(20.0)));
}

TEST(LinkBudget, HapGeometryMatchesPaperScale) {
  // The paper's HAP at (35.6692, -85.0662, 30 km) seen from TTU: ~75 km
  // slant range, elevation above the pi/9 mask.
  const Endpoint ttu = ground(36.1757, -85.5066);
  const Endpoint hap = above(35.6692, -85.0662, 30'000.0);
  const FsoGeometry g = make_fso_geometry(ttu, hap);
  EXPECT_GT(g.range, 60'000.0);
  EXPECT_LT(g.range, 90'000.0);
  EXPECT_GT(g.elevation, kPi / 9.0);
  EXPECT_TRUE(fso_link_visible(ttu, hap, kPi / 9.0));
}

}  // namespace
}  // namespace qntn::channel
