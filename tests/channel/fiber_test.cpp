#include "channel/fiber.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace qntn::channel {
namespace {

TEST(Fiber, ZeroLengthIsLossless) {
  EXPECT_DOUBLE_EQ((FiberChannel{0.0, 0.15}.transmissivity()), 1.0);
}

TEST(Fiber, PaperCoefficientKnownValues) {
  // 0.15 dB/km: eta(20 km) = 10^{-3/10} ~ 0.501.
  EXPECT_NEAR((FiberChannel{20'000.0, 0.15}.transmissivity()),
              std::pow(10.0, -0.3), 1e-12);
  // Intra-LAN spans (~100 m) are essentially lossless: 0.015 dB.
  EXPECT_GT((FiberChannel{100.0, 0.15}.transmissivity()), 0.9965);
}

TEST(Fiber, ExponentialComposition) {
  const double eta10 = FiberChannel{10'000.0, 0.15}.transmissivity();
  const double eta20 = FiberChannel{20'000.0, 0.15}.transmissivity();
  EXPECT_NEAR(eta20, eta10 * eta10, 1e-12);
}

TEST(Fiber, MonotoneInLengthAndAttenuation) {
  EXPECT_GT((FiberChannel{1'000.0, 0.15}.transmissivity()),
            (FiberChannel{2'000.0, 0.15}.transmissivity()));
  EXPECT_GT((FiberChannel{1'000.0, 0.15}.transmissivity()),
            (FiberChannel{1'000.0, 0.30}.transmissivity()));
}

TEST(Fiber, InverseLengthQuery) {
  const double len = FiberChannel::length_for_transmissivity(0.7, 0.15);
  EXPECT_NEAR((FiberChannel{len, 0.15}.transmissivity()), 0.7, 1e-12);
  // The paper's 0.7 threshold corresponds to ~10.3 km of 0.15 dB/km fiber —
  // why inter-city fiber (>= 80 km) cannot carry QNTN entanglement.
  EXPECT_NEAR(len, 10'329.0, 10.0);
}

TEST(Fiber, RejectsBadInputs) {
  EXPECT_THROW((void)(FiberChannel{-1.0, 0.15}.transmissivity()), PreconditionError);
  EXPECT_THROW((void)(FiberChannel{1.0, -0.2}.transmissivity()), PreconditionError);
  EXPECT_THROW((void)FiberChannel::length_for_transmissivity(0.0, 0.15),
               PreconditionError);
  EXPECT_THROW((void)FiberChannel::length_for_transmissivity(0.5, 0.0),
               PreconditionError);
}

}  // namespace
}  // namespace qntn::channel
