#include "channel/fso.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace qntn::channel {
namespace {

FsoConfig paper_config() {
  FsoConfig config;
  config.wavelength = 810e-9;
  config.receiver_efficiency = 0.995;
  config.ao_gain = 5.75;
  config.extinction.zenith_transmittance = 0.9875;
  return config;
}

OpticalTerminal big() { return {1.20, 1e-7}; }
OpticalTerminal small() { return {0.30, 1e-7}; }

FsoGeometry sat_geometry(double elevation) {
  const double re = kEarthRadius;
  const double h = 500e3;
  const double s = re * std::sin(elevation);
  FsoGeometry g;
  g.range = -s + std::sqrt(s * s + h * h + 2.0 * re * h);
  g.elevation = elevation;
  g.altitude_low = 0.0;
  g.altitude_high = h;
  return g;
}

TEST(Fso, BudgetFactorsAreInUnitRange) {
  const FsoBudget b = evaluate_fso(paper_config(), big(), big(),
                                   sat_geometry(deg_to_rad(45.0)));
  for (double v : {b.eta_diffraction, b.eta_turbulence, b.eta_atmosphere,
                   b.eta_efficiency, b.total}) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_NEAR(b.total,
              b.eta_diffraction * b.eta_turbulence * b.eta_atmosphere *
                  b.eta_efficiency,
              1e-12);
}

TEST(Fso, TotalMonotoneInElevation) {
  const FsoConfig config = paper_config();
  double prev = 0.0;
  for (double el = 10.0; el <= 90.0; el += 5.0) {
    const FsoBudget b =
        evaluate_fso(config, big(), big(), sat_geometry(deg_to_rad(el)));
    EXPECT_GT(b.total, prev) << "el=" << el;
    prev = b.total;
  }
}

/// Spot-size pieces behave physically over a range sweep.
class FsoRangeSweep : public ::testing::TestWithParam<double> {};

TEST_P(FsoRangeSweep, VacuumSpotGrowsWithRangeBeyondFocusLimit) {
  FsoGeometry g;
  g.range = GetParam();
  g.elevation = kPi / 2.0;
  g.altitude_low = 100e3;  // vacuum path: isolates diffraction
  g.altitude_high = 100e3 + GetParam();
  const FsoBudget b = evaluate_fso(paper_config(), big(), big(), g);
  // Optimal focusing: w(L) = sqrt(2 L lambda / pi) while uncapped.
  const double expected = std::sqrt(2.0 * g.range * 810e-9 / kPi);
  if (b.beam_waist < big().aperture_radius) {
    EXPECT_NEAR(b.spot_diffraction, expected, expected * 1e-9);
  } else {
    EXPECT_GE(b.spot_diffraction, expected);
  }
  EXPECT_DOUBLE_EQ(b.eta_atmosphere, 1.0);  // exoatmospheric
  EXPECT_DOUBLE_EQ(b.rytov_variance, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Ranges, FsoRangeSweep,
                         ::testing::Values(1e3, 1e4, 1e5, 5e5, 1e6, 3e6, 7e6));

TEST(Fso, ExoatmosphericPathHasNoAtmosphericLoss) {
  FsoGeometry g;
  g.range = 1000e3;
  g.elevation = 0.0;  // irrelevant above the atmosphere, must not throw
  g.altitude_low = 500e3;
  g.altitude_high = 500e3;
  const FsoBudget b = evaluate_fso(paper_config(), big(), big(), g);
  EXPECT_DOUBLE_EQ(b.eta_atmosphere, 1.0);
  // Residual pointing jitter is the only spread beyond diffraction here.
  EXPECT_GT(b.eta_turbulence, 0.99);
}

TEST(Fso, AtmosphericPathRequiresPositiveElevation) {
  FsoGeometry g = sat_geometry(deg_to_rad(30.0));
  g.elevation = 0.0;
  EXPECT_THROW((void)evaluate_fso(paper_config(), big(), big(), g),
               PreconditionError);
  g.elevation = -0.1;
  EXPECT_THROW((void)evaluate_fso(paper_config(), big(), big(), g),
               PreconditionError);
}

TEST(Fso, SmallerReceiverCollectsLess) {
  const FsoGeometry g = sat_geometry(deg_to_rad(40.0));
  const double into_big = evaluate_fso(paper_config(), big(), big(), g).total;
  const double into_small =
      evaluate_fso(paper_config(), big(), small(), g).total;
  EXPECT_GT(into_big, into_small);
}

TEST(Fso, SymmetricTransmissivityIsWorseDirection) {
  const FsoGeometry g = sat_geometry(deg_to_rad(40.0));
  const FsoConfig config = paper_config();
  const double ab = evaluate_fso(config, big(), small(), g).total;
  const double ba = evaluate_fso(config, small(), big(), g).total;
  const double sym = symmetric_transmissivity(config, big(), small(), g);
  EXPECT_DOUBLE_EQ(sym, std::min(ab, ba));
}

TEST(Fso, HigherAoGainImprovesAtmosphericLinks) {
  FsoConfig lo = paper_config();
  FsoConfig hi = paper_config();
  lo.ao_gain = 1.0;
  hi.ao_gain = 10.0;
  const FsoGeometry g = sat_geometry(deg_to_rad(30.0));
  EXPECT_GT(evaluate_fso(hi, big(), big(), g).total,
            evaluate_fso(lo, big(), big(), g).total);
}

TEST(Fso, WeatherProfilesDegradeTheLink) {
  const FsoGeometry g = sat_geometry(deg_to_rad(45.0));
  FsoConfig clear = paper_config();
  const double eta_clear = evaluate_fso(clear, big(), big(), g).total;
  for (const WeatherProfile& weather :
       {haze(), strong_turbulence(), light_rain()}) {
    FsoConfig bad = paper_config();
    bad.weather = weather;
    const double eta_bad = evaluate_fso(bad, big(), big(), g).total;
    EXPECT_LT(eta_bad, eta_clear) << weather.name;
  }
  // Light rain is the worst of the set.
  FsoConfig rain = paper_config();
  rain.weather = light_rain();
  FsoConfig hz = paper_config();
  hz.weather = haze();
  EXPECT_LT(evaluate_fso(rain, big(), big(), g).total,
            evaluate_fso(hz, big(), big(), g).total);
}

TEST(Fso, PointingJitterDegradesLongLinks) {
  const FsoGeometry g = sat_geometry(deg_to_rad(60.0));
  const OpticalTerminal steady{1.20, 0.0};
  const OpticalTerminal shaky{1.20, 5e-6};
  EXPECT_GT(evaluate_fso(paper_config(), steady, steady, g).total,
            evaluate_fso(paper_config(), shaky, shaky, g).total);
}

TEST(Fso, EvaluatorMatchesOneShotFunction) {
  const FsoConfig config = paper_config();
  const FsoLinkEvaluator evaluator(config, big(), small(), 0.0, 500e3);
  for (double el : {25.0, 40.0, 70.0}) {
    const FsoGeometry g = sat_geometry(deg_to_rad(el));
    const FsoBudget direct = evaluate_fso(config, big(), small(), g);
    const FsoBudget cached = evaluator.evaluate(g.range, g.elevation);
    EXPECT_NEAR(cached.total, direct.total, 1e-12);
    EXPECT_NEAR(cached.fried_r0, direct.fried_r0, 1e-9);
  }
}

TEST(Fso, RejectsBadConfiguration) {
  FsoConfig config = paper_config();
  const FsoGeometry g = sat_geometry(deg_to_rad(45.0));
  config.ao_gain = 0.5;
  EXPECT_THROW((void)evaluate_fso(config, big(), big(), g), PreconditionError);
  config = paper_config();
  EXPECT_THROW((void)evaluate_fso(config, {0.0, 0.0}, big(), g), PreconditionError);
  FsoGeometry bad = g;
  bad.range = 0.0;
  EXPECT_THROW((void)evaluate_fso(config, big(), big(), bad), PreconditionError);
}

}  // namespace
}  // namespace qntn::channel
