#include "channel/weather.hpp"

#include <gtest/gtest.h>

namespace qntn::channel {
namespace {

TEST(Weather, ClearSkyIsTheNeutralElement) {
  const WeatherProfile clear = clear_sky();
  EXPECT_EQ(clear.name, "clear");
  EXPECT_DOUBLE_EQ(clear.optical_depth_factor, 1.0);
  EXPECT_DOUBLE_EQ(clear.turbulence_factor, 1.0);
  EXPECT_DOUBLE_EQ(clear.platform_jitter, 0.0);
}

TEST(Weather, ProfilesAreOrderedBySeverity) {
  // Optical depth: clear < strong_turbulence < haze < light_rain.
  EXPECT_LT(clear_sky().optical_depth_factor,
            strong_turbulence().optical_depth_factor);
  EXPECT_LT(strong_turbulence().optical_depth_factor,
            haze().optical_depth_factor);
  EXPECT_LT(haze().optical_depth_factor, light_rain().optical_depth_factor);
  // Turbulence: strong_turbulence has the strongest Cn^2 boost.
  EXPECT_GT(strong_turbulence().turbulence_factor, haze().turbulence_factor);
  EXPECT_GT(strong_turbulence().turbulence_factor,
            light_rain().turbulence_factor / 3.0);
}

TEST(Weather, DegradedProfilesAddPlatformJitter) {
  for (const WeatherProfile& weather :
       {haze(), strong_turbulence(), light_rain()}) {
    EXPECT_GT(weather.platform_jitter, 0.0) << weather.name;
    EXPECT_GE(weather.optical_depth_factor, 1.0) << weather.name;
    EXPECT_GE(weather.turbulence_factor, 1.0) << weather.name;
  }
}

TEST(Weather, NamesAreDistinct) {
  EXPECT_NE(haze().name, strong_turbulence().name);
  EXPECT_NE(haze().name, light_rain().name);
  EXPECT_NE(strong_turbulence().name, light_rain().name);
}

}  // namespace
}  // namespace qntn::channel
