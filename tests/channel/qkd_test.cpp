#include "channel/qkd.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace qntn::channel {
namespace {

TEST(BinaryEntropy, KnownValues) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(0.5), 1.0);
  EXPECT_NEAR(binary_entropy(0.11), 0.4999, 1e-3);  // BB84 breakdown point
  EXPECT_THROW((void)binary_entropy(-0.1), PreconditionError);
}

TEST(Qkd, PerfectChannelQberIsMisalignment) {
  QkdSystem system;
  system.dark_count_probability = 0.0;
  EXPECT_NEAR(system.qber(1.0), system.misalignment_error, 1e-12);
}

TEST(Qkd, DeadChannelQberIsHalf) {
  const QkdSystem system;
  EXPECT_NEAR(system.qber(0.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(system.key_fraction(0.0), 0.0);
}

TEST(Qkd, QberMonotoneDecreasingInTransmissivity) {
  const QkdSystem system;
  double prev = 1.0;
  for (double eta = 0.01; eta <= 1.0; eta += 0.01) {
    const double e = system.qber(eta);
    EXPECT_LE(e, prev + 1e-12);
    prev = e;
  }
}

TEST(Qkd, KeyRateMonotoneIncreasingInTransmissivity) {
  const QkdSystem system;
  double prev = -1.0;
  for (double eta = 0.0; eta <= 1.0; eta += 0.02) {
    const double r = system.key_rate(eta);
    EXPECT_GE(r, prev - 1e-9);
    EXPECT_GE(r, 0.0);
    prev = r;
  }
}

TEST(Qkd, HealthyLinkDeliversMegabitScaleKeys) {
  // At the QNTN HAP operating point (eta ~ 0.93) a 100 MHz system with
  // these parameters yields order-10 Mb/s of secret key.
  const QkdSystem system;
  const double rate = system.key_rate(0.93);
  EXPECT_GT(rate, 1e6);
  EXPECT_LT(rate, 1e8);
}

TEST(Qkd, CutoffBelowWhichNoKeySurvives) {
  QkdSystem noisy;
  noisy.dark_count_probability = 1e-3;  // strong noise floor
  const double cutoff = noisy.cutoff_transmissivity();
  EXPECT_GT(cutoff, 0.0);
  EXPECT_LT(cutoff, 1.0);
  EXPECT_DOUBLE_EQ(noisy.key_fraction(cutoff * 0.5), 0.0);
  EXPECT_GT(noisy.key_fraction(std::min(1.0, cutoff * 2.0)), 0.0);
}

TEST(Qkd, HopelessSystemHasNoCutoff) {
  QkdSystem broken;
  broken.misalignment_error = 0.2;  // above the 11% BB84 bound
  EXPECT_DOUBLE_EQ(broken.key_fraction(1.0), 0.0);
  EXPECT_DOUBLE_EQ(broken.cutoff_transmissivity(), 0.0);
}

TEST(Qkd, DarkCountsOnlyMatterAtLowTransmissivity) {
  QkdSystem clean;
  clean.dark_count_probability = 0.0;
  QkdSystem dark;
  dark.dark_count_probability = 1e-5;
  // Negligible at eta = 1, decisive at eta = 1e-4.
  EXPECT_NEAR(clean.key_rate(1.0), dark.key_rate(1.0),
              clean.key_rate(1.0) * 0.01);
  EXPECT_GT(clean.key_fraction(1e-4), 0.0);
  EXPECT_LT(dark.key_fraction(1e-4), clean.key_fraction(1e-4));
}

}  // namespace
}  // namespace qntn::channel
