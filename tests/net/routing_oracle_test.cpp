// Exhaustive oracle tests: on small random graphs, compare every router
// (and Yen's enumeration) against brute-force enumeration of all simple
// paths — the strongest correctness check available for the routing layer.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "net/kpaths.hpp"
#include "net/routing.hpp"

namespace qntn::net {
namespace {

struct EnumeratedPath {
  std::vector<NodeId> path;
  double cost = 0.0;
  double transmissivity = 1.0;
};

/// Depth-first enumeration of every simple path src -> dst.
void enumerate(const Graph& g, NodeId current, NodeId dst, CostMetric metric,
               std::vector<bool>& visited, EnumeratedPath& partial,
               std::vector<EnumeratedPath>& out) {
  if (current == dst) {
    out.push_back(partial);
    return;
  }
  // De-duplicate parallel edges by keeping the best per neighbour.
  std::vector<std::pair<NodeId, double>> best;
  for (const Adjacency& adj : g.neighbors(current)) {
    bool merged = false;
    for (auto& [to, eta] : best) {
      if (to == adj.to) {
        eta = std::max(eta, adj.transmissivity);
        merged = true;
      }
    }
    if (!merged) best.emplace_back(adj.to, adj.transmissivity);
  }
  for (const auto& [to, eta] : best) {
    if (visited[to]) continue;
    visited[to] = true;
    EnumeratedPath saved = partial;
    partial.path.push_back(to);
    partial.cost += edge_cost(eta, metric);
    partial.transmissivity *= eta;
    enumerate(g, to, dst, metric, visited, partial, out);
    partial = std::move(saved);
    visited[to] = false;
  }
}

std::vector<EnumeratedPath> all_paths(const Graph& g, NodeId src, NodeId dst,
                                      CostMetric metric) {
  std::vector<EnumeratedPath> out;
  std::vector<bool> visited(g.node_count(), false);
  visited[src] = true;
  EnumeratedPath partial;
  partial.path.push_back(src);
  enumerate(g, src, dst, metric, visited, partial, out);
  return out;
}

Graph random_graph(std::size_t n, double p, Rng& rng) {
  Graph g;
  for (std::size_t i = 0; i < n; ++i) g.add_node();
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.uniform(0.0, 1.0) < p) g.add_edge(i, j, rng.uniform(0.1, 1.0));
    }
  }
  return g;
}

class RoutingOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingOracle, AllRoutersMatchBruteForceOptimum) {
  Rng rng(GetParam());
  const Graph g = random_graph(8, 0.45, rng);
  for (const auto metric :
       {CostMetric::InverseEta, CostMetric::NegLogEta, CostMetric::HopCount}) {
    const DistanceVectorRouter dv(g, metric);
    for (NodeId src = 0; src < g.node_count(); ++src) {
      for (NodeId dst = 0; dst < g.node_count(); ++dst) {
        if (src == dst) continue;
        const auto paths = all_paths(g, src, dst, metric);
        std::optional<double> oracle;
        for (const EnumeratedPath& p : paths) {
          oracle = oracle ? std::min(*oracle, p.cost) : p.cost;
        }
        const auto bf = bellman_ford(g, src, dst, metric);
        const auto dj = dijkstra(g, src, dst, metric);
        const auto dvr = dv.route(src, dst);
        ASSERT_EQ(bf.has_value(), oracle.has_value());
        ASSERT_EQ(dj.has_value(), oracle.has_value());
        ASSERT_EQ(dvr.has_value(), oracle.has_value());
        if (!oracle) continue;
        EXPECT_NEAR(bf->cost, *oracle, 1e-9);
        EXPECT_NEAR(dj->cost, *oracle, 1e-9);
        EXPECT_NEAR(dvr->cost, *oracle, 1e-9);
      }
    }
  }
}

TEST_P(RoutingOracle, YenEnumerationMatchesBruteForceOrder) {
  Rng rng(GetParam() + 1000);
  const Graph g = random_graph(7, 0.5, rng);
  const NodeId src = 0;
  const NodeId dst = g.node_count() - 1;
  auto paths = all_paths(g, src, dst, CostMetric::InverseEta);
  std::sort(paths.begin(), paths.end(),
            [](const EnumeratedPath& a, const EnumeratedPath& b) {
              return a.cost < b.cost;
            });
  const std::size_t k = std::min<std::size_t>(paths.size(), 5);
  const auto yen = k_shortest_paths(g, src, dst, 5, CostMetric::InverseEta);
  ASSERT_EQ(yen.size(), k);
  for (std::size_t i = 0; i < k; ++i) {
    // Costs must match the brute-force ranking (ties permit different
    // paths of equal cost).
    EXPECT_NEAR(yen[i].cost, paths[i].cost, 1e-9) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingOracle,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace qntn::net
