#include "net/graph.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace qntn::net {
namespace {

TEST(Graph, NodeCreation) {
  Graph g;
  const NodeId a = g.add_node("alice");
  const NodeId b = g.add_node();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.name(a), "alice");
  EXPECT_EQ(g.name(b), "node1");
}

TEST(Graph, UndirectedEdges) {
  Graph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b, 0.8);
  EXPECT_EQ(g.edge_count(), 1u);
  ASSERT_EQ(g.neighbors(a).size(), 1u);
  ASSERT_EQ(g.neighbors(b).size(), 1u);
  EXPECT_EQ(g.neighbors(a)[0].to, b);
  EXPECT_DOUBLE_EQ(g.neighbors(b)[0].transmissivity, 0.8);
}

TEST(Graph, RejectsInvalidEdges) {
  Graph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  EXPECT_THROW((void)g.add_edge(a, a, 0.5), PreconditionError);   // self-loop
  EXPECT_THROW((void)g.add_edge(a, 7, 0.5), PreconditionError);   // out of range
  EXPECT_THROW((void)g.add_edge(a, b, 1.5), PreconditionError);   // eta > 1
  EXPECT_THROW((void)g.add_edge(a, b, -0.1), PreconditionError);  // eta < 0
}

TEST(Graph, ParallelEdgesAllowed) {
  Graph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  g.add_edge(a, b, 0.5);
  g.add_edge(a, b, 0.9);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.neighbors(a).size(), 2u);
}

TEST(Graph, ConnectivityQueries) {
  Graph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const NodeId c = g.add_node();
  const NodeId d = g.add_node();
  g.add_edge(a, b, 1.0);
  g.add_edge(b, c, 1.0);
  EXPECT_TRUE(g.connected(a, c));
  EXPECT_TRUE(g.connected(c, a));
  EXPECT_TRUE(g.connected(a, a));
  EXPECT_FALSE(g.connected(a, d));
}

TEST(Graph, ComponentLabels) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.add_node();
  g.add_edge(0, 1, 1.0);
  g.add_edge(3, 4, 1.0);
  const auto comp = g.components();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[2], comp[3]);
}

TEST(Graph, EmptyGraphComponents) {
  Graph g;
  EXPECT_TRUE(g.components().empty());
}

}  // namespace
}  // namespace qntn::net
