#include "net/kpaths.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qntn::net {
namespace {

/// Diamond: two node-disjoint 2-hop routes plus a direct lossy edge.
Graph diamond() {
  Graph g;
  const NodeId s = g.add_node("s");
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId d = g.add_node("d");
  g.add_edge(s, a, 0.9);
  g.add_edge(a, d, 0.9);
  g.add_edge(s, b, 0.8);
  g.add_edge(b, d, 0.8);
  g.add_edge(s, d, 0.35);  // cost 2.86, strictly worse than both relays
  return g;
}

TEST(KPaths, FirstPathIsTheShortest) {
  const Graph g = diamond();
  const auto paths = k_shortest_paths(g, 0, 3, 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].path, (std::vector<NodeId>{0, 1, 3}));
  const auto oracle = dijkstra(g, 0, 3);
  EXPECT_NEAR(paths[0].cost, oracle->cost, 1e-12);
}

TEST(KPaths, EnumeratesAllThreeDiamondRoutes) {
  const auto paths = k_shortest_paths(diamond(), 0, 3, 5);
  ASSERT_EQ(paths.size(), 3u);  // only three loopless routes exist
  EXPECT_EQ(paths[0].path, (std::vector<NodeId>{0, 1, 3}));  // via a
  EXPECT_EQ(paths[1].path, (std::vector<NodeId>{0, 2, 3}));  // via b
  EXPECT_EQ(paths[2].path, (std::vector<NodeId>{0, 3}));     // direct
  // Ordered by cost and loopless.
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].cost, paths[i - 1].cost - 1e-12);
  }
}

TEST(KPaths, UnreachableGivesEmpty) {
  Graph g;
  g.add_node();
  g.add_node();
  EXPECT_TRUE(k_shortest_paths(g, 0, 1, 3).empty());
  EXPECT_THROW((void)k_shortest_paths(g, 0, 1, 0), PreconditionError);
}

TEST(KPaths, PathsAreLoopless) {
  Rng rng(5);
  Graph g;
  for (int i = 0; i < 12; ++i) g.add_node();
  for (NodeId i = 0; i < 12; ++i) {
    for (NodeId j = i + 1; j < 12; ++j) {
      if (rng.uniform(0.0, 1.0) < 0.35) {
        g.add_edge(i, j, rng.uniform(0.3, 1.0));
      }
    }
  }
  const auto paths = k_shortest_paths(g, 0, 11, 8);
  for (const Route& route : paths) {
    std::set<NodeId> seen(route.path.begin(), route.path.end());
    EXPECT_EQ(seen.size(), route.path.size()) << "loop in path";
    EXPECT_EQ(route.path.front(), 0u);
    EXPECT_EQ(route.path.back(), 11u);
  }
  // Distinct paths.
  for (std::size_t a = 0; a < paths.size(); ++a) {
    for (std::size_t b = a + 1; b < paths.size(); ++b) {
      EXPECT_NE(paths[a].path, paths[b].path);
    }
  }
}

TEST(KPaths, CostsAreNonDecreasing) {
  Rng rng(9);
  Graph g;
  for (int i = 0; i < 10; ++i) g.add_node();
  for (NodeId i = 0; i + 1 < 10; ++i) g.add_edge(i, i + 1, 0.9);
  g.add_edge(0, 9, 0.3);
  g.add_edge(0, 5, 0.8);
  g.add_edge(5, 9, 0.8);
  const auto paths = k_shortest_paths(g, 0, 9, 6);
  ASSERT_GE(paths.size(), 3u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].cost, paths[i - 1].cost - 1e-12);
  }
}

TEST(KDisjointPaths, DiamondYieldsBothRelaysThenDirect) {
  // k beyond what the graph offers is not an error: the diamond has exactly
  // two interior-disjoint relay routes plus one direct edge.
  const auto paths = k_disjoint_paths(diamond(), 0, 3, 10);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0].path, (std::vector<NodeId>{0, 1, 3}));  // via a
  EXPECT_EQ(paths[1].path, (std::vector<NodeId>{0, 2, 3}));  // via b
  EXPECT_EQ(paths[2].path, (std::vector<NodeId>{0, 3}));     // direct
  EXPECT_DOUBLE_EQ(path_diversity(paths), 1.0);
}

TEST(KDisjointPaths, InteriorsArePairwiseDisjointOnRandomGraphs) {
  for (const std::uint64_t seed : {3u, 7u, 21u}) {
    Rng rng(seed);
    Graph g;
    for (int i = 0; i < 14; ++i) g.add_node();
    for (NodeId i = 0; i < 14; ++i) {
      for (NodeId j = i + 1; j < 14; ++j) {
        if (rng.uniform(0.0, 1.0) < 0.4) {
          g.add_edge(i, j, rng.uniform(0.3, 1.0));
        }
      }
    }
    const auto paths = k_disjoint_paths(g, 0, 13, 6);
    for (std::size_t a = 0; a < paths.size(); ++a) {
      const std::set<NodeId> ia(paths[a].path.begin() + 1,
                                paths[a].path.end() - 1);
      for (std::size_t b = a + 1; b < paths.size(); ++b) {
        for (std::size_t i = 1; i + 1 < paths[b].path.size(); ++i) {
          EXPECT_EQ(ia.count(paths[b].path[i]), 0u)
              << "seed " << seed << ": routes " << a << " and " << b
              << " share relay " << paths[b].path[i];
        }
      }
    }
    if (!paths.empty()) {
      EXPECT_DOUBLE_EQ(path_diversity(paths), 1.0);
    }
  }
}

TEST(KDisjointPaths, CostsAreNonDecreasing) {
  Rng rng(11);
  Graph g;
  for (int i = 0; i < 12; ++i) g.add_node();
  for (NodeId i = 0; i < 12; ++i) {
    for (NodeId j = i + 1; j < 12; ++j) {
      if (rng.uniform(0.0, 1.0) < 0.5) {
        g.add_edge(i, j, rng.uniform(0.3, 1.0));
      }
    }
  }
  const auto paths = k_disjoint_paths(g, 0, 11, 8);
  ASSERT_GE(paths.size(), 2u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].cost, paths[i - 1].cost - 1e-12);
  }
}

TEST(KDisjointPaths, SingleChainYieldsOneRoute) {
  // Banning the chain's interior after the first route leaves no
  // alternative: k = 5 gracefully returns one.
  Graph g;
  g.add_node();
  g.add_node();
  g.add_node();
  g.add_edge(0, 1, 0.9);
  g.add_edge(1, 2, 0.9);
  const auto paths = k_disjoint_paths(g, 0, 2, 5);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].path, (std::vector<NodeId>{0, 1, 2}));
}

TEST(KDisjointPaths, UnreachableGivesEmpty) {
  Graph g;
  g.add_node();
  g.add_node();
  EXPECT_TRUE(k_disjoint_paths(g, 0, 1, 3).empty());
  EXPECT_THROW((void)k_disjoint_paths(g, 0, 1, 0), PreconditionError);
}

TEST(PathDiversity, DisjointAndOverlappingSets) {
  const auto paths = k_shortest_paths(diamond(), 0, 3, 3);
  ASSERT_EQ(paths.size(), 3u);
  // Via-a and via-b interiors are disjoint; the direct path has no
  // interior. Full diversity.
  EXPECT_DOUBLE_EQ(path_diversity(paths), 1.0);
  // Duplicate the same route: zero diversity.
  std::vector<Route> same{paths[0], paths[0]};
  EXPECT_DOUBLE_EQ(path_diversity(same), 0.0);
  // Single route: trivially diverse.
  EXPECT_DOUBLE_EQ(path_diversity({paths[0]}), 1.0);
}

}  // namespace
}  // namespace qntn::net
